package sysrle

import (
	"io"

	"sysrle/internal/imageio"
)

// Image I/O. Formats: PBM (P1/P4), PNG, and the library's RLE text
// ("rlet") and binary ("rleb") formats; reads sniff the format from
// the magic bytes.

// ReadImage decodes an image from any supported format.
func ReadImage(r io.Reader) (*Image, error) { return imageio.Read(r) }

// ReadImageFile decodes an image file.
func ReadImageFile(path string) (*Image, error) { return imageio.ReadFile(path) }

// WriteImage encodes an image in the named format ("pbm",
// "pbm-plain", "png", "rlet", "rleb").
func WriteImage(w io.Writer, format string, img *Image) error {
	return imageio.Write(w, format, img)
}

// ImageFormats lists the supported output format names.
func ImageFormats() []string { return imageio.Formats() }
