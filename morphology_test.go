package sysrle

import "testing"

// Wiring tests for the option-based Morph* family: each option reaches
// the run-native engine correctly. Algorithm correctness is pinned in
// internal/runmorph and the oracle.

func TestMorphOptionsReachEngine(t *testing.T) {
	img := NewImage(12, 6)
	img.SetRow(2, Row{{Start: 3, Length: 4}})

	// Default (3×3 box) matches the legacy Box(1) dilation.
	got, err := MorphDilate(img)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := Dilate(img, Box(1))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(legacy) {
		t.Error("default MorphDilate differs from legacy Box(1) dilation")
	}

	// An asymmetric SE with a corner origin only grows right/down.
	got, err = MorphDilate(img, WithRectSE(Rect(3, 2)), WithSEOrigin(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got.Get(2, 2) || !got.Get(6, 2) || !got.Get(3, 3) || got.Get(3, 1) {
		t.Errorf("corner-origin dilation wrong: rows %v", got.Rows)
	}

	// Decomposed execution is equivalent to direct.
	direct, err := MorphErode(got, WithRectSE(Rect(3, 2)))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := MorphErode(got, WithRectSE(Rect(3, 2)), WithDecomposedSE())
	if err != nil {
		t.Fatal(err)
	}
	if !direct.Equal(dec) {
		t.Error("decomposed erosion differs from direct")
	}

	// Origin outside the rectangle is rejected by every op.
	if _, err := MorphOpen(img, WithRectSE(Rect(3, 3)), WithSEOrigin(5, 0)); err == nil {
		t.Error("origin outside SE accepted")
	}
}

func TestMorphDerivedAndHitOrMiss(t *testing.T) {
	img := NewImage(10, 6)
	img.SetRow(1, Row{{Start: 2, Length: 1}}) // speck above the block
	img.SetRow(3, Row{{Start: 2, Length: 7}})
	img.SetRow(4, Row{{Start: 2, Length: 7}})

	th, err := MorphTopHat(img, WithRectSE(Rect(3, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if !th.Get(2, 1) {
		t.Error("top-hat missed the speck")
	}
	if th.Get(4, 3) {
		t.Error("top-hat kept the block interior")
	}

	bh, err := MorphBlackHat(img, WithRectSE(Rect(1, 3)))
	if err != nil {
		t.Fatal(err)
	}
	if bh.Area() == 0 {
		t.Error("black-hat found no gap between the block and the speck row")
	}

	pat, err := ParsePattern([]string{"10"}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := MorphHitOrMiss(img, pat)
	if err != nil {
		t.Fatal(err)
	}
	if !hm.Get(2, 1) || !hm.Get(8, 3) || hm.Get(3, 3) {
		t.Errorf("hit-or-miss right-edge detector wrong: %v", hm.Rows)
	}
}
