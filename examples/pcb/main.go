// PCB inspection: the paper's motivating application (§1) end to end.
//
// A synthetic printed-circuit board is rasterized, a simulated scan
// of it is damaged with classic fabrication defects, and the two are
// compared in the compressed domain with the systolic difference
// engine. Because scan and reference are nearly identical, each
// scanline's systolic array converges in a handful of iterations even
// though the board has hundreds of runs per row — the paper's whole
// point.
//
// Run with: go run ./examples/pcb
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sysrle/internal/inspect"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Generate the golden reference artwork.
	layout, err := inspect.GenerateBoard(rng, inspect.DefaultBoard(640, 480))
	if err != nil {
		log.Fatal(err)
	}
	ref := layout.Art.ToRLE()
	fmt.Printf("reference board: %dx%d, %d pads, %d runs total (%.2f runs/row)\n",
		ref.Width, ref.Height, len(layout.Pads), ref.RunCount(),
		float64(ref.RunCount())/float64(ref.Height))

	// Simulate a scan with fabrication defects.
	scanBits, injected := inspect.InjectDefects(rng, layout, 10)
	scan := scanBits.ToRLE()
	fmt.Printf("scan: injected %d defects\n", len(injected))
	for _, inj := range injected {
		fmt.Printf("  %-12s at (%d,%d)-(%d,%d)\n", inj.Type, inj.X0, inj.Y0, inj.X1, inj.Y1)
	}

	// Compare in the compressed domain, rows in parallel.
	ins := &inspect.Inspector{MinDefectArea: 2}
	rep, err := ins.Compare(ref, scan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(inspect.FormatReport(rep))

	// Check the report against the ground truth.
	matched := 0
	for _, inj := range injected {
		for _, d := range rep.Defects {
			if inj.X0 <= d.X1 && d.X0 <= inj.X1 && inj.Y0 <= d.Y1 && d.Y0 <= inj.Y1 {
				matched++
				break
			}
		}
	}
	fmt.Printf("\nground truth: %d/%d injected defects detected\n", matched, len(injected))

	// The paper's efficiency argument, concretely: per-row systolic
	// iterations vs. what the sequential merge would need.
	totalRuns := ref.RunCount() + scan.RunCount()
	fmt.Printf("systolic iterations across the board: %d (max %d on any row)\n",
		rep.TotalIterations, rep.MaxRowIterations)
	fmt.Printf("sequential merge would touch ≈%d runs — %.0fx more work\n",
		totalRuns, float64(totalRuns)/float64(max(rep.TotalIterations, 1)))
}
