// Compressed-domain morphology — the class of binary image
// operations the paper's introduction motivates, implemented here
// directly on RLE data (internal/runmorph, the run-native interval
// engine) so nothing is ever decompressed.
//
// A clean structure is polluted with salt-and-pepper noise; opening
// removes the salt, closing heals the pepper, top-hat isolates what
// the opening threw away, and the result is compared against the
// original with the systolic difference engine.
//
// Run with: go run ./examples/morphology
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sysrle"
	"sysrle/internal/bitmap"
)

func main() {
	rng := rand.New(rand.NewSource(13))

	// Clean structure: bars and pads, PCB-like.
	clean := bitmap.New(240, 120)
	for y := 20; y < 110; y += 20 {
		clean.HLine(10, 230, y, 5, true)
	}
	for x := 30; x < 240; x += 45 {
		clean.Disk(x, 60, 8, true)
	}

	// Pollute with salt (isolated foreground specks) and pepper
	// (pinholes in the structure).
	noisy := clean.Clone()
	for i := 0; i < 260; i++ {
		x, y := rng.Intn(240), rng.Intn(120)
		noisy.Set(x, y, !noisy.Get(x, y))
	}

	img := noisy.ToRLE()
	fmt.Printf("noisy image: %d runs, %d foreground pixels\n", img.RunCount(), img.Area())

	// Top-hat first: the foreground detail thinner than the 3×3 box —
	// i.e. the salt we are about to remove.
	salt, err := sysrle.MorphTopHat(img, sysrle.WithRectSE(sysrle.Rect(3, 3)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-hat (salt to be removed): %d pixels\n", salt.Area())

	// Open to kill the salt, then close to heal the pepper — all on
	// runs. The tall factor of a decomposed SE would be the fast path
	// for big elements; for the 3×3 box the direct pass is fine.
	opened, err := sysrle.MorphOpen(img, sysrle.WithRectSE(sysrle.Rect(3, 3)))
	if err != nil {
		log.Fatal(err)
	}
	restored, err := sysrle.MorphClose(opened, sysrle.WithRectSE(sysrle.Rect(3, 3)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after open∘close: %d runs, %d foreground pixels\n",
		restored.RunCount(), restored.Area())

	// How close did we get to the original? Diff in the compressed
	// domain with the systolic engine.
	diff, stats, err := sysrle.DiffImage(clean.ToRLE(), restored)
	if err != nil {
		log.Fatal(err)
	}
	noisePixels := sysrleImageArea(noisy.ToRLE(), clean.ToRLE())
	fmt.Printf("residual difference vs. clean original: %d pixels (noise had flipped %d)\n",
		diff.Area(), noisePixels)
	fmt.Printf("systolic iterations for the comparison: total=%d max/row=%d\n",
		stats.TotalIterations, stats.MaxRowIterations)

	// Morphological gradient: the outline of the restored structure.
	grad, err := sysrle.MorphGradient(restored, sysrle.WithRectSE(sysrle.Rect(3, 3)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gradient (outline): %d runs, %d pixels\n", grad.RunCount(), grad.Area())

	// Hit-or-miss: find isolated single pixels still left anywhere —
	// exactly the pattern a lone speck matches.
	lone, err := sysrle.ParsePattern([]string{
		"000",
		"010",
		"000",
	}, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	specks, err := sysrle.MorphHitOrMiss(restored, lone)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("isolated pixels surviving cleanup: %d\n", specks.Area())
}

// sysrleImageArea counts differing pixels between two images.
func sysrleImageArea(a, b *sysrle.Image) int {
	diff, _, err := sysrle.DiffImage(a, b)
	if err != nil {
		log.Fatal(err)
	}
	return diff.Area()
}
