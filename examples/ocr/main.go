// Character recognition by compressed-domain template matching — the
// paper's introduction lists character recognition among the binary
// image applications the systolic difference operation serves.
//
// A message is typeset with a 5×7 bitmap font into a scene image,
// scan noise is added, the page is despeckled with the run-native
// document-cleanup pipeline, and each character cell is classified by
// minimum Hamming distance against the font templates. Every
// distance is an RLE image difference: the same primitive the
// systolic array computes.
//
// Run with: go run ./examples/ocr
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"sysrle"
	"sysrle/internal/docclean"
	"sysrle/internal/match"
	"sysrle/internal/rle"
)

const (
	message = "38AXE71905TH24"
	pitch   = match.GlyphWidth + 2 // glyph cell plus spacing
)

func main() {
	rng := rand.New(rand.NewSource(17))
	font := match.Font()

	// Typeset the message.
	scene := rle.NewImage(4+len(message)*pitch, match.GlyphHeight+4)
	for i, ch := range strings.Split(message, "") {
		glyph, ok := font[ch]
		if !ok {
			log.Fatalf("no glyph for %q", ch)
		}
		rle.Paste(scene, glyph, 2+i*pitch, 2)
	}

	// Add scan noise: flip ~1.5% of the pixels.
	noisy := scene.Clone()
	flips := scene.Width * scene.Height * 15 / 1000
	for i := 0; i < flips; i++ {
		x, y := rng.Intn(scene.Width), rng.Intn(scene.Height)
		noisy.SetRow(y, rle.XOR(noisy.Rows[y], rle.Row{{Start: x, Length: 1}}))
	}
	fmt.Printf("scene %dx%d, %d noise pixels flipped\n\n", scene.Width, scene.Height, flips)
	printImage(noisy)

	// The noise itself, found by systolic differencing clean vs
	// noisy (what an inspection system would do).
	diff, stats, err := sysrle.DiffImage(scene, noisy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsystolic diff vs clean original: %d differing pixels, iterations total=%d max/row=%d\n",
		diff.Area(), stats.TotalIterations, stats.MaxRowIterations)

	// Despeckle before classifying: isolated salt specks (connected
	// components of area 1) vanish, while glyph strokes — always
	// larger connected blobs — survive untouched. This is the first
	// stage of the document-cleanup pipeline behind /v1/docclean.
	cleaned, removed := docclean.Despeckle(noisy, 1)
	fmt.Printf("despeckle removed %d isolated noise pixels\n", removed)

	// Classify each character cell of the cleaned page.
	var decoded strings.Builder
	correct := 0
	for i := range message {
		cell, err := rle.Crop(cleaned, 2+i*pitch, 2, match.GlyphWidth, match.GlyphHeight)
		if err != nil {
			log.Fatal(err)
		}
		name, score, ok := match.Classify(cell, font)
		if !ok {
			log.Fatal("classification failed")
		}
		decoded.WriteString(name)
		if name == string(message[i]) {
			correct++
		}
		_ = score
	}
	fmt.Printf("\nexpected: %s\ndecoded : %s  (%d/%d correct)\n",
		message, decoded.String(), correct, len(message))
}

func printImage(img *rle.Image) {
	for _, row := range img.Rows {
		line := make([]byte, img.Width)
		for i, bit := range row.Bits(img.Width) {
			if bit {
				line[i] = '#'
			} else {
				line[i] = '.'
			}
		}
		fmt.Println(string(line))
	}
}
