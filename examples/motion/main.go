// Motion detection by frame differencing — one of the applications
// the paper's introduction lists ("motion detection for safety and
// security").
//
// A synthetic scene (static clutter plus two moving objects) is
// rendered frame by frame, each frame is RLE-encoded, and consecutive
// frames are differenced with the systolic engine. The static
// background cancels, so each row's array converges in a few
// iterations and the difference blobs track the movers.
//
// Run with: go run ./examples/motion
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sysrle"
	"sysrle/internal/bitmap"
	"sysrle/internal/inspect"
)

const (
	width  = 320
	height = 200
	frames = 6
)

// renderFrame draws the scene at time t: static clutter plus a disk
// moving right and a box moving down.
func renderFrame(clutter *bitmap.Bitmap, t int) *bitmap.Bitmap {
	frame := clutter.Clone()
	frame.Disk(40+22*t, 70, 9, true)                 // mover 1: left → right
	frame.FillRect(200, 20+18*t, 216, 36+18*t, true) // mover 2: top → bottom
	return frame
}

func main() {
	rng := rand.New(rand.NewSource(11))

	// Static clutter: random rectangles and disks that should cancel
	// perfectly between frames.
	clutter := bitmap.New(width, height)
	for i := 0; i < 25; i++ {
		x, y := rng.Intn(width), rng.Intn(height)
		if rng.Intn(2) == 0 {
			clutter.FillRect(x, y, x+4+rng.Intn(20), y+2+rng.Intn(8), true)
		} else {
			clutter.Disk(x, y, 2+rng.Intn(5), true)
		}
	}

	prev := renderFrame(clutter, 0).ToRLE()
	fmt.Printf("scene %dx%d, %d frames, clutter runs/frame ≈ %d\n\n",
		width, height, frames, prev.RunCount())

	for t := 1; t < frames; t++ {
		cur := renderFrame(clutter, t).ToRLE()
		diff, stats, err := sysrle.DiffImage(prev, cur)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("frame %d→%d: %d rows differ, systolic iterations total=%d max/row=%d\n",
			t-1, t, stats.RowsDiffering, stats.TotalIterations, stats.MaxRowIterations)
		for _, comp := range inspect.Components(diff) {
			if comp.Area < 8 {
				continue // ignore tiny slivers
			}
			fmt.Printf("  motion blob: bbox=(%d,%d)-(%d,%d) area=%d\n",
				comp.X0, comp.Y0, comp.X1, comp.Y1, comp.Area)
		}
		prev = cur
	}

	fmt.Println("\nstatic clutter cancels in the compressed domain; only the movers cost iterations")
}
