// Quickstart: the paper's Figure 1 example through the public API.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sysrle"
)

func main() {
	// The two example rows from Figure 1 of the paper, as
	// (start, length) runs of foreground pixels.
	img1 := sysrle.Row{{Start: 10, Length: 3}, {Start: 16, Length: 2}, {Start: 23, Length: 2}, {Start: 27, Length: 3}}
	img2 := sysrle.Row{{Start: 3, Length: 4}, {Start: 8, Length: 5}, {Start: 15, Length: 5}, {Start: 23, Length: 2}, {Start: 27, Length: 4}}

	// One-line usage: the systolic difference, canonicalized.
	diff, err := sysrle.Diff(img1, img2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("img1      :", img1)
	fmt.Println("img2      :", img2)
	fmt.Println("difference:", diff)

	// Render the three rows as pixels for a visual check.
	const width = 32
	show := func(name string, row sysrle.Row) {
		line := make([]byte, width)
		for i, bit := range sysrle.Decode(row, width) {
			if bit {
				line[i] = '#'
			} else {
				line[i] = '.'
			}
		}
		fmt.Printf("%-10s %s\n", name, line)
	}
	fmt.Println()
	show("img1", img1)
	show("img2", img2)
	show("xor", diff)

	// Every engine computes the same function; their cost model is
	// what differs. Iterations is the paper's figure of merit: the
	// systolic engines finish in time proportional to how much the
	// rows differ, the sequential merge pays for every run.
	fmt.Println()
	fmt.Println("engine                 iterations")
	for _, engine := range []sysrle.Engine{
		sysrle.NewLockstep(),
		sysrle.NewChannel(),
		sysrle.NewSequential(),
		sysrle.NewBus(0),
	} {
		res, err := engine.XORRow(img1, img2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %d\n", engine.Name(), res.Iterations)
	}

	// Similarity measures from the paper's analysis.
	fmt.Println()
	fmt.Printf("|k1-k2| = %d, runs in XOR = %d, differing pixels = %d\n",
		sysrle.RunCountDiff(img1, img2), sysrle.XORRuns(img1, img2), sysrle.Hamming(img1, img2))
}
