package sysrle

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"sysrle/internal/core"
	"sysrle/internal/planner"
	"sysrle/internal/rle"
)

// Option configures an image operation such as DiffImage. The zero
// configuration is the production default: lockstep semantics via
// per-worker buffer-reusing stream engines, GOMAXPROCS workers,
// buffer reuse on, no deadline.
type Option func(*config)

type config struct {
	engine  Engine
	workers int
	ctx     context.Context
	reuse   bool
}

func defaultConfig() config {
	return config{ctx: context.Background(), reuse: true}
}

// WithEngine selects the row-difference engine. nil (the default)
// means a per-worker buffer-reusing lockstep stream — identical
// semantics to the lockstep engine with the fewest allocations. A
// non-nil engine is shared by every worker, so it must be safe for
// concurrent use; all engines this package constructs are, and the
// single-machine ones (NewStream, NewFixedArray) are automatically
// run with one worker.
func WithEngine(e Engine) Option { return func(c *config) { c.engine = e } }

// WithWorkers bounds the row-level parallelism; n ≤ 0 (the default)
// means GOMAXPROCS.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithContext attaches a cancellation context: cancellation is
// observed between rows (a row already inside the engine finishes)
// and the operation fails with the context's error.
func WithContext(ctx context.Context) Option {
	return func(c *config) {
		if ctx != nil {
			c.ctx = ctx
		}
	}
}

// WithBufferReuse toggles the zero-allocation row path (default on):
// workers gather each row, already canonical, into a reused scratch
// buffer and persist exact-size copies through a per-worker arena.
// Disabling it restores the allocate-per-row path — useful only for
// benchmarking the difference (see internal/perf).
func WithBufferReuse(enabled bool) Option { return func(c *config) { c.reuse = enabled } }

// DiffImage computes the per-row difference of two equally sized
// images, fanning rows across a worker pool — the software analogue
// of the paper's one-systolic-array-per-scanline deployment. Rows of
// the result are canonical. With no options it uses per-worker
// lockstep stream engines and GOMAXPROCS workers:
//
//	diff, stats, err := sysrle.DiffImage(a, b)
//	diff, stats, err := sysrle.DiffImage(a, b,
//		sysrle.WithEngine(sysrle.NewSparse()),
//		sysrle.WithWorkers(4),
//		sysrle.WithContext(ctx))
func DiffImage(a, b *Image, opts ...Option) (*Image, *ImageStats, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	if a.Width != b.Width || a.Height != b.Height {
		return nil, nil, fmt.Errorf("sysrle: size mismatch %dx%d vs %dx%d", a.Width, a.Height, b.Width, b.Height)
	}
	workers := cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > a.Height && a.Height > 0 {
		workers = a.Height
	}
	switch cfg.engine.(type) {
	case *core.Stream, *core.ChannelArray, *planner.Planner, *planner.Packed:
		// These engines are one machine each — sharing one across
		// workers would race on its buffers (and, for the planner, its
		// hysteresis state). One worker keeps the semantics; callers
		// wanting row parallelism pass nil (per-worker streams) or a
		// stateless engine.
		workers = 1
	}
	// When the shared engine is a Verified, the recovered-fault count
	// over this image is the counter's growth during the run.
	var verified *core.Verified
	var recoveredBase int64
	if v, ok := cfg.engine.(*core.Verified); ok {
		verified = v
		recoveredBase = v.Recovered()
	}
	out := rle.NewImage(a.Width, a.Height)
	iters := make([]int, a.Height)
	cells := make([]int, a.Height)
	errs := make([]error, a.Height)
	rows := make(chan int)
	// One bad row fails the whole diff, so the first failure stops
	// row distribution instead of paying engine time for the rest of
	// a bad image; already-queued rows are skipped.
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The default engine is a per-worker buffer-reusing
			// lockstep stream (identical semantics, fewer
			// allocations).
			eng := cfg.engine
			if eng == nil {
				eng = core.NewStream()
			}
			arena := rle.NewArena(0)
			var scratch rle.Row
			for y := range rows {
				if failed.Load() || cfg.ctx.Err() != nil {
					continue
				}
				var res core.Result
				var err error
				if cfg.reuse {
					res, err = core.XORRowAppend(eng, scratch[:0], a.Rows[y], b.Rows[y])
				} else {
					res, err = eng.XORRow(a.Rows[y], b.Rows[y])
				}
				if err != nil {
					errs[y] = err
					failed.Store(true)
					continue
				}
				if cfg.reuse {
					scratch = res.Row
					out.Rows[y] = arena.Persist(scratch)
				} else {
					out.Rows[y] = res.Row.Canonicalize()
				}
				iters[y] = res.Iterations
				cells[y] = res.Cells
			}
		}()
	}
feed:
	for y := 0; y < a.Height && !failed.Load(); y++ {
		select {
		case rows <- y:
		case <-cfg.ctx.Done():
			break feed
		}
	}
	close(rows)
	wg.Wait()
	if err := cfg.ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("sysrle: %w", err)
	}
	for y, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("sysrle: row %d: %w", y, err)
		}
	}
	stats := &ImageStats{}
	for y, n := range iters {
		stats.TotalIterations += n
		if n > stats.MaxRowIterations {
			stats.MaxRowIterations = n
		}
		stats.TotalCells += cells[y]
		if cells[y] > stats.MaxRowCells {
			stats.MaxRowCells = cells[y]
		}
		if len(out.Rows[y]) > 0 {
			stats.RowsDiffering++
		}
	}
	if verified != nil {
		stats.FaultsRecovered = int(verified.Recovered() - recoveredBase)
	}
	return out, stats, nil
}
