package sysrle

// testing.B benchmarks, one per paper table/figure, plus wall-clock
// engine comparisons. The iteration-count reproduction itself (the
// quantities the paper's evaluation reports) lives in
// internal/experiments and cmd/benchtab; here each benchmark both
// measures wall time of the corresponding workload and reports the
// algorithmic iteration count as a custom metric (sys-iters/op), so
// `go test -bench .` regenerates the evaluation's shape in one run.

import (
	"fmt"
	"math/rand"
	"testing"

	"sysrle/internal/bitmap"
	"sysrle/internal/broadcast"
	"sysrle/internal/core"
	"sysrle/internal/experiments"
	"sysrle/internal/inspect"
	"sysrle/internal/morph"
	"sysrle/internal/rle"
	"sysrle/internal/workload"
)

// pairsFor pre-generates workload pairs so generation cost stays out
// of the measured loop.
func pairsFor(b *testing.B, width int, density float64, ep workload.ErrorParams, n int, seed int64) []workload.Pair {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]workload.Pair, n)
	for i := range pairs {
		p, err := workload.GeneratePair(rng, workload.PaperRow(width, density), ep)
		if err != nil {
			b.Fatal(err)
		}
		pairs[i] = p
	}
	return pairs
}

// benchEngine measures one engine over a pool of pairs and reports
// the mean systolic iteration count alongside wall time.
func benchEngine(b *testing.B, e core.Engine, pairs []workload.Pair) {
	b.Helper()
	b.ReportAllocs()
	var iters int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		res, err := e.XORRow(p.A, p.B)
		if err != nil {
			b.Fatal(err)
		}
		iters += int64(res.Iterations)
	}
	b.ReportMetric(float64(iters)/float64(b.N), "sys-iters/op")
}

// BenchmarkTable1 regenerates Table 1: systolic vs. sequential across
// image sizes, for ≈3.5% errors and for a fixed 6 error runs of 4
// pixels.
func BenchmarkTable1(b *testing.B) {
	engines := []core.Engine{core.Lockstep{}, core.Sequential{}}
	for _, size := range experiments.Table1Sizes {
		models := []struct {
			name string
			ep   workload.ErrorParams
		}{
			{"3.5pct", workload.CountForPixelFraction(size, 0.035, 2, 6)},
			{"6runs", workload.ErrorParams{Count: 6, MinLen: 4, MaxLen: 4}},
		}
		for _, m := range models {
			pairs := pairsFor(b, size, 0.30, m.ep, 32, int64(size))
			for _, e := range engines {
				b.Run(fmt.Sprintf("%s/errors=%s/size=%d", e.Name(), m.name, size), func(b *testing.B) {
					benchEngine(b, e, pairs)
				})
			}
		}
	}
}

// BenchmarkFigure5 regenerates the Figure 5 sweep: systolic cost as a
// function of the fraction of differing pixels on 10,000-pixel rows.
func BenchmarkFigure5(b *testing.B) {
	for _, pct := range []float64{0, 5, 10, 20, 30, 40, 55, 70} {
		ep := workload.CountForPixelFraction(10000, pct/100, 2, 6)
		pairs := pairsFor(b, 10000, 0.30, ep, 16, int64(1000+pct))
		b.Run(fmt.Sprintf("err=%gpct", pct), func(b *testing.B) {
			benchEngine(b, core.Lockstep{}, pairs)
		})
	}
}

// BenchmarkFigure3Trace regenerates the worked example with full
// tracing (tiny, but keeps the figure's code path measured).
func BenchmarkFigure3Trace(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3Trace(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBroadcastAblation regenerates the §6 ablation: plain
// shifts vs. broadcast-bus variants on similar images.
func BenchmarkBroadcastAblation(b *testing.B) {
	pairs := pairsFor(b, 10000, 0.30, workload.PaperErrors(25), 16, 4242)
	for _, e := range []core.Engine{
		core.Lockstep{},
		broadcast.Bus{},
		broadcast.Bus{Bandwidth: 1},
	} {
		b.Run(e.Name(), func(b *testing.B) {
			benchEngine(b, e, pairs)
		})
	}
}

// BenchmarkEngines compares all engines and the two non-systolic
// baselines (compressed sweep, uncompressed word-parallel XOR) on the
// same similar-image workload — the wall-clock complement to Table 1.
func BenchmarkEngines(b *testing.B) {
	const width = 4096
	pairs := pairsFor(b, width, 0.30, workload.PaperErrors(8), 16, 77)
	for _, e := range []core.Engine{
		core.Lockstep{}, core.Sparse{}, core.Channel{}, core.Sequential{}, broadcast.Bus{},
	} {
		b.Run(e.Name(), func(b *testing.B) { benchEngine(b, e, pairs) })
	}
	b.Run("rle-sweep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			rle.XOR(p.A, p.B)
		}
	})
	b.Run("bitmap-xor", func(b *testing.B) {
		bms := make([][2]*bitmap.Bitmap, len(pairs))
		for i, p := range pairs {
			imgA := rle.NewImage(width, 1)
			imgA.Rows[0] = p.A
			imgB := rle.NewImage(width, 1)
			imgB.Rows[0] = p.B
			bms[i] = [2]*bitmap.Bitmap{bitmap.FromRLE(imgA), bitmap.FromRLE(imgB)}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pair := bms[i%len(bms)]
			if _, err := bitmap.XOR(pair[0], pair[1]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkImageDiff measures the row-parallel image diff used by the
// inspection pipeline, across worker counts.
func BenchmarkImageDiff(b *testing.B) {
	rng := rand.New(rand.NewSource(55))
	layout, err := inspect.GenerateBoard(rng, inspect.DefaultBoard(800, 600))
	if err != nil {
		b.Fatal(err)
	}
	scanBits, _ := inspect.InjectDefects(rng, layout, 10)
	ref, scan := layout.Art.ToRLE(), scanBits.ToRLE()
	for _, workers := range []int{1, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=GOMAXPROCS"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := DiffImage(ref, scan, WithWorkers(workers)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The allocate-per-row path, for comparison with the buffer-reuse
	// default above (the structured version of this comparison is
	// internal/perf and the committed BENCH_PR4.json).
	b.Run("workers=GOMAXPROCS/no-reuse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := DiffImage(ref, scan, WithBufferReuse(false)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPCBInspection measures the full motivating pipeline:
// board diff + labeling + classification.
func BenchmarkPCBInspection(b *testing.B) {
	rng := rand.New(rand.NewSource(66))
	layout, err := inspect.GenerateBoard(rng, inspect.DefaultBoard(800, 600))
	if err != nil {
		b.Fatal(err)
	}
	scanBits, _ := inspect.InjectDefects(rng, layout, 10)
	ref, scan := layout.Art.ToRLE(), scanBits.ToRLE()
	ins := &inspect.Inspector{MinDefectArea: 2}
	b.SetBytes(int64(ref.Width*ref.Height) / 8) // 1-bpp equivalent throughput
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ins.Compare(ref, scan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMorphology measures compressed-domain open/close on a
// generated image (the intro's "morphological operations" in RLE).
func BenchmarkMorphology(b *testing.B) {
	rng := rand.New(rand.NewSource(88))
	img, err := workload.GenerateImage(rng, workload.PaperRow(1024, 0.3), 256)
	if err != nil {
		b.Fatal(err)
	}
	for _, se := range []morph.SE{morph.Box(1), morph.Box(2)} {
		b.Run(fmt.Sprintf("open/box=%d", se.Rx), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := morph.Open(img, se); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAlignment measures scan registration: exhaustive search
// vs. the coarse-to-fine pyramid at the same shift budget.
func BenchmarkAlignment(b *testing.B) {
	rng := rand.New(rand.NewSource(99))
	layout, err := inspect.GenerateBoard(rng, inspect.DefaultBoard(400, 300))
	if err != nil {
		b.Fatal(err)
	}
	ref := layout.Art.ToRLE()
	scan := rle.Translate(ref, 3, -2)
	b.Run("exhaustive/shift=4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			inspect.Align(ref, scan, 4)
		}
	})
	b.Run("pyramid/shift=4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := inspect.AlignPyramid(ref, scan, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pyramid/shift=32", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := inspect.AlignPyramid(ref, scan, 32); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimilaritySweep shows the paper's core scaling claim as a
// wall-clock fact: systolic time grows with the number of errors, not
// with the image size.
func BenchmarkSimilaritySweep(b *testing.B) {
	for _, size := range []int{1024, 8192, 65536} {
		pairs := pairsFor(b, size, 0.30, workload.ErrorParams{Count: 6, MinLen: 4, MaxLen: 4}, 8, int64(size))
		b.Run(fmt.Sprintf("fixed-6-errors/size=%d", size), func(b *testing.B) {
			benchEngine(b, core.Lockstep{}, pairs)
		})
	}
}
