// Package sysrle computes differences of run-length encoded binary
// images with a simulated systolic array, reproducing "A Systolic
// Algorithm to Process Compressed Binary Images" (Ercal, Allen,
// Feng; IPPS 1999).
//
// The central operation is the image difference (pixelwise XOR) of
// two RLE-encoded rows, computed without decompressing them. Several
// engines implement it:
//
//   - the systolic lockstep engine — the paper's cell array simulated
//     deterministically (the default);
//   - the systolic channel engine — the same array with one goroutine
//     per cell and CSP channels for the shift path;
//   - the sparse engine — lockstep-identical semantics at simulation
//     cost proportional to actual data movement;
//   - the stream engine and the fixed-capacity array — buffer-reusing
//     and persistent-hardware deployments of the same machine;
//   - the sequential engine — the paper's §2 merge baseline;
//   - the broadcast-bus engine — the paper's §6 future-work
//     extension.
//
// For similar images the systolic engines converge in time
// proportional to the difference in run counts between the inputs,
// whereas the sequential merge always pays for every run.
//
// The simplest entry points:
//
//	diff, err := sysrle.Diff(rowA, rowB)       // one row
//	img, stats, err := sysrle.DiffImage(a, b)  // whole images, rows in parallel
//
// Richer functionality lives behind the Engine interface (per-run
// statistics, engine selection) and in the subpackages used by the
// examples: PCB inspection, compressed-domain morphology, workload
// generation.
package sysrle

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"sysrle/internal/broadcast"
	"sysrle/internal/core"
	"sysrle/internal/rle"
)

// Run is one foreground run: Length pixels starting at Start.
type Run = rle.Run

// Row is one run-length encoded scanline.
type Row = rle.Row

// Image is a run-length encoded binary image.
type Image = rle.Image

// Result reports a single row difference: the output runs, the
// iteration (or merge-step) count, and the array size used.
type Result = core.Result

// Engine is a row-difference engine; see NewLockstep, NewChannel,
// NewSequential, NewBus.
type Engine = core.Engine

// NewImage returns an all-background RLE image.
func NewImage(width, height int) *Image { return rle.NewImage(width, height) }

// NewLockstep returns the deterministic systolic engine (the paper's
// algorithm; the default used by Diff).
func NewLockstep() Engine { return core.Lockstep{} }

// NewChannel returns the goroutine-per-cell systolic engine.
func NewChannel() Engine { return core.Channel{} }

// NewSequential returns the §2 sequential merge baseline.
func NewSequential() Engine { return core.Sequential{} }

// NewBus returns the §6 broadcast-bus engine; bandwidth is bus
// transactions per cycle, 0 meaning unlimited.
func NewBus(bandwidth int) Engine { return broadcast.Bus{Bandwidth: bandwidth} }

// NewStream returns a lockstep engine that reuses its buffers across
// calls — the lowest-allocation way to push many rows through one
// engine. Not safe for concurrent use; create one per goroutine.
func NewStream() Engine { return core.NewStream() }

// NewSparse returns the sparse simulator: lockstep-identical
// semantics and iteration counts, but simulation cost proportional to
// the data movement the machine actually performs rather than to the
// array length — the fastest way to *measure* the systolic algorithm
// on similar images.
func NewSparse() Engine { return core.Sparse{} }

// FixedArray is a fixed-capacity systolic array with one persistent
// goroutine per cell, through which row pairs are streamed — the
// shape of the deployed hardware. Inputs that need more than its
// cells fail with core.ErrTooWide. Close it when done.
type FixedArray = core.ChannelArray

// NewFixedArray builds and starts a FixedArray with the given number
// of cells.
func NewFixedArray(cells int) *FixedArray { return core.NewChannelArray(cells) }

// Diff returns the canonical image difference (XOR) of two rows,
// computed by the systolic lockstep engine.
func Diff(a, b Row) (Row, error) {
	res, err := core.Lockstep{}.XORRow(a, b)
	if err != nil {
		return nil, err
	}
	return res.Row.Canonicalize(), nil
}

// Encode run-length encodes an uncompressed bitstring.
func Encode(bits []bool) Row { return rle.FromBits(bits) }

// Decode expands a row to an uncompressed bitstring of the given
// width.
func Decode(row Row, width int) []bool { return row.Bits(width) }

// XOR, AND, OR and AndNot are the compressed-domain boolean sweeps —
// single-pass reference implementations (the systolic engines compute
// XOR; these cover the rest of the algebra).
func XOR(a, b Row) Row    { return rle.XOR(a, b) }
func AND(a, b Row) Row    { return rle.AND(a, b) }
func OR(a, b Row) Row     { return rle.OR(a, b) }
func AndNot(a, b Row) Row { return rle.AndNot(a, b) }

// ImageStats aggregates per-row engine costs over an image diff.
type ImageStats struct {
	// TotalIterations sums the per-row iteration counts.
	TotalIterations int
	// MaxRowIterations is the slowest row — the critical path when
	// every scanline has its own array.
	MaxRowIterations int
	// RowsDiffering counts scanlines with a non-empty difference.
	RowsDiffering int
}

// DiffImage computes the per-row difference of two equally sized
// images with the lockstep engine, fanning rows across GOMAXPROCS
// workers. Rows of the result are canonical.
func DiffImage(a, b *Image) (*Image, *ImageStats, error) {
	return DiffImageWith(a, b, nil, 0)
}

// DiffImageWith is DiffImage with an explicit engine (nil = lockstep)
// and worker count (≤0 = GOMAXPROCS).
func DiffImageWith(a, b *Image, engine Engine, workers int) (*Image, *ImageStats, error) {
	if a.Width != b.Width || a.Height != b.Height {
		return nil, nil, fmt.Errorf("sysrle: size mismatch %dx%d vs %dx%d", a.Width, a.Height, b.Width, b.Height)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > a.Height && a.Height > 0 {
		workers = a.Height
	}
	out := rle.NewImage(a.Width, a.Height)
	iters := make([]int, a.Height)
	errs := make([]error, a.Height)
	rows := make(chan int)
	// One bad row fails the whole diff, so the first failure stops
	// row distribution instead of paying engine time for the rest of
	// a bad image; already-queued rows are skipped.
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The default engine is a per-worker buffer-reusing
			// lockstep stream (identical semantics, fewer
			// allocations). A caller-supplied engine is shared, so
			// it must be safe for concurrent use — all the package's
			// engines are.
			eng := engine
			if eng == nil {
				eng = core.NewStream()
			}
			for y := range rows {
				if failed.Load() {
					continue
				}
				res, err := eng.XORRow(a.Rows[y], b.Rows[y])
				if err != nil {
					errs[y] = err
					failed.Store(true)
					continue
				}
				out.Rows[y] = res.Row.Canonicalize()
				iters[y] = res.Iterations
			}
		}()
	}
	for y := 0; y < a.Height && !failed.Load(); y++ {
		rows <- y
	}
	close(rows)
	wg.Wait()
	for y, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("sysrle: row %d: %w", y, err)
		}
	}
	stats := &ImageStats{}
	for y, n := range iters {
		stats.TotalIterations += n
		if n > stats.MaxRowIterations {
			stats.MaxRowIterations = n
		}
		if len(out.Rows[y]) > 0 {
			stats.RowsDiffering++
		}
	}
	return out, stats, nil
}

// Similarity measures re-exported for workload characterization.

// RunCountDiff returns |k1−k2|, the run-count difference the systolic
// iteration count tracks on similar images.
func RunCountDiff(a, b Row) int { return rle.RunCountDiff(a, b) }

// XORRuns returns the run count of the difference — the paper's
// similarity measure.
func XORRuns(a, b Row) int { return rle.XORRuns(a, b) }

// Hamming returns the number of differing pixels.
func Hamming(a, b Row) int { return rle.Hamming(a, b) }
