// Package sysrle computes differences of run-length encoded binary
// images with a simulated systolic array, reproducing "A Systolic
// Algorithm to Process Compressed Binary Images" (Ercal, Allen,
// Feng; IPPS 1999).
//
// The central operation is the image difference (pixelwise XOR) of
// two RLE-encoded rows, computed without decompressing them. Several
// engines implement it:
//
//   - the systolic lockstep engine — the paper's cell array simulated
//     deterministically (the default);
//   - the systolic channel engine — the same array with one goroutine
//     per cell and CSP channels for the shift path;
//   - the sparse engine — lockstep-identical semantics at simulation
//     cost proportional to actual data movement;
//   - the stream engine and the fixed-capacity array — buffer-reusing
//     and persistent-hardware deployments of the same machine;
//   - the sequential engine — the paper's §2 merge baseline;
//   - the broadcast-bus engine — the paper's §6 future-work
//     extension.
//
// For similar images the systolic engines converge in time
// proportional to the difference in run counts between the inputs,
// whereas the sequential merge always pays for every run.
//
// The simplest entry points:
//
//	diff, err := sysrle.Diff(rowA, rowB)       // one row
//	img, stats, err := sysrle.DiffImage(a, b)  // whole images, rows in parallel
//
// Richer functionality lives behind the Engine interface (per-run
// statistics, engine selection) and in the subpackages used by the
// examples: PCB inspection, compressed-domain morphology, workload
// generation.
package sysrle

import (
	"sysrle/internal/broadcast"
	"sysrle/internal/core"
	"sysrle/internal/planner"
	"sysrle/internal/rle"
)

// Run is one foreground run: Length pixels starting at Start.
type Run = rle.Run

// Row is one run-length encoded scanline.
type Row = rle.Row

// Image is a run-length encoded binary image.
type Image = rle.Image

// Result reports a single row difference: the output runs, the
// iteration (or merge-step) count, and the array size used.
type Result = core.Result

// Engine is a row-difference engine; see NewLockstep, NewChannel,
// NewSequential, NewBus.
type Engine = core.Engine

// NewImage returns an all-background RLE image.
func NewImage(width, height int) *Image { return rle.NewImage(width, height) }

// NewLockstep returns the deterministic systolic engine (the paper's
// algorithm; the default used by Diff).
func NewLockstep() Engine { return core.Lockstep{} }

// NewChannel returns the goroutine-per-cell systolic engine.
func NewChannel() Engine { return core.Channel{} }

// NewSequential returns the §2 sequential merge baseline.
func NewSequential() Engine { return core.Sequential{} }

// NewBus returns the §6 broadcast-bus engine; bandwidth is bus
// transactions per cycle, 0 meaning unlimited.
func NewBus(bandwidth int) Engine { return broadcast.Bus{Bandwidth: bandwidth} }

// NewStream returns a lockstep engine that reuses its buffers across
// calls — the lowest-allocation way to push many rows through one
// engine. Not safe for concurrent use; create one per goroutine.
func NewStream() Engine { return core.NewStream() }

// NewSparse returns the sparse simulator: lockstep-identical
// semantics and iteration counts, but simulation cost proportional to
// the data movement the machine actually performs rather than to the
// array length — the fastest way to *measure* the systolic algorithm
// on similar images.
func NewSparse() Engine { return core.Sparse{} }

// NewPacked returns the pack → 64-bit word XOR → repack engine: the
// uncompressed baseline of the paper's §6 comparison. Cost tracks row
// area rather than run similarity, so it wins on dense or dissimilar
// rows. Not safe for concurrent use; create one per goroutine.
func NewPacked() Engine { return planner.NewPacked() }

// NewPlanner returns the hybrid engine: each row is priced on both
// representations from its operand run counts and routed to the RLE
// merge or the packed-word XOR, whichever the calibrated cost model
// says is cheaper, with hysteresis so rows near the crossover don't
// flap. Not safe for concurrent use; create one per goroutine.
func NewPlanner() Engine { return planner.New() }

// FixedArray is a fixed-capacity systolic array with one persistent
// goroutine per cell, through which row pairs are streamed — the
// shape of the deployed hardware. Inputs that need more than its
// cells fail with core.ErrTooWide. Close it when done.
type FixedArray = core.ChannelArray

// NewFixedArray builds and starts a FixedArray with the given number
// of cells.
func NewFixedArray(cells int) *FixedArray { return core.NewChannelArray(cells) }

// Diff returns the canonical image difference (XOR) of two rows,
// computed by the systolic lockstep engine.
func Diff(a, b Row) (Row, error) {
	res, err := core.Lockstep{}.XORRow(a, b)
	if err != nil {
		return nil, err
	}
	return res.Row.Canonicalize(), nil
}

// Encode run-length encodes an uncompressed bitstring.
func Encode(bits []bool) Row { return rle.FromBits(bits) }

// Decode expands a row to an uncompressed bitstring of the given
// width.
func Decode(row Row, width int) []bool { return row.Bits(width) }

// XOR, AND, OR and AndNot are the compressed-domain boolean sweeps —
// single-pass reference implementations (the systolic engines compute
// XOR; these cover the rest of the algebra).
func XOR(a, b Row) Row    { return rle.XOR(a, b) }
func AND(a, b Row) Row    { return rle.AND(a, b) }
func OR(a, b Row) Row     { return rle.OR(a, b) }
func AndNot(a, b Row) Row { return rle.AndNot(a, b) }

// ImageStats aggregates per-row engine costs over an image diff —
// the whole-image form of the per-row Result, losing none of the
// engine detail (iterations, array sizes, recovered faults).
type ImageStats struct {
	// TotalIterations sums the per-row iteration counts.
	TotalIterations int
	// MaxRowIterations is the slowest row — the critical path when
	// every scanline has its own array.
	MaxRowIterations int
	// RowsDiffering counts scanlines with a non-empty difference.
	RowsDiffering int
	// TotalCells sums the per-row array sizes (0 for engines without
	// a cell array, e.g. the sequential baseline) — the total
	// hardware footprint of a one-array-per-row deployment.
	TotalCells int
	// MaxRowCells is the largest per-row array used — the cell
	// capacity a fixed array would need for this image.
	MaxRowCells int
	// FaultsRecovered counts rows whose primary result was rejected
	// and recomputed when the engine is a Verified (NewVerified);
	// always 0 otherwise.
	FaultsRecovered int
}

// MergeImageStats combines the stats of two diffs over disjoint row
// ranges of one image into the stats of the combined range — the
// scatter-gather merge a sharding coordinator uses when it fans one
// huge image out to remote workers by row range (the distributed form
// of the paper's one-array-per-scanline deployment). Sums stay sums
// and maxima stay maxima, so the merge is associative and commutative
// with the zero ImageStats as identity: any split of an image into
// bands, merged in any order and grouping, reproduces the single-node
// DiffImage stats exactly.
func MergeImageStats(a, b ImageStats) ImageStats {
	m := ImageStats{
		TotalIterations: a.TotalIterations + b.TotalIterations,
		RowsDiffering:   a.RowsDiffering + b.RowsDiffering,
		TotalCells:      a.TotalCells + b.TotalCells,
		FaultsRecovered: a.FaultsRecovered + b.FaultsRecovered,
	}
	m.MaxRowIterations = max(a.MaxRowIterations, b.MaxRowIterations)
	m.MaxRowCells = max(a.MaxRowCells, b.MaxRowCells)
	return m
}

// DiffImageWith is DiffImage with a positional engine (nil =
// lockstep) and worker count (≤ 0 = GOMAXPROCS).
//
// Deprecated: use DiffImage with WithEngine and WithWorkers options.
func DiffImageWith(a, b *Image, engine Engine, workers int) (*Image, *ImageStats, error) {
	return DiffImage(a, b, WithEngine(engine), WithWorkers(workers))
}

// Similarity measures re-exported for workload characterization.

// RunCountDiff returns |k1−k2|, the run-count difference the systolic
// iteration count tracks on similar images.
func RunCountDiff(a, b Row) int { return rle.RunCountDiff(a, b) }

// XORRuns returns the run count of the difference — the paper's
// similarity measure.
func XORRuns(a, b Row) int { return rle.XORRuns(a, b) }

// Hamming returns the number of differing pixels.
func Hamming(a, b Row) int { return rle.Hamming(a, b) }
