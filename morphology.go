package sysrle

import "sysrle/internal/morph"

// Compressed-domain binary morphology with rectangular structuring
// elements — the operation class the paper's introduction motivates,
// done without decompressing.

// SE is a rectangular structuring element with horizontal radius Rx
// and vertical radius Ry; Box(1) is the 3×3 box.
type SE = morph.SE

// Box returns the square structuring element of the given radius.
func Box(r int) SE { return morph.Box(r) }

// Dilate grows foreground by the SE.
func Dilate(img *Image, se SE) (*Image, error) { return morph.Dilate(img, se) }

// Erode shrinks foreground by the SE.
func Erode(img *Image, se SE) (*Image, error) { return morph.Erode(img, se) }

// Open removes foreground detail smaller than the SE.
func Open(img *Image, se SE) (*Image, error) { return morph.Open(img, se) }

// Close fills background detail smaller than the SE.
func Close(img *Image, se SE) (*Image, error) { return morph.Close(img, se) }

// Gradient extracts object boundaries (dilation minus erosion).
func Gradient(img *Image, se SE) (*Image, error) { return morph.Gradient(img, se) }
