package sysrle

import (
	"fmt"

	"sysrle/internal/morph"
	"sysrle/internal/runmorph"
)

// Compressed-domain binary morphology — the operation class the
// paper's introduction motivates, done without decompressing. Two
// API generations coexist here:
//
//   - The original centred-box functions (Dilate, Erode, Open, Close,
//     Gradient with an SE of radii) are kept unchanged for
//     compatibility; they now delegate to the run-native interval
//     engine through internal/morph's shim.
//   - The Morph* family exposes the full engine via functional
//     options: arbitrary rectangular SEs with arbitrary origins
//     (WithRectSE, WithSEOrigin), explicit decomposed execution
//     (WithDecomposedSE), plus top-hat, black-hat and hit-or-miss.

// SE is a rectangular structuring element with horizontal radius Rx
// and vertical radius Ry; Box(1) is the 3×3 box.
type SE = morph.SE

// Box returns the square structuring element of the given radius.
func Box(r int) SE { return morph.Box(r) }

// Dilate grows foreground by the SE.
func Dilate(img *Image, se SE) (*Image, error) { return morph.Dilate(img, se) }

// Erode shrinks foreground by the SE.
func Erode(img *Image, se SE) (*Image, error) { return morph.Erode(img, se) }

// Open removes foreground detail smaller than the SE.
func Open(img *Image, se SE) (*Image, error) { return morph.Open(img, se) }

// Close fills background detail smaller than the SE.
func Close(img *Image, se SE) (*Image, error) { return morph.Close(img, se) }

// Gradient extracts object boundaries (dilation minus erosion).
func Gradient(img *Image, se SE) (*Image, error) { return morph.Gradient(img, se) }

// RectSE is the general structuring element of the run-native engine:
// a W×H rectangle with an arbitrary origin inside it. Construct with
// sysrle.Rect / HLineSE / VLineSE, move the origin via WithSEOrigin.
type RectSE = runmorph.SE

// Pattern is a hit-or-miss template; see MorphHitOrMiss and
// ParsePattern.
type Pattern = runmorph.Pattern

// Rect returns a w×h structuring element with a centred origin.
func Rect(w, h int) RectSE { return runmorph.Rect(w, h) }

// HLineSE returns a 1-pixel-tall horizontal line SE of width w.
func HLineSE(w int) RectSE { return runmorph.HLine(w) }

// VLineSE returns a 1-pixel-wide vertical line SE of height h.
func VLineSE(h int) RectSE { return runmorph.VLine(h) }

// ParsePattern builds a hit-or-miss Pattern from an ASCII stencil
// ('1' foreground, '0' background, '.' don't-care) with origin
// (ox, oy).
func ParsePattern(rows []string, ox, oy int) (Pattern, error) {
	return runmorph.ParsePattern(rows, ox, oy)
}

// MorphOption configures the Morph* operations. The zero configuration
// uses the 3×3 centred box executed directly (not decomposed).
type MorphOption func(*morphConfig)

type morphConfig struct {
	se         RectSE
	originSet  bool
	ox, oy     int
	decomposed bool
}

func defaultMorphConfig() morphConfig {
	return morphConfig{se: runmorph.Box(1)}
}

// WithRectSE selects the structuring element (default: the 3×3 box).
func WithRectSE(se RectSE) MorphOption { return func(c *morphConfig) { c.se = se } }

// WithSEOrigin moves the SE origin to (ox, oy) — it must stay inside
// the rectangle. Applied after WithRectSE regardless of option order.
func WithSEOrigin(ox, oy int) MorphOption {
	return func(c *morphConfig) { c.originSet, c.ox, c.oy = true, ox, oy }
}

// WithDecomposedSE executes the operation as a chain over the SE's
// horizontal/vertical factors instead of one 2-D pass. The result is
// identical (the oracle pins the equivalence); the chained form is the
// fast path for tall SEs, whose vertical sweep would otherwise touch
// H rows per output row.
func WithDecomposedSE() MorphOption { return func(c *morphConfig) { c.decomposed = true } }

func resolveMorph(opts []MorphOption) (morphConfig, error) {
	cfg := defaultMorphConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.originSet {
		cfg.se = cfg.se.At(cfg.ox, cfg.oy)
	}
	if err := cfg.se.Validate(); err != nil {
		return cfg, fmt.Errorf("sysrle: %w", err)
	}
	return cfg, nil
}

// MorphDilate dilates img by the configured structuring element.
func MorphDilate(img *Image, opts ...MorphOption) (*Image, error) {
	cfg, err := resolveMorph(opts)
	if err != nil {
		return nil, err
	}
	if cfg.decomposed {
		return runmorph.DilateSeq(img, cfg.se.Decompose())
	}
	return runmorph.Dilate(img, cfg.se)
}

// MorphErode erodes img by the configured structuring element.
func MorphErode(img *Image, opts ...MorphOption) (*Image, error) {
	cfg, err := resolveMorph(opts)
	if err != nil {
		return nil, err
	}
	if cfg.decomposed {
		return runmorph.ErodeSeq(img, cfg.se.Decompose())
	}
	return runmorph.Erode(img, cfg.se)
}

// MorphOpen removes foreground detail smaller than the SE
// (anti-extensive, idempotent).
func MorphOpen(img *Image, opts ...MorphOption) (*Image, error) {
	cfg, err := resolveMorph(opts)
	if err != nil {
		return nil, err
	}
	return runmorph.Open(img, cfg.se)
}

// MorphClose fills background detail smaller than the SE (extensive,
// idempotent; computed on a padded canvas so borders behave as on an
// infinite plane).
func MorphClose(img *Image, opts ...MorphOption) (*Image, error) {
	cfg, err := resolveMorph(opts)
	if err != nil {
		return nil, err
	}
	return runmorph.Close(img, cfg.se)
}

// MorphGradient extracts the boundary band (dilation minus erosion).
func MorphGradient(img *Image, opts ...MorphOption) (*Image, error) {
	cfg, err := resolveMorph(opts)
	if err != nil {
		return nil, err
	}
	return runmorph.Gradient(img, cfg.se)
}

// MorphTopHat returns foreground detail the opening removes — specks
// and strokes thinner than the SE.
func MorphTopHat(img *Image, opts ...MorphOption) (*Image, error) {
	cfg, err := resolveMorph(opts)
	if err != nil {
		return nil, err
	}
	return runmorph.TopHat(img, cfg.se)
}

// MorphBlackHat returns background detail the closing fills —
// pinholes and gaps thinner than the SE.
func MorphBlackHat(img *Image, opts ...MorphOption) (*Image, error) {
	cfg, err := resolveMorph(opts)
	if err != nil {
		return nil, err
	}
	return runmorph.BlackHat(img, cfg.se)
}

// MorphHitOrMiss matches an exact foreground/background template at
// every pixel (pixels outside the frame read as background).
func MorphHitOrMiss(img *Image, pat Pattern) (*Image, error) {
	return runmorph.HitOrMiss(img, pat)
}
