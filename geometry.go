package sysrle

import "sysrle/internal/rle"

// Geometric transforms, computed in the compressed domain (costs
// scale with run counts, not pixels).

// Translate shifts image content by (dx, dy), clipping at the
// borders.
func Translate(img *Image, dx, dy int) *Image { return rle.Translate(img, dx, dy) }

// Crop extracts the rectangle [x0, x0+w) × [y0, y0+h); out-of-range
// regions read as background.
func Crop(img *Image, x0, y0, w, h int) (*Image, error) { return rle.Crop(img, x0, y0, w, h) }

// Paste overwrites the region of dst covered by src placed at
// (x0, y0), clipping at dst's borders.
func Paste(dst, src *Image, x0, y0 int) { rle.Paste(dst, src, x0, y0) }

// FlipH mirrors the image horizontally.
func FlipH(img *Image) *Image { return rle.FlipH(img) }

// FlipV mirrors the image vertically.
func FlipV(img *Image) *Image { return rle.FlipV(img) }

// Transpose swaps rows and columns.
func Transpose(img *Image) *Image { return rle.Transpose(img) }

// Rotate90 rotates 90° clockwise; Rotate180 and Rotate270 likewise.
func Rotate90(img *Image) *Image  { return rle.Rotate90(img) }
func Rotate180(img *Image) *Image { return rle.Rotate180(img) }
func Rotate270(img *Image) *Image { return rle.Rotate270(img) }

// Downsample shrinks the image by an integer factor with OR-pooling
// (an output pixel is set when any source pixel of its block is).
func Downsample(img *Image, factor int) (*Image, error) { return rle.Downsample(img, factor) }
