package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"sysrle/internal/imageio"
)

func TestGenerateRows(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-kind", "rows", "-width", "256", "-height", "8", "-format", "rleb"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	img, err := imageio.Read(&out)
	if err != nil {
		t.Fatal(err)
	}
	if img.Width != 256 || img.Height != 8 {
		t.Errorf("dims %dx%d", img.Width, img.Height)
	}
	if img.Area() == 0 {
		t.Error("generated empty rows")
	}
	if !strings.Contains(errBuf.String(), "runs") {
		t.Errorf("stats line missing: %q", errBuf.String())
	}
}

func TestGenerateBoardAndErrorsPipeline(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.pbm")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-kind", "board", "-width", "300", "-height", "200", "-o", ref}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	refImg, err := imageio.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb it.
	out.Reset()
	if err := run([]string{"-kind", "errors", "-in", ref, "-count", "9", "-format", "rleb"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	scan, err := imageio.Read(&out)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Equal(refImg) {
		t.Error("errors did not change the image")
	}
	if refImg.Width != scan.Width || refImg.Height != scan.Height {
		t.Error("dims changed")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	var a, b, errBuf bytes.Buffer
	args := []string{"-kind", "rows", "-width", "128", "-height", "4", "-seed", "7", "-format", "rleb"}
	if err := run(args, &a, &errBuf); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same seed, different output")
	}
}

func TestGenerateErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-kind", "nope"}, &out, &errBuf); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run([]string{"-kind", "errors"}, &out, &errBuf); err == nil {
		t.Error("errors without -in accepted")
	}
	if err := run([]string{"-kind", "rows", "-format", "gif"}, &out, &errBuf); err == nil {
		t.Error("bad format accepted")
	}
}
