// Command rlegen generates test imagery for the other tools: paper
// §5 row workloads, synthetic PCB boards, and error-perturbed copies
// of existing images.
//
//	rlegen -kind rows  -width 2048 -height 64 -density 0.3 -o base.pbm
//	rlegen -kind board -width 800 -height 600 -o ref.pbm
//	rlegen -kind errors -in ref.pbm -count 12 -o scan.pbm
//
// Output format follows -format (pbm, pbm-plain, png, rlet, rleb).
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"sysrle/internal/imageio"
	"sysrle/internal/inspect"
	"sysrle/internal/rle"
	"sysrle/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "rlegen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("rlegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind    = fs.String("kind", "rows", "what to generate: rows, board, errors")
		width   = fs.Int("width", 1024, "image width")
		height  = fs.Int("height", 64, "image height")
		density = fs.Float64("density", 0.30, "rows: target foreground density")
		count   = fs.Int("count", 10, "errors: number of error runs (length 2-6)")
		in      = fs.String("in", "", "errors: base image to perturb")
		seed    = fs.Int64("seed", 1, "RNG seed")
		output  = fs.String("o", "", "output file (default stdout)")
		format  = fs.String("format", "pbm", fmt.Sprintf("output format: %v", imageio.Formats()))
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))

	var img *rle.Image
	switch *kind {
	case "rows":
		var err error
		img, err = workload.GenerateImage(rng, workload.PaperRow(*width, *density), *height)
		if err != nil {
			return err
		}
	case "board":
		layout, err := inspect.GenerateBoard(rng, inspect.DefaultBoard(*width, *height))
		if err != nil {
			return err
		}
		img = layout.Art.ToRLE()
	case "errors":
		if *in == "" {
			return fmt.Errorf("-kind errors requires -in")
		}
		base, err := imageio.ReadFile(*in)
		if err != nil {
			return err
		}
		img = base.Clone()
		for y := range img.Rows {
			// Spread the error budget over the rows.
			perRow := *count / img.Height
			if y < *count%img.Height {
				perRow++
			}
			if perRow == 0 {
				continue
			}
			mask, err := workload.ErrorMask(rng, img.Width, workload.PaperErrors(perRow))
			if err != nil {
				return err
			}
			img.Rows[y] = rle.XOR(img.Rows[y], mask)
		}
	default:
		return fmt.Errorf("unknown kind %q (rows, board, errors)", *kind)
	}

	stats := rle.Stats(img)
	fmt.Fprintf(stderr, "generated %dx%d: %d runs, %.1f%% foreground, RLE %dB vs bitmap %dB (%.1fx)\n",
		stats.Width, stats.Height, stats.Runs, 100*float64(stats.Foreground)/float64(max(stats.Pixels, 1)),
		stats.RLEBytes, stats.BitmapBytes, stats.Ratio)

	w := stdout
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return imageio.Write(w, *format, img)
}
