// Command sysdiffd serves the compressed-domain inspection system
// over HTTP — the "on-line automatic inspection" deployment shape of
// the paper's §1 application.
//
//	sysdiffd [flags]
//
//	-addr :8422              listen address
//	-max-inflight 64         concurrent requests before shedding 429 (0 = unlimited)
//	-request-timeout 30s     per-request deadline, 503 on expiry (0 = none)
//	-max-upload 67108864     request body limit in bytes, 413 beyond it (0 = none)
//	-read-timeout 1m         socket read deadline
//	-write-timeout 2m        socket write deadline
//	-idle-timeout 2m         keep-alive idle deadline
//	-drain-timeout 30s       graceful-shutdown deadline on SIGINT/SIGTERM
//	-log-json                emit access logs as JSON instead of text
//	-ref-cache 268435456     decoded-reference LRU budget in bytes (0 = default, <0 = off)
//	-ref-ttl 0               evict references idle this long (0 = keep forever)
//	-job-workers 4           batch-inspection worker pool size
//	-job-queue 256           queued scans across all jobs before 429 backpressure
//	-job-retention 15m       how long finished jobs stay pollable
//	-scan-timeout 0          per-scan deadline inside batch jobs (0 = none)
//	-scan-retries 0          retries per failed scan before quarantine
//	-fault-inject ""         chaos mode: inject engine faults per a seeded
//	                         plan, e.g. "rate=0.05,seed=7,kinds=panic+slow";
//	                         faults are detected and recovered by the
//	                         verified engine (dev/test only)
//	-data-dir ""             durable mode: persist references, the job
//	                         journal and the Merkle audit log under this
//	                         directory; acknowledged work survives kill -9
//	                         and resumes at the next start. Empty keeps
//	                         everything in memory (the default).
//	-wal-sync always         journal fsync policy: always | batch | none
//	-wal-sync-every 64       appends per fsync under -wal-sync=batch
//	-audit-batch 64          verdicts per sealed Merkle batch
//	-audit-interval 5s       deadline for sealing a partial audit batch
//	-disk-fault-inject ""    chaos mode for the durable tier: seeded disk
//	                         faults, e.g. "rate=0.01,seed=7,kinds=
//	                         torn-write+enospc+bitrot+sync-fail+slow"
//	                         (dev/test only)
//	-fsck                    offline integrity check of -data-dir (blob
//	                         re-hash, journal replay, audit chain and
//	                         proof verification), then exit 0 if clean,
//	                         1 if anything is corrupt
//	-coordinator             cluster mode: serve as a coordinator that
//	                         fronts the shard ring named by -peers
//	                         instead of processing images locally.
//	                         References are placed by consistent
//	                         hashing; huge diffs scatter by row range
//	                         and merge back exactly
//	-peers ""                comma-separated shard base URLs for
//	                         -coordinator, e.g.
//	                         "http://10.0.0.1:8422,http://10.0.0.2:8422"
//	-split-rows 64           minimum rows per band before a diff
//	                         scatters across shards (<0 disables
//	                         splitting)
//	-peer-timeout 30s        per-shard call deadline in coordinator mode
//	-peer-retries 2          retry budget for idempotent shard calls
//	-hedge 0                 launch a duplicate shard call if the first
//	                         is still pending after this long (0 = off)
//	-replicas 1              copies of each reference across the ring;
//	                         writes fan out to all copies, reads fail
//	                         over between them when a shard dies
//	-probe-interval 0        background shard health-probe period
//	                         (0 = off unless -auto-eject, which
//	                         defaults it to 2s)
//	-probe-failures 3        consecutive probe failures before a shard
//	                         is marked suspect
//	-auto-eject              drain suspect shards from the ring
//	                         automatically and repair replication, as
//	                         if an operator had POSTed the membership
//	                         change
//
// Liveness is GET /healthz; readiness is GET /readyz, which aggregates
// worker-pool, job-queue, reference-cache and load-shed probes — plus
// a storage probe in durable mode — into a per-probe JSON breakdown
// (503 while any probe fails).
//
//	curl -F image=@golden.pbm localhost:8422/v1/references          # → {"id": ...}
//	curl -F b=@scan.pbm "localhost:8422/v1/diff?ref=<id>"           # no re-upload of the golden board
//	curl -F scan=@s1.pbm -F scan=@s2.pbm "localhost:8422/v1/jobs?ref=<id>"
//	curl localhost:8422/v1/jobs/job-000001                          # poll progress
//
//	curl -F a=@ref.pbm -F b=@scan.pbm 'localhost:8422/v1/diff?format=png' -o diff.png
//	curl -F ref=@ref.pbm -F scan=@scan.pbm 'localhost:8422/v1/inspect?min-area=2'
//	curl localhost:8422/metrics
//
// On SIGINT or SIGTERM the server stops accepting connections, drains
// in-flight requests for up to -drain-timeout, then exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sysrle/internal/cluster"
	"sysrle/internal/fault"
	"sysrle/internal/jobs"
	"sysrle/internal/refstore"
	"sysrle/internal/server"
	"sysrle/internal/store"
	"sysrle/internal/wal"
)

// options collects the flag-configurable server shape.
type options struct {
	addr           string
	maxInFlight    int
	requestTimeout time.Duration
	maxUpload      int64
	readTimeout    time.Duration
	writeTimeout   time.Duration
	idleTimeout    time.Duration
	drainTimeout   time.Duration
	logJSON        bool
	refCache       int64
	refTTL         time.Duration
	jobWorkers     int
	jobQueue       int
	jobRetention   time.Duration
	scanTimeout    time.Duration
	scanRetries    int
	faultInject    string

	dataDir         string
	walSync         string
	walSyncEvery    int
	auditBatch      int
	auditInterval   time.Duration
	diskFaultInject string
	fsck            bool

	coordinator   bool
	peers         string
	splitRows     int
	peerTimeout   time.Duration
	peerRetries   int
	hedge         time.Duration
	replicas      int
	probeInterval time.Duration
	probeFailures int
	autoEject     bool
}

func parseFlags(fs *flag.FlagSet, args []string) (options, error) {
	var o options
	fs.StringVar(&o.addr, "addr", ":8422", "listen address")
	fs.IntVar(&o.maxInFlight, "max-inflight", server.DefaultMaxInFlight,
		"max concurrently served requests; beyond it requests get 429 (0 = unlimited)")
	fs.DurationVar(&o.requestTimeout, "request-timeout", server.DefaultRequestTimeout,
		"per-request deadline; 503 on expiry (0 = none)")
	fs.Int64Var(&o.maxUpload, "max-upload", server.MaxUploadBytes,
		"request body limit in bytes; 413 beyond it (0 = none)")
	fs.DurationVar(&o.readTimeout, "read-timeout", time.Minute, "socket read deadline")
	fs.DurationVar(&o.writeTimeout, "write-timeout", 2*time.Minute, "socket write deadline")
	fs.DurationVar(&o.idleTimeout, "idle-timeout", 2*time.Minute, "keep-alive idle deadline")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second,
		"in-flight drain deadline during graceful shutdown")
	fs.BoolVar(&o.logJSON, "log-json", false, "emit logs as JSON")
	fs.Int64Var(&o.refCache, "ref-cache", refstore.DefaultCacheBytes,
		"decoded-reference LRU cache budget in bytes (negative disables caching)")
	fs.DurationVar(&o.refTTL, "ref-ttl", 0,
		"evict references idle this long (0 = keep forever)")
	fs.IntVar(&o.jobWorkers, "job-workers", jobs.DefaultWorkers,
		"batch-inspection worker pool size")
	fs.IntVar(&o.jobQueue, "job-queue", jobs.DefaultQueueDepth,
		"queued scans across all jobs before submissions get 429")
	fs.DurationVar(&o.jobRetention, "job-retention", jobs.DefaultRetention,
		"how long finished jobs stay pollable before collection")
	fs.DurationVar(&o.scanTimeout, "scan-timeout", 0,
		"per-scan deadline inside batch jobs (0 = none)")
	fs.IntVar(&o.scanRetries, "scan-retries", 0,
		"retries per failed batch scan before quarantine (0 = none)")
	fs.StringVar(&o.faultInject, "fault-inject", "",
		`chaos mode: seeded engine-fault plan, e.g. "rate=0.05,seed=7,kinds=panic+slow" (dev/test only)`)
	fs.StringVar(&o.dataDir, "data-dir", "",
		"persist references, the job journal and the audit log under this directory (empty = in-memory)")
	fs.StringVar(&o.walSync, "wal-sync", "always",
		"journal fsync policy: always | batch | none")
	fs.IntVar(&o.walSyncEvery, "wal-sync-every", 0,
		"appends per fsync under -wal-sync=batch (0 = default)")
	fs.IntVar(&o.auditBatch, "audit-batch", 0,
		"verdicts per sealed audit-log Merkle batch (0 = default)")
	fs.DurationVar(&o.auditInterval, "audit-interval", 0,
		"deadline for sealing a partial audit batch (0 = default)")
	fs.StringVar(&o.diskFaultInject, "disk-fault-inject", "",
		`chaos mode: seeded disk-fault plan for the durable tier, e.g. "rate=0.01,seed=7,kinds=torn-write+bitrot" (dev/test only)`)
	fs.BoolVar(&o.fsck, "fsck", false,
		"check -data-dir integrity (blob hashes, journal, audit chain) and exit")
	fs.BoolVar(&o.coordinator, "coordinator", false,
		"serve as a cluster coordinator fronting the shards named by -peers")
	fs.StringVar(&o.peers, "peers", "",
		"comma-separated shard base URLs for -coordinator")
	fs.IntVar(&o.splitRows, "split-rows", cluster.DefaultSplitRows,
		"minimum rows per band before a diff scatters across shards (<0 disables)")
	fs.DurationVar(&o.peerTimeout, "peer-timeout", cluster.DefaultPeerTimeout,
		"per-shard call deadline in coordinator mode")
	fs.IntVar(&o.peerRetries, "peer-retries", 2,
		"retry budget for idempotent shard calls in coordinator mode")
	fs.DurationVar(&o.hedge, "hedge", 0,
		"duplicate a shard call still pending after this long (0 = off)")
	fs.IntVar(&o.replicas, "replicas", 1,
		"copies of each reference across the ring in coordinator mode; reads fail over between them")
	fs.DurationVar(&o.probeInterval, "probe-interval", 0,
		"background shard health-probe period in coordinator mode (0 = off unless -auto-eject)")
	fs.IntVar(&o.probeFailures, "probe-failures", cluster.DefaultProbeFailures,
		"consecutive probe failures before a shard is marked suspect")
	fs.BoolVar(&o.autoEject, "auto-eject", false,
		"drain suspect shards from the ring automatically and repair replication")
	err := fs.Parse(args)
	return o, err
}

// splitPeers parses the -peers flag into shard base URLs. Bare
// host:port entries get an http:// scheme so operators can paste the
// same addresses they handed to the shards' -addr flags.
func splitPeers(s string) []string {
	var peers []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p == "" {
			continue
		}
		if !strings.Contains(p, "://") {
			p = "http://" + p
		}
		peers = append(peers, p)
	}
	return peers
}

// unlimited maps a 0 flag value onto the Config convention where 0
// means "default" and negative means "disabled".
func unlimited[T int | int64 | time.Duration](v T) T {
	if v == 0 {
		return -1
	}
	return v
}

// buildHandler assembles either a local processing server or, under
// -coordinator, a cluster coordinator fronting the -peers ring.
func buildHandler(o options, log *slog.Logger) (http.Handler, func(), error) {
	if o.coordinator {
		peers := splitPeers(o.peers)
		if len(peers) == 0 {
			return nil, nil, fmt.Errorf("-coordinator requires -peers")
		}
		c, err := cluster.New(cluster.Config{
			Peers:          peers,
			SplitRows:      o.splitRows,
			PeerTimeout:    o.peerTimeout,
			Retries:        o.peerRetries,
			HedgeDelay:     o.hedge,
			MaxUploadBytes: o.maxUpload,
			Replicas:       o.replicas,
			ProbeInterval:  o.probeInterval,
			ProbeFailures:  o.probeFailures,
			AutoEject:      o.autoEject,
			Logger:         log,
		})
		if err != nil {
			return nil, nil, err
		}
		log.Info("coordinator mode", "peers", len(peers), "replicas", o.replicas,
			"split_rows", o.splitRows, "hedge", o.hedge.String(), "auto_eject", o.autoEject)
		return c, c.Close, nil
	}
	h, err := localServer(o, log)
	if err != nil {
		return nil, nil, err
	}
	return h, h.Close, nil
}

func localServer(o options, log *slog.Logger) (*server.Server, error) {
	var faultPlan *fault.Plan
	if o.faultInject != "" {
		plan, err := fault.ParsePlan(o.faultInject)
		if err != nil {
			return nil, fmt.Errorf("-fault-inject: %w", err)
		}
		faultPlan = &plan
	}
	var diskPlan *fault.DiskPlan
	if o.diskFaultInject != "" {
		plan, err := fault.ParseDiskPlan(o.diskFaultInject)
		if err != nil {
			return nil, fmt.Errorf("-disk-fault-inject: %w", err)
		}
		diskPlan = &plan
	}
	walSync, err := wal.ParseSyncPolicy(o.walSync)
	if err != nil {
		return nil, fmt.Errorf("-wal-sync: %w", err)
	}
	return server.Open(server.Config{
		MaxUploadBytes: unlimited(o.maxUpload),
		MaxInFlight:    unlimited(o.maxInFlight),
		RequestTimeout: unlimited(o.requestTimeout),
		Logger:         log,
		RefCacheBytes:  o.refCache,
		RefTTL:         o.refTTL,
		JobWorkers:     o.jobWorkers,
		JobQueueDepth:  o.jobQueue,
		JobRetention:   o.jobRetention,
		ScanTimeout:    o.scanTimeout,
		ScanRetries:    o.scanRetries,
		FaultPlan:      faultPlan,

		DataDir:            o.dataDir,
		WALSync:            walSync,
		WALSyncEvery:       o.walSyncEvery,
		AuditBatch:         o.auditBatch,
		AuditFlushInterval: o.auditInterval,
		DiskFaultPlan:      diskPlan,
	})
}

// run serves until ctx is canceled, then drains gracefully. If ready
// is non-nil, the bound listener address is sent once serving.
func run(ctx context.Context, o options, log *slog.Logger, ready chan<- net.Addr) error {
	handler, closeHandler, err := buildHandler(o, log)
	if err != nil {
		return err
	}
	defer closeHandler()
	srv := &http.Server{
		Addr:              o.addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       o.readTimeout,
		WriteTimeout:      o.writeTimeout,
		IdleTimeout:       o.idleTimeout,
		ErrorLog:          slog.NewLogLogger(log.Handler(), slog.LevelWarn),
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	log.Info("sysdiffd listening", "addr", ln.Addr().String())
	if ready != nil {
		ready <- ln.Addr()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Info("shutting down, draining in-flight requests", "drain_timeout", o.drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Warn("drain incomplete, closing", "err", err)
		_ = srv.Close()
		return err
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Info("sysdiffd stopped cleanly")
	return nil
}

func main() {
	o, err := parseFlags(flag.CommandLine, os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if o.logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	log := slog.New(handler)

	if o.fsck {
		if err := runFsck(store.OS(), o.dataDir, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o, log, nil); err != nil {
		log.Error("sysdiffd failed", "err", err)
		os.Exit(1)
	}
}
