// Command sysdiffd serves the compressed-domain inspection system
// over HTTP — the "on-line automatic inspection" deployment shape of
// the paper's §1 application.
//
//	sysdiffd [-addr :8422]
//
//	curl -F a=@ref.pbm -F b=@scan.pbm 'localhost:8422/v1/diff?format=png' -o diff.png
//	curl -F ref=@ref.pbm -F scan=@scan.pbm 'localhost:8422/v1/inspect?min-area=2'
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"sysrle/internal/server"
)

func main() {
	addr := flag.String("addr", ":8422", "listen address")
	flag.Parse()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("sysdiffd listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}
