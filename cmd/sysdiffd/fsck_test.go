package main

import (
	"bytes"
	"flag"
	"strings"
	"testing"
	"time"

	"sysrle/internal/auditlog"
	"sysrle/internal/store"
	"sysrle/internal/wal"
)

// populateDataDir builds a small but complete durable tier: one blob
// per store, a few journal records, one sealed audit batch. Returns
// the id of a reference blob for the corruption case.
func populateDataDir(t *testing.T, fs *store.MemFS) string {
	t.Helper()
	refs, err := store.Open(fs, "data/refs", nil)
	if err != nil {
		t.Fatal(err)
	}
	id, err := refs.Put([]byte("golden reference bytes"))
	if err != nil {
		t.Fatal(err)
	}
	blobs, err := store.Open(fs, "data/blobs", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := blobs.Put([]byte("archived scan bytes")); err != nil {
		t.Fatal(err)
	}
	j, err := wal.Open(fs, "data/wal", wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []string{"one", "two", "three"} {
		if err := j.Append([]byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	log, _, err := auditlog.Open(fs, "data/audit", auditlog.Config{FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := log.Append(auditlog.Verdict{
			Time: time.Unix(int64(1000+i), 0), JobID: "job-000001",
			ScanIndex: i, RefID: id, Engine: "stream", Defects: i,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	return id
}

func TestRunFsckCleanAndCorrupt(t *testing.T) {
	fs := store.NewMemFS()
	id := populateDataDir(t, fs)

	var out bytes.Buffer
	if err := runFsck(fs, "data", &out); err != nil {
		t.Fatalf("fsck on a healthy data dir: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "clean") {
		t.Errorf("clean run output:\n%s", out.String())
	}

	if err := fs.Tamper("data/refs/blobs/"+id[:2]+"/"+id, func(b []byte) { b[0] ^= 0x01 }); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := runFsck(fs, "data", &out); err == nil {
		t.Fatalf("fsck passed a corrupt blob:\n%s", out.String())
	}

	// A second pass sees the quarantine and a clean store again.
	out.Reset()
	if err := runFsck(fs, "data", &out); err != nil {
		t.Fatalf("fsck after quarantine: %v\n%s", err, out.String())
	}
}

func TestRunFsckNeedsDataDir(t *testing.T) {
	if err := runFsck(store.NewMemFS(), "", &bytes.Buffer{}); err == nil {
		t.Fatal("fsck without -data-dir must fail")
	}
}

func TestFsckFlagParses(t *testing.T) {
	fset := flag.NewFlagSet("sysdiffd", flag.ContinueOnError)
	o, err := parseFlags(fset, []string{"-fsck", "-data-dir", "/tmp/x", "-wal-sync", "batch", "-audit-batch", "32"})
	if err != nil {
		t.Fatal(err)
	}
	if !o.fsck || o.dataDir != "/tmp/x" || o.walSync != "batch" || o.auditBatch != 32 {
		t.Fatalf("parsed options = %+v", o)
	}
}
