package main

// sysdiffd -fsck: the offline integrity pass over a -data-dir. Runs
// with the server stopped (it opens the same directories) and checks
// every durability invariant the online paths rely on:
//
//   - both blob stores re-hash every blob; corrupt ones are moved to
//     quarantine/ so the next start serves only verified content
//   - the job journal replays, counting records and noting whether a
//     torn tail was truncated (expected after a crash, not an error)
//   - the audit log re-verifies every batch root and chain link, then
//     re-derives and checks the inclusion proof of every verdict
//
// Exit 0 when everything verifies; 1 when anything is corrupt.

import (
	"fmt"
	"io"
	"path"

	"sysrle/internal/auditlog"
	"sysrle/internal/store"
	"sysrle/internal/wal"
)

// runFsck checks dataDir and writes a human-readable report. The
// returned error is non-nil when any component failed verification.
func runFsck(fsys store.FS, dataDir string, out io.Writer) error {
	if dataDir == "" {
		return fmt.Errorf("-fsck needs -data-dir")
	}
	bad := 0

	for _, tier := range []string{"refs", "blobs"} {
		st, err := store.Open(fsys, path.Join(dataDir, tier), nil)
		if err != nil {
			return fmt.Errorf("%s: %w", tier, err)
		}
		rep, err := st.Fsck()
		if err != nil {
			return fmt.Errorf("%s: fsck: %w", tier, err)
		}
		fmt.Fprintf(out, "%-6s %d blobs, %d bytes: %d corrupt, %d misnamed, %d quarantined\n",
			tier, rep.Checked, rep.Bytes, len(rep.Corrupt), len(rep.Misnamed), rep.Quarantined)
		bad += len(rep.Corrupt) + len(rep.Misnamed)
	}

	j, err := wal.Open(fsys, path.Join(dataDir, "wal"), wal.Options{})
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	records := 0
	stats, err := j.Replay(func([]byte) error { records++; return nil })
	_ = j.Close()
	if err != nil {
		return fmt.Errorf("wal: replay: %w", err)
	}
	fmt.Fprintf(out, "wal    %d records in %d segments", records, stats.Segments)
	if stats.Truncated {
		fmt.Fprintf(out, " (torn tail truncated — normal after a crash)")
	}
	fmt.Fprintln(out)

	log, loaded, err := auditlog.Open(fsys, path.Join(dataDir, "audit"), auditlog.Config{FlushInterval: -1})
	if err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	defer log.Close()
	if len(loaded.Orphaned) > 0 {
		fmt.Fprintf(out, "audit  %d batch file(s) failed chain verification and were orphaned: %v\n",
			len(loaded.Orphaned), loaded.Orphaned)
		bad += len(loaded.Orphaned)
	}
	rep, err := log.VerifyAll()
	if err != nil {
		return fmt.Errorf("audit: verify: %w", err)
	}
	proofs, badProofs := 0, 0
	for _, info := range log.Batches() {
		b, err := log.Batch(info.Seq)
		if err != nil {
			badProofs++
			continue
		}
		for _, v := range b.Verdicts {
			proofs++
			p, err := log.Proof(v.ID)
			if err != nil {
				badProofs++
				continue
			}
			if err := auditlog.VerifyProof(p); err != nil {
				badProofs++
			}
		}
	}
	fmt.Fprintf(out, "audit  %d batches, %d verdicts, %d proofs re-verified: %d chain errors, %d bad proofs\n",
		rep.Batches, rep.Verdicts, proofs, len(rep.Errors), badProofs)
	bad += len(rep.Errors) + badProofs

	if bad > 0 {
		return fmt.Errorf("fsck: %d problem(s) found", bad)
	}
	fmt.Fprintln(out, "clean")
	return nil
}
