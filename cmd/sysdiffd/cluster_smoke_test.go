package main

// Multi-process cluster smoke: build the real binaries, boot a
// coordinator with -replicas=2 fronting three shard processes, drive
// a seeded loadgen burst, check the coordinator's scatter-gather diff
// answers byte-identically to a single node, then kill one shard and
// check every reference still reads byte-identical from its replica —
// zero 404s, before any rebalance. Gated behind SYSRLE_CLUSTER_SMOKE=1
// because it compiles two binaries and forks four daemons —
// `make cluster-smoke` sets the gate.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"mime/multipart"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sysrle/internal/apiclient"
	"sysrle/internal/imageio"
	"sysrle/internal/rle"
	"sysrle/internal/workload"
)

func buildBinary(t *testing.T, dir, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	return filepath.Dir(strings.TrimSpace(string(out)))
}

// startDaemon launches one sysdiffd process on an ephemeral port and
// returns its base URL, parsed from the "sysdiffd listening" log line.
func startDaemon(t *testing.T, bin string, args ...string) string {
	url, _ := startKillableDaemon(t, bin, args...)
	return url
}

// startKillableDaemon is startDaemon plus a hard-kill switch, so the
// smoke test can model shard death mid-run.
func startKillableDaemon(t *testing.T, bin string, args ...string) (string, func()) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", bin, err)
	}
	var killed bool
	kill := func() {
		if !killed {
			killed = true
			cmd.Process.Kill()
			cmd.Wait()
		}
	}
	t.Cleanup(kill)

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, "sysdiffd listening") {
				for _, f := range strings.Fields(line) {
					if a, ok := strings.CutPrefix(f, "addr="); ok {
						addrCh <- a
					}
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr, kill
	case <-time.After(15 * time.Second):
		t.Fatalf("%s %v never logged its listen address", bin, args)
		return "", nil
	}
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	c := apiclient.MustNew(base, apiclient.Options{Timeout: 2 * time.Second})
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Ready(context.Background())
		if err == nil && st.Ready {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s never became ready", base)
}

func TestClusterSmoke(t *testing.T) {
	if os.Getenv("SYSRLE_CLUSTER_SMOKE") != "1" {
		t.Skip("set SYSRLE_CLUSTER_SMOKE=1 (or run `make cluster-smoke`) to run the multi-process smoke")
	}
	dir := t.TempDir()
	sysdiffd := buildBinary(t, dir, "./cmd/sysdiffd")
	loadgen := buildBinary(t, dir, "./cmd/loadgen")

	shard1 := startDaemon(t, sysdiffd)
	shard2 := startDaemon(t, sysdiffd)
	shard3, killShard3 := startKillableDaemon(t, sysdiffd)
	coord := startDaemon(t, sysdiffd,
		"-coordinator", "-peers", shard1+","+shard2+","+shard3,
		"-replicas", "2", "-split-rows", "48")
	for _, base := range []string{shard1, shard2, shard3, coord} {
		waitReady(t, base)
	}

	// Scatter-gather correctness: the coordinator's diff of a tall
	// image must be byte-identical to a single shard's answer.
	rng := workloadRNG(41)
	a, err := workload.GenerateImage(rng, workload.PaperRow(320, 0.3), 400)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.GenerateImage(rng, workload.PaperRow(320, 0.3), 400)
	if err != nil {
		t.Fatal(err)
	}
	single := rawDiff(t, shard1, a, b)
	clustered := rawDiff(t, coord, a, b)
	if !bytes.Equal(single, clustered) {
		t.Fatalf("coordinator scatter-gather diff differs from single node (%d vs %d bytes)",
			len(single), len(clustered))
	}

	// Seeded loadgen burst against the coordinator: no errors, and the
	// refhot workload leaves a ref-placement hit ratio in telemetry.
	benchOut := filepath.Join(dir, "smoke-bench.json")
	cmd := exec.Command(loadgen,
		"-targets", "cluster="+coord,
		"-workload", "refhot", "-rate", "40", "-duration", "2s",
		"-width", "256", "-height", "128", "-refs", "4", "-seed", "5",
		"-o", benchOut)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out)
	}
	data, err := os.ReadFile(benchOut)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Targets []struct {
			Requests         int      `json:"requests"`
			Errors           int      `json:"errors"`
			P50Ms            float64  `json:"p50_ms"`
			RefCacheHitRatio *float64 `json:"ref_cache_hit_ratio"`
		} `json:"targets"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bench report: %v\n%s", err, data)
	}
	if len(rep.Targets) != 1 || rep.Targets[0].Errors != 0 || rep.Targets[0].Requests < 10 {
		t.Fatalf("loadgen burst: %+v", rep.Targets)
	}
	if rep.Targets[0].RefCacheHitRatio == nil || *rep.Targets[0].RefCacheHitRatio <= 0 {
		t.Fatalf("coordinator exposed no ref-placement hit ratio: %+v", rep.Targets[0])
	}

	// Replication failover: register references, kill one shard, and
	// every reference must still read byte-identical canonical RLEB
	// through the coordinator — zero 404s — before any rebalance runs.
	coordClient := apiclient.MustNew(coord, apiclient.Options{Timeout: 5 * time.Second})
	ctx := context.Background()
	content := map[string][]byte{}
	for i := 0; i < 6; i++ {
		img, err := workload.GenerateImage(workloadRNG(int64(90+i)), workload.PaperRow(128, 0.3), 96)
		if err != nil {
			t.Fatal(err)
		}
		meta, err := coordClient.PutReference(ctx, img)
		if err != nil {
			t.Fatalf("PutReference %d: %v", i, err)
		}
		var buf bytes.Buffer
		if err := imageio.Write(&buf, "rleb", img); err != nil {
			t.Fatal(err)
		}
		content[meta.ID] = buf.Bytes()
	}
	killShard3()
	for id, want := range content {
		resp, err := http.Get(coord + "/v1/references/" + id + "/content")
		if err != nil {
			t.Fatalf("ref %s read after shard kill: %v", id[:12], err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ref %s after shard kill: status %d %s (want 200, zero 404s)",
				id[:12], resp.StatusCode, body)
		}
		if !bytes.Equal(body, want) {
			t.Fatalf("ref %s content differs after failover", id[:12])
		}
	}

	// Membership change + rebalance restores full replication; reads
	// stay byte-identical.
	reb, _ := json.Marshal(map[string][]string{"peers": {shard1, shard2}})
	resp, err := http.Post(coord+"/v1/cluster/rebalance", "application/json", bytes.NewReader(reb))
	if err != nil {
		t.Fatalf("POST rebalance: %v", err)
	}
	rebBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rebalance status %d: %s", resp.StatusCode, rebBody)
	}
	for id, want := range content {
		resp, err := http.Get(coord + "/v1/references/" + id + "/content")
		if err != nil {
			t.Fatalf("ref %s read after rebalance: %v", id[:12], err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !bytes.Equal(body, want) {
			t.Fatalf("ref %s wrong after rebalance: status %d", id[:12], resp.StatusCode)
		}
	}
}

// rawDiff posts a diff and returns the raw rleb body, so byte-level
// equality is checked rather than decoded equality.
func rawDiff(t *testing.T, base string, a, b *rle.Image) []byte {
	t.Helper()
	var buf bytes.Buffer
	mw, err := multipartImages(&buf, map[string]*rle.Image{"a": a, "b": b})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/diff?format=rleb", mw, &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diff via %s: %d %s", base, resp.StatusCode, body)
	}
	return body
}

func multipartImages(buf *bytes.Buffer, images map[string]*rle.Image) (contentType string, err error) {
	w := multipart.NewWriter(buf)
	for field, img := range images {
		part, err := w.CreateFormFile(field, field+".rleb")
		if err != nil {
			return "", err
		}
		if err := imageio.Write(part, "rleb", img); err != nil {
			return "", err
		}
	}
	if err := w.Close(); err != nil {
		return "", err
	}
	return w.FormDataContentType(), nil
}

func workloadRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
