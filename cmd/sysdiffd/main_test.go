package main

import (
	"context"
	"flag"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func testOptions(t *testing.T) options {
	t.Helper()
	fs := flag.NewFlagSet("sysdiffd", flag.ContinueOnError)
	o, err := parseFlags(fs, []string{"-addr", "127.0.0.1:0", "-drain-timeout", "5s"})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func discard() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// TestGracefulShutdown is the deployment contract: the server answers
// requests, then on cancellation (what SIGINT/SIGTERM trigger via
// signal.NotifyContext) drains and run returns nil — exit code 0.
func TestGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, testOptions(t), discard(), ready) }()

	var addr net.Addr
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr.String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	// A burst of requests in flight while the signal arrives: all must
	// complete and the drain must still exit cleanly.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(base + "/metrics")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	cancel()
	wg.Wait()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want nil (exit 0)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func TestParseFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("sysdiffd", flag.ContinueOnError)
	o, err := parseFlags(fs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != ":8422" || o.maxInFlight == 0 || o.requestTimeout == 0 {
		t.Errorf("unexpected defaults: %+v", o)
	}
}

func TestUnlimitedMapping(t *testing.T) {
	if got := unlimited(0); got != -1 {
		t.Errorf("unlimited(0) = %d, want -1", got)
	}
	if got := unlimited(7); got != 7 {
		t.Errorf("unlimited(7) = %d, want 7", got)
	}
}

func TestRobustnessFlags(t *testing.T) {
	fs := flag.NewFlagSet("sysdiffd", flag.ContinueOnError)
	o, err := parseFlags(fs, []string{
		"-scan-timeout", "15s",
		"-scan-retries", "3",
		"-fault-inject", "rate=0.1,seed=9,kinds=slow",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.scanTimeout != 15*time.Second || o.scanRetries != 3 {
		t.Errorf("scan knobs: %+v", o)
	}
	if o.faultInject != "rate=0.1,seed=9,kinds=slow" {
		t.Errorf("fault plan: %q", o.faultInject)
	}
}

// TestBadFaultPlanRejected: a malformed -fault-inject value must fail
// startup loudly, not silently run without chaos.
func TestBadFaultPlanRejected(t *testing.T) {
	fs := flag.NewFlagSet("sysdiffd", flag.ContinueOnError)
	o, err := parseFlags(fs, []string{"-addr", "127.0.0.1:0", "-fault-inject", "kinds=quantum"})
	if err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), o, discard(), nil); err == nil ||
		!strings.Contains(err.Error(), "-fault-inject") {
		t.Fatalf("run err = %v, want -fault-inject parse failure", err)
	}
}

// TestFaultInjectServes: a valid chaos plan still yields a healthy,
// ready server (faults are recovered internally).
func TestFaultInjectServes(t *testing.T) {
	fs := flag.NewFlagSet("sysdiffd", flag.ContinueOnError)
	o, err := parseFlags(fs, []string{
		"-addr", "127.0.0.1:0", "-drain-timeout", "5s",
		"-fault-inject", "rate=0.05,seed=3", "-scan-retries", "1",
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, o, discard(), ready) }()
	var addr net.Addr
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	resp, err := http.Get("http://" + addr.String() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz under chaos plan: %d, want 200", resp.StatusCode)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("run returned %v", err)
	}
}

func TestSplitPeers(t *testing.T) {
	got := splitPeers(" http://a:1 , b:2,, https://c:3 ")
	want := []string{"http://a:1", "http://b:2", "https://c:3"}
	if len(got) != len(want) {
		t.Fatalf("splitPeers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("peer[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if splitPeers("  ,  ") != nil {
		t.Error("blank peer list should be nil")
	}
}
