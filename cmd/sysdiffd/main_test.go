package main

import (
	"context"
	"flag"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func testOptions(t *testing.T) options {
	t.Helper()
	fs := flag.NewFlagSet("sysdiffd", flag.ContinueOnError)
	o, err := parseFlags(fs, []string{"-addr", "127.0.0.1:0", "-drain-timeout", "5s"})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func discard() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// TestGracefulShutdown is the deployment contract: the server answers
// requests, then on cancellation (what SIGINT/SIGTERM trigger via
// signal.NotifyContext) drains and run returns nil — exit code 0.
func TestGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, testOptions(t), discard(), ready) }()

	var addr net.Addr
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr.String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	// A burst of requests in flight while the signal arrives: all must
	// complete and the drain must still exit cleanly.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(base + "/metrics")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	cancel()
	wg.Wait()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want nil (exit 0)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func TestParseFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("sysdiffd", flag.ContinueOnError)
	o, err := parseFlags(fs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != ":8422" || o.maxInFlight == 0 || o.requestTimeout == 0 {
		t.Errorf("unexpected defaults: %+v", o)
	}
}

func TestUnlimitedMapping(t *testing.T) {
	if got := unlimited(0); got != -1 {
		t.Errorf("unlimited(0) = %d, want -1", got)
	}
	if got := unlimited(7); got != 7 {
		t.Errorf("unlimited(7) = %d, want 7", got)
	}
}
