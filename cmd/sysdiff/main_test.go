package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sysrle"
	"sysrle/internal/apiclient"
	"sysrle/internal/imageio"
	"sysrle/internal/rle"
	"sysrle/internal/server"
)

func TestPickEngine(t *testing.T) {
	for name, want := range map[string]string{
		"lockstep":   "systolic-lockstep",
		"channel":    "systolic-channel",
		"sequential": "sequential",
		"bus":        "systolic-bus",
	} {
		e, err := sysrle.NewEngineByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if e.Name() != want {
			t.Errorf("NewEngineByName(%q).Name() = %q, want %q", name, e.Name(), want)
		}
	}
	if _, err := sysrle.NewEngineByName("warp-drive"); err == nil {
		t.Error("unknown engine accepted")
	}
}

func writeTestImage(t *testing.T, dir, name string, img *rle.Image) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := imageio.Write(f, "pbm", img); err != nil {
		t.Fatal(err)
	}
	return path
}

func testPair(t *testing.T) (string, string, *rle.Image) {
	t.Helper()
	a := rle.NewImage(32, 4)
	b := rle.NewImage(32, 4)
	a.SetRow(1, rle.Row{{Start: 10, Length: 3}, {Start: 16, Length: 2}})
	b.SetRow(1, rle.Row{{Start: 10, Length: 3}, {Start: 18, Length: 2}})
	dir := t.TempDir()
	want, err := rle.XORImage(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return writeTestImage(t, dir, "a.pbm", a), writeTestImage(t, dir, "b.pbm", b), want
}

func TestRunEndToEnd(t *testing.T) {
	pathA, pathB, want := testPair(t)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-stats", "-format", "rleb", pathA, pathB}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	got, err := imageio.Read(&stdout)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("diff output wrong")
	}
	if !strings.Contains(stderr.String(), "iterations:") {
		t.Errorf("stats missing: %q", stderr.String())
	}
}

func TestRunToOutputFile(t *testing.T) {
	pathA, pathB, want := testPair(t)
	out := filepath.Join(t.TempDir(), "diff.png")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-o", out, "-format", "png", pathA, pathB}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if stdout.Len() != 0 {
		t.Error("stdout written despite -o")
	}
	got, err := imageio.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("file output wrong")
	}
}

func TestRunErrors(t *testing.T) {
	pathA, pathB, _ := testPair(t)
	var out, errBuf bytes.Buffer
	cases := [][]string{
		{pathA},                              // missing operand
		{"-engine", "quantum", pathA, pathB}, // bad engine
		{pathA, filepath.Join(t.TempDir(), "missing.pbm")}, // missing file
		{"-format", "bmp", pathA, pathB},                   // bad output format
	}
	for _, args := range cases {
		if err := run(args, &out, &errBuf); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunRemoteServer(t *testing.T) {
	srv := server.New()
	ts := httptest.NewServer(srv)
	defer func() { ts.Close(); srv.Close() }()

	pathA, pathB, want := testPair(t)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-server", ts.URL, "-stats", "-format", "rleb", pathA, pathB}, &stdout, &stderr); err != nil {
		t.Fatalf("remote run: %v (stderr: %s)", err, stderr.String())
	}
	got, err := imageio.Read(&stdout)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("remote diff output wrong")
	}
	if !strings.Contains(stderr.String(), "engine=systolic-") {
		t.Errorf("remote stats missing engine: %q", stderr.String())
	}
}

func TestRunRemoteRef(t *testing.T) {
	srv := server.New()
	ts := httptest.NewServer(srv)
	defer func() { ts.Close(); srv.Close() }()

	pathA, pathB, want := testPair(t)
	a, err := imageio.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := apiclient.MustNew(ts.URL, apiclient.Options{}).PutReference(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	if err := run([]string{"-server", ts.URL, "-ref", meta.ID, "-format", "rleb", pathB}, &stdout, &stderr); err != nil {
		t.Fatalf("ref run: %v (stderr: %s)", err, stderr.String())
	}
	got, err := imageio.Read(&stdout)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("ref-based diff output wrong")
	}

	// -ref without -server is rejected.
	if err := run([]string{"-ref", meta.ID, pathB}, &stdout, &stderr); err == nil {
		t.Error("-ref without -server accepted")
	}
}
