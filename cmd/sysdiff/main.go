// Command sysdiff computes the difference (XOR) of two binary images
// in the compressed domain:
//
//	sysdiff [-engine lockstep|channel|sequential|sparse|stream|bus|verified] \
//	        [-o out.pbm] [-format pbm|pbm-plain|png|rlet|rleb] \
//	        [-stats] a.pbm b.pbm
//
// Inputs may be PBM (P1/P4), PNG, or this repository's RLE
// text/binary formats; the format is sniffed from the magic bytes.
// The output defaults to PBM on stdout. With -stats, per-image
// engine statistics (iterations, rows differing) go to stderr — the
// numbers the paper's evaluation is about.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sysrle"
	"sysrle/internal/imageio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sysdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sysdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		engineName = fs.String("engine", "lockstep", "diff engine: "+strings.Join(sysrle.EngineNames(), ", "))
		output     = fs.String("o", "", "output file (default stdout)")
		format     = fs.String("format", "pbm", fmt.Sprintf("output format: %v", imageio.Formats()))
		stats      = fs.Bool("stats", false, "print engine statistics to stderr")
		workers    = fs.Int("workers", 0, "row-parallel workers (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("expected two image arguments, got %d", fs.NArg())
	}

	engine, err := sysrle.NewEngineByName(*engineName)
	if err != nil {
		return err
	}
	a, err := imageio.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := imageio.ReadFile(fs.Arg(1))
	if err != nil {
		return err
	}

	diff, st, err := sysrle.DiffImage(a, b,
		sysrle.WithEngine(engine),
		sysrle.WithWorkers(*workers))
	if err != nil {
		return err
	}
	if *stats {
		fmt.Fprintf(stderr, "engine=%s rows=%d differing=%d diff-runs=%d diff-pixels=%d\n",
			engine.Name(), diff.Height, st.RowsDiffering, diff.RunCount(), diff.Area())
		fmt.Fprintf(stderr, "iterations: total=%d max-per-row=%d cells: total=%d max-per-row=%d\n",
			st.TotalIterations, st.MaxRowIterations, st.TotalCells, st.MaxRowCells)
	}
	w := stdout
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return imageio.Write(w, *format, diff)
}
