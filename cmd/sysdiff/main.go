// Command sysdiff computes the difference (XOR) of two binary images
// in the compressed domain:
//
//	sysdiff [-engine lockstep|channel|sequential|sparse|stream|bus|verified] \
//	        [-o out.pbm] [-format pbm|pbm-plain|png|rlet|rleb] \
//	        [-server http://host:8422] [-ref <id>] \
//	        [-stats] a.pbm b.pbm
//
// Inputs may be PBM (P1/P4), PNG, or this repository's RLE
// text/binary formats; the format is sniffed from the magic bytes.
// The output defaults to PBM on stdout. With -stats, per-image
// engine statistics (iterations, rows differing) go to stderr — the
// numbers the paper's evaluation is about.
//
// With -server the diff is computed remotely by a sysdiffd instance
// (or a cluster coordinator) through the typed v1 client; -ref names
// a registered reference in place of the first image argument, so the
// golden artwork is never re-uploaded.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sysrle"
	"sysrle/internal/apiclient"
	"sysrle/internal/imageio"
	"sysrle/internal/rle"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sysdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sysdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		engineName = fs.String("engine", "lockstep", "diff engine: "+strings.Join(sysrle.EngineNames(), ", "))
		output     = fs.String("o", "", "output file (default stdout)")
		format     = fs.String("format", "pbm", fmt.Sprintf("output format: %v", imageio.Formats()))
		stats      = fs.Bool("stats", false, "print engine statistics to stderr")
		workers    = fs.Int("workers", 0, "row-parallel workers (0 = GOMAXPROCS)")
		serverURL  = fs.String("server", "", "compute the diff on this sysdiffd (or coordinator) instead of locally")
		refID      = fs.String("ref", "", "with -server: use this registered reference as the first image")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	wantArgs := 2
	if *refID != "" {
		if *serverURL == "" {
			return fmt.Errorf("-ref requires -server")
		}
		wantArgs = 1
	}
	if fs.NArg() != wantArgs {
		fs.Usage()
		return fmt.Errorf("expected %d image argument(s), got %d", wantArgs, fs.NArg())
	}

	var diff *rle.Image
	var st sysrle.ImageStats
	var engineUsed string
	if *serverURL != "" {
		res, err := remoteDiff(*serverURL, *engineName, *refID, fs.Args())
		if err != nil {
			return err
		}
		diff, st, engineUsed = res.Image, res.Stats, res.Engine
	} else {
		engine, err := sysrle.NewEngineByName(*engineName)
		if err != nil {
			return err
		}
		a, err := imageio.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		b, err := imageio.ReadFile(fs.Arg(1))
		if err != nil {
			return err
		}
		var stp *sysrle.ImageStats
		diff, stp, err = sysrle.DiffImage(a, b,
			sysrle.WithEngine(engine),
			sysrle.WithWorkers(*workers))
		if err != nil {
			return err
		}
		st, engineUsed = *stp, engine.Name()
	}
	if *stats {
		fmt.Fprintf(stderr, "engine=%s rows=%d differing=%d diff-runs=%d diff-pixels=%d\n",
			engineUsed, diff.Height, st.RowsDiffering, diff.RunCount(), diff.Area())
		fmt.Fprintf(stderr, "iterations: total=%d max-per-row=%d cells: total=%d max-per-row=%d\n",
			st.TotalIterations, st.MaxRowIterations, st.TotalCells, st.MaxRowCells)
	}
	w := stdout
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return imageio.Write(w, *format, diff)
}

// remoteDiff ships the diff to a sysdiffd or coordinator through the
// typed client. With a -ref id only the scan is uploaded.
func remoteDiff(serverURL, engineName, refID string, files []string) (*apiclient.DiffResult, error) {
	c, err := apiclient.New(serverURL, apiclient.Options{})
	if err != nil {
		return nil, err
	}
	req := apiclient.DiffRequest{RefID: refID}
	if engineName != "lockstep" { // flag default means "server default" remotely
		req.Engine = engineName
	}
	scanIdx := 0
	if refID == "" {
		if req.A, err = imageio.ReadFile(files[0]); err != nil {
			return nil, err
		}
		scanIdx = 1
	}
	if req.B, err = imageio.ReadFile(files[scanIdx]); err != nil {
		return nil, err
	}
	return c.Diff(context.Background(), req)
}
