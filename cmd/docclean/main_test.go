package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sysrle/internal/docclean"
	"sysrle/internal/imageio"
	"sysrle/internal/rle"
	"sysrle/internal/server"
)

// fixture writes the standard cleanup test page to disk: a solid
// block, a full-width rule, and three 1px specks.
func fixture(t *testing.T) string {
	t.Helper()
	img := rle.NewImage(80, 48)
	for y := 10; y < 20; y++ {
		img.Rows[y] = rle.Row{rle.Span(10, 29)}
	}
	img.Rows[30] = rle.Row{rle.Span(0, 79)}
	img.Rows[31] = rle.Row{rle.Span(0, 79)}
	for _, p := range [][2]int{{5, 3}, {70, 5}, {40, 44}} {
		img.Rows[p[1]] = rle.Normalize(append(img.Rows[p[1]], rle.Span(p[0], p[0])))
	}
	path := filepath.Join(t.TempDir(), "page.pbm")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := imageio.Write(f, "pbm", img); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunReportAndOutput(t *testing.T) {
	page := fixture(t)
	out := filepath.Join(t.TempDir(), "clean.pbm")
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-in", page, "-o", out,
		"-max-speckle", "4", "-min-line", "40",
		"-close-x", "5", "-close-y", "3", "-min-block", "10",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr %q)", err, stderr.String())
	}
	var rep docclean.Result
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, stdout.String())
	}
	if rep.SpecklesRemoved != 3 || rep.LinesH != 1 || len(rep.Blocks) != 1 {
		t.Errorf("report %+v", rep)
	}
	cleaned, err := imageio.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if cleaned.Area() != 200 {
		t.Errorf("cleaned page area %d, want 200", cleaned.Area())
	}
}

func TestRunGenerate(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-gen", "a4", "-seed", "3"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	var rep docclean.Result
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.SpecklesRemoved < 100 || len(rep.Blocks) < 2 {
		t.Errorf("A4 report implausible: %+v", rep)
	}
}

func TestRunFlagErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	cases := [][]string{
		{},                             // neither -in nor -gen
		{"-in", "x.pbm", "-gen", "a4"}, // both
		{"-gen", "letter"},             // unknown generator
		{"-in", "/does/not/exist.pbm"},
		{"-gen", "a4", "-min-line", "-2"},
	}
	for i, args := range cases {
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("case %d (%s): no error", i, strings.Join(args, " "))
		}
	}
}

func TestRunRemoteServer(t *testing.T) {
	srv := server.New()
	ts := httptest.NewServer(srv)
	defer func() { ts.Close(); srv.Close() }()

	page := fixture(t)
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-in", page, "-server", ts.URL,
		"-max-speckle", "4", "-min-line", "40",
		"-close-x", "5", "-close-y", "3", "-min-block", "10",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("remote run: %v (stderr %q)", err, stderr.String())
	}
	var rep docclean.Result
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("remote report not JSON: %v\n%s", err, stdout.String())
	}
	if rep.SpecklesRemoved != 3 || rep.LinesH != 1 || len(rep.Blocks) != 1 {
		t.Errorf("remote report %+v", rep)
	}

	// -o with -server is rejected up front.
	if err := run([]string{"-in", page, "-server", ts.URL, "-o", "x.pbm"}, &stdout, &stderr); err == nil {
		t.Error("-o with -server accepted")
	}
}
