// Command docclean runs the scanned-document cleanup pipeline on one
// page: despeckle, ruled-line extraction and block segmentation, all
// in the compressed (run-length) domain.
//
//	docclean -in page.pbm                      # JSON report to stdout
//	docclean -in page.pbm -o clean.pbm         # also write the cleaned page
//	docclean -gen a4 -seed 7 -o clean.png      # synthetic A4 test page
//	docclean -in page.pbm -server http://host:8422   # clean remotely
//
// Tuning flags mirror the /v1/docclean query parameters; flags left
// at 0 default from the page size inside the pipeline. With -server
// the pipeline runs on a sysdiffd instance (or cluster coordinator)
// through the typed v1 client; the JSON report prints the same way,
// but -o is unavailable remotely (the report endpoint returns no
// cleaned image).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"sysrle/internal/apiclient"
	"sysrle/internal/docclean"
	"sysrle/internal/imageio"
	"sysrle/internal/rle"
	"sysrle/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "docclean:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("docclean", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in         = fs.String("in", "", "input page (pbm, png, rlet, rleb; sniffed)")
		gen        = fs.String("gen", "", `generate a synthetic page instead of reading one: "a4"`)
		seed       = fs.Int64("seed", 1, "RNG seed for -gen")
		output     = fs.String("o", "", "write the cleaned page here (format from -format)")
		format     = fs.String("format", "pbm", fmt.Sprintf("cleaned-page format: %v", imageio.Formats()))
		maxSpeckle = fs.Int("max-speckle", 0, "remove components with at most this many pixels (0 = auto)")
		minLine    = fs.Int("min-line", 0, "extract straight lines at least this long (0 = auto)")
		closeX     = fs.Int("close-x", 0, "segmentation closing width (0 = auto)")
		closeY     = fs.Int("close-y", 0, "segmentation closing height (0 = auto)")
		minBlock   = fs.Int("min-block", 0, "report blocks of at least this area (0 = auto)")
		keepLines  = fs.Bool("keep-lines", false, "keep extracted ruled lines in the cleaned page")
		server     = fs.String("server", "", "run the pipeline on this sysdiffd (or coordinator) instead of locally")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*in == "") == (*gen == "") {
		return fmt.Errorf("exactly one of -in and -gen is required")
	}
	if *server != "" && *output != "" {
		return fmt.Errorf("-o is unavailable with -server: the remote report mode returns no cleaned image")
	}

	var img *rle.Image
	var err error
	switch {
	case *in != "":
		if img, err = imageio.ReadFile(*in); err != nil {
			return err
		}
	case *gen == "a4":
		rng := rand.New(rand.NewSource(*seed))
		if img, err = workload.GenerateDocument(rng, workload.A4Doc()); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -gen %q (have a4)", *gen)
	}

	if *server != "" {
		c, err := apiclient.New(*server, apiclient.Options{})
		if err != nil {
			return err
		}
		rep, err := c.DocClean(context.Background(), apiclient.DocCleanRequest{
			Image:          img,
			MaxSpeckleArea: *maxSpeckle,
			MinLineLen:     *minLine,
			CloseGapX:      *closeX,
			CloseGapY:      *closeY,
			MinBlockArea:   *minBlock,
			KeepLines:      *keepLines,
		})
		if err != nil {
			return err
		}
		if rep.Blocks == nil {
			rep.Blocks = []apiclient.DocCleanBlock{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}

	res, err := docclean.Clean(context.Background(), img, docclean.Config{
		MaxSpeckleArea: *maxSpeckle,
		MinLineLen:     *minLine,
		CloseGapX:      *closeX,
		CloseGapY:      *closeY,
		MinBlockArea:   *minBlock,
		KeepLines:      *keepLines,
	})
	if err != nil {
		return err
	}

	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		if err := imageio.Write(f, *format, res.Cleaned); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	if res.Blocks == nil {
		res.Blocks = []docclean.Block{}
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
