// Command pcbinspect demonstrates the paper's motivating application
// end to end: it generates a synthetic PCB, injects fabrication
// defects into a simulated scan, compares scan against reference with
// the systolic RLE difference engine, and prints the defect report.
//
//	pcbinspect [-width 800] [-height 600] [-defects 8] [-seed 1]
//	           [-engine lockstep|channel|sequential|sparse|stream|bus|verified]
//	           [-server http://host:8422]
//	           [-save-ref ref.pbm] [-save-scan scan.pbm]
//
// With -server the comparison runs remotely on a sysdiffd instance
// (or cluster coordinator) through the typed v1 client; generation
// and defect injection stay local so the run remains reproducible
// from -seed alone.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"sysrle"
	"sysrle/internal/apiclient"
	"sysrle/internal/bitmap"
	"sysrle/internal/inspect"
	"sysrle/internal/rle"
)

// run executes one inspection against explicit streams, so tests can
// drive it without a process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pcbinspect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		width    = fs.Int("width", 800, "board width in pixels")
		height   = fs.Int("height", 600, "board height in pixels")
		defects  = fs.Int("defects", 8, "defects to inject")
		seed     = fs.Int64("seed", 1, "RNG seed")
		engine   = fs.String("engine", "lockstep", "diff engine: "+strings.Join(sysrle.EngineNames(), ", "))
		saveRef  = fs.String("save-ref", "", "write the reference artwork as PBM")
		saveScan = fs.String("save-scan", "", "write the defective scan as PBM")
		misalign = fs.Int("misalign", 0, "shift the scan by this many pixels to exercise auto-registration")
		server   = fs.String("server", "", "run the comparison on this sysdiffd (or coordinator) instead of locally")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	eng, err := sysrle.NewEngineByName(*engine)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(*seed))
	layout, err := inspect.GenerateBoard(rng, inspect.DefaultBoard(*width, *height))
	if err != nil {
		return err
	}
	scan, injected := inspect.InjectDefects(rng, layout, *defects)
	fmt.Fprintf(stdout, "board %dx%d: %d pads, %.1f%% copper; injected %d defect(s)\n",
		*width, *height, len(layout.Pads),
		100*float64(layout.Art.Popcount())/float64(*width**height), len(injected))
	for _, inj := range injected {
		fmt.Fprintf(stdout, "  injected %-12s at (%d,%d)-(%d,%d)\n", inj.Type, inj.X0, inj.Y0, inj.X1, inj.Y1)
	}

	scanImg := scan.ToRLE()
	maxShift := 0
	if *misalign != 0 {
		// Simulate an unregistered scan and let the inspector
		// recover the offset.
		scanImg = sysrle.Translate(scanImg, *misalign, -*misalign)
		if maxShift = *misalign; maxShift < 0 {
			maxShift = -maxShift
		}
		maxShift++
		fmt.Fprintf(stdout, "scan deliberately misaligned by (%d,%d)\n", *misalign, -*misalign)
	}
	if *server != "" {
		if err := remoteInspect(*server, *engine, layout.Art.ToRLE(), scanImg, maxShift, stdout); err != nil {
			return err
		}
	} else {
		ins := &inspect.Inspector{Engine: eng, MinDefectArea: 2, MaxAlignShift: maxShift}
		rep, err := ins.Compare(layout.Art.ToRLE(), scanImg)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout)
		if rep.AlignDX != 0 || rep.AlignDY != 0 {
			fmt.Fprintf(stdout, "auto-registration recovered offset (%d,%d)\n", rep.AlignDX, rep.AlignDY)
		}
		fmt.Fprint(stdout, inspect.FormatReport(rep))
	}

	if *saveRef != "" {
		if err := savePBM(*saveRef, layout.Art); err != nil {
			return err
		}
	}
	if *saveScan != "" {
		if err := savePBM(*saveScan, scan); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pcbinspect:", err)
		os.Exit(1)
	}
}

// remoteInspect registers the reference on the server, inspects the
// scan against it through the typed client, and prints a report in
// the same spirit as the local path.
func remoteInspect(serverURL, engine string, ref, scan *rle.Image, maxShift int, stdout io.Writer) error {
	c, err := apiclient.New(serverURL, apiclient.Options{})
	if err != nil {
		return err
	}
	ctx := context.Background()
	meta, err := c.PutReference(ctx, ref)
	if err != nil {
		return fmt.Errorf("registering reference: %w", err)
	}
	rep, err := c.Inspect(ctx, apiclient.InspectRequest{
		RefID: meta.ID, Scan: scan, Engine: engine,
		MinDefectArea: 2, MaxAlignShift: maxShift,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\nremote inspection via %s (reference %s)\n", serverURL, meta.ID[:12])
	if rep.AlignDX != 0 || rep.AlignDY != 0 {
		fmt.Fprintf(stdout, "auto-registration recovered offset (%d,%d)\n", rep.AlignDX, rep.AlignDY)
	}
	fmt.Fprintf(stdout, "engine=%s rows=%d differing=%d diff-pixels=%d iterations=%d\n",
		rep.Engine, rep.RowsCompared, rep.RowsDiffering, rep.DiffPixels, rep.TotalIterations)
	if rep.Clean {
		fmt.Fprintln(stdout, "PASS: no defects above threshold")
		return nil
	}
	fmt.Fprintf(stdout, "FAIL: %d defect(s)\n", len(rep.Defects))
	for i, d := range rep.Defects {
		fmt.Fprintf(stdout, "  %2d. %-7s %-12s area=%-4d at (%d,%d)-(%d,%d)\n",
			i+1, d.Kind, d.Type, d.Area, d.X0, d.Y0, d.X1, d.Y1)
	}
	return nil
}

func savePBM(path string, b *bitmap.Bitmap) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return bitmap.WritePBM(f, b)
}
