package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sysrle/internal/imageio"
	"sysrle/internal/server"
)

// smallBoard keeps the smoke tests fast.
var smallBoard = []string{"-width", "200", "-height", "150", "-seed", "3"}

func TestRunSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := append([]string{"-defects", "4"}, smallBoard...)
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"board 200x150", "injected", "defect"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q in:\n%s", want, out)
		}
	}
}

func TestRunCleanBoard(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := append([]string{"-defects", "0"}, smallBoard...)
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "injected 0 defect(s)") {
		t.Errorf("clean board not reported: %q", stdout.String())
	}
}

func TestRunSavesArtwork(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.pbm")
	scanPath := filepath.Join(dir, "scan.pbm")
	var stdout, stderr bytes.Buffer
	args := append([]string{"-defects", "2", "-save-ref", refPath, "-save-scan", scanPath}, smallBoard...)
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	ref, err := imageio.ReadFile(refPath)
	if err != nil {
		t.Fatalf("saved reference unreadable: %v", err)
	}
	scan, err := imageio.ReadFile(scanPath)
	if err != nil {
		t.Fatalf("saved scan unreadable: %v", err)
	}
	if ref.Width != 200 || ref.Height != 150 || scan.Width != 200 {
		t.Errorf("saved artwork has wrong shape: ref %dx%d scan %dx%d",
			ref.Width, ref.Height, scan.Width, scan.Height)
	}
}

func TestRunMisalignRecovers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := append([]string{"-defects", "0", "-misalign", "2"}, smallBoard...)
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "auto-registration recovered offset (-2,2)") {
		t.Errorf("registration not recovered:\n%s", stdout.String())
	}
}

func TestRunErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-engine", "quantum"}, &stdout, &stderr); err == nil {
		t.Error("unknown engine accepted")
	}
	if err := run([]string{"-no-such-flag"}, &stdout, &stderr); err == nil {
		t.Error("unknown flag accepted")
	}
	bad := filepath.Join(t.TempDir(), "no-such-dir", "ref.pbm")
	args := append([]string{"-save-ref", bad}, smallBoard...)
	if err := run(args, &stdout, &stderr); err == nil {
		t.Error("unwritable save path accepted")
	}
	if _, err := os.Stat(bad); err == nil {
		t.Error("file created despite error")
	}
}

func TestRunRemoteServer(t *testing.T) {
	srv := server.New()
	ts := httptest.NewServer(srv)
	defer func() { ts.Close(); srv.Close() }()

	var stdout, stderr bytes.Buffer
	args := append([]string{"-defects", "4", "-server", ts.URL}, smallBoard...)
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("remote run: %v (stderr: %s)", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"remote inspection via", "FAIL:", "engine=systolic-"} {
		if !strings.Contains(out, want) {
			t.Errorf("remote output missing %q in:\n%s", want, out)
		}
	}

	// A clean board passes remotely too.
	stdout.Reset()
	args = append([]string{"-defects", "0", "-server", ts.URL}, smallBoard...)
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("remote clean run: %v", err)
	}
	if !strings.Contains(stdout.String(), "PASS: no defects") {
		t.Errorf("clean board not reported remotely:\n%s", stdout.String())
	}
}
