package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sysrle/internal/cluster"
	"sysrle/internal/server"
)

func startNode(t *testing.T) string {
	t.Helper()
	srv := server.New()
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts.URL
}

// burst keeps unit runs fast: tiny images, short window.
var burst = []string{
	"-rate", "40", "-duration", "500ms",
	"-width", "96", "-height", "64", "-refs", "3", "-seed", "7",
}

func TestLoadgenRefhotSingleNode(t *testing.T) {
	url := startNode(t)
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	args := append([]string{"-targets", "single=" + url, "-o", out}, burst...)
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	rep := readReport(t, out)
	if rep.Workload != "refhot" || rep.Seed != 7 || len(rep.Targets) != 1 {
		t.Fatalf("report header %+v", rep)
	}
	tr := rep.Targets[0]
	if tr.Label != "single" || tr.Requests < 10 || tr.Errors != 0 {
		t.Fatalf("target report %+v (stderr: %s)", tr, stderr.String())
	}
	if tr.P50Ms <= 0 || tr.P99Ms < tr.P50Ms {
		t.Fatalf("implausible percentiles %+v", tr)
	}
	if tr.RefCacheHitRatio != nil {
		t.Fatalf("single node should expose no ref-placement ratio, got %v", *tr.RefCacheHitRatio)
	}
}

func TestLoadgenCompareScrapesClusterTelemetry(t *testing.T) {
	shards := []string{startNode(t), startNode(t)}
	coord, err := cluster.New(cluster.Config{Peers: shards, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord)
	t.Cleanup(cts.Close)
	single := startNode(t)

	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	args := append([]string{
		"-targets", "single=" + single + ",cluster=" + cts.URL, "-o", out,
	}, burst...)
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	rep := readReport(t, out)
	if len(rep.Targets) != 2 {
		t.Fatalf("want 2 targets, got %+v", rep.Targets)
	}
	cl := rep.Targets[1]
	if cl.Label != "cluster" || cl.Errors != 0 {
		t.Fatalf("cluster target %+v (stderr: %s)", cl, stderr.String())
	}
	if cl.RefCacheHitRatio == nil {
		t.Fatal("cluster target missing ref-placement cache-hit ratio")
	}
	if r := *cl.RefCacheHitRatio; r <= 0 || r > 1 {
		t.Fatalf("hit ratio %v out of range", r)
	}
}

func TestLoadgenSimilarWorkload(t *testing.T) {
	url := startNode(t)
	var stdout, stderr bytes.Buffer
	args := append([]string{"-targets", "node=" + url, "-workload", "similar"}, burst...)
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("stdout not JSON: %v", err)
	}
	if rep.Targets[0].Errors != 0 || rep.Targets[0].RefCacheHitRatio != nil {
		t.Fatalf("similar-workload report %+v", rep.Targets[0])
	}
}

func TestLoadgenFlagErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	cases := [][]string{
		{},                                    // no targets
		{"-targets", "nourl"},                 // malformed pair
		{"-targets", "a=x", "-workload", "?"}, // unknown workload
		{"-targets", "a=x", "-rate", "0"},     // bad rate
		{"-targets", "a=::bad::"},             // unparseable URL
	}
	for i, args := range cases {
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("case %d (%s): no error", i, strings.Join(args, " "))
		}
	}
}

func readReport(t *testing.T, path string) report {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, data)
	}
	return rep
}
