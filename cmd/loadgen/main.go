// Command loadgen drives a sysdiffd instance or a cluster coordinator
// with a seeded open-loop diff workload and reports latency
// percentiles — the measurement harness behind BENCH_PR9.json.
//
//	loadgen -targets single=http://localhost:8422 \
//	        [-workload refhot|similar] [-rate 50] [-duration 5s] \
//	        [-seed 1] [-width 512] [-height 512] [-refs 8] \
//	        [-o bench.json]
//
// Open loop means requests launch on a fixed clock regardless of how
// fast earlier ones complete, so a slow server accumulates in-flight
// work instead of silently lowering the offered rate (no coordinated
// omission). Two workloads:
//
//   - similar: every request uploads two seeded similar images to
//     /v1/diff — exercises the scatter-gather path on a coordinator.
//   - refhot: registers -refs references up front, then diffs seeded
//     scans against them via ?ref= — exercises ring placement and the
//     decoded-reference cache.
//
// -targets takes comma-separated label=url pairs; each target gets
// the identical seeded burst, and the combined JSON report (one entry
// per target, plus the scraped ref-placement cache-hit ratio where
// the target exposes cluster telemetry) goes to -o or stdout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"sysrle/internal/apiclient"
	"sysrle/internal/rle"
	"sysrle/internal/workload"
)

type options struct {
	targets  string
	workload string
	rate     float64
	duration time.Duration
	seed     int64
	width    int
	height   int
	refs     int
	out      string
	timeout  time.Duration
}

type target struct {
	label string
	url   string
}

// report is the JSON document loadgen emits (BENCH_PR9.json's shape).
type report struct {
	Tool     string         `json:"tool"`
	Workload string         `json:"workload"`
	Seed     int64          `json:"seed"`
	RateHz   float64        `json:"rate_hz"`
	Duration string         `json:"duration"`
	Image    string         `json:"image"`
	Targets  []targetReport `json:"targets"`
}

type targetReport struct {
	Label    string  `json:"label"`
	URL      string  `json:"url"`
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	P50Ms    float64 `json:"p50_ms"`
	P90Ms    float64 `json:"p90_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
	// RefCacheHitRatio is scraped from the target's cluster telemetry
	// (ref-routed requests answered by the ring owner); nil when the
	// target does not expose it (single node) or under -workload
	// similar (no ref routing happens).
	RefCacheHitRatio *float64 `json:"ref_cache_hit_ratio,omitempty"`
	// Failovers is the coordinator's sysrle_cluster_failover_total
	// after the burst — reads served by a replica because the primary
	// failed or missed. Nil on targets without the family (single
	// node); 0 on a healthy cluster.
	Failovers *int64 `json:"failovers,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func parseTargets(s string) ([]target, error) {
	var out []target
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item == "" {
			continue
		}
		label, url, ok := strings.Cut(item, "=")
		if !ok || label == "" || url == "" {
			return nil, fmt.Errorf("-targets entry %q is not label=url", item)
		}
		out = append(out, target{label: label, url: url})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-targets requires at least one label=url entry")
	}
	return out, nil
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.StringVar(&o.targets, "targets", "", `comma-separated label=url pairs, e.g. "single=http://:8422,cluster=http://:9000"`)
	fs.StringVar(&o.workload, "workload", "refhot", "workload: refhot | similar")
	fs.Float64Var(&o.rate, "rate", 50, "offered request rate per second (open loop)")
	fs.DurationVar(&o.duration, "duration", 5*time.Second, "burst length per target")
	fs.Int64Var(&o.seed, "seed", 1, "RNG seed for the image corpus and request sequence")
	fs.IntVar(&o.width, "width", 512, "image width")
	fs.IntVar(&o.height, "height", 512, "image height")
	fs.IntVar(&o.refs, "refs", 8, "references registered up front under -workload refhot")
	fs.StringVar(&o.out, "o", "", "write the JSON report here (default stdout)")
	fs.DurationVar(&o.timeout, "timeout", 30*time.Second, "per-request deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	targets, err := parseTargets(o.targets)
	if err != nil {
		return err
	}
	if o.workload != "refhot" && o.workload != "similar" {
		return fmt.Errorf("unknown -workload %q (have refhot, similar)", o.workload)
	}
	if o.rate <= 0 || o.duration <= 0 {
		return fmt.Errorf("-rate and -duration must be positive")
	}

	rep := report{
		Tool:     "loadgen",
		Workload: o.workload,
		Seed:     o.seed,
		RateHz:   o.rate,
		Duration: o.duration.String(),
		Image:    fmt.Sprintf("%dx%d", o.width, o.height),
	}
	for _, tgt := range targets {
		fmt.Fprintf(stderr, "loadgen: %s (%s): %s burst at %.0f req/s...\n",
			tgt.label, tgt.url, o.duration, o.rate)
		tr, err := runTarget(o, tgt)
		if err != nil {
			return fmt.Errorf("target %s: %w", tgt.label, err)
		}
		fmt.Fprintf(stderr, "loadgen: %s: %d requests, %d errors, p50 %.1fms p99 %.1fms\n",
			tgt.label, tr.Requests, tr.Errors, tr.P50Ms, tr.P99Ms)
		rep.Targets = append(rep.Targets, tr)
	}

	w := stdout
	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// corpus holds the seeded images every target sees identically.
type corpus struct {
	refs  []*rle.Image
	refID []string
	scans []*rle.Image
}

func buildCorpus(o options) (*corpus, error) {
	rng := rand.New(rand.NewSource(o.seed))
	n := o.refs
	if o.workload == "similar" {
		n = 4 // base images to perturb
	}
	c := &corpus{}
	for i := 0; i < n; i++ {
		img, err := workload.GenerateImage(rng, workload.PaperRow(o.width, 0.3), o.height)
		if err != nil {
			return nil, err
		}
		c.refs = append(c.refs, img)
	}
	// Scans are independent draws: diffs are dense enough to be real
	// work but every target sees the same bytes.
	for i := 0; i < 2*n; i++ {
		img, err := workload.GenerateImage(rng, workload.PaperRow(o.width, 0.3), o.height)
		if err != nil {
			return nil, err
		}
		c.scans = append(c.scans, img)
	}
	return c, nil
}

func runTarget(o options, tgt target) (targetReport, error) {
	tr := targetReport{Label: tgt.label, URL: tgt.url}
	client, err := apiclient.New(tgt.url, apiclient.Options{Timeout: o.timeout})
	if err != nil {
		return tr, err
	}
	ctx := context.Background()
	crp, err := buildCorpus(o)
	if err != nil {
		return tr, err
	}
	if o.workload == "refhot" {
		for _, ref := range crp.refs {
			meta, err := client.PutReference(ctx, ref)
			if err != nil {
				return tr, fmt.Errorf("registering reference: %w", err)
			}
			crp.refID = append(crp.refID, meta.ID)
		}
	}

	// Pre-roll the request sequence so the offered load is a pure
	// function of the seed, independent of timing.
	total := int(o.rate * o.duration.Seconds())
	if total < 1 {
		total = 1
	}
	seq := rand.New(rand.NewSource(o.seed + 1))
	picks := make([][2]int, total)
	for i := range picks {
		picks[i] = [2]int{seq.Intn(len(crp.refs)), seq.Intn(len(crp.scans))}
	}

	var (
		mu    sync.Mutex
		durs  []time.Duration
		nerrs int
		wg    sync.WaitGroup
	)
	interval := time.Duration(float64(time.Second) / o.rate)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for i := 0; i < total; i++ {
		if i > 0 {
			<-tick.C
		}
		wg.Add(1)
		go func(pick [2]int) {
			defer wg.Done()
			req := apiclient.DiffRequest{B: crp.scans[pick[1]]}
			if o.workload == "refhot" {
				req.RefID = crp.refID[pick[0]]
			} else {
				req.A = crp.refs[pick[0]]
			}
			start := time.Now()
			_, err := client.Diff(ctx, req)
			d := time.Since(start)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				nerrs++
				return
			}
			durs = append(durs, d)
		}(picks[i])
	}
	wg.Wait()

	tr.Requests = total
	tr.Errors = nerrs
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	tr.P50Ms = percentileMs(durs, 0.50)
	tr.P90Ms = percentileMs(durs, 0.90)
	tr.P99Ms = percentileMs(durs, 0.99)
	if len(durs) > 0 {
		tr.MaxMs = float64(durs[len(durs)-1]) / float64(time.Millisecond)
	}
	if o.workload == "refhot" {
		if vars, err := client.Vars(ctx); err == nil {
			if ratio, ok := hitRatio(vars); ok {
				tr.RefCacheHitRatio = &ratio
			}
			if n, ok := counterValue(vars, "sysrle_cluster_failover_total"); ok {
				tr.Failovers = &n
			}
		}
	}
	return tr, nil
}

// percentileMs reads the q-quantile from sorted durations using the
// nearest-rank method.
func percentileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// hitRatio reads the coordinator's ref-placement counters from a
// /debug/vars snapshot: hits/(hits+misses). Single-node targets lack
// the family and report nothing.
func hitRatio(vars map[string]map[string]json.RawMessage) (float64, bool) {
	hits, ok1 := counterValue(vars, "sysrle_cluster_ref_route_hits_total")
	misses, ok2 := counterValue(vars, "sysrle_cluster_ref_route_misses_total")
	if !ok1 && !ok2 || hits+misses == 0 {
		return 0, false
	}
	return float64(hits) / float64(hits+misses), true
}

func counterValue(vars map[string]map[string]json.RawMessage, family string) (int64, bool) {
	fm, ok := vars[family]
	if !ok {
		return 0, false
	}
	var total int64
	found := false
	for _, raw := range fm {
		var v int64
		if err := json.Unmarshal(raw, &v); err == nil {
			total += v
			found = true
		}
	}
	return total, found
}
