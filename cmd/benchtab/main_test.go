package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunFiguresSmoke drives the static figures: fast, deterministic
// output shapes.
func TestRunFiguresSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-fig2", "-fig3", "-fig4"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"Figure 3", "RegSmall"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestRunSweepSmoke runs the cheapest randomized sweep with tiny
// parameters and checks the tabular shape.
func TestRunSweepSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-table1", "-trials", "1", "-seed", "7"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "systolic") {
		t.Errorf("table output missing engine column: %q", stdout.String())
	}
}

func TestRunCSVSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-resources", "-csv"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	first := strings.SplitN(strings.TrimPrefix(stdout.String(), "# "), "\n", 3)
	if len(first) < 2 || !strings.Contains(first[1], ",") {
		t.Errorf("no CSV header in %q", stdout.String())
	}
}

// TestRunOracleSmoke drives the differential/metamorphic oracle with
// a reduced corpus: it must run clean on the default seed and report
// the bucket table.
func TestRunOracleSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-oracle", "-oracle-pairs", "1",
		"-oracle-engines", "sequential,lockstep"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)\n%s", err, stderr.String(), stdout.String())
	}
	out := stdout.String()
	for _, want := range []string{"diff-pixel-oracle", "meta-xor-symmetry", "0 discrepancies"} {
		if !strings.Contains(out, want) {
			t.Errorf("oracle output missing %q", want)
		}
	}
	if strings.Contains(out, "reproducers") {
		t.Errorf("clean run printed reproducers:\n%s", out)
	}
}

// TestRunOracleCSV: -csv switches the bucket table to CSV.
func TestRunOracleCSV(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-oracle", "-oracle-pairs", "1",
		"-oracle-engines", "sequential", "-csv"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "engine,check,checks,discrepancies") {
		t.Errorf("no CSV header in %q", stdout.String())
	}
}

// TestRunOracleErrors: configuration mistakes surface as errors, not
// silent empty runs.
func TestRunOracleErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-oracle", "-oracle-engines", "no-such-engine"}, &stdout, &stderr); err == nil {
		t.Error("unknown oracle engine accepted")
	}
	if err := run([]string{"-oracle", "-oracle-pairs", "0"}, &stdout, &stderr); err == nil {
		t.Error("zero pairs accepted")
	}
}

func TestRunErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr); err == nil {
		t.Error("no experiment selected, but run succeeded")
	}
	if err := run([]string{"-no-such-flag"}, &stdout, &stderr); err == nil {
		t.Error("unknown flag accepted")
	}
}

// TestRunCalibrateSmoke fits the row cost model at a small width and
// checks the pasteable literal shape; the constants themselves are
// machine-dependent.
func TestRunCalibrateSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-calibrate", "-bench-width", "512"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"RowCostModel{", "MergePerRun:", "PackedFixed:", "crossover"} {
		if !strings.Contains(out, want) {
			t.Errorf("calibrate output missing %q:\n%s", want, out)
		}
	}
	if err := run([]string{"-calibrate", "-bench-width", "16"}, &stdout, &stderr); err == nil {
		t.Error("degenerate calibration width accepted")
	}
}

// TestRunWalBenchSmoke measures a tiny record count per policy and
// checks the table shape; the latencies are machine-dependent.
func TestRunWalBenchSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-wal-bench", "-wal-records", "50", "-wal-record-bytes", "64",
		"-wal-bench-dir", t.TempDir()}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"policy", "always", "batch", "none", "appends/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("wal-bench output missing %q:\n%s", want, out)
		}
	}
	if err := run([]string{"-wal-bench", "-wal-records", "0"}, &stdout, &stderr); err == nil {
		t.Error("zero record count accepted")
	}
}
