// Command benchtab regenerates the paper's evaluation tables and
// figures on freshly generated workloads:
//
//	benchtab -fig3             # Figure 3: the worked execution trace
//	benchtab -fig5             # Figure 5: iterations vs. error percent
//	benchtab -table1           # Table 1: systolic vs. sequential
//	benchtab -ablation         # §6 broadcast-bus ablation
//	benchtab -all              # everything
//
// Output is text tables; -csv switches tabular experiments to CSV.
// -trials and -seed control averaging and reproducibility.
package main

import (
	"flag"
	"fmt"
	"os"

	"sysrle/internal/experiments"
	"sysrle/internal/metrics"
)

func main() {
	var (
		fig2      = flag.Bool("fig2", false, "print the Figure 2 architecture diagram")
		fig3      = flag.Bool("fig3", false, "print the Figure 3 execution trace")
		fig4      = flag.Bool("fig4", false, "print the Figure 4 cell-state taxonomy")
		fig5      = flag.Bool("fig5", false, "run the Figure 5 sweep")
		table1    = flag.Bool("table1", false, "run the Table 1 comparison")
		ablation  = flag.Bool("ablation", false, "run the broadcast-bus ablation")
		density   = flag.Bool("density", false, "run the §5 density-robustness sweep")
		resources = flag.Bool("resources", false, "print the conclusion's processor-count comparison")
		util      = flag.Bool("util", false, "run the §5 array-utilization sweep")
		pcb       = flag.Bool("pcb", false, "run the §1 PCB inspection sweep")
		deploy    = flag.Bool("deploy", false, "run the per-row vs flattened deployment comparison")
		all       = flag.Bool("all", false, "run every experiment")
		trials    = flag.Int("trials", experiments.DefaultConfig().Trials, "random trials per data point")
		seed      = flag.Int64("seed", experiments.DefaultConfig().Seed, "workload RNG seed")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned text")
	)
	flag.Parse()
	if *all {
		*fig2, *fig3, *fig4, *fig5, *table1, *ablation = true, true, true, true, true, true
		*density, *resources, *util, *pcb, *deploy = true, true, true, true, true
	}
	anySelected := *fig2 || *fig3 || *fig4 || *fig5 || *table1 || *ablation ||
		*density || *resources || *util || *pcb || *deploy
	if !anySelected {
		flag.Usage()
		os.Exit(2)
	}
	cfg := experiments.Config{Trials: *trials, Seed: *seed}
	emit := func(t *metrics.Table) {
		if *csv {
			if t.Title != "" {
				fmt.Printf("# %s\n", t.Title)
			}
			if err := t.WriteCSV(os.Stdout); err != nil {
				fatal(err)
			}
		} else {
			fmt.Println(t.Format())
		}
	}

	if *fig2 {
		fmt.Println(experiments.Figure2())
		fmt.Println()
	}
	if *fig3 {
		text, err := experiments.Figure3Trace()
		if err != nil {
			fatal(err)
		}
		fmt.Println("Figure 3: execution of the systolic algorithm on the Figure 1 inputs")
		fmt.Println(text)
	}
	if *fig4 {
		emit(experiments.Figure4Table())
	}
	if *fig5 {
		points, err := experiments.Figure5(cfg, experiments.PaperFigure5())
		if err != nil {
			fatal(err)
		}
		emit(experiments.Figure5Table(points))
	}
	if *table1 {
		params := experiments.PaperTable1()
		rows, err := experiments.Table1(cfg, params)
		if err != nil {
			fatal(err)
		}
		emit(experiments.Table1Table(params, rows))
	}
	if *ablation {
		points, err := experiments.Ablation(cfg, experiments.PaperFigure5())
		if err != nil {
			fatal(err)
		}
		emit(experiments.AblationTable(points))
	}
	if *density {
		points, err := experiments.DensitySweep(cfg, 10000, 0.10,
			[]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7})
		if err != nil {
			fatal(err)
		}
		emit(experiments.DensityTable(points))
	}
	if *resources {
		emit(experiments.ResourceTable(
			[]int{1024, 4096, 10000, 65536, 1 << 20}, 0.30, 12))
	}
	if *util {
		points, err := experiments.Utilization(cfg, experiments.PaperFigure5())
		if err != nil {
			fatal(err)
		}
		emit(experiments.UtilizationTable(points))
	}
	if *pcb {
		pcbCfg := cfg
		if pcbCfg.Trials > 5 {
			pcbCfg.Trials = 5 // board generation dominates; a few boards suffice
		}
		points, err := experiments.PCBSweep(pcbCfg,
			[][2]int{{400, 300}, {800, 600}, {1600, 1200}}, []int{0, 5, 20})
		if err != nil {
			fatal(err)
		}
		emit(experiments.PCBTable(points))
	}
	if *deploy {
		depCfg := cfg
		if depCfg.Trials > 5 {
			depCfg.Trials = 5
		}
		points, err := experiments.Deployment(depCfg,
			[][2]int{{400, 300}, {800, 600}, {1600, 1200}}, 8)
		if err != nil {
			fatal(err)
		}
		emit(experiments.DeploymentTable(points))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtab:", err)
	os.Exit(1)
}
