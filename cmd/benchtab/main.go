// Command benchtab regenerates the paper's evaluation tables and
// figures on freshly generated workloads:
//
//	benchtab -fig3             # Figure 3: the worked execution trace
//	benchtab -fig5             # Figure 5: iterations vs. error percent
//	benchtab -table1           # Table 1: systolic vs. sequential
//	benchtab -ablation         # §6 broadcast-bus ablation
//	benchtab -all              # everything
//	benchtab -bench            # allocation/latency matrix as JSON
//	benchtab -calibrate        # fit the planner's row cost model here
//	benchtab -oracle           # cross-engine differential & metamorphic oracle
//	benchtab -wal-bench        # journal append latency per sync policy
//
// Output is text tables; -csv switches tabular experiments to CSV.
// -trials and -seed control averaging and reproducibility.
//
// -oracle runs the internal/oracle correctness harness: every
// registered engine against the sequential merge and a pixel-level
// bitmap oracle over a deterministic corpus, plus the metamorphic
// identity library. The corpus is seeded by -oracle-seed (CI pins
// one seed; rotate it to sweep fresh corpora) and sized by
// -oracle-pairs; the run fails with a non-zero exit when any
// discrepancy is found, printing each minimized reproducer.
//
// -bench runs the internal/perf harness — the fixed engine × workload
// matrix plus the page-scale morphology matrix (run-native vs
// decomposed vs bitmap on A4 documents) behind the committed
// BENCH_PR7.json — and writes the JSON report to stdout or to the
// -bench-out file (`make bench-json` regenerates the committed report
// this way). -bench-width, -bench-height and -seed size the generated
// row workloads; the morphology cells are always measured at A4.
//
// -calibrate measures the sequential merge and the packed-word XOR on
// this machine and prints core.RowCostModel constants ready to paste
// into DefaultRowCostModel — the procedure behind the committed
// calibration (see EXPERIMENTS.md, "Reproducing the crossover").
// -bench-width sets the row width the fit is anchored at.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sysrle/internal/experiments"
	"sysrle/internal/metrics"
	"sysrle/internal/oracle"
	"sysrle/internal/perf"
)

// run executes one benchtab invocation against explicit streams, so
// tests can drive it without a process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig2      = fs.Bool("fig2", false, "print the Figure 2 architecture diagram")
		fig3      = fs.Bool("fig3", false, "print the Figure 3 execution trace")
		fig4      = fs.Bool("fig4", false, "print the Figure 4 cell-state taxonomy")
		fig5      = fs.Bool("fig5", false, "run the Figure 5 sweep")
		table1    = fs.Bool("table1", false, "run the Table 1 comparison")
		ablation  = fs.Bool("ablation", false, "run the broadcast-bus ablation")
		density   = fs.Bool("density", false, "run the §5 density-robustness sweep")
		resources = fs.Bool("resources", false, "print the conclusion's processor-count comparison")
		util      = fs.Bool("util", false, "run the §5 array-utilization sweep")
		pcb       = fs.Bool("pcb", false, "run the §1 PCB inspection sweep")
		deploy    = fs.Bool("deploy", false, "run the per-row vs flattened deployment comparison")
		all       = fs.Bool("all", false, "run every experiment")
		trials    = fs.Int("trials", experiments.DefaultConfig().Trials, "random trials per data point")
		seed      = fs.Int64("seed", experiments.DefaultConfig().Seed, "workload RNG seed")
		csv       = fs.Bool("csv", false, "emit CSV instead of aligned text")

		bench       = fs.Bool("bench", false, "run the allocation/latency benchmark matrix, emit JSON")
		calibrate   = fs.Bool("calibrate", false, "fit the planner's per-row cost model on this machine")
		benchOut    = fs.String("bench-out", "", "write the -bench JSON report to this file (default stdout)")
		benchWidth  = fs.Int("bench-width", perf.DefaultOptions().Width, "-bench image width")
		benchHeight = fs.Int("bench-height", perf.DefaultOptions().Height, "-bench image height")
		benchRounds = fs.Int("bench-rounds", perf.DefaultOptions().Rounds, "-bench runs per cell (fastest kept)")

		walBench       = fs.Bool("wal-bench", false, "measure journal append latency per sync policy on this machine's disk")
		walBenchDir    = fs.String("wal-bench-dir", "", "directory whose volume -wal-bench measures (default: the system temp dir)")
		walBenchCount  = fs.Int("wal-records", 2000, "-wal-bench appends per policy")
		walBenchRecord = fs.Int("wal-record-bytes", 256, "-wal-bench record payload size")

		runOracle     = fs.Bool("oracle", false, "run the cross-engine differential & metamorphic oracle")
		oracleSeed    = fs.Int64("oracle-seed", oracle.DefaultConfig().Seed, "-oracle corpus seed (rotate for fresh corpora)")
		oraclePairs   = fs.Int("oracle-pairs", oracle.DefaultConfig().Pairs, "-oracle image pairs per generator")
		oracleEngines = fs.String("oracle-engines", "", "-oracle comma-separated engine names (default all registered)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *runOracle {
		cfg := oracle.DefaultConfig()
		cfg.Seed = *oracleSeed
		cfg.Pairs = *oraclePairs
		if *oracleEngines != "" {
			cfg.Engines = strings.Split(*oracleEngines, ",")
		}
		return runOracleHarness(stdout, cfg, *csv)
	}
	if *walBench {
		return runWalBench(stdout, *walBenchDir, *walBenchCount, *walBenchRecord)
	}
	if *calibrate {
		return runCalibrate(stdout, *benchWidth)
	}
	if *bench {
		return runBench(stdout, perf.Options{
			Width:  *benchWidth,
			Height: *benchHeight,
			Seed:   *seed,
			Rounds: *benchRounds,
		}, *benchOut)
	}
	if *all {
		*fig2, *fig3, *fig4, *fig5, *table1, *ablation = true, true, true, true, true, true
		*density, *resources, *util, *pcb, *deploy = true, true, true, true, true
	}
	anySelected := *fig2 || *fig3 || *fig4 || *fig5 || *table1 || *ablation ||
		*density || *resources || *util || *pcb || *deploy
	if !anySelected {
		fs.Usage()
		return fmt.Errorf("no experiment selected")
	}
	cfg := experiments.Config{Trials: *trials, Seed: *seed}
	var emitErr error
	emit := func(t *metrics.Table) {
		if emitErr != nil {
			return
		}
		if *csv {
			if t.Title != "" {
				fmt.Fprintf(stdout, "# %s\n", t.Title)
			}
			emitErr = t.WriteCSV(stdout)
		} else {
			fmt.Fprintln(stdout, t.Format())
		}
	}

	if *fig2 {
		fmt.Fprintln(stdout, experiments.Figure2())
		fmt.Fprintln(stdout)
	}
	if *fig3 {
		text, err := experiments.Figure3Trace()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "Figure 3: execution of the systolic algorithm on the Figure 1 inputs")
		fmt.Fprintln(stdout, text)
	}
	if *fig4 {
		emit(experiments.Figure4Table())
	}
	if *fig5 {
		points, err := experiments.Figure5(cfg, experiments.PaperFigure5())
		if err != nil {
			return err
		}
		emit(experiments.Figure5Table(points))
	}
	if *table1 {
		params := experiments.PaperTable1()
		rows, err := experiments.Table1(cfg, params)
		if err != nil {
			return err
		}
		emit(experiments.Table1Table(params, rows))
	}
	if *ablation {
		points, err := experiments.Ablation(cfg, experiments.PaperFigure5())
		if err != nil {
			return err
		}
		emit(experiments.AblationTable(points))
	}
	if *density {
		points, err := experiments.DensitySweep(cfg, 10000, 0.10,
			[]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7})
		if err != nil {
			return err
		}
		emit(experiments.DensityTable(points))
	}
	if *resources {
		emit(experiments.ResourceTable(
			[]int{1024, 4096, 10000, 65536, 1 << 20}, 0.30, 12))
	}
	if *util {
		points, err := experiments.Utilization(cfg, experiments.PaperFigure5())
		if err != nil {
			return err
		}
		emit(experiments.UtilizationTable(points))
	}
	if *pcb {
		pcbCfg := cfg
		if pcbCfg.Trials > 5 {
			pcbCfg.Trials = 5 // board generation dominates; a few boards suffice
		}
		points, err := experiments.PCBSweep(pcbCfg,
			[][2]int{{400, 300}, {800, 600}, {1600, 1200}}, []int{0, 5, 20})
		if err != nil {
			return err
		}
		emit(experiments.PCBTable(points))
	}
	if *deploy {
		depCfg := cfg
		if depCfg.Trials > 5 {
			depCfg.Trials = 5
		}
		points, err := experiments.Deployment(depCfg,
			[][2]int{{400, 300}, {800, 600}, {1600, 1200}}, 8)
		if err != nil {
			return err
		}
		emit(experiments.DeploymentTable(points))
	}
	return emitErr
}

// runOracleHarness runs the differential/metamorphic oracle and
// renders the per-engine × per-check bucket table. Discrepancies are
// printed with their minimized reproducers and turn into a non-zero
// exit, so CI can gate on `benchtab -oracle`.
func runOracleHarness(stdout io.Writer, cfg oracle.Config, csv bool) error {
	rep, err := oracle.Run(cfg)
	if err != nil {
		return err
	}
	t := metrics.NewTable(
		fmt.Sprintf("Oracle: differential & metamorphic checks (seed %d, %dx%d, %d pairs/generator, generators: %s)",
			rep.Seed, rep.Width, rep.Height, rep.Pairs, strings.Join(rep.Generators, ", ")),
		"engine", "check", "checks", "discrepancies")
	for _, b := range rep.Buckets {
		engine := b.Engine
		if engine == "" {
			engine = "-" // engine-independent metamorphic identity
		}
		t.Addf(engine, b.Check, b.Checks, b.Discrepancies)
	}
	if csv {
		if t.Title != "" {
			fmt.Fprintf(stdout, "# %s\n", t.Title)
		}
		if err := t.WriteCSV(stdout); err != nil {
			return err
		}
	} else {
		fmt.Fprintln(stdout, t.Format())
	}
	fmt.Fprintf(stdout, "total: %d checks, %d discrepancies\n", rep.TotalChecks, rep.Discrepancies)
	if rep.Clean() {
		return nil
	}
	fmt.Fprintln(stdout, "\nminimized reproducers:")
	for _, f := range rep.Failures {
		fmt.Fprintf(stdout, "  %s\n", f)
	}
	return fmt.Errorf("oracle: %d discrepancies in %d checks (seed %d)",
		rep.Discrepancies, rep.TotalChecks, rep.Seed)
}

// runBench executes the perf harness — the row/diff matrix plus the
// page-scale morphology matrix — and writes the indented JSON report,
// the format of the committed BENCH_PR7.json.
func runBench(stdout io.Writer, opts perf.Options, outPath string) error {
	rep, err := perf.Run(opts)
	if err != nil {
		return err
	}
	morph := perf.DefaultMorphOptions()
	morph.Seed = opts.Seed
	morph.Rounds = opts.Rounds
	cells, err := perf.RunMorph(morph)
	if err != nil {
		return err
	}
	rep.Results = append(rep.Results, cells...)
	w := stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// runCalibrate fits the row cost model on this machine and prints the
// constants as a Go literal, ready to paste into
// core.DefaultRowCostModel.
func runCalibrate(stdout io.Writer, width int) error {
	m, err := perf.CalibrateRowCost(width)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "// Calibrated at width %d (crossover there: %d total input runs).\n", width, m.CrossoverRuns(width))
	fmt.Fprintf(stdout, "RowCostModel{\n")
	fmt.Fprintf(stdout, "\tMergePerRun:   %.1f,\n", m.MergePerRun)
	fmt.Fprintf(stdout, "\tPackedPerWord: %.1f,\n", m.PackedPerWord)
	fmt.Fprintf(stdout, "\tPackedPerRun:  %.1f,\n", m.PackedPerRun)
	fmt.Fprintf(stdout, "\tPackedFixed:   %.1f,\n", m.PackedFixed)
	fmt.Fprintf(stdout, "}\n")
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}
