package main

// benchtab -wal-bench: measures what each journal sync policy costs
// on THIS machine's disk. The jobs queue pays one Append per
// lifecycle event, so the append latency distribution — dominated by
// fsync under the default "always" policy — is the durable tier's
// contribution to submission latency. Run it on the deployment's
// data volume before choosing -wal-sync.

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"sysrle/internal/store"
	"sysrle/internal/wal"
)

// walBenchResult is one policy's latency distribution.
type walBenchResult struct {
	policy  string
	total   time.Duration
	samples []time.Duration
}

func (r walBenchResult) percentile(p float64) time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	i := int(p * float64(len(r.samples)-1))
	return r.samples[i]
}

// runWalBench appends records single-threaded under each sync policy
// and prints the per-append latency percentiles.
func runWalBench(out io.Writer, dir string, records, recordBytes int) error {
	if records <= 0 || recordBytes <= 0 {
		return fmt.Errorf("-wal-records and -wal-record-bytes must be positive")
	}
	tmp, err := os.MkdirTemp(dir, "walbench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	payload := make([]byte, recordBytes)
	rand.New(rand.NewSource(1)).Read(payload)

	policies := []struct {
		name string
		opts wal.Options
	}{
		{"always", wal.Options{Policy: wal.SyncAlways}},
		{"batch", wal.Options{Policy: wal.SyncBatch}},
		{"none", wal.Options{Policy: wal.SyncNone}},
	}
	var results []walBenchResult
	for _, p := range policies {
		w, err := wal.Open(store.OS(), filepath.Join(tmp, p.name), p.opts)
		if err != nil {
			return fmt.Errorf("%s: %w", p.name, err)
		}
		res := walBenchResult{policy: p.name, samples: make([]time.Duration, 0, records)}
		start := time.Now()
		for i := 0; i < records; i++ {
			t0 := time.Now()
			if err := w.Append(payload); err != nil {
				_ = w.Close()
				return fmt.Errorf("%s: append %d: %w", p.name, i, err)
			}
			res.samples = append(res.samples, time.Since(t0))
		}
		if err := w.Close(); err != nil {
			return fmt.Errorf("%s: close: %w", p.name, err)
		}
		res.total = time.Since(start)
		sort.Slice(res.samples, func(i, j int) bool { return res.samples[i] < res.samples[j] })
		results = append(results, res)
	}

	fmt.Fprintf(out, "journal append latency, %d records x %d bytes, single writer\n\n", records, recordBytes)
	fmt.Fprintf(out, "%-8s %10s %10s %10s %10s %12s\n", "policy", "p50", "p90", "p99", "max", "appends/s")
	for _, r := range results {
		rate := float64(records) / r.total.Seconds()
		fmt.Fprintf(out, "%-8s %10s %10s %10s %10s %12.0f\n",
			r.policy,
			r.percentile(0.50).Round(time.Microsecond),
			r.percentile(0.90).Round(time.Microsecond),
			r.percentile(0.99).Round(time.Microsecond),
			r.samples[len(r.samples)-1].Round(time.Microsecond),
			rate)
	}
	fmt.Fprintln(out, "\nalways = fsync per append (every ack durable); batch = fsync every")
	fmt.Fprintln(out, "N appends (bounded loss window); none = OS page cache only (crash")
	fmt.Fprintln(out, "loses the unsynced tail; replay still recovers a clean prefix).")
	return nil
}
