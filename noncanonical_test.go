package sysrle

import (
	"math/rand"
	"testing"

	"sysrle/internal/core"
	"sysrle/internal/rle"
)

// Regression for the Paste panic through the exported facade: a
// zero-width source pasted at x0 ≥ 1 used to build the empty cover
// Span(x0, x0-1) in internal/rle and panic.
func TestPasteZeroWidthSourceExported(t *testing.T) {
	dst := NewImage(8, 4)
	dst.Rows[0] = Row{{Start: 1, Length: 4}}
	before := dst.Clone()
	Paste(dst, NewImage(0, 4), 3, 0)
	if !dst.Equal(before) {
		t.Fatalf("zero-width paste changed dst: %v", dst.Rows)
	}
}

// fragment splits a canonical row into a valid-but-non-canonical
// encoding of the same bitstring by cutting runs into adjacent
// pieces — the inputs the paper explicitly permits ("a valid row may
// contain adjacent runs").
func fragment(rng *rand.Rand, row Row) Row {
	var out Row
	for _, r := range row {
		for r.Length > 1 && rng.Intn(2) == 0 {
			cut := 1 + rng.Intn(r.Length-1)
			out = append(out, Run{Start: r.Start, Length: cut})
			r = Run{Start: r.Start + cut, Length: r.Length - cut}
		}
		out = append(out, r)
	}
	return out
}

// TestEnginesAcceptNonCanonicalRows is the satellite property test:
// every registered engine must accept valid-but-non-canonical rows
// (adjacent runs) on both the allocating and the append path, return
// the bit-exact XOR, and — on the append path — leave dst's prefix
// untouched with the appended segment canonical.
func TestEnginesAcceptNonCanonicalRows(t *testing.T) {
	for _, info := range Engines() {
		t.Run(info.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(411))
			eng := info.New()
			for trial := 0; trial < 40; trial++ {
				width := 1 + rng.Intn(160)
				a := fragment(rng, randomCanonicalRow(rng, width))
				b := fragment(rng, randomCanonicalRow(rng, width))
				want := rle.XOR(a, b) // reference boundary sweep, canonical
				if got := want.Canonicalize(); !want.Equal(got) {
					t.Fatalf("reference XOR not canonical: %v", want)
				}

				res, err := eng.XORRow(a, b)
				if err != nil {
					t.Fatalf("trial %d: XORRow(%v, %v): %v", trial, a, b, err)
				}
				if err := res.Row.Validate(-1); err != nil {
					t.Fatalf("trial %d: XORRow result %v violates ordering: %v", trial, res.Row, err)
				}
				if !res.Row.EqualBits(want) {
					t.Fatalf("trial %d: XORRow(%v, %v) = %v, want bits %v", trial, a, b, res.Row, want)
				}

				prefix := Row{{Start: 0, Length: 1}}
				dst := append(Row{}, prefix...)
				resApp, err := core.XORRowAppend(eng, dst, a, b)
				if err != nil {
					t.Fatalf("trial %d: XORRowAppend(%v, %v): %v", trial, a, b, err)
				}
				if len(resApp.Row) < 1 || resApp.Row[0] != prefix[0] {
					t.Fatalf("trial %d: append path disturbed the prefix: %v", trial, resApp.Row)
				}
				appended := resApp.Row[1:]
				if !appended.Canonical() {
					t.Fatalf("trial %d: appended segment not canonical: %v (inputs %v, %v)",
						trial, appended, a, b)
				}
				if !appended.Equal(want) {
					t.Fatalf("trial %d: append path = %v, want %v (inputs %v, %v)",
						trial, appended, want, a, b)
				}
			}
		})
	}
}

// randomCanonicalRow draws a canonical row of the given width with
// mixed run and gap lengths, including single-pixel runs.
func randomCanonicalRow(rng *rand.Rand, width int) Row {
	var row Row
	pos := rng.Intn(3)
	for pos < width {
		length := 1 + rng.Intn(6)
		if pos+length > width {
			length = width - pos
		}
		row = append(row, Run{Start: pos, Length: length})
		pos += length + 2 + rng.Intn(5)
	}
	return row
}
