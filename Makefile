# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet race cover bench experiments fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/systolic/ ./internal/core/ ./internal/server/ .

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench . -benchmem ./...

# Regenerate every paper table and figure (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/benchtab -all

# Short fuzzing passes over the decoders.
fuzz:
	$(GO) test -fuzz FuzzReadBinary -fuzztime 10s ./internal/rle/
	$(GO) test -fuzz FuzzReadText -fuzztime 10s ./internal/rle/
	$(GO) test -fuzz FuzzReadPBM -fuzztime 10s ./internal/bitmap/

clean:
	$(GO) clean ./...
