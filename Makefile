# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet race ci chaos chaos-disk oracle cover bench bench-json calibrate perf-smoke experiments fuzz cluster-smoke cluster-bench clean

all: build vet test

# Mirrors .github/workflows/ci.yml.
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -fuzz FuzzReadBinary -fuzztime 15s ./internal/rle/
	$(GO) test -fuzz FuzzReadText -fuzztime 15s ./internal/rle/
	$(GO) test -fuzz FuzzReadPBM -fuzztime 15s ./internal/bitmap/
	$(GO) test -fuzz FuzzUnionOfTranslates -fuzztime 15s ./internal/runmorph/
	$(GO) test -fuzz FuzzErodeIntersection -fuzztime 15s ./internal/runmorph/
	$(MAKE) chaos
	$(MAKE) chaos-disk
	$(MAKE) oracle

# The fault-tolerance suite under the race detector, repeated to
# shake out timing-dependent interleavings (mirrors the ci.yml chaos
# job).
chaos:
	$(GO) test -race -count=3 ./internal/fault/
	$(GO) test -race -count=3 -run 'Chaos|Fault|Readyz|Retry|Quarantine|Hammer|Stuck|Panic|Verified' \
		./internal/core/ ./internal/jobs/ ./internal/server/ ./internal/inspect/ ./cmd/sysdiffd/

# The durability suite under the race detector: the full storage
# stack (blob store, WAL, Merkle audit log) plus the crash-recovery
# and disk-fault chaos runs — randomized kill -9 with torn/bit-rotted
# tails, recovery must be a durable prefix; seeded torn-write /
# ENOSPC / bit-rot / sync-fail injection, the service may fail loudly
# but never lie (mirrors the ci.yml chaos-disk job).
chaos-disk:
	$(GO) test -race -count=2 ./internal/store/ ./internal/wal/ ./internal/auditlog/
	$(GO) test -race -count=2 \
		-run 'CrashRecoveryChaos|DiskFaultChaos|Recovery|Torture|Restart|Checkpoint|Fsck|Journal|Audit|Gauge' \
		./internal/jobs/ ./internal/server/ ./internal/refstore/ ./cmd/sysdiffd/

# The cross-engine differential & metamorphic oracle on the pinned CI
# seed: every registered engine against the sequential merge and a
# pixel-level bitmap oracle, plus the metamorphic identity library
# (mirrors the ci.yml oracle job). Non-zero exit on any discrepancy.
# Rotate the corpus with `go run ./cmd/benchtab -oracle -oracle-seed N`.
oracle:
	$(GO) run ./cmd/benchtab -oracle

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/systolic/ ./internal/core/ ./internal/server/ ./internal/telemetry/ ./cmd/sysdiffd/ .

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench . -benchmem ./...

# Regenerate the committed machine-readable benchmark report (the
# engine × workload matrix of internal/perf plus the page-scale
# morphology matrix — run-native vs decomposed vs bitmap on A4
# documents; see EXPERIMENTS.md).
bench-json:
	$(GO) run ./cmd/benchtab -bench -bench-out BENCH_PR7.json
	@echo wrote BENCH_PR7.json

# Re-fit the planner's row cost model on this machine (paste the
# output into core.DefaultRowCostModel; see EXPERIMENTS.md).
calibrate:
	$(GO) run ./cmd/benchtab -calibrate

# The allocation regression gate plus the planner and run-native
# morphology competitiveness smokes: deterministic allocs/op
# assertions over the hot paths, the sweep-endpoint wall-clock gate,
# and the sparse-A4 opening gate (mirrors the ci.yml perf-smoke job).
perf-smoke:
	$(GO) test -run 'AllocReduction|ZeroAllocs|PlannerSmoke|RunmorphSmoke' -v \
		./internal/perf/ ./internal/core/ ./internal/planner/

# Regenerate every paper table and figure (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/benchtab -all

# Multi-process cluster smoke: builds the real sysdiffd and loadgen
# binaries, boots a coordinator + 2 shard processes, runs a seeded
# loadgen burst, and asserts the coordinator's scatter-gather answers
# are byte-identical to a single node (mirrors the ci.yml
# cluster-smoke job).
cluster-smoke:
	SYSRLE_CLUSTER_SMOKE=1 $(GO) test -run TestClusterSmoke -v ./cmd/sysdiffd/

# Regenerate the committed cluster benchmark report: the same seeded
# open-loop burst against one node and against a coordinator fronting
# three shards (1-node vs 3-shard p50/p99 plus the ref-placement
# cache-hit ratio).
cluster-bench:
	scripts/cluster_bench.sh BENCH_PR9.json

# Short fuzzing passes over the decoders and the run-native
# morphology row kernels.
fuzz:
	$(GO) test -fuzz FuzzReadBinary -fuzztime 10s ./internal/rle/
	$(GO) test -fuzz FuzzReadText -fuzztime 10s ./internal/rle/
	$(GO) test -fuzz FuzzReadPBM -fuzztime 10s ./internal/bitmap/
	$(GO) test -fuzz FuzzUnionOfTranslates -fuzztime 10s ./internal/runmorph/
	$(GO) test -fuzz FuzzErodeIntersection -fuzztime 10s ./internal/runmorph/

clean:
	$(GO) clean ./...
