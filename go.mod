module sysrle

go 1.22
