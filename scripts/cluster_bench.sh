#!/usr/bin/env bash
# cluster_bench.sh — regenerate BENCH_PR9.json: the same seeded
# open-loop loadgen burst against a single sysdiffd node and against a
# coordinator (with -replicas 2) fronting three shard processes, so
# the committed report compares 1-node vs 3-shard latency percentiles
# plus the cluster's ref-placement cache-hit ratio and failover count
# (0 in a healthy run — replication costs the write fan-out, not reads).
#
#   scripts/cluster_bench.sh [out.json]
#
# Tunables via environment: RATE (req/s, default 80), DURATION
# (default 5s), WIDTH/HEIGHT (default 512x512), REFS (default 8),
# SEED (default 1), BASE_PORT (default 18422), REPLICAS (default 2).
set -euo pipefail

OUT=${1:-BENCH_PR9.json}
RATE=${RATE:-80}
DURATION=${DURATION:-5s}
WIDTH=${WIDTH:-512}
HEIGHT=${HEIGHT:-512}
REFS=${REFS:-8}
SEED=${SEED:-1}
BASE_PORT=${BASE_PORT:-18422}
REPLICAS=${REPLICAS:-2}

SINGLE_PORT=$BASE_PORT
SHARD1_PORT=$((BASE_PORT + 1))
SHARD2_PORT=$((BASE_PORT + 2))
SHARD3_PORT=$((BASE_PORT + 3))
COORD_PORT=$((BASE_PORT + 4))

cd "$(dirname "$0")/.."
TMP=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "building sysdiffd and loadgen..." >&2
go build -o "$TMP/sysdiffd" ./cmd/sysdiffd
go build -o "$TMP/loadgen" ./cmd/loadgen

start() { # start <args...>
    "$TMP/sysdiffd" "$@" >/dev/null 2>&1 &
    PIDS+=($!)
}

wait_ready() { # wait_ready <port>
    for _ in $(seq 1 100); do
        if curl -sf "http://127.0.0.1:$1/readyz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "daemon on port $1 never became ready" >&2
    exit 1
}

echo "booting 1 single node + 3 shards + coordinator..." >&2
start -addr "127.0.0.1:$SINGLE_PORT"
start -addr "127.0.0.1:$SHARD1_PORT"
start -addr "127.0.0.1:$SHARD2_PORT"
start -addr "127.0.0.1:$SHARD3_PORT"
for p in "$SINGLE_PORT" "$SHARD1_PORT" "$SHARD2_PORT" "$SHARD3_PORT"; do
    wait_ready "$p"
done
start -addr "127.0.0.1:$COORD_PORT" -coordinator -replicas "$REPLICAS" \
    -peers "http://127.0.0.1:$SHARD1_PORT,http://127.0.0.1:$SHARD2_PORT,http://127.0.0.1:$SHARD3_PORT"
wait_ready "$COORD_PORT"

echo "running seeded loadgen burst (rate=$RATE duration=$DURATION ${WIDTH}x$HEIGHT refs=$REFS seed=$SEED)..." >&2
"$TMP/loadgen" \
    -targets "single-node=http://127.0.0.1:$SINGLE_PORT,cluster-3-shard=http://127.0.0.1:$COORD_PORT" \
    -workload refhot -rate "$RATE" -duration "$DURATION" \
    -width "$WIDTH" -height "$HEIGHT" -refs "$REFS" -seed "$SEED" \
    -o "$OUT"
echo "wrote $OUT" >&2
