package sysrle

import (
	"bytes"
	"testing"
)

// The facade functions are thin delegates to thoroughly tested
// internal packages; these tests pin the wiring — each call reaches
// the right implementation — not the algorithms themselves.

func glyphT() *Image {
	img := NewImage(5, 5)
	img.SetRow(0, Row{{Start: 0, Length: 5}})
	for y := 1; y < 5; y++ {
		img.SetRow(y, Row{{Start: 2, Length: 1}})
	}
	return img
}

func TestFacadeGeometry(t *testing.T) {
	img := glyphT()
	moved := Translate(img, 1, 0)
	if !moved.Get(3, 2) || moved.Get(2, 2) {
		t.Error("Translate wiring wrong")
	}
	cropped, err := Crop(img, 0, 0, 5, 1)
	if err != nil || cropped.Area() != 5 {
		t.Errorf("Crop wiring wrong: %v %v", cropped, err)
	}
	canvas := NewImage(10, 10)
	Paste(canvas, img, 2, 3)
	if !canvas.Get(4, 3) {
		t.Error("Paste wiring wrong")
	}
	if FlipH(img).Area() != img.Area() || FlipV(img).Area() != img.Area() {
		t.Error("flip area changed")
	}
	if !FlipV(img).Get(2, 0) {
		t.Error("FlipV wiring wrong")
	}
	tr := Transpose(img)
	if tr.Width != img.Height || tr.Height != img.Width {
		t.Error("Transpose dims wrong")
	}
	if r := Rotate90(img); r.Width != img.Height {
		t.Error("Rotate90 dims wrong")
	}
	if !Rotate270(Rotate90(img)).Equal(img) {
		t.Error("rotation wiring wrong")
	}
	if !Rotate180(Rotate180(img)).Equal(img) {
		t.Error("Rotate180 wiring wrong")
	}
}

func TestFacadeMorphology(t *testing.T) {
	img := glyphT()
	d, err := Dilate(img, Box(1))
	if err != nil || d.Area() <= img.Area() {
		t.Errorf("Dilate wiring wrong: %v %v", d, err)
	}
	e, err := Erode(img, Box(1))
	if err != nil || e.Area() >= img.Area() {
		t.Errorf("Erode wiring wrong: %v %v", e, err)
	}
	if _, err := Open(img, Box(1)); err != nil {
		t.Error(err)
	}
	if _, err := Close(img, Box(1)); err != nil {
		t.Error(err)
	}
	g, err := Gradient(img, Box(1))
	if err != nil || g.Area() == 0 {
		t.Errorf("Gradient wiring wrong: %v %v", g, err)
	}
	if _, err := Dilate(img, SE{Rx: -1}); err == nil {
		t.Error("negative SE accepted")
	}
}

func TestFacadeIO(t *testing.T) {
	img := glyphT()
	for _, format := range ImageFormats() {
		var buf bytes.Buffer
		if err := WriteImage(&buf, format, img); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		back, err := ReadImage(&buf)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if !back.Equal(img) {
			t.Errorf("%s round trip changed pixels", format)
		}
	}
	var buf bytes.Buffer
	if err := WriteImage(&buf, "jpeg", img); err == nil {
		t.Error("unknown format accepted")
	}
}
