package sysrle

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"sysrle/internal/core"
	"sysrle/internal/workload"
)

// testImagePair builds a generated image and a perturbed copy — the
// inspection workload the options API is exercised against.
func testImagePair(t *testing.T, seed int64) (*Image, *Image) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a, err := workload.GenerateImage(rng, workload.PaperRow(500, 0.3), 48)
	if err != nil {
		t.Fatal(err)
	}
	b := a.Clone()
	for y := 0; y < b.Height; y += 2 {
		mask, err := workload.ErrorMask(rng, 500, workload.PaperErrors(4))
		if err != nil {
			t.Fatal(err)
		}
		b.Rows[y] = XOR(b.Rows[y], mask)
	}
	return a, b
}

func TestDiffImageOptionsMatchDeprecatedSignature(t *testing.T) {
	a, b := testImagePair(t, 7)
	oldDiff, oldStats, err := DiffImageWith(a, b, NewSparse(), 3)
	if err != nil {
		t.Fatal(err)
	}
	newDiff, newStats, err := DiffImage(a, b, WithEngine(NewSparse()), WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if !newDiff.Equal(oldDiff) {
		t.Error("options path and deprecated path disagree on pixels")
	}
	if *newStats != *oldStats {
		t.Errorf("stats disagree: %+v vs %+v", newStats, oldStats)
	}
}

func TestDiffImageBufferReuseEquivalence(t *testing.T) {
	a, b := testImagePair(t, 11)
	for _, name := range EngineNames() {
		eng, err := NewEngineByName(name)
		if err != nil {
			t.Fatal(err)
		}
		reuse, reuseStats, err := DiffImage(a, b, WithEngine(eng))
		if err != nil {
			t.Fatalf("%s reuse: %v", name, err)
		}
		eng2, _ := NewEngineByName(name)
		plain, plainStats, err := DiffImage(a, b, WithEngine(eng2), WithBufferReuse(false))
		if err != nil {
			t.Fatalf("%s no-reuse: %v", name, err)
		}
		if !reuse.Equal(plain) {
			t.Errorf("%s: buffer reuse changed the pixels", name)
		}
		if reuseStats.TotalIterations != plainStats.TotalIterations ||
			reuseStats.RowsDiffering != plainStats.RowsDiffering ||
			reuseStats.TotalCells != plainStats.TotalCells {
			t.Errorf("%s: buffer reuse changed the stats: %+v vs %+v", name, reuseStats, plainStats)
		}
	}
}

func TestDiffImageCellStats(t *testing.T) {
	a, b := testImagePair(t, 13)
	_, stats, err := DiffImage(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxRowCells == 0 || stats.TotalCells < stats.MaxRowCells {
		t.Errorf("cell stats inconsistent: %+v", stats)
	}
	// The sequential baseline has no cell array; the stats must say so
	// rather than report a stale or invented size.
	_, seqStats, err := DiffImage(a, b, WithEngine(NewSequential()))
	if err != nil {
		t.Fatal(err)
	}
	if seqStats.TotalCells != 0 || seqStats.MaxRowCells != 0 {
		t.Errorf("sequential engine reported cells: %+v", seqStats)
	}
}

func TestDiffImageContextCancellation(t *testing.T) {
	a, b := testImagePair(t, 17)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := DiffImage(a, b, WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context: err = %v", err)
	}
	// A nil context is treated as the default background context.
	if _, _, err := DiffImage(a, b, WithContext(nil)); err != nil {
		t.Errorf("nil context: %v", err)
	}
}

func TestDiffImageFaultsRecovered(t *testing.T) {
	a, b := testImagePair(t, 19)
	v := core.NewVerified(core.Lockstep{})
	_, stats, err := DiffImage(a, b, WithEngine(v))
	if err != nil {
		t.Fatal(err)
	}
	if stats.FaultsRecovered != 0 {
		t.Errorf("healthy engine recovered %d faults", stats.FaultsRecovered)
	}
	// A primary that miscomputes every row forces one recovery per row,
	// and the per-image stat must report the delta for this image only
	// even though the engine's counter is cumulative.
	broken := core.NewVerified(flakyEngine{})
	for round := 1; round <= 2; round++ {
		_, stats, err = DiffImage(a, b, WithEngine(broken), WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		if stats.FaultsRecovered != a.Height {
			t.Errorf("round %d: FaultsRecovered = %d, want %d", round, stats.FaultsRecovered, a.Height)
		}
	}
}

// flakyEngine computes XOR but always reports a wrong first run,
// tripping Verified's result check on every row.
type flakyEngine struct{}

func (flakyEngine) Name() string { return "flaky" }

func (flakyEngine) XORRow(a, b Row) (Result, error) {
	res, err := core.Lockstep{}.XORRow(a, b)
	if err != nil {
		return Result{}, err
	}
	out := append(Row{{Start: 0, Length: 1}}, res.Row.Canonicalize()...)
	res.Row = out
	return res, nil
}

func TestDiffImageSingleMachineEnginesClamped(t *testing.T) {
	a, b := testImagePair(t, 23)
	// Stream and FixedArray are one machine each; DiffImage must not
	// race many workers over them even when asked to.
	stream := NewStream()
	got, _, err := DiffImage(a, b, WithEngine(stream), WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := DiffImage(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("stream engine result differs")
	}
	arr := NewFixedArray(700)
	defer arr.Close()
	got, _, err = DiffImage(a, b, WithEngine(arr), WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("fixed array result differs")
	}
}

func TestEngineRegistry(t *testing.T) {
	names := EngineNames()
	if len(names) == 0 {
		t.Fatal("empty registry")
	}
	seen := map[string]bool{}
	for _, info := range Engines() {
		if seen[info.Name] {
			t.Errorf("duplicate engine name %q", info.Name)
		}
		seen[info.Name] = true
		if info.Description == "" {
			t.Errorf("%s: empty description", info.Name)
		}
		eng, err := NewEngineByName(info.Name)
		if err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
		if eng == nil {
			t.Fatalf("%s: nil engine", info.Name)
		}
		if c, ok := eng.(interface{ Close() }); ok {
			defer c.Close()
		}
	}
	for _, want := range []string{"lockstep", "channel", "sequential", "sparse", "stream", "bus", "verified", "packed", "planner"} {
		if !seen[want] {
			t.Errorf("registry missing %q", want)
		}
	}
	// Stateful engines must be fresh per call, not shared.
	s1, _ := NewEngineByName("stream")
	s2, _ := NewEngineByName("stream")
	if s1 == s2 {
		t.Error("NewEngineByName returned a shared stream")
	}
	// The default: empty name means lockstep.
	def, err := NewEngineByName("")
	if err != nil || def.Name() != (core.Lockstep{}).Name() {
		t.Errorf("default engine = %v, %v", def, err)
	}
	// Unknown names fail loudly and list the valid ones.
	_, err = NewEngineByName("quantum")
	if err == nil {
		t.Fatal("unknown engine accepted")
	}
	if !strings.Contains(err.Error(), "quantum") || !strings.Contains(err.Error(), "lockstep") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestRegistryEnginesAgreeOnPaperRow(t *testing.T) {
	a, b, want := paperRows()
	for _, name := range EngineNames() {
		eng, err := NewEngineByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.XORRow(a, b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Row.EqualBits(want) {
			t.Errorf("%s: %v", name, res.Row)
		}
		if c, ok := eng.(interface{ Close() }); ok {
			c.Close()
		}
	}
}
