package sysrle

import (
	"fmt"
	"strings"

	"sysrle/internal/broadcast"
	"sysrle/internal/core"
	"sysrle/internal/planner"
)

// EngineInfo is one entry of the engine registry: a stable name, a
// one-line description, and a constructor returning a fresh engine.
type EngineInfo struct {
	Name        string
	Description string
	New         func() Engine
}

// engineRegistry is the single source of truth for engine names —
// the HTTP service, the job runner and every command resolve the
// engine= parameter/flag through it instead of hand-rolled switches.
var engineRegistry = []EngineInfo{
	{
		Name:        "lockstep",
		Description: "deterministic systolic array sweep (the paper's algorithm; default)",
		New:         func() Engine { return core.Lockstep{} },
	},
	{
		Name:        "channel",
		Description: "goroutine-per-cell systolic engine (CSP rendering of the hardware)",
		New:         func() Engine { return core.Channel{} },
	},
	{
		Name:        "sequential",
		Description: "the paper's §2 sequential merge baseline",
		New:         func() Engine { return core.Sequential{} },
	},
	{
		Name:        "sparse",
		Description: "lockstep-equivalent simulator costed by actual data movement",
		New:         func() Engine { return core.Sparse{} },
	},
	{
		Name:        "stream",
		Description: "buffer-reusing lockstep engine (one per goroutine; lowest allocation)",
		New:         func() Engine { return core.NewStream() },
	},
	{
		Name:        "bus",
		Description: "the paper's §6 broadcast-bus extension (unlimited bandwidth)",
		New:         func() Engine { return broadcast.Bus{} },
	},
	{
		Name:        "verified",
		Description: "lockstep with per-row invariant checks and sequential recovery",
		New:         func() Engine { return core.NewVerified(core.Lockstep{}) },
	},
	{
		Name:        "packed",
		Description: "pack → 64-bit word XOR → repack (the §6 uncompressed baseline, one word per 64 pixels)",
		New:         func() Engine { return planner.NewPacked() },
	},
	{
		Name:        "planner",
		Description: "hybrid per-row router: RLE merge or packed XOR, whichever the calibrated cost model prices cheaper",
		New:         func() Engine { return planner.New() },
	},
}

// Engines lists the registered engines in registration order. The
// returned slice is a copy; mutate freely.
func Engines() []EngineInfo {
	out := make([]EngineInfo, len(engineRegistry))
	copy(out, engineRegistry)
	return out
}

// EngineNames returns the registered engine names in registration
// order — the values NewEngineByName accepts.
func EngineNames() []string {
	names := make([]string, len(engineRegistry))
	for i, e := range engineRegistry {
		names[i] = e.Name
	}
	return names
}

// NewEngineByName constructs a fresh engine by registry name. The
// empty name means the default engine, lockstep. Stateful engines
// ("stream", "verified") are newly constructed on every call, so each
// caller gets its own.
func NewEngineByName(name string) (Engine, error) {
	if name == "" {
		name = "lockstep"
	}
	for _, e := range engineRegistry {
		if e.Name == name {
			return e.New(), nil
		}
	}
	return nil, fmt.Errorf("sysrle: unknown engine %q (have %s)", name, strings.Join(EngineNames(), ", "))
}
