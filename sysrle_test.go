package sysrle

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"sysrle/internal/workload"
)

func paperRows() (Row, Row, Row) {
	a := Row{{Start: 10, Length: 3}, {Start: 16, Length: 2}, {Start: 23, Length: 2}, {Start: 27, Length: 3}}
	b := Row{{Start: 3, Length: 4}, {Start: 8, Length: 5}, {Start: 15, Length: 5}, {Start: 23, Length: 2}, {Start: 27, Length: 4}}
	want := Row{{Start: 3, Length: 4}, {Start: 8, Length: 2}, {Start: 15, Length: 1}, {Start: 18, Length: 2}, {Start: 30, Length: 1}}
	return a, b, want
}

func TestDiffFigure1(t *testing.T) {
	a, b, want := paperRows()
	got, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("Diff = %v, want %v", got, want)
	}
}

func TestAllEngineConstructors(t *testing.T) {
	a, b, want := paperRows()
	for _, e := range []Engine{NewLockstep(), NewChannel(), NewSequential(), NewBus(0), NewBus(1), NewSparse(), NewStream()} {
		res, err := e.XORRow(a, b)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if !res.Row.EqualBits(want) {
			t.Errorf("%s: %v", e.Name(), res.Row)
		}
		if e.Name() == "" {
			t.Error("engine has empty name")
		}
	}
}

func TestEncodeDecode(t *testing.T) {
	bits := []bool{false, true, true, false, true, false, false, true}
	row := Encode(bits)
	if !row.Equal(Row{{Start: 1, Length: 2}, {Start: 4, Length: 1}, {Start: 7, Length: 1}}) {
		t.Fatalf("Encode = %v", row)
	}
	back := Decode(row, len(bits))
	for i := range bits {
		if back[i] != bits[i] {
			t.Fatal("Decode mismatch")
		}
	}
}

func TestBooleanOps(t *testing.T) {
	a := Row{{Start: 0, Length: 4}}
	b := Row{{Start: 2, Length: 4}}
	if !XOR(a, b).Equal(Row{{Start: 0, Length: 2}, {Start: 4, Length: 2}}) {
		t.Error("XOR wrong")
	}
	if !AND(a, b).Equal(Row{{Start: 2, Length: 2}}) {
		t.Error("AND wrong")
	}
	if !OR(a, b).Equal(Row{{Start: 0, Length: 6}}) {
		t.Error("OR wrong")
	}
	if !AndNot(a, b).Equal(Row{{Start: 0, Length: 2}}) {
		t.Error("AndNot wrong")
	}
}

func TestDiffImage(t *testing.T) {
	a, b, want := paperRows()
	imgA := NewImage(32, 3)
	imgB := NewImage(32, 3)
	imgA.SetRow(0, a)
	imgB.SetRow(0, b)
	imgA.SetRow(2, a)
	imgB.SetRow(2, a) // identical row: no difference
	diff, stats, err := DiffImage(imgA, imgB)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Rows[0].Equal(want) {
		t.Errorf("row 0 = %v", diff.Rows[0])
	}
	if len(diff.Rows[1]) != 0 || len(diff.Rows[2]) != 0 {
		t.Error("expected empty diff rows")
	}
	if stats.RowsDiffering != 1 {
		t.Errorf("RowsDiffering = %d", stats.RowsDiffering)
	}
	if stats.MaxRowIterations == 0 || stats.TotalIterations < stats.MaxRowIterations {
		t.Errorf("stats inconsistent: %+v", stats)
	}
}

func TestDiffImageSizeMismatch(t *testing.T) {
	if _, _, err := DiffImage(NewImage(4, 4), NewImage(5, 4)); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestDiffImageWithEnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	imgA, err := workload.GenerateImage(rng, workload.PaperRow(500, 0.3), 40)
	if err != nil {
		t.Fatal(err)
	}
	imgB := imgA.Clone()
	for y := 0; y < imgB.Height; y += 3 {
		mask, err := workload.ErrorMask(rng, 500, workload.PaperErrors(3))
		if err != nil {
			t.Fatal(err)
		}
		imgB.Rows[y] = XOR(imgB.Rows[y], mask)
	}
	base, baseStats, err := DiffImage(imgA, imgB)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []Engine{NewChannel(), NewSequential(), NewBus(0)} {
		got, _, err := DiffImageWith(imgA, imgB, e, 3)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if !got.Equal(base) {
			t.Errorf("%s image diff differs", e.Name())
		}
	}
	// Single worker gives identical results to many workers.
	one, oneStats, err := DiffImageWith(imgA, imgB, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !one.Equal(base) || oneStats.TotalIterations != baseStats.TotalIterations {
		t.Error("worker count changed the result")
	}
}

func TestDiffRejectsInvalid(t *testing.T) {
	bad := Row{{Start: 3, Length: 2}, {Start: 2, Length: 2}}
	if _, err := Diff(bad, nil); err == nil {
		t.Error("invalid row accepted")
	}
}

func TestSimilarityHelpers(t *testing.T) {
	a, b, want := paperRows()
	if RunCountDiff(a, b) != 1 {
		t.Error("RunCountDiff wrong")
	}
	if XORRuns(a, b) != len(want) {
		t.Error("XORRuns wrong")
	}
	if Hamming(a, b) != want.Area() {
		t.Error("Hamming wrong")
	}
}

// countingEngine fails every row and counts how many XORRow calls it
// receives, to observe the error short-circuit.
type countingEngine struct{ calls atomic.Int64 }

func (e *countingEngine) Name() string { return "counting-fail" }

func (e *countingEngine) XORRow(a, b Row) (Result, error) {
	e.calls.Add(1)
	return Result{}, errors.New("boom")
}

func TestDiffImageShortCircuitsOnError(t *testing.T) {
	const height = 4096
	a := NewImage(64, height)
	b := NewImage(64, height)
	eng := &countingEngine{}
	if _, _, err := DiffImageWith(a, b, eng, 2); err == nil {
		t.Fatal("failing engine produced no error")
	}
	// Without the short-circuit every one of the 4096 rows reaches
	// the engine; with it only the rows already in flight when the
	// first failure lands do.
	if n := eng.calls.Load(); n >= height/2 {
		t.Errorf("engine saw %d rows after the first failure; distribution not short-circuited", n)
	}
}
