package sysrle_test

import (
	"fmt"

	"sysrle"
)

// The paper's Figure 1: the difference of two RLE-encoded rows,
// computed by the systolic engine without decompressing.
func ExampleDiff() {
	img1 := sysrle.Row{{Start: 10, Length: 3}, {Start: 16, Length: 2}, {Start: 23, Length: 2}, {Start: 27, Length: 3}}
	img2 := sysrle.Row{{Start: 3, Length: 4}, {Start: 8, Length: 5}, {Start: 15, Length: 5}, {Start: 23, Length: 2}, {Start: 27, Length: 4}}
	diff, err := sysrle.Diff(img1, img2)
	if err != nil {
		panic(err)
	}
	fmt.Println(diff)
	// Output: [(3,4) (8,2) (15,1) (18,2) (30,1)]
}

// Engines expose the paper's figure of merit: the iteration count.
// The systolic engine's cost tracks how much the rows differ; the
// sequential baseline pays for every run.
func ExampleEngine() {
	a := sysrle.Row{{Start: 0, Length: 4}, {Start: 10, Length: 4}, {Start: 20, Length: 4}, {Start: 30, Length: 4}}
	b := sysrle.Row{{Start: 0, Length: 4}, {Start: 10, Length: 4}, {Start: 20, Length: 4}, {Start: 31, Length: 3}}
	for _, engine := range []sysrle.Engine{sysrle.NewLockstep(), sysrle.NewSequential()} {
		res, err := engine.XORRow(a, b)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %d iterations\n", engine.Name(), res.Iterations)
	}
	// Output:
	// systolic-lockstep: 1 iterations
	// sequential: 4 iterations
}

// Whole images diff row by row, fanned across workers; the stats
// report the systolic critical path.
func ExampleDiffImage() {
	a := sysrle.NewImage(16, 2)
	b := sysrle.NewImage(16, 2)
	a.SetRow(0, sysrle.Row{{Start: 2, Length: 4}})
	b.SetRow(0, sysrle.Row{{Start: 2, Length: 4}})
	b.SetRow(1, sysrle.Row{{Start: 8, Length: 3}})
	diff, stats, err := sysrle.DiffImage(a, b)
	if err != nil {
		panic(err)
	}
	fmt.Println(diff.Rows[0], diff.Rows[1], stats.RowsDiffering)
	// Output: [] [(8,3)] 1
}

// Encode and Decode convert between bitstrings and runs.
func ExampleEncode() {
	row := sysrle.Encode([]bool{false, true, true, true, false, false, true, false})
	fmt.Println(row)
	bits := sysrle.Decode(row, 8)
	fmt.Println(bits[1], bits[4], bits[6])
	// Output:
	// [(1,3) (6,1)]
	// true false true
}

// Morphology operates directly on the compressed form.
func ExampleDilate() {
	img := sysrle.NewImage(12, 3)
	img.SetRow(1, sysrle.Row{{Start: 4, Length: 2}})
	out, err := sysrle.Dilate(img, sysrle.Box(1))
	if err != nil {
		panic(err)
	}
	for _, row := range out.Rows {
		fmt.Println(row)
	}
	// Output:
	// [(3,4)]
	// [(3,4)]
	// [(3,4)]
}
