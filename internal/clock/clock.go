// Package clock is the one injectable time source shared by every
// subsystem that schedules against wall time (jobs retention GC,
// refstore TTL eviction, WAL record stamps, audit batch intervals).
// Production code takes a Clock and defaults to System; tests inject
// a Fake and advance it deterministically instead of sleeping.
package clock

import (
	"sync"
	"time"
)

// Clock is a time source.
type Clock interface {
	Now() time.Time
}

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// System returns the real wall clock.
func System() Clock { return systemClock{} }

// Fake is a manually advanced clock for tests. The zero value is not
// usable; construct with NewFake.
type Fake struct {
	mu sync.Mutex
	t  time.Time
}

// NewFake returns a fake clock frozen at t.
func NewFake(t time.Time) *Fake { return &Fake{t: t} }

// Now returns the current fake time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

// Advance moves the fake clock forward by d.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// Set jumps the fake clock to t.
func (f *Fake) Set(t time.Time) {
	f.mu.Lock()
	f.t = t
	f.mu.Unlock()
}
