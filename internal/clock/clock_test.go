package clock

import (
	"testing"
	"time"
)

func TestSystemNow(t *testing.T) {
	before := time.Now()
	got := System().Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("System().Now() = %v, want within [%v, %v]", got, before, after)
	}
}

func TestFake(t *testing.T) {
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	c := NewFake(base)
	if got := c.Now(); !got.Equal(base) {
		t.Fatalf("Now() = %v, want %v", got, base)
	}
	c.Advance(90 * time.Second)
	if got := c.Now(); !got.Equal(base.Add(90 * time.Second)) {
		t.Fatalf("after Advance: Now() = %v", got)
	}
	other := base.Add(24 * time.Hour)
	c.Set(other)
	if got := c.Now(); !got.Equal(other) {
		t.Fatalf("after Set: Now() = %v, want %v", got, other)
	}
}
