package rle

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Serialization of RLE images.
//
// Two formats are provided:
//
//   - A line-oriented text format ("RLET"), human-inspectable and handy
//     in tests and examples:
//
//     RLET <width> <height>
//     <start>,<length> <start>,<length> ...   (one line per row; blank
//                                              line = empty row)
//
//   - A compact binary format ("RLEB"): magic, uvarint width and
//     height, then per row a uvarint run count followed by
//     delta-encoded uvarint gaps and lengths. Delta encoding keeps
//     typical PCB-style imagery at a few bits per run.

const (
	textMagic   = "RLET"
	binaryMagic = "RLEB"
)

// ErrFormat is returned when decoding input that is not a recognized
// RLE stream.
var ErrFormat = errors.New("rle: unrecognized format")

// Decode budgets. Headers are attacker-controlled (the HTTP service
// feeds uploads straight into these decoders), so a header alone must
// never cause a large allocation: each side is capped, and the total
// cell budget charges one slot per row on top of width×height so a
// degenerate zero-width image cannot smuggle an enormous row count.
const (
	maxDim         = 1 << 30 // per-side dimension cap
	maxDecodeCells = 1 << 31 // (width+1)*height budget
)

func checkDimensions(width, height int) error {
	if width < 0 || height < 0 || width > maxDim || height > maxDim {
		return fmt.Errorf("%w: implausible dimensions %dx%d", ErrFormat, width, height)
	}
	if (uint64(width)+1)*uint64(height) > maxDecodeCells {
		return fmt.Errorf("%w: dimensions %dx%d exceed decode budget", ErrFormat, width, height)
	}
	return nil
}

// WriteText serializes the image in the text format.
func WriteText(w io.Writer, img *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s %d %d\n", textMagic, img.Width, img.Height); err != nil {
		return err
	}
	for _, row := range img.Rows {
		for i, r := range row {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%d,%d", r.Start, r.Length); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text format and validates the result.
func ReadText(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("%w: missing header", ErrFormat)
	}
	fields := strings.Fields(header)
	if len(fields) != 3 || fields[0] != textMagic {
		return nil, fmt.Errorf("%w: bad header %q", ErrFormat, strings.TrimSpace(header))
	}
	width, err1 := strconv.Atoi(fields[1])
	height, err2 := strconv.Atoi(fields[2])
	if err1 != nil || err2 != nil || width < 0 || height < 0 {
		return nil, fmt.Errorf("%w: bad dimensions %q %q", ErrFormat, fields[1], fields[2])
	}
	if err := checkDimensions(width, height); err != nil {
		return nil, err
	}
	// Rows grow as lines are actually read, so a forged height costs
	// nothing before the body backs it up.
	img := &Image{Width: width, Height: height}
	for y := 0; y < height; y++ {
		line, err := br.ReadString('\n')
		if err != nil && !(err == io.EOF && y == height-1) {
			return nil, fmt.Errorf("rle: short input at row %d: %w", y, err)
		}
		line = strings.TrimSpace(line)
		if line == "" {
			img.Rows = append(img.Rows, nil)
			continue
		}
		var row Row
		for _, tok := range strings.Fields(line) {
			start, length, err := parseRunToken(tok)
			if err != nil {
				return nil, fmt.Errorf("rle: row %d: bad run %q", y, tok)
			}
			row = append(row, Run{Start: start, Length: length})
		}
		img.Rows = append(img.Rows, row)
	}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	return img, nil
}

// parseRunToken parses a "<start>,<length>" token exactly: both halves
// must be full decimal integers with nothing left over. (Sscanf-style
// parsing accepted trailing garbage, turning "3,4junk" into run {3,4}.)
func parseRunToken(tok string) (start, length int, err error) {
	startStr, lenStr, ok := strings.Cut(tok, ",")
	if !ok {
		return 0, 0, fmt.Errorf("rle: run %q: missing comma", tok)
	}
	start, err = strconv.Atoi(startStr)
	if err != nil {
		return 0, 0, err
	}
	length, err = strconv.Atoi(lenStr)
	if err != nil {
		return 0, 0, err
	}
	return start, length, nil
}

// WriteBinary serializes the image in the binary format.
func WriteBinary(w io.Writer, img *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(img.Width)); err != nil {
		return err
	}
	if err := putUvarint(uint64(img.Height)); err != nil {
		return err
	}
	for _, row := range img.Rows {
		if err := putUvarint(uint64(len(row))); err != nil {
			return err
		}
		pos := 0
		for _, r := range row {
			if err := putUvarint(uint64(r.Start - pos)); err != nil {
				return err
			}
			if err := putUvarint(uint64(r.Length)); err != nil {
				return err
			}
			pos = r.End() + 1
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format and validates the result.
func ReadBinary(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != binaryMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	width, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("rle: reading width: %w", err)
	}
	height, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("rle: reading height: %w", err)
	}
	if width > maxDim || height > maxDim {
		return nil, fmt.Errorf("%w: implausible dimensions %dx%d", ErrFormat, width, height)
	}
	if err := checkDimensions(int(width), int(height)); err != nil {
		return nil, err
	}
	// Rows grow as body bytes are actually decoded; a forged header
	// claiming height=2^30 with a truncated body fails at the first
	// missing row count instead of allocating gigabytes up front.
	img := &Image{Width: int(width), Height: int(height)}
	for y := 0; y < int(height); y++ {
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("rle: row %d count: %w", y, err)
		}
		if count > width {
			return nil, fmt.Errorf("rle: row %d: %d runs exceed width %d", y, count, width)
		}
		// The claimed run count is not yet backed by bytes either, so
		// cap the preallocation; append grows past it only as runs
		// really decode.
		sizeHint := count
		if sizeHint > 4096 {
			sizeHint = 4096
		}
		row := make(Row, 0, sizeHint)
		pos := 0
		for i := uint64(0); i < count; i++ {
			gap, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("rle: row %d run %d gap: %w", y, i, err)
			}
			length, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("rle: row %d run %d length: %w", y, i, err)
			}
			// Reject runs that could not fit in the row before doing
			// any int arithmetic on them: huge uvarints would overflow
			// Start/End and could slip past Validate.
			if gap > uint64(img.Width) || length == 0 || length > uint64(img.Width) {
				return nil, fmt.Errorf("rle: row %d run %d: gap %d / length %d outside width %d", y, i, gap, length, img.Width)
			}
			start := pos + int(gap)
			if start+int(length) > img.Width {
				return nil, fmt.Errorf("rle: row %d run %d: extends to %d beyond width %d", y, i, start+int(length)-1, img.Width)
			}
			run := Run{Start: start, Length: int(length)}
			row = append(row, run)
			pos = run.End() + 1
		}
		img.Rows = append(img.Rows, row)
	}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	return img, nil
}
