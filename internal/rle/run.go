// Package rle implements run-length encoding of binary image rows and
// compressed-domain operations on them.
//
// A run-length encoded row is a sequence of foreground runs, each a
// (start, length) pair measured in pixels, with strictly increasing
// starts and no overlaps (paper §2). Only foreground (1) pixels are
// represented; everything between runs is background (0).
//
// Two encodings of the same bitstring are distinguished throughout the
// package: a *valid* row may contain adjacent runs (one ends exactly
// where the next begins), which the paper permits for inputs and
// produces in outputs; a *canonical* row has no adjacent runs and is
// the maximally compressed form. Canonicalize converts the former to
// the latter.
package rle

import "fmt"

// Run is a single foreground run: Length consecutive 1-pixels starting
// at pixel index Start. This mirrors the cell register contents in the
// paper ("the first element is the start of the run and the second
// element is the run's length").
type Run struct {
	Start  int
	Length int
}

// End returns the inclusive end coordinate of the run, Start+Length-1.
// The paper's notation manipulates runs by start and end; storage uses
// start and length.
func (r Run) End() int { return r.Start + r.Length - 1 }

// Contains reports whether pixel index i lies inside the run.
func (r Run) Contains(i int) bool { return i >= r.Start && i <= r.End() }

// Overlaps reports whether the two runs share at least one pixel.
func (r Run) Overlaps(s Run) bool {
	return r.Length > 0 && s.Length > 0 && r.Start <= s.End() && s.Start <= r.End()
}

// Adjacent reports whether the two runs abut without overlapping, in
// either order (r then s, or s then r).
func (r Run) Adjacent(s Run) bool {
	return r.End()+1 == s.Start || s.End()+1 == r.Start
}

// Valid reports whether the run is well-formed: non-negative start and
// strictly positive length.
func (r Run) Valid() bool { return r.Start >= 0 && r.Length > 0 }

func (r Run) String() string { return fmt.Sprintf("(%d,%d)", r.Start, r.Length) }

// Span builds a run from inclusive interval endpoints. It panics if
// end < start; use it only for intervals known to be non-empty.
func Span(start, end int) Run {
	if end < start {
		panic(fmt.Sprintf("rle: empty span [%d,%d]", start, end))
	}
	return Run{Start: start, Length: end - start + 1}
}
