package rle

// Similarity measures between two encoded rows or images. The paper
// lets "the similarity of two images be measured by the number of runs
// in the final result" (§5); the other metrics here are the standard
// companions used to characterize workloads in the evaluation harness.

// RunCountDiff returns |k1 - k2|, the difference between the input run
// counts — the quantity the paper shows the systolic iteration count
// tracks for similar images.
func RunCountDiff(a, b Row) int {
	d := len(a) - len(b)
	if d < 0 {
		d = -d
	}
	return d
}

// XORRuns returns the number of runs in the canonical XOR of the two
// rows — the paper's similarity measure (smaller = more similar) and
// the conjectured k3 bound on systolic iterations.
func XORRuns(a, b Row) int { return len(XOR(a, b)) }

// Hamming returns the number of differing pixels (the area of the
// XOR).
func Hamming(a, b Row) int { return XOR(a, b).Area() }

// XORAreaShifted returns the number of differing pixels between a and
// b translated by dx, evaluated within the window [0, width) —
// equivalent to Hamming(a.Clip(width), b.Shift(dx).Clip(width)) for
// any operands, but allocation-free. It is the inner loop of scan
// registration, which evaluates hundreds of candidate offsets per row.
func XORAreaShifted(a, b Row, dx, width int) int {
	// Both operands are clipped to the window. An earlier version
	// counted a's full length here, so an operand extending past the
	// window silently contributed out-of-window pixels to the result
	// instead of being evaluated within [0, width).
	areaA := 0
	for _, r := range a {
		s, e := r.Start, r.End()
		if e < 0 || s >= width {
			continue
		}
		if s < 0 {
			s = 0
		}
		if e >= width {
			e = width - 1
		}
		areaA += e - s + 1
	}
	areaB := 0
	for _, r := range b {
		s, e := r.Start+dx, r.End()+dx
		if e < 0 || s >= width {
			continue
		}
		if s < 0 {
			s = 0
		}
		if e >= width {
			e = width - 1
		}
		areaB += e - s + 1
	}
	// Two-pointer overlap scan. a's runs need no clipping here: b's
	// runs are clipped into the window, so any overlap with them is
	// already inside [0, width).
	overlap := 0
	ia, ib := 0, 0
	for ia < len(a) && ib < len(b) {
		bs, be := b[ib].Start+dx, b[ib].End()+dx
		if be < 0 {
			ib++
			continue
		}
		if bs >= width {
			break
		}
		if bs < 0 {
			bs = 0
		}
		if be >= width {
			be = width - 1
		}
		as, ae := a[ia].Start, a[ia].End()
		lo, hi := as, ae
		if bs > lo {
			lo = bs
		}
		if be < hi {
			hi = be
		}
		if lo <= hi {
			overlap += hi - lo + 1
		}
		if ae < be {
			ia++
		} else {
			ib++
		}
	}
	return areaA + areaB - 2*overlap
}

// Jaccard returns |a ∧ b| / |a ∨ b| in [0, 1]; two empty rows are
// defined to have similarity 1.
func Jaccard(a, b Row) float64 {
	union := OR(a, b).Area()
	if union == 0 {
		return 1
	}
	return float64(AND(a, b).Area()) / float64(union)
}

// ImageHamming returns the number of differing pixels between two
// equally sized images; it panics on a size mismatch.
func ImageHamming(a, b *Image) int {
	diff, err := XORImage(a, b)
	if err != nil {
		panic(err)
	}
	return diff.Area()
}

// ImageXORRuns returns the total run count of the image difference —
// the image-level analogue of the paper's similarity measure.
func ImageXORRuns(a, b *Image) int {
	diff, err := XORImage(a, b)
	if err != nil {
		panic(err)
	}
	return diff.RunCount()
}
