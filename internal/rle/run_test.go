package rle

import "testing"

func TestRunEnd(t *testing.T) {
	cases := []struct {
		run  Run
		end  int
		desc string
	}{
		{Run{Start: 10, Length: 3}, 12, "paper fig.1 first run of img1"},
		{Run{Start: 0, Length: 1}, 0, "single pixel at origin"},
		{Run{Start: 5, Length: 1}, 5, "single pixel"},
	}
	for _, c := range cases {
		if got := c.run.End(); got != c.end {
			t.Errorf("%s: %v.End() = %d, want %d", c.desc, c.run, got, c.end)
		}
	}
}

func TestSpanRoundTrip(t *testing.T) {
	for start := 0; start < 20; start++ {
		for end := start; end < 25; end++ {
			r := Span(start, end)
			if r.Start != start || r.End() != end {
				t.Fatalf("Span(%d,%d) = %v (end %d)", start, end, r, r.End())
			}
		}
	}
}

func TestSpanPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Span(5,4) did not panic")
		}
	}()
	Span(5, 4)
}

func TestRunContains(t *testing.T) {
	r := Run{Start: 10, Length: 3} // pixels 10,11,12
	for i := 0; i < 20; i++ {
		want := i >= 10 && i <= 12
		if got := r.Contains(i); got != want {
			t.Errorf("Contains(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestRunOverlaps(t *testing.T) {
	cases := []struct {
		a, b Run
		want bool
	}{
		{Run{0, 5}, Run{4, 2}, true},   // share pixel 4
		{Run{0, 5}, Run{5, 2}, false},  // adjacent, not overlapping
		{Run{0, 5}, Run{10, 2}, false}, // disjoint
		{Run{3, 2}, Run{0, 10}, true},  // contained
		{Run{7, 1}, Run{7, 1}, true},   // identical single pixel
		{Run{0, 0}, Run{0, 5}, false},  // degenerate zero-length never overlaps
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestRunAdjacent(t *testing.T) {
	cases := []struct {
		a, b Run
		want bool
	}{
		{Run{0, 5}, Run{5, 2}, true},
		{Run{5, 2}, Run{0, 5}, true}, // symmetric
		{Run{0, 5}, Run{6, 2}, false},
		{Run{0, 5}, Run{4, 2}, false}, // overlapping is not adjacent
	}
	for _, c := range cases {
		if got := c.a.Adjacent(c.b); got != c.want {
			t.Errorf("%v.Adjacent(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRunValid(t *testing.T) {
	cases := []struct {
		r    Run
		want bool
	}{
		{Run{0, 1}, true},
		{Run{10, 3}, true},
		{Run{-1, 3}, false},
		{Run{0, 0}, false},
		{Run{5, -2}, false},
	}
	for _, c := range cases {
		if got := c.r.Valid(); got != c.want {
			t.Errorf("%v.Valid() = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestRunString(t *testing.T) {
	if got := (Run{Start: 10, Length: 3}).String(); got != "(10,3)" {
		t.Errorf("String() = %q, want (10,3)", got)
	}
}
