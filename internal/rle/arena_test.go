package rle

import (
	"math/rand"
	"testing"
)

func TestArenaPersistCopies(t *testing.T) {
	a := NewArena(8)
	src := Row{{0, 2}, {5, 3}}
	got := a.Persist(src)
	if !got.Equal(src) {
		t.Fatalf("Persist = %v, want %v", got, src)
	}
	src[0] = Run{Start: 100, Length: 1}
	if got[0].Start == 100 {
		t.Fatal("Persist did not copy: mutation of the source leaked through")
	}
}

func TestArenaPersistEmpty(t *testing.T) {
	var a Arena // zero value must work
	if got := a.Persist(nil); got != nil {
		t.Fatalf("Persist(nil) = %v, want nil", got)
	}
	if got := a.Persist(Row{}); got != nil {
		t.Fatalf("Persist(empty) = %v, want nil", got)
	}
}

func TestArenaRowsIsolated(t *testing.T) {
	// Appending to one persisted row must never clobber the next row
	// carved from the same chunk.
	a := NewArena(64)
	r1 := a.Persist(Row{{0, 1}})
	r2 := a.Persist(Row{{10, 1}})
	r1 = append(r1, Run{Start: 99, Length: 1})
	if r2[0].Start != 10 {
		t.Fatalf("appending to row 1 clobbered row 2: %v", r2)
	}
	_ = r1
}

func TestArenaLargeRowExactAllocation(t *testing.T) {
	a := NewArena(8)
	big := make(Row, 16)
	for i := range big {
		big[i] = Run{Start: 3 * i, Length: 1}
	}
	got := a.Persist(big)
	if !got.Equal(big) {
		t.Fatalf("large Persist = %v, want %v", got, big)
	}
	if cap(got) != len(got) {
		t.Fatalf("large row not exact-size: cap %d len %d", cap(got), len(got))
	}
}

func TestArenaManyRowsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := NewArena(32)
	srcs := make([]Row, 200)
	kept := make([]Row, 200)
	for i := range srcs {
		srcs[i] = randomRow(rng, 1+rng.Intn(128))
		kept[i] = a.Persist(srcs[i])
	}
	for i := range srcs {
		if !kept[i].Equal(srcs[i]) {
			t.Fatalf("row %d corrupted: %v want %v", i, kept[i], srcs[i])
		}
	}
}

func BenchmarkArenaPersist(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	rows := make([]Row, 64)
	for i := range rows {
		rows[i] = randomRow(rng, 512)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := NewArena(0)
		for _, w := range rows {
			a.Persist(w)
		}
	}
}
