package rle

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genRow makes Row usable with testing/quick: Generate produces an
// arbitrary *valid* row (adjacent runs permitted), so properties can
// be stated over the real input domain.
type genRow Row

func (genRow) Generate(r *rand.Rand, size int) reflect.Value {
	width := 1 + r.Intn(8*size+8)
	var row Row
	pos := r.Intn(4)
	for pos < width {
		length := 1 + r.Intn(9)
		if pos+length > width {
			break
		}
		row = append(row, Run{Start: pos, Length: length})
		pos += length + r.Intn(10) // gap 0 = adjacent runs
		if pos >= width {
			break
		}
	}
	return reflect.ValueOf(genRow(row))
}

// genCanonicalRow generates maximally compressed rows.
type genCanonicalRow Row

func (genCanonicalRow) Generate(r *rand.Rand, size int) reflect.Value {
	v := genRow{}.Generate(r, size).Interface().(genRow)
	return reflect.ValueOf(genCanonicalRow(Row(v).Canonicalize()))
}

var quickCfg = &quick.Config{MaxCount: 400}

func TestQuickGeneratedRowsAreValid(t *testing.T) {
	f := func(a genRow) bool { return Row(a).Validate(-1) == nil }
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickCanonicalizeIdempotent(t *testing.T) {
	f := func(a genRow) bool {
		c := Row(a).Canonicalize()
		return c.Canonical() && c.Canonicalize().Equal(c) && c.Area() == Row(a).Area()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickXORGroupLaws(t *testing.T) {
	// (Rows, XOR) is an abelian group with ∅ identity and self
	// inverses.
	identity := func(a genRow) bool {
		return XOR(Row(a), nil).EqualBits(Row(a))
	}
	inverse := func(a genRow) bool {
		return len(XOR(Row(a), Row(a))) == 0
	}
	commutative := func(a, b genRow) bool {
		return XOR(Row(a), Row(b)).Equal(XOR(Row(b), Row(a)))
	}
	associative := func(a, b, c genRow) bool {
		return XOR(XOR(Row(a), Row(b)), Row(c)).Equal(XOR(Row(a), XOR(Row(b), Row(c))))
	}
	for name, f := range map[string]any{
		"identity": identity, "inverse": inverse,
		"commutative": commutative, "associative": associative,
	} {
		if err := quick.Check(f, quickCfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// Over a window covering both operands: ¬(a ∨ b) = ¬a ∧ ¬b.
	f := func(a, b genRow) bool {
		width := 1
		for _, r := range append(append(Row{}, a...), b...) {
			if r.End()+1 > width {
				width = r.End() + 1
			}
		}
		lhs := Not(OR(Row(a), Row(b)), width)
		rhs := AND(Not(Row(a), width), Not(Row(b), width))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickAreaInclusionExclusion(t *testing.T) {
	// |a| + |b| = |a ∨ b| + |a ∧ b|.
	f := func(a, b genRow) bool {
		return Row(a).Area()+Row(b).Area() == OR(Row(a), Row(b)).Area()+AND(Row(a), Row(b)).Area()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickCodecsRoundTrip(t *testing.T) {
	f := func(rows []genCanonicalRow) bool {
		width := 1
		img := NewImage(0, len(rows))
		for y, row := range rows {
			img.Rows[y] = Row(row)
			if a := Row(row); len(a) > 0 && a[len(a)-1].End()+1 > width {
				width = a[len(a)-1].End() + 1
			}
		}
		img.Width = width
		if img.Validate() != nil {
			return true // generator widths shifted; skip invalid combos
		}
		var binBuf, txtBuf bytes.Buffer
		if WriteBinary(&binBuf, img) != nil || WriteText(&txtBuf, img) != nil {
			return false
		}
		fromBin, err1 := ReadBinary(&binBuf)
		fromTxt, err2 := ReadText(&txtBuf)
		return err1 == nil && err2 == nil && fromBin.Equal(img) && fromTxt.Equal(img)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
