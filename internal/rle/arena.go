package rle

// Arena carves many small rows out of large shared chunks, for
// whole-image pipelines that build one output row at a time in a
// scratch buffer and then need an exact-size copy that lives as long
// as the image. Persisting through an arena replaces one heap
// allocation per scanline with one per chunk.
//
// An Arena is not safe for concurrent use; give each worker its own.
// Persisted rows remain valid forever (chunks are never recycled), so
// the arena itself can be dropped as soon as building is done.
type Arena struct {
	chunk        []Run
	runsPerChunk int
}

// DefaultArenaChunk is the chunk capacity (in runs) used when an
// Arena is created with NewArena(0) or used as its zero value.
// 1024 runs is 16 KiB per chunk.
const DefaultArenaChunk = 1024

// NewArena returns an arena carving chunks of runsPerChunk runs
// (≤ 0 means DefaultArenaChunk). The zero value of Arena is also
// ready to use.
func NewArena(runsPerChunk int) *Arena {
	if runsPerChunk <= 0 {
		runsPerChunk = DefaultArenaChunk
	}
	return &Arena{runsPerChunk: runsPerChunk}
}

// Persist copies w into arena-backed storage and returns the copy,
// capacity-clipped so appending to one persisted row can never
// clobber another. An empty row persists as nil.
func (a *Arena) Persist(w Row) Row {
	n := len(w)
	if n == 0 {
		return nil
	}
	if n > len(a.chunk) {
		if a.runsPerChunk <= 0 {
			a.runsPerChunk = DefaultArenaChunk
		}
		if n >= a.runsPerChunk/2 {
			// A row this large would waste most of a fresh chunk (or
			// not fit at all): give it its own exact allocation.
			out := make(Row, n)
			copy(out, w)
			return out
		}
		a.chunk = make([]Run, a.runsPerChunk)
	}
	out := a.chunk[:n:n]
	a.chunk = a.chunk[n:]
	copy(out, w)
	return out
}
