package rle

import (
	"math/rand"
	"testing"
)

// Regression: Paste used to build Span(x0, x0-1) for a zero-width
// source pasted at x0 ≥ 1 — Span panics on empty intervals — and the
// symmetric empty cover for a zero-width destination reached through
// a negative x0. Both are reachable from the exported sysrle.Paste.
func TestPasteZeroWidthSourceDoesNotPanic(t *testing.T) {
	dst := NewImage(8, 4)
	dst.Rows[1] = Row{{Start: 2, Length: 3}}
	before := dst.Clone()
	src := NewImage(0, 4)
	for _, x0 := range []int{-3, 0, 1, 2, 7, 8, 100} {
		Paste(dst, src, x0, 0)
		if !dst.Equal(before) {
			t.Fatalf("x0=%d: zero-width paste changed dst: %v", x0, dst.Rows)
		}
	}
}

func TestPasteZeroWidthDestinationDoesNotPanic(t *testing.T) {
	dst := NewImage(0, 4)
	src := NewImage(3, 4)
	src.Rows[0] = Row{{Start: 0, Length: 3}}
	for _, x0 := range []int{-4, -1, 0, 1} {
		Paste(dst, src, x0, 0)
		if err := dst.Validate(); err != nil {
			t.Fatalf("x0=%d: %v", x0, err)
		}
	}
}

func TestPasteZeroHeightSource(t *testing.T) {
	dst := NewImage(8, 4)
	dst.Rows[2] = Row{{Start: 1, Length: 2}}
	before := dst.Clone()
	Paste(dst, NewImage(5, 0), 1, 1)
	if !dst.Equal(before) {
		t.Fatalf("zero-height paste changed dst: %v", dst.Rows)
	}
}

// pasteReference recomputes Paste pixel by pixel: the covered
// rectangle is overwritten with src's pixels, everything else keeps
// dst's.
func pasteReference(dst, src *Image, x0, y0 int) *Image {
	out := NewImage(dst.Width, dst.Height)
	for y := 0; y < dst.Height; y++ {
		bits := make([]bool, dst.Width)
		for x := 0; x < dst.Width; x++ {
			sx, sy := x-x0, y-y0
			if sx >= 0 && sx < src.Width && sy >= 0 && sy < src.Height {
				bits[x] = src.Get(sx, sy)
			} else {
				bits[x] = dst.Get(x, y)
			}
		}
		out.Rows[y] = FromBits(bits)
	}
	return out
}

// TestGeometryZeroDimensionsAndExtremeOffsets pushes zero-width,
// zero-height and 0×0 images, plus offsets far outside the frame,
// through every geometric transform: none may panic, and where a
// pixel-level reference exists the output must match it.
func TestGeometryZeroDimensionsAndExtremeOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	shapes := []struct{ w, h int }{
		{0, 0}, {0, 5}, {5, 0}, {1, 1}, {7, 3},
	}
	offsets := []int{-1_000_000_000, -17, -1, 0, 1, 17, 1_000_000_000}
	for _, shape := range shapes {
		img := randomImage(rng, shape.w, shape.h)
		for _, d := range offsets {
			got := Translate(img, d, d)
			if err := got.Validate(); err != nil {
				t.Fatalf("Translate(%dx%d, %d, %d): %v", shape.w, shape.h, d, d, err)
			}
			// Far-out offsets shift everything off the frame.
			if (d < -img.Width || d > img.Width) && got.Area() != 0 {
				t.Fatalf("Translate(%dx%d, %d, %d): area %d after off-frame shift",
					shape.w, shape.h, d, d, got.Area())
			}
		}
		for _, d := range offsets {
			cropped, err := Crop(img, d, d, shape.w, shape.h)
			if err != nil {
				t.Fatalf("Crop(%dx%d, %d, %d): %v", shape.w, shape.h, d, d, err)
			}
			if err := cropped.Validate(); err != nil {
				t.Fatalf("Crop(%dx%d, %d, %d): invalid: %v", shape.w, shape.h, d, d, err)
			}
		}
		if _, err := Crop(img, 0, 0, 0, 0); err != nil {
			t.Fatalf("zero Crop(%dx%d): %v", shape.w, shape.h, err)
		}
		for _, d := range offsets {
			dst := randomImage(rng, 9, 4)
			want := pasteReference(dst, img, d, d)
			Paste(dst, img, d, d)
			imagesPixelEqual(t, dst, want, "Paste")
		}
		tr := Transpose(img)
		if tr.Width != img.Height || tr.Height != img.Width {
			t.Fatalf("Transpose(%dx%d): got %dx%d", shape.w, shape.h, tr.Width, tr.Height)
		}
		imagesPixelEqual(t, Transpose(tr), img, "Transpose∘Transpose")
		for _, f := range []int{1, 2, 100} {
			down, err := Downsample(img, f)
			if err != nil {
				t.Fatalf("Downsample(%dx%d, %d): %v", shape.w, shape.h, f, err)
			}
			if err := down.Validate(); err != nil {
				t.Fatalf("Downsample(%dx%d, %d): invalid: %v", shape.w, shape.h, f, err)
			}
		}
		for _, op := range []struct {
			name string
			fn   func(*Image) *Image
		}{
			{"FlipH", FlipH}, {"FlipV", FlipV},
			{"Rotate90", Rotate90}, {"Rotate180", Rotate180}, {"Rotate270", Rotate270},
		} {
			out := op.fn(img)
			if err := out.Validate(); err != nil {
				t.Fatalf("%s(%dx%d): %v", op.name, shape.w, shape.h, err)
			}
			if out.Area() != img.Area() {
				t.Fatalf("%s(%dx%d): area %d, want %d", op.name, shape.w, shape.h, out.Area(), img.Area())
			}
		}
	}
}

// TestSpanCallSiteGuards is the audit of the Span(...) call sites
// that looked like they could build an empty interval (the pattern
// behind the Paste panic). Each case drives one call site with the
// inputs that would minimize the interval and asserts the operation
// neither panics nor emits malformed runs.
func TestSpanCallSiteGuards(t *testing.T) {
	cases := []struct {
		name string
		run  func() interface{ Validate(int) error }
	}{
		// geometry.go FlipH: Span(W-1-End, W-1-Start) is non-empty
		// because End ≥ Start for every valid run, including
		// single-pixel runs at both borders.
		{"FlipH single-pixel borders", func() interface{ Validate(int) error } {
			img := NewImage(3, 1)
			img.Rows[0] = Row{{Start: 0, Length: 1}, {Start: 2, Length: 1}}
			return FlipH(img).Rows[0]
		}},
		// geometry.go Downsample: Span(Start/f, End/f) is non-empty
		// because Start ≤ End survives integer division; a factor
		// larger than the width collapses everything to pixel 0.
		{"Downsample factor exceeds width", func() interface{ Validate(int) error } {
			img := NewImage(5, 1)
			img.Rows[0] = Row{{Start: 1, Length: 1}, {Start: 4, Length: 1}}
			out, err := Downsample(img, 64)
			if err != nil {
				t.Fatal(err)
			}
			return out.Rows[0]
		}},
		// ops.go combine: Span(openAt, pos-1) closes an interval
		// opened at a strictly earlier boundary; adjacent runs in the
		// operands exercise the multi-transition-per-boundary path.
		{"XOR adjacent-run operands", func() interface{ Validate(int) error } {
			a := Row{{Start: 0, Length: 2}, {Start: 2, Length: 2}}
			b := Row{{Start: 0, Length: 4}}
			return XOR(a, b)
		}},
		// ops.go Not: both emissions are guarded; a run starting at 0
		// and one ending at width-1 minimize each interval.
		{"Not with runs at both borders", func() interface{ Validate(int) error } {
			return Not(Row{{Start: 0, Length: 1}, {Start: 4, Length: 1}}, 5)
		}},
		{"Not of full row", func() interface{ Validate(int) error } {
			return Not(Row{{Start: 0, Length: 5}}, 5)
		}},
		{"Not zero width", func() interface{ Validate(int) error } {
			return Not(nil, 0)
		}},
		// ops.go thresholdSweep: same closing pattern as combine, via
		// colliding single-pixel windows.
		{"ORMany colliding single pixels", func() interface{ Validate(int) error } {
			return ORMany([]Row{{{Start: 3, Length: 1}}, {{Start: 3, Length: 1}}, {{Start: 4, Length: 1}}})
		}},
		// row.go Clip: clamped endpoints stay ordered because runs
		// overlapping the frame keep at least one in-frame pixel.
		{"Clip runs straddling both borders", func() interface{ Validate(int) error } {
			return Row{{Start: -4, Length: 5}, {Start: 3, Length: 9}}.Clip(5)
		}},
		{"Clip to zero width", func() interface{ Validate(int) error } {
			return Row{{Start: 0, Length: 3}}.Clip(0)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			row := tc.run()
			if err := row.Validate(-1); err != nil {
				t.Fatalf("malformed output: %v", err)
			}
		})
	}
}
