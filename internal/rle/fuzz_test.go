package rle

import (
	"bytes"
	"math/rand"
	"testing"
)

// Fuzz harnesses for the decoders: arbitrary input must never panic,
// and anything that decodes must re-encode to an equivalent image.
// `go test` exercises the seed corpus; `go test -fuzz` explores.

func FuzzReadBinary(f *testing.F) {
	// Seeds: valid encodings plus near-miss corruptions.
	for seed := int64(0); seed < 4; seed++ {
		img := randomImage(rand.New(rand.NewSource(seed)), 1+int(seed)*17, 1+int(seed)*3)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, img); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		if buf.Len() > 6 {
			corrupted := append([]byte{}, buf.Bytes()...)
			corrupted[6] ^= 0xff
			f.Add(corrupted)
		}
	}
	f.Add([]byte("RLEB"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := img.Validate(); err != nil {
			t.Fatalf("decoder produced invalid image: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, img); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadBinary(&buf)
		if err != nil || !back.Equal(img) {
			t.Fatalf("re-encode round trip broken: %v", err)
		}
	})
}

func FuzzReadText(f *testing.F) {
	f.Add("RLET 8 2\n0,3 4,2\n\n")
	f.Add("RLET 0 0\n")
	f.Add("RLET 8 1\n5,2 5,2\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, data string) {
		img, err := ReadText(bytes.NewReader([]byte(data)))
		if err != nil {
			return
		}
		if err := img.Validate(); err != nil {
			t.Fatalf("decoder produced invalid image: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, img); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadText(&buf)
		if err != nil || !back.Equal(img) {
			t.Fatalf("re-encode round trip broken: %v", err)
		}
	})
}
