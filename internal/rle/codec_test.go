package rle

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestTextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		img := randomImage(rng, 1+rng.Intn(100), 1+rng.Intn(20))
		var buf bytes.Buffer
		if err := WriteText(&buf, img); err != nil {
			t.Fatal(err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("ReadText: %v\n%s", err, buf.String())
		}
		if !img.Equal(back) {
			t.Fatal("text round trip changed image")
		}
	}
}

func TestTextFormatShape(t *testing.T) {
	img := NewImage(32, 2)
	img.SetRow(0, Row{{10, 3}, {16, 2}})
	var buf bytes.Buffer
	if err := WriteText(&buf, img); err != nil {
		t.Fatal(err)
	}
	want := "RLET 32 2\n10,3 16,2\n\n"
	if buf.String() != want {
		t.Errorf("text = %q, want %q", buf.String(), want)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad magic", "NOPE 4 4\n"},
		{"bad dims", "RLET x 4\n"},
		{"negative dims", "RLET -3 4\n"},
		{"bad run", "RLET 8 1\n3;4\n"},
		{"invalid row", "RLET 8 1\n5,2 5,2\n"},
		{"out of bounds", "RLET 8 1\n6,4\n"},
	}
	for _, c := range cases {
		if _, err := ReadText(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: ReadText accepted %q", c.name, c.in)
		}
	}
}

func TestReadTextLastRowWithoutNewline(t *testing.T) {
	img, err := ReadText(strings.NewReader("RLET 8 2\n0,2\n4,2"))
	if err != nil {
		t.Fatal(err)
	}
	if !img.Rows[1].Equal(Row{{4, 2}}) {
		t.Errorf("row 1 = %v", img.Rows[1])
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 50; trial++ {
		img := randomImage(rng, 1+rng.Intn(500), 1+rng.Intn(30))
		var buf bytes.Buffer
		if err := WriteBinary(&buf, img); err != nil {
			t.Fatal(err)
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !img.Equal(back) {
			t.Fatal("binary round trip changed image")
		}
	}
}

func TestBinaryIsCompact(t *testing.T) {
	// A dense, regular image should compress far below 1 bit/pixel.
	img := NewImage(1024, 64)
	for y := range img.Rows {
		img.Rows[y] = Row{{100, 200}, {400, 200}, {700, 200}}
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, img); err != nil {
		t.Fatal(err)
	}
	pixels := img.Width * img.Height / 8 // bytes if bit-packed
	if buf.Len() >= pixels {
		t.Errorf("binary size %d ≥ bit-packed size %d", buf.Len(), pixels)
	}
}

func TestReadBinaryErrors(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("XXXX")},
		{"truncated header", []byte("RLEB")},
		{"truncated rows", append([]byte("RLEB"), 8, 4)}, // width 8, height 4, no rows
	}
	for _, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c.in)); err == nil {
			t.Errorf("%s: ReadBinary accepted %v", c.name, c.in)
		}
	}
}

func TestReadBinaryRejectsHugeRunCount(t *testing.T) {
	// width 8, height 1, row claims 200 runs.
	in := append([]byte("RLEB"), 8, 1, 200, 1)
	if _, err := ReadBinary(bytes.NewReader(in)); err == nil {
		t.Error("accepted run count exceeding width")
	}
}

// forgedBinaryHeader builds an RLEB stream whose header claims the
// given dimensions, followed by the given body bytes.
func forgedBinaryHeader(width, height uint64, body ...byte) []byte {
	buf := []byte(binaryMagic)
	buf = binary.AppendUvarint(buf, width)
	buf = binary.AppendUvarint(buf, height)
	return append(buf, body...)
}

// TestReadBinaryForgedHeader is the decoder-DoS regression test: a
// <20-byte upload whose header promises a gigantic image must fail
// fast with a decode error, not allocate gigabytes or panic. The whole
// table must finish well inside 100ms.
func TestReadBinaryForgedHeader(t *testing.T) {
	start := time.Now()
	cases := []struct {
		name string
		in   []byte
	}{
		{"height 2^30, empty body", forgedBinaryHeader(64, 1<<30)},
		{"width 2^30 x height 2^30", forgedBinaryHeader(1<<30, 1<<30)},
		{"dims over per-side cap", forgedBinaryHeader(1<<40, 1)},
		{"budget-passing height, truncated body", forgedBinaryHeader(1, 1<<30)},
		{"huge run count, no body", forgedBinaryHeader(1<<20, 2, 0xff, 0xff, 0x3f)}, // row 0 claims ~2^20 runs
	}
	for _, c := range cases {
		if len(c.in) >= 20 {
			t.Fatalf("%s: forged input is %d bytes, want <20", c.name, len(c.in))
		}
		if _, err := ReadBinary(bytes.NewReader(c.in)); err == nil {
			t.Errorf("%s: ReadBinary accepted forged input", c.name)
		}
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("forged headers took %v, want <100ms", elapsed)
	}
}

func TestReadBinaryRejectsOverflowingRuns(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
	}{
		// width 8, height 1, 1 run with a gap that would overflow int.
		{"huge gap", forgedBinaryHeader(8, 1, append([]byte{1}, binary.AppendUvarint(nil, 1<<62)...)...)},
		// width 8, height 1, 1 run with a length that would overflow int.
		{"huge length", forgedBinaryHeader(8, 1, append([]byte{1, 0}, binary.AppendUvarint(nil, 1<<62)...)...)},
		// width 8, height 1, run 2,0: zero-length run.
		{"zero length", forgedBinaryHeader(8, 1, 1, 2, 0)},
		// width 8, height 1, run at gap 6 length 4: past the right edge.
		{"past right edge", forgedBinaryHeader(8, 1, 1, 6, 4)},
	}
	for _, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c.in)); err == nil {
			t.Errorf("%s: ReadBinary accepted %v", c.name, c.in)
		}
	}
}

func TestReadTextForgedHeader(t *testing.T) {
	start := time.Now()
	cases := []string{
		"RLET 64 1073741824\n",         // over the cell budget
		"RLET 1073741824 2\n",          // budget again, wide
		"RLET 1 1073741824\n",          // inside budget but body is truncated
		"RLET 2000000000 2000000000\n", // over the per-side cap
	}
	for _, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("ReadText accepted %q", in)
		}
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("forged headers took %v, want <100ms", elapsed)
	}
}

// TestReadTextMalformedTokens locks in exact run-token parsing: the
// old Sscanf-based parser accepted trailing garbage ("3,4junk" → run
// {3,4}), silently corrupting input.
func TestReadTextMalformedTokens(t *testing.T) {
	cases := []struct {
		name string
		tok  string
	}{
		{"trailing garbage", "3,4junk"},
		{"trailing comma", "3,4,"},
		{"three fields", "0,2,5"},
		{"missing length", "3,"},
		{"missing start", ",4"},
		{"no comma", "34"},
		{"hex", "0x3,4"},
		{"float", "3.0,4"},
		{"garbage before", "junk3,4"},
	}
	for _, c := range cases {
		in := "RLET 32 1\n" + c.tok + "\n"
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadText accepted token %q", c.name, c.tok)
		}
	}
	// The well-formed version of the garbage token still parses.
	img, err := ReadText(strings.NewReader("RLET 32 1\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !img.Rows[0].Equal(Row{{3, 4}}) {
		t.Errorf("row = %v, want [(3,4)]", img.Rows[0])
	}
}
