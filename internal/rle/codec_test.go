package rle

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		img := randomImage(rng, 1+rng.Intn(100), 1+rng.Intn(20))
		var buf bytes.Buffer
		if err := WriteText(&buf, img); err != nil {
			t.Fatal(err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("ReadText: %v\n%s", err, buf.String())
		}
		if !img.Equal(back) {
			t.Fatal("text round trip changed image")
		}
	}
}

func TestTextFormatShape(t *testing.T) {
	img := NewImage(32, 2)
	img.SetRow(0, Row{{10, 3}, {16, 2}})
	var buf bytes.Buffer
	if err := WriteText(&buf, img); err != nil {
		t.Fatal(err)
	}
	want := "RLET 32 2\n10,3 16,2\n\n"
	if buf.String() != want {
		t.Errorf("text = %q, want %q", buf.String(), want)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad magic", "NOPE 4 4\n"},
		{"bad dims", "RLET x 4\n"},
		{"negative dims", "RLET -3 4\n"},
		{"bad run", "RLET 8 1\n3;4\n"},
		{"invalid row", "RLET 8 1\n5,2 5,2\n"},
		{"out of bounds", "RLET 8 1\n6,4\n"},
	}
	for _, c := range cases {
		if _, err := ReadText(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: ReadText accepted %q", c.name, c.in)
		}
	}
}

func TestReadTextLastRowWithoutNewline(t *testing.T) {
	img, err := ReadText(strings.NewReader("RLET 8 2\n0,2\n4,2"))
	if err != nil {
		t.Fatal(err)
	}
	if !img.Rows[1].Equal(Row{{4, 2}}) {
		t.Errorf("row 1 = %v", img.Rows[1])
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 50; trial++ {
		img := randomImage(rng, 1+rng.Intn(500), 1+rng.Intn(30))
		var buf bytes.Buffer
		if err := WriteBinary(&buf, img); err != nil {
			t.Fatal(err)
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !img.Equal(back) {
			t.Fatal("binary round trip changed image")
		}
	}
}

func TestBinaryIsCompact(t *testing.T) {
	// A dense, regular image should compress far below 1 bit/pixel.
	img := NewImage(1024, 64)
	for y := range img.Rows {
		img.Rows[y] = Row{{100, 200}, {400, 200}, {700, 200}}
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, img); err != nil {
		t.Fatal(err)
	}
	pixels := img.Width * img.Height / 8 // bytes if bit-packed
	if buf.Len() >= pixels {
		t.Errorf("binary size %d ≥ bit-packed size %d", buf.Len(), pixels)
	}
}

func TestReadBinaryErrors(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("XXXX")},
		{"truncated header", []byte("RLEB")},
		{"truncated rows", append([]byte("RLEB"), 8, 4)}, // width 8, height 4, no rows
	}
	for _, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c.in)); err == nil {
			t.Errorf("%s: ReadBinary accepted %v", c.name, c.in)
		}
	}
}

func TestReadBinaryRejectsHugeRunCount(t *testing.T) {
	// width 8, height 1, row claims 200 runs.
	in := append([]byte("RLEB"), 8, 1, 200, 1)
	if _, err := ReadBinary(bytes.NewReader(in)); err == nil {
		t.Error("accepted run count exceeding width")
	}
}
