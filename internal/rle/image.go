package rle

import "fmt"

// Image is a run-length encoded binary image: one Row per scanline.
// The paper's systolic system processes "the corresponding rows of two
// images"; Image is the container that pairs rows up for that.
type Image struct {
	Width  int
	Height int
	Rows   []Row
}

// NewImage returns an all-background image of the given dimensions.
func NewImage(width, height int) *Image {
	if width < 0 || height < 0 {
		panic(fmt.Sprintf("rle: negative image dimensions %dx%d", width, height))
	}
	return &Image{Width: width, Height: height, Rows: make([]Row, height)}
}

// Validate checks dimensions and every row's invariants.
func (img *Image) Validate() error {
	if img.Width < 0 || img.Height < 0 {
		return fmt.Errorf("rle: negative dimensions %dx%d", img.Width, img.Height)
	}
	if len(img.Rows) != img.Height {
		return fmt.Errorf("rle: %d rows for height %d", len(img.Rows), img.Height)
	}
	for y, row := range img.Rows {
		if err := row.Validate(img.Width); err != nil {
			return fmt.Errorf("row %d: %w", y, err)
		}
	}
	return nil
}

// Row returns the y-th scanline; out-of-range y yields an empty row so
// neighbourhood operations near the borders need no special cases.
func (img *Image) Row(y int) Row {
	if y < 0 || y >= len(img.Rows) {
		return nil
	}
	return img.Rows[y]
}

// SetRow replaces scanline y. It panics on out-of-range y: unlike
// reads, writes outside the image are always a bug.
func (img *Image) SetRow(y int, row Row) {
	if y < 0 || y >= len(img.Rows) {
		panic(fmt.Sprintf("rle: SetRow(%d) outside height %d", y, img.Height))
	}
	img.Rows[y] = row
}

// Get reports pixel (x, y); out-of-range coordinates are background.
func (img *Image) Get(x, y int) bool { return img.Row(y).Get(x) }

// Area returns the total number of foreground pixels.
func (img *Image) Area() int {
	n := 0
	for _, row := range img.Rows {
		n += row.Area()
	}
	return n
}

// RunCount returns the total number of runs across all rows.
func (img *Image) RunCount() int {
	n := 0
	for _, row := range img.Rows {
		n += len(row)
	}
	return n
}

// Density returns the fraction of foreground pixels, in [0, 1].
func (img *Image) Density() float64 {
	if img.Width == 0 || img.Height == 0 {
		return 0
	}
	return float64(img.Area()) / float64(img.Width*img.Height)
}

// Clone returns a deep copy.
func (img *Image) Clone() *Image {
	out := NewImage(img.Width, img.Height)
	for y, row := range img.Rows {
		out.Rows[y] = row.Clone()
	}
	return out
}

// Equal reports whether two images represent the same pixels
// (encodings are compared canonically).
func (img *Image) Equal(other *Image) bool {
	if img.Width != other.Width || img.Height != other.Height {
		return false
	}
	for y := range img.Rows {
		if !img.Rows[y].EqualBits(other.Rows[y]) {
			return false
		}
	}
	return true
}

// Canonicalize compresses every row maximally, in place, and returns
// the image for chaining.
func (img *Image) Canonicalize() *Image {
	for y, row := range img.Rows {
		img.Rows[y] = row.Canonicalize()
	}
	return img
}

// XORImage returns the per-row image difference of two equally sized
// images using the compressed-domain sweep (the library primitive; the
// systolic engines in internal/core compute the same function with the
// paper's cell program).
func XORImage(a, b *Image) (*Image, error) {
	if a.Width != b.Width || a.Height != b.Height {
		return nil, fmt.Errorf("rle: size mismatch %dx%d vs %dx%d", a.Width, a.Height, b.Width, b.Height)
	}
	out := NewImage(a.Width, a.Height)
	for y := range a.Rows {
		out.Rows[y] = XOR(a.Rows[y], b.Rows[y])
	}
	return out, nil
}
