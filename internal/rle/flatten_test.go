package rle

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestFlattenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 100; trial++ {
		img := randomImage(rng, 1+rng.Intn(60), 1+rng.Intn(20))
		flat := Flatten(img)
		if err := flat.Validate(img.Width * img.Height); err != nil {
			t.Fatalf("flat row invalid: %v", err)
		}
		back, err := Unflatten(flat, img.Width, img.Height)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(img) {
			t.Fatal("flatten round trip changed image")
		}
	}
}

func TestFlattenCoordinates(t *testing.T) {
	img := NewImage(10, 3)
	img.Rows[0] = Row{{Start: 8, Length: 2}}
	img.Rows[1] = Row{{Start: 0, Length: 3}}
	img.Rows[2] = Row{{Start: 9, Length: 1}}
	flat := Flatten(img)
	want := Row{{Start: 8, Length: 2}, {Start: 10, Length: 3}, {Start: 29, Length: 1}}
	if !flat.Equal(want) {
		t.Errorf("Flatten = %v, want %v", flat, want)
	}
}

func TestUnflattenSplitsBoundaryRuns(t *testing.T) {
	// One run spanning three rows.
	flat := Row{{Start: 7, Length: 16}} // rows of width 10: 7..9, 10..19, 20..22
	img, err := Unflatten(flat, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !img.Rows[0].Equal(Row{{Start: 7, Length: 3}}) ||
		!img.Rows[1].Equal(Row{{Start: 0, Length: 10}}) ||
		!img.Rows[2].Equal(Row{{Start: 0, Length: 3}}) {
		t.Errorf("rows = %v", img.Rows)
	}
}

func TestUnflattenErrors(t *testing.T) {
	if _, err := Unflatten(Row{{Start: 25, Length: 10}}, 10, 3); err == nil {
		t.Error("out-of-range run accepted")
	}
	if _, err := Unflatten(Row{{Start: 0, Length: 1}}, 0, 0); err == nil {
		t.Error("runs in empty image accepted")
	}
	if img, err := Unflatten(nil, 0, 0); err != nil || img.Height != 0 {
		t.Errorf("empty unflatten: %v %v", img, err)
	}
}

func TestFlattenedXORMatchesPerRow(t *testing.T) {
	// XOR of flattened bitstrings = per-row XOR: the algebra behind
	// the single-array deployment.
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 50; trial++ {
		w, h := 1+rng.Intn(40), 1+rng.Intn(12)
		a := randomImage(rng, w, h)
		b := randomImage(rng, w, h)
		perRow, err := XORImage(a, b)
		if err != nil {
			t.Fatal(err)
		}
		flatDiff := XOR(Flatten(a), Flatten(b))
		back, err := Unflatten(flatDiff, w, h)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(perRow) {
			t.Fatal("flattened XOR differs from per-row XOR")
		}
	}
}

func TestStats(t *testing.T) {
	img := NewImage(100, 10)
	for y := 0; y < 10; y++ {
		img.Rows[y] = Row{{Start: 10, Length: 30}, {Start: 60, Length: 10}}
	}
	s := Stats(img)
	if s.Pixels != 1000 || s.Foreground != 400 || s.Runs != 20 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MeanRunLen != 20 {
		t.Errorf("MeanRunLen = %v", s.MeanRunLen)
	}
	if s.BitmapBytes != 13*10 {
		t.Errorf("BitmapBytes = %d", s.BitmapBytes)
	}
	// Exact: encoded size must equal what WriteBinary produces.
	var buf bytes.Buffer
	if err := WriteBinary(&buf, img); err != nil {
		t.Fatal(err)
	}
	if s.RLEBytes != buf.Len() {
		t.Errorf("RLEBytes = %d, actual encoding %d", s.RLEBytes, buf.Len())
	}
	if s.Ratio <= 1 {
		t.Errorf("structured image should compress: ratio %v", s.Ratio)
	}
}

func TestStatsEmpty(t *testing.T) {
	s := Stats(NewImage(0, 0))
	if s.Runs != 0 || s.MeanRunLen != 0 || s.Foreground != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestStatsMatchesEncodingRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 30; trial++ {
		img := randomImage(rng, 1+rng.Intn(200), 1+rng.Intn(20))
		var buf bytes.Buffer
		if err := WriteBinary(&buf, img); err != nil {
			t.Fatal(err)
		}
		if got := Stats(img).RLEBytes; got != buf.Len() {
			t.Fatalf("RLEBytes %d != actual %d", got, buf.Len())
		}
	}
}
