package rle

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bitOp applies a pixelwise reference operation over expanded rows.
func bitOp(a, b Row, width int, op func(x, y bool) bool) Row {
	ab, bb := a.Bits(width), b.Bits(width)
	out := make([]bool, width)
	for i := range out {
		out[i] = op(ab[i], bb[i])
	}
	return FromBits(out)
}

func TestXORFigure1(t *testing.T) {
	// The paper's Figure 1: difference of the two example rows.
	want := Row{{3, 4}, {8, 2}, {15, 1}, {18, 2}, {30, 1}}
	got := XOR(fig1Img1(), fig1Img2())
	if !got.Equal(want) {
		t.Fatalf("XOR = %v, want %v", got, want)
	}
	// XOR is symmetric.
	if !XOR(fig1Img2(), fig1Img1()).Equal(want) {
		t.Fatal("XOR not symmetric on Figure 1 inputs")
	}
}

func TestOpsAgainstBitReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := []struct {
		name string
		rle  func(a, b Row) Row
		bit  func(x, y bool) bool
	}{
		{"XOR", XOR, func(x, y bool) bool { return x != y }},
		{"AND", AND, func(x, y bool) bool { return x && y }},
		{"OR", OR, func(x, y bool) bool { return x || y }},
		{"AndNot", AndNot, func(x, y bool) bool { return x && !y }},
	}
	for trial := 0; trial < 300; trial++ {
		width := 1 + rng.Intn(256)
		a, b := randomRow(rng, width), randomRow(rng, width)
		for _, op := range ops {
			got := op.rle(a, b)
			want := bitOp(a, b, width, op.bit)
			if !got.Equal(want) {
				t.Fatalf("%s(%v, %v) = %v, want %v", op.name, a, b, got, want)
			}
			if !got.Canonical() {
				t.Fatalf("%s output %v not canonical", op.name, got)
			}
		}
	}
}

func TestAppendXORMatchesXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var scratch Row
	for trial := 0; trial < 500; trial++ {
		width := 1 + rng.Intn(512)
		a, b := randomRow(rng, width), randomRow(rng, width)
		want := XOR(a, b)
		scratch = XORInto(scratch, a, b)
		if !scratch.Equal(want) {
			t.Fatalf("XORInto(%v, %v) = %v, want %v", a, b, scratch, want)
		}
		if !scratch.Canonical() && len(scratch) > 0 {
			t.Fatalf("XORInto output %v not canonical", scratch)
		}
	}
}

func TestAppendXORPreservesPrefix(t *testing.T) {
	prefix := Row{{0, 2}, {4, 1}}
	dst := append(Row{}, prefix...)
	a, b := Row{{10, 4}}, Row{{12, 4}}
	got := AppendXOR(dst, a, b)
	want := append(append(Row{}, prefix...), XOR(a, b)...)
	if !got.Equal(want) {
		t.Fatalf("AppendXOR = %v, want %v", got, want)
	}
}

func TestXORIntoReusesCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a, b := randomRow(rng, 2048), randomRow(rng, 2048)
	scratch := XORInto(nil, a, b) // size the scratch once
	allocs := testing.AllocsPerRun(100, func() {
		scratch = XORInto(scratch, a, b)
	})
	if allocs != 0 {
		t.Fatalf("XORInto with warm scratch allocated %.1f times per run, want 0", allocs)
	}
}

func TestAppendCanonicalMatchesCanonicalize(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 300; trial++ {
		// Build a sorted but possibly adjacent/overlapping run list,
		// the shape engine gathers produce.
		var w Row
		pos := 0
		for len(w) < 1+rng.Intn(10) {
			pos += rng.Intn(4) // 0 → overlapping/adjacent starts
			w = append(w, Run{Start: pos, Length: 1 + rng.Intn(5)})
			pos += rng.Intn(3)
		}
		want := w.Canonicalize()
		got := AppendCanonical(nil, w)
		if !got.Equal(want) {
			t.Fatalf("AppendCanonical(%v) = %v, want %v", w, got, want)
		}
		// A pre-existing prefix must come through untouched, never
		// merged with, even when w starts adjacent to it.
		prefix := Row{{Start: 0, Length: w[0].Start + 1}}
		if w[0].Start == 0 {
			prefix = Row{{Start: 0, Length: 1}}
		}
		got = AppendCanonical(append(Row{}, prefix...), w)
		if len(got) < 1 || got[0] != prefix[0] {
			t.Fatalf("AppendCanonical modified the prefix: %v", got)
		}
		if !got[len(prefix):].Equal(want) {
			t.Fatalf("AppendCanonical after prefix = %v, want %v", got[len(prefix):], want)
		}
	}
}

// FuzzAppendXOR cross-checks the append-path XOR against the
// allocating sweep and the bit-level reference on fuzz-chosen rows.
func FuzzAppendXOR(f *testing.F) {
	f.Add(int64(1), 64)
	f.Add(int64(99), 1)
	f.Add(int64(7), 4096)
	f.Fuzz(func(t *testing.T, seed int64, width int) {
		if width < 1 || width > 1<<16 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		a, b := randomRow(rng, width), randomRow(rng, width)
		want := XOR(a, b)
		got := XORInto(make(Row, 0, 4), a, b)
		if !got.Equal(want) {
			t.Fatalf("XORInto = %v, want %v", got, want)
		}
		if !got.Equal(bitOp(a, b, width, func(x, y bool) bool { return x != y })) {
			t.Fatalf("XORInto disagrees with bit reference on %v ^ %v", a, b)
		}
	})
}

func TestOpsOnNonCanonicalInputs(t *testing.T) {
	// Inputs with adjacent runs are valid per the paper; ops must
	// still be correct.
	a := Row{{0, 3}, {3, 3}, {10, 2}} // = {0..5, 10..11}
	b := Row{{2, 2}, {4, 4}}          // = {2..7}
	width := 16
	for name, pair := range map[string][2]Row{
		"XOR": {XOR(a, b), bitOp(a, b, width, func(x, y bool) bool { return x != y })},
		"AND": {AND(a, b), bitOp(a, b, width, func(x, y bool) bool { return x && y })},
		"OR":  {OR(a, b), bitOp(a, b, width, func(x, y bool) bool { return x || y })},
	} {
		if !pair[0].Equal(pair[1]) {
			t.Errorf("%s on non-canonical inputs: got %v want %v", name, pair[0], pair[1])
		}
	}
}

func TestXOREdgeCases(t *testing.T) {
	a := fig1Img1()
	if got := XOR(a, nil); !got.Equal(a.Canonicalize()) {
		t.Errorf("XOR(a, empty) = %v, want %v", got, a)
	}
	if got := XOR(nil, a); !got.Equal(a.Canonicalize()) {
		t.Errorf("XOR(empty, a) = %v, want %v", got, a)
	}
	if got := XOR(a, a); len(got) != 0 {
		t.Errorf("XOR(a, a) = %v, want empty", got)
	}
	if got := XOR(nil, nil); len(got) != 0 {
		t.Errorf("XOR(empty, empty) = %v", got)
	}
}

func TestXORProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		width := 1 + rng.Intn(200)
		a, b, c := randomRow(rng, width), randomRow(rng, width), randomRow(rng, width)
		// Commutativity.
		if !XOR(a, b).Equal(XOR(b, a)) {
			t.Fatalf("XOR not commutative: %v %v", a, b)
		}
		// Associativity.
		if !XOR(XOR(a, b), c).Equal(XOR(a, XOR(b, c))) {
			t.Fatalf("XOR not associative: %v %v %v", a, b, c)
		}
		// Self-inverse: (a ⊕ b) ⊕ b = a.
		if !XOR(XOR(a, b), b).EqualBits(a) {
			t.Fatalf("XOR not self-inverse: %v %v", a, b)
		}
		// De Morgan via AndNot: a\b ∪ b\a = a ⊕ b.
		if !OR(AndNot(a, b), AndNot(b, a)).Equal(XOR(a, b)) {
			t.Fatalf("symmetric difference identity failed: %v %v", a, b)
		}
	}
}

func TestNot(t *testing.T) {
	cases := []struct {
		in    Row
		width int
		want  Row
	}{
		{nil, 8, Row{{0, 8}}},
		{Row{{0, 8}}, 8, nil},
		{Row{{2, 3}}, 8, Row{{0, 2}, {5, 3}}},
		{Row{{0, 2}, {5, 3}}, 8, Row{{2, 3}}},
		{Row{{0, 1}, {7, 1}}, 8, Row{{1, 6}}},
	}
	for _, c := range cases {
		got := Not(c.in, c.width)
		if !got.Equal(c.want) {
			t.Errorf("Not(%v, %d) = %v, want %v", c.in, c.width, got, c.want)
		}
	}
}

func TestNotInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		width := 1 + rng.Intn(128)
		row := randomRow(rng, width)
		return Not(Not(row, width), width).EqualBits(row)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNotTruncatesOutOfRangeRuns(t *testing.T) {
	// A run ending beyond width: complement must stay within bounds.
	got := Not(Row{{2, 100}}, 8)
	want := Row{{0, 2}}
	if !got.Equal(want) {
		t.Errorf("Not = %v, want %v", got, want)
	}
}

func TestORManyAndANDMany(t *testing.T) {
	rows := []Row{
		{{0, 4}},          // 0..3
		{{2, 4}},          // 2..5
		{{3, 1}, {10, 2}}, // 3, 10..11
	}
	if got, want := ORMany(rows), (Row{{0, 6}, {10, 2}}); !got.Equal(want) {
		t.Errorf("ORMany = %v, want %v", got, want)
	}
	if got, want := ANDMany(rows), (Row{{3, 1}}); !got.Equal(want) {
		t.Errorf("ANDMany = %v, want %v", got, want)
	}
	if ORMany(nil) != nil {
		t.Error("ORMany(nil) should be empty")
	}
	if ANDMany(nil) != nil {
		t.Error("ANDMany(nil) should be empty")
	}
}

func TestAtLeast(t *testing.T) {
	rows := []Row{
		{{0, 4}},
		{{2, 4}},
		{{3, 3}},
	}
	// Coverage: pixel0:1 1:1 2:2 3:3 4:2 5:2
	if got, want := AtLeast(rows, 2), (Row{{2, 4}}); !got.Equal(want) {
		t.Errorf("AtLeast(2) = %v, want %v", got, want)
	}
	if got, want := AtLeast(rows, 3), (Row{{3, 1}}); !got.Equal(want) {
		t.Errorf("AtLeast(3) = %v, want %v", got, want)
	}
	if got := AtLeast(rows, 4); len(got) != 0 {
		t.Errorf("AtLeast(4) = %v, want empty", got)
	}
	// n<1 clamps to 1 (= OR).
	if !AtLeast(rows, 0).Equal(ORMany(rows)) {
		t.Error("AtLeast(0) should equal ORMany")
	}
}

func TestManyAgainstPairwise(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		width := 1 + rng.Intn(128)
		n := 1 + rng.Intn(6)
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = randomRow(rng, width)
		}
		orRef, andRef := rows[0], rows[0]
		for _, w := range rows[1:] {
			orRef = OR(orRef, w)
			andRef = AND(andRef, w)
		}
		if !ORMany(rows).Equal(orRef) {
			t.Fatalf("ORMany disagrees with pairwise OR on %v", rows)
		}
		if !ANDMany(rows).Equal(andRef) {
			t.Fatalf("ANDMany disagrees with pairwise AND on %v", rows)
		}
	}
}

func BenchmarkXORSweep(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	a1 := randomRow(rng, 4096)
	a2 := randomRow(rng, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		XOR(a1, a2)
	}
}
