package rle

import "sort"

// Compressed-domain boolean operations. All operate directly on runs
// in a single boundary sweep, O(k1+k2) in the run counts, without
// expanding to pixels — the regime the paper targets ("process images
// in compressed mode without decompressing them").
//
// These are the library-grade implementations; the step-counted
// sequential merge used as the paper's baseline lives in
// internal/core (SequentialXOR) because its iteration accounting is
// part of the evaluation, not of the data structure.

// combine sweeps the run boundaries of a and b from left to right,
// tracking membership in each operand, and emits maximal intervals
// where keep(inA, inB) holds. The result is canonical as long as keep
// is a function of the membership pair only (which all boolean ops
// are): output intervals on a shared boundary merge by construction.
func combine(a, b Row, keep func(inA, inB bool) bool) Row {
	return appendCombine(nil, a, b, keep)
}

// appendCombine is combine writing its output after dst's existing
// runs, reusing dst's capacity — the allocation-free form of the
// boundary sweep for callers that keep a scratch row across many
// calls. Existing runs in dst are never touched or merged with.
func appendCombine(dst Row, a, b Row, keep func(inA, inB bool) bool) Row {
	out := dst
	ia, ib := 0, 0
	inA, inB := false, false
	pos := 0 // next boundary position under consideration
	// Prime pos with the earliest boundary.
	const inf = int(^uint(0) >> 1)
	nextBoundary := func() int {
		nb := inf
		if ia < len(a) {
			if inA {
				if e := a[ia].End() + 1; e < nb {
					nb = e
				}
			} else if a[ia].Start < nb {
				nb = a[ia].Start
			}
		}
		if ib < len(b) {
			if inB {
				if e := b[ib].End() + 1; e < nb {
					nb = e
				}
			} else if b[ib].Start < nb {
				nb = b[ib].Start
			}
		}
		return nb
	}
	open := false
	var openAt int
	for {
		nb := nextBoundary()
		if nb == inf {
			break
		}
		pos = nb
		// Apply every membership transition that falls at pos before
		// evaluating keep: with adjacent runs (valid per the paper) an
		// operand both ends a run and starts the next at the same
		// boundary, and splitting those into two visits would emit
		// empty or fragmented intervals.
		for ia < len(a) && ((inA && a[ia].End()+1 == pos) || (!inA && a[ia].Start == pos)) {
			if inA {
				inA = false
				ia++
			} else {
				inA = true
			}
		}
		for ib < len(b) && ((inB && b[ib].End()+1 == pos) || (!inB && b[ib].Start == pos)) {
			if inB {
				inB = false
				ib++
			} else {
				inB = true
			}
		}
		want := keep(inA, inB)
		switch {
		case want && !open:
			open = true
			openAt = pos
		case !want && open:
			open = false
			out = append(out, Span(openAt, pos-1))
		}
	}
	if open {
		// keep() with both memberships false must be false for the
		// sweep to terminate every interval; all boolean ops used
		// here satisfy that (background op background = background).
		panic("rle: combine left an interval open; keep(false,false) must be false")
	}
	return out
}

// XOR returns the image difference of two rows (paper §2: for each
// pixel, difference[i] = a[i] ⊕ b[i]). The result is canonical.
func XOR(a, b Row) Row {
	return combine(a, b, func(x, y bool) bool { return x != y })
}

// AppendXOR appends the image difference of a and b to dst and
// returns the extended slice, reusing dst's capacity — the hot-path
// form of XOR for callers that sweep a scratch row over many row
// pairs. The appended runs are canonical among themselves; existing
// runs already in dst are left untouched and never merged with.
func AppendXOR(dst Row, a, b Row) Row {
	return appendCombine(dst, a, b, func(x, y bool) bool { return x != y })
}

// XORInto computes the image difference of a and b into dst's
// storage (dst's length is ignored, its capacity reused) and returns
// the result, which is canonical. It is the in-place variant of XOR:
//
//	scratch = rle.XORInto(scratch, a, b) // no allocation once scratch is big enough
func XORInto(dst Row, a, b Row) Row {
	return AppendXOR(dst[:0], a, b)
}

// AppendCanonical appends w's runs to dst in canonical form — merging
// adjacent and overlapping runs as Canonicalize does — reusing dst's
// capacity. Runs already in dst are never modified or merged with
// (the shared contract of every append-path operation); only the runs
// of w are canonicalized among themselves. w must be sorted by start.
func AppendCanonical(dst Row, w Row) Row {
	base := len(dst)
	for _, r := range w {
		if n := len(dst); n > base && r.Start <= dst[n-1].End()+1 {
			if e := r.End(); e > dst[n-1].End() {
				dst[n-1].Length = e - dst[n-1].Start + 1
			}
			continue
		}
		dst = append(dst, r)
	}
	return dst
}

// AppendUnion appends a ∪ b to dst with a two-pointer merge over the
// sorted inputs, reusing dst's capacity. Existing runs in dst are
// never touched or merged with; the appended runs are canonical among
// themselves. This is the cheap associative building block of the
// prefix/suffix (van Herk) vertical sweeps in runmorph.
func AppendUnion(dst Row, a, b Row) Row {
	base := len(dst)
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var r Run
		if j >= len(b) || (i < len(a) && a[i].Start <= b[j].Start) {
			r = a[i]
			i++
		} else {
			r = b[j]
			j++
		}
		if n := len(dst); n > base && r.Start <= dst[n-1].End()+1 {
			if e := r.End(); e > dst[n-1].End() {
				dst[n-1].Length = e - dst[n-1].Start + 1
			}
			continue
		}
		dst = append(dst, r)
	}
	return dst
}

// AND returns the pixelwise conjunction of two rows.
func AND(a, b Row) Row {
	return combine(a, b, func(x, y bool) bool { return x && y })
}

// OR returns the pixelwise disjunction of two rows.
func OR(a, b Row) Row {
	return combine(a, b, func(x, y bool) bool { return x || y })
}

// AndNot returns a minus b: pixels set in a and clear in b.
func AndNot(a, b Row) Row {
	return combine(a, b, func(x, y bool) bool { return x && !y })
}

// Not complements the row within [0, width).
func Not(a Row, width int) Row {
	var out Row
	pos := 0
	for _, r := range a {
		if r.Start > pos {
			end := r.Start - 1
			if end >= width {
				end = width - 1
			}
			if end >= pos {
				out = append(out, Span(pos, end))
			}
		}
		pos = r.End() + 1
		if pos >= width {
			break
		}
	}
	if pos < width {
		out = append(out, Span(pos, width-1))
	}
	return out
}

// ORMany returns the disjunction of many rows via a k-way interval
// merge over the already-sorted inputs — O(K·k) for K total runs over
// k rows. Used by the vertical pass of compressed-domain morphology.
func ORMany(rows []Row) Row {
	var s SweepScratch
	return s.AppendOR(nil, rows)
}

// ANDMany returns the conjunction of many rows: pixels covered by all
// of them.
func ANDMany(rows []Row) Row {
	if len(rows) == 0 {
		return nil
	}
	var s SweepScratch
	return s.AppendAND(nil, rows)
}

// AtLeast returns pixels covered by at least n of the rows (n ≥ 1).
// ORMany and ANDMany are the n=1 and n=len special cases; intermediate
// n yields majority-style filters.
func AtLeast(rows []Row, n int) Row {
	if n < 1 {
		n = 1
	}
	var s SweepScratch
	return s.appendThreshold(nil, rows, n)
}

type boundary struct {
	pos   int
	delta int
}

// SweepScratch owns the reusable buffers of the k-row combination
// sweeps. Callers that run many sweeps (the vertical pass of
// run-native morphology visits one window per output row) keep one
// scratch across calls so the steady state allocates nothing:
//
//	var s rle.SweepScratch
//	for y := range out {
//		acc = s.AppendOR(acc[:0], window(y))
//	}
//
// The zero value is ready to use. A SweepScratch must not be shared
// between goroutines.
type SweepScratch struct {
	bs   []boundary
	idx  []int
	tmpA Row
	tmpB Row
}

// AppendOR appends the disjunction of rows to dst, reusing dst's
// capacity. Existing runs in dst are never touched or merged with; the
// appended runs are canonical among themselves. Because each input row
// is already sorted, the union is a k-way interval merge — O(K·k) int
// comparisons for K total runs over k rows, no boundary sort — which
// is what keeps page-scale morphology ahead of the word-parallel
// bitmap baseline.
func (s *SweepScratch) AppendOR(dst Row, rows []Row) Row {
	// Track read positions per row; skip empty rows up front.
	idx := s.idx[:0]
	live := 0
	for range rows {
		idx = append(idx, 0)
	}
	s.idx = idx
	for _, w := range rows {
		if len(w) > 0 {
			live++
		}
	}
	if live == 0 {
		return dst
	}
	base := len(dst)
	for {
		best := -1
		var bestStart int
		for i, w := range rows {
			if idx[i] < len(w) && (best < 0 || w[idx[i]].Start < bestStart) {
				best = i
				bestStart = w[idx[i]].Start
			}
		}
		if best < 0 {
			return dst
		}
		r := rows[best][idx[best]]
		idx[best]++
		if n := len(dst); n > base && r.Start <= dst[n-1].End()+1 {
			if e := r.End(); e > dst[n-1].End() {
				dst[n-1].Length = e - dst[n-1].Start + 1
			}
			continue
		}
		dst = append(dst, r)
	}
}

// AppendAND appends the conjunction of rows to dst under the same
// append contract as AppendOR: pairwise two-pointer intersections over
// ping-pong scratch rows, early-exiting the moment the accumulator
// empties. With zero rows the conjunction is vacuously empty here
// (callers gate the all-rows-present case).
func (s *SweepScratch) AppendAND(dst Row, rows []Row) Row {
	switch len(rows) {
	case 0:
		return dst
	case 1:
		return AppendCanonical(dst, rows[0])
	}
	acc := intersectAppend(s.tmpA[:0], rows[0], rows[1])
	s.tmpA = acc[:0]
	for i := 2; i < len(rows) && len(acc) > 0; i++ {
		next := intersectAppend(s.tmpB[:0], acc, rows[i])
		s.tmpB = acc[:0] // old accumulator becomes the next spare
		s.tmpA = next[:0]
		acc = next
	}
	return AppendCanonical(dst, acc)
}

// intersectAppend appends a ∩ b to dst with a two-pointer merge. The
// output is valid (sorted, non-overlapping) but may contain adjacent
// runs; AppendAND canonicalizes on its final copy.
func intersectAppend(dst Row, a, b Row) Row {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		s := a[i].Start
		if b[j].Start > s {
			s = b[j].Start
		}
		e := a[i].End()
		be := b[j].End()
		if be < e {
			e = be
		}
		if s <= e {
			dst = append(dst, Span(s, e))
		}
		if a[i].End() < b[j].End() {
			i++
		} else {
			j++
		}
	}
	return dst
}

// AppendAtLeast appends pixels covered by at least n of the rows
// (n ≥ 1) under the append contract.
func (s *SweepScratch) AppendAtLeast(dst Row, rows []Row, n int) Row {
	if n < 1 {
		n = 1
	}
	return s.appendThreshold(dst, rows, n)
}

func (s *SweepScratch) appendThreshold(dst Row, rows []Row, threshold int) Row {
	total := 0
	for _, w := range rows {
		total += len(w)
	}
	if total == 0 {
		return dst
	}
	bs := s.bs[:0]
	for _, w := range rows {
		for _, r := range w {
			bs = append(bs, boundary{r.Start, +1}, boundary{r.End() + 1, -1})
		}
	}
	sortBoundaries(bs)
	s.bs = bs
	out := dst
	depth := 0
	open := false
	var openAt int
	for i := 0; i < len(bs); {
		pos := bs[i].pos
		for i < len(bs) && bs[i].pos == pos {
			depth += bs[i].delta
			i++
		}
		want := depth >= threshold
		switch {
		case want && !open:
			open = true
			openAt = pos
		case !want && open:
			open = false
			out = append(out, Span(openAt, pos-1))
		}
	}
	return out
}

// sortBoundaries sorts by position; insertion sort for the tiny
// windows the morphology sweeps pass, sort.Slice otherwise.
func sortBoundaries(bs []boundary) {
	if len(bs) < 32 {
		for i := 1; i < len(bs); i++ {
			for j := i; j > 0 && bs[j].pos < bs[j-1].pos; j-- {
				bs[j], bs[j-1] = bs[j-1], bs[j]
			}
		}
		return
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].pos < bs[j].pos })
}
