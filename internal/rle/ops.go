package rle

import "sort"

// Compressed-domain boolean operations. All operate directly on runs
// in a single boundary sweep, O(k1+k2) in the run counts, without
// expanding to pixels — the regime the paper targets ("process images
// in compressed mode without decompressing them").
//
// These are the library-grade implementations; the step-counted
// sequential merge used as the paper's baseline lives in
// internal/core (SequentialXOR) because its iteration accounting is
// part of the evaluation, not of the data structure.

// combine sweeps the run boundaries of a and b from left to right,
// tracking membership in each operand, and emits maximal intervals
// where keep(inA, inB) holds. The result is canonical as long as keep
// is a function of the membership pair only (which all boolean ops
// are): output intervals on a shared boundary merge by construction.
func combine(a, b Row, keep func(inA, inB bool) bool) Row {
	return appendCombine(nil, a, b, keep)
}

// appendCombine is combine writing its output after dst's existing
// runs, reusing dst's capacity — the allocation-free form of the
// boundary sweep for callers that keep a scratch row across many
// calls. Existing runs in dst are never touched or merged with.
func appendCombine(dst Row, a, b Row, keep func(inA, inB bool) bool) Row {
	out := dst
	ia, ib := 0, 0
	inA, inB := false, false
	pos := 0 // next boundary position under consideration
	// Prime pos with the earliest boundary.
	const inf = int(^uint(0) >> 1)
	nextBoundary := func() int {
		nb := inf
		if ia < len(a) {
			if inA {
				if e := a[ia].End() + 1; e < nb {
					nb = e
				}
			} else if a[ia].Start < nb {
				nb = a[ia].Start
			}
		}
		if ib < len(b) {
			if inB {
				if e := b[ib].End() + 1; e < nb {
					nb = e
				}
			} else if b[ib].Start < nb {
				nb = b[ib].Start
			}
		}
		return nb
	}
	open := false
	var openAt int
	for {
		nb := nextBoundary()
		if nb == inf {
			break
		}
		pos = nb
		// Apply every membership transition that falls at pos before
		// evaluating keep: with adjacent runs (valid per the paper) an
		// operand both ends a run and starts the next at the same
		// boundary, and splitting those into two visits would emit
		// empty or fragmented intervals.
		for ia < len(a) && ((inA && a[ia].End()+1 == pos) || (!inA && a[ia].Start == pos)) {
			if inA {
				inA = false
				ia++
			} else {
				inA = true
			}
		}
		for ib < len(b) && ((inB && b[ib].End()+1 == pos) || (!inB && b[ib].Start == pos)) {
			if inB {
				inB = false
				ib++
			} else {
				inB = true
			}
		}
		want := keep(inA, inB)
		switch {
		case want && !open:
			open = true
			openAt = pos
		case !want && open:
			open = false
			out = append(out, Span(openAt, pos-1))
		}
	}
	if open {
		// keep() with both memberships false must be false for the
		// sweep to terminate every interval; all boolean ops used
		// here satisfy that (background op background = background).
		panic("rle: combine left an interval open; keep(false,false) must be false")
	}
	return out
}

// XOR returns the image difference of two rows (paper §2: for each
// pixel, difference[i] = a[i] ⊕ b[i]). The result is canonical.
func XOR(a, b Row) Row {
	return combine(a, b, func(x, y bool) bool { return x != y })
}

// AppendXOR appends the image difference of a and b to dst and
// returns the extended slice, reusing dst's capacity — the hot-path
// form of XOR for callers that sweep a scratch row over many row
// pairs. The appended runs are canonical among themselves; existing
// runs already in dst are left untouched and never merged with.
func AppendXOR(dst Row, a, b Row) Row {
	return appendCombine(dst, a, b, func(x, y bool) bool { return x != y })
}

// XORInto computes the image difference of a and b into dst's
// storage (dst's length is ignored, its capacity reused) and returns
// the result, which is canonical. It is the in-place variant of XOR:
//
//	scratch = rle.XORInto(scratch, a, b) // no allocation once scratch is big enough
func XORInto(dst Row, a, b Row) Row {
	return AppendXOR(dst[:0], a, b)
}

// AppendCanonical appends w's runs to dst in canonical form — merging
// adjacent and overlapping runs as Canonicalize does — reusing dst's
// capacity. Runs already in dst are never modified or merged with
// (the shared contract of every append-path operation); only the runs
// of w are canonicalized among themselves. w must be sorted by start.
func AppendCanonical(dst Row, w Row) Row {
	base := len(dst)
	for _, r := range w {
		if n := len(dst); n > base && r.Start <= dst[n-1].End()+1 {
			if e := r.End(); e > dst[n-1].End() {
				dst[n-1].Length = e - dst[n-1].Start + 1
			}
			continue
		}
		dst = append(dst, r)
	}
	return dst
}

// AND returns the pixelwise conjunction of two rows.
func AND(a, b Row) Row {
	return combine(a, b, func(x, y bool) bool { return x && y })
}

// OR returns the pixelwise disjunction of two rows.
func OR(a, b Row) Row {
	return combine(a, b, func(x, y bool) bool { return x || y })
}

// AndNot returns a minus b: pixels set in a and clear in b.
func AndNot(a, b Row) Row {
	return combine(a, b, func(x, y bool) bool { return x && !y })
}

// Not complements the row within [0, width).
func Not(a Row, width int) Row {
	var out Row
	pos := 0
	for _, r := range a {
		if r.Start > pos {
			end := r.Start - 1
			if end >= width {
				end = width - 1
			}
			if end >= pos {
				out = append(out, Span(pos, end))
			}
		}
		pos = r.End() + 1
		if pos >= width {
			break
		}
	}
	if pos < width {
		out = append(out, Span(pos, width-1))
	}
	return out
}

// ORMany returns the disjunction of many rows in a single sweep using
// a coverage counter over all run boundaries. O(K log K) for K total
// runs (boundary sort via merging is replaced by a simple gather+sort
// because callers pass small windows). Used by the vertical pass of
// compressed-domain morphology.
func ORMany(rows []Row) Row {
	return thresholdSweep(rows, 1)
}

// ANDMany returns the conjunction of many rows: pixels covered by all
// of them.
func ANDMany(rows []Row) Row {
	if len(rows) == 0 {
		return nil
	}
	return thresholdSweep(rows, len(rows))
}

// AtLeast returns pixels covered by at least n of the rows (n ≥ 1).
// ORMany and ANDMany are the n=1 and n=len special cases; intermediate
// n yields majority-style filters.
func AtLeast(rows []Row, n int) Row {
	if n < 1 {
		n = 1
	}
	return thresholdSweep(rows, n)
}

type boundary struct {
	pos   int
	delta int
}

func thresholdSweep(rows []Row, threshold int) Row {
	total := 0
	for _, w := range rows {
		total += len(w)
	}
	if total == 0 {
		return nil
	}
	bs := make([]boundary, 0, 2*total)
	for _, w := range rows {
		for _, r := range w {
			bs = append(bs, boundary{r.Start, +1}, boundary{r.End() + 1, -1})
		}
	}
	sortBoundaries(bs)
	var out Row
	depth := 0
	open := false
	var openAt int
	for i := 0; i < len(bs); {
		pos := bs[i].pos
		for i < len(bs) && bs[i].pos == pos {
			depth += bs[i].delta
			i++
		}
		want := depth >= threshold
		switch {
		case want && !open:
			open = true
			openAt = pos
		case !want && open:
			open = false
			out = append(out, Span(openAt, pos-1))
		}
	}
	return out
}

// sortBoundaries sorts by position; insertion sort for the tiny
// windows the morphology sweeps pass, sort.Slice otherwise.
func sortBoundaries(bs []boundary) {
	if len(bs) < 32 {
		for i := 1; i < len(bs); i++ {
			for j := i; j > 0 && bs[j].pos < bs[j-1].pos; j-- {
				bs[j], bs[j-1] = bs[j-1], bs[j]
			}
		}
		return
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].pos < bs[j].pos })
}
