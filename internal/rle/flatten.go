package rle

import "fmt"

// Flattening. A 2D binary image is, bit for bit, one long bitstring
// (row-major). The systolic machine operates on bitstrings, so an
// entire image can be pushed through a single array by translating
// every run to global coordinates — an alternative deployment to the
// paper's one-array-per-row arrangement, traded off in the
// experiments.
//
// Runs never cross row boundaries in a valid Image, so flattening is
// exact; unflattening splits any run that spans rows (the systolic
// output may merge runs across a boundary when the last pixel of one
// row and the first of the next are both set).

// Flatten converts an image to a single row over the bitstring
// 0..Width*Height-1.
func Flatten(img *Image) Row {
	out := make(Row, 0, img.RunCount())
	for y, row := range img.Rows {
		base := y * img.Width
		for _, r := range row {
			out = append(out, Run{Start: base + r.Start, Length: r.Length})
		}
	}
	return out
}

// Unflatten converts a flat row back to an image of the given
// dimensions, splitting runs at row boundaries. Runs outside the
// bitstring are an error.
func Unflatten(flat Row, width, height int) (*Image, error) {
	img := NewImage(width, height)
	if width == 0 {
		if len(flat) > 0 {
			return nil, fmt.Errorf("rle: runs in zero-width image")
		}
		return img, nil
	}
	for _, r := range flat {
		if r.Start < 0 || r.End() >= width*height {
			return nil, fmt.Errorf("rle: flat run %v outside %dx%d", r, width, height)
		}
		start := r.Start
		remaining := r.Length
		for remaining > 0 {
			y := start / width
			x := start % width
			span := width - x
			if span > remaining {
				span = remaining
			}
			img.Rows[y] = append(img.Rows[y], Run{Start: x, Length: span})
			start += span
			remaining -= span
		}
	}
	for y := range img.Rows {
		img.Rows[y] = img.Rows[y].Canonicalize()
	}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	return img, nil
}

// CompressionStats summarizes how well an image compresses under RLE
// — the quantity that decides whether the paper's approach pays off
// for a given workload.
type CompressionStats struct {
	Width, Height int
	// Pixels is Width*Height; Foreground the set pixel count.
	Pixels     int
	Foreground int
	// Runs is the total run count; MeanRunLen the average foreground
	// run length.
	Runs       int
	MeanRunLen float64
	// BitmapBytes is the packed 1-bpp size; RLEBytes the binary RLE
	// encoding size estimate (varint-coded, as WriteBinary emits).
	BitmapBytes int
	RLEBytes    int
	// Ratio is BitmapBytes/RLEBytes (>1 means RLE wins).
	Ratio float64
}

// Stats computes compression statistics for an image.
func Stats(img *Image) CompressionStats {
	s := CompressionStats{
		Width:  img.Width,
		Height: img.Height,
		Pixels: img.Width * img.Height,
	}
	s.Foreground = img.Area()
	s.Runs = img.RunCount()
	if s.Runs > 0 {
		s.MeanRunLen = float64(s.Foreground) / float64(s.Runs)
	}
	s.BitmapBytes = ((img.Width + 7) / 8) * img.Height
	s.RLEBytes = binaryEncodedSize(img)
	if s.RLEBytes > 0 {
		s.Ratio = float64(s.BitmapBytes) / float64(s.RLEBytes)
	}
	return s
}

// binaryEncodedSize computes the exact WriteBinary output size
// without materializing it.
func binaryEncodedSize(img *Image) int {
	n := 4 + uvarintLen(uint64(img.Width)) + uvarintLen(uint64(img.Height))
	for _, row := range img.Rows {
		n += uvarintLen(uint64(len(row)))
		pos := 0
		for _, r := range row {
			n += uvarintLen(uint64(r.Start - pos))
			n += uvarintLen(uint64(r.Length))
			pos = r.End() + 1
		}
	}
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
