package rle

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// fig1Img1 and fig1Img2 are the paper's Figure 1 inputs.
func fig1Img1() Row {
	return Row{{10, 3}, {16, 2}, {23, 2}, {27, 3}}
}

func fig1Img2() Row {
	return Row{{3, 4}, {8, 5}, {15, 5}, {23, 2}, {27, 4}}
}

// randomRow produces a valid (canonical) row of the given width using
// the supplied RNG; exported within the package for other test files.
func randomRow(rng *rand.Rand, width int) Row {
	var row Row
	pos := rng.Intn(4)
	for pos < width {
		length := 1 + rng.Intn(8)
		if pos+length > width {
			length = width - pos
		}
		if length <= 0 {
			break
		}
		row = append(row, Run{Start: pos, Length: length})
		pos += length + 1 + rng.Intn(10) // +1 gap keeps it canonical
	}
	return row
}

func TestValidateAcceptsFigure1(t *testing.T) {
	if err := fig1Img1().Validate(32); err != nil {
		t.Errorf("img1: %v", err)
	}
	if err := fig1Img2().Validate(32); err != nil {
		t.Errorf("img2: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		row  Row
	}{
		{"zero length", Row{{5, 0}}},
		{"negative start", Row{{-1, 3}}},
		{"non increasing", Row{{5, 2}, {5, 3}}},
		{"decreasing", Row{{9, 2}, {3, 3}}},
		{"overlap", Row{{0, 5}, {4, 2}}},
		{"beyond width", Row{{30, 5}}},
	}
	for _, c := range cases {
		if err := c.row.Validate(32); err == nil {
			t.Errorf("%s: Validate accepted %v", c.name, c.row)
		}
	}
}

func TestValidateSkipsBoundsWhenNegativeWidth(t *testing.T) {
	if err := (Row{{1000, 1000}}).Validate(-1); err != nil {
		t.Errorf("unbounded validate rejected in-variant row: %v", err)
	}
}

func TestCanonicalize(t *testing.T) {
	cases := []struct {
		name string
		in   Row
		want Row
	}{
		{"empty", nil, nil},
		{"single", Row{{3, 4}}, Row{{3, 4}}},
		{"adjacent pair merges", Row{{0, 3}, {3, 2}}, Row{{0, 5}}},
		{"chain merges", Row{{0, 1}, {1, 1}, {2, 1}}, Row{{0, 3}}},
		{"gap preserved", Row{{0, 3}, {4, 2}}, Row{{0, 3}, {4, 2}}},
		{"overlap absorbed", Row{{0, 5}, {2, 2}}, Row{{0, 5}}},
		{"overlap extends", Row{{0, 5}, {3, 10}}, Row{{0, 13}}},
	}
	for _, c := range cases {
		got := c.in.Canonicalize()
		if !got.Equal(c.want) {
			t.Errorf("%s: Canonicalize(%v) = %v, want %v", c.name, c.in, got, c.want)
		}
		if !got.Canonical() {
			t.Errorf("%s: result %v not canonical", c.name, got)
		}
	}
}

func TestCanonicalPredicate(t *testing.T) {
	if !(Row{{0, 3}, {4, 2}}).Canonical() {
		t.Error("gapped row reported non-canonical")
	}
	if (Row{{0, 3}, {3, 2}}).Canonical() {
		t.Error("adjacent row reported canonical")
	}
	if (Row{{4, 2}, {0, 3}}).Canonical() {
		t.Error("invalid row reported canonical")
	}
}

func TestNormalizeSortsAndMerges(t *testing.T) {
	in := []Run{{8, 2}, {0, 3}, {3, 5}, {20, 1}, {15, 2}, {0, 0}, {-3, 2}}
	got := Normalize(in)
	want := Row{{0, 10}, {15, 2}, {20, 1}}
	if !got.Equal(want) {
		t.Errorf("Normalize = %v, want %v", got, want)
	}
}

func TestBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		width := 1 + rng.Intn(300)
		row := randomRow(rng, width)
		back := FromBits(row.Bits(width))
		if !back.Equal(row) {
			t.Fatalf("round trip: %v -> %v (width %d)", row, back, width)
		}
	}
}

func TestFromBitsProperty(t *testing.T) {
	// FromBits always yields a canonical row whose Bits reproduce the
	// input.
	f := func(bits []bool) bool {
		row := FromBits(bits)
		if !row.Canonical() {
			return false
		}
		got := row.Bits(len(bits))
		for i := range bits {
			if got[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGetMatchesBits(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		width := 1 + rng.Intn(200)
		row := randomRow(rng, width)
		bits := row.Bits(width)
		for i := 0; i < width; i++ {
			if row.Get(i) != bits[i] {
				t.Fatalf("Get(%d) = %v disagrees with bits for %v", i, row.Get(i), row)
			}
		}
		if row.Get(-1) || row.Get(width+5) {
			t.Fatal("out-of-range Get returned foreground")
		}
	}
}

func TestAreaAndRunCount(t *testing.T) {
	row := fig1Img2()
	if got := row.Area(); got != 4+5+5+2+4 {
		t.Errorf("Area = %d, want 20", got)
	}
	if got := row.RunCount(); got != 5 {
		t.Errorf("RunCount = %d, want 5", got)
	}
	if (Row)(nil).Area() != 0 || (Row)(nil).RunCount() != 0 {
		t.Error("empty row has nonzero area or count")
	}
}

func TestCloneIndependence(t *testing.T) {
	row := fig1Img1()
	cp := row.Clone()
	cp[0].Start = 99
	if row[0].Start == 99 {
		t.Error("Clone aliases the original")
	}
	if (Row)(nil).Clone() != nil {
		t.Error("nil Clone should stay nil")
	}
}

func TestEqualBits(t *testing.T) {
	a := Row{{0, 3}, {3, 2}} // non-canonical encoding of 0..4
	b := Row{{0, 5}}
	if a.Equal(b) {
		t.Error("Equal should compare encodings, not bitstrings")
	}
	if !a.EqualBits(b) {
		t.Error("EqualBits should identify equivalent encodings")
	}
	if a.EqualBits(Row{{0, 4}}) {
		t.Error("EqualBits conflated different bitstrings")
	}
}

func TestClip(t *testing.T) {
	row := Row{{-5, 3}, {-2, 4}, {10, 5}, {28, 10}, {50, 3}}
	got := row.Clip(32)
	want := Row{{0, 2}, {10, 5}, {28, 4}}
	if !got.Equal(want) {
		t.Errorf("Clip = %v, want %v", got, want)
	}
	if err := got.Validate(32); err != nil {
		t.Errorf("clipped row invalid: %v", err)
	}
}

func TestShift(t *testing.T) {
	row := fig1Img1()
	right := row.Shift(3)
	for i := range row {
		if right[i].Start != row[i].Start+3 || right[i].Length != row[i].Length {
			t.Fatalf("Shift(3)[%d] = %v", i, right[i])
		}
	}
	if !row.Shift(5).Shift(-5).Equal(row) {
		t.Error("Shift is not invertible")
	}
}

func TestRowString(t *testing.T) {
	if got := (Row{{3, 4}, {8, 2}}).String(); got != "[(3,4) (8,2)]" {
		t.Errorf("String = %q", got)
	}
	if got := (Row)(nil).String(); got != "[]" {
		t.Errorf("nil String = %q", got)
	}
}
