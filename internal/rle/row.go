package rle

import (
	"fmt"
	"sort"
	"strings"
)

// Row is one run-length encoded image row: foreground runs in strictly
// increasing start order, non-overlapping. A nil or empty Row is the
// all-background row.
type Row []Run

// Validate checks the row's structural invariants against an image
// width (pass width < 0 to skip the bounds check): every run is
// well-formed, starts strictly increase, runs do not overlap, and all
// pixels fall in [0, width).
func (w Row) Validate(width int) error {
	for i, r := range w {
		if !r.Valid() {
			return fmt.Errorf("rle: run %d %v is malformed", i, r)
		}
		if width >= 0 && r.End() >= width {
			return fmt.Errorf("rle: run %d %v exceeds width %d", i, r, width)
		}
		if i > 0 {
			prev := w[i-1]
			if r.Start <= prev.Start {
				return fmt.Errorf("rle: run %d %v does not increase after %v", i, r, prev)
			}
			if prev.End() >= r.Start {
				return fmt.Errorf("rle: run %d %v overlaps %v", i, r, prev)
			}
		}
	}
	return nil
}

// Canonical reports whether the row is maximally compressed: valid and
// with no pair of adjacent runs.
func (w Row) Canonical() bool {
	if w.Validate(-1) != nil {
		return false
	}
	for i := 1; i < len(w); i++ {
		if w[i-1].End()+1 == w[i].Start {
			return false
		}
	}
	return true
}

// Canonicalize merges adjacent (and, defensively, overlapping) runs,
// returning the maximally compressed encoding of the same bitstring.
// This is the "additional pass at the end" the paper describes for
// fully compressing an output. The input must be sorted by start.
func (w Row) Canonicalize() Row {
	if len(w) == 0 {
		return nil
	}
	out := make(Row, 0, len(w))
	cur := w[0]
	for _, r := range w[1:] {
		if r.Start <= cur.End()+1 { // overlapping or adjacent
			if e := r.End(); e > cur.End() {
				cur.Length = e - cur.Start + 1
			}
			continue
		}
		out = append(out, cur)
		cur = r
	}
	return append(out, cur)
}

// Normalize sorts arbitrary runs by start and canonicalizes them. It
// is the forgiving constructor for rows assembled out of order.
func Normalize(runs []Run) Row {
	w := make(Row, 0, len(runs))
	for _, r := range runs {
		if r.Valid() {
			w = append(w, r)
		}
	}
	sort.Slice(w, func(i, j int) bool { return w[i].Start < w[j].Start })
	return w.Canonicalize()
}

// Area returns the number of foreground pixels in the row.
func (w Row) Area() int {
	n := 0
	for _, r := range w {
		n += r.Length
	}
	return n
}

// RunCount returns the number of runs (k in the paper's analysis).
func (w Row) RunCount() int { return len(w) }

// Get reports the value of pixel i (true = foreground). Binary search.
func (w Row) Get(i int) bool {
	lo, hi := 0, len(w)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case w[mid].End() < i:
			lo = mid + 1
		case w[mid].Start > i:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// Bits expands the row to an uncompressed boolean bitstring of the
// given width. Runs beyond the width are truncated.
func (w Row) Bits(width int) []bool {
	bits := make([]bool, width)
	for _, r := range w {
		for i := r.Start; i <= r.End() && i < width; i++ {
			if i >= 0 {
				bits[i] = true
			}
		}
	}
	return bits
}

// FromBits encodes an uncompressed boolean bitstring as a canonical
// row.
func FromBits(bits []bool) Row {
	var w Row
	i := 0
	for i < len(bits) {
		if !bits[i] {
			i++
			continue
		}
		j := i
		for j < len(bits) && bits[j] {
			j++
		}
		w = append(w, Run{Start: i, Length: j - i})
		i = j
	}
	return w
}

// Clone returns a deep copy of the row.
func (w Row) Clone() Row {
	if w == nil {
		return nil
	}
	out := make(Row, len(w))
	copy(out, w)
	return out
}

// Equal reports whether two rows are identical encodings (same runs in
// the same order). Use EqualBits to compare the represented
// bitstrings regardless of encoding.
func (w Row) Equal(v Row) bool {
	if len(w) != len(v) {
		return false
	}
	for i := range w {
		if w[i] != v[i] {
			return false
		}
	}
	return true
}

// EqualBits reports whether two rows represent the same bitstring,
// i.e. their canonical forms are identical.
func (w Row) EqualBits(v Row) bool {
	return w.Canonicalize().Equal(v.Canonicalize())
}

// Clip restricts the row to [0, width), truncating or dropping runs
// that fall outside.
func (w Row) Clip(width int) Row {
	var out Row
	for _, r := range w {
		if r.End() < 0 || r.Start >= width {
			continue
		}
		s, e := r.Start, r.End()
		if s < 0 {
			s = 0
		}
		if e >= width {
			e = width - 1
		}
		out = append(out, Span(s, e))
	}
	return out
}

// Shift translates every run by delta pixels (negative = left). The
// result is not clipped; combine with Clip to stay inside an image.
func (w Row) Shift(delta int) Row {
	out := make(Row, len(w))
	for i, r := range w {
		out[i] = Run{Start: r.Start + delta, Length: r.Length}
	}
	return out
}

func (w Row) String() string {
	if len(w) == 0 {
		return "[]"
	}
	parts := make([]string, len(w))
	for i, r := range w {
		parts[i] = r.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}
