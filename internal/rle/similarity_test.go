package rle

import (
	"math"
	"math/rand"
	"testing"
)

func TestRunCountDiff(t *testing.T) {
	if got := RunCountDiff(fig1Img1(), fig1Img2()); got != 1 {
		t.Errorf("RunCountDiff = %d, want 1", got)
	}
	if got := RunCountDiff(fig1Img2(), fig1Img1()); got != 1 {
		t.Errorf("RunCountDiff not symmetric: %d", got)
	}
	if RunCountDiff(nil, nil) != 0 {
		t.Error("RunCountDiff of empties should be 0")
	}
}

func TestXORRunsFigure1(t *testing.T) {
	if got := XORRuns(fig1Img1(), fig1Img2()); got != 5 {
		t.Errorf("XORRuns = %d, want 5 (Figure 1 difference has 5 runs)", got)
	}
	if XORRuns(fig1Img1(), fig1Img1()) != 0 {
		t.Error("self XORRuns should be 0")
	}
}

func TestHamming(t *testing.T) {
	// Figure 1 difference: (3,4)(8,2)(15,1)(18,2)(30,1) = 10 pixels.
	if got := Hamming(fig1Img1(), fig1Img2()); got != 10 {
		t.Errorf("Hamming = %d, want 10", got)
	}
	if Hamming(fig1Img1(), fig1Img1()) != 0 {
		t.Error("self Hamming should be 0")
	}
}

func TestJaccard(t *testing.T) {
	if got := Jaccard(nil, nil); got != 1 {
		t.Errorf("Jaccard(∅,∅) = %v, want 1", got)
	}
	a := Row{{0, 4}}
	if got := Jaccard(a, a); got != 1 {
		t.Errorf("Jaccard(a,a) = %v, want 1", got)
	}
	b := Row{{2, 4}} // overlap 2, union 6
	if got, want := Jaccard(a, b), 2.0/6.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Jaccard = %v, want %v", got, want)
	}
	if got := Jaccard(a, Row{{10, 2}}); got != 0 {
		t.Errorf("disjoint Jaccard = %v, want 0", got)
	}
}

func TestImageSimilarity(t *testing.T) {
	a := NewImage(32, 2)
	b := NewImage(32, 2)
	a.SetRow(0, fig1Img1())
	b.SetRow(0, fig1Img2())
	if got := ImageHamming(a, b); got != 10 {
		t.Errorf("ImageHamming = %d, want 10", got)
	}
	if got := ImageXORRuns(a, b); got != 5 {
		t.Errorf("ImageXORRuns = %d, want 5", got)
	}
}

func TestSimilarityRelations(t *testing.T) {
	// Hamming ≥ XORRuns (every run has ≥1 pixel); Jaccard = 1 iff
	// Hamming = 0.
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		width := 1 + rng.Intn(200)
		a, b := randomRow(rng, width), randomRow(rng, width)
		h, k3 := Hamming(a, b), XORRuns(a, b)
		if h < k3 {
			t.Fatalf("Hamming %d < XORRuns %d for %v %v", h, k3, a, b)
		}
		if (h == 0) != (Jaccard(a, b) == 1) {
			t.Fatalf("Jaccard/Hamming inconsistency for %v %v", a, b)
		}
	}
}

func TestXORAreaShiftedAgainstMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 300; trial++ {
		width := 8 + rng.Intn(200)
		a := randomRow(rng, width)
		b := randomRow(rng, width)
		dx := rng.Intn(2*width+1) - width // shifts past both edges
		got := XORAreaShifted(a, b, dx, width)
		want := Hamming(a, b.Shift(dx).Clip(width))
		if got != want {
			t.Fatalf("XORAreaShifted(dx=%d) = %d, want %d\na=%v\nb=%v", dx, got, want, a, b)
		}
	}
}

func TestXORAreaShiftedEdges(t *testing.T) {
	a := Row{{Start: 0, Length: 4}}
	if got := XORAreaShifted(a, nil, 0, 8); got != 4 {
		t.Errorf("empty b: %d", got)
	}
	if got := XORAreaShifted(nil, a, 2, 8); got != 4 {
		t.Errorf("empty a: %d", got)
	}
	if got := XORAreaShifted(a, a, 0, 8); got != 0 {
		t.Errorf("identical: %d", got)
	}
	// b shifted fully out of the window.
	if got := XORAreaShifted(a, a, 100, 8); got != 4 {
		t.Errorf("b out of window: %d", got)
	}
}
