package rle

import (
	"math"
	"math/rand"
	"testing"
)

func TestRunCountDiff(t *testing.T) {
	if got := RunCountDiff(fig1Img1(), fig1Img2()); got != 1 {
		t.Errorf("RunCountDiff = %d, want 1", got)
	}
	if got := RunCountDiff(fig1Img2(), fig1Img1()); got != 1 {
		t.Errorf("RunCountDiff not symmetric: %d", got)
	}
	if RunCountDiff(nil, nil) != 0 {
		t.Error("RunCountDiff of empties should be 0")
	}
}

func TestXORRunsFigure1(t *testing.T) {
	if got := XORRuns(fig1Img1(), fig1Img2()); got != 5 {
		t.Errorf("XORRuns = %d, want 5 (Figure 1 difference has 5 runs)", got)
	}
	if XORRuns(fig1Img1(), fig1Img1()) != 0 {
		t.Error("self XORRuns should be 0")
	}
}

func TestHamming(t *testing.T) {
	// Figure 1 difference: (3,4)(8,2)(15,1)(18,2)(30,1) = 10 pixels.
	if got := Hamming(fig1Img1(), fig1Img2()); got != 10 {
		t.Errorf("Hamming = %d, want 10", got)
	}
	if Hamming(fig1Img1(), fig1Img1()) != 0 {
		t.Error("self Hamming should be 0")
	}
}

func TestJaccard(t *testing.T) {
	if got := Jaccard(nil, nil); got != 1 {
		t.Errorf("Jaccard(∅,∅) = %v, want 1", got)
	}
	a := Row{{0, 4}}
	if got := Jaccard(a, a); got != 1 {
		t.Errorf("Jaccard(a,a) = %v, want 1", got)
	}
	b := Row{{2, 4}} // overlap 2, union 6
	if got, want := Jaccard(a, b), 2.0/6.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Jaccard = %v, want %v", got, want)
	}
	if got := Jaccard(a, Row{{10, 2}}); got != 0 {
		t.Errorf("disjoint Jaccard = %v, want 0", got)
	}
}

func TestImageSimilarity(t *testing.T) {
	a := NewImage(32, 2)
	b := NewImage(32, 2)
	a.SetRow(0, fig1Img1())
	b.SetRow(0, fig1Img2())
	if got := ImageHamming(a, b); got != 10 {
		t.Errorf("ImageHamming = %d, want 10", got)
	}
	if got := ImageXORRuns(a, b); got != 5 {
		t.Errorf("ImageXORRuns = %d, want 5", got)
	}
}

func TestSimilarityRelations(t *testing.T) {
	// Hamming ≥ XORRuns (every run has ≥1 pixel); Jaccard = 1 iff
	// Hamming = 0.
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		width := 1 + rng.Intn(200)
		a, b := randomRow(rng, width), randomRow(rng, width)
		h, k3 := Hamming(a, b), XORRuns(a, b)
		if h < k3 {
			t.Fatalf("Hamming %d < XORRuns %d for %v %v", h, k3, a, b)
		}
		if (h == 0) != (Jaccard(a, b) == 1) {
			t.Fatalf("Jaccard/Hamming inconsistency for %v %v", a, b)
		}
	}
}

func TestXORAreaShiftedAgainstMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 300; trial++ {
		width := 8 + rng.Intn(200)
		a := randomRow(rng, width)
		b := randomRow(rng, width)
		dx := rng.Intn(2*width+1) - width // shifts past both edges
		got := XORAreaShifted(a, b, dx, width)
		want := Hamming(a, b.Shift(dx).Clip(width))
		if got != want {
			t.Fatalf("XORAreaShifted(dx=%d) = %d, want %d\na=%v\nb=%v", dx, got, want, a, b)
		}
	}
}

// TestXORAreaShiftedWindowSemantics is the oracle-style property
// test: over a corpus that includes operands extending past the
// window (the documented precondition an earlier version silently
// depended on), the allocation-free scan must agree with the
// materialized reference — both operands clipped to [0, width).
func TestXORAreaShiftedWindowSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	randWide := func(span int) Row {
		var row Row
		x := rng.Intn(4)
		for len(row) < 6 && x < span {
			l := 1 + rng.Intn(5)
			row = append(row, Run{Start: x, Length: l})
			x += l + 1 + rng.Intn(5)
		}
		return row
	}
	for trial := 0; trial < 5000; trial++ {
		width := 1 + rng.Intn(40)
		// Operands may extend well past the window on the right.
		a := randWide(width + 16)
		b := randWide(width + 16)
		dx := rng.Intn(2*width+33) - width - 16
		got := XORAreaShifted(a, b, dx, width)
		want := Hamming(a.Clip(width), b.Shift(dx).Clip(width))
		if got != want {
			t.Fatalf("XORAreaShifted(dx=%d, width=%d) = %d, want %d\na=%v\nb=%v",
				dx, width, got, want, a, b)
		}
	}
}

// TestXORAreaShiftedClipsFirstOperand is the minimized regression for
// the window-clipping bug: a run of a straddling the window edge used
// to contribute its full (out-of-window) length.
func TestXORAreaShiftedClipsFirstOperand(t *testing.T) {
	a := Row{{Start: 3, Length: 2}} // pixels 3..4, window is [0,4)
	if got := XORAreaShifted(a, nil, 0, 4); got != 1 {
		t.Errorf("straddling a vs empty b: got %d, want 1 (only pixel 3 is in the window)", got)
	}
	// A run entirely past the window contributes nothing.
	far := Row{{Start: 10, Length: 3}}
	if got := XORAreaShifted(far, nil, 0, 4); got != 0 {
		t.Errorf("out-of-window a: got %d, want 0", got)
	}
	// And the overlap accounting still cancels in-window pixels: b
	// covers the in-window part of a exactly.
	b := Row{{Start: 3, Length: 1}}
	if got := XORAreaShifted(a, b, 0, 4); got != 0 {
		t.Errorf("clipped a vs covering b: got %d, want 0", got)
	}
}

func TestXORAreaShiftedEdges(t *testing.T) {
	a := Row{{Start: 0, Length: 4}}
	if got := XORAreaShifted(a, nil, 0, 8); got != 4 {
		t.Errorf("empty b: %d", got)
	}
	if got := XORAreaShifted(nil, a, 2, 8); got != 4 {
		t.Errorf("empty a: %d", got)
	}
	if got := XORAreaShifted(a, a, 0, 8); got != 0 {
		t.Errorf("identical: %d", got)
	}
	// b shifted fully out of the window.
	if got := XORAreaShifted(a, a, 100, 8); got != 4 {
		t.Errorf("b out of window: %d", got)
	}
}
