package rle

import "fmt"

// Geometric transforms on RLE images, all computed in the compressed
// domain. Horizontal structure is preserved by translation, cropping
// and flips; transposition and rotation rebuild runs from column
// events in a single counting pass (cost proportional to run count +
// output size in runs, never to pixel count).

// Translate shifts the image content by (dx, dy), clipping at the
// borders.
func Translate(img *Image, dx, dy int) *Image {
	out := NewImage(img.Width, img.Height)
	for y, row := range img.Rows {
		ny := y + dy
		if ny < 0 || ny >= img.Height || len(row) == 0 {
			continue
		}
		out.Rows[ny] = row.Shift(dx).Clip(img.Width)
	}
	return out
}

// Crop extracts the rectangle [x0, x0+w) × [y0, y0+h) as a new
// image; regions outside the source read as background. Negative
// dimensions are an error.
func Crop(img *Image, x0, y0, w, h int) (*Image, error) {
	if w < 0 || h < 0 {
		return nil, fmt.Errorf("rle: negative crop %dx%d", w, h)
	}
	out := NewImage(w, h)
	for y := 0; y < h; y++ {
		src := img.Row(y0 + y)
		if len(src) == 0 {
			continue
		}
		out.Rows[y] = src.Shift(-x0).Clip(w)
	}
	return out, nil
}

// Paste writes src onto dst with its top-left corner at (x0, y0),
// overwriting the covered region (both foreground and background of
// the covered rectangle), clipping at dst's borders.
func Paste(dst *Image, src *Image, x0, y0 int) {
	for sy := 0; sy < src.Height; sy++ {
		dy := y0 + sy
		if dy < 0 || dy >= dst.Height {
			continue
		}
		// Clear the covered span, then OR in the shifted source row.
		coverStart, coverEnd := x0, x0+src.Width-1
		if coverEnd < 0 || coverStart >= dst.Width {
			continue
		}
		if coverStart < 0 {
			coverStart = 0
		}
		if coverEnd >= dst.Width {
			coverEnd = dst.Width - 1
		}
		if coverEnd < coverStart {
			// The clamped cover is empty — a zero-width source, or a
			// zero-width destination reached via a negative x0. Nothing
			// is overwritten and a zero-width source has no pixels to
			// contribute, so the row is untouched.
			continue
		}
		cover := Row{Span(coverStart, coverEnd)}
		cleared := AndNot(dst.Rows[dy], cover)
		shifted := src.Rows[sy].Shift(x0).Clip(dst.Width)
		dst.Rows[dy] = OR(cleared, shifted)
	}
}

// FlipH mirrors the image horizontally. A run [s, e] maps to
// [W-1-e, W-1-s]; per-row order reverses.
func FlipH(img *Image) *Image {
	out := NewImage(img.Width, img.Height)
	for y, row := range img.Rows {
		if len(row) == 0 {
			continue
		}
		flipped := make(Row, len(row))
		for i, r := range row {
			flipped[len(row)-1-i] = Span(img.Width-1-r.End(), img.Width-1-r.Start)
		}
		out.Rows[y] = flipped
	}
	return out
}

// FlipV mirrors the image vertically (row order reverses; runs are
// untouched, so this is O(height) plus row copies).
func FlipV(img *Image) *Image {
	out := NewImage(img.Width, img.Height)
	for y, row := range img.Rows {
		out.Rows[img.Height-1-y] = row.Clone()
	}
	return out
}

// Rotate180 is FlipH∘FlipV.
func Rotate180(img *Image) *Image {
	return FlipH(FlipV(img))
}

// Transpose swaps rows and columns: output pixel (x, y) = input
// (y, x). Runs are rebuilt from vertical extents with a single sweep
// over column events, so cost is proportional to the total run count
// plus the output run count.
func Transpose(img *Image) *Image {
	out := NewImage(img.Height, img.Width)
	// For each output row (= input column) we need the set of input
	// rows whose runs cover that column. Sweep input columns left to
	// right, maintaining the set of active (row, run) intervals via
	// start/end events.
	type event struct {
		x     int
		row   int
		start bool
	}
	var events []event
	for y, row := range img.Rows {
		for _, r := range row {
			events = append(events, event{x: r.Start, row: y, start: true})
			events = append(events, event{x: r.End() + 1, row: y, start: false})
		}
	}
	// Counting sort events by x (x ∈ [0, Width]).
	buckets := make([][]event, img.Width+1)
	for _, e := range events {
		if e.x >= 0 && e.x <= img.Width {
			buckets[e.x] = append(buckets[e.x], e)
		}
	}
	// active[y] = true when input row y is foreground at the current
	// column. Output row x is FromBits(active) — but building it
	// incrementally: maintain the current run list lazily by
	// re-extracting only when events occurred at this column.
	active := make([]bool, img.Height)
	var current Row
	dirty := true
	for x := 0; x < img.Width; x++ {
		if len(buckets[x]) > 0 {
			for _, e := range buckets[x] {
				active[e.row] = e.start
			}
			dirty = true
		}
		if dirty {
			current = FromBits(active)
			dirty = false
		}
		out.Rows[x] = current.Clone()
	}
	return out
}

// Downsample shrinks the image by an integer factor with OR-pooling:
// an output pixel is set when any pixel of its f×f source block is.
// Both passes stay in the compressed domain: rows are OR-merged in
// groups of f, then each run's coordinates divide by f. Used by the
// coarse-to-fine scan registration.
func Downsample(img *Image, f int) (*Image, error) {
	if f < 1 {
		return nil, fmt.Errorf("rle: downsample factor %d", f)
	}
	if f == 1 {
		return img.Clone(), nil
	}
	outW := (img.Width + f - 1) / f
	outH := (img.Height + f - 1) / f
	out := NewImage(outW, outH)
	group := make([]Row, 0, f)
	for oy := 0; oy < outH; oy++ {
		group = group[:0]
		for dy := 0; dy < f; dy++ {
			if r := img.Row(oy*f + dy); len(r) > 0 {
				group = append(group, r)
			}
		}
		merged := ORMany(group)
		if len(merged) == 0 {
			continue
		}
		shrunk := make(Row, len(merged))
		for i, r := range merged {
			shrunk[i] = Span(r.Start/f, r.End()/f)
		}
		out.Rows[oy] = shrunk.Canonicalize()
	}
	return out, nil
}

// Rotate90 rotates the image 90° clockwise: output (x, y) = input
// (y, H-1-x)... equivalently Transpose then FlipH.
func Rotate90(img *Image) *Image {
	return FlipH(Transpose(img))
}

// Rotate270 rotates 90° counter-clockwise.
func Rotate270(img *Image) *Image {
	return FlipV(Transpose(img))
}
