package rle

import (
	"math/rand"
	"testing"
)

func randomImage(rng *rand.Rand, width, height int) *Image {
	img := NewImage(width, height)
	for y := range img.Rows {
		img.Rows[y] = randomRow(rng, width)
	}
	return img
}

func TestNewImage(t *testing.T) {
	img := NewImage(10, 5)
	if img.Width != 10 || img.Height != 5 || len(img.Rows) != 5 {
		t.Fatalf("NewImage = %+v", img)
	}
	if err := img.Validate(); err != nil {
		t.Errorf("fresh image invalid: %v", err)
	}
	if img.Area() != 0 || img.Density() != 0 {
		t.Error("fresh image should be empty")
	}
}

func TestNewImagePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative dimensions")
		}
	}()
	NewImage(-1, 5)
}

func TestImageValidate(t *testing.T) {
	img := NewImage(8, 2)
	img.Rows[1] = Row{{6, 5}} // exceeds width
	if err := img.Validate(); err == nil {
		t.Error("Validate accepted out-of-bounds row")
	}
	img.Rows[1] = nil
	img.Rows = img.Rows[:1]
	if err := img.Validate(); err == nil {
		t.Error("Validate accepted row/height mismatch")
	}
}

func TestImageRowAccess(t *testing.T) {
	img := NewImage(16, 3)
	img.SetRow(1, Row{{2, 3}})
	if !img.Get(2, 1) || !img.Get(4, 1) || img.Get(5, 1) {
		t.Error("Get disagrees with SetRow")
	}
	if img.Row(-1) != nil || img.Row(3) != nil {
		t.Error("out-of-range Row should be nil")
	}
	if img.Get(2, -5) || img.Get(2, 99) {
		t.Error("out-of-range Get should be background")
	}
}

func TestSetRowPanicsOutOfRange(t *testing.T) {
	img := NewImage(4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("SetRow out of range did not panic")
		}
	}()
	img.SetRow(2, nil)
}

func TestImageAggregates(t *testing.T) {
	img := NewImage(32, 2)
	img.SetRow(0, fig1Img1()) // area 10, 4 runs
	img.SetRow(1, fig1Img2()) // area 20, 5 runs
	if got := img.Area(); got != 30 {
		t.Errorf("Area = %d, want 30", got)
	}
	if got := img.RunCount(); got != 9 {
		t.Errorf("RunCount = %d, want 9", got)
	}
	if got, want := img.Density(), 30.0/64.0; got != want {
		t.Errorf("Density = %v, want %v", got, want)
	}
}

func TestImageCloneAndEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	img := randomImage(rng, 64, 16)
	cp := img.Clone()
	if !img.Equal(cp) {
		t.Fatal("clone not equal")
	}
	if len(cp.Rows[0]) > 0 {
		cp.Rows[0][0].Start++
		if img.Equal(cp) {
			t.Fatal("mutation of clone affected equality — aliasing?")
		}
		if img.Rows[0][0] == cp.Rows[0][0] {
			t.Fatal("clone aliases original rows")
		}
	}
	other := NewImage(64, 15)
	if img.Equal(other) {
		t.Error("images of different heights reported equal")
	}
}

func TestImageEqualIsCanonical(t *testing.T) {
	a := NewImage(16, 1)
	b := NewImage(16, 1)
	a.SetRow(0, Row{{0, 3}, {3, 3}})
	b.SetRow(0, Row{{0, 6}})
	if !a.Equal(b) {
		t.Error("Equal should compare canonically")
	}
}

func TestImageCanonicalize(t *testing.T) {
	img := NewImage(16, 1)
	img.SetRow(0, Row{{0, 3}, {3, 3}})
	img.Canonicalize()
	if !img.Rows[0].Equal(Row{{0, 6}}) {
		t.Errorf("Canonicalize left %v", img.Rows[0])
	}
}

func TestXORImage(t *testing.T) {
	a := NewImage(32, 2)
	b := NewImage(32, 2)
	a.SetRow(0, fig1Img1())
	b.SetRow(0, fig1Img2())
	a.SetRow(1, Row{{0, 4}})
	b.SetRow(1, Row{{0, 4}})
	diff, err := XORImage(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Rows[0].Equal(Row{{3, 4}, {8, 2}, {15, 1}, {18, 2}, {30, 1}}) {
		t.Errorf("row 0 diff = %v", diff.Rows[0])
	}
	if len(diff.Rows[1]) != 0 {
		t.Errorf("row 1 diff = %v, want empty", diff.Rows[1])
	}
}

func TestXORImageSizeMismatch(t *testing.T) {
	if _, err := XORImage(NewImage(4, 4), NewImage(4, 5)); err == nil {
		t.Error("size mismatch not reported")
	}
}
