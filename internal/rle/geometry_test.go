package rle

import (
	"math/rand"
	"testing"
)

// refPixels collects a pixel matrix from an image for brute-force
// comparison.
func refPixels(img *Image) [][]bool {
	px := make([][]bool, img.Height)
	for y := range px {
		px[y] = img.Row(y).Bits(img.Width)
	}
	return px
}

func imagesPixelEqual(t *testing.T, got, want *Image, what string) {
	t.Helper()
	if got.Width != want.Width || got.Height != want.Height {
		t.Fatalf("%s: dims %dx%d, want %dx%d", what, got.Width, got.Height, want.Width, want.Height)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("%s: invalid output: %v", what, err)
	}
	for y := 0; y < want.Height; y++ {
		if !got.Rows[y].EqualBits(want.Rows[y]) {
			t.Fatalf("%s: row %d = %v, want %v", what, y, got.Rows[y], want.Rows[y])
		}
	}
}

func TestTranslateAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	for trial := 0; trial < 60; trial++ {
		img := randomImage(rng, 1+rng.Intn(50), 1+rng.Intn(20))
		dx, dy := rng.Intn(21)-10, rng.Intn(11)-5
		got := Translate(img, dx, dy)
		want := NewImage(img.Width, img.Height)
		px := refPixels(img)
		for y := 0; y < img.Height; y++ {
			bits := make([]bool, img.Width)
			for x := 0; x < img.Width; x++ {
				sx, sy := x-dx, y-dy
				if sx >= 0 && sy >= 0 && sx < img.Width && sy < img.Height {
					bits[x] = px[sy][sx]
				}
			}
			want.Rows[y] = FromBits(bits)
		}
		imagesPixelEqual(t, got, want, "Translate")
	}
}

func TestCrop(t *testing.T) {
	img := NewImage(10, 4)
	img.Rows[1] = Row{{Start: 2, Length: 6}}
	img.Rows[2] = Row{{Start: 0, Length: 10}}
	got, err := Crop(img, 3, 1, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Rows[0].Equal(Row{{Start: 0, Length: 4}}) { // from (2,6): columns 3..6 all set
		t.Errorf("crop row 0 = %v", got.Rows[0])
	}
	if !got.Rows[1].Equal(Row{{Start: 0, Length: 4}}) {
		t.Errorf("crop row 1 = %v", got.Rows[1])
	}
	// Out-of-range crop reads background.
	got, err = Crop(img, -2, -1, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Area() != 0 && got.Rows[2] == nil {
		t.Errorf("offset crop wrong: %v", got.Rows)
	}
	if _, err := Crop(img, 0, 0, -1, 2); err == nil {
		t.Error("negative crop accepted")
	}
}

func TestCropPasteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(607))
	for trial := 0; trial < 40; trial++ {
		img := randomImage(rng, 30+rng.Intn(30), 10+rng.Intn(10))
		x0, y0 := rng.Intn(10), rng.Intn(5)
		w, h := 5+rng.Intn(10), 3+rng.Intn(5)
		sub, err := Crop(img, x0, y0, w, h)
		if err != nil {
			t.Fatal(err)
		}
		back := img.Clone()
		Paste(back, sub, x0, y0) // paste the cropped region back
		if !back.Equal(img) {
			t.Fatalf("crop+paste not identity at (%d,%d) %dx%d", x0, y0, w, h)
		}
	}
}

func TestPasteOverwritesRegion(t *testing.T) {
	dst := NewImage(10, 3)
	for y := range dst.Rows {
		dst.Rows[y] = Row{{Start: 0, Length: 10}} // all foreground
	}
	src := NewImage(4, 2) // all background
	Paste(dst, src, 3, 1) // covers rows 1-2, columns 3-6
	if !dst.Rows[0].Equal(Row{{Start: 0, Length: 10}}) {
		t.Error("row above paste disturbed")
	}
	want := Row{{Start: 0, Length: 3}, {Start: 7, Length: 3}}
	for _, y := range []int{1, 2} {
		if !dst.Rows[y].EqualBits(want) {
			t.Errorf("pasted row %d = %v, want %v", y, dst.Rows[y], want)
		}
	}
	// Clipped paste does not panic and only affects the overlap
	// (row 2, columns 8-9; row 3 of the source falls off the image).
	Paste(dst, src, 8, 2)
	if !dst.Rows[2].EqualBits(Row{{Start: 0, Length: 3}, {Start: 7, Length: 1}}) {
		t.Errorf("clipped paste row = %v", dst.Rows[2])
	}
}

func TestFlipsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(611))
	for trial := 0; trial < 40; trial++ {
		img := randomImage(rng, 1+rng.Intn(40), 1+rng.Intn(15))
		px := refPixels(img)

		wantH := NewImage(img.Width, img.Height)
		wantV := NewImage(img.Width, img.Height)
		for y := 0; y < img.Height; y++ {
			bh := make([]bool, img.Width)
			for x := 0; x < img.Width; x++ {
				bh[x] = px[y][img.Width-1-x]
			}
			wantH.Rows[y] = FromBits(bh)
			wantV.Rows[img.Height-1-y] = FromBits(px[y])
		}
		imagesPixelEqual(t, FlipH(img), wantH, "FlipH")
		imagesPixelEqual(t, FlipV(img), wantV, "FlipV")
		// Involutions.
		imagesPixelEqual(t, FlipH(FlipH(img)), img, "FlipH²")
		imagesPixelEqual(t, FlipV(FlipV(img)), img, "FlipV²")
		imagesPixelEqual(t, Rotate180(Rotate180(img)), img, "Rotate180²")
	}
}

func TestTransposeAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(613))
	for trial := 0; trial < 40; trial++ {
		img := randomImage(rng, 1+rng.Intn(40), 1+rng.Intn(25))
		got := Transpose(img)
		px := refPixels(img)
		want := NewImage(img.Height, img.Width)
		for x := 0; x < img.Width; x++ {
			bits := make([]bool, img.Height)
			for y := 0; y < img.Height; y++ {
				bits[y] = px[y][x]
			}
			want.Rows[x] = FromBits(bits)
		}
		imagesPixelEqual(t, got, want, "Transpose")
		imagesPixelEqual(t, Transpose(got), img, "Transpose²")
	}
}

func TestRotate90AgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(617))
	for trial := 0; trial < 30; trial++ {
		img := randomImage(rng, 1+rng.Intn(30), 1+rng.Intn(20))
		got := Rotate90(img)
		// Clockwise: output(x, y) = input(y, H-1-x) with output dims
		// H×W.
		px := refPixels(img)
		want := NewImage(img.Height, img.Width)
		for y := 0; y < want.Height; y++ {
			bits := make([]bool, want.Width)
			for x := 0; x < want.Width; x++ {
				bits[x] = px[img.Height-1-x][y]
			}
			want.Rows[y] = FromBits(bits)
		}
		imagesPixelEqual(t, got, want, "Rotate90")
		// Four quarter-turns are the identity.
		imagesPixelEqual(t, Rotate90(Rotate90(Rotate90(Rotate90(img)))), img, "Rotate90⁴")
		// 90+270 = identity.
		imagesPixelEqual(t, Rotate270(Rotate90(img)), img, "Rotate270∘Rotate90")
		// 90∘90 = 180.
		imagesPixelEqual(t, Rotate90(Rotate90(img)), Rotate180(img), "90² vs 180")
	}
}

func TestGeometryPreservesArea(t *testing.T) {
	rng := rand.New(rand.NewSource(619))
	img := randomImage(rng, 37, 13)
	area := img.Area()
	for name, got := range map[string]*Image{
		"FlipH":     FlipH(img),
		"FlipV":     FlipV(img),
		"Transpose": Transpose(img),
		"Rotate90":  Rotate90(img),
		"Rotate180": Rotate180(img),
		"Rotate270": Rotate270(img),
	} {
		if got.Area() != area {
			t.Errorf("%s changed area: %d → %d", name, area, got.Area())
		}
	}
}

func TestDownsampleAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(621))
	for trial := 0; trial < 50; trial++ {
		img := randomImage(rng, 1+rng.Intn(60), 1+rng.Intn(30))
		f := 1 + rng.Intn(4)
		got, err := Downsample(img, f)
		if err != nil {
			t.Fatal(err)
		}
		outW := (img.Width + f - 1) / f
		outH := (img.Height + f - 1) / f
		if got.Width != outW || got.Height != outH {
			t.Fatalf("dims %dx%d, want %dx%d", got.Width, got.Height, outW, outH)
		}
		px := refPixels(img)
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				want := false
				for dy := 0; dy < f && !want; dy++ {
					for dx := 0; dx < f && !want; dx++ {
						y, x := oy*f+dy, ox*f+dx
						if y < img.Height && x < img.Width && px[y][x] {
							want = true
						}
					}
				}
				if got.Get(ox, oy) != want {
					t.Fatalf("f=%d pixel (%d,%d) = %v, want %v", f, ox, oy, got.Get(ox, oy), want)
				}
			}
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("downsampled image invalid: %v", err)
		}
	}
}

func TestDownsampleErrors(t *testing.T) {
	if _, err := Downsample(NewImage(4, 4), 0); err == nil {
		t.Error("factor 0 accepted")
	}
	one, err := Downsample(NewImage(4, 4), 1)
	if err != nil || one.Width != 4 {
		t.Error("factor 1 should clone")
	}
}
