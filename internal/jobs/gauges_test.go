package jobs

// Regression tests pinning the lifecycle gauges to the job table:
// delete/cancel in any order — including double deletes — must bring
// sysrle_jobs_active back to zero, never below.

import (
	"testing"
	"time"

	"sysrle/internal/telemetry"
)

func gaugeSettles(t *testing.T, g *telemetry.Gauge, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if g.Value() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("gauge = %d, want %d", g.Value(), want)
}

func TestActiveGaugeNoDriftOnDoubleDelete(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := New(Config{Workers: 2, Retention: -1, Registry: reg})
	defer m.Close()
	active := reg.Gauge("sysrle_jobs_active")

	id, err := m.Submit(inspectSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, id)
	gaugeSettles(t, active, 0)

	if err := m.Delete(id); err != nil {
		t.Fatalf("first delete: %v", err)
	}
	if err := m.Delete(id); err != ErrNotFound {
		t.Fatalf("second delete: %v, want ErrNotFound", err)
	}
	if v := active.Value(); v != 0 {
		t.Fatalf("active gauge after double delete = %d", v)
	}
}

func TestActiveGaugeSettlesOnMidFlightDelete(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := New(Config{Workers: 1, Retention: -1, Registry: reg})
	defer m.Close()
	active := reg.Gauge("sysrle_jobs_active")

	// A burst of jobs, deleted while some scans are still queued: the
	// drain path must settle the gauge at zero, not leak increments.
	var ids []string
	for i := 0; i < 4; i++ {
		id, err := m.Submit(inspectSpec(3))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if err := m.Delete(id); err != nil {
			t.Fatalf("delete %s: %v", id, err)
		}
	}
	gaugeSettles(t, active, 0)
	if v := active.Value(); v < 0 {
		t.Fatalf("active gauge went negative: %d", v)
	}
}
