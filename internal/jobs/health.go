package jobs

import (
	"sync"
	"time"
)

// DefaultStuckAfter is how long a worker may sit on one scan before
// the heartbeat registry reports it stuck, when Config leaves
// StuckAfter zero.
const DefaultStuckAfter = 2 * time.Minute

// WorkerInfo is the heartbeat snapshot of one worker.
type WorkerInfo struct {
	// Worker is the worker's index in the pool.
	Worker int `json:"worker"`
	// Busy reports whether the worker is inside a scan right now.
	Busy bool `json:"busy"`
	// BusyFor is how long the current scan has been running.
	BusyFor time.Duration `json:"busy_for,omitempty"`
	// Stuck reports Busy for longer than the stuck threshold.
	Stuck bool `json:"stuck"`
	// Tasks is how many tasks the worker has started.
	Tasks int64 `json:"tasks"`
}

// PoolHealth aggregates the worker heartbeats and queue state — the
// input to the service's /readyz worker and queue probes.
type PoolHealth struct {
	// Workers is the configured pool size. Workers never die (every
	// scan runs under recover), so this equals the live goroutine
	// count; the chaos suite asserts it.
	Workers int `json:"workers"`
	// Busy and Stuck count workers currently in a scan / stuck in one.
	Busy  int `json:"busy"`
	Stuck int `json:"stuck"`
	// QueueDepth and QueueCap describe the shared task queue.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// Detail is the per-worker breakdown.
	Detail []WorkerInfo `json:"detail,omitempty"`
}

// poolHealth is the heartbeat registry: one beat record per worker,
// updated at task start and end.
type poolHealth struct {
	stuckAfter time.Duration
	now        func() time.Time
	workers    []*workerBeat
}

type workerBeat struct {
	mu        sync.Mutex
	lastBeat  time.Time
	busySince time.Time // zero while idle
	tasks     int64
}

func newPoolHealth(workers int, stuckAfter time.Duration, now func() time.Time) *poolHealth {
	h := &poolHealth{stuckAfter: stuckAfter, now: now, workers: make([]*workerBeat, workers)}
	for i := range h.workers {
		h.workers[i] = &workerBeat{}
	}
	return h
}

func (w *workerBeat) begin(t time.Time) {
	w.mu.Lock()
	w.lastBeat = t
	w.busySince = t
	w.tasks++
	w.mu.Unlock()
}

func (w *workerBeat) end(t time.Time) {
	w.mu.Lock()
	w.lastBeat = t
	w.busySince = time.Time{}
	w.mu.Unlock()
}

// Health returns the heartbeat and queue snapshot. A worker is stuck
// when one scan has held it longer than Config.StuckAfter — under
// per-scan deadlines that indicates a hung engine or a lost worker,
// and flips the service's readiness probe.
func (m *Manager) Health() PoolHealth {
	now := m.cfg.now()
	h := PoolHealth{
		Workers:    len(m.health.workers),
		QueueDepth: len(m.tasks),
		QueueCap:   cap(m.tasks),
		Detail:     make([]WorkerInfo, len(m.health.workers)),
	}
	for i, w := range m.health.workers {
		w.mu.Lock()
		info := WorkerInfo{Worker: i, Tasks: w.tasks}
		if !w.busySince.IsZero() {
			info.Busy = true
			info.BusyFor = now.Sub(w.busySince)
			info.Stuck = info.BusyFor > m.health.stuckAfter
		}
		w.mu.Unlock()
		if info.Busy {
			h.Busy++
		}
		if info.Stuck {
			h.Stuck++
		}
		h.Detail[i] = info
	}
	if m.workersStuckG != nil {
		m.workersStuckG.Set(int64(h.Stuck))
	}
	return h
}
