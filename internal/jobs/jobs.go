// Package jobs is the async batch-inspection subsystem: the paper's
// §1 workload — one golden reference diffed against a stream of
// scans — submitted as a single job that returns immediately with an
// id, executed by a fixed worker pool, and polled to completion.
//
// A job is N scans against one reference (either a refstore id, so
// the decoded reference is fetched once through the registry's cache
// and shared by every scan, or an inline image). Each worker owns a
// buffer-reusing core.NewStream() engine, the lowest-allocation way
// to push many rows through one simulated array; scans are the unit
// of parallelism, so a job's scans spread across the whole pool. The
// task queue is bounded: a Submit that doesn't fit fails with
// ErrQueueFull and the HTTP layer turns that into 429 backpressure.
//
// Lifecycle: queued → running → done | failed | canceled. Progress
// is per scan; Cancel stops unstarted scans (in-flight scans finish).
// Finished jobs are garbage-collected a retention window after they
// finish, by a janitor goroutine; Close stops the pool.
//
// # Fault tolerance
//
// Every scan runs under recover, so a panicking engine fails the scan
// — never the worker; the pool size is an invariant (Health reports
// it). Each scan attempt is bounded by Config.ScanTimeout, retried up
// to Config.ScanRetries times with capped exponential backoff and
// deterministic jitter, and quarantined (marked in the ScanResult,
// counted in telemetry) when every attempt fails. A heartbeat
// registry (Health) tracks per-worker liveness and flags workers
// stuck on one scan longer than Config.StuckAfter. Retries in
// progress are abandoned during Close and recorded as failures.
//
// Telemetry (when a registry is configured):
//
//	sysrle_jobs_submitted_total / completed_total{state=...}
//	sysrle_jobs_scans_total             scans processed
//	sysrle_jobs_scan_panics_total       scan attempts that panicked
//	sysrle_jobs_scan_retries_total      retry attempts started
//	sysrle_jobs_scans_quarantined_total scans that exhausted retries
//	sysrle_jobs_queue_depth             tasks waiting (gauge)
//	sysrle_jobs_active                  jobs not yet terminal (gauge)
//	sysrle_jobs_workers                 configured pool size (gauge)
//	sysrle_jobs_workers_busy            workers inside a scan (gauge)
//	sysrle_jobs_workers_stuck           stuck workers, set by Health (gauge)
package jobs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"sysrle"
	"sysrle/internal/auditlog"
	"sysrle/internal/clock"
	"sysrle/internal/core"
	"sysrle/internal/docclean"
	"sysrle/internal/inspect"
	"sysrle/internal/refstore"
	"sysrle/internal/rle"
	"sysrle/internal/store"
	"sysrle/internal/telemetry"
	"sysrle/internal/wal"
)

// Errors returned by Submit and the accessors.
var (
	ErrQueueFull = errors.New("jobs: queue full")
	ErrNotFound  = errors.New("jobs: job not found")
	ErrNoScans   = errors.New("jobs: no scans submitted")
	ErrClosed    = errors.New("jobs: manager closed")
)

// Defaults for Config zero values.
const (
	DefaultWorkers      = 4
	DefaultQueueDepth   = 256
	DefaultRetention    = 15 * time.Minute
	DefaultRetryBackoff = 50 * time.Millisecond
)

// State is a job lifecycle state.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Config tunes a Manager; the zero value gets production defaults.
type Config struct {
	// Workers is the pool size. 0 means DefaultWorkers.
	Workers int
	// QueueDepth bounds queued scan tasks across all jobs; a Submit
	// that doesn't fit fails with ErrQueueFull. 0 means
	// DefaultQueueDepth.
	QueueDepth int
	// Retention keeps finished jobs pollable for this long before
	// the janitor collects them. 0 means DefaultRetention; negative
	// retains forever (tests).
	Retention time.Duration
	// Store resolves Spec.RefID references; nil restricts jobs to
	// inline references.
	Store *refstore.Store
	// Registry receives telemetry; nil records nothing.
	Registry *telemetry.Registry

	// ScanTimeout bounds one scan attempt end to end; the deadline is
	// observed between rows (a row already inside the engine
	// finishes). 0 disables the deadline.
	ScanTimeout time.Duration
	// ScanRetries is how many extra attempts a failed scan gets before
	// being quarantined. 0 disables retries (a failure is final).
	ScanRetries int
	// RetryBackoff is the delay before the first retry; it doubles per
	// attempt (capped at 32×) with up to 50% seeded jitter. 0 means
	// DefaultRetryBackoff.
	RetryBackoff time.Duration
	// StuckAfter is how long one scan may hold a worker before Health
	// reports the worker stuck. 0 means DefaultStuckAfter.
	StuckAfter time.Duration
	// WrapEngine, when non-nil, wraps every engine a worker constructs
	// — the hook fault injection (chaos mode) and verification use.
	// Applied per worker, so stateful engines stay single-threaded.
	// Returning nil keeps the unwrapped engine.
	WrapEngine func(core.Engine) core.Engine

	// Clock drives job timestamps, retention GC and retry bookkeeping;
	// nil means clock.System().
	Clock clock.Clock
	// Journal, when non-nil, write-ahead-journals the job lifecycle:
	// admissions, scan outcomes, completions, cancellations and
	// deletions are appended (and synced per the journal's policy)
	// before the caller sees success, and Open replays them after a
	// crash — incomplete scans re-queue, finished jobs come back as
	// pollable records and never re-run.
	Journal *wal.WAL
	// Blobs, when non-nil alongside Journal, archives scan and inline
	// reference images as content-addressed blobs at admission so
	// recovery can re-run incomplete scans. Without it, recovered
	// pending scans are failed with an explanatory error instead of
	// re-run.
	Blobs *store.Store
	// Audit, when non-nil, records every successful inspect verdict in
	// the Merkle audit log; the assigned id lands in
	// ScanResult.AuditID.
	Audit *auditlog.Log

	// now is the resolved clock function (from Clock).
	now func() time.Time
}

// Job types. The zero value means inspect — the original
// reference-vs-scan defect workload.
const (
	TypeInspect  = "inspect"
	TypeDocClean = "docclean"
)

// Spec describes one batch job: N scans against one reference
// (inspect), or N pages through the document-cleanup pipeline
// (docclean).
type Spec struct {
	// Type selects the workload: "" or "inspect" diffs scans against
	// a reference; "docclean" runs each scan through the
	// despeckle/line-extraction/segmentation pipeline (no reference,
	// no engine).
	Type string
	// RefID names a registered reference; Ref supplies one inline.
	// Exactly one must be set for inspect jobs; neither for docclean.
	RefID string
	Ref   *rle.Image
	// Scans are compared against the reference in index order of
	// submission (completion order is unspecified).
	Scans []*rle.Image
	// Engine selects the row-difference engine by registry name
	// (sysrle.EngineNames); "" means "stream", the per-worker
	// buffer-reusing lockstep stream. Inspect jobs only.
	Engine string
	// MinDefectArea and MaxAlignShift forward to inspect.Inspector.
	MinDefectArea int
	MaxAlignShift int
	// Doc tunes the docclean pipeline; zero fields get page-derived
	// defaults. Docclean jobs only.
	Doc docclean.Config
}

// ScanResult is the outcome of one scan.
type ScanResult struct {
	Index      int    `json:"index"`
	Clean      bool   `json:"clean"`
	Defects    int    `json:"defects"`
	DiffPixels int    `json:"diff_pixels"`
	DiffRuns   int    `json:"diff_runs"`
	Iterations int    `json:"iterations"`
	Error      string `json:"error,omitempty"`
	// Attempts is how many times the scan ran (1 = no retry needed).
	Attempts int `json:"attempts,omitempty"`
	// Quarantined marks a poison scan: every configured attempt
	// failed, so it was given up on rather than retried forever.
	Quarantined bool `json:"quarantined,omitempty"`
	// AuditID is the verdict's id in the Merkle audit log (inspect
	// scans under a manager configured with one); GET
	// /v1/audit/{id}/proof returns its inclusion proof.
	AuditID string `json:"audit_id,omitempty"`

	// Docclean fields (Type == TypeDocClean only).
	SpecklesRemoved int `json:"speckles_removed,omitempty"`
	LinesH          int `json:"lines_h,omitempty"`
	LinesV          int `json:"lines_v,omitempty"`
	Blocks          int `json:"blocks,omitempty"`
	OutputArea      int `json:"output_area,omitempty"`
}

// Status is a point-in-time snapshot of a job.
type Status struct {
	ID         string       `json:"id"`
	State      State        `json:"state"`
	Type       string       `json:"type"`
	RefID      string       `json:"ref_id,omitempty"`
	Engine     string       `json:"engine,omitempty"`
	ScansTotal int          `json:"scans_total"`
	ScansDone  int          `json:"scans_done"`
	Created    time.Time    `json:"created"`
	Started    *time.Time   `json:"started,omitempty"`
	Finished   *time.Time   `json:"finished,omitempty"`
	Error      string       `json:"error,omitempty"`
	Results    []ScanResult `json:"results,omitempty"`
}

// job is the internal mutable record.
type job struct {
	mu       sync.Mutex
	id       string
	spec     Spec
	ref      *rle.Image
	total    int // scans in the job; survives spec.Scans being absent after recovery
	persist  *persistedSpec
	state    State
	created  time.Time
	started  time.Time
	finished time.Time
	done     int
	failed   int
	results  []ScanResult
	canceled bool
}

// task is one unit of work: one scan of one job.
type task struct {
	job  *job
	scan int
}

// Manager owns the worker pool, the bounded queue and the job table.
type Manager struct {
	cfg Config

	mu     sync.Mutex // guards jobs map, closed, and queue admission
	jobs   map[string]*job
	seq    uint64
	closed bool

	tasks chan task
	wg    sync.WaitGroup
	stop  chan struct{}

	health *poolHealth

	rngMu sync.Mutex // guards rng (backoff jitter)
	rng   *rand.Rand

	submitted, scans    *telemetry.Counter
	panicsC, retriedC   *telemetry.Counter
	quarantinedC        *telemetry.Counter
	completedBy         func(State) *telemetry.Counter
	queueDepth, activeG *telemetry.Gauge
	workersBusyG        *telemetry.Gauge
	workersStuckG       *telemetry.Gauge
}

// New starts the worker pool and janitor. It panics on a journal
// infrastructure failure; persistent deployments should prefer Open,
// which returns it.
func New(cfg Config) *Manager {
	m, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Open starts the worker pool and janitor, first replaying the
// journal when one is configured: finished jobs are restored as
// pollable records (never re-run), incomplete scans re-queue ahead of
// new work, audit verdicts are re-appended (content ids make that
// idempotent), and the journal is checkpointed down to the recovered
// state. The only errors are infrastructure failures — corrupt or
// torn journal tails are recovery, handled by the durable-prefix
// replay, not errors.
func Open(cfg Config) (*Manager, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.Retention == 0 {
		cfg.Retention = DefaultRetention
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	if cfg.StuckAfter <= 0 {
		cfg.StuckAfter = DefaultStuckAfter
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System()
	}
	cfg.now = cfg.Clock.Now
	recovered, pending, maxSeq, err := recoverJournal(cfg)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:  cfg,
		jobs: make(map[string]*job),
		// Recovered backlog rides on top of the configured depth so a
		// full pre-crash queue re-admits without ErrQueueFull.
		tasks: make(chan task, cfg.QueueDepth+len(pending)),
		stop:  make(chan struct{}),
		rng:   rand.New(rand.NewSource(1)), // jitter only; determinism aids replay
	}
	m.seq = maxSeq
	for _, j := range recovered {
		m.jobs[j.id] = j
	}
	for _, t := range pending {
		m.tasks <- t
	}
	m.health = newPoolHealth(cfg.Workers, cfg.StuckAfter, cfg.now)
	if reg := cfg.Registry; reg != nil {
		reg.Help("sysrle_jobs_submitted_total", "Batch jobs accepted.")
		reg.Help("sysrle_jobs_queue_depth", "Scan tasks waiting in the job queue.")
		reg.Help("sysrle_jobs_scan_panics_total", "Scan attempts that panicked (recovered, worker kept).")
		reg.Help("sysrle_jobs_scans_quarantined_total", "Scans that failed every configured attempt.")
		m.submitted = reg.Counter("sysrle_jobs_submitted_total")
		m.scans = reg.Counter("sysrle_jobs_scans_total")
		m.panicsC = reg.Counter("sysrle_jobs_scan_panics_total")
		m.retriedC = reg.Counter("sysrle_jobs_scan_retries_total")
		m.quarantinedC = reg.Counter("sysrle_jobs_scans_quarantined_total")
		m.completedBy = func(s State) *telemetry.Counter {
			return reg.Counter("sysrle_jobs_completed_total", telemetry.L("state", string(s)))
		}
		m.queueDepth = reg.Gauge("sysrle_jobs_queue_depth")
		m.activeG = reg.Gauge("sysrle_jobs_active")
		m.workersBusyG = reg.Gauge("sysrle_jobs_workers_busy")
		m.workersStuckG = reg.Gauge("sysrle_jobs_workers_stuck")
		reg.Gauge("sysrle_jobs_workers").Set(int64(cfg.Workers))
	}
	if m.queueDepth != nil {
		m.queueDepth.Set(int64(len(m.tasks)))
	}
	if m.activeG != nil {
		for _, j := range recovered {
			if !j.state.Terminal() {
				m.activeG.Inc()
			}
		}
	}
	// Compact the journal down to exactly the recovered state before
	// any new appends, so the next boot replays the snapshot instead
	// of the full history.
	if cfg.Journal != nil {
		if err := cfg.Journal.Checkpoint(m.snapshotRecords()); err != nil {
			return nil, fmt.Errorf("jobs: checkpoint after recovery: %w", err)
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker(i)
	}
	m.wg.Add(1)
	go m.janitor()
	return m, nil
}

// Close stops the janitor, closes the queue and waits for the
// workers to drain it. Queued scans still run to completion; only
// new submissions are refused (ErrClosed).
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	close(m.tasks)
	m.mu.Unlock()
	close(m.stop)
	m.wg.Wait()
}

// engineFor builds the engine one worker uses for one job. Named
// engines resolve through the facade registry (the single source of
// engine names shared with the HTTP service and the CLI tools); the
// job default is the buffer-reusing stream engine, constructed fresh
// per worker because its state is per-call. Engines that export
// their own telemetry (the planner's per-decision route counters)
// get reg attached when it is non-nil.
func engineFor(name string, reg *telemetry.Registry) (core.Engine, error) {
	if name == "" {
		name = "stream"
	}
	eng, err := sysrle.NewEngineByName(name)
	if err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	if m, ok := eng.(interface{ AttachMetrics(*telemetry.Registry) }); ok && reg != nil {
		m.AttachMetrics(reg)
	}
	return eng, nil
}

// Submit validates the spec, resolves the reference, and enqueues one
// task per scan. It returns the job id immediately; admission is
// all-or-nothing — if the queue cannot take every scan the job is
// rejected with ErrQueueFull so callers get clean backpressure
// instead of a half-enqueued job.
func (m *Manager) Submit(spec Spec) (string, error) {
	if len(spec.Scans) == 0 {
		return "", ErrNoScans
	}
	switch spec.Type {
	case "", TypeInspect:
		if _, err := engineFor(spec.Engine, nil); err != nil {
			return "", err
		}
		if (spec.RefID == "") == (spec.Ref == nil) {
			return "", errors.New("jobs: exactly one of RefID and Ref must be set")
		}
	case TypeDocClean:
		if spec.RefID != "" || spec.Ref != nil {
			return "", errors.New("jobs: docclean jobs take no reference")
		}
		if spec.Engine != "" {
			return "", errors.New("jobs: docclean jobs take no engine")
		}
		if err := spec.Doc.Validate(); err != nil {
			return "", err
		}
	default:
		return "", fmt.Errorf("jobs: unknown job type %q", spec.Type)
	}
	ref := spec.Ref
	if spec.RefID != "" {
		if m.cfg.Store == nil {
			return "", errors.New("jobs: no reference store configured")
		}
		var err error
		// One decode (at most) for the whole batch: the store's LRU
		// means a hot reference costs a map lookup here.
		ref, err = m.cfg.Store.Get(spec.RefID)
		if err != nil {
			return "", err
		}
	}
	// Archive the work before admission: recovery needs the scan bytes
	// to re-run whatever the crash interrupted. Content addressing
	// dedupes resubmissions for free.
	persist, err := m.archiveSpec(spec)
	if err != nil {
		return "", err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return "", ErrClosed
	}
	if cap(m.tasks)-len(m.tasks) < len(spec.Scans) {
		return "", ErrQueueFull
	}
	m.seq++
	j := &job{
		id:      fmt.Sprintf("job-%06d", m.seq),
		spec:    spec,
		ref:     ref,
		total:   len(spec.Scans),
		persist: persist,
		state:   StateQueued,
		created: m.cfg.now(),
		results: make([]ScanResult, len(spec.Scans)),
	}
	for i := range j.results {
		j.results[i] = ScanResult{Index: i}
	}
	// The admission record must be durable before the id is handed
	// out: an acknowledged job survives kill -9.
	if err := m.journalAdmit(j); err != nil {
		m.seq--
		return "", err
	}
	m.jobs[j.id] = j
	// Only workers drain the channel, so under m.mu the capacity
	// check above guarantees every send below succeeds immediately.
	for i := range spec.Scans {
		m.tasks <- task{job: j, scan: i}
	}
	if m.submitted != nil {
		m.submitted.Inc()
		m.queueDepth.Set(int64(len(m.tasks)))
		m.activeG.Inc()
	}
	return j.id, nil
}

// Get returns a snapshot of a job.
func (m *Manager) Get(id string) (Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, ErrNotFound
	}
	return j.snapshot(), nil
}

// List returns a snapshot of every retained job, newest first.
func (m *Manager) List() []Status {
	m.mu.Lock()
	js := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		js = append(js, j)
	}
	m.mu.Unlock()
	out := make([]Status, len(js))
	for i, j := range js {
		out[i] = j.snapshot()
	}
	// IDs are zero-padded sequence numbers, so lexical order is
	// submission order.
	sort.Slice(out, func(i, k int) bool { return out[i].ID > out[k].ID })
	return out
}

// Cancel marks a job canceled. Queued scans are skipped; a scan
// already on a worker finishes and is recorded. Canceling a terminal
// job is a no-op; the final state is returned either way.
func (m *Manager) Cancel(id string) (Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, ErrNotFound
	}
	j.mu.Lock()
	marked := false
	if !j.state.Terminal() {
		j.canceled = true
		marked = true
		if j.done >= j.total {
			// Every scan already finished; canceling changes nothing.
			j.canceled = false
			marked = false
		}
	}
	j.mu.Unlock()
	if marked {
		m.journalAppend(walRecord{Op: opCancel, JobID: id})
	}
	return j.snapshot(), nil
}

// Delete cancels (if needed) and removes a job record. Queued scans
// of a deleted job are still drained by the workers (as fast skips —
// record keeps a pointer to the job, not the table entry), so the
// telemetry gauges stay consistent.
func (m *Manager) Delete(id string) error {
	if _, err := m.Cancel(id); err != nil {
		return err
	}
	m.mu.Lock()
	delete(m.jobs, id)
	m.mu.Unlock()
	m.journalAppend(walRecord{Op: opDelete, JobID: id})
	return nil
}

// worker drains the queue, beating the heartbeat registry around
// every task. Each worker constructs the job's engine itself, so
// stream engines (mutable buffers) are never shared.
func (m *Manager) worker(id int) {
	defer m.wg.Done()
	beat := m.health.workers[id]
	// Engines are cached per job spec name; the common "" case means
	// one stream reused across every task this worker ever runs.
	engines := map[string]core.Engine{}
	for t := range m.tasks {
		if m.queueDepth != nil {
			m.queueDepth.Set(int64(len(m.tasks)))
		}
		beat.begin(m.cfg.now())
		if m.workersBusyG != nil {
			m.workersBusyG.Inc()
		}
		m.runTask(t, engines)
		beat.end(m.cfg.now())
		if m.workersBusyG != nil {
			m.workersBusyG.Dec()
		}
	}
}

// runTask executes one scan task end to end: state transition,
// engine resolution, the retry loop, and recording. Nothing in here
// may kill the worker — scan attempts run under recover.
func (m *Manager) runTask(t task, engines map[string]core.Engine) {
	j := t.job
	j.mu.Lock()
	if j.state == StateQueued && !j.canceled {
		j.state = StateRunning
		j.started = m.cfg.now()
	}
	skip := j.canceled
	j.mu.Unlock()
	if skip {
		m.record(j, ScanResult{Index: t.scan, Error: "canceled"}, true)
		return
	}
	var eng core.Engine
	// Docclean scans run the morphology pipeline, not a row-difference
	// engine; everything else resolves (and caches) the job's engine.
	if j.spec.Type != TypeDocClean {
		var ok bool
		eng, ok = engines[j.spec.Engine]
		if !ok {
			var err error
			eng, err = engineFor(j.spec.Engine, m.cfg.Registry)
			// Submit validated the name, but never hand a nil engine to
			// the inspector: fail the scan, not the worker.
			if err == nil && eng == nil {
				err = fmt.Errorf("jobs: engine %q resolved to nil", j.spec.Engine)
			}
			if err != nil {
				m.record(j, ScanResult{Index: t.scan, Error: err.Error()}, false)
				return
			}
			if m.cfg.WrapEngine != nil {
				if wrapped := m.cfg.WrapEngine(eng); wrapped != nil {
					eng = wrapped
				}
			}
			engines[j.spec.Engine] = eng
		}
	}
	res := m.runScan(j, eng, t.scan)
	if m.scans != nil {
		m.scans.Inc()
	}
	m.record(j, res, false)
}

// runScan runs one scan with the retry policy: up to 1+ScanRetries
// attempts, capped exponential backoff with jitter between them, and
// quarantine when every attempt fails.
func (m *Manager) runScan(j *job, eng core.Engine, scan int) ScanResult {
	res := ScanResult{Index: scan}
	attempts := 1 + m.cfg.ScanRetries
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			if m.retriedC != nil {
				m.retriedC.Inc()
			}
			if !m.backoff(attempt-1) || m.jobCanceled(j) {
				// Shutdown or cancellation mid-retry: give up cleanly.
				res.Attempts = attempt - 1
				res.Error = lastErr.Error()
				return res
			}
		}
		out, err := m.attemptScan(j, eng, scan)
		if err == nil {
			res.Attempts = attempt
			switch {
			case out.report != nil:
				rep := out.report
				res.Clean = rep.Clean()
				res.Defects = len(rep.Defects)
				res.DiffPixels = rep.DiffArea
				res.DiffRuns = rep.DiffRuns
				res.Iterations = rep.TotalIterations
			case out.doc != nil:
				doc := out.doc
				res.Clean = doc.SpecklesRemoved == 0
				res.SpecklesRemoved = doc.SpecklesRemoved
				res.LinesH = doc.LinesH
				res.LinesV = doc.LinesV
				res.Blocks = len(doc.Blocks)
				res.OutputArea = doc.OutputArea
			}
			return res
		}
		lastErr = err
	}
	res.Attempts = attempts
	res.Error = lastErr.Error()
	if m.cfg.ScanRetries > 0 {
		// A poison scan: it failed every attempt it was entitled to.
		res.Quarantined = true
		if m.quarantinedC != nil {
			m.quarantinedC.Inc()
		}
	}
	return res
}

// scanOutcome is what one successful attempt produced: an inspection
// report or a docclean result, depending on the job type.
type scanOutcome struct {
	report *inspect.Report
	doc    *docclean.Result
}

// attemptScan runs a single attempt under recover and the per-scan
// deadline. A panic anywhere in the pipeline becomes an error; the
// worker goroutine is never lost.
func (m *Manager) attemptScan(j *job, eng core.Engine, scan int) (out scanOutcome, err error) {
	defer func() {
		if p := recover(); p != nil {
			if m.panicsC != nil {
				m.panicsC.Inc()
			}
			err = fmt.Errorf("scan panicked: %v", p)
		}
	}()
	ctx := context.Background()
	if m.cfg.ScanTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.cfg.ScanTimeout)
		defer cancel()
	}
	if j.spec.Type == TypeDocClean {
		out.doc, err = docclean.Clean(ctx, j.spec.Scans[scan], j.spec.Doc)
		return out, err
	}
	ins := &inspect.Inspector{
		Engine: eng,
		// Scans are the unit of parallelism; one row worker per
		// scan keeps the pool's CPU use at Workers and keeps the
		// per-worker stream engine single-threaded.
		Workers:       1,
		MinDefectArea: j.spec.MinDefectArea,
		MaxAlignShift: j.spec.MaxAlignShift,
	}
	out.report, err = ins.CompareContext(ctx, j.ref, j.spec.Scans[scan])
	return out, err
}

// backoff sleeps before retry n (1-based): RetryBackoff doubled per
// retry, capped at 32×, plus up to 50% jitter from the seeded rng.
// Returns false when the manager is shutting down.
func (m *Manager) backoff(n int) bool {
	shift := n - 1
	if shift > 5 {
		shift = 5
	}
	d := m.cfg.RetryBackoff << shift
	m.rngMu.Lock()
	d += time.Duration(m.rng.Int63n(int64(d)/2 + 1))
	m.rngMu.Unlock()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-m.stop:
		return false
	}
}

func (m *Manager) jobCanceled(j *job) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.canceled
}

// record stores one scan result and finalizes the job when it was the
// last. canceledScan marks results that were skipped, not failed.
// With an audit log configured, successful inspect verdicts are
// appended to it first so the assigned id travels with the result;
// with a journal, the outcome (and any completion) is appended after
// the in-memory update — a record lost to a crash in between just
// re-runs that scan on recovery.
func (m *Manager) record(j *job, res ScanResult, canceledScan bool) {
	var auditTime time.Time
	if m.cfg.Audit != nil && !canceledScan && res.Error == "" && typeName(j.spec.Type) == TypeInspect {
		auditTime = m.cfg.now()
		if id, err := m.cfg.Audit.Append(j.verdict(res, auditTime)); err == nil {
			res.AuditID = id
		}
	}
	j.mu.Lock()
	j.results[res.Index] = res
	j.done++
	if res.Error != "" && !canceledScan {
		j.failed++
	}
	finished := j.done >= j.total
	if finished && !j.state.Terminal() {
		j.finished = m.cfg.now()
		switch {
		case j.canceled:
			j.state = StateCanceled
		case j.failed > 0:
			j.state = StateFailed
		default:
			j.state = StateDone
		}
	}
	state := j.state
	finishedAt := j.finished
	j.mu.Unlock()
	m.journalAppend(walRecord{Op: opScan, JobID: j.id, Index: res.Index, Result: &res, AuditTime: auditTime})
	if finished {
		m.journalAppend(walRecord{Op: opDone, JobID: j.id, State: state, Finished: finishedAt})
		if m.completedBy != nil {
			m.completedBy(state).Inc()
			m.activeG.Dec()
		}
	}
}

// janitor collects finished jobs a retention window after they
// finish.
func (m *Manager) janitor() {
	defer m.wg.Done()
	if m.cfg.Retention < 0 {
		return
	}
	interval := m.cfg.Retention / 4
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
			m.collect()
		}
	}
}

// collect removes jobs whose retention has lapsed, tombstoning them
// in the journal so they stay gone across a restart.
func (m *Manager) collect() {
	deadline := m.cfg.now().Add(-m.cfg.Retention)
	var removed []string
	m.mu.Lock()
	for id, j := range m.jobs {
		j.mu.Lock()
		expired := j.state.Terminal() && !j.finished.IsZero() && j.finished.Before(deadline)
		j.mu.Unlock()
		if expired {
			delete(m.jobs, id)
			removed = append(removed, id)
		}
	}
	m.mu.Unlock()
	for _, id := range removed {
		m.journalAppend(walRecord{Op: opDelete, JobID: id})
	}
}

// snapshot copies the job under its lock.
func (j *job) snapshot() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:         j.id,
		State:      j.state,
		Type:       typeName(j.spec.Type),
		RefID:      j.spec.RefID,
		Engine:     engineName(j.spec.Type, j.spec.Engine),
		ScansTotal: j.total,
		ScansDone:  j.done,
		Created:    j.created,
	}
	if j.canceled && !j.state.Terminal() {
		st.State = StateCanceled
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.failed > 0 {
		st.Error = fmt.Sprintf("%d of %d scans failed", j.failed, j.total)
	}
	st.Results = append([]ScanResult(nil), j.results...)
	return st
}

func engineName(jobType, name string) string {
	if jobType == TypeDocClean {
		return "" // docclean has no row-difference engine
	}
	if name == "" {
		return "stream"
	}
	return name
}

func typeName(jobType string) string {
	if jobType == "" {
		return TypeInspect
	}
	return jobType
}
