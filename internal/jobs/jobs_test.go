package jobs

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"sysrle/internal/docclean"
	"sysrle/internal/inspect"
	"sysrle/internal/refstore"
	"sysrle/internal/rle"
	"sysrle/internal/telemetry"
	"sysrle/internal/workload"
)

// board returns a synthetic PCB reference and a defective scan.
func board(t *testing.T, seed int64, w, h, defects int) (*rle.Image, *rle.Image, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	layout, err := inspect.GenerateBoard(rng, inspect.DefaultBoard(w, h))
	if err != nil {
		t.Fatal(err)
	}
	scan, injected := inspect.InjectDefects(rng, layout, defects)
	return layout.Art.ToRLE(), scan.ToRLE(), len(injected)
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, m *Manager, id string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.Get(id)
		if err != nil {
			t.Fatalf("job %s vanished: %v", id, err)
		}
		if st.State.Terminal() && st.ScansDone == st.ScansTotal {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return Status{}
}

func TestJobRunsToDone(t *testing.T) {
	ref, scan, injected := board(t, 1, 200, 150, 4)
	m := New(Config{Workers: 2, Retention: -1})
	defer m.Close()
	id, err := m.Submit(Spec{Ref: ref, Scans: []*rle.Image{scan, ref.Clone(), scan.Clone()}})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, m, id)
	if st.State != StateDone {
		t.Fatalf("state %s, want done (error %q)", st.State, st.Error)
	}
	if st.ScansDone != 3 || len(st.Results) != 3 {
		t.Fatalf("progress %d/%d, %d results", st.ScansDone, st.ScansTotal, len(st.Results))
	}
	// Scan 1 is the reference itself: clean. Scans 0 and 2 carry the
	// injected defects and must agree with each other.
	if !st.Results[1].Clean || st.Results[1].DiffPixels != 0 {
		t.Errorf("identical scan reported dirty: %+v", st.Results[1])
	}
	if injected > 0 && st.Results[0].Clean {
		t.Errorf("defective scan reported clean: %+v", st.Results[0])
	}
	if st.Results[0].Defects != st.Results[2].Defects {
		t.Errorf("same scan twice, different defect counts: %d vs %d",
			st.Results[0].Defects, st.Results[2].Defects)
	}
	if st.Started == nil || st.Finished == nil {
		t.Error("timestamps missing on a finished job")
	}
}

func TestJobAgainstStoredReference(t *testing.T) {
	ref, scan, _ := board(t, 2, 200, 150, 3)
	reg := telemetry.NewRegistry()
	store := refstore.New(refstore.Config{Registry: reg})
	meta, err := store.Put(ref)
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Workers: 2, Store: store, Retention: -1, Registry: reg})
	defer m.Close()

	// Two jobs against the same stored reference: one decode total.
	scans := []*rle.Image{scan, scan.Clone()}
	for i := 0; i < 2; i++ {
		id, err := m.Submit(Spec{RefID: meta.ID, Scans: scans})
		if err != nil {
			t.Fatal(err)
		}
		if st := waitTerminal(t, m, id); st.State != StateDone {
			t.Fatalf("job %d state %s (%s)", i, st.State, st.Error)
		}
	}
	if v := reg.Counter("sysrle_refstore_decodes_total").Value(); v != 1 {
		t.Errorf("reference decoded %d times across 2 jobs, want 1", v)
	}
	if _, err := m.Submit(Spec{RefID: "unknown", Scans: scans}); !errors.Is(err, refstore.ErrNotFound) {
		t.Errorf("unknown ref: %v", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	m := New(Config{Workers: 1, Retention: -1})
	defer m.Close()
	img := rle.NewImage(8, 8)
	if _, err := m.Submit(Spec{Ref: img}); !errors.Is(err, ErrNoScans) {
		t.Errorf("no scans: %v", err)
	}
	if _, err := m.Submit(Spec{Scans: []*rle.Image{img}}); err == nil {
		t.Error("missing reference accepted")
	}
	if _, err := m.Submit(Spec{Ref: img, RefID: "x", Scans: []*rle.Image{img}}); err == nil {
		t.Error("both reference forms accepted")
	}
	if _, err := m.Submit(Spec{Ref: img, Scans: []*rle.Image{img}, Engine: "warp"}); err == nil {
		t.Error("unknown engine accepted")
	}
	if _, err := m.Submit(Spec{RefID: "abc", Scans: []*rle.Image{img}}); err == nil {
		t.Error("RefID without a store accepted")
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 4, Retention: -1})
	defer m.Close()
	img := rle.NewImage(16, 16)
	scans := make([]*rle.Image, 5)
	for i := range scans {
		scans[i] = img
	}
	// Five scans can never fit a depth-4 queue, whatever the workers
	// have drained: all-or-nothing admission rejects the job whole.
	if _, err := m.Submit(Spec{Ref: img, Scans: scans}); !errors.Is(err, ErrQueueFull) {
		t.Errorf("err = %v, want ErrQueueFull", err)
	}
	// A fitting job is accepted and runs.
	id, err := m.Submit(Spec{Ref: img, Scans: scans[:2]})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, m, id); st.State != StateDone {
		t.Errorf("state %s", st.State)
	}
}

func TestFailedScanFailsJob(t *testing.T) {
	ref := rle.NewImage(32, 32)
	good := rle.NewImage(32, 32)
	bad := rle.NewImage(16, 16) // size mismatch
	m := New(Config{Workers: 2, Retention: -1})
	defer m.Close()
	id, err := m.Submit(Spec{Ref: ref, Scans: []*rle.Image{good, bad, good}})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, m, id)
	if st.State != StateFailed {
		t.Fatalf("state %s, want failed", st.State)
	}
	if st.Results[1].Error == "" {
		t.Error("mismatched scan has no error")
	}
	// The healthy scans still ran.
	if st.Results[0].Error != "" || st.Results[2].Error != "" {
		t.Errorf("healthy scans failed: %+v", st.Results)
	}
}

func TestCancelSkipsQueuedScans(t *testing.T) {
	ref, scan, _ := board(t, 3, 400, 300, 2)
	m := New(Config{Workers: 1, QueueDepth: 64, Retention: -1})
	defer m.Close()
	scans := make([]*rle.Image, 40)
	for i := range scans {
		scans[i] = scan
	}
	id, err := m.Submit(Spec{Ref: ref, Scans: scans})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Cancel(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled && st.State != StateDone {
		t.Fatalf("post-cancel state %s", st.State)
	}
	final := waitTerminal(t, m, id)
	if final.State != StateCanceled {
		// All 40 boards finishing on one worker before Cancel landed
		// would be astonishing, but is not strictly impossible.
		t.Skipf("job outran cancellation: state %s", final.State)
	}
	skipped := 0
	for _, r := range final.Results {
		if r.Error == "canceled" {
			skipped++
		}
	}
	if skipped == 0 {
		t.Error("cancellation skipped no scans")
	}
	// Cancel on a terminal job is a stable no-op.
	again, err := m.Cancel(id)
	if err != nil || again.State != StateCanceled {
		t.Errorf("re-cancel: %v state %s", err, again.State)
	}
}

func TestDeleteRemovesJob(t *testing.T) {
	m := New(Config{Workers: 1, Retention: -1})
	defer m.Close()
	img := rle.NewImage(8, 8)
	id, err := m.Submit(Spec{Ref: img, Scans: []*rle.Image{img}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted job still pollable: %v", err)
	}
	if err := m.Delete(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
}

func TestRetentionCollectsFinishedJobs(t *testing.T) {
	m := New(Config{Workers: 1, Retention: 30 * time.Millisecond})
	defer m.Close()
	img := rle.NewImage(8, 8)
	id, err := m.Submit(Spec{Ref: img, Scans: []*rle.Image{img}})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, id)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := m.Get(id); errors.Is(err, ErrNotFound) {
			return // collected
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job never garbage-collected")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	m := New(Config{Workers: 1, Retention: -1})
	m.Close()
	img := rle.NewImage(8, 8)
	if _, err := m.Submit(Spec{Ref: img, Scans: []*rle.Image{img}}); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	m.Close() // idempotent
}

func TestEngineSelection(t *testing.T) {
	ref, scan, _ := board(t, 4, 120, 90, 2)
	m := New(Config{Workers: 2, Retention: -1})
	defer m.Close()
	var base Status
	for i, engine := range []string{"", "stream", "lockstep", "sequential", "sparse", "bus"} {
		id, err := m.Submit(Spec{Ref: ref, Scans: []*rle.Image{scan}, Engine: engine})
		if err != nil {
			t.Fatalf("%q: %v", engine, err)
		}
		st := waitTerminal(t, m, id)
		if st.State != StateDone {
			t.Fatalf("%q: state %s (%s)", engine, st.State, st.Error)
		}
		if i == 0 {
			base = st
			continue
		}
		if st.Results[0].Defects != base.Results[0].Defects ||
			st.Results[0].DiffPixels != base.Results[0].DiffPixels {
			t.Errorf("%q disagrees with stream: %+v vs %+v", engine, st.Results[0], base.Results[0])
		}
	}
}

// TestConcurrentSubmitCancelProgress hammers the manager under the
// race detector: parallel submitters, pollers and cancelers.
func TestConcurrentSubmitCancelProgress(t *testing.T) {
	ref, scan, _ := board(t, 5, 150, 100, 2)
	m := New(Config{Workers: 4, QueueDepth: 512, Retention: -1})
	defer m.Close()
	const submitters = 6
	var wg sync.WaitGroup
	ids := make(chan string, submitters*8)
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				id, err := m.Submit(Spec{Ref: ref, Scans: []*rle.Image{scan, scan}})
				if errors.Is(err, ErrQueueFull) {
					continue
				}
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				ids <- id
				if (i+w)%3 == 0 {
					if _, err := m.Cancel(id); err != nil {
						t.Errorf("cancel: %v", err)
						return
					}
				}
				m.List()
				if _, err := m.Get(id); err != nil {
					t.Errorf("get: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(ids)
	for id := range ids {
		st := waitTerminal(t, m, id)
		if !st.State.Terminal() {
			t.Errorf("job %s stuck in %s", id, st.State)
		}
	}
}

func TestDocCleanJobEndToEnd(t *testing.T) {
	// The acceptance path: a generated A4 page through the docclean
	// batch job type, plus a second tiny page to exercise fan-out.
	rng := rand.New(rand.NewSource(1999))
	page, err := workload.GenerateDocument(rng, workload.A4Doc())
	if err != nil {
		t.Fatal(err)
	}
	small := rle.NewImage(40, 20)
	small.Rows[3] = rle.Row{rle.Span(5, 34)}
	small.Rows[10] = rle.Row{rle.Span(8, 8)} // lone speck

	m := New(Config{Workers: 2, Retention: -1})
	defer m.Close()
	id, err := m.Submit(Spec{
		Type:  TypeDocClean,
		Scans: []*rle.Image{page, small},
		Doc:   docclean.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, m, id)
	if st.State != StateDone {
		t.Fatalf("state %s, want done (error %q)", st.State, st.Error)
	}
	if st.Type != TypeDocClean {
		t.Errorf("status type %q", st.Type)
	}
	if st.Engine != "" {
		t.Errorf("docclean job reports engine %q", st.Engine)
	}
	a4 := st.Results[0]
	if a4.SpecklesRemoved < 100 || a4.LinesH < 3 || a4.Blocks < 2 {
		t.Errorf("A4 result implausible: %+v", a4)
	}
	if a4.OutputArea <= 0 || a4.OutputArea >= page.Area() {
		t.Errorf("A4 output area %d vs input %d", a4.OutputArea, page.Area())
	}
	tiny := st.Results[1]
	if tiny.SpecklesRemoved != 1 {
		t.Errorf("tiny page removed %d specks, want the 1 planted", tiny.SpecklesRemoved)
	}
}

func TestDocCleanSubmitValidation(t *testing.T) {
	m := New(Config{Workers: 1, Retention: -1})
	defer m.Close()
	img := rle.NewImage(8, 8)
	cases := []Spec{
		{Type: TypeDocClean, Scans: []*rle.Image{img}, Ref: img},
		{Type: TypeDocClean, Scans: []*rle.Image{img}, RefID: "x"},
		{Type: TypeDocClean, Scans: []*rle.Image{img}, Engine: "stream"},
		{Type: TypeDocClean, Scans: []*rle.Image{img}, Doc: docclean.Config{MinLineLen: -1}},
		{Type: "transmogrify", Scans: []*rle.Image{img}},
	}
	for i, spec := range cases {
		if _, err := m.Submit(spec); err == nil {
			t.Errorf("case %d: invalid docclean spec accepted", i)
		}
	}
	// Inspect-flavoured statuses still report their type and engine.
	ref, scan, _ := board(t, 3, 80, 60, 1)
	id, err := m.Submit(Spec{Ref: ref, Scans: []*rle.Image{scan}})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, m, id); st.Type != TypeInspect || st.Engine != "stream" {
		t.Errorf("inspect job reported type %q engine %q", st.Type, st.Engine)
	}
}
