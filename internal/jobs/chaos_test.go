package jobs

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sysrle/internal/core"
	"sysrle/internal/fault"
	"sysrle/internal/inspect"
	"sysrle/internal/rle"
	"sysrle/internal/telemetry"
)

// flakyEngine misbehaves (panics or errors) for the first failFor
// XORRow calls across all users, then delegates to Sequential.
type flakyEngine struct {
	calls   *atomic.Int64
	failFor int64
	panics  bool
}

func (flakyEngine) Name() string { return "flaky" }

func (f flakyEngine) XORRow(a, b rle.Row) (core.Result, error) {
	if f.calls.Add(1) <= f.failFor {
		if f.panics {
			panic("flaky engine detonated")
		}
		return core.Result{}, fault.ErrInjected
	}
	return core.Sequential{}.XORRow(a, b)
}

// sleepEngine holds every row for a fixed delay.
type sleepEngine struct{ delay time.Duration }

func (sleepEngine) Name() string { return "sleepy" }

func (e sleepEngine) XORRow(a, b rle.Row) (core.Result, error) {
	time.Sleep(e.delay)
	return core.Sequential{}.XORRow(a, b)
}

// TestWorkerSurvivesPanickingEngine is the regression for the bug
// where a panicking engine inside Inspector.Compare killed a worker
// goroutine: panics must fail the scan, and the pool must keep its
// full size and stay able to run later jobs.
func TestWorkerSurvivesPanickingEngine(t *testing.T) {
	ref, scan, _ := board(t, 11, 96, 64, 2)
	var calls atomic.Int64
	m := New(Config{
		Workers:   2,
		Retention: -1,
		// Panic on every row of roughly the first scan; the image has
		// 64 rows so later scans run clean.
		WrapEngine: func(core.Engine) core.Engine {
			return flakyEngine{calls: &calls, failFor: 1, panics: true}
		},
	})
	defer m.Close()

	id, err := m.Submit(Spec{Ref: ref, Scans: []*rle.Image{scan, scan.Clone(), scan.Clone(), scan.Clone()}})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, m, id)
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed (one scan hit the panic)", st.State)
	}
	panicked := 0
	for _, r := range st.Results {
		if strings.Contains(r.Error, "panicked") {
			panicked++
		} else if r.Error != "" {
			t.Errorf("scan %d failed with %q, want panic error or success", r.Index, r.Error)
		}
	}
	if panicked == 0 {
		t.Fatal("no scan recorded the panic")
	}
	if panicked == len(st.Results) {
		t.Fatal("every scan panicked; pool never recovered")
	}

	// The pool must be intact and able to finish a fresh job.
	if h := m.Health(); h.Workers != 2 {
		t.Fatalf("pool size %d, want 2", h.Workers)
	}
	id2, err := m.Submit(Spec{Ref: ref, Scans: []*rle.Image{ref.Clone()}})
	if err != nil {
		t.Fatal(err)
	}
	if st2 := waitTerminal(t, m, id2); st2.State != StateDone {
		t.Fatalf("post-panic job state = %s (results %+v)", st2.State, st2.Results)
	}
}

// TestBadEngineFailsScanNotWorker covers the defensive path in
// runTask: an engine that cannot be resolved must fail the scan with
// a recorded error instead of handing the inspector a nil engine.
func TestBadEngineFailsScanNotWorker(t *testing.T) {
	ref, scan, _ := board(t, 12, 96, 64, 1)
	m := New(Config{Workers: 1, Retention: -1})
	defer m.Close()

	// Submit validates names, so build the poisoned job by hand and
	// push it through runTask the way a worker would.
	j := &job{
		id:      "job-bogus",
		spec:    Spec{Engine: "warp-core", Scans: []*rle.Image{scan}},
		ref:     ref,
		state:   StateQueued,
		results: []ScanResult{{Index: 0}},
	}
	m.runTask(task{job: j, scan: 0}, map[string]core.Engine{})

	st := j.snapshot()
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Results[0].Error, "unknown engine") {
		t.Errorf("scan error = %q, want unknown engine", st.Results[0].Error)
	}
	// And a WrapEngine returning nil must keep the real engine rather
	// than poisoning the worker's cache.
	m2 := New(Config{
		Workers:    1,
		Retention:  -1,
		WrapEngine: func(core.Engine) core.Engine { return nil },
	})
	defer m2.Close()
	id, err := m2.Submit(Spec{Ref: ref, Scans: []*rle.Image{scan}})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, m2, id); st.State != StateDone {
		t.Fatalf("nil-wrap job state = %s", st.State)
	}
}

// TestRetryRecoversTransientFailure: a scan that fails a few times
// and then succeeds should be retried to success, with the attempt
// count recorded and retries visible in telemetry.
func TestRetryRecoversTransientFailure(t *testing.T) {
	ref, scan, _ := board(t, 13, 96, 64, 1)
	reg := telemetry.NewRegistry()
	var calls atomic.Int64
	m := New(Config{
		Workers:      1,
		Retention:    -1,
		Registry:     reg,
		ScanRetries:  4,
		RetryBackoff: time.Millisecond,
		WrapEngine: func(core.Engine) core.Engine {
			// Fail the first two attempts' opening row, then behave.
			return flakyEngine{calls: &calls, failFor: 2}
		},
	})
	defer m.Close()

	id, err := m.Submit(Spec{Ref: ref, Scans: []*rle.Image{scan}})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, m, id)
	if st.State != StateDone {
		t.Fatalf("state = %s (results %+v), want done", st.State, st.Results)
	}
	r := st.Results[0]
	if r.Attempts < 2 {
		t.Errorf("attempts = %d, want >= 2", r.Attempts)
	}
	if r.Quarantined {
		t.Error("successful scan marked quarantined")
	}
	if n := reg.Counter("sysrle_jobs_scan_retries_total").Value(); n < 1 {
		t.Errorf("retry counter = %d, want >= 1", n)
	}
}

// TestQuarantineAfterExhaustedRetries: a poison scan that fails every
// attempt is quarantined, not retried forever.
func TestQuarantineAfterExhaustedRetries(t *testing.T) {
	ref, scan, _ := board(t, 14, 96, 64, 1)
	reg := telemetry.NewRegistry()
	var calls atomic.Int64
	m := New(Config{
		Workers:      1,
		Retention:    -1,
		Registry:     reg,
		ScanRetries:  2,
		RetryBackoff: time.Millisecond,
		WrapEngine: func(core.Engine) core.Engine {
			return flakyEngine{calls: &calls, failFor: 1 << 40, panics: true}
		},
	})
	defer m.Close()

	id, err := m.Submit(Spec{Ref: ref, Scans: []*rle.Image{scan}})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, m, id)
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	r := st.Results[0]
	if !r.Quarantined || r.Attempts != 3 {
		t.Errorf("result %+v, want quarantined after 3 attempts", r)
	}
	if n := reg.Counter("sysrle_jobs_scans_quarantined_total").Value(); n != 1 {
		t.Errorf("quarantine counter = %d, want 1", n)
	}
	// Engine panics are already converted to errors inside the
	// inspector's row workers, so every attempt failed with a panic
	// message rather than tripping the jobs-level recover.
	if !strings.Contains(r.Error, "panicked") {
		t.Errorf("scan error = %q, want the recovered panic", r.Error)
	}
}

// TestAttemptScanRecoversPipelinePanic exercises the jobs-level
// safety net directly: a panic outside the inspector's row workers
// (here, a nil scan image) must become a scan error and increment the
// panic counter — never unwind the worker goroutine.
func TestAttemptScanRecoversPipelinePanic(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := New(Config{Workers: 1, Retention: -1, Registry: reg})
	defer m.Close()

	j := &job{
		id:      "job-nilscan",
		spec:    Spec{Scans: []*rle.Image{nil}},
		ref:     rle.NewImage(8, 1),
		state:   StateQueued,
		results: []ScanResult{{Index: 0}},
	}
	_, err := m.attemptScan(j, core.Sequential{}, 0)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want recovered panic", err)
	}
	if n := reg.Counter("sysrle_jobs_scan_panics_total").Value(); n != 1 {
		t.Errorf("panic counter = %d, want 1", n)
	}
}

// TestScanTimeoutFailsSlowScan: the per-scan deadline must cut off a
// hung engine instead of occupying the worker forever.
func TestScanTimeoutFailsSlowScan(t *testing.T) {
	ref := rle.NewImage(32, 40)
	scan := rle.NewImage(32, 40)
	for y := 0; y < 40; y++ {
		ref.Rows[y] = rle.Row{rle.Span(0, 5)}
		scan.Rows[y] = rle.Row{rle.Span(2, 7)}
	}
	m := New(Config{
		Workers:     1,
		Retention:   -1,
		ScanTimeout: 10 * time.Millisecond,
		WrapEngine:  func(core.Engine) core.Engine { return sleepEngine{delay: 2 * time.Millisecond} },
	})
	defer m.Close()

	id, err := m.Submit(Spec{Ref: ref, Scans: []*rle.Image{scan}})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, m, id)
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed on deadline", st.State)
	}
	if !strings.Contains(st.Results[0].Error, "deadline") {
		t.Errorf("scan error = %q, want deadline exceeded", st.Results[0].Error)
	}
}

// TestHealthReportsStuckWorker: a worker holding one scan past
// StuckAfter shows up in the heartbeat snapshot, and clears once the
// scan finishes.
func TestHealthReportsStuckWorker(t *testing.T) {
	ref := rle.NewImage(16, 1)
	scan := rle.NewImage(16, 1)
	ref.Rows[0] = rle.Row{rle.Span(0, 3)}
	scan.Rows[0] = rle.Row{rle.Span(1, 4)}
	m := New(Config{
		Workers:    1,
		Retention:  -1,
		StuckAfter: time.Millisecond,
		WrapEngine: func(core.Engine) core.Engine { return sleepEngine{delay: 300 * time.Millisecond} },
	})
	defer m.Close()

	id, err := m.Submit(Spec{Ref: ref, Scans: []*rle.Image{scan}})
	if err != nil {
		t.Fatal(err)
	}
	sawStuck := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		h := m.Health()
		if h.Stuck > 0 {
			sawStuck = true
			if !h.Detail[0].Stuck || h.Detail[0].BusyFor <= 0 {
				t.Errorf("stuck detail not populated: %+v", h.Detail[0])
			}
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !sawStuck {
		t.Fatal("stuck worker never reported")
	}
	waitTerminal(t, m, id)
	if h := m.Health(); h.Stuck != 0 || h.Busy != 0 {
		t.Errorf("health after completion %+v, want idle", h)
	}
}

// TestChaosConvergence is the acceptance gate: with every fault kind
// injected (panics, corrupt cells, dropped shifts, stuck cells, slow
// and transient errors) under the verified engine, every job reaches
// a terminal state, every scan result equals the fault-free baseline,
// and no workers are lost.
func TestChaosConvergence(t *testing.T) {
	const jobsN, scansN = 4, 6
	ref, scan, _ := board(t, 15, 128, 96, 3)
	scans := make([]*rle.Image, scansN)
	for i := range scans {
		if i%2 == 0 {
			scans[i] = scan.Clone()
		} else {
			scans[i] = ref.Clone()
		}
	}

	// Fault-free baseline, computed directly.
	baseline := make([]*inspect.Report, scansN)
	for i, s := range scans {
		rep, err := (&inspect.Inspector{}).Compare(ref, s)
		if err != nil {
			t.Fatal(err)
		}
		baseline[i] = rep
	}

	reg := telemetry.NewRegistry()
	inj := fault.NewInjector(fault.Plan{
		Seed:    42,
		Rate:    0.2,
		SlowFor: 50 * time.Microsecond, // all kinds, fast slow faults
	}, reg)
	m := New(Config{
		Workers:      3,
		Retention:    -1,
		Registry:     reg,
		ScanRetries:  2,
		RetryBackoff: time.Millisecond,
		WrapEngine: func(eng core.Engine) core.Engine {
			return core.NewVerified(fault.Wrap(eng, inj))
		},
	})
	defer m.Close()

	ids := make([]string, jobsN)
	for i := range ids {
		id, err := m.Submit(Spec{Ref: ref, Scans: scans})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for _, id := range ids {
		st := waitTerminal(t, m, id)
		if st.State != StateDone {
			t.Fatalf("job %s state = %s (results %+v)", id, st.State, st.Results)
		}
		for _, r := range st.Results {
			want := baseline[r.Index]
			if r.Error != "" {
				t.Fatalf("job %s scan %d failed under chaos: %s", id, r.Index, r.Error)
			}
			if r.Clean != want.Clean() || r.Defects != len(want.Defects) ||
				r.DiffPixels != want.DiffArea || r.DiffRuns != want.DiffRuns {
				t.Errorf("job %s scan %d diverged: got {clean:%v defects:%d px:%d runs:%d} want {clean:%v defects:%d px:%d runs:%d}",
					id, r.Index, r.Clean, r.Defects, r.DiffPixels, r.DiffRuns,
					want.Clean(), len(want.Defects), want.DiffArea, want.DiffRuns)
			}
		}
	}
	if inj.Total() == 0 {
		t.Fatal("chaos run injected zero faults; test proves nothing")
	}
	t.Logf("faults injected: %s", inj.InjectedString())
	if h := m.Health(); h.Workers != 3 || h.Stuck != 0 {
		t.Errorf("pool degraded after chaos: %+v", h)
	}
}

// TestSubmitCancelDeleteHammer races the public API from many
// goroutines while the pool runs: every surviving job must reach a
// terminal state and the manager must shut down without leaking
// goroutines.
func TestSubmitCancelDeleteHammer(t *testing.T) {
	before := runtime.NumGoroutine()
	ref, scan, _ := board(t, 16, 96, 64, 2)

	m := New(Config{Workers: 4, QueueDepth: 512, Retention: -1})
	var (
		mu  sync.Mutex
		ids []string
	)
	const hammers = 8
	var wg sync.WaitGroup
	for g := 0; g < hammers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				switch (g + i) % 4 {
				case 0, 1:
					id, err := m.Submit(Spec{Ref: ref, Scans: []*rle.Image{scan, ref.Clone()}})
					if err == nil {
						mu.Lock()
						ids = append(ids, id)
						mu.Unlock()
					} else if err != ErrQueueFull {
						t.Errorf("submit: %v", err)
					}
				case 2:
					mu.Lock()
					var id string
					if len(ids) > 0 {
						id = ids[(g*7+i)%len(ids)]
					}
					mu.Unlock()
					if id != "" {
						if _, err := m.Cancel(id); err != nil && err != ErrNotFound {
							t.Errorf("cancel: %v", err)
						}
					}
				case 3:
					mu.Lock()
					var id string
					if len(ids) > 0 && i%5 == 0 {
						id = ids[(g*3+i)%len(ids)]
					}
					mu.Unlock()
					if id != "" {
						if err := m.Delete(id); err != nil && err != ErrNotFound {
							t.Errorf("delete: %v", err)
						}
					}
					m.List()
					m.Health()
				}
			}
		}(g)
	}
	wg.Wait()

	// Every job still in the table must reach a terminal state.
	deadline := time.Now().Add(30 * time.Second)
	for {
		pending := 0
		for _, st := range m.List() {
			if !st.State.Terminal() || st.ScansDone < st.ScansTotal {
				pending++
			}
		}
		if pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d jobs never reached a terminal state", pending)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if h := m.Health(); h.Workers != 4 {
		t.Errorf("pool size %d after hammer, want 4", h.Workers)
	}
	m.Close()

	// The pool, janitor and any helper goroutines must be gone.
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after close", before, runtime.NumGoroutine())
}
