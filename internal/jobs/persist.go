package jobs

// Journal persistence for the jobs subsystem. The contract, enforced
// by the chaos suite in crash_test.go:
//
//   - An acknowledged submission survives kill -9: the admit record
//     (spec + content addresses of the archived scan/reference blobs)
//     is journaled before Submit returns the id.
//   - A finished job never re-runs: its done record restores it as a
//     terminal, pollable snapshot.
//   - An interrupted job re-queues exactly its incomplete scans, once,
//     ahead of new work.
//   - Audit verdicts are re-appended from scan records at recovery;
//     content-derived verdict ids make that idempotent, so a batch
//     lost from the audit log's pending buffer is re-derived rather
//     than lost.
//
// Records are JSON — the journal layer below provides framing,
// checksums and the durable-prefix replay; this file only decides
// what the records mean.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"sysrle/internal/auditlog"
	"sysrle/internal/docclean"
	"sysrle/internal/rle"
)

// Journal record ops.
const (
	opAdmit  = "admit"
	opScan   = "scan"
	opDone   = "done"
	opCancel = "cancel"
	opDelete = "delete"
)

// persistedSpec is the durable form of a Spec: images are replaced by
// the content addresses of their archived blobs.
type persistedSpec struct {
	Type          string          `json:"type,omitempty"`
	RefID         string          `json:"ref_id,omitempty"`
	RefBlob       string          `json:"ref_blob,omitempty"`
	ScanBlobs     []string        `json:"scan_blobs"`
	Engine        string          `json:"engine,omitempty"`
	MinDefectArea int             `json:"min_defect_area,omitempty"`
	MaxAlignShift int             `json:"max_align_shift,omitempty"`
	Doc           docclean.Config `json:"doc,omitempty"`
	Total         int             `json:"total"`
}

// walRecord is one journal entry.
type walRecord struct {
	Op        string         `json:"op"`
	JobID     string         `json:"job_id"`
	Created   time.Time      `json:"created,omitempty"`    // admit
	Spec      *persistedSpec `json:"spec,omitempty"`       // admit
	Index     int            `json:"index,omitempty"`      // scan
	Result    *ScanResult    `json:"result,omitempty"`     // scan
	AuditTime time.Time      `json:"audit_time,omitempty"` // scan: verdict timestamp, for idempotent re-append
	State     State          `json:"state,omitempty"`      // done
	Finished  time.Time      `json:"finished,omitempty"`   // done
}

// encodeImage returns the canonical RLEB bytes of an image — the same
// bytes (and therefore the same content address) the refstore would
// assign it.
func encodeImage(img *rle.Image) ([]byte, error) {
	var buf bytes.Buffer
	if err := rle.WriteBinary(&buf, img.Canonicalize()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// archiveSpec stores a submission's images as content-addressed blobs
// and returns the durable spec. Without a journal it returns nil
// (nothing to persist); without a blob store the spec is journaled
// with empty blob ids and recovery fails the pending scans instead of
// re-running them.
func (m *Manager) archiveSpec(spec Spec) (*persistedSpec, error) {
	if m.cfg.Journal == nil {
		return nil, nil
	}
	p := &persistedSpec{
		Type:          spec.Type,
		RefID:         spec.RefID,
		Engine:        spec.Engine,
		MinDefectArea: spec.MinDefectArea,
		MaxAlignShift: spec.MaxAlignShift,
		Doc:           spec.Doc,
		Total:         len(spec.Scans),
		ScanBlobs:     make([]string, len(spec.Scans)),
	}
	if m.cfg.Blobs == nil {
		return p, nil
	}
	if spec.Ref != nil {
		data, err := encodeImage(spec.Ref)
		if err != nil {
			return nil, fmt.Errorf("jobs: archive reference: %w", err)
		}
		if p.RefBlob, err = m.cfg.Blobs.Put(data); err != nil {
			return nil, fmt.Errorf("jobs: archive reference: %w", err)
		}
	}
	for i, scan := range spec.Scans {
		data, err := encodeImage(scan)
		if err != nil {
			return nil, fmt.Errorf("jobs: archive scan %d: %w", i, err)
		}
		if p.ScanBlobs[i], err = m.cfg.Blobs.Put(data); err != nil {
			return nil, fmt.Errorf("jobs: archive scan %d: %w", i, err)
		}
	}
	return p, nil
}

// journalAdmit appends (and, per policy, syncs) a job's admission.
// Called under m.mu, before the job becomes visible.
func (m *Manager) journalAdmit(j *job) error {
	if m.cfg.Journal == nil {
		return nil
	}
	rec := walRecord{Op: opAdmit, JobID: j.id, Created: j.created, Spec: j.persist}
	data, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("jobs: journal admit: %w", err)
	}
	if err := m.cfg.Journal.Append(data); err != nil {
		return fmt.Errorf("jobs: journal admit: %w", err)
	}
	return nil
}

// journalAppend appends a lifecycle record, best-effort: a failed
// append degrades durability (the journal's sticky Err flips the
// readiness probe) but never fails live work that already happened.
func (m *Manager) journalAppend(rec walRecord) {
	if m.cfg.Journal == nil {
		return
	}
	if data, err := json.Marshal(&rec); err == nil {
		_ = m.cfg.Journal.Append(data)
	}
}

// verdict builds the audit-log entry for one successful inspect scan.
// The reference is pinned by content: the refstore id, or the archived
// inline reference's blob id (the same hash by construction).
func (j *job) verdict(res ScanResult, at time.Time) auditlog.Verdict {
	refID := j.spec.RefID
	if refID == "" && j.persist != nil {
		refID = j.persist.RefBlob
	}
	return auditlog.Verdict{
		Time:       at,
		JobID:      j.id,
		ScanIndex:  res.Index,
		RefID:      refID,
		Engine:     engineName(j.spec.Type, j.spec.Engine),
		Clean:      res.Clean,
		Defects:    res.Defects,
		DiffPixels: res.DiffPixels,
	}
}

// recoveredJob accumulates one job's state during replay.
type recoveredJob struct {
	created    time.Time
	spec       *persistedSpec
	results    map[int]ScanResult
	auditTimes map[int]time.Time
	state      State
	finished   time.Time
	canceled   bool
	deleted    bool
	order      int
}

// recoverJournal replays the journal (when configured) into restored
// job records plus the tasks to re-queue. Replay is last-write-wins
// per (job, scan), which makes the post-checkpoint duplication window
// harmless.
func recoverJournal(cfg Config) (jobs []*job, pending []task, maxSeq uint64, err error) {
	if cfg.Journal == nil {
		return nil, nil, 0, nil
	}
	recovered := make(map[string]*recoveredJob)
	order := 0
	_, err = cfg.Journal.Replay(func(payload []byte) error {
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			// A record that framed and checksummed correctly but does
			// not parse is from a future or corrupt writer; skip it
			// rather than abort the whole recovery.
			return nil
		}
		r := recovered[rec.JobID]
		if r == nil {
			r = &recoveredJob{results: make(map[int]ScanResult), auditTimes: make(map[int]time.Time), order: order}
			order++
			recovered[rec.JobID] = r
		}
		switch rec.Op {
		case opAdmit:
			r.created, r.spec, r.deleted = rec.Created, rec.Spec, false
		case opScan:
			if rec.Result != nil {
				r.results[rec.Result.Index] = *rec.Result
				if !rec.AuditTime.IsZero() {
					r.auditTimes[rec.Result.Index] = rec.AuditTime
				}
			}
		case opDone:
			r.state, r.finished = rec.State, rec.Finished
		case opCancel:
			r.canceled = true
		case opDelete:
			r.deleted = true
		}
		return nil
	})
	if err != nil {
		return nil, nil, 0, fmt.Errorf("jobs: journal replay: %w", err)
	}

	ids := make([]string, 0, len(recovered))
	for id := range recovered {
		ids = append(ids, id)
	}
	// Restore in admission order so recovered backlog re-queues the
	// way it was submitted.
	sortByOrder(ids, recovered)
	for _, id := range ids {
		r := recovered[id]
		var n uint64
		if _, serr := fmt.Sscanf(id, "job-%06d", &n); serr == nil && n > maxSeq {
			maxSeq = n
		}
		if r.deleted || r.spec == nil {
			continue
		}
		j, tasks := rebuildJob(cfg, id, r)
		jobs = append(jobs, j)
		pending = append(pending, tasks...)
	}
	return jobs, pending, maxSeq, nil
}

func sortByOrder(ids []string, recovered map[string]*recoveredJob) {
	for i := 1; i < len(ids); i++ {
		for k := i; k > 0 && recovered[ids[k-1]].order > recovered[ids[k]].order; k-- {
			ids[k-1], ids[k] = ids[k], ids[k-1]
		}
	}
}

// rebuildJob turns one recovered record set into a live job plus the
// tasks that still need to run.
func rebuildJob(cfg Config, id string, r *recoveredJob) (*job, []task) {
	p := r.spec
	j := &job{
		id: id,
		spec: Spec{
			Type:          p.Type,
			RefID:         p.RefID,
			Engine:        p.Engine,
			MinDefectArea: p.MinDefectArea,
			MaxAlignShift: p.MaxAlignShift,
			Doc:           p.Doc,
		},
		total:    p.Total,
		persist:  p,
		created:  r.created,
		canceled: r.canceled,
		state:    StateQueued,
		results:  make([]ScanResult, p.Total),
	}
	for i := range j.results {
		j.results[i] = ScanResult{Index: i}
	}
	for i, res := range r.results {
		if i < 0 || i >= p.Total {
			continue
		}
		j.results[i] = res
		j.done++
		if res.Error != "" && res.Error != "canceled" {
			j.failed++
		}
		// Re-derive the audit entry: if its batch flushed before the
		// crash this is a content-addressed no-op, and if it was
		// pending it is restored.
		if cfg.Audit != nil && res.Error == "" && typeName(p.Type) == TypeInspect {
			if at, ok := r.auditTimes[i]; ok {
				if aid, err := cfg.Audit.Append(j.verdict(res, at)); err == nil {
					j.results[i].AuditID = aid
				}
			}
		}
	}

	var tasks []task
	if j.done < j.total && !r.canceled {
		// Decode what the pending scans need. A blob lost to rot fails
		// the scan — visibly, in its result — rather than the recovery.
		ref, refErr := loadImage(cfg, p.RefBlob, p.RefID)
		j.ref = ref
		for i := 0; i < j.total; i++ {
			if _, done := r.results[i]; done {
				continue
			}
			var scanErr error
			var scan *rle.Image
			if refErr != nil && typeName(p.Type) == TypeInspect {
				scanErr = fmt.Errorf("recovery: reference unavailable: %v", refErr)
			} else if i < len(p.ScanBlobs) {
				scan, scanErr = loadImage(cfg, p.ScanBlobs[i], "")
			} else {
				scanErr = fmt.Errorf("recovery: scan %d was not archived", i)
			}
			if scanErr != nil {
				j.results[i] = ScanResult{Index: i, Error: scanErr.Error()}
				j.done++
				j.failed++
				continue
			}
			// Grow spec.Scans sparsely to hold re-runnable images at
			// their original indices.
			for len(j.spec.Scans) <= i {
				j.spec.Scans = append(j.spec.Scans, nil)
			}
			j.spec.Scans[i] = scan
			tasks = append(tasks, task{job: j, scan: i})
		}
	}

	// Finalize: jobs with every scan accounted for (including those we
	// just failed above), canceled jobs with no queue presence, and
	// jobs whose done record survived.
	if j.done >= j.total || (r.canceled && len(tasks) == 0) {
		switch {
		case r.state.Terminal():
			j.state = r.state
		case j.canceled:
			j.state = StateCanceled
		case j.failed > 0:
			j.state = StateFailed
		default:
			j.state = StateDone
		}
		j.finished = r.finished
		if j.finished.IsZero() {
			j.finished = cfg.Clock.Now()
		}
	} else if r.canceled {
		j.state = StateCanceled
	}
	if j.done > 0 && !j.state.Terminal() {
		j.state = StateRunning
		j.started = r.created
	}
	return j, tasks
}

// loadImage fetches and decodes an archived image: from the blob
// store by content address, or from the refstore by reference id.
func loadImage(cfg Config, blobID, refID string) (*rle.Image, error) {
	if refID != "" {
		if cfg.Store == nil {
			return nil, fmt.Errorf("no reference store")
		}
		return cfg.Store.Get(refID)
	}
	if blobID == "" {
		return nil, nil // docclean pending scans carry no reference
	}
	if cfg.Blobs == nil {
		return nil, fmt.Errorf("no blob store")
	}
	data, err := cfg.Blobs.Get(blobID)
	if err != nil {
		return nil, err
	}
	return rle.ReadBinary(bytes.NewReader(data))
}

// snapshotRecords serializes the full retained state as journal
// records — the Checkpoint payload.
func (m *Manager) snapshotRecords() [][]byte {
	m.mu.Lock()
	js := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		js = append(js, j)
	}
	m.mu.Unlock()
	// Admission order, so a recovery of the snapshot preserves it.
	for i := 1; i < len(js); i++ {
		for k := i; k > 0 && js[k-1].id > js[k].id; k-- {
			js[k-1], js[k] = js[k], js[k-1]
		}
	}
	var out [][]byte
	add := func(rec walRecord) {
		if data, err := json.Marshal(&rec); err == nil {
			out = append(out, data)
		}
	}
	for _, j := range js {
		j.mu.Lock()
		if j.persist == nil {
			j.mu.Unlock()
			continue
		}
		add(walRecord{Op: opAdmit, JobID: j.id, Created: j.created, Spec: j.persist})
		if j.canceled {
			add(walRecord{Op: opCancel, JobID: j.id})
		}
		for i := range j.results {
			res := j.results[i]
			if res.Attempts > 0 || res.Error != "" {
				r := res
				add(walRecord{Op: opScan, JobID: j.id, Index: i, Result: &r})
			}
		}
		if j.state.Terminal() {
			add(walRecord{Op: opDone, JobID: j.id, State: j.state, Finished: j.finished})
		}
		j.mu.Unlock()
	}
	return out
}
