package jobs

import (
	"encoding/json"
	"testing"
	"time"

	"sysrle/internal/auditlog"
	"sysrle/internal/rle"
	"sysrle/internal/store"
	"sysrle/internal/telemetry"
	"sysrle/internal/wal"
)

// durableEnv is one simulated machine: a MemFS hosting the journal,
// the blob store and the audit log, rebuilt after every "crash".
type durableEnv struct {
	t     *testing.T
	fs    *store.MemFS
	wal   *wal.WAL
	blobs *store.Store
	audit *auditlog.Log
	reg   *telemetry.Registry
}

func newDurableEnv(t *testing.T) *durableEnv {
	e := &durableEnv{t: t, fs: store.NewMemFS()}
	e.boot()
	return e
}

// boot (re)opens every store on the current filesystem contents.
func (e *durableEnv) boot() {
	var err error
	e.reg = telemetry.NewRegistry()
	if e.wal, err = wal.Open(e.fs, "data/wal", wal.Options{Policy: wal.SyncAlways}); err != nil {
		e.t.Fatalf("wal.Open: %v", err)
	}
	if e.blobs, err = store.Open(e.fs, "data/blobs", nil); err != nil {
		e.t.Fatalf("store.Open: %v", err)
	}
	if e.audit, _, err = auditlog.Open(e.fs, "data/audit", auditlog.Config{FlushInterval: -1}); err != nil {
		e.t.Fatalf("auditlog.Open: %v", err)
	}
}

func (e *durableEnv) manager() *Manager {
	m, err := Open(Config{
		Workers:   2,
		Retention: -1,
		Registry:  e.reg,
		Journal:   e.wal,
		Blobs:     e.blobs,
		Audit:     e.audit,
	})
	if err != nil {
		e.t.Fatalf("jobs.Open: %v", err)
	}
	return m
}

// crash abandons the open handles (the process died) and drops every
// unsynced byte, then reboots the stores.
func (e *durableEnv) crash() {
	e.fs.Crash(store.CrashOpts{})
	e.boot()
}

func inspectSpec(nScans int) Spec {
	ref := testRefImage()
	spec := Spec{Ref: ref}
	for i := 0; i < nScans; i++ {
		scan := ref.Clone()
		// A deterministic, distinct defect per scan.
		scan.SetRow(2+i, rle.Row{{Start: 1, Length: 3 + i}})
		spec.Scans = append(spec.Scans, scan)
	}
	return spec
}

func testRefImage() *rle.Image {
	img := rle.NewImage(32, 16)
	for y := 0; y < 16; y++ {
		img.SetRow(y, rle.Row{{Start: 4, Length: 8}, {Start: 20, Length: 4}})
	}
	return img
}

// TestRecoveryFinishedJobNeverReruns kills the machine after a job
// completes and checks the reboot restores it as a terminal record
// without running a single scan.
func TestRecoveryFinishedJobNeverReruns(t *testing.T) {
	e := newDurableEnv(t)
	m := e.manager()
	id, err := m.Submit(inspectSpec(3))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	before := waitTerminal(t, m, id)
	if before.State != StateDone {
		t.Fatalf("pre-crash state = %s: %+v", before.State, before)
	}
	m.Close()

	e.crash()
	m2 := e.manager()
	defer m2.Close()
	after, err := m2.Get(id)
	if err != nil {
		t.Fatalf("recovered Get: %v", err)
	}
	if after.State != StateDone || after.ScansDone != 3 || after.ScansTotal != 3 {
		t.Fatalf("recovered status = %+v", after)
	}
	for i, res := range after.Results {
		if res.Clean || res.Defects == 0 {
			t.Errorf("scan %d lost its verdict: %+v", i, res)
		}
		if res.Defects != before.Results[i].Defects || res.DiffPixels != before.Results[i].DiffPixels {
			t.Errorf("scan %d verdict changed across recovery: %+v vs %+v", i, res, before.Results[i])
		}
		if res.AuditID == "" || res.AuditID != before.Results[i].AuditID {
			t.Errorf("scan %d audit id changed: %q vs %q", i, res.AuditID, before.Results[i].AuditID)
		}
	}
	if v := e.reg.Counter("sysrle_jobs_scans_total").Value(); v != 0 {
		t.Errorf("recovery re-ran %d scans of a finished job", v)
	}
}

// TestRecoveryRequeuesPendingScans hand-writes a journal in which one
// of two scans completed, then boots a manager and expects exactly the
// missing scan to run.
func TestRecoveryRequeuesPendingScans(t *testing.T) {
	e := newDurableEnv(t)
	spec := inspectSpec(2)

	refData, err := encodeImage(spec.Ref)
	if err != nil {
		t.Fatal(err)
	}
	refBlob, err := e.blobs.Put(refData)
	if err != nil {
		t.Fatal(err)
	}
	p := &persistedSpec{RefBlob: refBlob, Total: 2, ScanBlobs: make([]string, 2)}
	for i, scan := range spec.Scans {
		data, err := encodeImage(scan)
		if err != nil {
			t.Fatal(err)
		}
		if p.ScanBlobs[i], err = e.blobs.Put(data); err != nil {
			t.Fatal(err)
		}
	}
	appendRec := func(rec walRecord) {
		data, err := json.Marshal(&rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.wal.Append(data); err != nil {
			t.Fatal(err)
		}
	}
	appendRec(walRecord{Op: opAdmit, JobID: "job-000007", Created: time.Unix(500, 0), Spec: p})
	done := ScanResult{Index: 0, Defects: 9, DiffPixels: 41, Attempts: 3}
	appendRec(walRecord{Op: opScan, JobID: "job-000007", Index: 0, Result: &done})

	e.crash()
	m := e.manager()
	defer m.Close()

	st := waitTerminal(t, m, "job-000007")
	if st.State != StateDone {
		t.Fatalf("recovered job state = %s: %+v", st.State, st)
	}
	if got := st.Results[0]; got.Defects != 9 || got.DiffPixels != 41 || got.Attempts != 3 {
		t.Errorf("journaled scan 0 was not preserved verbatim: %+v", got)
	}
	if got := st.Results[1]; got.Error != "" || got.Defects == 0 {
		t.Errorf("pending scan 1 did not re-run: %+v", got)
	}
	if v := e.reg.Counter("sysrle_jobs_scans_total").Value(); v != 1 {
		t.Errorf("recovery ran %d scans, want exactly the 1 pending", v)
	}
	// The sequence counter moved past the recovered id.
	id2, err := m.Submit(inspectSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if id2 <= "job-000007" {
		t.Errorf("post-recovery id %s did not advance past recovered job", id2)
	}
}

// TestRecoveryDeleteAndCancelTombstones checks the two tombstone ops:
// a deleted job stays gone, a canceled one comes back canceled without
// running its remaining scans.
func TestRecoveryDeleteAndCancelTombstones(t *testing.T) {
	e := newDurableEnv(t)
	m := e.manager()
	delID, err := m.Submit(inspectSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, delID)
	if err := m.Delete(delID); err != nil {
		t.Fatal(err)
	}
	keepID, err := m.Submit(inspectSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, keepID)
	m.Close()

	e.crash()
	m2 := e.manager()
	defer m2.Close()
	if _, err := m2.Get(delID); err != ErrNotFound {
		t.Errorf("deleted job resurrected: err = %v", err)
	}
	if _, err := m2.Get(keepID); err != nil {
		t.Errorf("surviving job lost: %v", err)
	}

	// Hand-written canceled job with one scan outstanding.
	appendRec := func(rec walRecord) {
		data, _ := json.Marshal(&rec)
		if err := e.wal.Append(data); err != nil {
			t.Fatal(err)
		}
	}
	appendRec(walRecord{Op: opAdmit, JobID: "job-000090", Created: time.Unix(1, 0),
		Spec: &persistedSpec{Total: 1, ScanBlobs: []string{"ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"}}})
	appendRec(walRecord{Op: opCancel, JobID: "job-000090"})
	m2.Close()

	e.crash()
	m3 := e.manager()
	defer m3.Close()
	st, err := m3.Get("job-000090")
	if err != nil {
		t.Fatalf("canceled job not recovered: %v", err)
	}
	if st.State != StateCanceled {
		t.Errorf("recovered canceled job state = %s", st.State)
	}
	if v := e.reg.Counter("sysrle_jobs_scans_total").Value(); v != 0 {
		t.Errorf("canceled job ran %d scans after recovery", v)
	}
}

// TestRecoveryMissingBlobFailsScanVisibly: a pending scan whose
// archived image rotted away fails with an explanatory error — the
// job still terminates, recovery itself does not.
func TestRecoveryMissingBlobFailsScanVisibly(t *testing.T) {
	e := newDurableEnv(t)
	refData, _ := encodeImage(testRefImage())
	refBlob, err := e.blobs.Put(refData)
	if err != nil {
		t.Fatal(err)
	}
	rec := walRecord{Op: opAdmit, JobID: "job-000003", Created: time.Unix(1, 0), Spec: &persistedSpec{
		RefBlob:   refBlob,
		Total:     1,
		ScanBlobs: []string{"ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"},
	}}
	data, _ := json.Marshal(&rec)
	if err := e.wal.Append(data); err != nil {
		t.Fatal(err)
	}

	e.crash()
	m := e.manager()
	defer m.Close()
	st := waitTerminal(t, m, "job-000003")
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if st.Results[0].Error == "" {
		t.Error("lost-blob scan carries no error")
	}
}

// TestRecoveryAuditIdempotent crashes with flushed-and-pending audit
// verdicts; after reboot the re-appended verdicts must dedupe against
// the flushed batch and restore the pending ones — same content ids,
// no duplicates.
func TestRecoveryAuditIdempotent(t *testing.T) {
	e := newDurableEnv(t)
	m := e.manager()
	// Default audit batch is 64, so all verdicts stay pending and die
	// with the process unless jobs recovery re-derives them.
	var ids []string
	for i := 0; i < 3; i++ {
		id, err := m.Submit(inspectSpec(2))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	var auditIDs []string
	for _, id := range ids {
		st := waitTerminal(t, m, id)
		for _, res := range st.Results {
			auditIDs = append(auditIDs, res.AuditID)
		}
	}
	// Flush half the verdicts so recovery sees both regimes.
	if err := e.audit.Flush(); err != nil {
		t.Fatal(err)
	}
	m.Close()

	e.crash()
	m2 := e.manager()
	defer m2.Close()
	if err := e.audit.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := e.audit.VerifyAll()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("recovered audit log fails verification: %+v", rep)
	}
	if rep.Verdicts != len(auditIDs) {
		t.Fatalf("recovered audit log has %d verdicts, want %d (no dupes, no losses)", rep.Verdicts, len(auditIDs))
	}
	for _, aid := range auditIDs {
		p, err := e.audit.Proof(aid)
		if err != nil {
			t.Errorf("verdict %s lost across crash: %v", aid, err)
			continue
		}
		if err := auditlog.VerifyProof(p); err != nil {
			t.Errorf("proof for %s: %v", aid, err)
		}
	}
}

// TestCheckpointBoundsJournalGrowth: Open compacts replayed history
// into a snapshot, so journal size is a function of live state, not
// lifetime.
func TestCheckpointBoundsJournalGrowth(t *testing.T) {
	e := newDurableEnv(t)
	var lastID string
	for cycle := 0; cycle < 3; cycle++ {
		m := e.manager()
		id, err := m.Submit(inspectSpec(1))
		if err != nil {
			t.Fatal(err)
		}
		lastID = id
		waitTerminal(t, m, id)
		m.Close()
		e.crash()
	}
	// After the final boot's checkpoint the journal replays to the
	// same state from a bounded record count: 1 admit + 1 scan +
	// 1 done per retained job.
	m := e.manager()
	defer m.Close()
	if _, err := m.Get(lastID); err != nil {
		t.Fatalf("job lost after %d crash cycles: %v", 3, err)
	}
	stats, err := wal.Open(e.fs, "data/wal", wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if _, err := stats.Replay(func([]byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	_ = stats.Close()
	if want := 3 * 3; n > want {
		t.Errorf("journal holds %d records after compaction, want <= %d", n, want)
	}
}

// TestSubmitFailsClosedWhenJournalRejects: an admission the journal
// cannot make durable must not be acknowledged.
func TestSubmitFailsClosedWhenJournalRejects(t *testing.T) {
	e := newDurableEnv(t)
	m := e.manager()
	defer m.Close()
	if _, err := m.Submit(inspectSpec(1)); err != nil {
		t.Fatalf("healthy submit: %v", err)
	}
	// Kill the journal's backing store out from under it.
	if err := e.wal.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(inspectSpec(1)); err == nil {
		t.Fatal("Submit acked a job the journal could not record")
	}
	// The failed admission must not leak a visible job.
	for _, st := range m.List() {
		if st.State == StateQueued && st.ScansDone == 0 && st.Created.IsZero() {
			t.Errorf("ghost job leaked: %+v", st)
		}
	}
}
