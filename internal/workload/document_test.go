package workload

import (
	"math/rand"
	"testing"
)

func TestGenerateDocument(t *testing.T) {
	p := A4Doc()
	rng := rand.New(rand.NewSource(1999))
	img, err := GenerateDocument(rng, p)
	if err != nil {
		t.Fatal(err)
	}
	if img.Width != 2480 || img.Height != 3508 {
		t.Fatalf("page is %dx%d", img.Width, img.Height)
	}
	if err := img.Validate(); err != nil {
		t.Fatalf("invalid page: %v", err)
	}
	d := img.Density()
	if d < 0.01 || d > 0.25 {
		t.Errorf("page density %.3f outside the sparse text regime", d)
	}
	if img.RunCount() < 1000 {
		t.Errorf("only %d runs — not a text-like page", img.RunCount())
	}
	// Reproducible: same seed, same page.
	again, err := GenerateDocument(rand.New(rand.NewSource(1999)), p)
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(again) {
		t.Error("generation not deterministic")
	}
	// Different seed, different page.
	other, err := GenerateDocument(rand.New(rand.NewSource(7)), p)
	if err != nil {
		t.Fatal(err)
	}
	if img.Equal(other) {
		t.Error("independent seeds produced identical pages")
	}
}

func TestDocParamsValidate(t *testing.T) {
	bad := []func(*DocParams){
		func(p *DocParams) { p.Width = 0 },
		func(p *DocParams) { p.Margin = p.Width / 2 },
		func(p *DocParams) { p.FontHeight = 1 },
		func(p *DocParams) { p.LineSpacing = p.FontHeight - 1 },
		func(p *DocParams) { p.WordLenMin = 0 },
		func(p *DocParams) { p.WordLenMax = p.WordLenMin - 1 },
		func(p *DocParams) { p.Rules = -1 },
		func(p *DocParams) { p.RuleThickness = 0 },
		func(p *DocParams) { p.SpeckleMax = 0 },
	}
	for i, mutate := range bad {
		p := A4Doc()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: bad params accepted: %+v", i, p)
		}
	}
	if err := A4Doc().Validate(); err != nil {
		t.Errorf("A4Doc invalid: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := GenerateDocument(rng, DocParams{}); err == nil {
		t.Error("zero params accepted")
	}
}
