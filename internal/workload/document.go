package workload

import (
	"fmt"
	"math/rand"

	"sysrle/internal/rle"
)

// Scanned-document page generator: the page-scale workload far from
// the PCB regime. Pages are sparse and text-like — short glyph runs
// grouped into words, lines and paragraphs — optionally decorated with
// ruled lines, form-field boxes and salt noise, the structures the
// docclean pipeline despeckles, extracts and segments. All randomness
// comes from the caller's *rand.Rand so pages are reproducible.

// DocParams describes a synthetic scanned page.
type DocParams struct {
	Width, Height int // page size in pixels (A4 at 300 dpi: 2480×3508)
	Margin        int // blank border on all four sides

	FontHeight  int // glyph height in pixels
	LineSpacing int // vertical distance between successive text-line tops
	CharWidth   int // glyph cell width
	CharGap     int // gap between glyph cells
	WordLenMin  int // characters per word, inclusive bounds
	WordLenMax  int
	WordGap     int // gap between words
	ParaEvery   int // blank line after every n text lines (0 = never)

	Rules         int // full-width horizontal ruled lines
	Boxes         int // rectangular form-field outlines
	RuleThickness int // stroke thickness of rules and boxes

	SpeckleCount int // random noise specks
	SpeckleMax   int // maximum speck side length in pixels
}

// A4Doc returns the default page model: A4 at 300 dpi with ~10 pt
// type, a few rules and field boxes, and light salt noise.
func A4Doc() DocParams {
	return DocParams{
		Width: 2480, Height: 3508, Margin: 150,
		FontHeight: 30, LineSpacing: 50,
		CharWidth: 18, CharGap: 4,
		WordLenMin: 2, WordLenMax: 9, WordGap: 14,
		ParaEvery: 8,
		Rules:     3, Boxes: 2, RuleThickness: 4,
		SpeckleCount: 300, SpeckleMax: 2,
	}
}

// Validate reports parameter errors.
func (p DocParams) Validate() error {
	switch {
	case p.Width < 1 || p.Height < 1:
		return fmt.Errorf("workload: page %dx%d", p.Width, p.Height)
	case p.Margin < 0 || 2*p.Margin >= p.Width || 2*p.Margin >= p.Height:
		return fmt.Errorf("workload: margin %d does not fit %dx%d", p.Margin, p.Width, p.Height)
	case p.FontHeight < 3 || p.LineSpacing < p.FontHeight:
		return fmt.Errorf("workload: font height %d / line spacing %d", p.FontHeight, p.LineSpacing)
	case p.CharWidth < 2 || p.CharGap < 0:
		return fmt.Errorf("workload: char width %d gap %d", p.CharWidth, p.CharGap)
	case p.WordLenMin < 1 || p.WordLenMax < p.WordLenMin:
		return fmt.Errorf("workload: word length range [%d,%d]", p.WordLenMin, p.WordLenMax)
	case p.WordGap < 1:
		return fmt.Errorf("workload: word gap %d", p.WordGap)
	case p.Rules < 0 || p.Boxes < 0 || p.SpeckleCount < 0:
		return fmt.Errorf("workload: negative feature counts")
	case (p.Rules > 0 || p.Boxes > 0) && p.RuleThickness < 1:
		return fmt.Errorf("workload: rule thickness %d", p.RuleThickness)
	case p.SpeckleCount > 0 && p.SpeckleMax < 1:
		return fmt.Errorf("workload: speckle max %d", p.SpeckleMax)
	}
	return nil
}

// glyph is a tiny random stroke skeleton: vertical strokes spanning
// the glyph height plus horizontal bars at the top/middle/bottom —
// enough to reproduce text-like run statistics (2–4 short runs per
// scanline per glyph) without rendering a font.
type glyph struct {
	verticals []int // x offsets of 2px-wide full-height strokes
	bars      []int // y offsets (rows) of full-width bars, 2px tall
}

func randomGlyph(rng *rand.Rand, cw, fh int) glyph {
	g := glyph{}
	for _, x := range []int{0, cw - 2, cw / 2} {
		if rng.Intn(2) == 0 {
			g.verticals = append(g.verticals, x)
		}
	}
	for _, y := range []int{0, fh/2 - 1, fh - 2} {
		if rng.Intn(3) > 0 {
			g.bars = append(g.bars, y)
		}
	}
	if len(g.verticals) == 0 && len(g.bars) == 0 {
		g.verticals = append(g.verticals, 0)
	}
	return g
}

// GenerateDocument renders one page under the model into a canonical
// RLE image.
func GenerateDocument(rng *rand.Rand, p DocParams) (*rle.Image, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rows := make([][]rle.Run, p.Height)
	emit := func(x0, x1, y int) {
		if y < 0 || y >= p.Height || x1 < x0 {
			return
		}
		if x0 < 0 {
			x0 = 0
		}
		if x1 >= p.Width {
			x1 = p.Width - 1
		}
		if x0 <= x1 {
			rows[y] = append(rows[y], rle.Span(x0, x1))
		}
	}

	left, right := p.Margin, p.Width-1-p.Margin
	top, bottom := p.Margin, p.Height-1-p.Margin

	// Text lines.
	line := 0
	for ty := top; ty+p.FontHeight <= bottom; ty += p.LineSpacing {
		line++
		if p.ParaEvery > 0 && line%(p.ParaEvery+1) == 0 {
			continue // paragraph break
		}
		x := left
		// Ragged-right: stop a random way before the right margin.
		lineEnd := right - rng.Intn(p.Width/8+1)
		for x < lineEnd {
			wordLen := p.WordLenMin + rng.Intn(p.WordLenMax-p.WordLenMin+1)
			for c := 0; c < wordLen && x+p.CharWidth <= lineEnd; c++ {
				g := randomGlyph(rng, p.CharWidth, p.FontHeight)
				for _, vx := range g.verticals {
					for dy := 0; dy < p.FontHeight; dy++ {
						emit(x+vx, x+vx+1, ty+dy)
					}
				}
				for _, by := range g.bars {
					emit(x, x+p.CharWidth-1, ty+by)
					emit(x, x+p.CharWidth-1, ty+by+1)
				}
				x += p.CharWidth + p.CharGap
			}
			x += p.WordGap
		}
	}

	// Horizontal rules.
	for i := 0; i < p.Rules; i++ {
		ry := top + rng.Intn(bottom-top+1)
		for t := 0; t < p.RuleThickness; t++ {
			emit(left, right, ry+t)
		}
	}

	// Form-field boxes (rectangle outlines).
	for i := 0; i < p.Boxes; i++ {
		bw := p.Width/6 + rng.Intn(p.Width/4+1)
		bh := p.FontHeight*2 + rng.Intn(p.FontHeight*4+1)
		bx := left + rng.Intn(maxInt(1, right-left-bw))
		by := top + rng.Intn(maxInt(1, bottom-top-bh))
		for t := 0; t < p.RuleThickness; t++ {
			emit(bx, bx+bw-1, by+t)      // top edge
			emit(bx, bx+bw-1, by+bh-1-t) // bottom edge
			for y := by; y < by+bh; y++ {
				emit(bx+t, bx+t, y)           // left edge
				emit(bx+bw-1-t, bx+bw-1-t, y) // right edge
			}
		}
	}

	// Salt noise: tiny square specks anywhere on the page.
	for i := 0; i < p.SpeckleCount; i++ {
		side := 1 + rng.Intn(p.SpeckleMax)
		sx := rng.Intn(p.Width)
		sy := rng.Intn(p.Height)
		for dy := 0; dy < side; dy++ {
			emit(sx, sx+side-1, sy+dy)
		}
	}

	img := rle.NewImage(p.Width, p.Height)
	for y, rs := range rows {
		if len(rs) > 0 {
			img.Rows[y] = rle.Normalize(rs)
		}
	}
	return img, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
