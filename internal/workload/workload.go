// Package workload generates the paper's §5 evaluation inputs: rows
// whose foreground comes in runs of length 4–20 with density set by
// the average gap between runs, and second images derived by flipping
// "error" runs of length 2–6 in either direction. All generation is
// driven by a caller-supplied *rand.Rand so experiments are seeded
// and reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"sysrle/internal/rle"
)

// RowParams describes the base-image row model.
type RowParams struct {
	// Width is the row length in pixels (the paper sweeps 128–2048
	// for Table 1 and uses 10,000 for Figure 5).
	Width int
	// MinRunLen and MaxRunLen bound the foreground run lengths
	// (inclusive); the paper uses 4 and 20.
	MinRunLen int
	MaxRunLen int
	// Density is the target fraction of foreground pixels, achieved
	// by choosing the mean gap between runs; the paper's Figure 5
	// uses ≈0.30.
	Density float64
}

// PaperRow returns the paper's row model at the given width and
// density: run lengths 4–20.
func PaperRow(width int, density float64) RowParams {
	return RowParams{Width: width, MinRunLen: 4, MaxRunLen: 20, Density: density}
}

// Validate reports parameter errors.
func (p RowParams) Validate() error {
	switch {
	case p.Width < 0:
		return fmt.Errorf("workload: negative width %d", p.Width)
	case p.MinRunLen < 1 || p.MaxRunLen < p.MinRunLen:
		return fmt.Errorf("workload: bad run length range [%d,%d]", p.MinRunLen, p.MaxRunLen)
	case p.Density <= 0 || p.Density >= 1:
		return fmt.Errorf("workload: density %v outside (0,1)", p.Density)
	}
	return nil
}

// meanGap derives the mean background gap that realizes the target
// density given the mean run length.
func (p RowParams) meanGap() float64 {
	meanRun := float64(p.MinRunLen+p.MaxRunLen) / 2
	return meanRun * (1 - p.Density) / p.Density
}

// GenerateRow produces one canonical row under the model. Gaps are
// uniform on [1, 2·meanGap−1] (mean meanGap, minimum 1 so the row is
// maximally compressed, as the paper's Observation requires of its
// inputs).
func GenerateRow(rng *rand.Rand, p RowParams) (rle.Row, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	gapMax := int(2*p.meanGap()) - 1
	if gapMax < 1 {
		gapMax = 1
	}
	var row rle.Row
	pos := 1 + rng.Intn(gapMax)
	for {
		length := p.MinRunLen + rng.Intn(p.MaxRunLen-p.MinRunLen+1)
		if pos+length > p.Width {
			break
		}
		row = append(row, rle.Run{Start: pos, Length: length})
		pos += length + 1 + rng.Intn(gapMax)
	}
	return row, nil
}

// ErrorParams describes the §5 error model: flipped runs ("errors ...
// created in runs of length 2 to 6", flipping 1→0 and 0→1 alike).
type ErrorParams struct {
	// Count is the number of error runs to place.
	Count int
	// MinLen and MaxLen bound each error run's length (inclusive);
	// the paper uses 2 and 6 for Figure 5 and exactly 4 for Table
	// 1's fixed-error case.
	MinLen int
	MaxLen int
}

// PaperErrors returns the paper's error model: runs of length 2–6.
func PaperErrors(count int) ErrorParams {
	return ErrorParams{Count: count, MinLen: 2, MaxLen: 6}
}

// Validate reports parameter errors.
func (p ErrorParams) Validate() error {
	switch {
	case p.Count < 0:
		return fmt.Errorf("workload: negative error count %d", p.Count)
	case p.Count > 0 && (p.MinLen < 1 || p.MaxLen < p.MinLen):
		return fmt.Errorf("workload: bad error length range [%d,%d]", p.MinLen, p.MaxLen)
	}
	return nil
}

// MeanLen is the expected error-run length.
func (p ErrorParams) MeanLen() float64 {
	return float64(p.MinLen+p.MaxLen) / 2
}

// CountForPixelFraction sizes Count so that approximately frac·width
// pixels differ (before overlap between error runs).
func CountForPixelFraction(width int, frac float64, minLen, maxLen int) ErrorParams {
	mean := float64(minLen+maxLen) / 2
	count := int(frac*float64(width)/mean + 0.5)
	return ErrorParams{Count: count, MinLen: minLen, MaxLen: maxLen}
}

// ErrorMask generates the set of flipped pixels as a row: Count runs
// at uniform positions, merged where they collide.
func ErrorMask(rng *rand.Rand, width int, p ErrorParams) (rle.Row, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Count == 0 || width == 0 {
		return nil, nil
	}
	runs := make([]rle.Run, 0, p.Count)
	for i := 0; i < p.Count; i++ {
		length := p.MinLen + rng.Intn(p.MaxLen-p.MinLen+1)
		if length > width {
			length = width
		}
		start := rng.Intn(width - length + 1)
		runs = append(runs, rle.Run{Start: start, Length: length})
	}
	return rle.Normalize(runs), nil
}

// Pair is a generated experiment input: a base row, the row with
// errors applied, and the mask that was flipped.
type Pair struct {
	A    rle.Row
	B    rle.Row
	Mask rle.Row
}

// GeneratePair builds one §5 input pair: A from the row model, B =
// A ⊕ mask.
func GeneratePair(rng *rand.Rand, rp RowParams, ep ErrorParams) (Pair, error) {
	a, err := GenerateRow(rng, rp)
	if err != nil {
		return Pair{}, err
	}
	mask, err := ErrorMask(rng, rp.Width, ep)
	if err != nil {
		return Pair{}, err
	}
	return Pair{A: a, B: rle.XOR(a, mask), Mask: mask}, nil
}

// GenerateImage builds a multi-row image under the row model — used
// by examples and the motion-detection scenario.
func GenerateImage(rng *rand.Rand, p RowParams, height int) (*rle.Image, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if height < 0 {
		return nil, fmt.Errorf("workload: negative height %d", height)
	}
	img := rle.NewImage(p.Width, height)
	for y := 0; y < height; y++ {
		row, err := GenerateRow(rng, p)
		if err != nil {
			return nil, err
		}
		img.Rows[y] = row
	}
	return img, nil
}
