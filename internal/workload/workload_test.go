package workload

import (
	"math"
	"math/rand"
	"testing"

	"sysrle/internal/rle"
)

func TestGenerateRowValidAndCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := PaperRow(2048, 0.3)
	for trial := 0; trial < 50; trial++ {
		row, err := GenerateRow(rng, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := row.Validate(p.Width); err != nil {
			t.Fatal(err)
		}
		if !row.Canonical() {
			t.Fatalf("generated row not maximally compressed: %v", row)
		}
		for _, r := range row {
			if r.Length < 4 || r.Length > 20 {
				t.Fatalf("run length %d outside [4,20]", r.Length)
			}
		}
	}
}

func TestGenerateRowDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, density := range []float64{0.1, 0.3, 0.5, 0.7} {
		p := PaperRow(10000, density)
		total := 0
		const trials = 30
		for i := 0; i < trials; i++ {
			row, err := GenerateRow(rng, p)
			if err != nil {
				t.Fatal(err)
			}
			total += row.Area()
		}
		got := float64(total) / float64(trials*p.Width)
		if math.Abs(got-density) > 0.06 {
			t.Errorf("density target %v achieved %v", density, got)
		}
	}
}

func TestFigure5RunCountMatchesPaper(t *testing.T) {
	// Paper §5: "the image size is 10,000 pixels with approximately
	// 250 runs in the original image, which translates to a density
	// of 30%".
	rng := rand.New(rand.NewSource(3))
	p := PaperRow(10000, 0.3)
	total := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		row, err := GenerateRow(rng, p)
		if err != nil {
			t.Fatal(err)
		}
		total += row.RunCount()
	}
	mean := float64(total) / trials
	if mean < 220 || mean > 280 {
		t.Errorf("mean run count %v, want ≈250", mean)
	}
}

func TestRowParamsValidate(t *testing.T) {
	bad := []RowParams{
		{Width: -1, MinRunLen: 4, MaxRunLen: 20, Density: 0.3},
		{Width: 100, MinRunLen: 0, MaxRunLen: 20, Density: 0.3},
		{Width: 100, MinRunLen: 5, MaxRunLen: 4, Density: 0.3},
		{Width: 100, MinRunLen: 4, MaxRunLen: 20, Density: 0},
		{Width: 100, MinRunLen: 4, MaxRunLen: 20, Density: 1},
	}
	for _, p := range bad {
		if p.Validate() == nil {
			t.Errorf("Validate accepted %+v", p)
		}
		if _, err := GenerateRow(rand.New(rand.NewSource(1)), p); err == nil {
			t.Errorf("GenerateRow accepted %+v", p)
		}
	}
}

func TestErrorMask(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := PaperErrors(40)
	for trial := 0; trial < 30; trial++ {
		mask, err := ErrorMask(rng, 1000, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := mask.Validate(1000); err != nil {
			t.Fatal(err)
		}
		// ≤ Count runs (merging only reduces), each ≥ MinLen pixels
		// in total area terms only before merge; area bounded above.
		if len(mask) > p.Count {
			t.Fatalf("mask has %d runs > count %d", len(mask), p.Count)
		}
		if mask.Area() > p.Count*p.MaxLen {
			t.Fatalf("mask area %d exceeds max %d", mask.Area(), p.Count*p.MaxLen)
		}
	}
}

func TestErrorMaskEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if mask, err := ErrorMask(rng, 100, ErrorParams{}); err != nil || mask != nil {
		t.Errorf("zero errors: %v %v", mask, err)
	}
	if _, err := ErrorMask(rng, 100, ErrorParams{Count: -1}); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := ErrorMask(rng, 100, ErrorParams{Count: 2, MinLen: 5, MaxLen: 4}); err == nil {
		t.Error("bad length range accepted")
	}
	// Error runs longer than the row clamp to the row.
	mask, err := ErrorMask(rng, 3, ErrorParams{Count: 1, MinLen: 10, MaxLen: 10})
	if err != nil {
		t.Fatal(err)
	}
	if mask.Area() != 3 {
		t.Errorf("clamped mask = %v", mask)
	}
}

func TestCountForPixelFraction(t *testing.T) {
	p := CountForPixelFraction(10000, 0.035, 2, 6)
	// 350 error pixels at mean length 4 → ≈ 88 runs.
	if p.Count < 80 || p.Count > 95 {
		t.Errorf("Count = %d, want ≈88", p.Count)
	}
	if CountForPixelFraction(10000, 0, 2, 6).Count != 0 {
		t.Error("zero fraction should give zero errors")
	}
}

func TestGeneratePair(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rp := PaperRow(2000, 0.3)
	ep := PaperErrors(12)
	pair, err := GeneratePair(rng, rp, ep)
	if err != nil {
		t.Fatal(err)
	}
	if err := pair.B.Validate(rp.Width); err != nil {
		t.Fatal(err)
	}
	// B = A ⊕ mask by construction, so A ⊕ B = mask.
	if !rle.XOR(pair.A, pair.B).EqualBits(pair.Mask) {
		t.Error("pair mask inconsistent with A ⊕ B")
	}
	// Changed pixels = mask area.
	if got := rle.Hamming(pair.A, pair.B); got != pair.Mask.Area() {
		t.Errorf("Hamming = %d, mask area = %d", got, pair.Mask.Area())
	}
}

func TestGeneratePairZeroErrorsIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pair, err := GeneratePair(rng, PaperRow(500, 0.3), ErrorParams{})
	if err != nil {
		t.Fatal(err)
	}
	if !pair.A.EqualBits(pair.B) {
		t.Error("zero-error pair differs")
	}
}

func TestGenerateImage(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	img, err := GenerateImage(rng, PaperRow(300, 0.4), 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := img.Validate(); err != nil {
		t.Fatal(err)
	}
	if img.Height != 20 || img.Width != 300 {
		t.Errorf("dims %dx%d", img.Width, img.Height)
	}
	if _, err := GenerateImage(rng, PaperRow(300, 0.4), -1); err == nil {
		t.Error("negative height accepted")
	}
}

func TestDeterminism(t *testing.T) {
	p := PaperRow(1000, 0.3)
	a1, _ := GenerateRow(rand.New(rand.NewSource(99)), p)
	a2, _ := GenerateRow(rand.New(rand.NewSource(99)), p)
	if !a1.Equal(a2) {
		t.Error("same seed produced different rows")
	}
}
