package server

// The health subsystem: /healthz stays a static liveness check (the
// process is up and serving), while /readyz aggregates real readiness
// probes — worker-pool liveness, job-queue saturation, reference-cache
// budget pressure and load-shed state — into a per-probe JSON
// breakdown, 200 when everything passes and 503 otherwise. The split
// matches the paper's termination design: liveness is the wired-AND
// ("the array answered"), readiness is the per-cell status vector
// ("every cell can accept the next row").

import (
	"fmt"
	"net/http"
)

// Saturation thresholds for the built-in probes, in tenths: the queue
// probe fails at ≥90% occupancy, the reference-cache probe at ≥95%
// of its byte budget.
const (
	queueSaturationTenths = 9
	refPressureTwentieths = 19
)

// ProbeResult is one probe's contribution to GET /readyz.
type ProbeResult struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// readyResponse is the JSON shape of GET /readyz.
type readyResponse struct {
	Ready  bool          `json:"ready"`
	Probes []ProbeResult `json:"probes"`
}

// probe is one registered readiness check.
type probe struct {
	name  string
	check func() (ok bool, detail string)
}

// AddProbe registers an additional readiness probe (embedding
// deployments: disk space, upstream dependencies). Probes run on
// every GET /readyz, so checks must be cheap; all registered probes
// must pass for the service to report ready.
func (s *Server) AddProbe(name string, check func() (ok bool, detail string)) {
	s.probeMu.Lock()
	defer s.probeMu.Unlock()
	s.probes = append(s.probes, probe{name: name, check: check})
}

// registerBuiltinProbes wires the probes every deployment gets.
func (s *Server) registerBuiltinProbes() {
	s.AddProbe("workers", func() (bool, string) {
		h := s.jobs.Health()
		detail := fmt.Sprintf("pool=%d busy=%d stuck=%d", h.Workers, h.Busy, h.Stuck)
		return h.Stuck == 0, detail
	})
	s.AddProbe("job-queue", func() (bool, string) {
		h := s.jobs.Health()
		detail := fmt.Sprintf("depth=%d cap=%d", h.QueueDepth, h.QueueCap)
		saturated := h.QueueCap > 0 && h.QueueDepth*10 >= h.QueueCap*queueSaturationTenths
		return !saturated, detail
	})
	s.AddProbe("ref-cache", func() (bool, string) {
		budget := s.refs.CacheBudget()
		resident := s.refs.ResidentBytes()
		if budget <= 0 {
			return true, "caching disabled"
		}
		detail := fmt.Sprintf("resident=%d budget=%d", resident, budget)
		return resident*20 < budget*refPressureTwentieths, detail
	})
	s.AddProbe("load-shed", func() (bool, string) {
		if s.cfg.MaxInFlight <= 0 {
			return true, "limiter disabled"
		}
		inFlight := s.inFlight.Value()
		detail := fmt.Sprintf("in_flight=%d max=%d", inFlight, s.cfg.MaxInFlight)
		return inFlight < int64(s.cfg.MaxInFlight), detail
	})
}

// handleReadyz evaluates every probe and reports readiness: 200 with
// the per-probe breakdown when all pass, 503 (same JSON body) when
// any fails, so orchestrators pull the instance from rotation while
// the breakdown says exactly why.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.probeMu.Lock()
	probes := make([]probe, len(s.probes))
	copy(probes, s.probes)
	s.probeMu.Unlock()
	resp := readyResponse{Ready: true, Probes: make([]ProbeResult, 0, len(probes))}
	for _, p := range probes {
		ok, detail := p.check()
		if !ok {
			resp.Ready = false
		}
		resp.Probes = append(resp.Probes, ProbeResult{Name: p.name, OK: ok, Detail: detail})
	}
	code := http.StatusOK
	if !resp.Ready {
		code = http.StatusServiceUnavailable
		if s.notReadyC != nil {
			s.notReadyC.Inc()
		}
	}
	writeJSON(w, code, resp)
}
