package server

// The reference-registry and batch-job endpoints. The synchronous
// compare endpoints live in server.go; everything here is the async
// side: register a golden reference once, then submit batches of
// scans against it and poll.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"sysrle/internal/imageio"
	"sysrle/internal/jobs"
	"sysrle/internal/refstore"
	"sysrle/internal/rle"
)

// writeJSON renders one response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleRefPut(w http.ResponseWriter, r *http.Request) {
	if !s.parseForm(w, r) {
		return
	}
	defer cleanupForm(r.MultipartForm)
	img, err := formImage(r, "image")
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	meta, err := s.refs.Put(img)
	if err != nil {
		s.httpError(w, r, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, meta)
}

// refListResponse is the JSON shape of GET /v1/references.
type refListResponse struct {
	References []refstore.Meta `json:"references"`
}

func (s *Server) handleRefList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, refListResponse{References: s.refs.List()})
}

func (s *Server) handleRefGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	meta, ok := s.refs.Meta(id)
	if !ok {
		s.httpError(w, r, http.StatusNotFound, fmt.Errorf("reference %q: %w", id, refstore.ErrNotFound))
		return
	}
	writeJSON(w, http.StatusOK, meta)
}

// handleRefContent streams the canonical RLEB encoding of a stored
// reference — what a cluster coordinator moves during rebalancing,
// and exactly the bytes whose SHA-256 is the reference id.
func (s *Server) handleRefContent(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	enc, ok := s.refs.Encoded(id)
	if !ok {
		s.httpError(w, r, http.StatusNotFound, fmt.Errorf("reference %q: %w", id, refstore.ErrNotFound))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(enc)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(enc)
}

func (s *Server) handleRefDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.refs.Delete(id) {
		s.httpError(w, r, http.StatusNotFound, fmt.Errorf("reference %q: %w", id, refstore.ErrNotFound))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// intQuery parses an optional bounded integer query parameter.
func intQuery(r *http.Request, name string, lo, hi int) (int, error) {
	q := r.URL.Query().Get(name)
	if q == "" {
		return 0, nil
	}
	v, err := strconv.Atoi(q)
	if err != nil || v < lo || v > hi {
		return 0, fmt.Errorf("bad %s %q (want %d..%d)", name, q, lo, hi)
	}
	return v, nil
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	spec := jobs.Spec{
		Type:   r.URL.Query().Get("type"),
		Engine: r.URL.Query().Get("engine"),
	}
	switch spec.Type {
	case "", jobs.TypeInspect:
		var err error
		if spec.MinDefectArea, err = intQuery(r, "min-area", 0, 1<<30); err != nil {
			s.httpError(w, r, http.StatusBadRequest, err)
			return
		}
		if spec.MaxAlignShift, err = intQuery(r, "align", 0, 256); err != nil {
			s.httpError(w, r, http.StatusBadRequest, err)
			return
		}
	case jobs.TypeDocClean:
		var err error
		if spec.Doc, err = docCleanConfigFromQuery(r); err != nil {
			s.httpError(w, r, http.StatusBadRequest, err)
			return
		}
	default:
		s.httpError(w, r, http.StatusBadRequest, fmt.Errorf("unknown job type %q (have inspect, docclean)", spec.Type))
		return
	}
	if !s.parseForm(w, r) {
		return
	}
	defer cleanupForm(r.MultipartForm)

	if spec.Type == jobs.TypeDocClean {
		// Per-page cleanup takes no reference; reject rather than
		// silently ignore one (same strictness as jobs.Submit applies
		// to the engine parameter).
		if r.URL.Query().Get("ref") != "" || r.FormValue("ref") != "" || len(r.MultipartForm.File["ref"]) > 0 {
			s.httpError(w, r, http.StatusBadRequest, errors.New("docclean jobs take no reference"))
			return
		}
	} else {
		spec.RefID = r.URL.Query().Get("ref")
		if spec.RefID == "" {
			spec.RefID = r.FormValue("ref")
		}
		if spec.RefID == "" {
			// No registered reference named: accept one uploaded inline.
			ref, err := formImage(r, "ref")
			if err != nil {
				s.httpError(w, r, http.StatusBadRequest,
					fmt.Errorf("need ?ref=<id>, form value \"ref\", or an uploaded \"ref\" file: %v", err))
				return
			}
			spec.Ref = ref
		}
	}

	files := r.MultipartForm.File["scan"]
	if len(files) == 0 {
		s.httpError(w, r, http.StatusBadRequest, errors.New(`no "scan" uploads in form`))
		return
	}
	spec.Scans = make([]*rle.Image, 0, len(files))
	for i, fh := range files {
		f, err := fh.Open()
		if err != nil {
			s.httpError(w, r, http.StatusBadRequest, fmt.Errorf("scan %d: %v", i, err))
			return
		}
		img, err := imageio.Read(f)
		_ = f.Close()
		if err != nil {
			s.httpError(w, r, http.StatusBadRequest, fmt.Errorf("scan %d (%s): %v", i, fh.Filename, err))
			return
		}
		spec.Scans = append(spec.Scans, img)
	}

	id, err := s.jobs.Submit(spec)
	switch {
	case err == nil:
	case errors.Is(err, jobs.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		s.httpError(w, r, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, refstore.ErrNotFound):
		s.httpError(w, r, http.StatusNotFound, fmt.Errorf("reference %q: %w", spec.RefID, err))
		return
	case errors.Is(err, jobs.ErrClosed):
		s.httpError(w, r, http.StatusServiceUnavailable, err)
		return
	default:
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	status, err := s.jobs.Get(id)
	if err != nil {
		// Submitted and already collected is impossible within one
		// request; report it rather than hide it.
		s.httpError(w, r, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+id)
	writeJSON(w, http.StatusAccepted, status)
}

// jobListResponse is the JSON shape of GET /v1/jobs.
type jobListResponse struct {
	Jobs []jobs.Status `json:"jobs"`
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, jobListResponse{Jobs: s.jobs.List()})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	status, err := s.jobs.Get(id)
	if err != nil {
		s.httpError(w, r, http.StatusNotFound, fmt.Errorf("job %q: %w", id, jobs.ErrNotFound))
		return
	}
	writeJSON(w, http.StatusOK, status)
}

func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.jobs.Delete(id); err != nil {
		s.httpError(w, r, http.StatusNotFound, fmt.Errorf("job %q: %w", id, jobs.ErrNotFound))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
