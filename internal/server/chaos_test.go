package server

// The crash-recovery chaos suite: randomized kill -9 at arbitrary
// points in a live workload, with torn tails and bit-rotted torn
// sectors, asserting the recovered state is always a durable prefix:
//
//   - no acknowledged reference is lost or altered
//   - no acknowledged job submission is lost; completed scans keep
//     their exact verdicts; incomplete ones re-run to completion
//   - the audit log verifies end to end and every verdict id observed
//     before the crash still proves inclusion after it
//
// A second suite runs the same workload under a seeded disk-fault
// plan (torn writes, ENOSPC, bit rot, fsync failures) and asserts the
// weaker but still absolute property: the service may fail loudly,
// it never lies.

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"sysrle/internal/auditlog"
	"sysrle/internal/fault"
	"sysrle/internal/jobs"
	"sysrle/internal/refstore"
	"sysrle/internal/rle"
	"sysrle/internal/store"
	"sysrle/internal/telemetry"
)

// chaosImage builds a deterministic image distinct per seed.
func chaosImage(rng *rand.Rand, w, h int) *rle.Image {
	img := rle.NewImage(w, h)
	for y := 0; y < h; y++ {
		var row rle.Row
		x := rng.Intn(3)
		for x < w-3 {
			length := 1 + rng.Intn(5)
			if x+length > w {
				break
			}
			row = append(row, rle.Run{Start: x, Length: length})
			x += length + 1 + rng.Intn(4)
		}
		img.SetRow(y, row)
	}
	return img
}

func openChaosServer(t *testing.T, fs store.FS) *Server {
	t.Helper()
	s, err := Open(Config{
		DataDir:            "data",
		FS:                 fs,
		JobWorkers:         2,
		JobRetention:       -1,
		AuditBatch:         3,
		AuditFlushInterval: -1,
		Registry:           telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("server.Open: %v", err)
	}
	return s
}

func TestCrashRecoveryChaos(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			runCrashChaosIteration(t, seed)
		})
	}
}

func runCrashChaosIteration(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fs := store.NewMemFS()
	s := openChaosServer(t, fs)
	// The dying process: never Closed — its goroutines are "killed" by
	// the Crash below, which orphans every file handle they hold.

	ackedRefs := make(map[string]*rle.Image)
	type ackedJob struct {
		scans int
	}
	acked := make(map[string]ackedJob)
	completed := make(map[string]jobs.Status)

	nRefs := 1 + rng.Intn(3)
	for i := 0; i < nRefs; i++ {
		img := chaosImage(rng, 48, 24)
		meta, err := s.refs.Put(img)
		if err != nil {
			t.Fatalf("ref put: %v", err)
		}
		ackedRefs[meta.ID] = img.Canonicalize()
	}
	refIDs := make([]string, 0, len(ackedRefs))
	for id := range ackedRefs {
		refIDs = append(refIDs, id)
	}

	nJobs := 1 + rng.Intn(4)
	for i := 0; i < nJobs; i++ {
		n := 1 + rng.Intn(3)
		spec := jobs.Spec{RefID: refIDs[rng.Intn(len(refIDs))], MinDefectArea: 1}
		for k := 0; k < n; k++ {
			spec.Scans = append(spec.Scans, chaosImage(rng, 48, 24))
		}
		id, err := s.jobs.Submit(spec)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		acked[id] = ackedJob{scans: n}
	}

	// Let a random subset of the work finish before the power goes.
	waitFor := rng.Intn(nJobs + 1)
	deadline := time.Now().Add(5 * time.Second)
	for id := range acked {
		if len(completed) >= waitFor {
			break
		}
		for time.Now().Before(deadline) {
			st, err := s.jobs.Get(id)
			if err != nil {
				t.Fatalf("pre-crash get: %v", err)
			}
			if st.State.Terminal() && st.ScansDone == st.ScansTotal {
				completed[id] = st
				break
			}
			time.Sleep(time.Millisecond)
		}
	}

	// kill -9: Reboot (not Crash) forks the durable view, so the
	// abandoned server's still-running goroutines are left writing
	// into a detached namespace — just like a dead process.
	fs = fs.Reboot(store.CrashOpts{Torn: seed%2 == 0, BitRot: seed%4 == 0, Seed: seed})
	s2 := openChaosServer(t, fs)
	defer s2.Close()

	// Durable prefix, part 1: every acknowledged reference survives
	// bit-identically.
	for id, want := range ackedRefs {
		got, err := s2.refs.Get(id)
		if err != nil {
			t.Fatalf("acked reference %s lost: %v", id[:8], err)
		}
		if !got.Equal(want) {
			t.Fatalf("acked reference %s corrupted across crash", id[:8])
		}
	}

	// Part 2: every acknowledged job exists and reaches a terminal
	// state; scans completed before the crash keep their verdicts.
	deadline = time.Now().Add(10 * time.Second)
	for id, aj := range acked {
		var st jobs.Status
		for {
			var err error
			st, err = s2.jobs.Get(id)
			if err != nil {
				t.Fatalf("acked job %s lost: %v", id, err)
			}
			if st.State.Terminal() && st.ScansDone == st.ScansTotal {
				break
			}
			if !time.Now().Before(deadline) {
				t.Fatalf("job %s never finished after recovery: %+v", id, st)
			}
			time.Sleep(time.Millisecond)
		}
		if st.ScansTotal != aj.scans {
			t.Fatalf("job %s scan count changed: %d vs %d", id, st.ScansTotal, aj.scans)
		}
		if pre, ok := completed[id]; ok {
			if st.State != pre.State {
				t.Fatalf("completed job %s changed state: %s vs %s", id, st.State, pre.State)
			}
			for i := range pre.Results {
				a, b := pre.Results[i], st.Results[i]
				if a.Defects != b.Defects || a.DiffPixels != b.DiffPixels || a.Clean != b.Clean || a.AuditID != b.AuditID {
					t.Fatalf("completed job %s scan %d re-ran or changed: %+v vs %+v", id, i, a, b)
				}
			}
		}
	}

	// Part 3: the audit log verifies, and every verdict acknowledged
	// before the crash still proves inclusion.
	if err := s2.audit.Flush(); err != nil {
		t.Fatalf("audit flush: %v", err)
	}
	rep, err := s2.audit.VerifyAll()
	if err != nil {
		t.Fatalf("audit verify: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("audit log failed verification after crash: %+v", rep)
	}
	for id, st := range completed {
		for _, res := range st.Results {
			if res.AuditID == "" {
				continue
			}
			p, err := s2.audit.Proof(res.AuditID)
			if err != nil {
				t.Fatalf("verdict %s of job %s lost: %v", res.AuditID, id, err)
			}
			if err := auditlog.VerifyProof(p); err != nil {
				t.Fatalf("proof for %s no longer verifies: %v", res.AuditID, err)
			}
		}
	}
}

// TestDiskFaultChaos runs the reference workload with every disk
// fault kind injected at a rate high enough to hit all paths, and
// asserts the service never returns wrong data: every operation
// either fails visibly or its result reads back bit-identical.
func TestDiskFaultChaos(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inner := store.NewMemFS()
		inj := fault.NewDiskInjector(fault.DiskPlan{
			Seed: seed,
			Rate: 0.05,
			Kinds: []fault.DiskKind{
				fault.DiskTornWrite, fault.DiskENOSPC, fault.DiskBitRot, fault.DiskSyncFail,
			},
		}, nil)
		fsys := fault.WrapFS(inner, inj)

		blobs, err := store.Open(fsys, "data/refs", nil)
		if err != nil {
			// Injected fault during Open: loud failure is acceptable.
			continue
		}
		refs := refstore.New(refstore.Config{Disk: blobs, CacheBytes: -1})
		put, failed, lied := 0, 0, 0
		for i := 0; i < 60; i++ {
			img := chaosImage(rng, 32, 16)
			meta, err := refs.Put(img)
			if err != nil {
				failed++
				continue
			}
			put++
			got, err := refs.Get(meta.ID)
			if err != nil {
				// Visible failure (quarantined rot, injected read
				// fault) — allowed. ErrNotFound after quarantine too.
				if !errors.Is(err, store.ErrCorrupt) && !errors.Is(err, refstore.ErrNotFound) && !errors.Is(err, fault.ErrInjected) {
					t.Fatalf("seed %d: unexpected error class: %v", seed, err)
				}
				continue
			}
			if !got.Equal(img.Canonicalize()) {
				lied++
			}
		}
		if lied > 0 {
			t.Fatalf("seed %d: %d silent corruptions (put=%d failed=%d)", seed, lied, put, failed)
		}
		if inj.Total() == 0 {
			t.Fatalf("seed %d: fault plan injected nothing — the suite tested nothing", seed)
		}
	}
}
