package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"sysrle/internal/docclean"
	"sysrle/internal/imageio"
)

// docCleanConfigFromQuery parses the docclean tuning parameters shared
// by POST /v1/docclean and POST /v1/jobs?type=docclean. Absent
// parameters stay zero and get page-size-derived defaults inside the
// pipeline.
func docCleanConfigFromQuery(r *http.Request) (docclean.Config, error) {
	var cfg docclean.Config
	var err error
	if cfg.MaxSpeckleArea, err = intQuery(r, "max-speckle", 0, 1<<30); err != nil {
		return cfg, err
	}
	if cfg.MinLineLen, err = intQuery(r, "min-line", 0, 1<<30); err != nil {
		return cfg, err
	}
	if cfg.CloseGapX, err = intQuery(r, "close-x", 0, 1<<20); err != nil {
		return cfg, err
	}
	if cfg.CloseGapY, err = intQuery(r, "close-y", 0, 1<<20); err != nil {
		return cfg, err
	}
	if cfg.MinBlockArea, err = intQuery(r, "min-block", 0, 1<<30); err != nil {
		return cfg, err
	}
	switch q := r.URL.Query().Get("keep-lines"); q {
	case "", "0", "false":
	case "1", "true":
		cfg.KeepLines = true
	default:
		return cfg, fmt.Errorf("bad keep-lines %q (want true or false)", q)
	}
	return cfg, nil
}

// handleDocClean is the synchronous document-cleanup endpoint: one
// page in, either a JSON report (default) or the cleaned image
// (format=pbm|png|rlet|...) out, with the report folded into
// X-Sysrle-* headers. Batch-scale cleanup goes through
// /v1/jobs?type=docclean instead.
func (s *Server) handleDocClean(w http.ResponseWriter, r *http.Request) {
	cfg, err := docCleanConfigFromQuery(r)
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	format := r.URL.Query().Get("format")
	if format != "" && !validFormat(format) {
		s.httpError(w, r, http.StatusBadRequest, fmt.Errorf("unknown format %q (have %v)", format, imageio.Formats()))
		return
	}
	if !s.parseForm(w, r) {
		return
	}
	defer cleanupForm(r.MultipartForm)
	img, err := formImage(r, "image")
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	res, err := docclean.Clean(r.Context(), img, cfg)
	if err != nil {
		s.httpError(w, r, http.StatusUnprocessableEntity, err)
		return
	}
	w.Header().Set("X-Sysrle-Speckles-Removed", strconv.Itoa(res.SpecklesRemoved))
	w.Header().Set("X-Sysrle-Lines-H", strconv.Itoa(res.LinesH))
	w.Header().Set("X-Sysrle-Lines-V", strconv.Itoa(res.LinesV))
	w.Header().Set("X-Sysrle-Blocks", strconv.Itoa(len(res.Blocks)))
	w.Header().Set("X-Sysrle-Output-Area", strconv.Itoa(res.OutputArea))
	if format == "" {
		if res.Blocks == nil {
			res.Blocks = []docclean.Block{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(res)
		return
	}
	w.Header().Set("Content-Type", imageio.ContentType(format))
	// Format validated up front; a write error is a broken connection.
	_ = imageio.Write(w, format, res.Cleaned)
}
