package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sysrle/internal/telemetry"
)

// newTestServer builds a Server plus a wrapped custom inner handler,
// so middleware behavior can be driven directly.
func newTestServer(cfg Config, inner http.Handler) (*Server, http.Handler) {
	if cfg.MaxUploadBytes == 0 {
		cfg.MaxUploadBytes = MaxUploadBytes
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	s := &Server{cfg: cfg, log: discardLogger(), reg: telemetry.NewRegistry()}
	if cfg.Registry != nil {
		s.reg = cfg.Registry
	}
	return s, s.wrap(inner)
}

func TestRequestIDAssigned(t *testing.T) {
	_, h := newTestServer(Config{}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(requestIDHeader) == "" {
			t.Error("handler saw no request ID")
		}
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Header().Get(requestIDHeader) == "" {
		t.Error("response missing X-Request-Id")
	}
}

func TestRequestIDPropagated(t *testing.T) {
	_, h := newTestServer(Config{}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	req := httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set(requestIDHeader, "upstream-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(requestIDHeader); got != "upstream-42" {
		t.Errorf("request ID = %q, want upstream-42", got)
	}
}

func TestRequestIDRejectsGarbage(t *testing.T) {
	_, h := newTestServer(Config{}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	req := httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set(requestIDHeader, strings.Repeat("x", 200))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(requestIDHeader); len(got) > 64 || got == "" {
		t.Errorf("oversized inbound ID not replaced: %q", got)
	}
}

func TestPanicRecovery(t *testing.T) {
	s, h := newTestServer(Config{}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/diff", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	var e errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error.Message == "" {
		t.Errorf("panic response body %q", rec.Body.String())
	}
	if got := s.reg.Counter("sysrle_http_panics_total").Value(); got != 1 {
		t.Errorf("panics counter = %d, want 1", got)
	}
}

func TestLimiterSheds(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	s, h := newTestServer(Config{MaxInFlight: 1, RequestTimeout: -1}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(srv.URL + "/v1/diff")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered // first request is now occupying the only slot

	resp, err := http.Get(srv.URL + "/v1/diff")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("missing Retry-After header")
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error.Message == "" {
		t.Error("429 body is not the JSON error shape")
	}
	if got := s.reg.Counter("sysrle_http_throttled_total").Value(); got != 1 {
		t.Errorf("throttled counter = %d, want 1", got)
	}
	close(release)
	wg.Wait()
}

func TestLimiterExemptsHealthAndMetrics(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	_, h := newTestServer(Config{MaxInFlight: 1, RequestTimeout: -1}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/diff" {
			entered <- struct{}{}
			<-release
		}
		w.WriteHeader(http.StatusOK)
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(srv.URL + "/v1/diff")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered
	defer func() { close(release); wg.Wait() }()

	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s while saturated: status %d, want 200", path, resp.StatusCode)
		}
	}
}

func TestTimeout(t *testing.T) {
	_, h := newTestServer(Config{RequestTimeout: 20 * time.Millisecond}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(5 * time.Second):
		case <-r.Context().Done():
		}
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/diff")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Message == "" {
		t.Errorf("timeout body %q is not the JSON error shape", body)
	}
}

func TestObserveRecordsMetrics(t *testing.T) {
	s, h := newTestServer(Config{}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("short and stout"))
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/diff", strings.NewReader("hello")))

	if got := s.reg.Counter("sysrle_http_requests_total",
		telemetry.L("endpoint", "/v1/diff"), telemetry.L("class", "4xx")).Value(); got != 1 {
		t.Errorf("requests counter = %d, want 1", got)
	}
	if got := s.reg.Histogram("sysrle_http_request_seconds", nil,
		telemetry.L("endpoint", "/v1/diff")).Count(); got != 1 {
		t.Errorf("latency histogram count = %d, want 1", got)
	}
	if got := s.reg.Counter("sysrle_http_request_bytes_total").Value(); got != int64(len("hello")) {
		t.Errorf("bytes in = %d, want %d", got, len("hello"))
	}
	if got := s.reg.Counter("sysrle_http_response_bytes_total").Value(); got != int64(len("short and stout")) {
		t.Errorf("bytes out = %d, want %d", got, len("short and stout"))
	}
}

func TestEndpointLabelBoundsCardinality(t *testing.T) {
	s, h := newTestServer(Config{}, http.NewServeMux())
	for _, path := range []string{"/a", "/b", "/c/d/e", "/v1/zzz"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	}
	if got := s.reg.Counter("sysrle_http_requests_total",
		telemetry.L("endpoint", "other"), telemetry.L("class", "4xx")).Value(); got != 4 {
		t.Errorf("probed paths not collapsed to 'other': %d", got)
	}
}
