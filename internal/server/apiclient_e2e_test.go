package server

// End-to-end coverage of the v1 API through the typed client
// (internal/apiclient) — the same path the CLIs and the cluster
// coordinator use. Wire-level edge cases (malformed multipart, bad
// headers, raw envelope shapes) stay in the hand-rolled tests; this
// file is the "a well-behaved client sees the documented API" suite.

import (
	"bytes"
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"sysrle/internal/apiclient"
	"sysrle/internal/imageio"
	"sysrle/internal/rle"
)

func e2eClient(t *testing.T) (*apiclient.Client, *Server) {
	t.Helper()
	srv := New()
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return apiclient.MustNew(ts.URL, apiclient.Options{Seed: 1}), srv
}

func TestClientDiffEndToEnd(t *testing.T) {
	c, _ := e2eClient(t)
	ref, scan, _ := testBoards(t)
	res, err := c.Diff(context.Background(), apiclient.DiffRequest{A: ref, B: scan})
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if res.Image.Width != ref.Width || res.Image.Height != ref.Height {
		t.Fatalf("diff dims %dx%d, want %dx%d", res.Image.Width, res.Image.Height, ref.Width, ref.Height)
	}
	if res.DiffPixels == 0 || res.Stats.RowsDiffering == 0 || res.Engine == "" {
		t.Fatalf("stats not decoded: %+v engine=%q pixels=%d", res.Stats, res.Engine, res.DiffPixels)
	}
	if res.DiffPixels != res.Image.Area() {
		t.Fatalf("DiffPixels header %d != image area %d", res.DiffPixels, res.Image.Area())
	}

	// Named engine selection round-trips.
	res2, err := c.Diff(context.Background(), apiclient.DiffRequest{A: ref, B: scan, Engine: "lockstep"})
	if err != nil {
		t.Fatalf("Diff lockstep: %v", err)
	}
	if res2.Engine != "systolic-lockstep" {
		t.Fatalf("engine = %q, want systolic-lockstep", res2.Engine)
	}
}

func TestClientDiffErrorsAreTyped(t *testing.T) {
	c, _ := e2eClient(t)
	ref, _, _ := testBoards(t)
	small := &rle.Image{Width: 8, Height: 2, Rows: make([]rle.Row, 2)}
	_, err := c.Diff(context.Background(), apiclient.DiffRequest{A: ref, B: small})
	ae, ok := err.(*apiclient.Error)
	if !ok {
		t.Fatalf("err = %T %v, want *apiclient.Error", err, err)
	}
	if ae.Status != 422 || ae.Code != apiclient.CodeUnprocessable {
		t.Fatalf("size-mismatch error = %+v", ae)
	}
	if ae.RequestID == "" {
		t.Fatalf("error lost the request id: %+v", ae)
	}
}

func TestClientReferenceLifecycle(t *testing.T) {
	c, _ := e2eClient(t)
	ref, scan, _ := testBoards(t)
	ctx := context.Background()

	meta, err := c.PutReference(ctx, ref)
	if err != nil {
		t.Fatalf("PutReference: %v", err)
	}
	if meta.ID == "" || meta.Width != ref.Width || meta.Height != ref.Height {
		t.Fatalf("meta = %+v", meta)
	}

	// Content round-trips byte-identically through the content endpoint.
	img, err := c.ReferenceContent(ctx, meta.ID)
	if err != nil {
		t.Fatalf("ReferenceContent: %v", err)
	}
	var a, b bytes.Buffer
	if err := imageio.Write(&a, "rleb", ref.Canonicalize()); err != nil {
		t.Fatal(err)
	}
	if err := imageio.Write(&b, "rleb", img); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("reference content round-trip differs (%d vs %d bytes)", a.Len(), b.Len())
	}

	list, err := c.ListReferences(ctx)
	if err != nil || len(list) != 1 || list[0].ID != meta.ID {
		t.Fatalf("ListReferences = %v, %v", list, err)
	}
	got, err := c.GetReference(ctx, meta.ID)
	if err != nil || got.ID != meta.ID {
		t.Fatalf("GetReference = %v, %v", got, err)
	}

	// Diff by reference matches diff by upload.
	byRef, err := c.Diff(ctx, apiclient.DiffRequest{RefID: meta.ID, B: scan})
	if err != nil {
		t.Fatalf("diff by ref: %v", err)
	}
	byUpload, err := c.Diff(ctx, apiclient.DiffRequest{A: ref, B: scan})
	if err != nil {
		t.Fatalf("diff by upload: %v", err)
	}
	if byRef.DiffPixels != byUpload.DiffPixels || byRef.Stats != byUpload.Stats {
		t.Fatalf("ref diff %+v != upload diff %+v", byRef.Stats, byUpload.Stats)
	}

	if err := c.DeleteReference(ctx, meta.ID); err != nil {
		t.Fatalf("DeleteReference: %v", err)
	}
	if _, err := c.GetReference(ctx, meta.ID); !apiclient.IsNotFound(err) {
		t.Fatalf("deleted ref get = %v, want 404", err)
	}
	if _, err := c.ReferenceContent(ctx, meta.ID); !apiclient.IsNotFound(err) {
		t.Fatalf("deleted ref content = %v, want 404", err)
	}
}

func TestClientInspectAndAlign(t *testing.T) {
	c, _ := e2eClient(t)
	ref, scan, injected := testBoards(t)
	ctx := context.Background()

	rep, err := c.Inspect(ctx, apiclient.InspectRequest{Ref: ref, Scan: scan, MinDefectArea: 1})
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if rep.Clean || len(rep.Defects) == 0 {
		t.Fatalf("inspect found no defects (injected %d): %+v", injected, rep)
	}
	if rep.RowsCompared != ref.Height {
		t.Fatalf("rows compared %d, want %d", rep.RowsCompared, ref.Height)
	}

	al, err := c.Align(ctx, apiclient.AlignRequest{Ref: ref, Scan: ref, MaxShift: 4})
	if err != nil {
		t.Fatalf("Align: %v", err)
	}
	if al.DX != 0 || al.DY != 0 || al.ResidualArea != 0 {
		t.Fatalf("self-align = %+v, want zero offset and residual", al)
	}
}

func TestClientJobLifecycle(t *testing.T) {
	c, _ := e2eClient(t)
	ref, scan, _ := testBoards(t)
	ctx := context.Background()

	meta, err := c.PutReference(ctx, ref)
	if err != nil {
		t.Fatalf("PutReference: %v", err)
	}
	st, err := c.SubmitJob(ctx, apiclient.JobRequest{
		RefID: meta.ID,
		Scans: []*rle.Image{scan, ref},
	})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if st.ID == "" || st.ScansTotal != 2 {
		t.Fatalf("submitted job = %+v", st)
	}
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	final, err := c.WaitJob(wctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if final.State != "done" || len(final.Results) != 2 {
		t.Fatalf("final job = %+v", final)
	}
	// Scan 1 diffs the reference against itself: clean.
	for _, res := range final.Results {
		if res.Index == 1 && !res.Clean {
			t.Fatalf("self-scan not clean: %+v", res)
		}
		if res.Index == 0 && res.Clean {
			t.Fatalf("defect scan reported clean: %+v", res)
		}
	}

	jobs, err := c.ListJobs(ctx)
	if err != nil || len(jobs) != 1 {
		t.Fatalf("ListJobs = %v, %v", jobs, err)
	}
	if err := c.DeleteJob(ctx, st.ID); err != nil {
		t.Fatalf("DeleteJob: %v", err)
	}
	if _, err := c.GetJob(ctx, st.ID); !apiclient.IsNotFound(err) {
		t.Fatalf("deleted job get = %v, want 404", err)
	}
}

func TestClientDocClean(t *testing.T) {
	c, _ := e2eClient(t)
	page := testPage(t)
	rep, err := c.DocClean(context.Background(), apiclient.DocCleanRequest{
		Image: page, MaxSpeckleArea: 4, MinLineLen: 40,
		CloseGapX: 5, CloseGapY: 3, MinBlockArea: 10,
	})
	if err != nil {
		t.Fatalf("DocClean: %v", err)
	}
	if rep.InputArea == 0 || rep.OutputArea == 0 {
		t.Fatalf("docclean report = %+v", rep)
	}
}

func TestClientAuditAndReady(t *testing.T) {
	dir := t.TempDir()
	srv, err := Open(Config{DataDir: filepath.Join(dir, "data"), AuditBatch: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	c := apiclient.MustNew(ts.URL, apiclient.Options{Seed: 1})
	ctx := context.Background()

	st, err := c.Ready(ctx)
	if err != nil {
		t.Fatalf("Ready: %v", err)
	}
	if !st.Ready {
		t.Fatalf("durable server not ready: %+v", st.Probes)
	}
	if err := c.Health(ctx); err != nil {
		t.Fatalf("Health: %v", err)
	}

	// Run one inspect job so a verdict lands in the audit log.
	ref, scan, _ := testBoards(t)
	meta, err := c.PutReference(ctx, ref)
	if err != nil {
		t.Fatalf("PutReference: %v", err)
	}
	job, err := c.SubmitJob(ctx, apiclient.JobRequest{RefID: meta.ID, Scans: []*rle.Image{scan}})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	final, err := c.WaitJob(wctx, job.ID, 10*time.Millisecond)
	if err != nil || final.State != "done" {
		t.Fatalf("job = %+v, err %v", final, err)
	}
	sum, err := c.Audit(ctx)
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if sum.ChainHead == "" {
		t.Fatalf("audit chain head empty after a sealed verdict: %+v", sum)
	}
	if final.Results[0].AuditID == "" {
		t.Fatalf("scan result carries no audit id: %+v", final.Results[0])
	}
	proof, err := c.AuditProof(ctx, final.Results[0].AuditID)
	if err != nil {
		t.Fatalf("AuditProof: %v", err)
	}
	if len(proof) == 0 {
		t.Fatalf("empty proof")
	}

	// Telemetry snapshot is reachable through the typed client too.
	vars, err := c.Vars(ctx)
	if err != nil {
		t.Fatalf("Vars: %v", err)
	}
	if _, ok := vars["sysrle_http_requests_total"]; !ok {
		t.Fatalf("vars missing request counter: have %d families", len(vars))
	}
}
