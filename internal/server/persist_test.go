package server

// End-to-end durability: the whole service — refstore disk tier, job
// journal, audit log — restarted over a crash-simulating MemFS.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sysrle/internal/auditlog"
	"sysrle/internal/jobs"
	"sysrle/internal/rle"
	"sysrle/internal/store"
	"sysrle/internal/telemetry"
)

// durableServer opens a durable server over the given filesystem.
func durableServer(t *testing.T, fs *store.MemFS) (*httptest.Server, *Server) {
	t.Helper()
	s, err := Open(Config{
		DataDir:            "data",
		FS:                 fs,
		JobWorkers:         2,
		AuditBatch:         4,
		AuditFlushInterval: -1,
		Registry:           telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("server.Open: %v", err)
	}
	srv := httptest.NewServer(s)
	return srv, s
}

// TestRestartPreservesReferences uploads a reference, crashes the
// machine, restarts — and diffs against the same id with zero
// re-uploads.
func TestRestartPreservesReferences(t *testing.T) {
	fs := store.NewMemFS()
	srv, s := durableServer(t, fs)
	ref, scan, _ := testBoards(t)
	id := postRef(t, srv.URL, ref)
	srv.Close()
	s.Close()

	fs.Crash(store.CrashOpts{})
	srv2, s2 := durableServer(t, fs)
	defer srv2.Close()
	defer s2.Close()

	// Metadata survived.
	resp, err := http.Get(srv2.URL + "/v1/references/" + id)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference lost across restart: status %d", resp.StatusCode)
	}
	// And the content is live: a diff against the stored id works
	// without re-uploading the reference.
	body, ctype := multipartBody(t, "rleb", map[string]*rle.Image{"b": scan})
	resp, err = http.Post(srv2.URL+"/v1/diff?ref="+id, ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diff against recovered reference: status %d", resp.StatusCode)
	}
}

// TestRestartPreservesFinishedJobs runs a batch to completion, crashes
// and restarts, and expects the job record — results, audit ids — to
// still poll, without any scan re-running.
func TestRestartPreservesFinishedJobs(t *testing.T) {
	fs := store.NewMemFS()
	srv, s := durableServer(t, fs)
	ref, scan, _ := testBoards(t)
	refID := postRef(t, srv.URL, ref)
	form, formType := jobForm(t, []*rle.Image{scan, scan}, nil)
	resp, err := http.Post(srv.URL+"/v1/jobs?min-area=2&ref="+refID, formType, form)
	if err != nil {
		t.Fatal(err)
	}
	var accepted jobs.Status
	decodeJSON(t, resp, &accepted)
	before := pollJob(t, srv.URL, accepted.ID)
	srv.Close()
	s.Close()

	fs.Crash(store.CrashOpts{})
	srv2, s2 := durableServer(t, fs)
	defer srv2.Close()
	defer s2.Close()
	resp, err = http.Get(srv2.URL + "/v1/jobs/" + accepted.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("finished job lost across restart: %d: %s", resp.StatusCode, b)
	}
	var after jobs.Status
	decodeJSON(t, resp, &after)
	if after.State != before.State || after.ScansDone != before.ScansDone {
		t.Fatalf("recovered job = %+v, want %+v", after, before)
	}
	for i := range after.Results {
		if after.Results[i].DiffPixels != before.Results[i].DiffPixels ||
			after.Results[i].AuditID != before.Results[i].AuditID {
			t.Errorf("scan %d changed across restart: %+v vs %+v",
				i, after.Results[i], before.Results[i])
		}
	}
}

// TestAuditProofEndpoint drives a job through the API and then
// verifies one of its verdicts offline from the proof endpoint.
func TestAuditProofEndpoint(t *testing.T) {
	fs := store.NewMemFS()
	srv, s := durableServer(t, fs)
	defer srv.Close()
	defer s.Close()
	ref, scan, _ := testBoards(t)
	refID := postRef(t, srv.URL, ref)
	form, formType := jobForm(t, []*rle.Image{scan}, nil)
	resp, err := http.Post(srv.URL+"/v1/jobs?min-area=2&ref="+refID, formType, form)
	if err != nil {
		t.Fatal(err)
	}
	var accepted jobs.Status
	decodeJSON(t, resp, &accepted)
	st := pollJob(t, srv.URL, accepted.ID)
	auditID := st.Results[0].AuditID
	if auditID == "" {
		t.Fatal("durable inspect scan has no audit id")
	}

	resp, err = http.Get(srv.URL + "/v1/audit/" + auditID + "/proof")
	if err != nil {
		t.Fatal(err)
	}
	var proof auditlog.Proof
	decodeJSON(t, resp, &proof)
	if err := auditlog.VerifyProof(proof); err != nil {
		t.Fatalf("proof from the API does not verify: %v", err)
	}
	if proof.Verdict.JobID != accepted.ID || proof.Verdict.RefID != refID {
		t.Errorf("proof pins the wrong verdict: %+v", proof.Verdict)
	}

	// The summary shows the sealed chain.
	resp, err = http.Get(srv.URL + "/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	var sum auditListResponse
	decodeJSON(t, resp, &sum)
	if sum.ChainHead == "" || len(sum.Batches) == 0 {
		t.Errorf("audit summary after a flushed proof: %+v", sum)
	}

	// Unknown id → 404.
	resp, err = http.Get(srv.URL + "/v1/audit/v0000000000000000/proof")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown verdict: status %d, want 404", resp.StatusCode)
	}
}

// TestAuditDisabledWithoutDataDir: the endpoints exist but answer 404
// on a memory-only server.
func TestAuditDisabledWithoutDataDir(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	for _, path := range []string{"/v1/audit", "/v1/audit/vdeadbeef/proof"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s without DataDir: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestReadyzStorageProbe: a durable server reports the storage probe,
// and a sticky storage error flips it (and overall readiness) to
// false.
func TestReadyzStorageProbe(t *testing.T) {
	fs := store.NewMemFS()
	srv, s := durableServer(t, fs)
	defer srv.Close()
	defer s.Close()

	readyz := func() (int, string) {
		resp, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(b)
	}
	code, body := readyz()
	if code != http.StatusOK || !strings.Contains(body, `"storage"`) {
		t.Fatalf("healthy durable readyz = %d %s", code, body)
	}

	// Rot a reference blob on disk and touch it: the store notices,
	// quarantines, and holds a sticky error until an operator clears it.
	ref, _, _ := testBoards(t)
	postRef(t, srv.URL, ref)
	ids, err := s.refBlobs.List()
	if err != nil || len(ids) == 0 {
		t.Fatalf("no reference blobs on disk: %v", err)
	}
	if err := fs.Tamper("data/refs/blobs/"+ids[0][:2]+"/"+ids[0], func(data []byte) { data[0] ^= 0x40 }); err != nil {
		t.Fatalf("Tamper: %v", err)
	}
	if _, err := s.refBlobs.Get(ids[0]); err == nil {
		t.Fatal("tampered blob read back clean")
	}
	code, body = readyz()
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "corrupt") {
		t.Fatalf("readyz with corrupt storage = %d %s", code, body)
	}
	s.refBlobs.ClearErr()
	if code, _ = readyz(); code != http.StatusOK {
		t.Fatalf("readyz after ClearErr = %d", code)
	}
}
