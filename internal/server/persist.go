package server

// The durable tier of the service: opened by Open when Config.DataDir
// is set, invisible otherwise. Layout under the data directory:
//
//	refs/   content-addressed reference blobs (the refstore's disk
//	        tier — references survive restarts, the LRU stays a cache)
//	blobs/  archived job images (what journal replay re-runs scans from)
//	wal/    the job-lifecycle write-ahead journal
//	audit/  the Merkle-batched verdict log
//
// The audit endpoints live here too: GET /v1/audit lists sealed
// batches (the chain), GET /v1/audit/{id}/proof returns the inclusion
// proof for one verdict — everything a client needs to verify the
// verdict offline against a pinned chain head.

import (
	"errors"
	"fmt"
	"net/http"
	"path"
	"strings"

	"sysrle/internal/auditlog"
	"sysrle/internal/fault"
	"sysrle/internal/store"
	"sysrle/internal/wal"
)

// openStorage builds the durable tier per Config.DataDir; a no-op
// when the service is memory-only.
func (s *Server) openStorage() error {
	if s.cfg.DataDir == "" {
		return nil
	}
	fsys := s.cfg.FS
	if fsys == nil {
		fsys = store.OS()
	}
	if s.cfg.DiskFaultPlan != nil {
		s.log.Warn("disk fault injection enabled (chaos mode)", "plan", s.cfg.DiskFaultPlan.String())
		fsys = fault.WrapFS(fsys, fault.NewDiskInjector(*s.cfg.DiskFaultPlan, s.reg))
	}
	var err error
	if s.refBlobs, err = store.Open(fsys, path.Join(s.cfg.DataDir, "refs"), s.reg); err != nil {
		return fmt.Errorf("server: reference store: %w", err)
	}
	if s.jobBlobs, err = store.Open(fsys, path.Join(s.cfg.DataDir, "blobs"), s.reg); err != nil {
		return fmt.Errorf("server: job blob store: %w", err)
	}
	if s.journal, err = wal.Open(fsys, path.Join(s.cfg.DataDir, "wal"), wal.Options{
		Policy:     s.cfg.WALSync,
		BatchEvery: s.cfg.WALSyncEvery,
		Registry:   s.reg,
	}); err != nil {
		return fmt.Errorf("server: job journal: %w", err)
	}
	var rep auditlog.LoadReport
	if s.audit, rep, err = auditlog.Open(fsys, path.Join(s.cfg.DataDir, "audit"), auditlog.Config{
		BatchSize:     s.cfg.AuditBatch,
		FlushInterval: s.cfg.AuditFlushInterval,
		Registry:      s.reg,
	}); err != nil {
		return fmt.Errorf("server: audit log: %w", err)
	}
	s.log.Info("durable storage open", "dir", s.cfg.DataDir,
		"audit_batches", rep.Batches, "audit_verdicts", rep.Verdicts)
	if len(rep.Orphaned) > 0 {
		s.log.Warn("audit log verification orphaned batches", "orphaned", rep.Orphaned)
	}
	s.AddProbe("storage", s.storageProbe)
	return nil
}

// storageProbe fails readiness while any persistence component holds
// a sticky write error — the instance can still answer reads, but an
// orchestrator should stop routing work whose durability guarantee is
// already broken.
func (s *Server) storageProbe() (bool, string) {
	var faults []string
	for _, c := range []struct {
		name string
		err  error
	}{
		{"refs", s.refBlobs.Err()},
		{"blobs", s.jobBlobs.Err()},
		{"wal", s.journal.Err()},
		{"audit", s.audit.Err()},
	} {
		if c.err != nil {
			faults = append(faults, fmt.Sprintf("%s: %v", c.name, c.err))
		}
	}
	if len(faults) > 0 {
		return false, strings.Join(faults, "; ")
	}
	return true, fmt.Sprintf("dir=%s audit_batches=%d", s.cfg.DataDir, len(s.audit.Batches()))
}

// auditListResponse is the JSON shape of GET /v1/audit.
type auditListResponse struct {
	ChainHead string               `json:"chain_head"`
	Pending   int                  `json:"pending"`
	Batches   []auditlog.BatchInfo `json:"batches"`
}

func (s *Server) handleAuditBatches(w http.ResponseWriter, r *http.Request) {
	if s.audit == nil {
		s.httpError(w, r, http.StatusNotFound, errors.New("audit log not enabled (start with -data-dir)"))
		return
	}
	batches := s.audit.Batches()
	if batches == nil {
		batches = []auditlog.BatchInfo{}
	}
	writeJSON(w, http.StatusOK, auditListResponse{
		ChainHead: s.audit.ChainHead(),
		Pending:   s.audit.Pending(),
		Batches:   batches,
	})
}

func (s *Server) handleAuditProof(w http.ResponseWriter, r *http.Request) {
	if s.audit == nil {
		s.httpError(w, r, http.StatusNotFound, errors.New("audit log not enabled (start with -data-dir)"))
		return
	}
	id := r.PathValue("id")
	proof, err := s.audit.Proof(id)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, auditlog.ErrNotFound) {
			code = http.StatusNotFound
		}
		s.httpError(w, r, code, fmt.Errorf("verdict %q: %w", id, err))
		return
	}
	writeJSON(w, http.StatusOK, proof)
}
