package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sysrle/internal/fault"
	"sysrle/internal/jobs"
	"sysrle/internal/rle"
)

// getReadyz fetches /readyz and decodes the per-probe breakdown.
func getReadyz(t *testing.T, base string) (int, readyResponse) {
	t.Helper()
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body readyResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("readyz body did not decode: %v", err)
	}
	return resp.StatusCode, body
}

func probeByName(t *testing.T, body readyResponse, name string) ProbeResult {
	t.Helper()
	for _, p := range body.Probes {
		if p.Name == name {
			return p
		}
	}
	t.Fatalf("probe %q missing from %+v", name, body.Probes)
	return ProbeResult{}
}

// pollReadyz polls until /readyz returns want (sampling the body at
// that moment) or the deadline passes.
func pollReadyz(t *testing.T, base string, want int, timeout time.Duration) readyResponse {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var code int
	var body readyResponse
	for time.Now().Before(deadline) {
		code, body = getReadyz(t, base)
		if code == want {
			return body
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("readyz never returned %d (last: %d %+v)", want, code, body)
	return readyResponse{}
}

// flatImage builds a trivial h-row image pair that differs everywhere.
func flatImages(h int) (*rle.Image, *rle.Image) {
	a := rle.NewImage(24, h)
	b := rle.NewImage(24, h)
	for y := 0; y < h; y++ {
		a.Rows[y] = rle.Row{rle.Span(0, 5)}
		b.Rows[y] = rle.Row{rle.Span(3, 8)}
	}
	return a, b
}

func TestReadyzHealthy(t *testing.T) {
	s := New()
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	code, body := getReadyz(t, srv.URL)
	if code != http.StatusOK || !body.Ready {
		t.Fatalf("healthy server readyz = %d %+v", code, body)
	}
	for _, name := range []string{"workers", "job-queue", "ref-cache", "load-shed"} {
		if p := probeByName(t, body, name); !p.OK {
			t.Errorf("probe %s failing on an idle server: %+v", name, p)
		}
	}
}

// TestReadyzQueueSaturation is the e2e acceptance path: fill the job
// queue past the saturation threshold, watch /readyz flip to 503 with
// the job-queue probe failing, then drain and watch it recover to 200.
func TestReadyzQueueSaturation(t *testing.T) {
	plan := fault.Plan{Seed: 1, Rate: 1, Kinds: []fault.Kind{fault.KindSlow}, SlowFor: 300 * time.Millisecond}
	s := NewWith(Config{JobWorkers: 1, JobQueueDepth: 4, FaultPlan: &plan})
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	ref, scan := flatImages(1)
	// One scan occupies the lone worker (each row sleeps 300ms under
	// the slow fault); four more fill the queue to 100% ≥ the 90%
	// saturation threshold.
	if _, err := s.jobs.Submit(jobs.Spec{Ref: ref, Scans: []*rle.Image{scan}}); err != nil {
		t.Fatal(err)
	}
	// Admission is all-or-nothing, so wait for the worker to pull the
	// first scan off the queue before filling it completely.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if h := s.jobs.Health(); h.QueueDepth == 0 && h.Busy == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never picked up the blocking scan: %+v", s.jobs.Health())
		}
		time.Sleep(time.Millisecond)
	}
	id, err := s.jobs.Submit(jobs.Spec{Ref: ref, Scans: []*rle.Image{scan, scan, scan, scan}})
	if err != nil {
		t.Fatal(err)
	}

	body := pollReadyz(t, srv.URL, http.StatusServiceUnavailable, 5*time.Second)
	if body.Ready {
		t.Errorf("503 body claims ready: %+v", body)
	}
	if p := probeByName(t, body, "job-queue"); p.OK || !strings.Contains(p.Detail, "depth=") {
		t.Errorf("job-queue probe during saturation: %+v", p)
	}

	// Recovery: the queue drains and readiness returns.
	waitJob(t, s, id)
	pollReadyz(t, srv.URL, http.StatusOK, 10*time.Second)

	// The outage was counted.
	if n := s.reg.Counter("sysrle_http_not_ready_total").Value(); n < 1 {
		t.Errorf("not-ready counter = %d, want >= 1", n)
	}
}

// TestReadyzStuckWorker: a worker stuck on one scan past StuckAfter
// fails the workers probe, and readiness recovers when it finishes.
func TestReadyzStuckWorker(t *testing.T) {
	plan := fault.Plan{Seed: 2, Rate: 1, Kinds: []fault.Kind{fault.KindSlow}, SlowFor: 400 * time.Millisecond}
	s := NewWith(Config{JobWorkers: 1, StuckAfter: time.Millisecond, FaultPlan: &plan})
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	ref, scan := flatImages(1)
	id, err := s.jobs.Submit(jobs.Spec{Ref: ref, Scans: []*rle.Image{scan}})
	if err != nil {
		t.Fatal(err)
	}
	body := pollReadyz(t, srv.URL, http.StatusServiceUnavailable, 5*time.Second)
	if p := probeByName(t, body, "workers"); p.OK || !strings.Contains(p.Detail, "stuck=1") {
		t.Errorf("workers probe with a stuck worker: %+v", p)
	}
	waitJob(t, s, id)
	pollReadyz(t, srv.URL, http.StatusOK, 10*time.Second)
}

// TestReadyzCustomProbe: embedders can add probes, and one failing
// probe is enough to pull the instance from rotation.
func TestReadyzCustomProbe(t *testing.T) {
	s := New()
	defer s.Close()
	s.AddProbe("upstream", func() (bool, string) { return false, "dependency down" })
	srv := httptest.NewServer(s)
	defer srv.Close()

	code, body := getReadyz(t, srv.URL)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d, want 503", code)
	}
	if p := probeByName(t, body, "upstream"); p.OK || p.Detail != "dependency down" {
		t.Errorf("custom probe: %+v", p)
	}
}

// TestFaultInjectionEndToEnd exercises the -fault-inject wiring: with
// a chaos plan configured on the server, injected faults are detected
// and recovered by the verified engine, jobs still converge to the
// correct answer, and the fault telemetry is exported.
func TestFaultInjectionEndToEnd(t *testing.T) {
	plan := fault.Plan{Seed: 7, Rate: 0.5, Kinds: []fault.Kind{
		fault.KindCorruptRun, fault.KindDropRun, fault.KindStuckEmpty, fault.KindError,
	}}
	s := NewWith(Config{JobWorkers: 2, FaultPlan: &plan, ScanRetries: 2})
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	ref, scan := flatImages(48)
	id, err := s.jobs.Submit(jobs.Spec{Ref: ref, Scans: []*rle.Image{scan, ref.Clone()}})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, s, id)
	if st.State != jobs.StateDone {
		t.Fatalf("chaos job state = %s (results %+v)", st.State, st.Results)
	}
	// Scan 0 differs on every row; scan 1 is identical to the
	// reference. Faults must not change either verdict.
	if st.Results[0].Clean || st.Results[0].DiffPixels != 48*6 {
		t.Errorf("scan 0 result %+v, want 288 differing pixels", st.Results[0])
	}
	if !st.Results[1].Clean {
		t.Errorf("scan 1 result %+v, want clean", st.Results[1])
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(metrics), "sysrle_fault_injected_total") {
		t.Error("metrics missing sysrle_fault_injected_total")
	}
	if !strings.Contains(string(metrics), "sysrle_fault_recovered_total") {
		t.Error("metrics missing sysrle_fault_recovered_total")
	}
}

// waitJob polls the manager until the job is terminal.
func waitJob(t *testing.T, s *Server, id string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := s.jobs.Get(id)
		if err != nil {
			t.Fatalf("job %s vanished: %v", id, err)
		}
		if st.State.Terminal() && st.ScansDone == st.ScansTotal {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobs.Status{}
}
