package server

// Tests for the reference-registry and batch-job endpoints: the
// content-addressed upload flow, the ref=<id> hot path (including the
// acceptance criterion that M diffs against a registered reference
// decode it exactly once and produce byte-identical output), and the
// end-to-end async lifecycle.

import (
	"bytes"
	"encoding/json"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sysrle/internal/imageio"
	"sysrle/internal/jobs"
	"sysrle/internal/rle"
	"sysrle/internal/telemetry"
)

// newTestServer builds a server whose job pool is torn down with the
// test, returning it alongside its telemetry registry.
func newRegistryServer(t *testing.T, cfg Config) (*httptest.Server, *telemetry.Registry) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	s := NewWith(cfg)
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return srv, cfg.Registry
}

func decodeJSON(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
}

// postRef registers an image and returns its id.
func postRef(t *testing.T, url string, img *rle.Image) string {
	t.Helper()
	body, ctype := multipartBody(t, "rleb", map[string]*rle.Image{"image": img})
	resp, err := http.Post(url+"/v1/references", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("register: status %d: %s", resp.StatusCode, b)
	}
	var meta struct {
		ID string `json:"id"`
	}
	decodeJSON(t, resp, &meta)
	if meta.ID == "" {
		t.Fatal("empty reference id")
	}
	return meta.ID
}

func TestReferenceLifecycle(t *testing.T) {
	srv, _ := newRegistryServer(t, Config{})
	ref, _, _ := testBoards(t)

	id := postRef(t, srv.URL, ref)
	// Same content again: same id (content addressing is idempotent).
	if again := postRef(t, srv.URL, ref); again != id {
		t.Errorf("re-upload changed id: %s vs %s", again, id)
	}

	resp, err := http.Get(srv.URL + "/v1/references/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var meta struct {
		ID     string `json:"id"`
		Width  int    `json:"width"`
		Height int    `json:"height"`
		Runs   int    `json:"runs"`
	}
	decodeJSON(t, resp, &meta)
	if meta.ID != id || meta.Width != ref.Width || meta.Height != ref.Height || meta.Runs == 0 {
		t.Errorf("metadata %+v does not describe the upload", meta)
	}

	resp, err = http.Get(srv.URL + "/v1/references")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		References []struct {
			ID string `json:"id"`
		} `json:"references"`
	}
	decodeJSON(t, resp, &list)
	if len(list.References) != 1 || list.References[0].ID != id {
		t.Errorf("list = %+v, want just %s", list, id)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/references/"+id, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/v1/references/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("deleted reference still served: %d", resp.StatusCode)
	}
}

// postDiff runs /v1/diff with the given form files and query string,
// returning the response body.
func postDiff(t *testing.T, url, query string, files map[string]*rle.Image) []byte {
	t.Helper()
	body, ctype := multipartBody(t, "rleb", files)
	resp, err := http.Post(url+"/v1/diff?format=rleb"+query, ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diff status %d: %s", resp.StatusCode, out)
	}
	return out
}

// TestDiffByReferenceDecodesOnce is the acceptance criterion for the
// registry: M diffs against a registered reference decode it exactly
// once, and the ref=<id> path returns byte-identical output to the
// upload-both-files path.
func TestDiffByReferenceDecodesOnce(t *testing.T) {
	srv, reg := newRegistryServer(t, Config{})
	ref, scan, _ := testBoards(t)
	id := postRef(t, srv.URL, ref)

	want := postDiff(t, srv.URL, "", map[string]*rle.Image{"a": ref, "b": scan})

	const m = 7
	for i := 0; i < m; i++ {
		got := postDiff(t, srv.URL, "&ref="+id, map[string]*rle.Image{"b": scan})
		if !bytes.Equal(got, want) {
			t.Fatalf("diff %d: ref=%s output differs from upload-both path", i, id[:8])
		}
	}
	if v := reg.Counter("sysrle_refstore_decodes_total").Value(); v != 1 {
		t.Errorf("reference decoded %d times for %d diffs, want exactly 1", v, m)
	}
	if v := reg.Counter("sysrle_refstore_misses_total").Value(); v != 1 {
		t.Errorf("misses = %d, want 1", v)
	}
	if v := reg.Counter("sysrle_refstore_hits_total").Value(); v != m-1 {
		t.Errorf("hits = %d, want %d", v, m-1)
	}
}

func TestDiffUnknownReference(t *testing.T) {
	srv, _ := newRegistryServer(t, Config{})
	_, scan, _ := testBoards(t)
	body, ctype := multipartBody(t, "rleb", map[string]*rle.Image{"b": scan})
	resp, err := http.Post(srv.URL+"/v1/diff?ref=no-such-ref", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

func TestInspectByReferenceMatchesUpload(t *testing.T) {
	srv, _ := newRegistryServer(t, Config{})
	ref, scan, _ := testBoards(t)
	id := postRef(t, srv.URL, ref)

	run := func(query string, files map[string]*rle.Image) inspectResponse {
		body, ctype := multipartBody(t, "rleb", files)
		resp, err := http.Post(srv.URL+"/v1/inspect?min-area=2"+query, ctype, body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("inspect status %d: %s", resp.StatusCode, b)
		}
		var ir inspectResponse
		decodeJSON(t, resp, &ir)
		return ir
	}
	uploaded := run("", map[string]*rle.Image{"ref": ref, "scan": scan})
	byID := run("&ref="+id, map[string]*rle.Image{"scan": scan})
	if byID.DiffPixels != uploaded.DiffPixels || len(byID.Defects) != len(uploaded.Defects) {
		t.Errorf("ref=<id> inspection disagrees: %+v vs %+v", byID, uploaded)
	}
}

// jobForm builds a multipart job submission with N scans (field
// "scan" repeated) and optional other image fields.
func jobForm(t *testing.T, scans []*rle.Image, other map[string]*rle.Image) (io.Reader, string) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	writeImage := func(field string, img *rle.Image) {
		fw, err := mw.CreateFormFile(field, field+".rleb")
		if err != nil {
			t.Fatal(err)
		}
		if err := imageio.Write(fw, "rleb", img); err != nil {
			t.Fatal(err)
		}
	}
	for field, img := range other {
		writeImage(field, img)
	}
	for _, img := range scans {
		writeImage("scan", img)
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	return &buf, mw.FormDataContentType()
}

// pollJob polls until the job is terminal with all scans recorded.
func pollJob(t *testing.T, url, id string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("poll status %d: %s", resp.StatusCode, b)
		}
		var st jobs.Status
		decodeJSON(t, resp, &st)
		if st.State.Terminal() && st.ScansDone == st.ScansTotal {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never finished")
	return jobs.Status{}
}

// TestJobEndToEnd is the full async flow: upload reference → submit a
// batch of scans → poll to completion → fetch the per-scan report,
// and cross-check it against the synchronous inspect endpoint.
func TestJobEndToEnd(t *testing.T) {
	srv, _ := newRegistryServer(t, Config{JobWorkers: 2})
	ref, scan, _ := testBoards(t)
	id := postRef(t, srv.URL, ref)

	// Synchronous single inspection as ground truth.
	body, ctype := multipartBody(t, "rleb", map[string]*rle.Image{"scan": scan})
	resp, err := http.Post(srv.URL+"/v1/inspect?min-area=2&ref="+id, ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	var sync inspectResponse
	decodeJSON(t, resp, &sync)

	form, formType := jobForm(t, []*rle.Image{scan, ref, scan}, nil)
	resp, err = http.Post(srv.URL+"/v1/jobs?min-area=2&ref="+id, formType, form)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("submit status %d: %s", resp.StatusCode, b)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/jobs/") {
		t.Errorf("Location = %q", loc)
	}
	var accepted jobs.Status
	decodeJSON(t, resp, &accepted)
	if accepted.ID == "" || accepted.State.Terminal() && accepted.ScansDone != accepted.ScansTotal {
		t.Fatalf("accepted snapshot %+v", accepted)
	}

	final := pollJob(t, srv.URL, accepted.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("state %s (%s)", final.State, final.Error)
	}
	if len(final.Results) != 3 {
		t.Fatalf("%d results", len(final.Results))
	}
	if final.Results[0].Defects != len(sync.Defects) || final.Results[0].DiffPixels != sync.DiffPixels {
		t.Errorf("batch result %+v disagrees with sync inspect (%d defects, %d px)",
			final.Results[0], len(sync.Defects), sync.DiffPixels)
	}
	if !final.Results[1].Clean {
		t.Error("reference-vs-itself scan not clean")
	}

	// DELETE cancels/removes; a later GET 404s.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+accepted.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/v1/jobs/" + accepted.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("deleted job still pollable: %d", resp.StatusCode)
	}
}

func TestJobInlineReference(t *testing.T) {
	srv, _ := newRegistryServer(t, Config{JobWorkers: 1})
	ref, scan, _ := testBoards(t)
	form, formType := jobForm(t, []*rle.Image{scan}, map[string]*rle.Image{"ref": ref})
	resp, err := http.Post(srv.URL+"/v1/jobs?min-area=2", formType, form)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("submit status %d: %s", resp.StatusCode, b)
	}
	var st jobs.Status
	decodeJSON(t, resp, &st)
	if final := pollJob(t, srv.URL, st.ID); final.State != jobs.StateDone {
		t.Errorf("state %s (%s)", final.State, final.Error)
	}
}

func TestJobSubmitErrors(t *testing.T) {
	srv, _ := newRegistryServer(t, Config{JobWorkers: 1, JobQueueDepth: 2})
	ref, scan, _ := testBoards(t)
	id := postRef(t, srv.URL, ref)

	cases := []struct {
		name  string
		query string
		form  func() (io.Reader, string)
		want  int
	}{
		{"no scans", "?ref=" + id, func() (io.Reader, string) {
			return jobForm(t, nil, map[string]*rle.Image{"unrelated": scan})
		}, http.StatusBadRequest},
		{"no reference", "", func() (io.Reader, string) {
			return jobForm(t, []*rle.Image{scan}, nil)
		}, http.StatusBadRequest},
		{"unknown reference", "?ref=feedface", func() (io.Reader, string) {
			return jobForm(t, []*rle.Image{scan}, nil)
		}, http.StatusNotFound},
		{"bad engine", "?engine=warp&ref=" + id, func() (io.Reader, string) {
			return jobForm(t, []*rle.Image{scan}, nil)
		}, http.StatusBadRequest},
		{"queue overflow", "?ref=" + id, func() (io.Reader, string) {
			return jobForm(t, []*rle.Image{scan, scan, scan}, nil)
		}, http.StatusTooManyRequests},
	}
	for _, tc := range cases {
		body, ctype := tc.form()
		resp, err := http.Post(srv.URL+"/v1/jobs"+tc.query, ctype, body)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
		if tc.want == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s: 429 without Retry-After", tc.name)
		}
	}
}

func TestJobList(t *testing.T) {
	srv, _ := newRegistryServer(t, Config{JobWorkers: 1})
	ref, scan, _ := testBoards(t)
	form, formType := jobForm(t, []*rle.Image{scan}, map[string]*rle.Image{"ref": ref})
	resp, err := http.Post(srv.URL+"/v1/jobs", formType, form)
	if err != nil {
		t.Fatal(err)
	}
	var st jobs.Status
	decodeJSON(t, resp, &st)
	pollJob(t, srv.URL, st.ID)

	resp, err = http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []jobs.Status `json:"jobs"`
	}
	decodeJSON(t, resp, &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Errorf("job list %+v", list)
	}
}

// TestJobMetricsExposed checks the subsystem's telemetry reaches
// /metrics.
func TestJobMetricsExposed(t *testing.T) {
	srv, _ := newRegistryServer(t, Config{JobWorkers: 1})
	ref, scan, _ := testBoards(t)
	id := postRef(t, srv.URL, ref)
	form, formType := jobForm(t, []*rle.Image{scan}, nil)
	resp, err := http.Post(srv.URL+"/v1/jobs?ref="+id, formType, form)
	if err != nil {
		t.Fatal(err)
	}
	var st jobs.Status
	decodeJSON(t, resp, &st)
	pollJob(t, srv.URL, st.ID)

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, metric := range []string{
		"sysrle_jobs_submitted_total 1",
		"sysrle_jobs_scans_total 1",
		"sysrle_refstore_refs 1",
		"sysrle_refstore_misses_total 1",
	} {
		if !strings.Contains(string(text), metric) {
			t.Errorf("/metrics missing %q", metric)
		}
	}
}
