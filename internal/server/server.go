// Package server implements the HTTP face of the inspection system:
// the "on-line automatic inspection" service the paper's application
// (§1) runs as — boards stream in, compressed-domain differences and
// defect reports stream out. Served by cmd/sysdiffd.
//
// Endpoints:
//
//	GET  /healthz             → 200 "ok"
//	POST /v1/diff             → multipart form, files "a" and "b";
//	                            query: engine=lockstep|channel|sequential|bus,
//	                            format=pbm|pbm-plain|png|rlet|rleb.
//	                            Response body is the encoded difference image;
//	                            X-Sysrle-* headers carry engine statistics.
//	POST /v1/inspect          → multipart form, files "ref" and "scan";
//	                            query: engine=..., min-area=N.
//	                            Response is a JSON defect report.
//
// Uploaded images may be PBM (P1/P4), PNG, RLET or RLEB; the format
// is sniffed.
package server

import (
	"encoding/json"
	"fmt"
	"mime/multipart"
	"net/http"
	"strconv"

	"sysrle"
	"sysrle/internal/imageio"
	"sysrle/internal/inspect"
	"sysrle/internal/rle"
)

// MaxUploadBytes bounds one multipart upload.
const MaxUploadBytes = 64 << 20

// New returns the service handler.
func New() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /v1/diff", handleDiff)
	mux.HandleFunc("POST /v1/inspect", handleInspect)
	mux.HandleFunc("POST /v1/align", handleAlign)
	return mux
}

func engineFromQuery(r *http.Request) (sysrle.Engine, error) {
	switch name := r.URL.Query().Get("engine"); name {
	case "", "lockstep":
		return sysrle.NewLockstep(), nil
	case "channel":
		return sysrle.NewChannel(), nil
	case "sequential":
		return sysrle.NewSequential(), nil
	case "bus":
		return sysrle.NewBus(0), nil
	default:
		return nil, fmt.Errorf("unknown engine %q", name)
	}
}

func formImage(r *http.Request, field string) (*rle.Image, error) {
	file, _, err := r.FormFile(field)
	if err != nil {
		return nil, fmt.Errorf("missing upload %q: %v", field, err)
	}
	defer file.Close()
	img, err := imageio.Read(file)
	if err != nil {
		return nil, fmt.Errorf("upload %q: %v", field, err)
	}
	return img, nil
}

func parseUploads(w http.ResponseWriter, r *http.Request, fieldA, fieldB string) (*rle.Image, *rle.Image, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, MaxUploadBytes)
	if err := r.ParseMultipartForm(MaxUploadBytes); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("parsing multipart form: %v", err))
		return nil, nil, false
	}
	defer func(f *multipart.Form) {
		if f != nil {
			_ = f.RemoveAll()
		}
	}(r.MultipartForm)
	a, err := formImage(r, fieldA)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return nil, nil, false
	}
	b, err := formImage(r, fieldB)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return nil, nil, false
	}
	return a, b, true
}

func handleDiff(w http.ResponseWriter, r *http.Request) {
	engine, err := engineFromQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "pbm"
	}
	if !validFormat(format) {
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (have %v)", format, imageio.Formats()))
		return
	}
	a, b, ok := parseUploads(w, r, "a", "b")
	if !ok {
		return
	}
	diff, stats, err := sysrle.DiffImageWith(a, b, engine, 0)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	w.Header().Set("Content-Type", imageio.ContentType(format))
	w.Header().Set("X-Sysrle-Engine", engine.Name())
	w.Header().Set("X-Sysrle-Rows-Differing", strconv.Itoa(stats.RowsDiffering))
	w.Header().Set("X-Sysrle-Iterations-Total", strconv.Itoa(stats.TotalIterations))
	w.Header().Set("X-Sysrle-Iterations-Max-Row", strconv.Itoa(stats.MaxRowIterations))
	w.Header().Set("X-Sysrle-Diff-Pixels", strconv.Itoa(diff.Area()))
	// The format was validated up front, so a write error here can
	// only be a broken connection; nothing useful remains to send.
	_ = imageio.Write(w, format, diff)
}

func validFormat(format string) bool {
	for _, f := range imageio.Formats() {
		if f == format {
			return true
		}
	}
	return false
}

// inspectResponse is the JSON shape of /v1/inspect.
type inspectResponse struct {
	Engine           string           `json:"engine"`
	RowsCompared     int              `json:"rows_compared"`
	RowsDiffering    int              `json:"rows_differing"`
	DiffPixels       int              `json:"diff_pixels"`
	DiffRuns         int              `json:"diff_runs"`
	TotalIterations  int              `json:"iterations_total"`
	MaxRowIterations int              `json:"iterations_max_row"`
	Clean            bool             `json:"clean"`
	AlignDX          int              `json:"align_dx"`
	AlignDY          int              `json:"align_dy"`
	Defects          []inspect.Defect `json:"defects"`
}

func handleInspect(w http.ResponseWriter, r *http.Request) {
	engine, err := engineFromQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	minArea := 0
	if s := r.URL.Query().Get("min-area"); s != "" {
		minArea, err = strconv.Atoi(s)
		if err != nil || minArea < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad min-area %q", s))
			return
		}
	}
	maxAlign := 0
	if s := r.URL.Query().Get("align"); s != "" {
		maxAlign, err = strconv.Atoi(s)
		if err != nil || maxAlign < 0 || maxAlign > 256 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad align %q (want 0..256)", s))
			return
		}
	}
	ref, scan, ok := parseUploads(w, r, "ref", "scan")
	if !ok {
		return
	}
	ins := &inspect.Inspector{Engine: engine, MinDefectArea: minArea, MaxAlignShift: maxAlign}
	rep, err := ins.Compare(ref, scan)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	resp := inspectResponse{
		Engine:           engine.Name(),
		RowsCompared:     rep.RowsCompared,
		RowsDiffering:    rep.RowsDiffering,
		DiffPixels:       rep.DiffArea,
		DiffRuns:         rep.DiffRuns,
		TotalIterations:  rep.TotalIterations,
		MaxRowIterations: rep.MaxRowIterations,
		Clean:            rep.Clean(),
		AlignDX:          rep.AlignDX,
		AlignDY:          rep.AlignDY,
		Defects:          rep.Defects,
	}
	if resp.Defects == nil {
		resp.Defects = []inspect.Defect{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// alignResponse is the JSON shape of /v1/align.
type alignResponse struct {
	DX           int `json:"dx"`
	DY           int `json:"dy"`
	ResidualArea int `json:"residual_area"`
}

func handleAlign(w http.ResponseWriter, r *http.Request) {
	maxShift := 4
	if s := r.URL.Query().Get("max-shift"); s != "" {
		var err error
		maxShift, err = strconv.Atoi(s)
		if err != nil || maxShift < 1 || maxShift > 64 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad max-shift %q (want 1..64)", s))
			return
		}
	}
	ref, scan, ok := parseUploads(w, r, "ref", "scan")
	if !ok {
		return
	}
	if ref.Width != scan.Width || ref.Height != scan.Height {
		httpError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("size mismatch %dx%d vs %dx%d", ref.Width, ref.Height, scan.Width, scan.Height))
		return
	}
	dx, dy, area := inspect.Align(ref, scan, maxShift)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(alignResponse{DX: dx, DY: dy, ResidualArea: area})
}

type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}
