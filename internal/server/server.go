// Package server implements the HTTP face of the inspection system:
// the "on-line automatic inspection" service the paper's application
// (§1) runs as — boards stream in, compressed-domain differences and
// defect reports stream out. Served by cmd/sysdiffd.
//
// Endpoints:
//
//	GET  /healthz             → 200 "ok"
//	GET  /metrics             → telemetry registry in Prometheus text
//	                            exposition format: request counts and
//	                            status classes, per-endpoint latency
//	                            histograms, bytes in/out, in-flight
//	                            gauge, per-engine iteration totals.
//	GET  /debug/vars          → the same registry as expvar-style JSON.
//	POST /v1/diff             → multipart form, files "a" and "b";
//	                            query: engine=lockstep|channel|sequential|bus,
//	                            format=pbm|pbm-plain|png|rlet|rleb.
//	                            Response body is the encoded difference image;
//	                            X-Sysrle-* headers carry engine statistics.
//	POST /v1/inspect          → multipart form, files "ref" and "scan";
//	                            query: engine=..., min-area=N, align=N
//	                            (max registration shift, 0..256).
//	                            Response is a JSON defect report.
//	POST /v1/align            → multipart form, files "ref" and "scan";
//	                            query: max-shift=N (1..64, default 4).
//	                            Response is a JSON {dx, dy, residual_area}.
//
// Uploaded images may be PBM (P1/P4), PGM (P2/P5), PNG, RLET or RLEB;
// the format is sniffed. Uploads over the configured size limit get
// 413; when MaxInFlight requests are already being served, further
// ones get 429 with Retry-After (except /healthz, /metrics and
// /debug/vars, which bypass the limiter and the per-request timeout so
// the service stays observable under saturation). Every response
// carries an X-Request-Id, also attached to the access log lines.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"mime/multipart"
	"net/http"
	"strconv"
	"time"

	"sysrle"
	"sysrle/internal/imageio"
	"sysrle/internal/inspect"
	"sysrle/internal/rle"
	"sysrle/internal/telemetry"
)

// MaxUploadBytes is the default bound on one multipart upload.
const MaxUploadBytes = 64 << 20

// multipartMemory is ParseMultipartForm's in-memory threshold: parts
// beyond it spill to temp files, so concurrent large uploads cost disk,
// not RAM. (Passing the full upload limit here — the old behavior —
// buffered every upload entirely in memory.)
const multipartMemory = 8 << 20

// Config tunes the service; the zero value gets production defaults.
type Config struct {
	// MaxUploadBytes bounds one request body; 0 means MaxUploadBytes
	// (64 MiB), negative disables the limit.
	MaxUploadBytes int64
	// MaxInFlight bounds concurrently served requests; beyond it
	// requests are shed with 429. 0 means DefaultMaxInFlight;
	// negative disables the limiter.
	MaxInFlight int
	// RequestTimeout bounds one request end to end (503 on expiry).
	// 0 means DefaultRequestTimeout; negative disables the timeout.
	RequestTimeout time.Duration
	// Logger receives structured access and error logs; nil discards.
	Logger *slog.Logger
	// Registry receives service telemetry; nil creates a private one.
	Registry *telemetry.Registry
}

// Default limits for Config zero values.
const (
	DefaultMaxInFlight    = 64
	DefaultRequestTimeout = 30 * time.Second
)

// Server is the configured service; it is an http.Handler factory,
// not a handler itself — see New/NewWith.
type Server struct {
	cfg Config
	log *slog.Logger
	reg *telemetry.Registry
}

// New returns the service handler with default configuration (and
// logging discarded — pass a Config with a Logger for production).
func New() http.Handler { return NewWith(Config{}) }

// NewWith returns the service handler for the given configuration.
func NewWith(cfg Config) http.Handler {
	if cfg.MaxUploadBytes == 0 {
		cfg.MaxUploadBytes = MaxUploadBytes
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	s := &Server{cfg: cfg, log: cfg.Logger, reg: cfg.Registry}
	if s.log == nil {
		s.log = discardLogger()
	}
	if s.reg == nil {
		s.reg = telemetry.NewRegistry()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = s.reg.WriteJSON(w)
	})
	mux.HandleFunc("POST /v1/diff", s.handleDiff)
	mux.HandleFunc("POST /v1/inspect", s.handleInspect)
	mux.HandleFunc("POST /v1/align", s.handleAlign)
	return s.wrap(mux)
}

// recordEngine feeds one engine run's facade stats into telemetry.
func (s *Server) recordEngine(engine string, totalIterations, rowsDiffering int) {
	s.reg.Help("sysrle_engine_iterations_total", "Systolic iterations executed, by engine.")
	eng := telemetry.L("engine", engine)
	s.reg.Counter("sysrle_engine_iterations_total", eng).Add(int64(totalIterations))
	s.reg.Counter("sysrle_engine_rows_differing_total", eng).Add(int64(rowsDiffering))
	s.reg.Counter("sysrle_engine_runs_total", eng).Inc()
}

func engineFromQuery(r *http.Request) (sysrle.Engine, error) {
	switch name := r.URL.Query().Get("engine"); name {
	case "", "lockstep":
		return sysrle.NewLockstep(), nil
	case "channel":
		return sysrle.NewChannel(), nil
	case "sequential":
		return sysrle.NewSequential(), nil
	case "bus":
		return sysrle.NewBus(0), nil
	default:
		return nil, fmt.Errorf("unknown engine %q", name)
	}
}

func formImage(r *http.Request, field string) (*rle.Image, error) {
	file, _, err := r.FormFile(field)
	if err != nil {
		return nil, fmt.Errorf("missing upload %q: %v", field, err)
	}
	defer file.Close()
	img, err := imageio.Read(file)
	if err != nil {
		return nil, fmt.Errorf("upload %q: %v", field, err)
	}
	return img, nil
}

func (s *Server) parseUploads(w http.ResponseWriter, r *http.Request, fieldA, fieldB string) (*rle.Image, *rle.Image, bool) {
	if s.cfg.MaxUploadBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	}
	if err := r.ParseMultipartForm(multipartMemory); err != nil {
		code := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			code = http.StatusRequestEntityTooLarge
		}
		httpError(w, code, fmt.Errorf("parsing multipart form: %v", err))
		return nil, nil, false
	}
	defer func(f *multipart.Form) {
		if f != nil {
			_ = f.RemoveAll()
		}
	}(r.MultipartForm)
	a, err := formImage(r, fieldA)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return nil, nil, false
	}
	b, err := formImage(r, fieldB)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return nil, nil, false
	}
	return a, b, true
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	engine, err := engineFromQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "pbm"
	}
	if !validFormat(format) {
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (have %v)", format, imageio.Formats()))
		return
	}
	a, b, ok := s.parseUploads(w, r, "a", "b")
	if !ok {
		return
	}
	diff, stats, err := sysrle.DiffImageWith(a, b, engine, 0)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.recordEngine(engine.Name(), stats.TotalIterations, stats.RowsDiffering)
	w.Header().Set("Content-Type", imageio.ContentType(format))
	w.Header().Set("X-Sysrle-Engine", engine.Name())
	w.Header().Set("X-Sysrle-Rows-Differing", strconv.Itoa(stats.RowsDiffering))
	w.Header().Set("X-Sysrle-Iterations-Total", strconv.Itoa(stats.TotalIterations))
	w.Header().Set("X-Sysrle-Iterations-Max-Row", strconv.Itoa(stats.MaxRowIterations))
	w.Header().Set("X-Sysrle-Diff-Pixels", strconv.Itoa(diff.Area()))
	// The format was validated up front, so a write error here can
	// only be a broken connection; nothing useful remains to send.
	_ = imageio.Write(w, format, diff)
}

func validFormat(format string) bool {
	for _, f := range imageio.Formats() {
		if f == format {
			return true
		}
	}
	return false
}

// inspectResponse is the JSON shape of /v1/inspect.
type inspectResponse struct {
	Engine           string           `json:"engine"`
	RowsCompared     int              `json:"rows_compared"`
	RowsDiffering    int              `json:"rows_differing"`
	DiffPixels       int              `json:"diff_pixels"`
	DiffRuns         int              `json:"diff_runs"`
	TotalIterations  int              `json:"iterations_total"`
	MaxRowIterations int              `json:"iterations_max_row"`
	Clean            bool             `json:"clean"`
	AlignDX          int              `json:"align_dx"`
	AlignDY          int              `json:"align_dy"`
	Defects          []inspect.Defect `json:"defects"`
}

func (s *Server) handleInspect(w http.ResponseWriter, r *http.Request) {
	engine, err := engineFromQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	minArea := 0
	if q := r.URL.Query().Get("min-area"); q != "" {
		minArea, err = strconv.Atoi(q)
		if err != nil || minArea < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad min-area %q", q))
			return
		}
	}
	maxAlign := 0
	if q := r.URL.Query().Get("align"); q != "" {
		maxAlign, err = strconv.Atoi(q)
		if err != nil || maxAlign < 0 || maxAlign > 256 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad align %q (want 0..256)", q))
			return
		}
	}
	ref, scan, ok := s.parseUploads(w, r, "ref", "scan")
	if !ok {
		return
	}
	ins := &inspect.Inspector{Engine: engine, MinDefectArea: minArea, MaxAlignShift: maxAlign}
	rep, err := ins.Compare(ref, scan)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.recordEngine(engine.Name(), rep.TotalIterations, rep.RowsDiffering)
	resp := inspectResponse{
		Engine:           engine.Name(),
		RowsCompared:     rep.RowsCompared,
		RowsDiffering:    rep.RowsDiffering,
		DiffPixels:       rep.DiffArea,
		DiffRuns:         rep.DiffRuns,
		TotalIterations:  rep.TotalIterations,
		MaxRowIterations: rep.MaxRowIterations,
		Clean:            rep.Clean(),
		AlignDX:          rep.AlignDX,
		AlignDY:          rep.AlignDY,
		Defects:          rep.Defects,
	}
	if resp.Defects == nil {
		resp.Defects = []inspect.Defect{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// alignResponse is the JSON shape of /v1/align.
type alignResponse struct {
	DX           int `json:"dx"`
	DY           int `json:"dy"`
	ResidualArea int `json:"residual_area"`
}

func (s *Server) handleAlign(w http.ResponseWriter, r *http.Request) {
	maxShift := 4
	if q := r.URL.Query().Get("max-shift"); q != "" {
		var err error
		maxShift, err = strconv.Atoi(q)
		if err != nil || maxShift < 1 || maxShift > 64 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad max-shift %q (want 1..64)", q))
			return
		}
	}
	ref, scan, ok := s.parseUploads(w, r, "ref", "scan")
	if !ok {
		return
	}
	if ref.Width != scan.Width || ref.Height != scan.Height {
		httpError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("size mismatch %dx%d vs %dx%d", ref.Width, ref.Height, scan.Width, scan.Height))
		return
	}
	dx, dy, area := inspect.Align(ref, scan, maxShift)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(alignResponse{DX: dx, DY: dy, ResidualArea: area})
}

type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}
