// Package server implements the HTTP face of the inspection system:
// the "on-line automatic inspection" service the paper's application
// (§1) runs as — boards stream in, compressed-domain differences and
// defect reports stream out. Served by cmd/sysdiffd.
//
// Endpoints:
//
//	GET  /healthz             → 200 "ok" (liveness: the process serves)
//	GET  /readyz              → readiness probes as JSON: worker-pool
//	                            liveness (no stuck workers), job-queue
//	                            saturation, reference-cache budget
//	                            pressure and load-shed state. 200 when
//	                            every probe passes, 503 with the same
//	                            per-probe breakdown when any fails.
//	GET  /metrics             → telemetry registry in Prometheus text
//	                            exposition format: request counts and
//	                            status classes, per-endpoint latency
//	                            histograms, bytes in/out, in-flight
//	                            gauge, per-engine iteration totals.
//	GET  /debug/vars          → the same registry as expvar-style JSON.
//	POST /v1/diff             → multipart form, files "a" and "b";
//	                            query: engine=<name> (any registry
//	                            engine, see sysrle.EngineNames:
//	                            lockstep|channel|sequential|sparse|
//	                            stream|bus|verified),
//	                            format=pbm|pbm-plain|png|rlet|rleb.
//	                            Response body is the encoded difference image;
//	                            X-Sysrle-* headers carry engine statistics.
//	POST /v1/inspect          → multipart form, files "ref" and "scan";
//	                            query: engine=..., min-area=N, align=N
//	                            (max registration shift, 0..256).
//	                            Response is a JSON defect report.
//	POST /v1/align            → multipart form, files "ref" and "scan";
//	                            query: max-shift=N (1..64, default 4).
//	                            Response is a JSON {dx, dy, residual_area}.
//	POST /v1/docclean         → multipart form, file "image"; query:
//	                            max-speckle=N, min-line=N, close-x=N,
//	                            close-y=N, min-block=N, keep-lines=bool
//	                            (absent values default from the page
//	                            size), format=pbm|png|rlet|... With no
//	                            format the response is the JSON cleanup
//	                            report (speckles removed, H/V line
//	                            counts, block bounding boxes); with a
//	                            format it is the cleaned page encoded in
//	                            that format, the report folded into
//	                            X-Sysrle-* headers. Single pages only —
//	                            batches go through /v1/jobs.
//	POST   /v1/references     → multipart form, file "image". Registers
//	                            the image in the content-addressed
//	                            reference registry and returns 201 with
//	                            its metadata; the id is the hex SHA-256
//	                            of the canonical RLEB encoding, so
//	                            re-uploading identical content is
//	                            idempotent.
//	GET    /v1/references     → JSON list of registered references.
//	GET    /v1/references/{id}→ metadata for one reference (404 if not
//	                            registered or expired).
//	DELETE /v1/references/{id}→ unregister; 204, or 404.
//	POST   /v1/jobs           → multipart form: one or more files under
//	                            field "scan", plus either ?ref=<id>
//	                            (or form value "ref") naming a stored
//	                            reference, or a file "ref" uploaded
//	                            inline. Query: engine=..., min-area=N,
//	                            align=N as for /v1/inspect. With
//	                            ?type=docclean the scans instead run the
//	                            document-cleanup pipeline (no reference,
//	                            no engine; tuning query parameters as
//	                            for /v1/docclean). Returns 202
//	                            with the job snapshot; 429 with
//	                            Retry-After when the job queue cannot
//	                            take every scan (backpressure is
//	                            all-or-nothing, never a half-enqueued
//	                            job); 404 for an unknown reference.
//	GET    /v1/jobs           → JSON list of retained job snapshots.
//	GET    /v1/jobs/{id}      → job snapshot: state, per-scan progress
//	                            and results.
//	DELETE /v1/jobs/{id}      → cancel (if still running) and remove
//	                            the job record; 204, or 404.
//	GET    /v1/audit          → audit-log summary: the Merkle chain
//	                            head, pending verdict count and sealed
//	                            batch index. 404 unless the service is
//	                            durable (Config.DataDir).
//	GET    /v1/audit/{id}/proof → inclusion proof for one inspection
//	                            verdict (ScanResult.audit_id): the
//	                            verdict, its Merkle audit path, the
//	                            batch root and the chain link — enough
//	                            to verify offline against a pinned
//	                            chain head (auditctl verify-proof).
//
// # Durability
//
// With Config.DataDir set the service survives kill -9: references
// persist in a content-addressed blob store (re-hydrated at startup,
// so ref=<id> works across restarts with zero re-uploads),
// acknowledged batch jobs are write-ahead journaled (incomplete scans
// re-run at the next start; finished jobs come back pollable and
// never re-run) and every successful inspect verdict is sealed into
// the Merkle audit log. /readyz gains a "storage" probe that fails
// while any persistence component holds a sticky write error. Without
// DataDir everything above is in-memory and this paragraph does not
// apply.
//
// # Async API contract
//
// A job moves queued → running → done | failed | canceled, and never
// leaves a terminal state. Clients poll GET /v1/jobs/{id}: the
// snapshot carries scans_total/scans_done for progress and a
// per-scan results array (index, clean, defect count, diff pixels,
// iterations, or an error string) that fills in as scans complete;
// completion order across scans is unspecified. "failed" means at
// least one scan errored — the rest still ran and their results are
// present. DELETE cancels: scans not yet started are skipped, a scan
// already on a worker finishes and is recorded. Finished jobs stay
// pollable for the configured retention window, then are
// garbage-collected, after which GET returns 404; polling clients
// must treat 404 after a terminal snapshot as "already collected".
//
// The ref=<id> query parameter on /v1/diff, /v1/inspect and /v1/align
// substitutes a registered reference for the first upload ("a" and
// "ref" respectively), so the hot path skips both the upload and the
// decode: the registry caches decoded references in an LRU under a
// byte budget and hands the same decoded image to every request.
//
// Uploaded images may be PBM (P1/P4), PGM (P2/P5), PNG, RLET or RLEB;
// the format is sniffed. Uploads over the configured size limit get
// 413; when MaxInFlight requests are already being served, further
// ones get 429 with Retry-After (except /healthz, /readyz, /metrics
// and /debug/vars, which bypass the limiter and the per-request
// timeout so the service stays observable under saturation). Every
// response carries an X-Request-Id, also attached to the access log
// lines.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"mime/multipart"
	"net/http"
	"strconv"
	"sync"
	"time"

	"sysrle"
	"sysrle/internal/auditlog"
	"sysrle/internal/core"
	"sysrle/internal/fault"
	"sysrle/internal/imageio"
	"sysrle/internal/inspect"
	"sysrle/internal/jobs"
	"sysrle/internal/refstore"
	"sysrle/internal/rle"
	"sysrle/internal/store"
	"sysrle/internal/telemetry"
	"sysrle/internal/wal"
)

// MaxUploadBytes is the default bound on one multipart upload.
const MaxUploadBytes = 64 << 20

// multipartMemory is ParseMultipartForm's in-memory threshold: parts
// beyond it spill to temp files, so concurrent large uploads cost disk,
// not RAM. (Passing the full upload limit here — the old behavior —
// buffered every upload entirely in memory.)
const multipartMemory = 8 << 20

// Config tunes the service; the zero value gets production defaults.
type Config struct {
	// MaxUploadBytes bounds one request body; 0 means MaxUploadBytes
	// (64 MiB), negative disables the limit.
	MaxUploadBytes int64
	// MaxInFlight bounds concurrently served requests; beyond it
	// requests are shed with 429. 0 means DefaultMaxInFlight;
	// negative disables the limiter.
	MaxInFlight int
	// RequestTimeout bounds one request end to end (503 on expiry).
	// 0 means DefaultRequestTimeout; negative disables the timeout.
	RequestTimeout time.Duration
	// Logger receives structured access and error logs; nil discards.
	Logger *slog.Logger
	// Registry receives service telemetry; nil creates a private one.
	Registry *telemetry.Registry

	// RefCacheBytes bounds the decoded-reference LRU; 0 means
	// refstore.DefaultCacheBytes, negative disables decoded caching.
	RefCacheBytes int64
	// RefTTL evicts references idle for this long; 0 keeps forever.
	RefTTL time.Duration
	// JobWorkers sizes the batch-inspection pool; 0 means
	// jobs.DefaultWorkers.
	JobWorkers int
	// JobQueueDepth bounds queued scans across all jobs (429 beyond
	// it); 0 means jobs.DefaultQueueDepth.
	JobQueueDepth int
	// JobRetention keeps finished jobs pollable; 0 means
	// jobs.DefaultRetention, negative retains forever.
	JobRetention time.Duration

	// ScanTimeout bounds one batch-scan attempt; 0 disables.
	ScanTimeout time.Duration
	// ScanRetries retries failed batch scans this many times with
	// capped exponential backoff before quarantining them; 0 disables.
	ScanRetries int
	// StuckAfter is how long one scan may hold a jobs worker before
	// the /readyz worker probe reports it stuck; 0 means
	// jobs.DefaultStuckAfter.
	StuckAfter time.Duration
	// FaultPlan, when non-nil, enables chaos mode: every batch-scan
	// engine is wrapped with seeded fault injection per the plan plus
	// the detect-and-recover verified engine, so injected faults are
	// caught, counted (sysrle_fault_injected_total,
	// sysrle_fault_recovered_total) and recomputed on the sequential
	// baseline. Dev/test only — it roughly doubles scan cost.
	FaultPlan *fault.Plan

	// DataDir, when non-empty, makes the service durable: references
	// persist in a content-addressed blob store under DataDir/refs,
	// the job lifecycle is write-ahead journaled under DataDir/wal
	// (acknowledged submissions survive kill -9 and resume at the next
	// start), and inspection verdicts land in the Merkle audit log
	// under DataDir/audit. Empty (the default) keeps everything
	// in-memory, zero-config.
	DataDir string
	// FS substitutes the filesystem persistence runs on (crash and
	// chaos tests); nil means the real disk. Ignored without DataDir.
	FS store.FS
	// WALSync is the journal fsync policy (always/batch/none); the
	// zero value is wal.SyncAlways. WALSyncEvery is the batch-policy
	// cadence in appends.
	WALSync      wal.SyncPolicy
	WALSyncEvery int
	// AuditBatch is the audit-log Merkle batch size and
	// AuditFlushInterval the timer that seals a partial batch; zero
	// values get auditlog defaults, a negative interval disables the
	// timer.
	AuditBatch         int
	AuditFlushInterval time.Duration
	// DiskFaultPlan, when non-nil, wraps the persistence filesystem
	// with seeded disk-fault injection (torn writes, ENOSPC, bit rot,
	// fsync failures, latency) per the plan. Dev/test only.
	DiskFaultPlan *fault.DiskPlan
}

// Default limits for Config zero values.
const (
	DefaultMaxInFlight    = 64
	DefaultRequestTimeout = 30 * time.Second
)

// Server is the configured service. It serves HTTP (the full
// middleware stack is assembled at construction) and owns the
// reference registry and the batch-job worker pool; Close releases
// the pool's goroutines.
type Server struct {
	cfg     Config
	log     *slog.Logger
	reg     *telemetry.Registry
	refs    *refstore.Store
	jobs    *jobs.Manager
	handler http.Handler

	// Durable tier (nil without Config.DataDir).
	refBlobs *store.Store
	jobBlobs *store.Store
	journal  *wal.WAL
	audit    *auditlog.Log

	probeMu   sync.Mutex
	probes    []probe
	inFlight  *telemetry.Gauge
	notReadyC *telemetry.Counter
}

// ServeHTTP dispatches through the middleware stack.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// Close stops the batch-job worker pool (in-flight and queued scans
// finish; new submissions get 503) and then, when the service is
// durable, seals the persistence tier: the audit log flushes its
// pending batch and the journal syncs and closes — in that order, so
// every verdict recorded by a finishing scan is on disk before the
// journal that references it stops accepting records.
func (s *Server) Close() {
	s.jobs.Close()
	if s.audit != nil {
		if err := s.audit.Close(); err != nil {
			s.log.Warn("audit log close", "err", err)
		}
	}
	if s.journal != nil {
		if err := s.journal.Close(); err != nil {
			s.log.Warn("journal close", "err", err)
		}
	}
}

// Refs exposes the reference registry (tests, preloading a golden
// reference at startup).
func (s *Server) Refs() *refstore.Store { return s.refs }

// New returns the service handler with default configuration (and
// logging discarded — pass a Config with a Logger for production).
func New() *Server { return NewWith(Config{}) }

// NewWith returns the service handler for the given configuration.
// It panics when Open would fail, which only a Config with DataDir
// set can cause — durable deployments should call Open and handle the
// error.
func NewWith(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(fmt.Sprintf("server.NewWith: %v", err))
	}
	return s
}

// Open returns the service handler for the given configuration,
// opening the durable tier (blob stores, journal, audit log) and
// replaying interrupted jobs when Config.DataDir is set. The only
// error paths are storage ones, so a memory-only Config never fails.
func Open(cfg Config) (*Server, error) {
	if cfg.MaxUploadBytes == 0 {
		cfg.MaxUploadBytes = MaxUploadBytes
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	s := &Server{cfg: cfg, log: cfg.Logger, reg: cfg.Registry}
	if s.log == nil {
		s.log = discardLogger()
	}
	if s.reg == nil {
		s.reg = telemetry.NewRegistry()
	}
	s.inFlight = s.reg.Gauge("sysrle_http_in_flight")
	s.notReadyC = s.reg.Counter("sysrle_http_not_ready_total")
	if err := s.openStorage(); err != nil {
		return nil, err
	}
	s.refs = refstore.New(refstore.Config{
		CacheBytes: cfg.RefCacheBytes,
		TTL:        cfg.RefTTL,
		Registry:   s.reg,
		Disk:       s.refBlobs,
	})
	var err error
	s.jobs, err = jobs.Open(jobs.Config{
		Workers:     cfg.JobWorkers,
		QueueDepth:  cfg.JobQueueDepth,
		Retention:   cfg.JobRetention,
		Store:       s.refs,
		Registry:    s.reg,
		ScanTimeout: cfg.ScanTimeout,
		ScanRetries: cfg.ScanRetries,
		StuckAfter:  cfg.StuckAfter,
		WrapEngine:  s.engineWrapper(),
		Journal:     s.journal,
		Blobs:       s.jobBlobs,
		Audit:       s.audit,
	})
	if err != nil {
		return nil, fmt.Errorf("server: job recovery: %w", err)
	}
	s.registerBuiltinProbes()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = s.reg.WriteJSON(w)
	})
	mux.HandleFunc("POST /v1/diff", s.handleDiff)
	mux.HandleFunc("POST /v1/inspect", s.handleInspect)
	mux.HandleFunc("POST /v1/align", s.handleAlign)
	mux.HandleFunc("POST /v1/docclean", s.handleDocClean)
	mux.HandleFunc("POST /v1/references", s.handleRefPut)
	mux.HandleFunc("GET /v1/references", s.handleRefList)
	mux.HandleFunc("GET /v1/references/{id}", s.handleRefGet)
	mux.HandleFunc("GET /v1/references/{id}/content", s.handleRefContent)
	mux.HandleFunc("DELETE /v1/references/{id}", s.handleRefDelete)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobDelete)
	mux.HandleFunc("GET /v1/audit", s.handleAuditBatches)
	mux.HandleFunc("GET /v1/audit/{id}/proof", s.handleAuditProof)
	s.handler = s.wrap(mux)
	return s, nil
}

// engineWrapper builds the jobs engine hook for chaos mode: inject
// faults per the configured plan, then detect and recover through the
// verified engine, so the service converges to correct results while
// telemetry shows every injected and recovered fault. Returns nil
// (no wrapping) when no fault plan is configured.
func (s *Server) engineWrapper() func(core.Engine) core.Engine {
	if s.cfg.FaultPlan == nil {
		return nil
	}
	injector := fault.NewInjector(*s.cfg.FaultPlan, s.reg)
	s.reg.Help("sysrle_fault_recovered_total", "Faults detected by the verified engine and recovered by recompute.")
	recovered := s.reg.Counter("sysrle_fault_recovered_total")
	s.log.Warn("fault injection enabled (chaos mode)", "plan", s.cfg.FaultPlan.String())
	return func(eng core.Engine) core.Engine {
		v := core.NewVerified(fault.Wrap(eng, injector))
		v.OnFault = func(error) { recovered.Inc() }
		return v
	}
}

// recordEngine feeds one engine run's facade stats into telemetry.
func (s *Server) recordEngine(engine string, totalIterations, rowsDiffering int) {
	s.reg.Help("sysrle_engine_iterations_total", "Systolic iterations executed, by engine.")
	eng := telemetry.L("engine", engine)
	s.reg.Counter("sysrle_engine_iterations_total", eng).Add(int64(totalIterations))
	s.reg.Counter("sysrle_engine_rows_differing_total", eng).Add(int64(rowsDiffering))
	s.reg.Counter("sysrle_engine_runs_total", eng).Inc()
}

// engineFromQuery resolves the engine= query parameter through the
// facade registry — the single source of engine names shared with the
// job runner and the CLI tools. Each request gets a fresh engine, so
// stateful engines (stream, verified) are never shared across
// requests. Engines that export their own telemetry (the planner's
// per-decision route counters) get the service registry attached.
func (s *Server) engineFromQuery(r *http.Request) (sysrle.Engine, error) {
	eng, err := sysrle.NewEngineByName(r.URL.Query().Get("engine"))
	if err != nil {
		return nil, err
	}
	if m, ok := eng.(interface{ AttachMetrics(*telemetry.Registry) }); ok {
		m.AttachMetrics(s.reg)
	}
	return eng, nil
}

func formImage(r *http.Request, field string) (*rle.Image, error) {
	file, _, err := r.FormFile(field)
	if err != nil {
		return nil, fmt.Errorf("missing upload %q: %v", field, err)
	}
	defer file.Close()
	img, err := imageio.Read(file)
	if err != nil {
		return nil, fmt.Errorf("upload %q: %v", field, err)
	}
	return img, nil
}

// parseForm applies the upload limit and parses the multipart body,
// writing the error response itself on failure. Handlers read every
// image they need before returning; the deferred cleanup then drops
// any temp files the parts spilled to.
func (s *Server) parseForm(w http.ResponseWriter, r *http.Request) bool {
	if s.cfg.MaxUploadBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	}
	if err := r.ParseMultipartForm(multipartMemory); err != nil {
		code := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			code = http.StatusRequestEntityTooLarge
		}
		s.httpError(w, r, code, fmt.Errorf("parsing multipart form: %v", err))
		return false
	}
	return true
}

func cleanupForm(f *multipart.Form) {
	if f != nil {
		_ = f.RemoveAll()
	}
}

// storedRef resolves the ref=<id> query parameter through the
// registry, writing 404 on an unknown or expired id.
func (s *Server) storedRef(w http.ResponseWriter, r *http.Request, id string) (*rle.Image, bool) {
	img, err := s.refs.Get(id)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, refstore.ErrNotFound) {
			code = http.StatusNotFound
		}
		s.httpError(w, r, code, fmt.Errorf("reference %q: %w", id, err))
		return nil, false
	}
	return img, true
}

// parseUploads resolves the two images of a compare-shaped request.
// With ref=<id> in the query the first image comes from the registry
// (no upload, no decode on a cache hit) and only fieldB is read from
// the form.
func (s *Server) parseUploads(w http.ResponseWriter, r *http.Request, fieldA, fieldB string) (*rle.Image, *rle.Image, bool) {
	if !s.parseForm(w, r) {
		return nil, nil, false
	}
	defer cleanupForm(r.MultipartForm)
	var a *rle.Image
	if id := r.URL.Query().Get("ref"); id != "" {
		var ok bool
		if a, ok = s.storedRef(w, r, id); !ok {
			return nil, nil, false
		}
	} else {
		var err error
		if a, err = formImage(r, fieldA); err != nil {
			s.httpError(w, r, http.StatusBadRequest, err)
			return nil, nil, false
		}
	}
	b, err := formImage(r, fieldB)
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return nil, nil, false
	}
	return a, b, true
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	engine, err := s.engineFromQuery(r)
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "pbm"
	}
	if !validFormat(format) {
		s.httpError(w, r, http.StatusBadRequest, fmt.Errorf("unknown format %q (have %v)", format, imageio.Formats()))
		return
	}
	a, b, ok := s.parseUploads(w, r, "a", "b")
	if !ok {
		return
	}
	diff, stats, err := sysrle.DiffImage(a, b,
		sysrle.WithEngine(engine),
		sysrle.WithContext(r.Context()))
	if err != nil {
		s.httpError(w, r, http.StatusUnprocessableEntity, err)
		return
	}
	s.recordEngine(engine.Name(), stats.TotalIterations, stats.RowsDiffering)
	w.Header().Set("Content-Type", imageio.ContentType(format))
	w.Header().Set("X-Sysrle-Engine", engine.Name())
	w.Header().Set("X-Sysrle-Rows-Differing", strconv.Itoa(stats.RowsDiffering))
	w.Header().Set("X-Sysrle-Iterations-Total", strconv.Itoa(stats.TotalIterations))
	w.Header().Set("X-Sysrle-Iterations-Max-Row", strconv.Itoa(stats.MaxRowIterations))
	w.Header().Set("X-Sysrle-Cells-Total", strconv.Itoa(stats.TotalCells))
	w.Header().Set("X-Sysrle-Cells-Max-Row", strconv.Itoa(stats.MaxRowCells))
	if stats.FaultsRecovered > 0 {
		w.Header().Set("X-Sysrle-Faults-Recovered", strconv.Itoa(stats.FaultsRecovered))
	}
	w.Header().Set("X-Sysrle-Diff-Pixels", strconv.Itoa(diff.Area()))
	// The format was validated up front, so a write error here can
	// only be a broken connection; nothing useful remains to send.
	_ = imageio.Write(w, format, diff)
}

func validFormat(format string) bool {
	for _, f := range imageio.Formats() {
		if f == format {
			return true
		}
	}
	return false
}

// inspectResponse is the JSON shape of /v1/inspect.
type inspectResponse struct {
	Engine           string           `json:"engine"`
	RowsCompared     int              `json:"rows_compared"`
	RowsDiffering    int              `json:"rows_differing"`
	DiffPixels       int              `json:"diff_pixels"`
	DiffRuns         int              `json:"diff_runs"`
	TotalIterations  int              `json:"iterations_total"`
	MaxRowIterations int              `json:"iterations_max_row"`
	Clean            bool             `json:"clean"`
	AlignDX          int              `json:"align_dx"`
	AlignDY          int              `json:"align_dy"`
	Defects          []inspect.Defect `json:"defects"`
}

func (s *Server) handleInspect(w http.ResponseWriter, r *http.Request) {
	engine, err := s.engineFromQuery(r)
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	minArea := 0
	if q := r.URL.Query().Get("min-area"); q != "" {
		minArea, err = strconv.Atoi(q)
		if err != nil || minArea < 0 {
			s.httpError(w, r, http.StatusBadRequest, fmt.Errorf("bad min-area %q", q))
			return
		}
	}
	maxAlign := 0
	if q := r.URL.Query().Get("align"); q != "" {
		maxAlign, err = strconv.Atoi(q)
		if err != nil || maxAlign < 0 || maxAlign > 256 {
			s.httpError(w, r, http.StatusBadRequest, fmt.Errorf("bad align %q (want 0..256)", q))
			return
		}
	}
	ref, scan, ok := s.parseUploads(w, r, "ref", "scan")
	if !ok {
		return
	}
	ins := &inspect.Inspector{Engine: engine, MinDefectArea: minArea, MaxAlignShift: maxAlign}
	rep, err := ins.Compare(ref, scan)
	if err != nil {
		s.httpError(w, r, http.StatusUnprocessableEntity, err)
		return
	}
	s.recordEngine(engine.Name(), rep.TotalIterations, rep.RowsDiffering)
	resp := inspectResponse{
		Engine:           engine.Name(),
		RowsCompared:     rep.RowsCompared,
		RowsDiffering:    rep.RowsDiffering,
		DiffPixels:       rep.DiffArea,
		DiffRuns:         rep.DiffRuns,
		TotalIterations:  rep.TotalIterations,
		MaxRowIterations: rep.MaxRowIterations,
		Clean:            rep.Clean(),
		AlignDX:          rep.AlignDX,
		AlignDY:          rep.AlignDY,
		Defects:          rep.Defects,
	}
	if resp.Defects == nil {
		resp.Defects = []inspect.Defect{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// alignResponse is the JSON shape of /v1/align.
type alignResponse struct {
	DX           int `json:"dx"`
	DY           int `json:"dy"`
	ResidualArea int `json:"residual_area"`
}

func (s *Server) handleAlign(w http.ResponseWriter, r *http.Request) {
	maxShift := 4
	if q := r.URL.Query().Get("max-shift"); q != "" {
		var err error
		maxShift, err = strconv.Atoi(q)
		if err != nil || maxShift < 1 || maxShift > 64 {
			s.httpError(w, r, http.StatusBadRequest, fmt.Errorf("bad max-shift %q (want 1..64)", q))
			return
		}
	}
	ref, scan, ok := s.parseUploads(w, r, "ref", "scan")
	if !ok {
		return
	}
	if ref.Width != scan.Width || ref.Height != scan.Height {
		s.httpError(w, r, http.StatusUnprocessableEntity,
			fmt.Errorf("size mismatch %dx%d vs %dx%d", ref.Width, ref.Height, scan.Width, scan.Height))
		return
	}
	dx, dy, area := inspect.Align(ref, scan, maxShift)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(alignResponse{DX: dx, DY: dy, ResidualArea: area})
}

// errorBody is the unified v1 error envelope: every error response
// from every endpoint is {"error": {"code", "message", "request_id"}}
// with the HTTP status unchanged from before the envelope existed.
// Code is the stable machine-readable name for the status class
// (clients switch on it instead of matching message text), Message is
// human-readable, and RequestID correlates the failure with the access
// log and the X-Request-Id response header.
type errorBody struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

type errorResponse struct {
	Error errorBody `json:"error"`
}

// errorCodeForStatus maps an HTTP status onto its envelope code.
func errorCodeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "invalid_argument"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusRequestEntityTooLarge:
		return "payload_too_large"
	case http.StatusUnprocessableEntity:
		return "unprocessable"
	case http.StatusTooManyRequests:
		return "resource_exhausted"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusInternalServerError:
		return "internal"
	default:
		return fmt.Sprintf("http_%d", status)
	}
}

// requestID extracts the middleware-assigned request id.
func requestID(r *http.Request) string {
	if r == nil {
		return ""
	}
	return r.Header.Get(requestIDHeader)
}

// httpError renders the unified error envelope — the single helper
// every handler's error path goes through. 500-class details never
// reach the client: storage and registry errors can carry file paths
// and addresses, so the wire message is generic and the real error
// goes to the log under the same request id.
func (s *Server) httpError(w http.ResponseWriter, r *http.Request, status int, err error) {
	msg := err.Error()
	if status == http.StatusInternalServerError {
		s.log.Error("internal error", "status", status, "err", err, "request_id", requestID(r))
		msg = "internal error"
	}
	writeErrorEnvelope(w, status, errorCodeForStatus(status), msg, requestID(r))
}

// writeErrorEnvelope writes the envelope itself; httpError is the
// usual entry, this is for callers that already sanitized.
func writeErrorEnvelope(w http.ResponseWriter, status int, code, msg, rid string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: errorBody{Code: code, Message: msg, RequestID: rid}})
}
