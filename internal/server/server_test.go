package server

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sysrle/internal/imageio"
	"sysrle/internal/inspect"
	"sysrle/internal/rle"
)

// multipartBody builds a multipart upload of named images in the
// given wire format.
func multipartBody(t *testing.T, format string, files map[string]*rle.Image) (io.Reader, string) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for field, img := range files {
		fw, err := mw.CreateFormFile(field, field+".img")
		if err != nil {
			t.Fatal(err)
		}
		if err := imageio.Write(fw, format, img); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	return &buf, mw.FormDataContentType()
}

func testBoards(t *testing.T) (*rle.Image, *rle.Image, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	layout, err := inspect.GenerateBoard(rng, inspect.DefaultBoard(300, 200))
	if err != nil {
		t.Fatal(err)
	}
	scan, injected := inspect.InjectDefects(rng, layout, 5)
	return layout.Art.ToRLE(), scan.ToRLE(), len(injected)
}

func TestHealthz(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("body %q", body)
	}
}

func TestDiffEndpoint(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	ref, scan, _ := testBoards(t)

	body, ctype := multipartBody(t, "pbm", map[string]*rle.Image{"a": ref, "b": scan})
	resp, err := http.Post(srv.URL+"/v1/diff?format=rleb&engine=lockstep", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("X-Sysrle-Engine"); got != "systolic-lockstep" {
		t.Errorf("engine header %q", got)
	}
	if resp.Header.Get("X-Sysrle-Iterations-Total") == "" {
		t.Error("missing iterations header")
	}
	diff, err := imageio.Read(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want, err := rle.XORImage(ref, scan)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Equal(want) {
		t.Error("served diff is wrong")
	}
}

func TestDiffEndpointErrors(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	ref, scan, _ := testBoards(t)

	cases := []struct {
		name  string
		url   string
		files map[string]*rle.Image
		code  int
	}{
		{"bad engine", "/v1/diff?engine=quantum", map[string]*rle.Image{"a": ref, "b": scan}, http.StatusBadRequest},
		{"bad format", "/v1/diff?format=gif", map[string]*rle.Image{"a": ref, "b": scan}, http.StatusBadRequest},
		{"missing file", "/v1/diff", map[string]*rle.Image{"a": ref}, http.StatusBadRequest},
		{"size mismatch", "/v1/diff", map[string]*rle.Image{"a": ref, "b": rle.NewImage(4, 4)}, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		body, ctype := multipartBody(t, "pbm", c.files)
		resp, err := http.Post(srv.URL+c.url, ctype, body)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.code {
			t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.code, raw)
		}
		var e errorResponse
		if err := json.Unmarshal(raw, &e); err != nil || e.Error.Message == "" {
			t.Errorf("%s: error body %q", c.name, raw)
		}
	}
}

func TestDiffNotMultipart(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/diff", "text/plain", strings.NewReader("hi"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status %d", resp.StatusCode)
	}
}

func TestInspectEndpoint(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	ref, scan, injected := testBoards(t)

	body, ctype := multipartBody(t, "rleb", map[string]*rle.Image{"ref": ref, "scan": scan})
	resp, err := http.Post(srv.URL+"/v1/inspect?min-area=2", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var rep inspectResponse
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Clean {
		t.Error("defective board reported clean")
	}
	if len(rep.Defects) == 0 || len(rep.Defects) > injected+2 {
		t.Errorf("defects = %d for %d injected", len(rep.Defects), injected)
	}
	if rep.TotalIterations == 0 || rep.RowsCompared != 200 {
		t.Errorf("stats wrong: %+v", rep)
	}
	for _, d := range rep.Defects {
		if d.Type == "" || d.Kind == "" {
			t.Errorf("unlabelled defect %+v", d)
		}
	}
}

func TestInspectCleanBoard(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	ref, _, _ := testBoards(t)
	body, ctype := multipartBody(t, "pbm", map[string]*rle.Image{"ref": ref, "scan": ref})
	resp, err := http.Post(srv.URL+"/v1/inspect", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep inspectResponse
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Clean || len(rep.Defects) != 0 {
		t.Errorf("clean board report: %+v", rep)
	}
	// Defects must encode as [] not null.
	if rep.Defects == nil {
		t.Error("defects should be an empty array")
	}
}

func TestInspectBadMinArea(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	ref, scan, _ := testBoards(t)
	body, ctype := multipartBody(t, "pbm", map[string]*rle.Image{"ref": ref, "scan": scan})
	resp, err := http.Post(srv.URL+"/v1/inspect?min-area=-3", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status %d", resp.StatusCode)
	}
}

func TestAlignEndpoint(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	ref, _, _ := testBoards(t)
	shifted := rle.Translate(ref, 2, -1)

	body, ctype := multipartBody(t, "rleb", map[string]*rle.Image{"ref": ref, "scan": shifted})
	resp, err := http.Post(srv.URL+"/v1/align?max-shift=3", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var rep alignResponse
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.DX != -2 || rep.DY != 1 {
		t.Errorf("align = (%d,%d), want (-2,1)", rep.DX, rep.DY)
	}
	if rep.ResidualArea != 0 {
		t.Errorf("residual = %d", rep.ResidualArea)
	}
}

func TestAlignEndpointBadShift(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	ref, scan, _ := testBoards(t)
	for _, q := range []string{"max-shift=0", "max-shift=999", "max-shift=x"} {
		body, ctype := multipartBody(t, "pbm", map[string]*rle.Image{"ref": ref, "scan": scan})
		resp, err := http.Post(srv.URL+"/v1/align?"+q, ctype, body)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d", q, resp.StatusCode)
		}
	}
}

func TestAlignSizeMismatch(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	ref, _, _ := testBoards(t)
	body, ctype := multipartBody(t, "pbm", map[string]*rle.Image{"ref": ref, "scan": rle.NewImage(4, 4)})
	resp, err := http.Post(srv.URL+"/v1/align", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("status %d, want 422 (%s)", resp.StatusCode, raw)
	}
	var e errorResponse
	if err := json.Unmarshal(raw, &e); err != nil || !strings.Contains(e.Error.Message, "size mismatch") {
		t.Errorf("error body %q", raw)
	}
}

func TestAlignMissingFile(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	ref, _, _ := testBoards(t)
	body, ctype := multipartBody(t, "pbm", map[string]*rle.Image{"ref": ref})
	resp, err := http.Post(srv.URL+"/v1/align", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status %d, want 400", resp.StatusCode)
	}
}

// TestMetricsEndpoint drives a real diff through the service and
// checks the scrape reflects it: request count, latency histogram and
// per-engine iteration totals.
func TestMetricsEndpoint(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	ref, scan, _ := testBoards(t)
	body, ctype := multipartBody(t, "pbm", map[string]*rle.Image{"a": ref, "b": scan})
	resp, err := http.Post(srv.URL+"/v1/diff?engine=lockstep", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diff status %d", resp.StatusCode)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", mresp.StatusCode)
	}
	raw, _ := io.ReadAll(mresp.Body)
	out := string(raw)
	for _, want := range []string{
		`sysrle_http_requests_total{class="2xx",endpoint="/v1/diff"} 1`,
		`sysrle_http_request_seconds_bucket{endpoint="/v1/diff",le="+Inf"} 1`,
		`sysrle_http_request_seconds_count{endpoint="/v1/diff"} 1`,
		`sysrle_engine_iterations_total{engine="systolic-lockstep"}`,
		`sysrle_engine_runs_total{engine="systolic-lockstep"} 1`,
		"# TYPE sysrle_http_requests_total counter",
		"# TYPE sysrle_http_request_seconds histogram",
		"sysrle_http_request_bytes_total",
		"sysrle_http_response_bytes_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// The engine iteration total must be a real non-zero count: the
	// boards differ, so the lockstep engine iterated.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, `sysrle_engine_iterations_total{engine="systolic-lockstep"}`) {
			fields := strings.Fields(line)
			if len(fields) != 2 || fields[1] == "0" {
				t.Errorf("iteration total not recorded: %q", line)
			}
		}
	}
}

func TestDebugVarsEndpoint(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	// Any request seeds the registry.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	dresp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var vars map[string]map[string]json.RawMessage
	if err := json.NewDecoder(dresp.Body).Decode(&vars); err != nil {
		t.Fatalf("debug vars not JSON: %v", err)
	}
	if _, ok := vars["sysrle_http_requests_total"]; !ok {
		t.Errorf("debug vars missing request counter: %v", vars)
	}
}

// TestUploadTooLarge checks MaxBytesReader tripping surfaces as 413,
// not a generic 400.
func TestUploadTooLarge(t *testing.T) {
	srv := httptest.NewServer(NewWith(Config{MaxUploadBytes: 1 << 12}))
	defer srv.Close()
	ref, scan, _ := testBoards(t)
	body, ctype := multipartBody(t, "pbm-plain", map[string]*rle.Image{"a": ref, "b": scan})
	resp, err := http.Post(srv.URL+"/v1/diff", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status %d, want 413 (%s)", resp.StatusCode, raw)
	}
}

func TestResponseCarriesRequestID(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("response missing X-Request-Id")
	}
}

func TestMethodRouting(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/diff")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/diff status %d", resp.StatusCode)
	}
}

func TestInspectWithAlignment(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	ref, _, _ := testBoards(t)
	shifted := rle.Translate(ref, 2, -1)
	body, ctype := multipartBody(t, "rleb", map[string]*rle.Image{"ref": ref, "scan": shifted})
	resp, err := http.Post(srv.URL+"/v1/inspect?align=3", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep inspectResponse
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.AlignDX != -2 || rep.AlignDY != 1 {
		t.Errorf("align = (%d,%d), want (-2,1)", rep.AlignDX, rep.AlignDY)
	}
	if !rep.Clean {
		t.Errorf("registered identical boards not clean: %+v", rep.Defects)
	}
}

func TestInspectBadAlign(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	ref, scan, _ := testBoards(t)
	body, ctype := multipartBody(t, "pbm", map[string]*rle.Image{"ref": ref, "scan": scan})
	resp, err := http.Post(srv.URL+"/v1/inspect?align=-1", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status %d", resp.StatusCode)
	}
}

// TestDiffPlannerExportsDecisionMetrics pins the AttachMetrics wiring:
// a diff served by the hybrid planner must surface its per-row routing
// counters in the service registry, not keep them private to the
// request-scoped engine.
func TestDiffPlannerExportsDecisionMetrics(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	ref, scan, _ := testBoards(t)

	body, ctype := multipartBody(t, "pbm", map[string]*rle.Image{"a": ref, "b": scan})
	resp, err := http.Post(srv.URL+"/v1/diff?format=rleb&engine=planner", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	metrics, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(metrics), "planner_rows_rle_total") &&
		!strings.Contains(string(metrics), "planner_rows_packed_total") {
		t.Error("planner decision counters missing from /metrics after engine=planner diff")
	}
	if !strings.Contains(string(metrics), "planner_crossover_ratio_count") {
		t.Error("planner crossover histogram missing from /metrics")
	}
}
