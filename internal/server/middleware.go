package server

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"sysrle/internal/telemetry"
)

// The middleware stack, outermost first:
//
//	panic recovery → request ID → access log + metrics → in-flight
//	limiter → per-request timeout → mux
//
// Recovery is outermost so a panic anywhere (including one re-raised
// by http.TimeoutHandler from its worker goroutine) becomes a 500
// JSON error instead of killing the process. The access logger sits
// outside the limiter and timeout so shed (429) and timed-out (503)
// requests are still logged and counted.

// ridPrefix makes request IDs unique across process restarts.
var ridPrefix = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}()

var ridCounter atomic.Uint64

func newRequestID() string {
	return fmt.Sprintf("%s-%06d", ridPrefix, ridCounter.Add(1))
}

// requestIDHeader is the request/response header carrying the ID.
const requestIDHeader = "X-Request-Id"

// withRequestID tags the request and response with an ID, honoring a
// sane inbound one (proxies often assign IDs upstream).
func withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(requestIDHeader)
		if id == "" || len(id) > 64 || !printableASCII(id) {
			id = newRequestID()
			r.Header.Set(requestIDHeader, id)
		}
		w.Header().Set(requestIDHeader, id)
		next.ServeHTTP(w, r)
	})
}

func printableASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 0x21 || s[i] > 0x7e {
			return false
		}
	}
	return true
}

// withRecover turns handler panics into 500 JSON errors.
func (s *Server) withRecover(next http.Handler) http.Handler {
	panics := s.reg.Counter("sysrle_http_panics_total")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				// The client deliberately aborting is not a server bug;
				// re-raise so the net/http machinery handles it.
				if err, ok := v.(error); ok && errors.Is(err, http.ErrAbortHandler) {
					panic(v)
				}
				panics.Inc()
				s.log.Error("panic serving request",
					"method", r.Method, "path", r.URL.Path,
					"request_id", r.Header.Get(requestIDHeader), "panic", fmt.Sprint(v))
				// Best effort: if the handler already wrote, the extra
				// WriteHeader is a no-op warning, not a crash.
				s.httpError(w, r, http.StatusInternalServerError, fmt.Errorf("internal error"))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// statusWriter records the status code and bytes written.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so streaming still works
// through the wrapper.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// countingBody counts request body bytes actually read. The counter is
// atomic because http.TimeoutHandler runs the inner handler on another
// goroutine which may still be reading when the request is abandoned.
type countingBody struct {
	rc io.ReadCloser
	n  atomic.Int64
}

func (cb *countingBody) Read(p []byte) (int, error) {
	n, err := cb.rc.Read(p)
	cb.n.Add(int64(n))
	return n, err
}

func (cb *countingBody) Close() error { return cb.rc.Close() }

// endpointLabel collapses the path to a known route so metric
// cardinality stays bounded no matter what paths clients probe.
func endpointLabel(path string) string {
	switch path {
	case "/healthz", "/readyz", "/metrics", "/debug/vars", "/v1/diff", "/v1/inspect", "/v1/align",
		"/v1/docclean", "/v1/references", "/v1/jobs", "/v1/audit":
		return path
	default:
		// Ids are client-chosen content hashes and job counters; fold
		// them so cardinality stays bounded.
		switch {
		case strings.HasPrefix(path, "/v1/references/") && strings.HasSuffix(path, "/content"):
			return "/v1/references/{id}/content"
		case strings.HasPrefix(path, "/v1/references/"):
			return "/v1/references/{id}"
		case strings.HasPrefix(path, "/v1/jobs/"):
			return "/v1/jobs/{id}"
		case strings.HasPrefix(path, "/v1/audit/"):
			return "/v1/audit/{id}/proof"
		}
		return "other"
	}
}

func statusClass(code int) string {
	switch {
	case code < 200:
		return "1xx"
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// withObserve wraps the handler with structured access logging and the
// request-level metrics: count by endpoint/status class, per-endpoint
// latency histogram, bytes in/out.
func (s *Server) withObserve(next http.Handler) http.Handler {
	s.reg.Help("sysrle_http_requests_total", "Requests served, by endpoint and status class.")
	s.reg.Help("sysrle_http_request_seconds", "Request latency, by endpoint.")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		endpoint := endpointLabel(r.URL.Path)
		body := &countingBody{rc: r.Body}
		r.Body = body
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)
		ep := telemetry.L("endpoint", endpoint)
		s.reg.Counter("sysrle_http_requests_total", ep, telemetry.L("class", statusClass(sw.status))).Inc()
		s.reg.Histogram("sysrle_http_request_seconds", nil, ep).ObserveDuration(elapsed)
		s.reg.Counter("sysrle_http_request_bytes_total").Add(body.n.Load())
		s.reg.Counter("sysrle_http_response_bytes_total").Add(sw.bytes)
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes_in", body.n.Load(),
			"bytes_out", sw.bytes,
			"duration", elapsed,
			"request_id", r.Header.Get(requestIDHeader),
			"remote", r.RemoteAddr,
		)
	})
}

// withLimit sheds load once MaxInFlight requests are already being
// served, with 429 + Retry-After. /healthz, /readyz and /metrics
// bypass the limiter (and the timeout, see wrap) so the service stays
// observable while saturated — a shed /readyz would hide exactly the
// state it exists to report.
func (s *Server) withLimit(next http.Handler) http.Handler {
	if s.cfg.MaxInFlight <= 0 {
		return next
	}
	sem := make(chan struct{}, s.cfg.MaxInFlight)
	if s.inFlight == nil { // tests build Server without NewWith
		s.inFlight = s.reg.Gauge("sysrle_http_in_flight")
	}
	inFlight := s.inFlight // shared with the /readyz load-shed probe
	throttled := s.reg.Counter("sysrle_http_throttled_total")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			inFlight.Inc()
			defer func() {
				<-sem
				inFlight.Dec()
			}()
			next.ServeHTTP(w, r)
		default:
			throttled.Inc()
			w.Header().Set("Retry-After", "1")
			s.httpError(w, r, http.StatusTooManyRequests,
				fmt.Errorf("server at capacity (%d requests in flight)", s.cfg.MaxInFlight))
		}
	})
}

// exempt routes the observability endpoints around mid (limiter or
// timeout) so they cannot be shed or timed out.
func exempt(mid, direct http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz", "/readyz", "/metrics", "/debug/vars":
			direct.ServeHTTP(w, r)
		default:
			mid.ServeHTTP(w, r)
		}
	})
}

// wrap assembles the full stack around the route mux.
func (s *Server) wrap(mux http.Handler) http.Handler {
	h := mux
	if s.cfg.RequestTimeout > 0 {
		h = exempt(jsonOnBareWrite(http.TimeoutHandler(h, s.cfg.RequestTimeout, timeoutBody)), mux)
	}
	h = exempt(s.withLimit(h), h)
	h = s.withObserve(h)
	h = withRequestID(h)
	h = s.withRecover(h)
	return h
}

// timeoutBody is what http.TimeoutHandler writes with its 503, in
// the same envelope shape httpError renders.
const timeoutBody = `{"error":{"code":"unavailable","message":"request timed out"}}`

// jsonOnBareWrite defaults Content-Type to application/json when the
// inner handler writes headers without setting one.
// http.TimeoutHandler emits its static timeout body bare, which would
// otherwise be content-sniffed as text/plain.
func jsonOnBareWrite(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(&jsonDefaultWriter{ResponseWriter: w}, r)
	})
}

type jsonDefaultWriter struct {
	http.ResponseWriter
	wrote bool
}

func (jw *jsonDefaultWriter) WriteHeader(code int) {
	if !jw.wrote {
		jw.wrote = true
		if jw.Header().Get("Content-Type") == "" {
			jw.Header().Set("Content-Type", "application/json")
		}
	}
	jw.ResponseWriter.WriteHeader(code)
}

func (jw *jsonDefaultWriter) Write(p []byte) (int, error) {
	if !jw.wrote {
		jw.WriteHeader(http.StatusOK)
	}
	return jw.ResponseWriter.Write(p)
}

// Flush forwards so streaming works through the wrapper.
func (jw *jsonDefaultWriter) Flush() {
	if f, ok := jw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// discardLogger drops everything; the default for handlers constructed
// without an explicit logger (tests, library use).
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}
