package server

// Tests for the document-cleanup endpoints: the synchronous
// /v1/docclean report and image modes, and the async
// /v1/jobs?type=docclean batch path on a generated A4 page.

import (
	"io"
	"math/rand"
	"net/http"
	"testing"

	"sysrle/internal/docclean"
	"sysrle/internal/imageio"
	"sysrle/internal/jobs"
	"sysrle/internal/rle"
	"sysrle/internal/workload"
)

// testPage is the controlled cleanup fixture: a 20×10 solid block, a
// full-width 2px rule, and three 1px specks.
func testPage(t *testing.T) *rle.Image {
	t.Helper()
	img := rle.NewImage(80, 48)
	for y := 10; y < 20; y++ {
		img.Rows[y] = rle.Row{rle.Span(10, 29)}
	}
	img.Rows[30] = rle.Row{rle.Span(0, 79)}
	img.Rows[31] = rle.Row{rle.Span(0, 79)}
	for _, p := range [][2]int{{5, 3}, {70, 5}, {40, 44}} {
		img.Rows[p[1]] = rle.Normalize(append(img.Rows[p[1]], rle.Span(p[0], p[0])))
	}
	return img
}

const docCleanQuery = "?max-speckle=4&min-line=40&close-x=5&close-y=3&min-block=10"

func TestDocCleanEndpointJSON(t *testing.T) {
	srv, _ := newRegistryServer(t, Config{})
	body, ctype := multipartBody(t, "pbm", map[string]*rle.Image{"image": testPage(t)})
	resp, err := http.Post(srv.URL+"/v1/docclean"+docCleanQuery, ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("X-Sysrle-Speckles-Removed"); got != "3" {
		t.Errorf("speckles header %q, want 3", got)
	}
	var rep docclean.Result
	decodeJSON(t, resp, &rep)
	if rep.SpecklesRemoved != 3 || rep.LinesH != 1 || rep.LinesV != 0 {
		t.Errorf("report %+v", rep)
	}
	if len(rep.Blocks) != 1 || rep.Blocks[0].X0 != 10 || rep.Blocks[0].Y1 != 19 {
		t.Errorf("blocks %+v", rep.Blocks)
	}
	if rep.OutputArea != 200 {
		t.Errorf("output area %d, want the 20x10 block's 200", rep.OutputArea)
	}
}

func TestDocCleanEndpointImage(t *testing.T) {
	srv, _ := newRegistryServer(t, Config{})
	body, ctype := multipartBody(t, "rleb", map[string]*rle.Image{"image": testPage(t)})
	resp, err := http.Post(srv.URL+"/v1/docclean"+docCleanQuery+"&format=rleb", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	cleaned, err := imageio.Read(resp.Body)
	if err != nil {
		t.Fatalf("decoding cleaned page: %v", err)
	}
	// Specks and the rule are gone; the block survives untouched.
	if cleaned.Area() != 200 || !cleaned.Get(10, 10) || cleaned.Get(0, 30) || cleaned.Get(5, 3) {
		t.Errorf("cleaned page wrong: area %d", cleaned.Area())
	}
	if got := resp.Header.Get("X-Sysrle-Blocks"); got != "1" {
		t.Errorf("blocks header %q, want 1", got)
	}
}

func TestDocCleanEndpointErrors(t *testing.T) {
	srv, _ := newRegistryServer(t, Config{})
	page := testPage(t)
	for _, c := range []struct {
		name, query string
		files       map[string]*rle.Image
	}{
		{"bad param", "?max-speckle=-1", map[string]*rle.Image{"image": page}},
		{"bad keep-lines", "?keep-lines=maybe", map[string]*rle.Image{"image": page}},
		{"bad format", "?format=tiff", map[string]*rle.Image{"image": page}},
		{"missing image", "", map[string]*rle.Image{"picture": page}},
	} {
		body, ctype := multipartBody(t, "pbm", c.files)
		resp, err := http.Post(srv.URL+"/v1/docclean"+c.query, ctype, body)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
	}
}

func TestDocCleanJobEndToEnd(t *testing.T) {
	srv, _ := newRegistryServer(t, Config{JobWorkers: 2})
	page, err := workload.GenerateDocument(rand.New(rand.NewSource(1999)), workload.A4Doc())
	if err != nil {
		t.Fatal(err)
	}
	body, ctype := jobForm(t, []*rle.Image{page, testPage(t)}, nil)
	resp, err := http.Post(srv.URL+"/v1/jobs?type=docclean", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("submit status %d: %s", resp.StatusCode, b)
	}
	var st jobs.Status
	decodeJSON(t, resp, &st)
	if st.Type != jobs.TypeDocClean || st.Engine != "" {
		t.Errorf("snapshot type %q engine %q", st.Type, st.Engine)
	}
	final := pollJob(t, srv.URL, st.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("state %s (error %q)", final.State, final.Error)
	}
	a4 := final.Results[0]
	if a4.SpecklesRemoved < 100 || a4.LinesH < 3 || a4.Blocks < 2 || a4.OutputArea >= page.Area() {
		t.Errorf("A4 result implausible: %+v", a4)
	}
}

func TestDocCleanJobSubmitErrors(t *testing.T) {
	srv, _ := newRegistryServer(t, Config{})
	page := testPage(t)
	for _, c := range []struct {
		name, query string
	}{
		{"unknown type", "?type=transmogrify"},
		{"docclean with engine", "?type=docclean&engine=stream"},
		{"docclean with bad param", "?type=docclean&close-x=-2"},
		{"docclean with ref id", "?type=docclean&ref=deadbeef"},
	} {
		body, ctype := jobForm(t, []*rle.Image{page}, nil)
		resp, err := http.Post(srv.URL+"/v1/jobs"+c.query, ctype, body)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
	}
}
