// Package perf is the reproducible benchmark harness for the
// zero-allocation hot path: a fixed engine × workload matrix measured
// with testing.Benchmark and emitted as a machine-readable JSON
// report (BENCH_PR6.json at the repository root is one committed
// run; BENCH_PR4.json is the pre-planner baseline). The same matrix
// backs two uses:
//
//   - `benchtab -bench` regenerates the report so numbers in the
//     repository can be reproduced on any machine (`make bench-json`);
//   - the allocation regression gate in perf_test.go pins the
//     *allocation counts*, which unlike wall-clock times are
//     deterministic, so CI fails when the hot path regresses.
//
// The matrix has two axes. The DiffImage rows measure the facade's
// whole-image diff with buffer reuse off ("before": the
// allocate-per-row path) and on ("after": append-path engines,
// per-worker scratch rows, arena-persisted results) over three
// workloads. The XORRow rows measure the per-row append hot path of
// each registry engine on the same workloads.
package perf

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"sysrle"
	"sysrle/internal/core"
	"sysrle/internal/rle"
	"sysrle/internal/workload"
)

// Workload names of the fixed matrix.
//
//   - similar: the paper's regime — a generated board and a scan
//     differing by a few small error runs per row; systolic engines
//     converge in O(run-count difference).
//   - random: two independently generated images — no similarity for
//     the algorithm to exploit.
//   - worst: alternating single-pixel runs, offset by one pixel
//     between the operands — the maximal run count for the width, and
//     the densest result (every pixel differs).
//   - sweep-sparse, sweep-cross, sweep-dense: the density sweep behind
//     the planner's representation crossover — single-pixel runs at a
//     controlled count per row. The endpoints hold every row well
//     below the crossover (16 runs/operand) or at the maximal
//     alternating density (width/2); sweep-cross mixes both in
//     alternating row blocks, the regime where per-row routing beats
//     *either* single representation. The three are the planner
//     acceptance gates (within 10% of the best single engine
//     everywhere, strictly ahead of pure RLE on the dense end).
var Workloads = []string{"similar", "random", "worst", "sweep-sparse", "sweep-cross", "sweep-dense"}

// Options sizes one harness run. The zero value is not runnable; use
// DefaultOptions.
type Options struct {
	// Width and Height size the generated images.
	Width, Height int
	// Seed makes workload generation reproducible.
	Seed int64
	// Engines lists the registry engines measured on the XORRow axis;
	// nil means every registered engine.
	Engines []string
	// Rounds repeats every cell's benchmark and keeps the fastest run
	// (the standard defence against scheduler noise on shared
	// machines); ≤ 1 means a single run. The committed report uses 3.
	Rounds int
}

// DefaultOptions is the committed-report configuration: images large
// enough that per-row costs dominate the fixed per-image overhead,
// each cell the fastest of three runs.
func DefaultOptions() Options {
	return Options{Width: 2000, Height: 64, Seed: 1999, Rounds: 3}
}

// Measurement is one cell of the matrix.
type Measurement struct {
	// Benchmark is the axis: "DiffImage" or "XORRow".
	Benchmark string `json:"benchmark"`
	// Engine is the registry engine name; for DiffImage rows it is
	// "default" (per-worker streams).
	Engine string `json:"engine"`
	// Workload is one of Workloads.
	Workload string `json:"workload"`
	// BufferReuse records which path a DiffImage row measured; XORRow
	// rows always use the append path and report true.
	BufferReuse bool `json:"buffer_reuse"`
	// NsPerOp, BytesPerOp, AllocsPerOp are the standard Go benchmark
	// metrics; Iterations is the N the framework settled on.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
}

// Report is one full harness run.
type Report struct {
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	MaxProcs  int           `json:"maxprocs"`
	Width     int           `json:"width"`
	Height    int           `json:"height"`
	Seed      int64         `json:"seed"`
	Results   []Measurement `json:"results"`
}

// Pair is one benchmark input: two images and their middle rows (the
// row-axis operands).
type Pair struct {
	A, B       *rle.Image
	RowA, RowB rle.Row
}

// GeneratePair builds the named workload at the given size,
// deterministically for a seed.
func GeneratePair(name string, width, height int, seed int64) (Pair, error) {
	rng := rand.New(rand.NewSource(seed))
	switch name {
	case "similar":
		a, err := workload.GenerateImage(rng, workload.PaperRow(width, 0.3), height)
		if err != nil {
			return Pair{}, err
		}
		b := a.Clone()
		ep := workload.CountForPixelFraction(width, 0.02, 1, 8)
		for y := 0; y < b.Height; y++ {
			mask, err := workload.ErrorMask(rng, width, ep)
			if err != nil {
				return Pair{}, err
			}
			b.Rows[y] = rle.XOR(b.Rows[y], mask)
		}
		return pairOf(a, b), nil
	case "random":
		a, err := workload.GenerateImage(rng, workload.PaperRow(width, 0.3), height)
		if err != nil {
			return Pair{}, err
		}
		b, err := workload.GenerateImage(rng, workload.PaperRow(width, 0.3), height)
		if err != nil {
			return Pair{}, err
		}
		return pairOf(a, b), nil
	case "worst":
		// Single-pixel runs at every even position in a, every odd
		// position in b: the maximal run count for the width and a
		// result where every pixel differs.
		a := rle.NewImage(width, height)
		b := rle.NewImage(width, height)
		rowA := make(rle.Row, 0, (width+1)/2)
		rowB := make(rle.Row, 0, width/2)
		for x := 0; x < width; x += 2 {
			rowA = append(rowA, rle.Run{Start: x, Length: 1})
		}
		for x := 1; x < width; x += 2 {
			rowB = append(rowB, rle.Run{Start: x, Length: 1})
		}
		for y := 0; y < height; y++ {
			a.Rows[y] = rowA
			b.Rows[y] = rowB
		}
		return pairOf(a, b), nil
	case "sweep-sparse", "sweep-cross", "sweep-dense":
		return sweepPair(name, width, height)
	default:
		return Pair{}, fmt.Errorf("perf: unknown workload %q (have %v)", name, Workloads)
	}
}

// sweepSparseRuns and sweepDenseRuns are the per-operand run counts of
// the density-sweep endpoints for a width: well below any plausible
// crossover, and the maximal alternating density (single-pixel runs,
// one blank column each).
func sweepSparseRuns(width int) int {
	runs := 16
	if max := width / 2; runs > max {
		runs = max
	}
	if runs < 1 {
		runs = 1
	}
	return runs
}

func sweepDenseRuns(width int) int {
	runs := width / 2
	if runs < 1 {
		runs = 1
	}
	return runs
}

// sweepRows builds one operand pair of the density sweep: runs
// single-pixel runs per operand, evenly spaced, with b offset one
// pixel from a so every run lands in the difference.
func sweepRows(width, runs int) (rle.Row, rle.Row) {
	rowA := make(rle.Row, 0, runs)
	rowB := make(rle.Row, 0, runs)
	step := width / runs
	if step < 2 {
		step = 2
	}
	for x := 0; x+1 < width && len(rowA) < runs; x += step {
		rowA = append(rowA, rle.Run{Start: x, Length: 1})
		rowB = append(rowB, rle.Run{Start: x + 1, Length: 1})
	}
	return rowA, rowB
}

func sweepPair(name string, width, height int) (Pair, error) {
	if width < 4 {
		return Pair{}, fmt.Errorf("perf: %s needs width ≥ 4, got %d", name, width)
	}
	sparseA, sparseB := sweepRows(width, sweepSparseRuns(width))
	denseA, denseB := sweepRows(width, sweepDenseRuns(width))
	// sweep-cross alternates sparse and dense blocks of rows — the
	// mixed-density regime where per-row routing beats either single
	// representation. Blocks (not single rows) so the router's
	// hysteresis sees the run-length structure real images have.
	blockSize := height / 8
	if blockSize < 1 {
		blockSize = 1
	}
	a := rle.NewImage(width, height)
	b := rle.NewImage(width, height)
	for y := 0; y < height; y++ {
		rowA, rowB := sparseA, sparseB
		switch name {
		case "sweep-dense":
			rowA, rowB = denseA, denseB
		case "sweep-cross":
			if (y/blockSize)%2 == 1 {
				rowA, rowB = denseA, denseB
			}
		}
		a.Rows[y] = rowA
		b.Rows[y] = rowB
	}
	return pairOf(a, b), nil
}

func pairOf(a, b *rle.Image) Pair {
	mid := a.Height / 2
	return Pair{A: a, B: b, RowA: a.Rows[mid], RowB: b.Rows[mid]}
}

// Run executes the full matrix and returns the report. Wall-clock
// numbers vary by machine; allocation counts are deterministic.
func Run(opts Options) (*Report, error) {
	rep := &Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		MaxProcs:  runtime.GOMAXPROCS(0),
		Width:     opts.Width,
		Height:    opts.Height,
		Seed:      opts.Seed,
	}
	engines := opts.Engines
	if engines == nil {
		engines = sysrle.EngineNames()
	}
	for _, wl := range Workloads {
		pair, err := GeneratePair(wl, opts.Width, opts.Height, opts.Seed)
		if err != nil {
			return nil, err
		}
		// DiffImage axis: before (reuse off) and after (reuse on).
		for _, reuse := range []bool{false, true} {
			m, err := fastestOf(opts.Rounds, func() (Measurement, error) {
				return benchDiffImage(pair, wl, reuse)
			})
			if err != nil {
				return nil, err
			}
			rep.Results = append(rep.Results, m)
		}
		// XORRow axis: the per-row append hot path of each engine.
		for _, name := range engines {
			m, err := fastestOf(opts.Rounds, func() (Measurement, error) {
				return benchXORRow(name, pair, wl)
			})
			if err != nil {
				return nil, err
			}
			rep.Results = append(rep.Results, m)
		}
	}
	return rep, nil
}

// fastestOf runs one cell's benchmark rounds times and keeps the run
// with the lowest ns/op. Allocation counts are deterministic, so only
// the wall-clock side of the measurement is affected.
func fastestOf(rounds int, bench func() (Measurement, error)) (Measurement, error) {
	best, err := bench()
	if err != nil {
		return Measurement{}, err
	}
	for r := 1; r < rounds; r++ {
		m, err := bench()
		if err != nil {
			return Measurement{}, err
		}
		if m.NsPerOp < best.NsPerOp {
			best = m
		}
	}
	return best, nil
}

func benchDiffImage(pair Pair, wl string, reuse bool) (Measurement, error) {
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := sysrle.DiffImage(pair.A, pair.B,
				sysrle.WithBufferReuse(reuse)); err != nil {
				benchErr = err
				b.FailNow()
			}
		}
	})
	if benchErr != nil {
		return Measurement{}, fmt.Errorf("perf: DiffImage/%s: %w", wl, benchErr)
	}
	return Measurement{
		Benchmark:   "DiffImage",
		Engine:      "default",
		Workload:    wl,
		BufferReuse: reuse,
		NsPerOp:     float64(res.NsPerOp()),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		Iterations:  res.N,
	}, nil
}

func benchXORRow(engine string, pair Pair, wl string) (Measurement, error) {
	eng, err := sysrle.NewEngineByName(engine)
	if err != nil {
		return Measurement{}, err
	}
	if c, ok := eng.(interface{ Close() }); ok {
		defer c.Close()
	}
	// One op = one row, cycling through the whole image so workloads
	// with per-row structure (similar/random error placement, the
	// sweep-cross density mix) measure their average row, not just the
	// middle one.
	rowsA, rowsB := pair.A.Rows, pair.B.Rows
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var scratch rle.Row
		for i := 0; i < b.N; i++ {
			y := i % len(rowsA)
			r, err := core.XORRowAppend(eng, scratch[:0], rowsA[y], rowsB[y])
			if err != nil {
				benchErr = err
				b.FailNow()
			}
			scratch = r.Row
		}
	})
	if benchErr != nil {
		return Measurement{}, fmt.Errorf("perf: XORRow/%s/%s: %w", engine, wl, benchErr)
	}
	return Measurement{
		Benchmark:   "XORRow",
		Engine:      engine,
		Workload:    wl,
		BufferReuse: true,
		NsPerOp:     float64(res.NsPerOp()),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		Iterations:  res.N,
	}, nil
}

// Find returns the first measurement matching the axis coordinates,
// or nil.
func (r *Report) Find(benchmark, engine, wl string, reuse bool) *Measurement {
	for i := range r.Results {
		m := &r.Results[i]
		if m.Benchmark == benchmark && m.Engine == engine && m.Workload == wl && m.BufferReuse == reuse {
			return m
		}
	}
	return nil
}
