package perf

import (
	"fmt"
	"time"

	"sysrle"
	"sysrle/internal/core"
	"sysrle/internal/rle"
)

// Calibration of core.RowCostModel. The router only needs cost
// *ratios*, so the constants are fitted from four wall-clock
// measurements of the two real paths on sweep-style rows:
//
//	MergePerRun   = slope of the sequential merge over total run count
//	PackedPerRun  = slope of the packed path over total run count
//	                (fixed width, so the word term cancels)
//	PackedPerWord = slope of the packed path over word count
//	                (fixed run count, so the run term cancels)
//	PackedFixed   = packed intercept once both slopes are removed
//
// Each point is the minimum of several timed repetitions — the
// standard defence against scheduler noise; the minimum estimates the
// uncontended cost, which is what the ratios should compare.

// CalibrateRowCost measures the sequential merge and the packed-word
// XOR on the current machine and fits a RowCostModel for rows around
// the given width. `benchtab -calibrate` prints the result in a form
// that can be pasted into core.DefaultRowCostModel (see
// EXPERIMENTS.md, "Reproducing the crossover").
func CalibrateRowCost(width int) (core.RowCostModel, error) {
	if width < 256 {
		return core.RowCostModel{}, fmt.Errorf("perf: calibration needs width ≥ 256, got %d", width)
	}
	seq, err := sysrle.NewEngineByName("sequential")
	if err != nil {
		return core.RowCostModel{}, err
	}
	packed, err := sysrle.NewEngineByName("packed")
	if err != nil {
		return core.RowCostModel{}, err
	}
	// The high point is the maximal alternating density — the regime
	// the packed path exists for — so the fitted slope is anchored
	// where routing it matters; the low point sits deep in merge
	// territory. The 16× spread keeps slope noise small.
	rLo, rHi := width/32, width/2
	aLo, bLo := sweepRows(width, rLo)
	aHi, bHi := sweepRows(width, rHi)
	// The same run count at four times the width isolates the word
	// slope. sweepRows spaces runs over the full width, so the wide
	// rows exercise the same paint count over 4× the words.
	aWide, bWide := sweepRows(4*width, rLo)

	mergeLo := measureRowNs(seq, aLo, bLo)
	mergeHi := measureRowNs(seq, aHi, bHi)
	packLo := measureRowNs(packed, aLo, bLo)
	packHi := measureRowNs(packed, aHi, bHi)
	packWide := measureRowNs(packed, aWide, bWide)

	dRuns := float64(2 * (len(aHi) - len(aLo))) // total runs = 2 × per-operand
	words := func(w int) float64 { return float64((w + 63) / 64) }
	m := core.RowCostModel{
		MergePerRun:   (mergeHi - mergeLo) / dRuns,
		PackedPerRun:  (packHi - packLo) / dRuns,
		PackedPerWord: (packWide - packLo) / (words(4*width) - words(width)),
	}
	m.PackedFixed = packLo - m.PackedPerWord*words(width) - m.PackedPerRun*float64(2*len(aLo))
	// Clamp pathological fits (a negative constant can only come from
	// measurement noise) so the model always prices both paths ≥ 0.
	for _, p := range []*float64{&m.MergePerRun, &m.PackedPerRun, &m.PackedPerWord, &m.PackedFixed} {
		if *p < 0 {
			*p = 0
		}
	}
	return m, nil
}

// measureRowNs times one warm append-path row diff: minimum of nine
// repetitions, each long enough to amortise timer granularity and
// scheduler preemptions.
func measureRowNs(eng core.Engine, a, b rle.Row) float64 {
	return measureRowsNs(eng, []rle.Row{a}, []rle.Row{b})
}

// measureRowsNs times a warm in-order pass over a row set, returning
// ns per row — the multi-row form keeps routing state (the planner's
// hysteresis) in its production regime. Minimum of nine repetitions,
// each long enough to amortise timer granularity and scheduler
// preemptions.
func measureRowsNs(eng core.Engine, rowsA, rowsB []rle.Row) float64 {
	var scratch rle.Row
	once := func() {
		for y := range rowsA {
			r, err := core.XORRowAppend(eng, scratch[:0], rowsA[y], rowsB[y])
			if err != nil {
				panic(err) // operands are internally generated and valid
			}
			scratch = r.Row
		}
	}
	once() // warm buffers
	// Grow the batch until one repetition takes ≥ 1ms.
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			once()
		}
		if elapsed := time.Since(start); elapsed >= time.Millisecond {
			break
		}
		iters *= 4
	}
	best := 0.0
	for rep := 0; rep < 9; rep++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			once()
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(iters*len(rowsA))
		if rep == 0 || ns < best {
			best = ns
		}
	}
	return best
}
