package perf

import (
	"encoding/json"
	"testing"

	"sysrle"
	"sysrle/internal/core"
	"sysrle/internal/rle"
)

// The allocation regression gate. Wall-clock benchmarks are too noisy
// to gate CI on, but allocation counts are deterministic: these tests
// pin the zero-allocation hot path with testing.AllocsPerRun and fail
// on any regression. CI runs them in the perf-smoke job.

func TestGeneratePairWorkloads(t *testing.T) {
	for _, wl := range Workloads {
		pair, err := GeneratePair(wl, 400, 16, 7)
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		if pair.A.Width != 400 || pair.A.Height != 16 || pair.B.Width != 400 {
			t.Errorf("%s: wrong dimensions", wl)
		}
		if len(pair.RowA) == 0 || len(pair.RowB) == 0 {
			t.Errorf("%s: empty benchmark rows", wl)
		}
		// Determinism: the same seed generates the same pair.
		again, err := GeneratePair(wl, 400, 16, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !pair.A.Equal(again.A) || !pair.B.Equal(again.B) {
			t.Errorf("%s: generation not deterministic", wl)
		}
	}
	if _, err := GeneratePair("quantum", 400, 16, 7); err == nil {
		t.Error("unknown workload accepted")
	}
}

// TestDiffImageAllocReduction is the tentpole gate: on the similar-
// images workload the buffer-reuse path must allocate at most half of
// what the allocate-per-row path does. The committed BENCH_PR6.json
// numbers come from the same matrix.
func TestDiffImageAllocReduction(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are nondeterministic under -race (sync.Pool drops)")
	}
	pair, err := GeneratePair("similar", 1000, 64, 1999)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(reuse bool) float64 {
		return testing.AllocsPerRun(5, func() {
			if _, _, err := sysrle.DiffImage(pair.A, pair.B,
				sysrle.WithWorkers(2),
				sysrle.WithBufferReuse(reuse)); err != nil {
				t.Fatal(err)
			}
		})
	}
	before := measure(false)
	after := measure(true)
	t.Logf("DiffImage similar: %.0f allocs/op without reuse, %.0f with", before, after)
	if after > before/2 {
		t.Errorf("buffer reuse saves too little: %.0f → %.0f allocs/op (need ≥50%% reduction)", before, after)
	}
}

// TestXORRowAppendSteadyStateZeroAllocs pins the per-row hot path:
// once the scratch row and pooled cell buffers are warm, the
// shareable engines complete a row without allocating at all.
func TestXORRowAppendSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are nondeterministic under -race (sync.Pool drops)")
	}
	pair, err := GeneratePair("similar", 1000, 8, 1999)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"lockstep", "sequential", "sparse", "stream"} {
		eng, err := sysrle.NewEngineByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var scratch rle.Row
		warm := func() {
			r, err := core.XORRowAppend(eng, scratch[:0], pair.RowA, pair.RowB)
			if err != nil {
				t.Fatal(err)
			}
			scratch = r.Row
		}
		warm()
		if n := testing.AllocsPerRun(20, warm); n != 0 {
			t.Errorf("%s: %v allocs/op on the warm append path, want 0", name, n)
		}
	}
}

func TestRunSmallMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark matrix in -short mode")
	}
	opts := Options{Width: 200, Height: 8, Seed: 7, Engines: []string{"lockstep", "sequential"}}
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	// 3 workloads × (2 DiffImage paths + 2 engines).
	if want := len(Workloads) * 4; len(rep.Results) != want {
		t.Fatalf("got %d measurements, want %d", len(rep.Results), want)
	}
	for _, m := range rep.Results {
		if m.NsPerOp <= 0 || m.Iterations <= 0 {
			t.Errorf("%s/%s/%s: implausible measurement %+v", m.Benchmark, m.Engine, m.Workload, m)
		}
	}
	if rep.Find("DiffImage", "default", "similar", true) == nil {
		t.Error("Find missed the headline cell")
	}
	if rep.Find("DiffImage", "default", "nope", true) != nil {
		t.Error("Find invented a cell")
	}
	// The report must round-trip as JSON — it is the file format of
	// BENCH_PR6.json.
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(rep.Results) || back.GoVersion != rep.GoVersion {
		t.Error("JSON round trip lost data")
	}
}

// TestPlannerSweepZeroAllocs extends the warm-append gate to the
// hybrid planner across the whole density sweep: whichever path the
// router picks, a warm planner must not allocate.
func TestPlannerSweepZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are nondeterministic under -race (sync.Pool drops)")
	}
	for _, wl := range []string{"sweep-sparse", "sweep-cross", "sweep-dense"} {
		pair, err := GeneratePair(wl, 1000, 8, 1999)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := sysrle.NewEngineByName("planner")
		if err != nil {
			t.Fatal(err)
		}
		// A full row pass per round so sweep-cross exercises both
		// routes (and the hysteresis switches between them) warm.
		var scratch rle.Row
		warm := func() {
			for y := range pair.A.Rows {
				r, err := core.XORRowAppend(eng, scratch[:0], pair.A.Rows[y], pair.B.Rows[y])
				if err != nil {
					t.Fatal(err)
				}
				scratch = r.Row
			}
		}
		warm()
		if n := testing.AllocsPerRun(20, warm); n != 0 {
			t.Errorf("%s: %v allocs/pass on the warm planner append path, want 0", wl, n)
		}
	}
}

// TestPlannerSmokeCompetitive is the planner acceptance gate: on every
// density-sweep workload the hybrid must price within 10% of the best
// single engine, and on the dense endpoint and the mixed sweep it must
// strictly beat the pure-RLE merge (that is the whole point of
// routing). Wall-clock gates are retried a few times so one scheduler
// hiccup doesn't fail CI; each attempt already takes the minimum of
// repeated timings, over a full in-order row pass so hysteresis runs
// in its production regime.
func TestPlannerSmokeCompetitive(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock gate in -short mode")
	}
	if raceEnabled {
		t.Skip("wall-clock comparisons are meaningless under -race")
	}
	const width, attempts = 2000, 4
	measure := func(engine string, pair Pair) float64 {
		eng, err := sysrle.NewEngineByName(engine)
		if err != nil {
			t.Fatal(err)
		}
		return measureRowsNs(eng, pair.A.Rows, pair.B.Rows)
	}
	for _, wl := range []string{"sweep-sparse", "sweep-cross", "sweep-dense"} {
		pair, err := GeneratePair(wl, width, 16, 1999)
		if err != nil {
			t.Fatal(err)
		}
		var planner, seq, packed float64
		ok := false
		for try := 0; try < attempts && !ok; try++ {
			planner = measure("planner", pair)
			seq = measure("sequential", pair)
			packed = measure("packed", pair)
			best := seq
			if packed < best {
				best = packed
			}
			ok = planner <= best*1.10
			if wl != "sweep-sparse" {
				ok = ok && planner < seq
			}
		}
		t.Logf("%s: planner %.0f ns/row, sequential %.0f, packed %.0f", wl, planner, seq, packed)
		if !ok {
			t.Errorf("%s: planner %.0f ns/row not within 10%% of best single engine (sequential %.0f, packed %.0f)",
				wl, planner, seq, packed)
		}
	}
}

// TestCalibrateRowCost sanity-checks the fit: the constants must come
// out non-negative with a positive merge slope, and the fitted model
// must still place a finite crossover (the merge path has to lose
// eventually on this hardware, or the planner is pointless).
func TestCalibrateRowCost(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration benchmarks in -short mode")
	}
	if _, err := CalibrateRowCost(10); err == nil {
		t.Error("degenerate width accepted")
	}
	// The slopes of the two paths are close on any machine, so one
	// noisy run can fail to find a crossover; retry a few times and
	// demand at least one plausible fit.
	const attempts = 3
	ok := false
	var m core.RowCostModel
	for try := 0; try < attempts && !ok; try++ {
		var err error
		m, err = CalibrateRowCost(2048)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("calibrated: %+v (crossover at width 2048: %d total runs)", m, m.CrossoverRuns(2048))
		if m.MergePerRun <= 0 {
			t.Fatalf("MergePerRun = %v, want > 0", m.MergePerRun)
		}
		if m.PackedPerWord < 0 || m.PackedPerRun < 0 || m.PackedFixed < 0 {
			t.Fatalf("negative packed constants: %+v", m)
		}
		cross := m.CrossoverRuns(2048)
		ok = cross > 0 && cross <= 2048
	}
	if !ok {
		t.Errorf("no attempt found a plausible width-2048 crossover: %+v", m)
	}
}
