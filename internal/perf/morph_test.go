package perf

import (
	"testing"
	"time"

	"sysrle/internal/bitmap"
	"sysrle/internal/rle"
	"sysrle/internal/runmorph"
)

func TestGenerateDocWorkloads(t *testing.T) {
	var densities []float64
	for _, wl := range MorphWorkloads {
		page, err := GenerateDoc(wl, 620, 877, 7)
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		if page.Width != 620 || page.Height != 877 {
			t.Errorf("%s: page is %dx%d", wl, page.Width, page.Height)
		}
		if err := page.Validate(); err != nil {
			t.Errorf("%s: invalid page: %v", wl, err)
		}
		densities = append(densities, page.Density())
		again, err := GenerateDoc(wl, 620, 877, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !page.Equal(again) {
			t.Errorf("%s: generation not deterministic", wl)
		}
	}
	// The axis is ordered by increasing density.
	for i := 1; i < len(densities); i++ {
		if densities[i] <= densities[i-1] {
			t.Errorf("densities not increasing: %v", densities)
		}
	}
	if _, err := GenerateDoc("doc-imaginary", 620, 877, 7); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunMorphSmallMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark matrix in -short mode")
	}
	cells, err := RunMorph(MorphOptions{Width: 310, Height: 438, Seed: 7, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 3 workloads × 2 benchmarks × 3 engines.
	if want := len(MorphWorkloads) * 2 * len(MorphEngines); len(cells) != want {
		t.Fatalf("got %d measurements, want %d", len(cells), want)
	}
	for _, m := range cells {
		if m.NsPerOp <= 0 || m.Iterations <= 0 {
			t.Errorf("%s/%s/%s: implausible measurement %+v", m.Benchmark, m.Engine, m.Workload, m)
		}
	}
}

// TestMorphRowAppendZeroAllocs pins the append contract of the
// row-level morphology kernels: with caller-owned scratch of adequate
// capacity, warm AppendDilateRow/AppendErodeRow never allocate.
func TestMorphRowAppendZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are nondeterministic under -race (sync.Pool drops)")
	}
	page, err := GenerateDoc("doc-mixed", 620, 877, 1999)
	if err != nil {
		t.Fatal(err)
	}
	rows := page.Rows
	var dil, ero rle.Row
	warm := func() {
		for _, row := range rows {
			dil = runmorph.AppendDilateRow(dil[:0], row, 2, 2, page.Width)
			ero = runmorph.AppendErodeRow(ero[:0], row, 2, 2)
		}
	}
	warm()
	if n := testing.AllocsPerRun(20, warm); n != 0 {
		t.Errorf("%v allocs/pass on the warm morphology row kernels, want 0", n)
	}
}

// TestRunmorphSmokeCompetitive is the page-scale acceptance gate: the
// docclean-representative operation (9×9 opening) must strictly beat
// the word-shift bitmap brute force on the sparse A4 document — the
// regime the run-native engine exists for. Wall-clock, so retried a
// few times; each attempt takes the fastest of repeated timings.
func TestRunmorphSmokeCompetitive(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock gate in -short mode")
	}
	if raceEnabled {
		t.Skip("wall-clock comparisons are meaningless under -race")
	}
	page, err := GenerateDoc("doc-sparse", 2480, 3508, 1999)
	if err != nil {
		t.Fatal(err)
	}
	se := morphOpenSE
	op := new(runmorph.Op)
	bm := bitmap.FromRLE(page)
	fastest := func(f func()) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	const attempts = 4
	var run, brute time.Duration
	ok := false
	for try := 0; try < attempts && !ok; try++ {
		run = fastest(func() {
			if _, err := op.Open(page, se); err != nil {
				t.Fatal(err)
			}
		})
		brute = fastest(func() {
			eroded, err := bitmap.ErodeRect(bm, se.W, se.H, se.OX, se.OY)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := bitmap.DilateRect(eroded, se.W, se.H, se.OX, se.OY); err != nil {
				t.Fatal(err)
			}
		})
		ok = run < brute
	}
	t.Logf("open %s on sparse A4: runmorph %v, bitmap %v", se, run, brute)
	if !ok {
		t.Errorf("run-native opening (%v) not faster than the bitmap brute force (%v) on a sparse A4 page", run, brute)
	}
}
