//go:build race

package perf

// Under the race detector sync.Pool randomly drops items (by design,
// to widen interleavings), so pool-backed allocation counts are not
// deterministic. The allocation gates skip under -race; CI runs them
// in the dedicated perf-smoke job without it.
const raceEnabled = true
