package perf

// The page-scale morphology matrix: run-native interval-algebra
// morphology (internal/runmorph) against the word-parallel bitmap
// baseline on synthetic scanned documents. The contrast the paper
// draws is content-dependence: the bitmap pays O(words · (w + h))
// whatever the page holds, the run-native engine pays O(runs), so the
// sparse/mixed/dense document axis shows both the big-SE regime where
// runs win by an order of magnitude and the small-SE dense crossover
// where the bitmap pulls ahead.

import (
	"fmt"
	"math/rand"
	"testing"

	"sysrle/internal/bitmap"
	"sysrle/internal/rle"
	"sysrle/internal/runmorph"
	"sysrle/internal/workload"
)

// MorphWorkloads are the document regimes of the morphology matrix,
// ordered by increasing foreground density (≈0.03, ≈0.09, ≈0.17 at
// A4).
var MorphWorkloads = []string{"doc-sparse", "doc-mixed", "doc-dense"}

// MorphEngines are the implementations measured on every cell:
// direct run-native, run-native through the separable 1-D
// decomposition, and the word-shift bitmap brute force.
var MorphEngines = []string{"runmorph", "decomposed", "bitmap"}

// The two structuring-element regimes: the big square opening the
// docclean pipeline leans on, and the small dilation where the
// bitmap's content-independence can win on dense pages.
var (
	morphOpenSE   = runmorph.Rect(9, 9)
	morphDilateSE = runmorph.Rect(5, 5)
)

// MorphOptions sizes one morphology-matrix run.
type MorphOptions struct {
	// Width and Height are the page size; the committed report uses
	// A4 at 300 dpi.
	Width, Height int
	// Seed drives page generation.
	Seed int64
	// Rounds keeps the fastest of this many runs per cell.
	Rounds int
}

// DefaultMorphOptions is the committed-report configuration.
func DefaultMorphOptions() MorphOptions {
	return MorphOptions{Width: 2480, Height: 3508, Seed: 1999, Rounds: 3}
}

// docParams maps a morphology workload name to its page model.
func docParams(name string, width, height int) (workload.DocParams, error) {
	p := workload.A4Doc()
	p.Width, p.Height = width, height
	if m := width / 16; m < p.Margin {
		p.Margin = m
	}
	switch name {
	case "doc-sparse":
		// Widely spaced short paragraphs: the regime §1's compressed
		// pages live in.
		p.LineSpacing = p.FontHeight * 4
		p.ParaEvery = 3
		p.Rules, p.Boxes = 2, 1
		p.SpeckleCount = 40
	case "doc-mixed":
		// The default A4 text page.
	case "doc-dense":
		// Tightly set text, many boxes, heavy noise.
		p.LineSpacing = p.FontHeight + 2
		p.CharGap = 2
		p.WordGap = 8
		p.ParaEvery = 0
		p.Boxes = 6
		p.SpeckleCount = 1500
	default:
		return p, fmt.Errorf("perf: unknown morph workload %q (have %v)", name, MorphWorkloads)
	}
	return p, nil
}

// GenerateDoc builds the named document workload deterministically.
func GenerateDoc(name string, width, height int, seed int64) (*rle.Image, error) {
	p, err := docParams(name, width, height)
	if err != nil {
		return nil, err
	}
	return workload.GenerateDocument(rand.New(rand.NewSource(seed)), p)
}

// RunMorph executes the morphology matrix and returns its cells in
// the shared Measurement schema (Benchmark "MorphOpen9" /
// "MorphDilate5").
func RunMorph(opts MorphOptions) ([]Measurement, error) {
	if opts.Rounds < 1 {
		opts.Rounds = 1
	}
	var out []Measurement
	for _, wl := range MorphWorkloads {
		page, err := GenerateDoc(wl, opts.Width, opts.Height, opts.Seed)
		if err != nil {
			return nil, err
		}
		for _, cell := range []struct {
			benchmark string
			se        runmorph.SE
			open      bool
		}{
			{"MorphOpen9", morphOpenSE, true},
			{"MorphDilate5", morphDilateSE, false},
		} {
			for _, engine := range MorphEngines {
				m, err := fastestOf(opts.Rounds, func() (Measurement, error) {
					return benchMorph(engine, cell.benchmark, wl, page, cell.se, cell.open)
				})
				if err != nil {
					return nil, err
				}
				out = append(out, m)
			}
		}
	}
	return out, nil
}

// morphOnce runs one operation of the matrix on one engine; the
// returned image keeps the compiler from eliding the work.
func morphOnce(engine string, op *runmorph.Op, page *rle.Image, bm *bitmap.Bitmap, se runmorph.SE, open bool) (area int, err error) {
	switch engine {
	case "runmorph":
		var img *rle.Image
		if open {
			img, err = op.Open(page, se)
		} else {
			img, err = op.Dilate(page, se)
		}
		if err != nil {
			return 0, err
		}
		return img.Area(), nil
	case "decomposed":
		factors := se.Decompose()
		var img *rle.Image
		if open {
			if img, err = op.ErodeSeq(page, factors); err != nil {
				return 0, err
			}
			img, err = op.DilateSeq(img, factors)
		} else {
			img, err = op.DilateSeq(page, factors)
		}
		if err != nil {
			return 0, err
		}
		return img.Area(), nil
	case "bitmap":
		var b *bitmap.Bitmap
		if open {
			if b, err = bitmap.ErodeRect(bm, se.W, se.H, se.OX, se.OY); err != nil {
				return 0, err
			}
			b, err = bitmap.DilateRect(b, se.W, se.H, se.OX, se.OY)
		} else {
			b, err = bitmap.DilateRect(bm, se.W, se.H, se.OX, se.OY)
		}
		if err != nil {
			return 0, err
		}
		return b.Popcount(), nil
	default:
		return 0, fmt.Errorf("perf: unknown morph engine %q (have %v)", engine, MorphEngines)
	}
}

func benchMorph(engine, benchmark, wl string, page *rle.Image, se runmorph.SE, open bool) (Measurement, error) {
	op := new(runmorph.Op)
	var bm *bitmap.Bitmap
	if engine == "bitmap" {
		// The conversion is not part of the measured operation: the
		// baseline is granted its native representation up front, as
		// the paper grants the uncompressed algorithm its bitmap.
		bm = bitmap.FromRLE(page)
	}
	var benchErr error
	sink := 0
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			area, err := morphOnce(engine, op, page, bm, se, open)
			if err != nil {
				benchErr = err
				b.FailNow()
			}
			sink += area
		}
	})
	if benchErr != nil {
		return Measurement{}, fmt.Errorf("perf: %s/%s/%s: %w", benchmark, engine, wl, benchErr)
	}
	_ = sink
	return Measurement{
		Benchmark:   benchmark,
		Engine:      engine,
		Workload:    wl,
		BufferReuse: true,
		NsPerOp:     float64(res.NsPerOp()),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		Iterations:  res.N,
	}, nil
}
