// Package refstore is the content-addressed reference-image registry
// for the inspection service. The paper's motivating workload (§1)
// diffs one golden reference board against a stream of thousands of
// scans; without a registry every request re-uploads and re-decodes
// the reference, paying exactly the cost the compressed-domain
// algorithm exists to avoid. The store keeps each reference as its
// canonical RLEB encoding — compact, and the basis of the SHA-256
// content address — plus an LRU cache of decoded *rle.Image values
// under a configurable byte budget, so a hot reference is decoded
// once and shared by every subsequent diff, inspect and batch job.
//
// Identity is content: uploading the same image twice yields the same
// id and a single stored copy. Decoded images handed out by Get are
// shared across callers and MUST be treated as read-only.
//
// Telemetry (when a registry is configured):
//
//	sysrle_refstore_hits_total      decoded-cache hits
//	sysrle_refstore_misses_total    decoded-cache misses (each is one decode)
//	sysrle_refstore_decodes_total   RLEB decodes performed
//	sysrle_refstore_evictions_total cache evictions (budget or TTL), by reason
//	sysrle_refstore_refs            registered references (gauge)
//	sysrle_refstore_resident_bytes  decoded bytes resident in cache (gauge)
//	sysrle_refstore_encoded_bytes   encoded bytes held by the registry (gauge)
package refstore

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sysrle/internal/clock"
	"sysrle/internal/rle"
	"sysrle/internal/store"
	"sysrle/internal/telemetry"
)

// ErrNotFound reports a reference id with no registered image.
var ErrNotFound = errors.New("refstore: reference not found")

// DefaultCacheBytes is the decoded-image LRU budget when Config
// leaves it zero: 256 MiB, roughly a thousand decoded PCB scans.
const DefaultCacheBytes = 256 << 20

// Config tunes a Store; the zero value gets production defaults.
type Config struct {
	// CacheBytes bounds the decoded-image LRU cache. 0 means
	// DefaultCacheBytes; negative disables decoded caching entirely
	// (every Get decodes).
	CacheBytes int64
	// TTL evicts references not touched (stored, fetched or listed
	// by id) within the window. 0 or negative means no expiry. With a
	// Disk tier, expiry frees memory only — the reference reloads from
	// disk on its next access; without one, expiry is removal.
	TTL time.Duration
	// Registry receives telemetry; nil records nothing.
	Registry *telemetry.Registry
	// Clock drives TTL bookkeeping; nil means clock.System().
	Clock clock.Clock
	// Disk, when non-nil, is the durable tier: every Put is written
	// through to the content-addressed blob store before it is
	// acknowledged, existing blobs are hydrated at New, and lookups
	// fall back to disk on a memory miss. The blob bytes ARE the
	// canonical RLEB encoding, so the blob id and the reference id
	// coincide.
	Disk *store.Store
}

// Meta describes one registered reference.
type Meta struct {
	ID           string    `json:"id"`
	Width        int       `json:"width"`
	Height       int       `json:"height"`
	Runs         int       `json:"runs"`
	Area         int       `json:"area"`
	EncodedBytes int       `json:"encoded_bytes"`
	DecodedBytes int64     `json:"decoded_bytes"`
	Created      time.Time `json:"created"`
}

// entry is one stored reference: the authoritative encoded bytes plus
// bookkeeping for TTL and the decoded cache.
type entry struct {
	meta     Meta
	encoded  []byte
	lastUsed time.Time

	decoded *rle.Image    // non-nil while resident in the LRU
	lruElem *list.Element // position in the LRU, nil when not resident
}

// Store is the registry. All methods are safe for concurrent use.
type Store struct {
	cfg Config

	mu       sync.Mutex
	refs     map[string]*entry
	lru      *list.List // of *entry, front = most recently used
	resident int64      // decoded bytes in the LRU
	encoded  int64      // encoded bytes across all refs

	hits, misses, decodes *telemetry.Counter
	evictBudget, evictTTL *telemetry.Counter
	refGauge, residentG   *telemetry.Gauge
	encodedG              *telemetry.Gauge
}

// New returns a store, hydrated from the disk tier when one is
// configured.
func New(cfg Config) *Store {
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = DefaultCacheBytes
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System()
	}
	s := &Store{cfg: cfg, refs: make(map[string]*entry), lru: list.New()}
	if reg := cfg.Registry; reg != nil {
		reg.Help("sysrle_refstore_hits_total", "Decoded-reference cache hits.")
		reg.Help("sysrle_refstore_misses_total", "Decoded-reference cache misses.")
		s.hits = reg.Counter("sysrle_refstore_hits_total")
		s.misses = reg.Counter("sysrle_refstore_misses_total")
		s.decodes = reg.Counter("sysrle_refstore_decodes_total")
		s.evictBudget = reg.Counter("sysrle_refstore_evictions_total", telemetry.L("reason", "budget"))
		s.evictTTL = reg.Counter("sysrle_refstore_evictions_total", telemetry.L("reason", "ttl"))
		s.refGauge = reg.Gauge("sysrle_refstore_refs")
		s.residentG = reg.Gauge("sysrle_refstore_resident_bytes")
		s.encodedG = reg.Gauge("sysrle_refstore_encoded_bytes")
	}
	if cfg.Disk != nil {
		s.hydrate()
	}
	return s
}

// hydrate loads every blob in the disk tier into the in-memory
// registry at startup. Created times are lost across restarts (blobs
// carry only content); they restart at boot time, which also restarts
// the TTL window — references never expire while the process is down.
func (s *Store) hydrate() {
	ids, err := s.cfg.Disk.List()
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range ids {
		s.loadFromDiskLocked(id)
	}
	s.syncGauges()
}

// loadFromDiskLocked pulls one blob from the disk tier into the
// registry: verify (Get re-hashes), decode enough to rebuild Meta,
// insert. Returns nil when the blob is absent, corrupt or not a
// reference encoding.
func (s *Store) loadFromDiskLocked(id string) *entry {
	if s.cfg.Disk == nil {
		return nil
	}
	if _, ok := s.refs[id]; ok {
		return s.refs[id]
	}
	data, err := s.cfg.Disk.Get(id)
	if err != nil {
		return nil
	}
	img, err := rle.ReadBinary(bytes.NewReader(data))
	if err != nil {
		return nil
	}
	runs := img.RunCount()
	now := s.cfg.Clock.Now()
	e := &entry{
		meta: Meta{
			ID:           id,
			Width:        img.Width,
			Height:       img.Height,
			Runs:         runs,
			Area:         img.Area(),
			EncodedBytes: len(data),
			DecodedBytes: decodedSize(img.Width, img.Height, runs),
			Created:      now,
		},
		encoded:  data,
		lastUsed: now,
	}
	s.refs[id] = e
	s.encoded += int64(len(e.encoded))
	return e
}

// decodedSize estimates the heap footprint of a decoded image: the
// run payloads, the per-row slice headers, and the image header.
func decodedSize(width, height, runs int) int64 {
	_ = width
	return int64(runs)*16 + int64(height)*24 + 48
}

// ContentID computes the content address an image would be stored
// under — the hex SHA-256 of its canonical RLEB encoding — without
// registering it. A cluster coordinator uses this to place a
// reference on its owning shard before forwarding the upload.
func ContentID(img *rle.Image) (string, error) {
	if err := img.Validate(); err != nil {
		return "", fmt.Errorf("refstore: %w", err)
	}
	var buf bytes.Buffer
	if err := rle.WriteBinary(&buf, img.Canonicalize()); err != nil {
		return "", fmt.Errorf("refstore: encoding: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// Put registers an image and returns its content address. The id is
// the hex SHA-256 of the canonical RLEB encoding, so equal content
// always maps to the same id regardless of upload format.
func (s *Store) Put(img *rle.Image) (Meta, error) {
	if err := img.Validate(); err != nil {
		return Meta{}, fmt.Errorf("refstore: %w", err)
	}
	canon := img.Canonicalize()
	var buf bytes.Buffer
	if err := rle.WriteBinary(&buf, canon); err != nil {
		return Meta{}, fmt.Errorf("refstore: encoding: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	id := hex.EncodeToString(sum[:])

	// Write-through: the blob must be durable before the upload is
	// acknowledged. The blob store dedupes by content, so re-uploads
	// cost one Stat.
	if s.cfg.Disk != nil {
		if _, err := s.cfg.Disk.Put(buf.Bytes()); err != nil {
			return Meta{}, fmt.Errorf("refstore: durable tier: %w", err)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	if e, ok := s.refs[id]; ok {
		e.lastUsed = s.cfg.Clock.Now()
		return e.meta, nil
	}
	runs := canon.RunCount()
	e := &entry{
		meta: Meta{
			ID:           id,
			Width:        canon.Width,
			Height:       canon.Height,
			Runs:         runs,
			Area:         canon.Area(),
			EncodedBytes: buf.Len(),
			DecodedBytes: decodedSize(canon.Width, canon.Height, runs),
			Created:      s.cfg.Clock.Now(),
		},
		encoded:  buf.Bytes(),
		lastUsed: s.cfg.Clock.Now(),
	}
	s.refs[id] = e
	s.encoded += int64(len(e.encoded))
	s.syncGauges()
	return e.meta, nil
}

// Get returns the decoded reference. The first fetch after an upload
// or eviction decodes the stored RLEB bytes and parks the result in
// the LRU; later fetches share the cached image. Callers must treat
// the returned image as read-only.
func (s *Store) Get(id string) (*rle.Image, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	e, ok := s.refs[id]
	if !ok {
		if e = s.loadFromDiskLocked(id); e == nil {
			return nil, ErrNotFound
		}
	}
	e.lastUsed = s.cfg.Clock.Now()
	if e.decoded != nil {
		s.lru.MoveToFront(e.lruElem)
		if s.hits != nil {
			s.hits.Inc()
		}
		return e.decoded, nil
	}
	if s.misses != nil {
		s.misses.Inc()
	}
	img, err := rle.ReadBinary(bytes.NewReader(e.encoded))
	if err != nil {
		// Unreachable for bytes we encoded ourselves, but fail loudly
		// rather than hand out a nil image.
		return nil, fmt.Errorf("refstore: stored bytes corrupt: %w", err)
	}
	if s.decodes != nil {
		s.decodes.Inc()
	}
	if s.cfg.CacheBytes > 0 {
		e.decoded = img
		e.lruElem = s.lru.PushFront(e)
		s.resident += e.meta.DecodedBytes
		s.evictOverBudgetLocked(e)
	}
	s.syncGauges()
	return img, nil
}

// Meta returns the metadata for a reference without decoding it.
func (s *Store) Meta(id string) (Meta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	e, ok := s.refs[id]
	if !ok {
		if e = s.loadFromDiskLocked(id); e == nil {
			return Meta{}, false
		}
	}
	e.lastUsed = s.cfg.Clock.Now()
	return e.meta, true
}

// Encoded returns a copy of the canonical RLEB bytes for a reference.
func (s *Store) Encoded(id string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	e, ok := s.refs[id]
	if !ok {
		if e = s.loadFromDiskLocked(id); e == nil {
			return nil, false
		}
	}
	e.lastUsed = s.cfg.Clock.Now()
	return append([]byte(nil), e.encoded...), true
}

// Delete removes a reference — from the disk tier too, when one is
// configured; it reports whether the id existed.
func (s *Store) Delete(id string) bool {
	s.mu.Lock()
	e, ok := s.refs[id]
	if ok {
		s.removeLocked(e)
		s.syncGauges()
	}
	s.mu.Unlock()
	if s.cfg.Disk != nil {
		if !ok {
			ok = s.cfg.Disk.Has(id)
		}
		_ = s.cfg.Disk.Delete(id)
	}
	return ok
}

// List returns metadata for every live reference, newest first.
func (s *Store) List() []Meta {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	out := make([]Meta, 0, len(s.refs))
	for _, e := range s.refs {
		out = append(out, e.meta)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Created.Equal(out[j].Created) {
			return out[i].Created.After(out[j].Created)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len returns the number of live references.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	return len(s.refs)
}

// ResidentBytes returns the decoded bytes currently cached.
func (s *Store) ResidentBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resident
}

// CacheBudget returns the decoded-cache byte budget (≤ 0 when decoded
// caching is disabled) — the denominator of the service's cache
// pressure probe.
func (s *Store) CacheBudget() int64 {
	if s.cfg.CacheBytes < 0 {
		return 0
	}
	return s.cfg.CacheBytes
}

// Sweep evicts expired references now (they are otherwise collected
// lazily on access); it returns the number removed.
func (s *Store) Sweep() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.sweepLocked()
	s.syncGauges()
	return n
}

// removeLocked unlinks an entry from every structure.
func (s *Store) removeLocked(e *entry) {
	if e.lruElem != nil {
		s.lru.Remove(e.lruElem)
		s.resident -= e.meta.DecodedBytes
		e.lruElem, e.decoded = nil, nil
	}
	s.encoded -= int64(len(e.encoded))
	delete(s.refs, e.meta.ID)
}

// sweepLocked drops references idle past the TTL. It syncs the gauges
// itself when it removed anything: every accessor calls it, and an
// eviction on a read path (Meta, List, Len, Encoded) must not leave
// the gauges describing entries that are already gone.
func (s *Store) sweepLocked() int {
	if s.cfg.TTL <= 0 {
		return 0
	}
	deadline := s.cfg.Clock.Now().Add(-s.cfg.TTL)
	removed := 0
	for _, e := range s.refs {
		if e.lastUsed.Before(deadline) {
			s.removeLocked(e)
			removed++
			if s.evictTTL != nil {
				s.evictTTL.Inc()
			}
		}
	}
	if removed > 0 {
		s.syncGauges()
	}
	return removed
}

// evictOverBudgetLocked drops least-recently-used decoded images
// until the budget holds, never evicting keep (the image being
// returned right now — even an over-budget image is handed out, it
// just won't stay resident alongside others).
func (s *Store) evictOverBudgetLocked(keep *entry) {
	for s.resident > s.cfg.CacheBytes {
		back := s.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*entry)
		if e == keep && s.lru.Len() == 1 {
			return
		}
		if e == keep {
			// Evict the next-least-recent instead.
			prev := back.Prev()
			if prev == nil {
				return
			}
			e = prev.Value.(*entry)
		}
		s.lru.Remove(e.lruElem)
		s.resident -= e.meta.DecodedBytes
		e.lruElem, e.decoded = nil, nil
		if s.evictBudget != nil {
			s.evictBudget.Inc()
		}
	}
}

func (s *Store) syncGauges() {
	if s.refGauge == nil {
		return
	}
	s.refGauge.Set(int64(len(s.refs)))
	s.residentG.Set(s.resident)
	s.encodedG.Set(s.encoded)
}
