package refstore

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"sysrle/internal/clock"
	"sysrle/internal/rle"
	"sysrle/internal/telemetry"
)

func testImage(seed int64, w, h int) *rle.Image {
	rng := rand.New(rand.NewSource(seed))
	img := rle.NewImage(w, h)
	for y := 0; y < h; y++ {
		var row rle.Row
		x := 0
		for x < w-2 {
			x += 1 + rng.Intn(6)
			length := 1 + rng.Intn(4)
			if x+length > w {
				break
			}
			row = append(row, rle.Run{Start: x, Length: length})
			x += length + 1
		}
		img.SetRow(y, row)
	}
	return img
}

func TestPutIsContentAddressed(t *testing.T) {
	s := New(Config{})
	img := testImage(1, 64, 16)
	m1, err := s.Put(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1.ID) != 64 {
		t.Errorf("id %q is not a hex sha256", m1.ID)
	}
	// Same content again — including via a clone — is idempotent.
	m2, err := s.Put(img.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if m1.ID != m2.ID || s.Len() != 1 {
		t.Errorf("identical content got ids %s and %s (len %d)", m1.ID, m2.ID, s.Len())
	}
	// A non-canonical encoding of the same pixels hashes the same,
	// because the id covers the canonical RLEB bytes.
	split := img.Clone()
	for y, row := range split.Rows {
		var fragmented rle.Row
		for _, r := range row {
			for i := 0; i < r.Length; i++ {
				fragmented = append(fragmented, rle.Run{Start: r.Start + i, Length: 1})
			}
		}
		split.Rows[y] = fragmented
	}
	m3, err := s.Put(split)
	if err != nil {
		t.Fatal(err)
	}
	if m3.ID != m1.ID {
		t.Error("non-canonical run list changed the content address")
	}
	// Different content gets a different id.
	m4, err := s.Put(testImage(2, 64, 16))
	if err != nil {
		t.Fatal(err)
	}
	if m4.ID == m1.ID {
		t.Error("distinct images share an id")
	}
}

func TestGetDecodesOnceThenHits(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := New(Config{Registry: reg})
	img := testImage(3, 80, 20)
	meta, err := s.Put(img)
	if err != nil {
		t.Fatal(err)
	}
	const fetches = 10
	for i := 0; i < fetches; i++ {
		got, err := s.Get(meta.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(img.Canonicalize()) {
			t.Fatal("decoded reference differs from the upload")
		}
	}
	if v := reg.Counter("sysrle_refstore_decodes_total").Value(); v != 1 {
		t.Errorf("decodes = %d, want exactly 1 for %d fetches", v, fetches)
	}
	if v := reg.Counter("sysrle_refstore_misses_total").Value(); v != 1 {
		t.Errorf("misses = %d, want 1", v)
	}
	if v := reg.Counter("sysrle_refstore_hits_total").Value(); v != fetches-1 {
		t.Errorf("hits = %d, want %d", v, fetches-1)
	}
}

func TestGetUnknown(t *testing.T) {
	s := New(Config{})
	if _, err := s.Get("deadbeef"); err != ErrNotFound {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
	if _, ok := s.Meta("deadbeef"); ok {
		t.Error("Meta found a ghost")
	}
	if s.Delete("deadbeef") {
		t.Error("Delete found a ghost")
	}
}

func TestBudgetEviction(t *testing.T) {
	reg := telemetry.NewRegistry()
	one := testImage(4, 128, 64)
	oneSize := decodedSize(128, 64, one.Canonicalize().RunCount())
	// Budget fits one decoded image but not two.
	s := New(Config{CacheBytes: oneSize + oneSize/2, Registry: reg})
	m1, _ := s.Put(one)
	m2, _ := s.Put(testImage(5, 128, 64))
	if _, err := s.Get(m1.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(m2.ID); err != nil {
		t.Fatal(err)
	}
	if got := s.ResidentBytes(); got > oneSize+oneSize/2 {
		t.Errorf("resident %d exceeds budget", got)
	}
	if v := reg.Counter("sysrle_refstore_evictions_total", telemetry.L("reason", "budget")).Value(); v == 0 {
		t.Error("no budget eviction recorded")
	}
	// The evicted reference is still registered — it just re-decodes.
	if _, err := s.Get(m1.ID); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("sysrle_refstore_decodes_total").Value(); v != 3 {
		t.Errorf("decodes = %d, want 3 (two cold, one re-decode)", v)
	}
}

func TestCachingDisabled(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := New(Config{CacheBytes: -1, Registry: reg})
	m, _ := s.Put(testImage(6, 32, 8))
	for i := 0; i < 3; i++ {
		if _, err := s.Get(m.ID); err != nil {
			t.Fatal(err)
		}
	}
	if v := reg.Counter("sysrle_refstore_decodes_total").Value(); v != 3 {
		t.Errorf("decodes = %d, want 3 with caching disabled", v)
	}
	if s.ResidentBytes() != 0 {
		t.Error("resident bytes with caching disabled")
	}
}

func TestTTLEviction(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	s := New(Config{TTL: time.Minute, Clock: clk})
	m1, _ := s.Put(testImage(7, 32, 8))
	clk.Advance(30 * time.Second)
	m2, _ := s.Put(testImage(8, 32, 8))
	// Touching m1 resets its idle clock.
	if _, err := s.Get(m1.ID); err != nil {
		t.Fatal(err)
	}
	clk.Advance(45 * time.Second)
	// m2 is now 45s idle (fine); m1 was touched 45s ago (fine).
	if s.Len() != 2 {
		t.Fatalf("premature TTL eviction: len %d", s.Len())
	}
	clk.Advance(20 * time.Second)
	// m1 idle 65s → evicted; m2 idle 65s → evicted too.
	if n := s.Sweep(); n != 2 {
		t.Errorf("sweep removed %d, want 2", n)
	}
	if _, err := s.Get(m2.ID); err != ErrNotFound {
		t.Errorf("expired reference still served: %v", err)
	}
}

// TestGaugesNoDriftOnSweepAndDoubleDelete pins the telemetry gauges
// to the table they describe: a TTL sweep triggered from a read path
// must sync them (they used to go stale until the next write), and
// deleting an id twice must not double-subtract.
func TestGaugesNoDriftOnSweepAndDoubleDelete(t *testing.T) {
	reg := telemetry.NewRegistry()
	clk := clock.NewFake(time.Unix(1000, 0))
	s := New(Config{TTL: time.Minute, Clock: clk, Registry: reg})
	refG := reg.Gauge("sysrle_refstore_refs")
	encG := reg.Gauge("sysrle_refstore_encoded_bytes")

	m1, _ := s.Put(testImage(30, 64, 16))
	if _, err := s.Put(testImage(31, 64, 16)); err != nil {
		t.Fatal(err)
	}
	if refG.Value() != 2 || encG.Value() <= 0 {
		t.Fatalf("after 2 puts: refs=%d encoded=%d", refG.Value(), encG.Value())
	}

	// Expire everything and trigger the sweep from a read path only.
	clk.Advance(2 * time.Minute)
	if n := len(s.List()); n != 0 {
		t.Fatalf("expired refs still listed: %d", n)
	}
	if refG.Value() != 0 || encG.Value() != 0 {
		t.Errorf("gauges stale after read-path sweep: refs=%d encoded=%d", refG.Value(), encG.Value())
	}

	// Double delete: the second is a no-op, not a second subtraction.
	m1, _ = s.Put(testImage(30, 64, 16))
	if !s.Delete(m1.ID) {
		t.Fatal("first delete reported missing")
	}
	if s.Delete(m1.ID) {
		t.Fatal("second delete reported existing")
	}
	if refG.Value() != 0 || encG.Value() != 0 {
		t.Errorf("gauges drifted on double delete: refs=%d encoded=%d", refG.Value(), encG.Value())
	}
}

func TestListNewestFirst(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	s := New(Config{Clock: clk})
	var ids []string
	for i := 0; i < 3; i++ {
		m, err := s.Put(testImage(int64(10+i), 48, 12))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, m.ID)
		clk.Advance(time.Second)
	}
	list := s.List()
	if len(list) != 3 {
		t.Fatalf("len %d", len(list))
	}
	for i := range list {
		if list[i].ID != ids[2-i] {
			t.Errorf("list[%d] = %s, want %s", i, list[i].ID, ids[2-i])
		}
	}
}

// TestConcurrentAccess exercises upload/read/evict/delete under the
// race detector.
func TestConcurrentAccess(t *testing.T) {
	one := testImage(20, 96, 32)
	oneSize := decodedSize(96, 32, one.Canonicalize().RunCount())
	s := New(Config{CacheBytes: 2 * oneSize, Registry: telemetry.NewRegistry()})
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				img := testImage(int64(i%7), 96, 32)
				m, err := s.Put(img)
				if err != nil {
					t.Errorf("put: %v", err)
					return
				}
				got, err := s.Get(m.ID)
				if err == nil {
					if got.Width != 96 {
						t.Errorf("bad decode width %d", got.Width)
						return
					}
				} else if err != ErrNotFound {
					t.Errorf("get: %v", err)
					return
				}
				if i%9 == w {
					s.Delete(m.ID)
				}
				s.List()
				s.Len()
			}
		}(w)
	}
	wg.Wait()
	// Every surviving reference still round-trips.
	for _, m := range s.List() {
		if _, err := s.Get(m.ID); err != nil {
			t.Errorf("surviving ref %s: %v", m.ID[:8], err)
		}
	}
}

func TestPutRejectsInvalid(t *testing.T) {
	s := New(Config{})
	bad := rle.NewImage(8, 1)
	bad.Rows[0] = rle.Row{{Start: 6, Length: 5}} // runs past the width
	if _, err := s.Put(bad); err == nil {
		t.Error("invalid image registered")
	}
}

func ExampleStore() {
	s := New(Config{})
	img := rle.NewImage(16, 2)
	img.SetRow(0, rle.Row{{Start: 2, Length: 5}})
	meta, _ := s.Put(img)
	ref, _ := s.Get(meta.ID)
	fmt.Println(meta.Width, meta.Height, meta.Runs, ref.Area())
	// Output: 16 2 1 5
}
