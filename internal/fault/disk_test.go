package fault

import (
	"bytes"
	"errors"
	"testing"

	"sysrle/internal/store"
	"sysrle/internal/telemetry"
)

func TestParseDiskPlan(t *testing.T) {
	p, err := ParseDiskPlan("rate=0.25,seed=42,kinds=torn-write+sync-fail,slow=50ms")
	if err != nil {
		t.Fatalf("ParseDiskPlan: %v", err)
	}
	if p.Rate != 0.25 || p.Seed != 42 || len(p.Kinds) != 2 {
		t.Fatalf("parsed plan = %+v", p)
	}
	back, err := ParseDiskPlan(p.String())
	if err != nil || back.Rate != p.Rate || back.Seed != p.Seed {
		t.Fatalf("String roundtrip: %+v, %v", back, err)
	}
	for _, bad := range []string{"rate=2", "kinds=meteor", "slow=-1s", "nope=1", "rate"} {
		if _, err := ParseDiskPlan(bad); err == nil {
			t.Fatalf("ParseDiskPlan(%q) accepted", bad)
		}
	}
}

func TestWrapFSNilPassthrough(t *testing.T) {
	fs := store.NewMemFS()
	if got := WrapFS(fs, nil); got != store.FS(fs) {
		t.Fatal("nil injector must return inner unchanged")
	}
}

func TestTornWriteLeavesPrefix(t *testing.T) {
	inner := store.NewMemFS()
	inj := NewDiskInjector(DiskPlan{Rate: 1, Seed: 3, Kinds: []DiskKind{DiskTornWrite}}, nil)
	fs := WrapFS(inner, inj)
	_ = fs.MkdirAll("d")
	f, err := fs.Create("d/a")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	payload := []byte("this write will be torn somewhere in the middle")
	n, err := f.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write returned %v, want ErrInjected", err)
	}
	if n >= len(payload) {
		t.Fatalf("torn write claimed %d of %d bytes", n, len(payload))
	}
	_ = f.Close()
	got, _ := inner.ReadFile("d/a")
	if !bytes.Equal(got, payload[:n]) {
		t.Fatalf("on-disk bytes are not the reported prefix: %q", got)
	}
	if inj.Total() != 1 || inj.Injected()[DiskTornWrite] != 1 {
		t.Fatalf("injection accounting: %v", inj.Injected())
	}
}

func TestBitRotCaughtByStore(t *testing.T) {
	inner := store.NewMemFS()
	clean, err := store.Open(inner, "data/store", nil)
	if err != nil {
		t.Fatalf("Open store: %v", err)
	}
	id, err := clean.Put([]byte("reference bytes that will rot in transit"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	inj := NewDiskInjector(DiskPlan{Rate: 1, Seed: 9, Kinds: []DiskKind{DiskBitRot}}, nil)
	rotted, err := store.Open(WrapFS(inner, inj), "data/store", nil)
	if err != nil {
		t.Fatalf("Open rotted store: %v", err)
	}
	if _, err := rotted.Get(id); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("Get through bit-rot = %v, want ErrCorrupt", err)
	}
}

func TestSyncFailSurfaces(t *testing.T) {
	inner := store.NewMemFS()
	inj := NewDiskInjector(DiskPlan{Rate: 1, Seed: 5, Kinds: []DiskKind{DiskSyncFail}}, nil)
	fs := WrapFS(inner, inj)
	_ = fs.MkdirAll("d")
	f, _ := fs.Create("d/a")
	_, _ = f.Write([]byte("x"))
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Sync = %v, want ErrInjected", err)
	}
	_ = f.Close()
	if err := fs.SyncDir("d"); !errors.Is(err, ErrInjected) {
		t.Fatalf("SyncDir = %v, want ErrInjected", err)
	}
}

func TestENOSPCOnCreate(t *testing.T) {
	inner := store.NewMemFS()
	inj := NewDiskInjector(DiskPlan{Rate: 1, Seed: 5, Kinds: []DiskKind{DiskENOSPC}}, nil)
	fs := WrapFS(inner, inj)
	_ = fs.MkdirAll("d")
	if _, err := fs.Create("d/a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Create on full disk = %v, want ErrInjected", err)
	}
}

func TestDiskScheduleDeterministic(t *testing.T) {
	run := func() map[DiskKind]int64 {
		inner := store.NewMemFS()
		inj := NewDiskInjector(DiskPlan{Rate: 0.5, Seed: 77}, nil)
		fs := WrapFS(inner, inj)
		_ = fs.MkdirAll("d")
		for i := 0; i < 40; i++ {
			f, err := fs.Create("d/a")
			if err != nil {
				continue
			}
			_, _ = f.Write([]byte("payload"))
			_ = f.Sync()
			_ = f.Close()
			_, _ = fs.ReadFile("d/a")
			_ = fs.SyncDir("d")
		}
		return inj.Injected()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("rate=0.5 over 200 ops injected nothing")
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("schedule not deterministic: %v vs %v", a, b)
		}
	}
}

func TestDiskTelemetry(t *testing.T) {
	inner := store.NewMemFS()
	reg := telemetry.NewRegistry()
	inj := NewDiskInjector(DiskPlan{Rate: 1, Kinds: []DiskKind{DiskENOSPC}}, reg)
	fs := WrapFS(inner, inj)
	_ = fs.MkdirAll("d")
	_, _ = fs.Create("d/a")
	got := reg.Counter("sysrle_disk_fault_injected_total", telemetry.L("kind", string(DiskENOSPC))).Value()
	if got != 1 {
		t.Fatalf("telemetry counter = %d, want 1", got)
	}
}
