package fault

// HTTP-level fault injection: a http.RoundTripper wrapper that stalls
// or fails outbound requests on the same seeded schedule the engine
// wrapper uses. This is how cluster chaos tests model a slow or flaky
// peer — the coordinator's client transport is wrapped, so hedging and
// retry behaviour is exercised against deterministic misbehaviour.

import (
	"fmt"
	"net/http"
	"time"
)

// Transport injects transport-level faults into outbound HTTP calls.
// Only KindSlow and KindError apply at this layer: a slow fault stalls
// the request (respecting its context) before forwarding, an error
// fault fails the round trip with an error wrapping ErrInjected.
// Other kinds drawn from the plan pass the call through unharmed.
type Transport struct {
	inner http.RoundTripper
	inj   *Injector
}

// WrapTransport returns inner with faults injected per the injector's
// plan. A nil injector returns inner unchanged; a nil inner uses
// http.DefaultTransport.
func WrapTransport(inner http.RoundTripper, inj *Injector) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	if inj == nil {
		return inner
	}
	return &Transport{inner: inner, inj: inj}
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	kind, _, fire := t.inj.roll()
	if fire {
		switch kind {
		case KindError:
			t.inj.note(kind)
			return nil, fmt.Errorf("%w (%s %s)", ErrInjected, req.Method, req.URL.Path)
		case KindSlow:
			t.inj.note(kind)
			timer := time.NewTimer(t.inj.plan.SlowFor)
			select {
			case <-timer.C:
			case <-req.Context().Done():
				timer.Stop()
				return nil, req.Context().Err()
			}
		}
	}
	return t.inner.RoundTrip(req)
}
