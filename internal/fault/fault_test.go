package fault

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"sysrle/internal/core"
	"sysrle/internal/rle"
	"sysrle/internal/telemetry"
)

// randomRow builds a valid random row on [0, width).
func randomRow(rng *rand.Rand, width int) rle.Row {
	var bits []bool
	bits = make([]bool, width)
	for i := range bits {
		bits[i] = rng.Intn(3) == 0
	}
	return rle.FromBits(bits)
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("rate=0.25,seed=42,kinds=panic+slow,slow=5ms")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{Seed: 42, Rate: 0.25, Kinds: []Kind{KindPanic, KindSlow}, SlowFor: 5 * time.Millisecond}
	if !reflect.DeepEqual(p, want) {
		t.Errorf("got %+v want %+v", p, want)
	}
	// Round trip through String.
	back, err := ParsePlan(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, p) {
		t.Errorf("round trip %+v != %+v", back, p)
	}
	if _, err := ParsePlan(""); err != nil {
		t.Errorf("empty plan should parse: %v", err)
	}
	for _, bad := range []string{
		"rate=2", "rate=x", "seed=x", "kinds=quantum", "slow=-1s", "slow=x", "bogus=1", "noequals",
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

// TestDeterministicSchedule: the same seed must replay the same
// faults — the property that makes chaos runs reproducible.
func TestDeterministicSchedule(t *testing.T) {
	rows := make([]rle.Row, 64)
	rng := rand.New(rand.NewSource(7))
	for i := range rows {
		rows[i] = randomRow(rng, 80)
	}
	run := func() map[Kind]int64 {
		inj := NewInjector(Plan{Seed: 99, Rate: 0.5, SlowFor: time.Microsecond}, nil)
		eng := Wrap(core.Lockstep{}, inj)
		for i := 0; i+1 < len(rows); i++ {
			func() {
				defer func() { recover() }() // injected panics are expected
				_, _ = eng.XORRow(rows[i], rows[i+1])
			}()
		}
		return inj.Injected()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different faults: %v vs %v", a, b)
	}
	var total int64
	for _, n := range a {
		total += n
	}
	if total == 0 {
		t.Error("rate=0.5 over 63 calls injected nothing")
	}
}

func TestWrapNilInjector(t *testing.T) {
	inner := core.Sequential{}
	if got := Wrap(inner, nil); got != core.Engine(inner) {
		t.Errorf("Wrap(e, nil) = %v, want inner unchanged", got)
	}
}

// TestEachKindDetectedAndRecovered is the detect-and-recover loop per
// fault class: with rate=1 every call faults, and the verified engine
// must still converge to the sequential baseline's answer.
func TestEachKindDetectedAndRecovered(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, kind := range Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			inj := NewInjector(Plan{Seed: 5, Rate: 1, Kinds: []Kind{kind}, SlowFor: time.Microsecond}, nil)
			faults := 0
			v := core.NewVerified(Wrap(core.Lockstep{}, inj))
			v.OnFault = func(error) { faults++ }
			applied := false
			for i := 0; i < 32; i++ {
				a, b := randomRow(rng, 60), randomRow(rng, 60)
				want, _ := core.SequentialXOR(a, b)
				res, err := v.XORRow(a, b)
				if err != nil {
					t.Fatalf("call %d: %v", i, err)
				}
				if !res.Row.EqualBits(want) {
					t.Fatalf("call %d: got %v want %v", i, res.Row, want)
				}
				applied = applied || inj.Total() > 0
			}
			if !applied {
				t.Fatal("no fault of this kind was ever applied")
			}
			// Slow faults delay but do not corrupt, so detection only
			// fires for the value/control classes.
			if kind != KindSlow && faults == 0 {
				t.Errorf("kind %s: faults applied (%s) but none detected", kind, inj.InjectedString())
			}
			if kind == KindSlow && faults != 0 {
				t.Errorf("slow faults should not trip detection, got %d", faults)
			}
		})
	}
}

// TestInjectedErrorIsTyped: transient injected errors must be
// distinguishable from genuine failures.
func TestInjectedErrorIsTyped(t *testing.T) {
	inj := NewInjector(Plan{Seed: 1, Rate: 1, Kinds: []Kind{KindError}}, nil)
	eng := Wrap(core.Lockstep{}, inj)
	_, err := eng.XORRow(rle.Row{rle.Span(0, 3)}, rle.Row{rle.Span(2, 5)})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

// TestTelemetry: applied faults surface in the registry by kind.
func TestTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	inj := NewInjector(Plan{Seed: 2, Rate: 1, Kinds: []Kind{KindStuckEmpty}}, reg)
	eng := Wrap(core.Lockstep{}, inj)
	if _, err := eng.XORRow(rle.Row{rle.Span(0, 3)}, rle.Row{rle.Span(5, 9)}); err != nil {
		t.Fatal(err)
	}
	c := reg.Counter("sysrle_fault_injected_total", telemetry.L("kind", string(KindStuckEmpty)))
	if c.Value() != 1 {
		t.Errorf("counter = %d, want 1", c.Value())
	}
	var sb strings.Builder
	_ = reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `sysrle_fault_injected_total{kind="stuck-empty"} 1`) {
		t.Errorf("exposition missing fault counter:\n%s", sb.String())
	}
}
