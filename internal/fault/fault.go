// Package fault is a deterministic, seedable fault-injection
// framework for the systolic engines. The systolic-array literature
// treats cell-fault detection and recovery as a first-class concern
// (Brent–Kung–Luk style linear-time arrays assume cells can fail);
// this package provides the fault half of that story — Engine wraps
// any core.Engine and injects cell-level faults on a seeded schedule —
// while core.Verified provides the detection-and-recovery half.
//
// Fault classes map to concrete array failure modes:
//
//	corrupt-run    a cell's register latches a wrong span (the result
//	               gains an overlap or a bogus extension)
//	drop-run       a shift is lost between two cells (a result run
//	               silently disappears)
//	stuck-empty    a cell's output is stuck at the empty value, so the
//	               wired-AND termination fires with no result runs
//	error          a transient failure detected by the host interface
//	               (returned as an error wrapping ErrInjected)
//	slow           a cell misses its clock budget (the call sleeps)
//	panic          the simulated host crashes mid-row (the call panics)
//
// Everything is deterministic given Plan.Seed, so a chaos run that
// fails can be replayed exactly.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sysrle/internal/core"
	"sysrle/internal/rle"
	"sysrle/internal/telemetry"
)

// ErrInjected is the root of every injected transient error, so
// callers can distinguish chaos from genuine failures.
var ErrInjected = errors.New("fault: injected transient failure")

// Kind names one fault class.
type Kind string

// The fault classes. See the package comment for the array failure
// mode each one models.
const (
	KindCorruptRun Kind = "corrupt-run"
	KindDropRun    Kind = "drop-run"
	KindStuckEmpty Kind = "stuck-empty"
	KindError      Kind = "error"
	KindSlow       Kind = "slow"
	KindPanic      Kind = "panic"
)

// Kinds returns every fault class, in a stable order.
func Kinds() []Kind {
	return []Kind{KindCorruptRun, KindDropRun, KindStuckEmpty, KindError, KindSlow, KindPanic}
}

func validKind(k Kind) bool {
	for _, v := range Kinds() {
		if v == k {
			return true
		}
	}
	return false
}

// DefaultSlowFor is how long a slow fault stalls when the plan leaves
// SlowFor zero.
const DefaultSlowFor = 10 * time.Millisecond

// Plan is a deterministic fault schedule: each XORRow call draws from
// a PRNG seeded with Seed and, with probability Rate, injects one
// fault chosen uniformly from Kinds.
type Plan struct {
	// Seed seeds the schedule; the same seed replays the same faults.
	Seed int64
	// Rate is the per-call injection probability in [0, 1].
	Rate float64
	// Kinds restricts which fault classes may fire; empty means all.
	Kinds []Kind
	// SlowFor is the stall duration of a slow fault; 0 means
	// DefaultSlowFor.
	SlowFor time.Duration
}

// ParsePlan parses the -fault-inject flag syntax: comma-separated
// key=value pairs, e.g.
//
//	rate=0.05,seed=7,kinds=panic+slow,slow=50ms
//
// Unknown keys, malformed values, out-of-range rates and unknown fault
// kinds are errors. An empty kinds list (or no kinds key) enables all
// classes.
func ParsePlan(s string) (Plan, error) {
	p := Plan{Rate: 0.01}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Plan{}, fmt.Errorf("fault: bad plan term %q (want key=value)", part)
		}
		switch key {
		case "rate":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil || r < 0 || r > 1 {
				return Plan{}, fmt.Errorf("fault: bad rate %q (want 0..1)", val)
			}
			p.Rate = r
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("fault: bad seed %q", val)
			}
			p.Seed = n
		case "kinds":
			for _, k := range strings.Split(val, "+") {
				kind := Kind(strings.TrimSpace(k))
				if !validKind(kind) {
					return Plan{}, fmt.Errorf("fault: unknown kind %q (have %v)", k, Kinds())
				}
				p.Kinds = append(p.Kinds, kind)
			}
		case "slow":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return Plan{}, fmt.Errorf("fault: bad slow duration %q", val)
			}
			p.SlowFor = d
		default:
			return Plan{}, fmt.Errorf("fault: unknown plan key %q", key)
		}
	}
	return p, nil
}

// String renders the plan back into ParsePlan syntax.
func (p Plan) String() string {
	parts := []string{fmt.Sprintf("rate=%g", p.Rate), fmt.Sprintf("seed=%d", p.Seed)}
	if len(p.Kinds) > 0 {
		ks := make([]string, len(p.Kinds))
		for i, k := range p.Kinds {
			ks[i] = string(k)
		}
		parts = append(parts, "kinds="+strings.Join(ks, "+"))
	}
	if p.SlowFor > 0 {
		parts = append(parts, "slow="+p.SlowFor.String())
	}
	return strings.Join(parts, ",")
}

// Injector draws faults from a plan. One injector may be shared by
// many wrapped engines (the schedule is global, the way one flaky
// board is global to every array built on it); all methods are safe
// for concurrent use.
type Injector struct {
	plan Plan

	mu       sync.Mutex
	rng      *rand.Rand
	injected map[Kind]int64

	counters map[Kind]*telemetry.Counter
}

// NewInjector returns an injector following the plan, recording
// sysrle_fault_injected_total{kind=...} when reg is non-nil.
func NewInjector(plan Plan, reg *telemetry.Registry) *Injector {
	if plan.SlowFor <= 0 {
		plan.SlowFor = DefaultSlowFor
	}
	if len(plan.Kinds) == 0 {
		plan.Kinds = Kinds()
	}
	in := &Injector{
		plan:     plan,
		rng:      rand.New(rand.NewSource(plan.Seed)),
		injected: make(map[Kind]int64),
	}
	if reg != nil {
		reg.Help("sysrle_fault_injected_total", "Faults injected by the chaos engine, by kind.")
		in.counters = make(map[Kind]*telemetry.Counter, len(plan.Kinds))
		for _, k := range plan.Kinds {
			in.counters[k] = reg.Counter("sysrle_fault_injected_total", telemetry.L("kind", string(k)))
		}
	}
	return in
}

// Plan returns the schedule the injector follows.
func (in *Injector) Plan() Plan { return in.plan }

// roll decides whether the next call faults and, if so, which class
// fires and a position draw for run-level faults.
func (in *Injector) roll() (kind Kind, pos int, fire bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rng.Float64() >= in.plan.Rate {
		return "", 0, false
	}
	kind = in.plan.Kinds[in.rng.Intn(len(in.plan.Kinds))]
	return kind, in.rng.Intn(1 << 20), true
}

// note records one actually-applied fault.
func (in *Injector) note(k Kind) {
	in.mu.Lock()
	in.injected[k]++
	in.mu.Unlock()
	if c := in.counters[k]; c != nil {
		c.Inc()
	}
}

// Injected returns how many faults of each class have actually been
// applied (a drop-run drawn against an empty result, for example, is
// not counted — nothing was dropped).
func (in *Injector) Injected() map[Kind]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Kind]int64, len(in.injected))
	for k, v := range in.injected {
		out[k] = v
	}
	return out
}

// Total returns the total number of applied faults.
func (in *Injector) Total() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for _, v := range in.injected {
		n += v
	}
	return n
}

// InjectedString renders the applied-fault counts compactly for logs.
func (in *Injector) InjectedString() string {
	m := in.Injected()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, m[Kind(k)])
	}
	return strings.Join(parts, " ")
}

// Engine wraps an inner engine with fault injection. Wrap it in a
// core.Verified to get the full inject → detect → recover loop.
type Engine struct {
	inner core.Engine
	inj   *Injector
}

// Wrap returns inner with faults injected per the injector's plan. A
// nil injector returns inner unchanged, so chaos mode can be wired
// unconditionally and enabled by configuration.
func Wrap(inner core.Engine, inj *Injector) core.Engine {
	if inj == nil {
		return inner
	}
	return Engine{inner: inner, inj: inj}
}

// Name implements core.Engine.
func (e Engine) Name() string { return e.inner.Name() + "+fault" }

// XORRow implements core.Engine, possibly injecting one fault.
func (e Engine) XORRow(a, b rle.Row) (core.Result, error) {
	kind, pos, fire := e.inj.roll()
	if !fire {
		return e.inner.XORRow(a, b)
	}
	switch kind {
	case KindError:
		e.inj.note(kind)
		return core.Result{}, fmt.Errorf("%w (row with %d+%d runs)", ErrInjected, len(a), len(b))
	case KindPanic:
		e.inj.note(kind)
		panic(fmt.Sprintf("fault: injected panic (row with %d+%d runs)", len(a), len(b)))
	case KindSlow:
		e.inj.note(kind)
		time.Sleep(e.inj.plan.SlowFor)
		return e.inner.XORRow(a, b)
	}
	res, err := e.inner.XORRow(a, b)
	if err != nil {
		return res, err
	}
	switch kind {
	case KindStuckEmpty:
		// The result cells read back empty: the wired-AND saw
		// termination but every RegSmall output is stuck at ∅.
		e.inj.note(kind)
		res.Row = nil
	case KindDropRun:
		if n := len(res.Row); n > 0 {
			e.inj.note(kind)
			i := pos % n
			row := append(rle.Row(nil), res.Row[:i]...)
			res.Row = append(row, res.Row[i+1:]...)
		}
	case KindCorruptRun:
		if n := len(res.Row); n > 0 {
			e.inj.note(kind)
			row := res.Row.Clone()
			i := pos % n
			if i+1 < n {
				// Latch error: the run extends into its right
				// neighbour, violating the Theorem-2 ordering.
				row[i].Length = row[i+1].Start - row[i].Start + 1
			} else {
				// Last run: grow it past its true end.
				row[i].Length += 1 + pos%3
			}
			res.Row = row
		}
	}
	return res, nil
}
