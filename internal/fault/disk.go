// Disk fault injection: the storage counterpart of the engine-level
// chaos in fault.go. DiskInjector wraps any store.FS and makes it
// misbehave on a seeded schedule — torn writes, failed fsyncs, full
// disks, bit-rot on read, slow IO — so the durability stack (store,
// wal, auditlog) can be chaos-tested against the failure modes real
// disks actually exhibit, deterministically and under -race.
//
// Fault classes map to concrete disk failure modes:
//
//	torn-write   a write persists only a prefix before failing (power
//	             loss mid-write; the classic torn page)
//	enospc       create/write fails with a disk-full error
//	bitrot       a read returns data with one bit flipped (media decay
//	             below the checksum layer)
//	sync-fail    fsync (file or directory) reports failure — the
//	             durability promise itself breaks
//	slow         an IO stalls (overloaded device, NFS hiccup)
//
// Everything is deterministic given DiskPlan.Seed, so a chaos run that
// fails can be replayed exactly.
package fault

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"sysrle/internal/store"
	"sysrle/internal/telemetry"
)

// DiskKind names one disk fault class.
type DiskKind string

// The disk fault classes. See the comment above for the failure mode
// each one models.
const (
	DiskTornWrite DiskKind = "torn-write"
	DiskENOSPC    DiskKind = "enospc"
	DiskBitRot    DiskKind = "bitrot"
	DiskSyncFail  DiskKind = "sync-fail"
	DiskSlow      DiskKind = "slow"
)

// DiskKinds returns every disk fault class, in a stable order.
func DiskKinds() []DiskKind {
	return []DiskKind{DiskTornWrite, DiskENOSPC, DiskBitRot, DiskSyncFail, DiskSlow}
}

func validDiskKind(k DiskKind) bool {
	for _, v := range DiskKinds() {
		if v == k {
			return true
		}
	}
	return false
}

// DiskPlan is a deterministic disk fault schedule: each faultable FS
// operation draws from a PRNG seeded with Seed and, with probability
// Rate, injects one fault chosen uniformly from Kinds (restricted to
// the classes that apply to that operation).
type DiskPlan struct {
	// Seed seeds the schedule; the same seed replays the same faults.
	Seed int64
	// Rate is the per-operation injection probability in [0, 1].
	Rate float64
	// Kinds restricts which fault classes may fire; empty means all.
	Kinds []DiskKind
	// SlowFor is the stall duration of a slow fault; 0 means
	// DefaultSlowFor.
	SlowFor time.Duration
}

// ParseDiskPlan parses the -disk-fault flag syntax, the same shape as
// ParsePlan:
//
//	rate=0.05,seed=7,kinds=torn-write+sync-fail,slow=50ms
func ParseDiskPlan(s string) (DiskPlan, error) {
	p := DiskPlan{Rate: 0.01}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return DiskPlan{}, fmt.Errorf("fault: bad disk plan term %q (want key=value)", part)
		}
		switch key {
		case "rate":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil || r < 0 || r > 1 {
				return DiskPlan{}, fmt.Errorf("fault: bad rate %q (want 0..1)", val)
			}
			p.Rate = r
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return DiskPlan{}, fmt.Errorf("fault: bad seed %q", val)
			}
			p.Seed = n
		case "kinds":
			for _, k := range strings.Split(val, "+") {
				kind := DiskKind(strings.TrimSpace(k))
				if !validDiskKind(kind) {
					return DiskPlan{}, fmt.Errorf("fault: unknown disk kind %q (have %v)", k, DiskKinds())
				}
				p.Kinds = append(p.Kinds, kind)
			}
		case "slow":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return DiskPlan{}, fmt.Errorf("fault: bad slow duration %q", val)
			}
			p.SlowFor = d
		default:
			return DiskPlan{}, fmt.Errorf("fault: unknown disk plan key %q", key)
		}
	}
	return p, nil
}

// String renders the plan back into ParseDiskPlan syntax.
func (p DiskPlan) String() string {
	parts := []string{fmt.Sprintf("rate=%g", p.Rate), fmt.Sprintf("seed=%d", p.Seed)}
	if len(p.Kinds) > 0 {
		ks := make([]string, len(p.Kinds))
		for i, k := range p.Kinds {
			ks[i] = string(k)
		}
		parts = append(parts, "kinds="+strings.Join(ks, "+"))
	}
	if p.SlowFor > 0 {
		parts = append(parts, "slow="+p.SlowFor.String())
	}
	return strings.Join(parts, ",")
}

// DiskInjector draws disk faults from a plan. One injector is shared
// by every file the wrapped FS hands out (one flaky disk is global to
// all files on it); all methods are safe for concurrent use.
type DiskInjector struct {
	plan DiskPlan

	mu       sync.Mutex
	rng      *rand.Rand
	injected map[DiskKind]int64

	counters map[DiskKind]*telemetry.Counter
}

// NewDiskInjector returns an injector following the plan, recording
// sysrle_disk_fault_injected_total{kind=...} when reg is non-nil.
func NewDiskInjector(plan DiskPlan, reg *telemetry.Registry) *DiskInjector {
	if plan.SlowFor <= 0 {
		plan.SlowFor = DefaultSlowFor
	}
	if len(plan.Kinds) == 0 {
		plan.Kinds = DiskKinds()
	}
	in := &DiskInjector{
		plan:     plan,
		rng:      rand.New(rand.NewSource(plan.Seed)),
		injected: make(map[DiskKind]int64),
	}
	if reg != nil {
		reg.Help("sysrle_disk_fault_injected_total", "Disk faults injected by the chaos layer, by kind.")
		in.counters = make(map[DiskKind]*telemetry.Counter, len(plan.Kinds))
		for _, k := range plan.Kinds {
			in.counters[k] = reg.Counter("sysrle_disk_fault_injected_total", telemetry.L("kind", string(k)))
		}
	}
	return in
}

// Plan returns the schedule the injector follows.
func (in *DiskInjector) Plan() DiskPlan { return in.plan }

// roll decides whether the next operation faults with one of the
// allowed classes, and returns a position draw for torn/bit-rot
// faults. Classes in the plan but not allowed for this operation
// still consume the draw, keeping the schedule stable across call
// mixes.
func (in *DiskInjector) roll(allowed ...DiskKind) (kind DiskKind, pos int, fire bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rng.Float64() >= in.plan.Rate {
		return "", 0, false
	}
	kind = in.plan.Kinds[in.rng.Intn(len(in.plan.Kinds))]
	pos = in.rng.Intn(1 << 20)
	for _, a := range allowed {
		if kind == a {
			return kind, pos, true
		}
	}
	return "", 0, false
}

// note records one actually-applied fault.
func (in *DiskInjector) note(k DiskKind) {
	in.mu.Lock()
	in.injected[k]++
	in.mu.Unlock()
	if c := in.counters[k]; c != nil {
		c.Inc()
	}
}

// Injected returns how many faults of each class have been applied.
func (in *DiskInjector) Injected() map[DiskKind]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[DiskKind]int64, len(in.injected))
	for k, v := range in.injected {
		out[k] = v
	}
	return out
}

// Total returns the total number of applied disk faults.
func (in *DiskInjector) Total() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for _, v := range in.injected {
		n += v
	}
	return n
}

func (in *DiskInjector) stall() { time.Sleep(in.plan.SlowFor) }

// injectedErr builds the error an injected disk fault surfaces as.
func injectedErr(k DiskKind, op string) error {
	return fmt.Errorf("%w: disk %s during %s", ErrInjected, k, op)
}

// WrapFS returns inner with disk faults injected per the injector's
// plan. A nil injector returns inner unchanged, so the chaos layer can
// be wired unconditionally and enabled by configuration.
func WrapFS(inner store.FS, inj *DiskInjector) store.FS {
	if inj == nil {
		return inner
	}
	return &faultFS{inner: inner, inj: inj}
}

type faultFS struct {
	inner store.FS
	inj   *DiskInjector
}

func (f *faultFS) MkdirAll(path string) error { return f.inner.MkdirAll(path) }

func (f *faultFS) Create(path string) (store.File, error) {
	kind, _, fire := f.inj.roll(DiskENOSPC, DiskSlow)
	if fire {
		f.inj.note(kind)
		switch kind {
		case DiskENOSPC:
			return nil, injectedErr(kind, "create "+path)
		case DiskSlow:
			f.inj.stall()
		}
	}
	file, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: file, inj: f.inj}, nil
}

func (f *faultFS) OpenAppend(path string) (store.File, error) {
	file, err := f.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: file, inj: f.inj}, nil
}

func (f *faultFS) Open(path string) (store.File, error) {
	file, err := f.inner.Open(path)
	if err != nil {
		return nil, err
	}
	// Reads through Open are checksum-covered downstream; bit-rot is
	// injected at the ReadFile boundary where whole blobs move.
	return file, nil
}

func (f *faultFS) ReadFile(path string) ([]byte, error) {
	kind, pos, fire := f.inj.roll(DiskBitRot, DiskSlow)
	if fire {
		f.inj.note(kind)
		if kind == DiskSlow {
			f.inj.stall()
			kind = ""
		}
	}
	data, err := f.inner.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if kind == DiskBitRot && len(data) > 0 {
		rotted := append([]byte(nil), data...)
		rotted[pos%len(rotted)] ^= 1 << (pos % 8)
		return rotted, nil
	}
	return data, nil
}

func (f *faultFS) Rename(oldPath, newPath string) error {
	kind, _, fire := f.inj.roll(DiskENOSPC, DiskSlow)
	if fire {
		f.inj.note(kind)
		switch kind {
		case DiskENOSPC:
			return injectedErr(kind, "rename "+newPath)
		case DiskSlow:
			f.inj.stall()
		}
	}
	return f.inner.Rename(oldPath, newPath)
}

func (f *faultFS) Remove(path string) error { return f.inner.Remove(path) }

func (f *faultFS) ReadDir(path string) ([]string, error) { return f.inner.ReadDir(path) }

func (f *faultFS) Stat(path string) (int64, error) { return f.inner.Stat(path) }

func (f *faultFS) SyncDir(path string) error {
	kind, _, fire := f.inj.roll(DiskSyncFail, DiskSlow)
	if fire {
		f.inj.note(kind)
		switch kind {
		case DiskSyncFail:
			return injectedErr(kind, "fsync dir "+path)
		case DiskSlow:
			f.inj.stall()
		}
	}
	return f.inner.SyncDir(path)
}

type faultFile struct {
	inner store.File
	inj   *DiskInjector
}

func (f *faultFile) Name() string { return f.inner.Name() }

func (f *faultFile) Read(p []byte) (int, error) { return f.inner.Read(p) }

func (f *faultFile) Write(p []byte) (int, error) {
	kind, pos, fire := f.inj.roll(DiskTornWrite, DiskENOSPC, DiskSlow)
	if fire {
		f.inj.note(kind)
		switch kind {
		case DiskTornWrite:
			// Persist a prefix, then fail: the torn page. Callers
			// must treat the write as failed; whatever landed is what
			// a post-crash reader may observe.
			n := 0
			if len(p) > 0 {
				n, _ = f.inner.Write(p[:pos%len(p)])
			}
			return n, injectedErr(kind, "write "+f.inner.Name())
		case DiskENOSPC:
			return 0, injectedErr(kind, "write "+f.inner.Name())
		case DiskSlow:
			f.inj.stall()
		}
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	kind, _, fire := f.inj.roll(DiskSyncFail, DiskSlow)
	if fire {
		f.inj.note(kind)
		switch kind {
		case DiskSyncFail:
			return injectedErr(kind, "fsync "+f.inner.Name())
		case DiskSlow:
			f.inj.stall()
		}
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error { return f.inner.Close() }
