package fault

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestWrapTransportNilInjectorPassthrough(t *testing.T) {
	rt := WrapTransport(http.DefaultTransport, nil)
	if rt != http.DefaultTransport {
		t.Fatalf("nil injector should return inner unchanged")
	}
}

func TestTransportInjectsErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	inj := NewInjector(Plan{Seed: 7, Rate: 1, Kinds: []Kind{KindError}}, nil)
	client := &http.Client{Transport: WrapTransport(nil, inj)}
	_, err := client.Get(srv.URL)
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	if n := inj.Injected()[KindError]; n != 1 {
		t.Fatalf("injected count = %d, want 1", n)
	}
}

func TestTransportSlowRespectsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	inj := NewInjector(Plan{Seed: 7, Rate: 1, Kinds: []Kind{KindSlow}, SlowFor: 5 * time.Second}, nil)
	client := &http.Client{Transport: WrapTransport(nil, inj)}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatalf("want context deadline error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("slow fault ignored context cancellation (took %v)", elapsed)
	}
}

func TestTransportSlowThenForwards(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	inj := NewInjector(Plan{Seed: 7, Rate: 1, Kinds: []Kind{KindSlow}, SlowFor: time.Millisecond}, nil)
	client := &http.Client{Transport: WrapTransport(nil, inj)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("slow fault should still forward: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("body = %q, want ok", body)
	}
	if n := inj.Injected()[KindSlow]; n == 0 {
		t.Fatalf("slow fault not recorded")
	}
}

func TestTransportPassthroughKinds(t *testing.T) {
	// Kinds that have no transport-level meaning must not break calls.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	inj := NewInjector(Plan{Seed: 7, Rate: 1, Kinds: []Kind{KindCorruptRun, KindDropRun, KindStuckEmpty, KindPanic}}, nil)
	client := &http.Client{Transport: WrapTransport(nil, inj)}
	for i := 0; i < 8; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if n := inj.Total(); n != 0 {
		t.Fatalf("non-transport kinds recorded %d faults", n)
	}
}
