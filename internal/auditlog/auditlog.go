// Package auditlog is the tamper-evident record of inspection
// verdicts. The paper's §4 invariants make the engine's output
// trustworthy at compute time; this log makes it provable later:
// "board S was judged against reference R at time T, verdict V" is a
// leaf in a Merkle batch, every batch root is chained onto the
// previous one, and any leaf can be re-proven from its batch file
// alone plus the chain of roots. Flip one stored bit anywhere and
// either the batch root stops matching its verdicts or the chain
// stops matching the batches — there is no silent edit.
//
// Batches flush on count or interval (configurable, the classic
// amortize-the-fsync trade) and are written with the same
// temp → fsync → rename discipline as the blob store, so a batch file
// is either wholly present or absent. Verdicts still pending in
// memory are not yet provable — but they are re-derivable from the
// jobs WAL, which records every scan outcome before the batch layer
// sees it; recovery re-appends whatever the last flush missed, and
// content-derived verdict ids make that idempotent.
//
// Telemetry (when a registry is configured):
//
//	sysrle_audit_verdicts_total   verdicts appended
//	sysrle_audit_batches_total    batches flushed
//	sysrle_audit_pending          verdicts awaiting flush (gauge)
package auditlog

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"path"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sysrle/internal/clock"
	"sysrle/internal/store"
	"sysrle/internal/telemetry"
)

// Errors returned by the log.
var (
	ErrNotFound = errors.New("auditlog: verdict not found")
	ErrClosed   = errors.New("auditlog: closed")
)

// Defaults for Config zero values.
const (
	DefaultBatchSize     = 64
	DefaultFlushInterval = 5 * time.Second
)

// Verdict is one audited inspection outcome. RefID is the content
// address of the reference the scan was judged against, so the proof
// pins the exact golden image, not a mutable name.
type Verdict struct {
	ID         string    `json:"id"`
	Time       time.Time `json:"time"`
	JobID      string    `json:"job_id"`
	ScanIndex  int       `json:"scan_index"`
	RefID      string    `json:"ref_id,omitempty"`
	Engine     string    `json:"engine,omitempty"`
	Clean      bool      `json:"clean"`
	Defects    int       `json:"defects"`
	DiffPixels int       `json:"diff_pixels"`
}

// canonical returns the leaf bytes of a verdict: its JSON encoding,
// which is deterministic (fixed field order, RFC 3339 UTC times).
func canonical(v Verdict) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		// Verdict has no unmarshalable fields; unreachable.
		panic(err)
	}
	return data
}

// VerdictID derives the content address of a verdict: a hash over
// every field except ID itself. The same outcome replayed from the
// WAL gets the same id, which is what makes recovery re-appends
// idempotent.
func VerdictID(v Verdict) string {
	v.ID = ""
	v.Time = v.Time.UTC()
	sum := sha256.Sum256(canonical(v))
	return "v" + hex.EncodeToString(sum[:16])
}

// Batch is one flushed batch file.
type Batch struct {
	Seq       int       `json:"seq"`
	Time      time.Time `json:"time"`
	Count     int       `json:"count"`
	PrevChain string    `json:"prev_chain"`
	Root      string    `json:"root"`
	Chain     string    `json:"chain"`
	Verdicts  []Verdict `json:"verdicts"`
}

// BatchInfo is the index entry for one batch (the verdicts stay on
// disk).
type BatchInfo struct {
	Seq       int       `json:"seq"`
	Time      time.Time `json:"time"`
	Count     int       `json:"count"`
	Root      string    `json:"root"`
	PrevChain string    `json:"prev_chain"`
	Chain     string    `json:"chain"`
}

// Proof is everything needed to verify one verdict offline: the leaf,
// its audit path to the batch root, and the root's position in the
// chain. VerifyProof checks it without touching the log.
type Proof struct {
	ID        string   `json:"id"`
	BatchSeq  int      `json:"batch_seq"`
	LeafIndex int      `json:"leaf_index"`
	LeafCount int      `json:"leaf_count"`
	Verdict   Verdict  `json:"verdict"`
	Path      []string `json:"path"`
	Root      string   `json:"root"`
	PrevChain string   `json:"prev_chain"`
	Chain     string   `json:"chain"`
}

// Config tunes a Log; the zero value gets production defaults.
type Config struct {
	// BatchSize flushes a batch when this many verdicts are pending.
	// 0 means DefaultBatchSize.
	BatchSize int
	// FlushInterval flushes pending verdicts at least this often. 0
	// means DefaultFlushInterval; negative disables the timer (flush
	// on count, Proof, and Close only — tests).
	FlushInterval time.Duration
	// Clock stamps verdicts with zero Time; nil means clock.System().
	Clock clock.Clock
	// Registry receives telemetry; nil records nothing.
	Registry *telemetry.Registry
}

type leafRef struct {
	batch int // seq
	index int
}

// Log is the audit log. All methods are safe for concurrent use.
type Log struct {
	fs  store.FS
	dir string
	cfg Config

	mu         sync.Mutex
	pending    []Verdict
	pendingIDs map[string]bool
	index      map[string]leafRef
	batches    []BatchInfo
	chainHead  Hash
	nextSeq    int
	closed     bool

	stop    chan struct{}
	done    chan struct{}
	lastErr atomic.Value

	verdictsC, batchesC *telemetry.Counter
	pendingG            *telemetry.Gauge
}

// LoadReport says what Open found on disk.
type LoadReport struct {
	Batches  int
	Verdicts int
	// Orphaned lists batch files set aside because they failed
	// verification or broke the chain; everything before them loaded.
	Orphaned []string
}

func batchName(seq int) string { return fmt.Sprintf("batch-%08d.json", seq) }

// Open loads (creating if needed) an audit log directory, verifying
// each batch's root and chain link as it goes. The first batch that
// fails verification — and everything after it — is renamed aside
// with an .orphan suffix, so the loaded log is always a verified
// prefix.
func Open(fsys store.FS, dir string, cfg Config) (*Log, LoadReport, error) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.FlushInterval == 0 {
		cfg.FlushInterval = DefaultFlushInterval
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System()
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, LoadReport{}, fmt.Errorf("auditlog: init %s: %w", dir, err)
	}
	l := &Log{
		fs: fsys, dir: dir, cfg: cfg,
		pendingIDs: make(map[string]bool),
		index:      make(map[string]leafRef),
		nextSeq:    1,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	if reg := cfg.Registry; reg != nil {
		reg.Help("sysrle_audit_verdicts_total", "Inspection verdicts appended to the audit log.")
		l.verdictsC = reg.Counter("sysrle_audit_verdicts_total")
		l.batchesC = reg.Counter("sysrle_audit_batches_total")
		l.pendingG = reg.Gauge("sysrle_audit_pending")
	}
	rep, err := l.load()
	if err != nil {
		return nil, rep, err
	}
	if cfg.FlushInterval > 0 {
		go l.flusher()
	} else {
		close(l.done)
	}
	return l, rep, nil
}

// load walks the batch files in sequence order, verifying as it goes.
func (l *Log) load() (LoadReport, error) {
	var rep LoadReport
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return rep, fmt.Errorf("auditlog: scan %s: %w", l.dir, err)
	}
	var seqs []int
	for _, name := range names {
		var n int
		if _, err := fmt.Sscanf(name, "batch-%08d.json", &n); err == nil {
			seqs = append(seqs, n)
		}
	}
	sort.Ints(seqs)
	broken := false
	for _, seq := range seqs {
		name := batchName(seq)
		if !broken {
			b, err := l.loadBatch(name)
			if err == nil && b.Seq == seq && seq == l.nextSeq {
				for i, v := range b.Verdicts {
					l.index[v.ID] = leafRef{batch: seq, index: i}
				}
				l.batches = append(l.batches, BatchInfo{
					Seq: b.Seq, Time: b.Time, Count: b.Count,
					Root: b.Root, PrevChain: b.PrevChain, Chain: b.Chain,
				})
				l.chainHead = mustHex(b.Chain)
				l.nextSeq = seq + 1
				rep.Batches++
				rep.Verdicts += b.Count
				continue
			}
			broken = true
		}
		// A broken link taints everything after it: set the files
		// aside for forensics and continue from the verified prefix.
		_ = l.fs.Rename(path.Join(l.dir, name), path.Join(l.dir, name+".orphan"))
		rep.Orphaned = append(rep.Orphaned, name)
	}
	if len(rep.Orphaned) > 0 {
		_ = l.fs.SyncDir(l.dir)
	}
	return rep, nil
}

// loadBatch reads and fully verifies one batch file: parse, recompute
// the root from the verdicts, check the chain link against the
// current head.
func (l *Log) loadBatch(name string) (*Batch, error) {
	data, err := l.fs.ReadFile(path.Join(l.dir, name))
	if err != nil {
		return nil, err
	}
	var b Batch
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("auditlog: %s: %w", name, err)
	}
	if b.Count != len(b.Verdicts) {
		return nil, fmt.Errorf("auditlog: %s: count mismatch", name)
	}
	leaves := make([]Hash, len(b.Verdicts))
	for i, v := range b.Verdicts {
		if VerdictID(v) != v.ID {
			return nil, fmt.Errorf("auditlog: %s: verdict %d id mismatch", name, i)
		}
		leaves[i] = LeafHash(canonical(v))
	}
	if hex.EncodeToString(mustRoot(leaves)) != b.Root {
		return nil, fmt.Errorf("auditlog: %s: root mismatch", name)
	}
	if b.PrevChain != hex.EncodeToString(l.chainHead[:]) {
		return nil, fmt.Errorf("auditlog: %s: chain broken", name)
	}
	if b.Chain != hex.EncodeToString(chainBytes(l.chainHead, mustHexArr(b.Root))) {
		return nil, fmt.Errorf("auditlog: %s: chain hash mismatch", name)
	}
	return &b, nil
}

func mustRoot(leaves []Hash) []byte {
	r := Root(leaves)
	return r[:]
}

func mustHex(s string) Hash {
	var h Hash
	b, err := hex.DecodeString(s)
	if err == nil && len(b) == len(h) {
		copy(h[:], b)
	}
	return h
}

func mustHexArr(s string) Hash { return mustHex(s) }

func chainBytes(prev, root Hash) []byte {
	c := ChainHash(prev, root)
	return c[:]
}

// errBox wraps errors for atomic.Value, which requires a consistent
// concrete type across stores.
type errBox struct{ err error }

// Err returns the last flush failure, or nil; sticky, for the
// readiness probe.
func (l *Log) Err() error {
	if v := l.lastErr.Load(); v != nil {
		return v.(errBox).err
	}
	return nil
}

// Append records one verdict. The returned id is content-derived:
// appending the same outcome twice (live, or re-derived from the WAL
// during recovery) is a no-op returning the same id. The verdict is
// provable once its batch flushes.
func (l *Log) Append(v Verdict) (string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return "", ErrClosed
	}
	if v.Time.IsZero() {
		v.Time = l.cfg.Clock.Now()
	}
	v.Time = v.Time.UTC()
	v.ID = VerdictID(v)
	if _, ok := l.index[v.ID]; ok {
		return v.ID, nil
	}
	if l.pendingIDs[v.ID] {
		return v.ID, nil
	}
	l.pending = append(l.pending, v)
	l.pendingIDs[v.ID] = true
	if l.verdictsC != nil {
		l.verdictsC.Inc()
		l.pendingG.Set(int64(len(l.pending)))
	}
	if len(l.pending) >= l.cfg.BatchSize {
		if err := l.flushLocked(); err != nil {
			return v.ID, err
		}
	}
	return v.ID, nil
}

// Flush writes pending verdicts as a batch now.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

func (l *Log) flushLocked() error {
	if len(l.pending) == 0 {
		return nil
	}
	leaves := make([]Hash, len(l.pending))
	for i, v := range l.pending {
		leaves[i] = LeafHash(canonical(v))
	}
	root := Root(leaves)
	chain := ChainHash(l.chainHead, root)
	b := Batch{
		Seq:       l.nextSeq,
		Time:      l.cfg.Clock.Now().UTC(),
		Count:     len(l.pending),
		PrevChain: hex.EncodeToString(l.chainHead[:]),
		Root:      hex.EncodeToString(root[:]),
		Chain:     hex.EncodeToString(chain[:]),
		Verdicts:  l.pending,
	}
	data, err := json.MarshalIndent(&b, "", " ")
	if err != nil {
		return err
	}
	if err := l.writeBatchFile(batchName(b.Seq), data); err != nil {
		l.lastErr.Store(errBox{err})
		return err
	}
	for i, v := range l.pending {
		l.index[v.ID] = leafRef{batch: b.Seq, index: i}
	}
	l.batches = append(l.batches, BatchInfo{
		Seq: b.Seq, Time: b.Time, Count: b.Count,
		Root: b.Root, PrevChain: b.PrevChain, Chain: b.Chain,
	})
	l.chainHead = chain
	l.nextSeq++
	l.pending = nil
	l.pendingIDs = make(map[string]bool)
	if l.batchesC != nil {
		l.batchesC.Inc()
		l.pendingG.Set(0)
	}
	return nil
}

// writeBatchFile lands one batch atomically: temp → fsync → rename →
// directory fsync.
func (l *Log) writeBatchFile(name string, data []byte) error {
	tmp := path.Join(l.dir, name+".tmp")
	f, err := l.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("auditlog: create: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return fmt.Errorf("auditlog: write: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("auditlog: fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("auditlog: close: %w", err)
	}
	if err := l.fs.Rename(tmp, path.Join(l.dir, name)); err != nil {
		return fmt.Errorf("auditlog: rename: %w", err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return fmt.Errorf("auditlog: fsync dir: %w", err)
	}
	return nil
}

// Proof builds the inclusion proof for a verdict id. A verdict still
// pending is flushed first, so a caller asking for a proof always
// gets one (or ErrNotFound).
func (l *Log) Proof(id string) (Proof, error) {
	l.mu.Lock()
	if l.pendingIDs[id] {
		if err := l.flushLocked(); err != nil {
			l.mu.Unlock()
			return Proof{}, err
		}
	}
	ref, ok := l.index[id]
	l.mu.Unlock()
	if !ok {
		return Proof{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	b, err := l.readBatch(ref.batch)
	if err != nil {
		return Proof{}, err
	}
	leaves := make([]Hash, len(b.Verdicts))
	for i, v := range b.Verdicts {
		leaves[i] = LeafHash(canonical(v))
	}
	path := ProofPath(leaves, ref.index)
	hexPath := make([]string, len(path))
	for i, h := range path {
		hexPath[i] = hex.EncodeToString(h[:])
	}
	return Proof{
		ID:        id,
		BatchSeq:  b.Seq,
		LeafIndex: ref.index,
		LeafCount: len(b.Verdicts),
		Verdict:   b.Verdicts[ref.index],
		Path:      hexPath,
		Root:      b.Root,
		PrevChain: b.PrevChain,
		Chain:     b.Chain,
	}, nil
}

// Batch returns one sealed batch with its verdicts (the index entry
// from Batches carries only the summary). Readers that need
// tamper-evidence should re-derive the root via proofs rather than
// trust the returned file contents.
func (l *Log) Batch(seq int) (Batch, error) {
	b, err := l.readBatch(seq)
	if err != nil {
		return Batch{}, err
	}
	return *b, nil
}

// readBatch loads one batch file without chain context (the chain was
// verified at load/flush time; Get-time integrity comes from the
// proof math itself).
func (l *Log) readBatch(seq int) (*Batch, error) {
	data, err := l.fs.ReadFile(path.Join(l.dir, batchName(seq)))
	if err != nil {
		return nil, fmt.Errorf("auditlog: batch %d: %w", seq, err)
	}
	var b Batch
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("auditlog: batch %d: %w", seq, err)
	}
	return &b, nil
}

// VerifyProof checks a proof end to end without any log state: the
// verdict's content id, its leaf against the audit path and root, and
// the root against the chain link.
func VerifyProof(p Proof) error {
	if VerdictID(p.Verdict) != p.Verdict.ID || p.Verdict.ID != p.ID {
		return errors.New("auditlog: verdict id does not match contents")
	}
	path := make([]Hash, len(p.Path))
	for i, s := range p.Path {
		path[i] = mustHex(s)
	}
	if !VerifyInclusion(LeafHash(canonical(p.Verdict)), p.LeafIndex, p.LeafCount, path, mustHex(p.Root)) {
		return errors.New("auditlog: inclusion proof does not verify")
	}
	if hex.EncodeToString(chainBytes(mustHex(p.PrevChain), mustHex(p.Root))) != p.Chain {
		return errors.New("auditlog: chain link does not verify")
	}
	return nil
}

// VerifyReport is what a full verification pass found.
type VerifyReport struct {
	Batches  int      `json:"batches"`
	Verdicts int      `json:"verdicts"`
	Errors   []string `json:"errors,omitempty"`
}

// OK reports a clean pass.
func (r VerifyReport) OK() bool { return len(r.Errors) == 0 }

// VerifyAll re-verifies the entire log from disk: every batch root
// recomputed from its verdicts, every chain link recomputed from its
// predecessor, every leaf's inclusion proof checked. This is the
// verifier behind sysdiffd -fsck.
func (l *Log) VerifyAll() (VerifyReport, error) {
	l.mu.Lock()
	batches := append([]BatchInfo(nil), l.batches...)
	l.mu.Unlock()
	var rep VerifyReport
	prev := Hash{}
	for _, info := range batches {
		b, err := l.readBatch(info.Seq)
		if err != nil {
			rep.Errors = append(rep.Errors, err.Error())
			continue
		}
		rep.Batches++
		leaves := make([]Hash, len(b.Verdicts))
		for i, v := range b.Verdicts {
			if VerdictID(v) != v.ID {
				rep.Errors = append(rep.Errors, fmt.Sprintf("batch %d verdict %d: id mismatch", b.Seq, i))
			}
			leaves[i] = LeafHash(canonical(v))
		}
		root := Root(leaves)
		if hex.EncodeToString(root[:]) != b.Root {
			rep.Errors = append(rep.Errors, fmt.Sprintf("batch %d: root mismatch", b.Seq))
		}
		if b.PrevChain != hex.EncodeToString(prev[:]) {
			rep.Errors = append(rep.Errors, fmt.Sprintf("batch %d: chain broken", b.Seq))
		}
		chain := ChainHash(prev, root)
		if hex.EncodeToString(chain[:]) != b.Chain {
			rep.Errors = append(rep.Errors, fmt.Sprintf("batch %d: chain hash mismatch", b.Seq))
		}
		for i := range leaves {
			path := ProofPath(leaves, i)
			if !VerifyInclusion(leaves[i], i, len(leaves), path, root) {
				rep.Errors = append(rep.Errors, fmt.Sprintf("batch %d verdict %d: inclusion proof failed", b.Seq, i))
			}
			rep.Verdicts++
		}
		prev = chain
	}
	return rep, nil
}

// Batches returns the index of flushed batches, oldest first.
func (l *Log) Batches() []BatchInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]BatchInfo(nil), l.batches...)
}

// ChainHead returns the hex chain head — the single hash that anchors
// the whole log.
func (l *Log) ChainHead() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return hex.EncodeToString(l.chainHead[:])
}

// Pending returns how many verdicts await flush.
func (l *Log) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pending)
}

// flusher drives the interval flush.
func (l *Log) flusher() {
	defer close(l.done)
	tick := time.NewTicker(l.cfg.FlushInterval)
	defer tick.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-tick.C:
			_ = l.Flush()
		}
	}
}

// Close flushes pending verdicts and stops the interval flusher.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	err := l.flushLocked()
	l.mu.Unlock()
	close(l.stop)
	<-l.done
	return err
}
