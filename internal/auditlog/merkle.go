package auditlog

// RFC 6962-style Merkle tree over verdict leaves: domain-separated
// leaf/node hashing (so a leaf can never be confused for an interior
// node), unbalanced split at the largest power of two, logarithmic
// inclusion proofs. Nothing here knows about batches or disk — pure
// hash algebra, shared by the writer, the proof endpoint and the
// verifier CLI.

import (
	"crypto/sha256"
)

// Hash is one tree node value.
type Hash = [sha256.Size]byte

const (
	leafPrefix  = 0x00
	nodePrefix  = 0x01
	chainPrefix = 0x02
)

// LeafHash hashes one leaf's canonical bytes.
func LeafHash(data []byte) Hash {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	h.Write(data)
	var out Hash
	h.Sum(out[:0])
	return out
}

func nodeHash(l, r Hash) Hash {
	h := sha256.New()
	h.Write([]byte{nodePrefix})
	h.Write(l[:])
	h.Write(r[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// ChainHash links one batch root onto the running chain head:
// head' = H(0x02 || head || root). Tampering with any historic batch
// changes every later head, so the newest head anchors the whole log.
func ChainHash(prev, root Hash) Hash {
	h := sha256.New()
	h.Write([]byte{chainPrefix})
	h.Write(prev[:])
	h.Write(root[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// splitPoint is the largest power of two strictly less than n.
func splitPoint(n int) int {
	k := 1
	for k < n {
		k <<= 1
	}
	return k >> 1
}

// Root computes the Merkle root of the leaf hashes. An empty batch
// hashes to the empty-string leaf domain (it never occurs in
// practice — batches flush only when non-empty).
func Root(leaves []Hash) Hash {
	switch len(leaves) {
	case 0:
		return LeafHash(nil)
	case 1:
		return leaves[0]
	}
	k := splitPoint(len(leaves))
	return nodeHash(Root(leaves[:k]), Root(leaves[k:]))
}

// ProofPath returns the sibling hashes that recompute the root from
// leaf i, deepest first — the standard audit path.
func ProofPath(leaves []Hash, i int) []Hash {
	if i < 0 || i >= len(leaves) || len(leaves) == 1 {
		return nil
	}
	k := splitPoint(len(leaves))
	if i < k {
		return append(ProofPath(leaves[:k], i), Root(leaves[k:]))
	}
	return append(ProofPath(leaves[k:], i-k), Root(leaves[:k]))
}

// VerifyInclusion recomputes the root from one leaf and its audit
// path and reports whether it matches. The recursion mirrors
// ProofPath exactly: the path is deepest-first, so the last element
// is the top-level sibling.
func VerifyInclusion(leaf Hash, index, count int, path []Hash, root Hash) bool {
	if index < 0 || index >= count {
		return false
	}
	got, ok := rootFromPath(leaf, index, count, path)
	return ok && got == root
}

func rootFromPath(leaf Hash, index, count int, path []Hash) (Hash, bool) {
	if count == 1 {
		return leaf, len(path) == 0
	}
	if len(path) == 0 {
		return Hash{}, false
	}
	sib := path[len(path)-1]
	k := splitPoint(count)
	if index < k {
		sub, ok := rootFromPath(leaf, index, k, path[:len(path)-1])
		return nodeHash(sub, sib), ok
	}
	sub, ok := rootFromPath(leaf, index-k, count-k, path[:len(path)-1])
	return nodeHash(sib, sub), ok
}
