package auditlog

import (
	"fmt"
	"testing"
)

func leaves(n int) []Hash {
	out := make([]Hash, n)
	for i := range out {
		out[i] = LeafHash([]byte(fmt.Sprintf("leaf-%d", i)))
	}
	return out
}

func TestProofVerifiesForEverySizeAndIndex(t *testing.T) {
	for n := 1; n <= 33; n++ {
		ls := leaves(n)
		root := Root(ls)
		for i := 0; i < n; i++ {
			path := ProofPath(ls, i)
			if !VerifyInclusion(ls[i], i, n, path, root) {
				t.Fatalf("n=%d i=%d: valid proof rejected", n, i)
			}
		}
	}
}

func TestProofRejectsWrongLeafIndexPath(t *testing.T) {
	ls := leaves(9)
	root := Root(ls)
	path := ProofPath(ls, 3)
	if VerifyInclusion(ls[4], 3, 9, path, root) {
		t.Fatal("wrong leaf accepted")
	}
	if VerifyInclusion(ls[3], 4, 9, path, root) {
		t.Fatal("wrong index accepted")
	}
	if len(path) > 0 {
		bad := append([]Hash(nil), path...)
		bad[0][0] ^= 1
		if VerifyInclusion(ls[3], 3, 9, bad, root) {
			t.Fatal("tampered path accepted")
		}
		if VerifyInclusion(ls[3], 3, 9, path[:len(path)-1], root) {
			t.Fatal("short path accepted")
		}
	}
	if VerifyInclusion(ls[3], 3, 9, path, LeafHash([]byte("bogus"))) {
		t.Fatal("wrong root accepted")
	}
	if VerifyInclusion(ls[3], -1, 9, path, root) || VerifyInclusion(ls[3], 9, 9, path, root) {
		t.Fatal("out-of-range index accepted")
	}
}

func TestDomainSeparation(t *testing.T) {
	// A leaf hash must never equal a node hash over the same bytes.
	a, b := LeafHash([]byte("a")), LeafHash([]byte("b"))
	var concat []byte
	concat = append(concat, a[:]...)
	concat = append(concat, b[:]...)
	if nodeHash(a, b) == LeafHash(concat) {
		t.Fatal("leaf/node domains collide")
	}
	if ChainHash(a, b) == nodeHash(a, b) {
		t.Fatal("chain/node domains collide")
	}
}

func TestRootChangesWithAnyLeaf(t *testing.T) {
	ls := leaves(7)
	root := Root(ls)
	for i := range ls {
		mut := append([]Hash(nil), ls...)
		mut[i][5] ^= 0x80
		if Root(mut) == root {
			t.Fatalf("root unchanged after mutating leaf %d", i)
		}
	}
}

func TestSplitPoint(t *testing.T) {
	cases := map[int]int{2: 1, 3: 2, 4: 2, 5: 4, 8: 4, 9: 8, 16: 8, 17: 16}
	for n, want := range cases {
		if got := splitPoint(n); got != want {
			t.Fatalf("splitPoint(%d) = %d, want %d", n, got, want)
		}
	}
}
