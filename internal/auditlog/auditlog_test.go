package auditlog

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"sysrle/internal/clock"
	"sysrle/internal/store"
)

func testCfg() Config {
	return Config{
		BatchSize:     4,
		FlushInterval: -1, // no timer in tests
		Clock:         clock.NewFake(time.Date(2026, 8, 7, 9, 0, 0, 0, time.UTC)),
	}
}

func openLog(t *testing.T, fs store.FS) *Log {
	t.Helper()
	l, _, err := Open(fs, "data/audit", testCfg())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func verdict(i int) Verdict {
	return Verdict{
		JobID:      fmt.Sprintf("job-%06d", i),
		ScanIndex:  i % 3,
		RefID:      "ref-abc",
		Engine:     "interval",
		Clean:      i%2 == 0,
		Defects:    i % 5,
		DiffPixels: 17 * i,
	}
}

func TestAppendFlushProofVerify(t *testing.T) {
	fs := store.NewMemFS()
	l := openLog(t, fs)
	var ids []string
	for i := 0; i < 10; i++ {
		id, err := l.Append(verdict(i))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	// BatchSize 4: two batches flushed, two verdicts pending.
	if got := len(l.Batches()); got != 2 {
		t.Fatalf("batches = %d, want 2", got)
	}
	if got := l.Pending(); got != 2 {
		t.Fatalf("pending = %d, want 2", got)
	}
	for i, id := range ids {
		p, err := l.Proof(id)
		if err != nil {
			t.Fatalf("Proof(%s): %v", id, err)
		}
		if err := VerifyProof(p); err != nil {
			t.Fatalf("verdict %d proof: %v", i, err)
		}
		if p.Verdict.JobID != verdict(i).JobID {
			t.Fatalf("proof %d returned wrong verdict", i)
		}
	}
	// Asking for a pending verdict's proof flushed the rest.
	if got := l.Pending(); got != 0 {
		t.Fatalf("pending after Proof = %d, want 0", got)
	}
	rep, err := l.VerifyAll()
	if err != nil || !rep.OK() {
		t.Fatalf("VerifyAll: %v, errors %v", err, rep.Errors)
	}
	if rep.Verdicts != 10 {
		t.Fatalf("VerifyAll verdicts = %d, want 10", rep.Verdicts)
	}
}

func TestAppendDedupesByContent(t *testing.T) {
	fs := store.NewMemFS()
	l := openLog(t, fs)
	v := verdict(1)
	v.Time = time.Date(2026, 8, 7, 9, 0, 0, 0, time.UTC)
	id1, _ := l.Append(v)
	id2, _ := l.Append(v) // pending dedupe
	if err := l.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	id3, _ := l.Append(v) // flushed dedupe
	if id1 != id2 || id1 != id3 {
		t.Fatalf("ids differ: %s %s %s", id1, id2, id3)
	}
	if l.Pending() != 0 || len(l.Batches()) != 1 {
		t.Fatalf("duplicate append created state: pending=%d batches=%d", l.Pending(), len(l.Batches()))
	}
}

func TestChainAcrossBatchesAndReload(t *testing.T) {
	fs := store.NewMemFS()
	l := openLog(t, fs)
	for i := 0; i < 12; i++ {
		_, _ = l.Append(verdict(i))
	}
	_ = l.Close()
	head := l.ChainHead()

	l2, rep, err := Open(fs, "data/audit", testCfg())
	if err != nil {
		t.Fatalf("re-Open: %v", err)
	}
	if rep.Batches != 3 || rep.Verdicts != 12 || len(rep.Orphaned) != 0 {
		t.Fatalf("LoadReport = %+v", rep)
	}
	if l2.ChainHead() != head {
		t.Fatalf("chain head changed across reload")
	}
	batches := l2.Batches()
	for i := 1; i < len(batches); i++ {
		if batches[i].PrevChain != batches[i-1].Chain {
			t.Fatalf("chain broken between batch %d and %d", i-1, i)
		}
	}
}

func TestTamperedBatchOrphanedAtLoad(t *testing.T) {
	fs := store.NewMemFS()
	l := openLog(t, fs)
	for i := 0; i < 12; i++ {
		_, _ = l.Append(verdict(i))
	}
	_ = l.Close()
	// Rot one byte inside batch 2's verdict payloads.
	if err := fs.Tamper("data/audit/batch-00000002.json", func(d []byte) {
		i := bytes.Index(d, []byte(`"diff_pixels"`))
		d[i+15] ^= 1
	}); err != nil {
		t.Fatalf("Tamper: %v", err)
	}
	l2, rep, err := Open(fs, "data/audit", testCfg())
	if err != nil {
		t.Fatalf("re-Open: %v", err)
	}
	// Batch 1 loads; 2 is corrupt; 3 chains onto 2 so it is orphaned too.
	if rep.Batches != 1 {
		t.Fatalf("loaded %d batches, want the verified prefix of 1", rep.Batches)
	}
	if len(rep.Orphaned) != 2 {
		t.Fatalf("orphaned %v, want batches 2 and 3 set aside", rep.Orphaned)
	}
	for _, name := range rep.Orphaned {
		if _, err := fs.ReadFile("data/audit/" + name + ".orphan"); err != nil {
			t.Fatalf("orphaned file %s not preserved: %v", name, err)
		}
	}
	// The surviving log still verifies and can keep growing.
	if vrep, _ := l2.VerifyAll(); !vrep.OK() {
		t.Fatalf("verified prefix fails VerifyAll: %v", vrep.Errors)
	}
	if _, err := l2.Append(verdict(99)); err != nil {
		t.Fatalf("Append after orphaning: %v", err)
	}
	if err := l2.Flush(); err != nil {
		t.Fatalf("Flush after orphaning: %v", err)
	}
}

func TestVerifyAllDetectsRot(t *testing.T) {
	fs := store.NewMemFS()
	l := openLog(t, fs)
	for i := 0; i < 4; i++ {
		_, _ = l.Append(verdict(i))
	}
	if err := fs.Tamper("data/audit/batch-00000001.json", func(d []byte) {
		i := bytes.Index(d, []byte(`"defects"`))
		d[i+11] ^= 1
	}); err != nil {
		t.Fatalf("Tamper: %v", err)
	}
	rep, err := l.VerifyAll()
	if err != nil {
		t.Fatalf("VerifyAll: %v", err)
	}
	if rep.OK() {
		t.Fatal("VerifyAll missed a tampered batch")
	}
}

func TestVerifyProofRejectsMutations(t *testing.T) {
	fs := store.NewMemFS()
	l := openLog(t, fs)
	id, _ := l.Append(verdict(7))
	p, err := l.Proof(id)
	if err != nil {
		t.Fatalf("Proof: %v", err)
	}
	mutations := []func(*Proof){
		func(p *Proof) { p.Verdict.Defects++ },
		func(p *Proof) { p.Verdict.Clean = !p.Verdict.Clean },
		func(p *Proof) { p.Root = strings.Repeat("00", 32) },
		func(p *Proof) { p.Chain = strings.Repeat("11", 32) },
		func(p *Proof) { p.LeafIndex++ },
	}
	for i, mut := range mutations {
		bad := p
		bad.Path = append([]string(nil), p.Path...)
		mut(&bad)
		if VerifyProof(bad) == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
	if err := VerifyProof(p); err != nil {
		t.Fatalf("unmutated proof rejected: %v", err)
	}
}

func TestProofNotFound(t *testing.T) {
	fs := store.NewMemFS()
	l := openLog(t, fs)
	if _, err := l.Proof("v-no-such"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Proof absent = %v, want ErrNotFound", err)
	}
}

func TestCrashLosesOnlyPending(t *testing.T) {
	fs := store.NewMemFS()
	l := openLog(t, fs)
	for i := 0; i < 6; i++ {
		_, _ = l.Append(verdict(i)) // batch of 4 flushes; 2 pending
	}
	fs.Crash(store.CrashOpts{})
	l2, rep, err := Open(fs, "data/audit", testCfg())
	if err != nil {
		t.Fatalf("re-Open: %v", err)
	}
	if rep.Batches != 1 || rep.Verdicts != 4 {
		t.Fatalf("LoadReport after crash = %+v, want the flushed batch intact", rep)
	}
	// Recovery re-appends the lost pending verdicts (the jobs WAL
	// replays them); content ids make that idempotent and the chain
	// continues.
	for i := 0; i < 6; i++ {
		_, _ = l2.Append(verdict(i))
	}
	if err := l2.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	vrep, _ := l2.VerifyAll()
	if !vrep.OK() || vrep.Verdicts != 6 {
		t.Fatalf("after recovery: verdicts=%d errors=%v", vrep.Verdicts, vrep.Errors)
	}
}
