// Package wal is the write-ahead journal under the jobs queue: every
// acknowledged submission, scan outcome and job completion is
// appended as a length-prefixed, CRC-32C-checksummed record before
// the caller sees success, so a kill -9 at any instant loses at most
// the unsynced tail — and replay recovers exactly the durable prefix.
//
// Layout: a directory of fixed-capacity segment files
// (seg-00000001.wal, …) plus a MANIFEST naming the first live
// segment. Appends go to a segment created fresh at Open (never to a
// possibly-torn tail from the previous run); rotation closes one
// segment and fsyncs the directory before the next is used. Replay
// walks the live segments in order and stops at the first record
// whose length or checksum does not verify — everything after a torn
// write is by definition unacknowledged, so a truncated tail is
// recovery, not data loss. Checkpoint compacts: it writes a snapshot
// of live state as a fresh segment, commits it by atomically
// replacing the MANIFEST, and deletes the history it subsumes.
//
// Record format, little-endian:
//
//	u32 payload length | u32 CRC-32C(payload) | payload
//
// Sync policy is configurable (always / batch / none) because fsync
// dominates append latency; benchtab -wal-bench measures the cost of
// each policy on the deployment's disk.
//
// Telemetry (when a registry is configured):
//
//	sysrle_wal_appends_total / bytes_total   records and bytes journaled
//	sysrle_wal_syncs_total / rotations_total fsyncs and segment rotations
//	sysrle_wal_replay_records_total          records recovered at Open
//	sysrle_wal_replay_truncated_total        replays that hit a torn tail
//	sysrle_wal_append_seconds                append latency histogram
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sysrle/internal/store"
	"sysrle/internal/telemetry"
)

// SyncPolicy says when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged record is
	// durable. The safe default.
	SyncAlways SyncPolicy = iota
	// SyncBatch fsyncs every Options.BatchEvery appends (and on Sync,
	// Checkpoint and Close): bounded loss window, much cheaper.
	SyncBatch
	// SyncNone never fsyncs on append (the OS flushes when it
	// pleases): fastest, weakest. Dev and benchmarking only.
	SyncNone
)

// ParseSyncPolicy parses the -wal-sync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "always":
		return SyncAlways, nil
	case "batch", "interval":
		return SyncBatch, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always|batch|none)", s)
}

// String renders the policy as its flag value.
func (p SyncPolicy) String() string {
	switch p {
	case SyncBatch:
		return "batch"
	case SyncNone:
		return "none"
	}
	return "always"
}

// Defaults for Options zero values.
const (
	DefaultSegmentBytes = 4 << 20
	DefaultBatchEvery   = 64
	// maxRecordBytes rejects absurd lengths during replay — a torn or
	// rotted header must not drive a multi-gigabyte allocation.
	maxRecordBytes = 16 << 20
)

const (
	manifestName = "MANIFEST"
	headerSize   = 8
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrTooLarge reports an Append payload over the record size bound.
var ErrTooLarge = errors.New("wal: record too large")

// Options tunes a WAL; the zero value gets production defaults.
type Options struct {
	// SegmentBytes rotates the active segment beyond this size. 0
	// means DefaultSegmentBytes.
	SegmentBytes int64
	// Policy is the append sync policy; the zero value is SyncAlways.
	Policy SyncPolicy
	// BatchEvery is the SyncBatch fsync cadence in appends. 0 means
	// DefaultBatchEvery.
	BatchEvery int
	// Registry receives telemetry; nil records nothing.
	Registry *telemetry.Registry
}

// ReplayStats summarizes one Replay.
type ReplayStats struct {
	// Records is how many intact records were recovered.
	Records int
	// Segments is how many live segments were read.
	Segments int
	// Truncated reports that replay stopped at a corrupt or torn
	// record; TruncatedAt names the segment.
	Truncated   bool
	TruncatedAt string
}

// WAL is one journal. Append/Sync/Checkpoint are safe for concurrent
// use; Replay must complete before the first Append.
type WAL struct {
	fs   store.FS
	dir  string
	opts Options

	mu         sync.Mutex
	seg        store.File // active segment, nil until first Append
	segIndex   int        // index of the active (or next) segment
	segSize    int64
	start      int // first live segment per MANIFEST
	unsynced   int // appends since last fsync (SyncBatch)
	replayed   bool
	closed     bool
	lastErr    atomic.Value // error — sticky, for readiness probes
	segsAtOpen []int        // live segments found at Open, for Replay

	appends, bytesC  *telemetry.Counter
	syncs, rotations *telemetry.Counter
	replayRecs       *telemetry.Counter
	replayTrunc      *telemetry.Counter
	appendLatency    *telemetry.Histogram
}

// Open scans (creating if needed) a journal directory. Existing
// segments stay read-only history for Replay; the first Append goes
// to a fresh segment, so a torn tail from the previous run is never
// appended to.
func Open(fsys store.FS, dir string, opts Options) (*WAL, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.BatchEvery <= 0 {
		opts.BatchEvery = DefaultBatchEvery
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: init %s: %w", dir, err)
	}
	w := &WAL{fs: fsys, dir: dir, opts: opts, start: 1}
	if data, err := fsys.ReadFile(path.Join(dir, manifestName)); err == nil {
		if _, err := fmt.Sscanf(string(data), "start %d", &w.start); err != nil {
			// An unreadable manifest is treated as "replay everything":
			// strictly more conservative than skipping history.
			w.start = 1
		}
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: scan %s: %w", dir, err)
	}
	maxIndex := 0
	for _, name := range names {
		var n int
		if _, err := fmt.Sscanf(name, "seg-%08d.wal", &n); err == nil {
			if n > maxIndex {
				maxIndex = n
			}
			if n >= w.start {
				w.segsAtOpen = append(w.segsAtOpen, n)
			}
		}
	}
	sort.Ints(w.segsAtOpen)
	w.segIndex = maxIndex + 1
	if reg := opts.Registry; reg != nil {
		reg.Help("sysrle_wal_appends_total", "Records appended to the job journal.")
		reg.Help("sysrle_wal_replay_truncated_total", "Journal replays that stopped at a torn or corrupt record.")
		w.appends = reg.Counter("sysrle_wal_appends_total")
		w.bytesC = reg.Counter("sysrle_wal_bytes_total")
		w.syncs = reg.Counter("sysrle_wal_syncs_total")
		w.rotations = reg.Counter("sysrle_wal_rotations_total")
		w.replayRecs = reg.Counter("sysrle_wal_replay_records_total")
		w.replayTrunc = reg.Counter("sysrle_wal_replay_truncated_total")
		w.appendLatency = reg.Histogram("sysrle_wal_append_seconds",
			[]float64{1e-5, 1e-4, 1e-3, 5e-3, 0.025, 0.1, 0.5})
	}
	return w, nil
}

// Dir returns the journal directory.
func (w *WAL) Dir() string { return w.dir }

// errBox wraps errors for atomic.Value, which requires a consistent
// concrete type across stores.
type errBox struct{ err error }

// Err returns the last append/sync failure, or nil; sticky, for the
// readiness probe.
func (w *WAL) Err() error {
	if v := w.lastErr.Load(); v != nil {
		return v.(errBox).err
	}
	return nil
}

func (w *WAL) note(err error) {
	if err != nil {
		w.lastErr.Store(errBox{err})
	}
}

func segName(n int) string { return fmt.Sprintf("seg-%08d.wal", n) }

// Replay streams every intact record of the live segments, in append
// order, stopping cleanly at the first length or checksum failure
// (the durable-prefix contract). It must be called before the first
// Append; fn errors abort the replay.
func (w *WAL) Replay(fn func(payload []byte) error) (ReplayStats, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var stats ReplayStats
	if w.replayed || w.seg != nil {
		return stats, errors.New("wal: Replay must run before the first Append")
	}
	w.replayed = true
	for _, n := range w.segsAtOpen {
		name := segName(n)
		data, err := w.fs.ReadFile(path.Join(w.dir, name))
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue
			}
			return stats, fmt.Errorf("wal: read %s: %w", name, err)
		}
		stats.Segments++
		off := 0
		for off+headerSize <= len(data) {
			length := binary.LittleEndian.Uint32(data[off:])
			sum := binary.LittleEndian.Uint32(data[off+4:])
			if length > maxRecordBytes || off+headerSize+int(length) > len(data) {
				stats.Truncated, stats.TruncatedAt = true, name
				break
			}
			payload := data[off+headerSize : off+headerSize+int(length)]
			if crc32.Checksum(payload, crcTable) != sum {
				stats.Truncated, stats.TruncatedAt = true, name
				break
			}
			if err := fn(payload); err != nil {
				return stats, err
			}
			stats.Records++
			off += headerSize + int(length)
		}
		if off < len(data) && !stats.Truncated {
			// A trailing partial header is a torn write too.
			stats.Truncated, stats.TruncatedAt = true, name
		}
		if stats.Truncated {
			// Anything past a tear was never acknowledged durable;
			// later segments (possible under SyncNone) are not trusted.
			break
		}
	}
	if w.replayRecs != nil {
		w.replayRecs.Add(int64(stats.Records))
		if stats.Truncated {
			w.replayTrunc.Inc()
		}
	}
	return stats, nil
}

// openSegmentLocked makes the active segment writable.
func (w *WAL) openSegmentLocked() error {
	if w.seg != nil {
		return nil
	}
	f, err := w.fs.Create(path.Join(w.dir, segName(w.segIndex)))
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if err := w.fs.SyncDir(w.dir); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: fsync dir: %w", err)
	}
	w.seg, w.segSize = f, 0
	return nil
}

// Append journals one record. When it returns nil under SyncAlways,
// the record is durable; under SyncBatch/SyncNone durability lags by
// the policy's window.
func (w *WAL) Append(payload []byte) error {
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	startT := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("wal: closed")
	}
	w.replayed = true // appends foreclose replay
	if err := w.appendLocked(payload); err != nil {
		w.note(err)
		return err
	}
	switch w.opts.Policy {
	case SyncAlways:
		if err := w.syncLocked(); err != nil {
			w.note(err)
			return err
		}
	case SyncBatch:
		w.unsynced++
		if w.unsynced >= w.opts.BatchEvery {
			if err := w.syncLocked(); err != nil {
				w.note(err)
				return err
			}
		}
	}
	if w.appends != nil {
		w.appends.Inc()
		w.bytesC.Add(int64(headerSize + len(payload)))
		w.appendLatency.ObserveDuration(time.Since(startT))
	}
	return nil
}

func (w *WAL) appendLocked(payload []byte) error {
	if err := w.openSegmentLocked(); err != nil {
		return err
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	if _, err := w.seg.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := w.seg.Write(payload); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	w.segSize += int64(headerSize + len(payload))
	if w.segSize >= w.opts.SegmentBytes {
		return w.rotateLocked()
	}
	return nil
}

// rotateLocked seals the active segment and steps to the next index.
func (w *WAL) rotateLocked() error {
	if err := w.seg.Sync(); err != nil {
		return fmt.Errorf("wal: rotate sync: %w", err)
	}
	if err := w.seg.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	w.seg = nil
	w.segIndex++
	w.unsynced = 0
	if w.rotations != nil {
		w.rotations.Inc()
	}
	return nil
}

func (w *WAL) syncLocked() error {
	if w.seg == nil {
		return nil
	}
	if err := w.seg.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	w.unsynced = 0
	if w.syncs != nil {
		w.syncs.Inc()
	}
	return nil
}

// Sync forces the active segment to stable storage regardless of
// policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.syncLocked()
	w.note(err)
	return err
}

// Checkpoint compacts the journal: records (a snapshot of live state)
// are written as a fresh sealed segment, the MANIFEST is atomically
// replaced to name it as the new start, and older segments are
// deleted. Crash-safe at every step — until the MANIFEST rename
// lands, replay still sees the full history (the snapshot segment
// simply replays after it, which the caller's replay must tolerate;
// the jobs replay is last-write-wins, so it does).
func (w *WAL) Checkpoint(records [][]byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("wal: closed")
	}
	w.replayed = true
	// Seal whatever is in flight so the snapshot segment is the
	// newest.
	if w.seg != nil {
		if err := w.rotateLocked(); err != nil {
			w.note(err)
			return err
		}
	}
	snapIndex := w.segIndex
	w.segIndex++
	tmp := path.Join(w.dir, "checkpoint.tmp")
	f, err := w.fs.Create(tmp)
	if err != nil {
		w.note(err)
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	for _, rec := range records {
		var hdr [headerSize]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(rec)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(rec, crcTable))
		if _, err := f.Write(hdr[:]); err == nil {
			_, err = f.Write(rec)
		}
		if err != nil {
			_ = f.Close()
			w.note(err)
			return fmt.Errorf("wal: checkpoint write: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		w.note(err)
		return fmt.Errorf("wal: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		w.note(err)
		return fmt.Errorf("wal: checkpoint close: %w", err)
	}
	if err := w.fs.Rename(tmp, path.Join(w.dir, segName(snapIndex))); err != nil {
		w.note(err)
		return fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	if err := w.fs.SyncDir(w.dir); err != nil {
		w.note(err)
		return fmt.Errorf("wal: checkpoint fsync dir: %w", err)
	}
	// Commit: the manifest rename is the atomic switch.
	mTmp := path.Join(w.dir, manifestName+".tmp")
	mf, err := w.fs.Create(mTmp)
	if err == nil {
		_, err = fmt.Fprintf(mf, "start %d\n", snapIndex)
		if err == nil {
			err = mf.Sync()
		}
		cerr := mf.Close()
		if err == nil {
			err = cerr
		}
	}
	if err == nil {
		err = w.fs.Rename(mTmp, path.Join(w.dir, manifestName))
	}
	if err == nil {
		err = w.fs.SyncDir(w.dir)
	}
	if err != nil {
		w.note(err)
		return fmt.Errorf("wal: checkpoint manifest: %w", err)
	}
	oldStart := w.start
	w.start = snapIndex
	// History the snapshot subsumes; best-effort, retried implicitly
	// by the next checkpoint if a crash interrupts.
	for n := oldStart; n < snapIndex; n++ {
		_ = w.fs.Remove(path.Join(w.dir, segName(n)))
	}
	_ = w.fs.SyncDir(w.dir)
	return nil
}

// Close syncs and seals the journal.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.seg == nil {
		return nil
	}
	err := w.seg.Sync()
	if cerr := w.seg.Close(); err == nil {
		err = cerr
	}
	w.seg = nil
	w.note(err)
	return err
}
