package wal

import (
	"bytes"
	"errors"
	"fmt"
	"path"
	"testing"

	"sysrle/internal/store"
	"sysrle/internal/telemetry"
)

func openMem(t *testing.T, fs *store.MemFS, opts Options) *WAL {
	t.Helper()
	w, err := Open(fs, "data/wal", opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return w
}

func replayAll(t *testing.T, w *WAL) ([][]byte, ReplayStats) {
	t.Helper()
	var got [][]byte
	stats, err := w.Replay(func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got, stats
}

func TestAppendReplayRoundtrip(t *testing.T) {
	fs := store.NewMemFS()
	w := openMem(t, fs, Options{})
	var want [][]byte
	for i := 0; i < 50; i++ {
		rec := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, rec)
		if err := w.Append(rec); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	w2 := openMem(t, fs, Options{})
	got, stats := replayAll(t, w2)
	if stats.Truncated {
		t.Fatalf("clean log reported truncated at %s", stats.TruncatedAt)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestCrashKeepsDurablePrefix(t *testing.T) {
	fs := store.NewMemFS()
	w := openMem(t, fs, Options{Policy: SyncAlways})
	for i := 0; i < 10; i++ {
		if err := w.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// No Close: the process dies here.
	fs.Crash(store.CrashOpts{})
	w2 := openMem(t, fs, Options{})
	got, _ := replayAll(t, w2)
	if len(got) != 10 {
		t.Fatalf("SyncAlways lost acknowledged records: %d/10", len(got))
	}
}

func TestSyncNoneCrashLosesTail(t *testing.T) {
	fs := store.NewMemFS()
	w := openMem(t, fs, Options{Policy: SyncNone})
	for i := 0; i < 10; i++ {
		_ = w.Append([]byte(fmt.Sprintf("r%d", i)))
	}
	fs.Crash(store.CrashOpts{})
	w2 := openMem(t, fs, Options{})
	got, _ := replayAll(t, w2)
	// Nothing was fsynced, so nothing is owed — but whatever replays
	// must still be a prefix.
	for i, rec := range got {
		if want := fmt.Sprintf("r%d", i); string(rec) != want {
			t.Fatalf("record %d = %q, want %q (not a prefix)", i, rec, want)
		}
	}
}

func TestRotation(t *testing.T) {
	fs := store.NewMemFS()
	w := openMem(t, fs, Options{SegmentBytes: 64})
	for i := 0; i < 20; i++ {
		if err := w.Append([]byte("a 24-byte-ish payload!!")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	_ = w.Close()
	names, _ := fs.ReadDir("data/wal")
	segs := 0
	for _, n := range names {
		if len(n) > 4 && n[:4] == "seg-" {
			segs++
		}
	}
	if segs < 2 {
		t.Fatalf("no rotation: %d segments for 20 oversized appends", segs)
	}
	w2 := openMem(t, fs, Options{})
	got, stats := replayAll(t, w2)
	if len(got) != 20 || stats.Truncated {
		t.Fatalf("replay across segments: %d records, truncated=%v", len(got), stats.Truncated)
	}
}

func TestCheckpointCompacts(t *testing.T) {
	fs := store.NewMemFS()
	w := openMem(t, fs, Options{SegmentBytes: 64})
	for i := 0; i < 20; i++ {
		_ = w.Append([]byte(fmt.Sprintf("history-%02d", i)))
	}
	snap := [][]byte{[]byte("live-1"), []byte("live-2")}
	if err := w.Checkpoint(snap); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	_ = w.Close()
	w2 := openMem(t, fs, Options{})
	got, _ := replayAll(t, w2)
	if len(got) != 2 || string(got[0]) != "live-1" || string(got[1]) != "live-2" {
		t.Fatalf("post-checkpoint replay = %q, want the snapshot only", got)
	}
}

// manifestFailFS fails the creation of MANIFEST.tmp, freezing a
// checkpoint at the instant before its commit point.
type manifestFailFS struct{ store.FS }

func (f manifestFailFS) Create(p string) (store.File, error) {
	if path.Base(p) == "MANIFEST.tmp" {
		return nil, fmt.Errorf("injected: no space for %s", p)
	}
	return f.FS.Create(p)
}

func TestCheckpointCrashBeforeManifestReplaysHistory(t *testing.T) {
	// Crash between snapshot-segment rename and MANIFEST commit: the
	// full history plus the snapshot must replay (last-write-wins
	// callers tolerate the duplication; losing the snapshot would not
	// be tolerable).
	fs := store.NewMemFS()
	w, err := Open(manifestFailFS{fs}, "data/wal", Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	_ = w.Append([]byte("old-1"))
	_ = w.Append([]byte("old-2"))
	if err := w.Checkpoint([][]byte{[]byte("snap")}); err == nil {
		t.Fatal("Checkpoint with failing manifest must error")
	}
	fs.Crash(store.CrashOpts{})
	w2 := openMem(t, fs, Options{})
	got, _ := replayAll(t, w2)
	var flat []string
	for _, r := range got {
		flat = append(flat, string(r))
	}
	if len(flat) != 3 || flat[0] != "old-1" || flat[1] != "old-2" || flat[2] != "snap" {
		t.Fatalf("replay without manifest = %v, want full history ending in snapshot", flat)
	}
}

func TestReplayAfterAppendRejected(t *testing.T) {
	fs := store.NewMemFS()
	w := openMem(t, fs, Options{})
	_ = w.Append([]byte("x"))
	if _, err := w.Replay(func([]byte) error { return nil }); err == nil {
		t.Fatal("Replay after Append must error")
	}
}

func TestTooLarge(t *testing.T) {
	fs := store.NewMemFS()
	w := openMem(t, fs, Options{})
	if err := w.Append(make([]byte, maxRecordBytes+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized Append = %v, want ErrTooLarge", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := map[string]SyncPolicy{
		"": SyncAlways, "always": SyncAlways, "ALWAYS": SyncAlways,
		"batch": SyncBatch, "interval": SyncBatch, "none": SyncNone,
	}
	for in, want := range cases {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("yolo"); err == nil {
		t.Fatal("bad policy accepted")
	}
	if SyncBatch.String() != "batch" || SyncAlways.String() != "always" || SyncNone.String() != "none" {
		t.Fatal("String roundtrip broken")
	}
}

// TestReplayTortureEveryBoundary is the journal torture test: write a
// known log, then for every byte position truncate the segment there
// — and separately flip a bit there — and assert replay always yields
// an exact prefix of the original records, never garbage, never a
// crash. This is the durable-prefix contract checked exhaustively at
// record granularity.
func TestReplayTortureEveryBoundary(t *testing.T) {
	build := func() (*store.MemFS, [][]byte, []byte) {
		fs := store.NewMemFS()
		w, err := Open(fs, "data/wal", Options{})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		var recs [][]byte
		for i := 0; i < 12; i++ {
			rec := []byte(fmt.Sprintf("payload-%02d-%s", i, string(make([]byte, i))))
			recs = append(recs, rec)
			if err := w.Append(rec); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		_ = w.Close()
		data, err := fs.ReadFile("data/wal/seg-00000001.wal")
		if err != nil {
			t.Fatalf("read segment: %v", err)
		}
		return fs, recs, data
	}

	assertPrefix := func(t *testing.T, label string, recs, got [][]byte) {
		t.Helper()
		if len(got) > len(recs) {
			t.Fatalf("%s: replayed %d records from a log of %d", label, len(got), len(recs))
		}
		for i := range got {
			if !bytes.Equal(got[i], recs[i]) {
				t.Fatalf("%s: record %d = %q, want %q — not a prefix", label, i, got[i], recs[i])
			}
		}
	}

	_, recs, data := build()
	for cut := 0; cut <= len(data); cut++ {
		fs := store.NewMemFS()
		_ = fs.MkdirAll("data/wal")
		f, _ := fs.Create("data/wal/seg-00000001.wal")
		_, _ = f.Write(data[:cut])
		_ = f.Sync()
		_ = f.Close()
		_ = fs.SyncDir("data/wal")
		w, err := Open(fs, "data/wal", Options{})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		got, _ := replayAll(t, w)
		assertPrefix(t, fmt.Sprintf("truncate@%d", cut), recs, got)
	}

	for flip := 0; flip < len(data); flip++ {
		fs := store.NewMemFS()
		_ = fs.MkdirAll("data/wal")
		f, _ := fs.Create("data/wal/seg-00000001.wal")
		mut := append([]byte(nil), data...)
		mut[flip] ^= 1 << (flip % 8)
		_, _ = f.Write(mut)
		_ = f.Sync()
		_ = f.Close()
		_ = fs.SyncDir("data/wal")
		w, err := Open(fs, "data/wal", Options{})
		if err != nil {
			t.Fatalf("flip %d: Open: %v", flip, err)
		}
		var got [][]byte
		stats, err := w.Replay(func(p []byte) error {
			got = append(got, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatalf("flip %d: Replay: %v", flip, err)
		}
		// A flipped bit must be detected: either the record stream is a
		// strict prefix (replay stopped at the flip) or — if the flip
		// landed in a length field making a record appear longer — still
		// a prefix. It must never replay all records unchanged.
		assertPrefix(t, fmt.Sprintf("bitflip@%d", flip), recs, got)
		if len(got) == len(recs) && !stats.Truncated {
			t.Fatalf("bitflip@%d: corruption went entirely undetected", flip)
		}
	}
}

func TestTelemetry(t *testing.T) {
	fs := store.NewMemFS()
	reg := telemetry.NewRegistry()
	w := openMem(t, fs, Options{Registry: reg})
	_ = w.Append([]byte("abc"))
	_ = w.Append([]byte("def"))
	if got := reg.Counter("sysrle_wal_appends_total").Value(); got != 2 {
		t.Fatalf("appends counter = %d, want 2", got)
	}
	if got := reg.Counter("sysrle_wal_syncs_total").Value(); got != 2 {
		t.Fatalf("syncs counter = %d, want 2 under SyncAlways", got)
	}
	_ = w.Close()
}
