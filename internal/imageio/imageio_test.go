package imageio

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sysrle/internal/bitmap"
	"sysrle/internal/rle"
)

func randomRLE(seed int64) *rle.Image {
	rng := rand.New(rand.NewSource(seed))
	return bitmap.Random(rng, 40+rng.Intn(60), 20+rng.Intn(30), 0.35).ToRLE()
}

func TestRoundTripAllFormats(t *testing.T) {
	img := randomRLE(1)
	for _, format := range Formats() {
		var buf bytes.Buffer
		if err := Write(&buf, format, img); err != nil {
			t.Fatalf("%s: write: %v", format, err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", format, err)
		}
		if !back.Equal(img) {
			t.Errorf("%s: round trip changed pixels", format)
		}
	}
}

func TestSniffingDistinguishesFormats(t *testing.T) {
	img := randomRLE(2)
	for _, format := range Formats() {
		var buf bytes.Buffer
		if err := Write(&buf, format, img); err != nil {
			t.Fatal(err)
		}
		// No format hint on Read: sniffed from magic alone.
		if _, err := Read(bytes.NewReader(buf.Bytes())); err != nil {
			t.Errorf("%s: sniffing failed: %v", format, err)
		}
	}
}

func TestReadErrors(t *testing.T) {
	for _, in := range []string{"", "XYZW unknown", "P9\n1 1\n"} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestWriteUnknownFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, "bmp", randomRLE(3)); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "img.pbm")
	img := randomRLE(4)
	var buf bytes.Buffer
	if err := Write(&buf, "pbm", img); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(path, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(img) {
		t.Error("ReadFile changed pixels")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.pbm")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestContentType(t *testing.T) {
	if ContentType("png") != "image/png" {
		t.Error("png content type wrong")
	}
	if ContentType("pbm") != "image/x-portable-bitmap" {
		t.Error("pbm content type wrong")
	}
	if ContentType("rleb") != "application/octet-stream" {
		t.Error("rleb content type wrong")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func TestReadPGMViaSniffing(t *testing.T) {
	in := "P2\n2 2\n255\n0 255\n255 0\n"
	img, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !img.Get(0, 0) || img.Get(1, 0) || img.Get(0, 1) || !img.Get(1, 1) {
		t.Errorf("PGM sniff decode wrong: %v", img.Rows)
	}
}
