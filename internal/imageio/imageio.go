// Package imageio reads and writes binary images in every format the
// tools understand — PBM (P1/P4), PNG, and the repository's RLE text
// and binary formats — sniffing the input format from its magic
// bytes. It is the I/O layer shared by cmd/sysdiff, cmd/pcbinspect
// and the HTTP service.
package imageio

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"

	"sysrle/internal/bitmap"
	"sysrle/internal/rle"
)

// Formats lists the accepted output format names.
func Formats() []string {
	return []string{"pbm", "pbm-plain", "png", "rlet", "rleb"}
}

// Read decodes an image, sniffing the format: PBM "P1"/"P4", PNG
// signature, RLE text "RLET", RLE binary "RLEB".
func Read(r io.Reader) (*rle.Image, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(8)
	if err != nil && len(magic) < 2 {
		return nil, fmt.Errorf("imageio: short input: %v", err)
	}
	switch {
	case bytes.HasPrefix(magic, []byte("P1")) || bytes.HasPrefix(magic, []byte("P4")):
		bm, err := bitmap.ReadPBM(br)
		if err != nil {
			return nil, err
		}
		return bm.ToRLE(), nil
	case bytes.HasPrefix(magic, []byte("P2")) || bytes.HasPrefix(magic, []byte("P5")):
		// Grayscale scans binarize at the midpoint on the way in.
		bm, err := bitmap.ReadPGM(br, 0.5)
		if err != nil {
			return nil, err
		}
		return bm.ToRLE(), nil
	case bytes.HasPrefix(magic, []byte("\x89PNG")):
		bm, err := bitmap.ReadPNG(br)
		if err != nil {
			return nil, err
		}
		return bm.ToRLE(), nil
	case bytes.HasPrefix(magic, []byte("RLET")):
		return rle.ReadText(br)
	case bytes.HasPrefix(magic, []byte("RLEB")):
		return rle.ReadBinary(br)
	default:
		return nil, fmt.Errorf("imageio: unrecognized format (magic %q)", trimMagic(magic))
	}
}

func trimMagic(m []byte) []byte {
	if len(m) > 4 {
		return m[:4]
	}
	return m
}

// ReadFile decodes an image file.
func ReadFile(path string) (*rle.Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	img, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return img, nil
}

// Write encodes an image in the named format.
func Write(w io.Writer, format string, img *rle.Image) error {
	switch format {
	case "pbm":
		return bitmap.WritePBM(w, bitmap.FromRLE(img))
	case "pbm-plain":
		return bitmap.WritePBMPlain(w, bitmap.FromRLE(img))
	case "png":
		return bitmap.WritePNG(w, bitmap.FromRLE(img))
	case "rlet":
		return rle.WriteText(w, img)
	case "rleb":
		return rle.WriteBinary(w, img)
	default:
		return fmt.Errorf("imageio: unknown format %q (have %v)", format, Formats())
	}
}

// ContentType returns the MIME type for a format name.
func ContentType(format string) string {
	switch format {
	case "png":
		return "image/png"
	case "pbm", "pbm-plain":
		return "image/x-portable-bitmap"
	default:
		return "application/octet-stream"
	}
}
