package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"sysrle/internal/apiclient"
	"sysrle/internal/telemetry"
)

// Defaults for Config zero values.
const (
	// DefaultSplitRows is the minimum rows per band: an image only
	// scatters across shards when every shard gets at least this many
	// rows, so small images never pay the fan-out overhead.
	DefaultSplitRows = 64
	// DefaultPeerTimeout bounds one coordinator→shard call.
	DefaultPeerTimeout = 30 * time.Second
	// DefaultMaxUploadBytes caps one inbound request body.
	DefaultMaxUploadBytes = 64 << 20
)

// Config tunes a Coordinator.
type Config struct {
	// Peers are the shard base URLs (scheme://host:port). At least one
	// is required.
	Peers []string
	// VirtualNodes per peer on the ring; 0 means DefaultVirtualNodes.
	VirtualNodes int
	// SplitRows is the minimum band height for row-range scatter;
	// 0 means DefaultSplitRows, negative disables splitting.
	SplitRows int
	// PeerTimeout bounds each shard call; 0 means DefaultPeerTimeout.
	PeerTimeout time.Duration
	// HedgeDelay arms the client's slow-shard hedging for idempotent
	// calls; 0 disables it.
	HedgeDelay time.Duration
	// Retries is the per-call retry budget for idempotent shard calls
	// (see apiclient.Options.Retries).
	Retries int
	// Seed pins the client's retry jitter (chaos tests); 0 uses the clock.
	Seed int64
	// MaxUploadBytes caps one inbound body; 0 means DefaultMaxUploadBytes.
	MaxUploadBytes int64
	// Transport, when non-nil, is installed in every peer client —
	// chaos tests wrap it with fault.WrapTransport.
	Transport http.RoundTripper
	// Registry receives the coordinator's telemetry; nil means a
	// private registry.
	Registry *telemetry.Registry
	// Logger receives structured logs; nil discards them.
	Logger *slog.Logger
}

// Coordinator fronts a ring of sysdiffd shards: references are placed
// by consistent hashing, huge diffs scatter by row range, and
// everything a shard answers flows back through the same v1 API
// surface the shards themselves expose.
type Coordinator struct {
	cfg  Config
	ring *Ring
	log  *slog.Logger
	reg  *telemetry.Registry

	mu      sync.RWMutex
	clients map[string]*apiclient.Client
	// draining holds clients for peers removed from the ring whose
	// references have not yet been moved off by Rebalance.
	draining map[string]*apiclient.Client

	rr      atomic.Uint64 // round-robin cursor for unplaced work
	handler http.Handler

	routeHits    *telemetry.Counter
	routeMisses  *telemetry.Counter
	scatterDiffs *telemetry.Counter
	movedRefs    *telemetry.Counter
}

// New returns a coordinator for the given shard set.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: no peers configured")
	}
	if cfg.SplitRows == 0 {
		cfg.SplitRows = DefaultSplitRows
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = DefaultPeerTimeout
	}
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = DefaultMaxUploadBytes
	}
	c := &Coordinator{
		cfg:      cfg,
		ring:     NewRing(nil, cfg.VirtualNodes),
		log:      cfg.Logger,
		reg:      cfg.Registry,
		clients:  make(map[string]*apiclient.Client),
		draining: make(map[string]*apiclient.Client),
	}
	if c.log == nil {
		c.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.reg == nil {
		c.reg = telemetry.NewRegistry()
	}
	c.reg.Help("sysrle_cluster_ref_route_hits_total",
		"Ref-routed requests whose ring owner held the reference.")
	c.reg.Help("sysrle_cluster_ref_route_misses_total",
		"Ref-routed requests 404ed by the ring owner (placement miss).")
	c.reg.Help("sysrle_cluster_scatter_diffs_total",
		"Diff requests split by row range across shards.")
	c.reg.Help("sysrle_cluster_rebalance_moved_total",
		"References moved to their ring owner by rebalancing.")
	c.reg.Help("sysrle_cluster_peer_request_seconds",
		"Coordinator→shard call latency, by peer.")
	c.reg.Help("sysrle_cluster_peer_requests_total",
		"Coordinator→shard calls, by peer and status class.")
	c.routeHits = c.reg.Counter("sysrle_cluster_ref_route_hits_total")
	c.routeMisses = c.reg.Counter("sysrle_cluster_ref_route_misses_total")
	c.scatterDiffs = c.reg.Counter("sysrle_cluster_scatter_diffs_total")
	c.movedRefs = c.reg.Counter("sysrle_cluster_rebalance_moved_total")
	if err := c.SetPeers(cfg.Peers); err != nil {
		return nil, err
	}
	c.handler = c.middleware(c.routes())
	return c, nil
}

// peerLabel folds a base URL to host:port for bounded metric labels.
func peerLabel(base string) string {
	if u, err := url.Parse(base); err == nil && u.Host != "" {
		return u.Host
	}
	return base
}

// newClient builds the typed client for one peer, feeding the
// per-peer latency histogram from the client's Observe hook.
func (c *Coordinator) newClient(peer string) (*apiclient.Client, error) {
	label := telemetry.L("peer", peerLabel(peer))
	hist := c.reg.Histogram("sysrle_cluster_peer_request_seconds", nil, label)
	return apiclient.New(peer, apiclient.Options{
		HTTPClient: &http.Client{Transport: c.cfg.Transport},
		Timeout:    c.cfg.PeerTimeout,
		Retries:    c.cfg.Retries,
		HedgeDelay: c.cfg.HedgeDelay,
		Seed:       c.cfg.Seed,
		UserAgent:  "sysrle-cluster/1",
		Observe: func(route string, d time.Duration, status int) {
			hist.ObserveDuration(d)
			c.reg.Counter("sysrle_cluster_peer_requests_total",
				label, telemetry.L("class", statusClass(status))).Inc()
		},
	})
}

func statusClass(status int) string {
	switch {
	case status == 0:
		return "error"
	case status < 300:
		return "2xx"
	case status < 400:
		return "3xx"
	case status < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// SetPeers replaces the membership. Existing clients for surviving
// peers are kept (their metrics series stay hot); removed peers move
// to a draining set so the next Rebalance can pull their references
// onto the survivors. Placement follows the ring's
// bounded-rebalancing property, and actually moving the misplaced
// references is Rebalance's job.
func (c *Coordinator) SetPeers(peers []string) error {
	fresh := make(map[string]*apiclient.Client, len(peers))
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range peers {
		if p == "" {
			continue
		}
		delete(c.draining, p) // re-added peer is no longer draining
		if cl, ok := c.clients[p]; ok {
			fresh[p] = cl
			continue
		}
		cl, err := c.newClient(p)
		if err != nil {
			return err
		}
		fresh[p] = cl
	}
	if len(fresh) == 0 {
		return fmt.Errorf("cluster: no valid peers")
	}
	for p, cl := range c.clients {
		if _, kept := fresh[p]; !kept {
			c.draining[p] = cl
		}
	}
	c.clients = fresh
	c.ring.SetPeers(peers)
	c.log.Info("cluster membership set", "peers", c.ring.Peers(), "draining", len(c.draining))
	return nil
}

// drainingPeers snapshots the draining set.
func (c *Coordinator) drainingPeers() map[string]*apiclient.Client {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]*apiclient.Client, len(c.draining))
	for p, cl := range c.draining {
		out[p] = cl
	}
	return out
}

// drained marks a removed peer as fully evacuated.
func (c *Coordinator) drained(peer string) {
	c.mu.Lock()
	delete(c.draining, peer)
	c.mu.Unlock()
}

// Peers returns the current membership.
func (c *Coordinator) Peers() []string { return c.ring.Peers() }

// client returns the typed client for a peer URL.
func (c *Coordinator) client(peer string) *apiclient.Client {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.clients[peer]
}

// ownerClient resolves a placement key to its owning peer's client.
func (c *Coordinator) ownerClient(key string) (string, *apiclient.Client) {
	peer := c.ring.Owner(key)
	return peer, c.client(peer)
}

// nextClient picks the next peer round-robin, for work with no
// placement affinity (inline-upload compares, job submission).
func (c *Coordinator) nextClient() (string, *apiclient.Client) {
	peers := c.ring.Peers()
	if len(peers) == 0 {
		return "", nil
	}
	peer := peers[int(c.rr.Add(1)-1)%len(peers)]
	return peer, c.client(peer)
}

// ServeHTTP dispatches through the coordinator's middleware and mux.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.handler.ServeHTTP(w, r)
}

// middleware is the coordinator's thin stack: panic recovery, request
// id, access log. Shard calls carry their own deadlines, so there is
// no separate coordinator timeout tier.
func (c *Coordinator) middleware(next http.Handler) http.Handler {
	panics := c.reg.Counter("sysrle_cluster_http_panics_total")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = fmt.Sprintf("coord-%06d", c.rr.Add(1))
			r.Header.Set("X-Request-Id", id)
		}
		w.Header().Set("X-Request-Id", id)
		start := time.Now()
		defer func() {
			if v := recover(); v != nil {
				panics.Inc()
				c.log.Error("panic serving request", "path", r.URL.Path, "panic", fmt.Sprint(v))
				writeError(w, http.StatusInternalServerError, "internal", "internal error", id)
			}
			c.log.Info("request", "method", r.Method, "path", r.URL.Path,
				"duration", time.Since(start), "request_id", id)
		}()
		next.ServeHTTP(w, r)
	})
}

// writeJSON renders one response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError renders the unified v1 error envelope.
func writeError(w http.ResponseWriter, status int, code, msg, rid string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"error": map[string]string{
			"code": code, "message": msg, "request_id": rid,
		},
	})
}

// relayError maps a shard-call failure onto the coordinator's own
// response: API errors pass through status, code and message (the
// shard already sanitized them); transport failures — a dead or
// unreachable shard — become 503 unavailable, so a killed shard fails
// only the requests its ring span owns.
func (c *Coordinator) relayError(w http.ResponseWriter, r *http.Request, peer string, err error) {
	rid := r.Header.Get("X-Request-Id")
	if ae, ok := apiErr(err); ok {
		id := ae.RequestID
		if id == "" {
			id = rid
		}
		writeError(w, ae.Status, ae.Code, ae.Message, id)
		return
	}
	c.log.Warn("peer unreachable", "peer", peerLabel(peer), "err", err, "request_id", rid)
	writeError(w, http.StatusServiceUnavailable, "unavailable",
		fmt.Sprintf("shard %s unavailable", peerLabel(peer)), rid)
}

func apiErr(err error) (*apiclient.Error, bool) {
	var ae *apiclient.Error
	if errors.As(err, &ae) {
		return ae, true
	}
	return nil, false
}
