package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sysrle/internal/apiclient"
	"sysrle/internal/telemetry"
)

// Defaults for Config zero values.
const (
	// DefaultSplitRows is the minimum rows per band: an image only
	// scatters across shards when every shard gets at least this many
	// rows, so small images never pay the fan-out overhead.
	DefaultSplitRows = 64
	// DefaultPeerTimeout bounds one coordinator→shard call.
	DefaultPeerTimeout = 30 * time.Second
	// DefaultMaxUploadBytes caps one inbound request body.
	DefaultMaxUploadBytes = 64 << 20
	// DefaultProbeInterval is the health prober's period when probing
	// is enabled implicitly by AutoEject.
	DefaultProbeInterval = 2 * time.Second
	// DefaultProbeFailures is how many consecutive probe failures mark
	// a peer suspect.
	DefaultProbeFailures = 3
)

// Config tunes a Coordinator.
type Config struct {
	// Peers are the shard base URLs (scheme://host:port). At least one
	// is required.
	Peers []string
	// VirtualNodes per peer on the ring; 0 means DefaultVirtualNodes.
	VirtualNodes int
	// Replicas is the replication factor R: each reference is written
	// to this many distinct ring successors, and reads fail over along
	// the same set. 0 or 1 means no replication. More replicas than
	// peers degrades gracefully to every peer.
	Replicas int
	// ProbeInterval is the background health prober's period; 0
	// disables probing (unless AutoEject forces DefaultProbeInterval).
	ProbeInterval time.Duration
	// ProbeFailures is how many consecutive failed probes mark a peer
	// suspect; 0 means DefaultProbeFailures.
	ProbeFailures int
	// AutoEject, when set, drops a suspect peer from the ring
	// automatically — the same drain path as an explicit membership
	// change — and kicks a background replica repair. Opt-in: a
	// flapping network ejecting healthy shards is worse than a dead
	// one answering 503s.
	AutoEject bool
	// SplitRows is the minimum band height for row-range scatter;
	// 0 means DefaultSplitRows, negative disables splitting.
	SplitRows int
	// PeerTimeout bounds each shard call; 0 means DefaultPeerTimeout.
	PeerTimeout time.Duration
	// HedgeDelay arms the client's slow-shard hedging for idempotent
	// calls; 0 disables it.
	HedgeDelay time.Duration
	// Retries is the per-call retry budget for idempotent shard calls
	// (see apiclient.Options.Retries).
	Retries int
	// Seed pins the client's retry jitter (chaos tests); 0 uses the clock.
	Seed int64
	// MaxUploadBytes caps one inbound body; 0 means DefaultMaxUploadBytes.
	MaxUploadBytes int64
	// Transport, when non-nil, is installed in every peer client —
	// chaos tests wrap it with fault.WrapTransport.
	Transport http.RoundTripper
	// Registry receives the coordinator's telemetry; nil means a
	// private registry.
	Registry *telemetry.Registry
	// Logger receives structured logs; nil discards them.
	Logger *slog.Logger
}

// Coordinator fronts a ring of sysdiffd shards: references are placed
// by consistent hashing, huge diffs scatter by row range, and
// everything a shard answers flows back through the same v1 API
// surface the shards themselves expose.
type Coordinator struct {
	cfg      Config
	ring     *Ring
	replicas int
	log      *slog.Logger
	reg      *telemetry.Registry

	mu      sync.RWMutex
	clients map[string]*apiclient.Client
	// draining holds clients for peers removed from the ring whose
	// references have not yet been moved off by Rebalance.
	draining map[string]*apiclient.Client

	// rebalanceMu serializes rebalances: overlapping runs would work
	// from stale listings, double-count moves, and delete strays the
	// other run is mid-fetching. The HTTP handler TryLocks and answers
	// 409 when one is already running.
	rebalanceMu sync.Mutex

	// probeMu guards the health prober's bookkeeping. Never held while
	// calling SetPeers (which takes mu) — the prober releases it before
	// ejecting.
	probeMu    sync.Mutex
	probeFails map[string]int
	suspects   map[string]bool

	probeStop chan struct{}
	probeDone chan struct{}
	closeOnce sync.Once

	rr      atomic.Uint64 // round-robin cursor for unplaced work
	handler http.Handler

	routeHits    *telemetry.Counter
	routeMisses  *telemetry.Counter
	scatterDiffs *telemetry.Counter
	movedRefs    *telemetry.Counter
	failovers    *telemetry.Counter
	suspectPeers *telemetry.Gauge
	ejections    *telemetry.Counter
}

// New returns a coordinator for the given shard set.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: no peers configured")
	}
	if cfg.SplitRows == 0 {
		cfg.SplitRows = DefaultSplitRows
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = DefaultPeerTimeout
	}
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = DefaultMaxUploadBytes
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.ProbeFailures <= 0 {
		cfg.ProbeFailures = DefaultProbeFailures
	}
	if cfg.AutoEject && cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	c := &Coordinator{
		cfg:        cfg,
		ring:       NewRing(nil, cfg.VirtualNodes),
		replicas:   cfg.Replicas,
		log:        cfg.Logger,
		reg:        cfg.Registry,
		clients:    make(map[string]*apiclient.Client),
		draining:   make(map[string]*apiclient.Client),
		probeFails: make(map[string]int),
		suspects:   make(map[string]bool),
	}
	if c.log == nil {
		c.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.reg == nil {
		c.reg = telemetry.NewRegistry()
	}
	c.reg.Help("sysrle_cluster_ref_route_hits_total",
		"Ref-routed requests whose ring owner held the reference.")
	c.reg.Help("sysrle_cluster_ref_route_misses_total",
		"Ref-routed requests 404ed by the ring owner (placement miss).")
	c.reg.Help("sysrle_cluster_scatter_diffs_total",
		"Diff requests split by row range across shards.")
	c.reg.Help("sysrle_cluster_rebalance_moved_total",
		"Reference copies created on ring owners by rebalancing (moves and replica repairs).")
	c.reg.Help("sysrle_cluster_peer_request_seconds",
		"Coordinator→shard call latency, by peer.")
	c.reg.Help("sysrle_cluster_peer_requests_total",
		"Coordinator→shard calls, by peer and status class.")
	c.reg.Help("sysrle_cluster_failover_total",
		"Reference reads served by a replica after the primary failed or missed.")
	c.reg.Help("sysrle_cluster_suspect_peers",
		"Peers currently suspected dead by the health prober.")
	c.reg.Help("sysrle_cluster_auto_ejections_total",
		"Suspect peers dropped from the ring by the prober under AutoEject.")
	c.routeHits = c.reg.Counter("sysrle_cluster_ref_route_hits_total")
	c.routeMisses = c.reg.Counter("sysrle_cluster_ref_route_misses_total")
	c.scatterDiffs = c.reg.Counter("sysrle_cluster_scatter_diffs_total")
	c.movedRefs = c.reg.Counter("sysrle_cluster_rebalance_moved_total")
	c.failovers = c.reg.Counter("sysrle_cluster_failover_total")
	c.suspectPeers = c.reg.Gauge("sysrle_cluster_suspect_peers")
	c.ejections = c.reg.Counter("sysrle_cluster_auto_ejections_total")
	if err := c.SetPeers(cfg.Peers); err != nil {
		return nil, err
	}
	c.handler = c.middleware(c.routes())
	if cfg.ProbeInterval > 0 {
		c.probeStop = make(chan struct{})
		c.probeDone = make(chan struct{})
		go c.probeLoop(cfg.ProbeInterval)
	}
	return c, nil
}

// Close stops the background health prober, if one is running. Safe to
// call more than once; the HTTP handler keeps working.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		if c.probeStop != nil {
			close(c.probeStop)
			<-c.probeDone
		}
	})
}

// peerLabel folds a base URL to host:port for bounded metric labels.
func peerLabel(base string) string {
	if u, err := url.Parse(base); err == nil && u.Host != "" {
		return u.Host
	}
	return base
}

// newClient builds the typed client for one peer, feeding the
// per-peer latency histogram from the client's Observe hook.
func (c *Coordinator) newClient(peer string) (*apiclient.Client, error) {
	label := telemetry.L("peer", peerLabel(peer))
	hist := c.reg.Histogram("sysrle_cluster_peer_request_seconds", nil, label)
	return apiclient.New(peer, apiclient.Options{
		HTTPClient: &http.Client{Transport: c.cfg.Transport},
		Timeout:    c.cfg.PeerTimeout,
		Retries:    c.cfg.Retries,
		HedgeDelay: c.cfg.HedgeDelay,
		Seed:       c.cfg.Seed,
		UserAgent:  "sysrle-cluster/1",
		Observe: func(route string, d time.Duration, status int) {
			hist.ObserveDuration(d)
			c.reg.Counter("sysrle_cluster_peer_requests_total",
				label, telemetry.L("class", statusClass(status))).Inc()
		},
	})
}

func statusClass(status int) string {
	switch {
	case status == 0:
		return "error"
	case status < 300:
		return "2xx"
	case status < 400:
		return "3xx"
	case status < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// SetPeers replaces the membership. Existing clients for surviving
// peers are kept (their metrics series stay hot); removed peers move
// to a draining set so the next Rebalance can pull their references
// onto the survivors. Placement follows the ring's
// bounded-rebalancing property, and actually moving the misplaced
// references is Rebalance's job.
//
// The change is all-or-nothing: every new peer's client is staged
// before any coordinator state mutates, so a failed change (bad peer
// URL) leaves clients, the draining set and the ring exactly as they
// were. An earlier version deleted peers from the draining set while
// iterating, before client construction could fail — a rejected
// membership change silently un-drained peers whose references then
// never got evacuated.
func (c *Coordinator) SetPeers(peers []string) error {
	if err := c.setPeers(peers); err != nil {
		return err
	}
	c.pruneProbeState()
	return nil
}

func (c *Coordinator) setPeers(peers []string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Stage: build the complete next client set without touching
	// anything. A re-added draining peer gets its old client back.
	fresh := make(map[string]*apiclient.Client, len(peers))
	for _, p := range peers {
		if p == "" {
			continue
		}
		if cl, ok := c.clients[p]; ok {
			fresh[p] = cl
			continue
		}
		if cl, ok := c.draining[p]; ok {
			fresh[p] = cl
			continue
		}
		cl, err := c.newClient(p)
		if err != nil {
			return err
		}
		fresh[p] = cl
	}
	if len(fresh) == 0 {
		return fmt.Errorf("cluster: no valid peers")
	}
	// Commit: nothing below can fail.
	for p := range fresh {
		delete(c.draining, p) // re-added peer is no longer draining
	}
	for p, cl := range c.clients {
		if _, kept := fresh[p]; !kept {
			c.draining[p] = cl
		}
	}
	c.clients = fresh
	c.ring.SetPeers(peers)
	c.log.Info("cluster membership set", "peers", c.ring.Peers(), "draining", len(c.draining))
	return nil
}

// pruneProbeState drops prober bookkeeping for peers no longer on the
// ring, so a removed peer cannot linger as suspect.
func (c *Coordinator) pruneProbeState() {
	member := make(map[string]bool)
	for _, p := range c.ring.Peers() {
		member[p] = true
	}
	c.probeMu.Lock()
	for p := range c.probeFails {
		if !member[p] {
			delete(c.probeFails, p)
		}
	}
	for p := range c.suspects {
		if !member[p] {
			delete(c.suspects, p)
		}
	}
	c.suspectPeers.Set(int64(len(c.suspects)))
	c.probeMu.Unlock()
}

// drainingPeers snapshots the draining set.
func (c *Coordinator) drainingPeers() map[string]*apiclient.Client {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]*apiclient.Client, len(c.draining))
	for p, cl := range c.draining {
		out[p] = cl
	}
	return out
}

// drained marks a removed peer as fully evacuated.
func (c *Coordinator) drained(peer string) {
	c.mu.Lock()
	delete(c.draining, peer)
	c.mu.Unlock()
}

// Peers returns the current membership.
func (c *Coordinator) Peers() []string { return c.ring.Peers() }

// client returns the typed client for a peer URL.
func (c *Coordinator) client(peer string) *apiclient.Client {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.clients[peer]
}

// ownerClient resolves a placement key to its owning peer's client.
func (c *Coordinator) ownerClient(key string) (string, *apiclient.Client) {
	peer := c.ring.Owner(key)
	return peer, c.client(peer)
}

// ownerRef is one member of a key's replica set.
type ownerRef struct {
	peer string
	cl   *apiclient.Client
}

// ownerRefs resolves a placement key to its replica set — the R ring
// successors, primary first — with their clients.
func (c *Coordinator) ownerRefs(key string) []ownerRef {
	peers := c.ring.Owners(key, c.replicas)
	out := make([]ownerRef, 0, len(peers))
	c.mu.RLock()
	for _, p := range peers {
		out = append(out, ownerRef{p, c.clients[p]})
	}
	c.mu.RUnlock()
	return out
}

// readOwners runs fn against the key's replica set in ring order:
// primary first, failing over to the next replica when the attempt is
// failover-eligible (unreachable peer, 5xx, or a 404 placement miss —
// a replica may hold the copy the primary lost). A read served past
// the primary counts in sysrle_cluster_failover_total. When every
// owner fails, an availability error wins over a 404 — a 404 is only
// definitive if every replica agreed the reference does not exist.
// The returned peer is the one whose answer (or decisive error) the
// caller relays.
func (c *Coordinator) readOwners(key string, fn func(peer string, cl *apiclient.Client) error) (string, error) {
	owners := c.ownerRefs(key)
	var notFoundPeer, failedPeer string
	var notFound, failed error
	for i, o := range owners {
		if o.cl == nil {
			continue
		}
		err := fn(o.peer, o.cl)
		if err == nil {
			if i > 0 {
				c.failovers.Inc()
				c.log.Info("reference read failed over to replica",
					"key", key, "replica", peerLabel(o.peer))
			}
			return o.peer, nil
		}
		if !apiclient.FailoverEligible(err) {
			// Definitive client-level failure (422, 429, ...): every
			// replica would answer the same; relay it as-is.
			return o.peer, err
		}
		if apiclient.IsNotFound(err) {
			notFoundPeer, notFound = o.peer, err
		} else {
			failedPeer, failed = o.peer, err
		}
	}
	if failed != nil {
		return failedPeer, failed
	}
	if notFound != nil {
		return notFoundPeer, notFound
	}
	return "", fmt.Errorf("cluster: no shard owns this key")
}

// probeLoop is the background health prober: every interval it asks
// each ring member's /readyz (the same per-shard probes the
// coordinator's readyz aggregates) and counts consecutive transport
// failures. A peer that cannot be reached ProbeFailures times in a row
// is marked suspect; under AutoEject it is then dropped from the ring
// — the identical drain path an operator's membership change takes —
// and a background replica repair re-replicates what it held.
func (c *Coordinator) probeLoop(interval time.Duration) {
	defer close(c.probeDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.probeStop:
			return
		case <-t.C:
			c.probeOnce(interval)
		}
	}
}

func (c *Coordinator) probeOnce(interval time.Duration) {
	peers := c.ring.Peers()
	type verdict struct {
		peer string
		ok   bool
	}
	verdicts := make([]verdict, len(peers))
	var wg sync.WaitGroup
	for i, peer := range peers {
		cl := c.client(peer)
		if cl == nil {
			verdicts[i] = verdict{peer, false}
			continue
		}
		wg.Add(1)
		go func(i int, peer string, cl *apiclient.Client) {
			defer wg.Done()
			// One probe must not outlive its tick. A not-ready answer
			// still proves the shard is alive (and its data intact), so
			// only an unreachable peer counts as a failure.
			ctx, cancel := context.WithTimeout(context.Background(), interval)
			defer cancel()
			_, err := cl.Ready(ctx)
			verdicts[i] = verdict{peer, err == nil}
		}(i, peer, cl)
	}
	wg.Wait()

	var eject []string
	c.probeMu.Lock()
	for _, v := range verdicts {
		if v.ok {
			if c.suspects[v.peer] {
				c.log.Info("suspect peer recovered", "peer", peerLabel(v.peer))
			}
			delete(c.probeFails, v.peer)
			delete(c.suspects, v.peer)
			continue
		}
		c.probeFails[v.peer]++
		if c.probeFails[v.peer] >= c.cfg.ProbeFailures && !c.suspects[v.peer] {
			c.suspects[v.peer] = true
			c.log.Warn("peer suspect after consecutive probe failures",
				"peer", peerLabel(v.peer), "failures", c.probeFails[v.peer])
			if c.cfg.AutoEject {
				eject = append(eject, v.peer)
			}
		}
	}
	c.suspectPeers.Set(int64(len(c.suspects)))
	c.probeMu.Unlock()

	for _, peer := range eject {
		c.ejectPeer(peer)
	}
}

// suspectList snapshots the peers currently suspected dead.
func (c *Coordinator) suspectList() []string {
	c.probeMu.Lock()
	defer c.probeMu.Unlock()
	out := make([]string, 0, len(c.suspects))
	for p := range c.suspects {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ejectPeer drops a suspect peer from the ring via the same SetPeers
// drain path an operator uses, then kicks a background rebalance so
// the survivors re-replicate what the dead peer held. The last peer is
// never ejected — a coordinator with an empty ring can serve nothing.
func (c *Coordinator) ejectPeer(peer string) {
	var survivors []string
	for _, p := range c.ring.Peers() {
		if p != peer {
			survivors = append(survivors, p)
		}
	}
	if len(survivors) == 0 {
		c.log.Warn("not auto-ejecting the last peer", "peer", peerLabel(peer))
		return
	}
	if err := c.SetPeers(survivors); err != nil {
		c.log.Error("auto-eject membership change failed", "peer", peerLabel(peer), "err", err)
		return
	}
	c.ejections.Inc()
	c.log.Warn("peer auto-ejected from ring", "peer", peerLabel(peer), "peers", survivors)
	go func() {
		if !c.rebalanceMu.TryLock() {
			return // a running rebalance will pick the change up next run
		}
		defer c.rebalanceMu.Unlock()
		ctx, cancel := context.WithTimeout(context.Background(), 10*c.cfg.PeerTimeout)
		defer cancel()
		if moved, _, err := c.rebalance(ctx); err != nil {
			c.log.Warn("post-eject replica repair failed", "err", err)
		} else if moved > 0 {
			c.log.Info("post-eject replica repair complete", "copies", moved)
		}
	}()
}

// nextClient picks the next peer round-robin, for work with no
// placement affinity (inline-upload compares, job submission).
func (c *Coordinator) nextClient() (string, *apiclient.Client) {
	peers := c.ring.Peers()
	if len(peers) == 0 {
		return "", nil
	}
	peer := peers[int(c.rr.Add(1)-1)%len(peers)]
	return peer, c.client(peer)
}

// ServeHTTP dispatches through the coordinator's middleware and mux.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.handler.ServeHTTP(w, r)
}

// middleware is the coordinator's thin stack: panic recovery, request
// id, access log. Shard calls carry their own deadlines, so there is
// no separate coordinator timeout tier.
func (c *Coordinator) middleware(next http.Handler) http.Handler {
	panics := c.reg.Counter("sysrle_cluster_http_panics_total")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = fmt.Sprintf("coord-%06d", c.rr.Add(1))
			r.Header.Set("X-Request-Id", id)
		}
		w.Header().Set("X-Request-Id", id)
		start := time.Now()
		defer func() {
			if v := recover(); v != nil {
				panics.Inc()
				c.log.Error("panic serving request", "path", r.URL.Path, "panic", fmt.Sprint(v))
				writeError(w, http.StatusInternalServerError, "internal", "internal error", id)
			}
			c.log.Info("request", "method", r.Method, "path", r.URL.Path,
				"duration", time.Since(start), "request_id", id)
		}()
		next.ServeHTTP(w, r)
	})
}

// writeJSON renders one response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError renders the unified v1 error envelope.
func writeError(w http.ResponseWriter, status int, code, msg, rid string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"error": map[string]string{
			"code": code, "message": msg, "request_id": rid,
		},
	})
}

// relayError maps a shard-call failure onto the coordinator's own
// response: API errors pass through status, code and message (the
// shard already sanitized them); transport failures — a dead or
// unreachable shard — become 503 unavailable, so a killed shard fails
// only the requests its ring span owns.
func (c *Coordinator) relayError(w http.ResponseWriter, r *http.Request, peer string, err error) {
	rid := r.Header.Get("X-Request-Id")
	if ae, ok := apiErr(err); ok {
		id := ae.RequestID
		if id == "" {
			id = rid
		}
		writeError(w, ae.Status, ae.Code, ae.Message, id)
		return
	}
	c.log.Warn("peer unreachable", "peer", peerLabel(peer), "err", err, "request_id", rid)
	writeError(w, http.StatusServiceUnavailable, "unavailable",
		fmt.Sprintf("shard %s unavailable", peerLabel(peer)), rid)
}

func apiErr(err error) (*apiclient.Error, bool) {
	var ae *apiclient.Error
	if errors.As(err, &ae) {
		return ae, true
	}
	return nil, false
}
