package cluster

// Replication, read failover, and the membership bugfix regressions:
// a 3-peer R=2 cluster must keep serving every reference —
// byte-identical, zero 404s — after one shard dies and before anyone
// rebalances, and Rebalance must then restore full replication on the
// survivors. The SetPeers and concurrent-rebalance tests are minimized
// regressions that fail on the pre-fix code.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"sysrle/internal/apiclient"
	"sysrle/internal/imageio"
	"sysrle/internal/rle"
)

// getRefContent fetches a reference's canonical RLEB bytes raw, for
// byte-identity assertions.
func getRefContent(t *testing.T, base, id string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(base + "/v1/references/" + id + "/content")
	if err != nil {
		t.Fatalf("GET content %s: %v", id[:12], err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

func canonicalRLEB(t *testing.T, img *rle.Image) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := imageio.Write(&buf, "rleb", img); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSetPeersFailedChangeKeepsDrainingSet is the regression for the
// staged-commit bugfix: the old SetPeers deleted peers from the
// draining set while iterating, before client construction could fail,
// so a rejected membership change silently un-drained peers whose
// references then never got evacuated.
func TestSetPeersFailedChangeKeepsDrainingSet(t *testing.T) {
	shards := startShards(t, 2)
	c, _ := startCoordinator(t, Config{Peers: shards, Seed: 1})

	// Drain shard 1 with a valid membership change.
	if err := c.SetPeers(shards[:1]); err != nil {
		t.Fatalf("SetPeers: %v", err)
	}
	if _, ok := c.drainingPeers()[shards[1]]; !ok {
		t.Fatalf("removed peer not draining")
	}

	// A failed change that re-adds the draining peer alongside an
	// invalid one must leave everything untouched.
	err := c.SetPeers([]string{shards[0], shards[1], "http://"})
	if err == nil {
		t.Fatalf("SetPeers with an invalid peer URL should fail")
	}
	if _, ok := c.drainingPeers()[shards[1]]; !ok {
		t.Fatalf("failed membership change corrupted the draining set")
	}
	if got := c.ring.Peers(); len(got) != 1 || got[0] != shards[0] {
		t.Fatalf("failed membership change mutated the ring: %v", got)
	}

	// A valid retry commits: the re-added peer leaves the draining set.
	if err := c.SetPeers(shards); err != nil {
		t.Fatalf("SetPeers retry: %v", err)
	}
	if n := len(c.drainingPeers()); n != 0 {
		t.Fatalf("%d peers still draining after re-add", n)
	}
	if got := c.ring.Peers(); len(got) != 2 {
		t.Fatalf("ring after retry = %v", got)
	}
}

// gatedListTransport blocks the first GET /v1/references until the
// test opens the gate, pinning a rebalance mid-listing so a second
// rebalance deterministically overlaps it.
type gatedListTransport struct {
	gate    chan struct{}
	entered chan struct{}
	once    sync.Once
}

func (tr *gatedListTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.Method == http.MethodGet && req.URL.Path == "/v1/references" {
		tr.once.Do(func() { close(tr.entered) })
		<-tr.gate
	}
	return http.DefaultTransport.RoundTrip(req)
}

// TestRebalanceConcurrentCallsConflict is the regression for the
// rebalance race: two overlapping POST /v1/cluster/rebalance calls
// used to both run, working from stale listings. Now the second gets
// 409 conflict while the first holds the rebalance lock.
func TestRebalanceConcurrentCallsConflict(t *testing.T) {
	shards := startShards(t, 2)
	tr := &gatedListTransport{gate: make(chan struct{}), entered: make(chan struct{})}
	_, coordURL := startCoordinator(t, Config{Peers: shards, Seed: 1, Transport: tr})

	first := make(chan int, 1)
	go func() {
		resp, err := http.Post(coordURL+"/v1/cluster/rebalance", "application/json", nil)
		if err != nil {
			first <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		first <- resp.StatusCode
	}()

	<-tr.entered // the first rebalance holds the lock, blocked mid-listing
	resp, err := http.Post(coordURL+"/v1/cluster/rebalance", "application/json", nil)
	if err != nil {
		t.Fatalf("second rebalance POST: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("overlapping rebalance status = %d body %s, want 409", resp.StatusCode, raw)
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code != "conflict" {
		t.Fatalf("409 envelope = %s (err %v), want code conflict", raw, err)
	}

	close(tr.gate)
	if status := <-first; status != http.StatusOK {
		t.Fatalf("first rebalance status = %d, want 200", status)
	}
}

// TestRebalanceBodyTooLarge: a body past the 1 MiB cap used to be
// silently truncated into a confusing JSON parse error; it must be a
// clean 413.
func TestRebalanceBodyTooLarge(t *testing.T) {
	shards := startShards(t, 1)
	_, coordURL := startCoordinator(t, Config{Peers: shards, Seed: 1})

	huge := strings.NewReader(strings.Repeat(" ", 1<<20+1))
	resp, err := http.Post(coordURL+"/v1/cluster/rebalance", "application/json", huge)
	if err != nil {
		t.Fatalf("POST rebalance: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge || !bytes.Contains(raw, []byte("payload_too_large")) {
		t.Fatalf("oversized body: status %d body %s, want 413 payload_too_large", resp.StatusCode, raw)
	}

	// Exactly at the cap is not an overflow: a 1 MiB body that is valid
	// JSON (padded with trailing whitespace) still runs the rebalance.
	exact := `{"peers":null}` + strings.Repeat(" ", 1<<20-len(`{"peers":null}`))
	resp, err = http.Post(coordURL+"/v1/cluster/rebalance", "application/json", strings.NewReader(exact))
	if err != nil {
		t.Fatalf("POST rebalance (exact cap): %v", err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cap-sized body: status %d body %s, want 200", resp.StatusCode, raw)
	}
}

// TestCoordinatorReplicatedPlacement: with R=2 every reference lands
// on exactly its two ring owners, the coordinator's list dedupes the
// copies, and a delete removes every copy.
func TestCoordinatorReplicatedPlacement(t *testing.T) {
	shards := startShards(t, 3)
	c, coordURL := startCoordinator(t, Config{Peers: shards, Replicas: 2, Seed: 1})
	coord := apiclient.MustNew(coordURL, apiclient.Options{Seed: 1})
	ctx := context.Background()

	ids := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		meta, err := coord.PutReference(ctx, genImage(t, int64(500+i), 96, 64))
		if err != nil {
			t.Fatalf("PutReference %d: %v", i, err)
		}
		ids = append(ids, meta.ID)
	}
	for _, id := range ids {
		owners := c.ring.Owners(id, 2)
		ownerSet := map[string]bool{owners[0]: true, owners[1]: true}
		for _, shard := range shards {
			cl := apiclient.MustNew(shard, apiclient.Options{Seed: 1})
			_, err := cl.GetReference(ctx, id)
			held := err == nil
			if held != ownerSet[shard] {
				t.Errorf("ref %s on %s: held=%v, want %v (owners %v)",
					id[:12], shard, held, ownerSet[shard], owners)
			}
		}
	}

	list, err := coord.ListReferences(ctx)
	if err != nil {
		t.Fatalf("ListReferences: %v", err)
	}
	if len(list) != len(ids) {
		t.Fatalf("coordinator lists %d refs, want %d (copies must dedupe)", len(list), len(ids))
	}

	resp, err := http.Get(coordURL + "/v1/cluster/ring")
	if err != nil {
		t.Fatal(err)
	}
	var ring struct {
		Replicas int      `json:"replicas"`
		Suspects []string `json:"suspects"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ring)
	resp.Body.Close()
	if err != nil || ring.Replicas != 2 {
		t.Fatalf("ring endpoint replicas = %d (err %v), want 2", ring.Replicas, err)
	}

	if err := coord.DeleteReference(ctx, ids[0]); err != nil {
		t.Fatalf("DeleteReference: %v", err)
	}
	for _, shard := range shards {
		cl := apiclient.MustNew(shard, apiclient.Options{Seed: 1})
		if _, err := cl.GetReference(ctx, ids[0]); !apiclient.IsNotFound(err) {
			t.Fatalf("deleted ref still on %s: %v", shard, err)
		}
	}
	if _, err := coord.GetReference(ctx, ids[0]); !apiclient.IsNotFound(err) {
		t.Fatalf("deleted ref get through coordinator = %v, want 404", err)
	}
}

// TestCoordinatorFailoverServesKilledShardSpan is the acceptance
// chaos test: kill one shard of a 3-peer R=2 cluster and every
// reference must still read byte-identical through the coordinator —
// zero 404s — before any rebalance, with the failover counter moving.
// Rebalance afterwards restores full replication on the survivors.
func TestCoordinatorFailoverServesKilledShardSpan(t *testing.T) {
	shards, kill := startKillableShards(t, 3)
	c, coordURL := startCoordinator(t, Config{
		Peers: shards, Replicas: 2, Seed: 3, PeerTimeout: 2 * time.Second,
	})
	coord := apiclient.MustNew(coordURL, apiclient.Options{Seed: 1, Retries: -1})
	ctx := context.Background()

	victim := shards[2]
	content := map[string][]byte{}
	ids := make([]string, 0, 16)
	victimOwned := ""
	for i := 0; i < 16; i++ {
		img := genImage(t, int64(600+i), 96, 64)
		meta, err := coord.PutReference(ctx, img)
		if err != nil {
			t.Fatalf("PutReference %d: %v", i, err)
		}
		ids = append(ids, meta.ID)
		content[meta.ID] = canonicalRLEB(t, img)
		if c.ring.Owner(meta.ID) == victim {
			victimOwned = meta.ID
		}
	}
	if victimOwned == "" {
		t.Fatalf("no reference has the victim as primary; enlarge the corpus")
	}

	kill(2)

	// Degraded reads: every reference, including the dead primary's
	// span, answers byte-identical from a replica. No rebalance has run.
	for _, id := range ids {
		status, body := getRefContent(t, coordURL, id)
		if status != http.StatusOK {
			t.Fatalf("ref %s read with dead shard: status %d %s", id[:12], status, body)
		}
		if !bytes.Equal(body, content[id]) {
			t.Fatalf("ref %s content differs after failover", id[:12])
		}
	}
	if c.failovers.Value() == 0 {
		t.Fatalf("failover counter never moved though the primary was dead")
	}

	// Ref-routed compute follows the same failover path.
	scan := genImage(t, 700, 96, 64)
	if _, err := coord.Diff(ctx, apiclient.DiffRequest{RefID: victimOwned, B: scan}); err != nil {
		t.Fatalf("ref-routed diff against dead primary: %v", err)
	}

	// Membership change + rebalance: the dead peer is dropped (nothing
	// to evacuate) and every reference is re-replicated onto both
	// survivors.
	if err := c.SetPeers(shards[:2]); err != nil {
		t.Fatalf("SetPeers: %v", err)
	}
	moved, scanned, err := c.Rebalance(ctx)
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if moved == 0 {
		t.Fatalf("rebalance repaired nothing though replicas died with the shard (scanned %d)", scanned)
	}
	for _, id := range ids {
		for _, s := range shards[:2] {
			cl := apiclient.MustNew(s, apiclient.Options{Seed: 1})
			if _, err := cl.GetReference(ctx, id); err != nil {
				t.Fatalf("ref %s missing from survivor %s after repair: %v", id[:12], s, err)
			}
		}
		status, body := getRefContent(t, coordURL, id)
		if status != http.StatusOK || !bytes.Equal(body, content[id]) {
			t.Fatalf("ref %s corrupt after repair: status %d", id[:12], status)
		}
	}
	if n := len(c.drainingPeers()); n != 0 {
		t.Fatalf("%d peers still draining after repair", n)
	}
}

// TestProberMarksSuspectsWithoutEject: without AutoEject the prober
// only marks a dead peer suspect — membership stays put.
func TestProberMarksSuspectsWithoutEject(t *testing.T) {
	shards, kill := startKillableShards(t, 2)
	c, coordURL := startCoordinator(t, Config{
		Peers: shards, Seed: 1,
		ProbeInterval: 25 * time.Millisecond, ProbeFailures: 2,
	})
	kill(1)

	deadline := time.Now().Add(10 * time.Second)
	for {
		s := c.suspectList()
		if len(s) == 1 && s[0] == shards[1] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prober never marked the dead peer suspect: %v", s)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := c.ring.Peers(); len(got) != 2 {
		t.Fatalf("prober ejected without AutoEject: %v", got)
	}

	resp, err := http.Get(coordURL + "/v1/cluster/ring")
	if err != nil {
		t.Fatal(err)
	}
	var ring struct {
		Suspects []string `json:"suspects"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ring)
	resp.Body.Close()
	if err != nil || len(ring.Suspects) != 1 || ring.Suspects[0] != shards[1] {
		t.Fatalf("ring endpoint suspects = %v (err %v), want the dead peer", ring.Suspects, err)
	}
}

// TestAutoEjectDrainsDeadPeerAndRepairs: with AutoEject the prober
// takes the same drain path as an operator membership change and the
// background repair re-replicates what the dead shard held.
func TestAutoEjectDrainsDeadPeerAndRepairs(t *testing.T) {
	shards, kill := startKillableShards(t, 3)
	c, coordURL := startCoordinator(t, Config{
		Peers: shards, Replicas: 2, Seed: 1, PeerTimeout: 2 * time.Second,
		ProbeInterval: 25 * time.Millisecond, ProbeFailures: 2, AutoEject: true,
	})
	coord := apiclient.MustNew(coordURL, apiclient.Options{Seed: 1})
	ctx := context.Background()

	ids := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		meta, err := coord.PutReference(ctx, genImage(t, int64(800+i), 96, 64))
		if err != nil {
			t.Fatalf("PutReference: %v", err)
		}
		ids = append(ids, meta.ID)
	}

	kill(2)
	deadline := time.Now().Add(10 * time.Second)
	for len(c.ring.Peers()) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("dead peer never auto-ejected; ring = %v, suspects = %v",
				c.ring.Peers(), c.suspectList())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := c.ejections.Value(); got != 1 {
		t.Fatalf("ejections = %d, want 1", got)
	}

	// The background repair drives every reference onto both survivors
	// and finishes draining the dead peer.
	allReplicated := func() bool {
		for _, id := range ids {
			for _, s := range shards[:2] {
				cl := apiclient.MustNew(s, apiclient.Options{Seed: 1})
				if _, err := cl.GetReference(ctx, id); err != nil {
					return false
				}
			}
		}
		return len(c.drainingPeers()) == 0
	}
	for !allReplicated() {
		if time.Now().After(deadline) {
			t.Fatalf("post-eject repair incomplete; draining = %d", len(c.drainingPeers()))
		}
		time.Sleep(25 * time.Millisecond)
	}
}
