package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("ref-%064d", i)
	}
	return keys
}

func TestRingDeterministicAndComplete(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1 := NewRing(peers, 0)
	r2 := NewRing([]string{"http://c:1", "http://a:1", "http://b:1"}, 0) // order-independent
	for _, k := range ringKeys(500) {
		o1, o2 := r1.Owner(k), r2.Owner(k)
		if o1 == "" {
			t.Fatalf("key %q unowned", k)
		}
		if o1 != o2 {
			t.Fatalf("placement depends on peer order: %q vs %q", o1, o2)
		}
	}
}

func TestRingEmptyAndSinglePeer(t *testing.T) {
	empty := NewRing(nil, 0)
	if o := empty.Owner("k"); o != "" {
		t.Fatalf("empty ring owner = %q, want empty", o)
	}
	solo := NewRing([]string{"http://only:1"}, 0)
	for _, k := range ringKeys(100) {
		if o := solo.Owner(k); o != "http://only:1" {
			t.Fatalf("single-peer ring routed %q to %q", k, o)
		}
	}
}

func TestRingBalance(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := NewRing(peers, 0)
	counts := map[string]int{}
	keys := ringKeys(4000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	want := len(keys) / len(peers)
	for p, n := range counts {
		if n < want/2 || n > want*2 {
			t.Fatalf("peer %s owns %d of %d keys (want roughly %d): imbalanced ring", p, n, len(keys), want)
		}
	}
}

func TestRingBoundedRebalance(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	before := NewRing(peers, 0)
	after := NewRing(append(append([]string{}, peers...), "http://e:1"), 0)

	keys := ringKeys(4000)
	moved, toNew := 0, 0
	for _, k := range keys {
		ob, oa := before.Owner(k), after.Owner(k)
		if ob != oa {
			moved++
			if oa != "http://e:1" {
				t.Fatalf("key %q moved between surviving peers (%q → %q) on peer add", k, ob, oa)
			}
			toNew++
		}
	}
	// Ideal share for the new peer is 1/5 of keys; allow 2x slack but
	// fail a full reshuffle (which would move ~4/5).
	if moved == 0 || moved > len(keys)*2/5 {
		t.Fatalf("peer add moved %d of %d keys, want ~%d (bounded rebalance)", moved, len(keys), len(keys)/5)
	}

	// Removing a peer moves only that peer's keys.
	removed := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 0)
	for _, k := range keys {
		ob, oa := before.Owner(k), removed.Owner(k)
		if ob != "http://d:1" && ob != oa {
			t.Fatalf("key %q moved (%q → %q) though its owner survived removal", k, ob, oa)
		}
		if ob == "http://d:1" && oa == "http://d:1" {
			t.Fatalf("key %q still routed to removed peer", k)
		}
	}
}

func TestRingOwnersDistinctAndPrimaryFirst(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := NewRing(peers, 0)
	for _, k := range ringKeys(500) {
		owners := r.Owners(k, 2)
		if len(owners) != 2 {
			t.Fatalf("Owners(%q, 2) = %v, want 2 peers", k, owners)
		}
		if owners[0] == owners[1] {
			t.Fatalf("Owners(%q, 2) repeats peer %q", k, owners[0])
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("Owners(%q, 2)[0] = %q, Owner = %q: primary must come first", k, owners[0], r.Owner(k))
		}
	}
}

func TestRingOwnersDegradesWhenRExceedsPeers(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1"}
	r := NewRing(peers, 0)
	for _, k := range ringKeys(50) {
		owners := r.Owners(k, 5)
		if len(owners) != 2 {
			t.Fatalf("Owners(%q, 5) on 2-peer ring = %v, want both peers", k, owners)
		}
		if owners[0] == owners[1] {
			t.Fatalf("Owners(%q, 5) repeats %q", k, owners[0])
		}
	}
	if got := r.Owners("k", 0); got != nil {
		t.Fatalf("Owners(k, 0) = %v, want nil", got)
	}
	if got := NewRing(nil, 0).Owners("k", 2); got != nil {
		t.Fatalf("empty-ring Owners = %v, want nil", got)
	}
}

// TestOwnersFromHashTies feeds ownersFrom a synthetic point list with
// colliding vnode hashes: the walk must be deterministic (ties were
// broken by peer name at sort time) and still return distinct peers.
func TestOwnersFromHashTies(t *testing.T) {
	points := []point{
		{10, "http://a:1"}, {10, "http://b:1"}, {10, "http://c:1"},
		{20, "http://b:1"}, {20, "http://c:1"},
		{30, "http://a:1"},
	}
	got := ownersFrom(points, 10, 2)
	want := []string{"http://a:1", "http://b:1"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("ownersFrom at tied hash = %v, want %v", got, want)
	}
	// Landing past the last point wraps to the first.
	got = ownersFrom(points, 31, 3)
	want = []string{"http://a:1", "http://b:1", "http://c:1"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("ownersFrom wrap = %v, want %v", got, want)
	}
}

// TestRingOwnersBoundedMovement is the replica-set version of the
// bounded-rebalance property: adding one peer to an n-peer ring may
// change only ~1/n of replica sets, and every changed set must include
// the new peer (a surviving pair never reshuffles between themselves).
func TestRingOwnersBoundedMovement(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	before := NewRing(peers, 0)
	after := NewRing(append(append([]string{}, peers...), "http://e:1"), 0)
	keys := ringKeys(4000)
	changed := 0
	for _, k := range keys {
		ob, oa := before.Owners(k, 2), after.Owners(k, 2)
		if ob[0] == oa[0] && ob[1] == oa[1] {
			continue
		}
		changed++
		if oa[0] != "http://e:1" && oa[1] != "http://e:1" {
			t.Fatalf("key %q replica set changed %v → %v without involving the new peer", k, ob, oa)
		}
	}
	// Each of the new peer's two roles (primary, replica) claims ~1/5 of
	// keys, so ~2/5 of sets may change; allow slack but fail a reshuffle.
	if changed == 0 || changed > len(keys)*3/5 {
		t.Fatalf("peer add changed %d of %d replica sets, want ~%d", changed, len(keys), 2*len(keys)/5)
	}
}

func TestRingSetPeersDedup(t *testing.T) {
	r := NewRing([]string{"http://a:1", "http://a:1", "", "http://b:1"}, 4)
	if got := r.Peers(); len(got) != 2 {
		t.Fatalf("peers = %v, want deduped 2", got)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
}
