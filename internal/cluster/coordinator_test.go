package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sysrle/internal/apiclient"
	"sysrle/internal/imageio"
	"sysrle/internal/refstore"
	"sysrle/internal/rle"
	"sysrle/internal/server"
	"sysrle/internal/workload"
)

// startShards boots n in-process sysdiffd instances behind httptest
// listeners and returns their base URLs.
func startShards(t *testing.T, n int) []string {
	urls, _ := startKillableShards(t, n)
	return urls
}

// startKillableShards is startShards plus a kill switch per shard —
// chaos tests use it to model hard shard death.
func startKillableShards(t *testing.T, n int) ([]string, func(i int)) {
	t.Helper()
	urls := make([]string, n)
	kills := make([]func(), n)
	for i := range urls {
		srv := server.New()
		ts := httptest.NewServer(srv)
		var done bool
		kill := func() {
			if !done {
				done = true
				ts.CloseClientConnections()
				ts.Close()
				srv.Close()
			}
		}
		t.Cleanup(kill)
		urls[i] = ts.URL
		kills[i] = kill
	}
	return urls, func(i int) { kills[i]() }
}

func startCoordinator(t *testing.T, cfg Config) (*Coordinator, string) {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(c.Close)
	ts := httptest.NewServer(c)
	t.Cleanup(ts.Close)
	return c, ts.URL
}

func genImage(t *testing.T, seed int64, width, height int) *rle.Image {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	img, err := workload.GenerateImage(rng, workload.PaperRow(width, 0.3), height)
	if err != nil {
		t.Fatalf("workload.GenerateImage: %v", err)
	}
	return img
}

// postDiff posts a raw multipart diff request and returns status,
// headers and body bytes — raw, for byte-identity assertions.
func postDiff(t *testing.T, base string, a, b *rle.Image, query string) (int, http.Header, []byte) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for field, img := range map[string]*rle.Image{"a": a, "b": b} {
		if img == nil {
			continue
		}
		fw, err := mw.CreateFormFile(field, field+".rleb")
		if err != nil {
			t.Fatal(err)
		}
		if err := imageio.Write(fw, "rleb", img); err != nil {
			t.Fatal(err)
		}
	}
	mw.Close()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/diff?"+query, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", mw.FormDataContentType())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/diff: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, body
}

var statHeaders = []string{
	"X-Sysrle-Rows-Differing", "X-Sysrle-Iterations-Total", "X-Sysrle-Iterations-Max-Row",
	"X-Sysrle-Cells-Total", "X-Sysrle-Cells-Max-Row", "X-Sysrle-Diff-Pixels",
}

func TestCoordinatorScatterDiffMatchesSingleNode(t *testing.T) {
	shards := startShards(t, 3)
	c, coordURL := startCoordinator(t, Config{Peers: shards, SplitRows: 40, Seed: 1})

	a := genImage(t, 1, 320, 300)
	b := genImage(t, 2, 320, 300)

	status, hdr, got := postDiff(t, coordURL, a, b, "format=rleb")
	if status != http.StatusOK {
		t.Fatalf("coordinator diff status = %d, body %s", status, got)
	}
	singleStatus, singleHdr, want := postDiff(t, shards[0], a, b, "format=rleb")
	if singleStatus != http.StatusOK {
		t.Fatalf("single-node diff status = %d", singleStatus)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("scatter-gathered diff differs from single-node result (%d vs %d bytes)", len(got), len(want))
	}
	for _, h := range statHeaders {
		if hdr.Get(h) != singleHdr.Get(h) {
			t.Errorf("header %s: coordinator %q, single-node %q", h, hdr.Get(h), singleHdr.Get(h))
		}
	}
	snap := c.reg.Snapshot()
	if v, ok := snap["sysrle_cluster_scatter_diffs_total"][""]; !ok || v.(int64) == 0 {
		t.Fatalf("scatter counter not incremented: %v", snap["sysrle_cluster_scatter_diffs_total"])
	}
}

func TestCoordinatorSmallImageNoScatter(t *testing.T) {
	shards := startShards(t, 3)
	c, coordURL := startCoordinator(t, Config{Peers: shards, SplitRows: 1000, Seed: 1})

	a := genImage(t, 3, 64, 40)
	b := genImage(t, 4, 64, 40)
	status, _, got := postDiff(t, coordURL, a, b, "format=rleb")
	if status != http.StatusOK {
		t.Fatalf("diff status = %d, body %s", status, got)
	}
	_, _, want := postDiff(t, shards[0], a, b, "format=rleb")
	if !bytes.Equal(got, want) {
		t.Fatalf("routed diff differs from single-node result")
	}
	snap := c.reg.Snapshot()
	if v, ok := snap["sysrle_cluster_scatter_diffs_total"][""]; ok && v.(int64) != 0 {
		t.Fatalf("small image should not scatter, counter = %v", v)
	}
}

func TestCoordinatorRefPlacementAndRouting(t *testing.T) {
	shards := startShards(t, 3)
	c, coordURL := startCoordinator(t, Config{Peers: shards, Seed: 1})
	coord := apiclient.MustNew(coordURL, apiclient.Options{Seed: 1})
	ctx := context.Background()

	// Register references through the coordinator; each must land on
	// exactly one shard — its ring owner.
	ids := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		img := genImage(t, int64(100+i), 96, 80)
		meta, err := coord.PutReference(ctx, img)
		if err != nil {
			t.Fatalf("PutReference %d: %v", i, err)
		}
		want, err := refstore.ContentID(img)
		if err != nil {
			t.Fatal(err)
		}
		if meta.ID != want {
			t.Fatalf("ref id %q, want content id %q", meta.ID, want)
		}
		ids = append(ids, meta.ID)
	}
	for _, id := range ids {
		owner := c.ring.Owner(id)
		holders := 0
		for _, shard := range shards {
			cl := apiclient.MustNew(shard, apiclient.Options{Seed: 1})
			if _, err := cl.GetReference(ctx, id); err == nil {
				holders++
				if shard != owner {
					t.Errorf("ref %s held by %s, ring owner is %s", id[:12], shard, owner)
				}
			}
		}
		if holders != 1 {
			t.Fatalf("ref %s held by %d shards, want exactly 1", id[:12], holders)
		}
	}

	// Ref-routed diff through the coordinator answers and counts hits.
	scan := genImage(t, 999, 96, 80)
	res, err := coord.Diff(ctx, apiclient.DiffRequest{RefID: ids[0], B: scan})
	if err != nil {
		t.Fatalf("ref-routed diff: %v", err)
	}
	if res.Image.Height != 80 {
		t.Fatalf("diff height = %d, want 80", res.Image.Height)
	}
	if c.routeHits.Value() == 0 {
		t.Fatalf("ref route hit not counted")
	}
	if _, err := coord.Diff(ctx, apiclient.DiffRequest{RefID: "0000beef", B: scan}); !apiclient.IsNotFound(err) {
		t.Fatalf("unknown ref diff error = %v, want 404", err)
	}
	if c.routeMisses.Value() == 0 {
		t.Fatalf("ref route miss not counted")
	}

	// The scattered list sees every reference exactly once.
	list, err := coord.ListReferences(ctx)
	if err != nil {
		t.Fatalf("ListReferences: %v", err)
	}
	if len(list) != len(ids) {
		t.Fatalf("coordinator lists %d refs, want %d", len(list), len(ids))
	}
}

func TestCoordinatorMembershipChangeRebalance(t *testing.T) {
	shards := startShards(t, 3)
	c, coordURL := startCoordinator(t, Config{Peers: shards, Seed: 1})
	coord := apiclient.MustNew(coordURL, apiclient.Options{Seed: 1})
	ctx := context.Background()

	ids := make([]string, 0, 12)
	for i := 0; i < 12; i++ {
		meta, err := coord.PutReference(ctx, genImage(t, int64(200+i), 96, 64))
		if err != nil {
			t.Fatalf("PutReference: %v", err)
		}
		ids = append(ids, meta.ID)
	}

	// Shrink membership: drop the last shard, then rebalance. Only
	// references owned by the removed shard (or whose span moved) may
	// relocate.
	before := map[string]string{}
	for _, id := range ids {
		before[id] = c.ring.Owner(id)
	}
	survivors := shards[:2]
	if err := c.SetPeers(survivors); err != nil {
		t.Fatalf("SetPeers: %v", err)
	}
	movedEligible := 0
	for _, id := range ids {
		after := c.ring.Owner(id)
		if before[id] != shards[2] && after != before[id] {
			t.Errorf("ref %s moved owner %s → %s though its owner survived", id[:12], before[id], after)
		}
		if before[id] == shards[2] {
			movedEligible++
		}
	}

	moved, scanned, err := c.Rebalance(ctx)
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if scanned != len(ids) {
		t.Fatalf("rebalance scanned %d, want %d", scanned, len(ids))
	}
	if moved != movedEligible {
		t.Fatalf("rebalance moved %d refs, want %d (only the removed shard's span)", moved, movedEligible)
	}

	// Every reference is still retrievable through the coordinator and
	// sits on its (new) owner.
	for _, id := range ids {
		if _, err := coord.GetReference(ctx, id); err != nil {
			t.Fatalf("ref %s lost after rebalance: %v", id[:12], err)
		}
		owner := c.ring.Owner(id)
		cl := apiclient.MustNew(owner, apiclient.Options{Seed: 1})
		if _, err := cl.GetReference(ctx, id); err != nil {
			t.Fatalf("ref %s not on its owner %s after rebalance: %v", id[:12], owner, err)
		}
	}
}

func TestCoordinatorReadyzAndAudit404(t *testing.T) {
	shards := startShards(t, 2)
	_, coordURL := startCoordinator(t, Config{Peers: shards, Seed: 1})
	coord := apiclient.MustNew(coordURL, apiclient.Options{Seed: 1})

	st, err := coord.Ready(context.Background())
	if err != nil {
		t.Fatalf("Ready: %v", err)
	}
	if !st.Ready {
		t.Fatalf("cluster not ready: %+v", st.Probes)
	}
	if len(st.Probes) != len(shards)+1 {
		t.Fatalf("probes = %d, want %d (peers + ring)", len(st.Probes), len(shards)+1)
	}

	_, err = coord.Audit(context.Background())
	if !apiclient.IsNotFound(err) {
		t.Fatalf("coordinator audit error = %v, want 404", err)
	}
	resp, err := http.Get(coordURL + "/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("audit 404 Content-Type = %q", ct)
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.Code != "not_found" {
		t.Fatalf("audit 404 envelope code = %q err %v", env.Error.Code, err)
	}
}

func TestCoordinatorJobsRouting(t *testing.T) {
	shards := startShards(t, 2)
	_, coordURL := startCoordinator(t, Config{Peers: shards, Seed: 1})
	coord := apiclient.MustNew(coordURL, apiclient.Options{Seed: 1})
	ctx := context.Background()

	ref := genImage(t, 42, 96, 64)
	meta, err := coord.PutReference(ctx, ref)
	if err != nil {
		t.Fatalf("PutReference: %v", err)
	}
	scans := []*rle.Image{genImage(t, 43, 96, 64), genImage(t, 44, 96, 64)}
	st, err := coord.SubmitJob(ctx, apiclient.JobRequest{RefID: meta.ID, Scans: scans})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	ctx2, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	final, err := coord.WaitJob(ctx2, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if final.State != "done" {
		t.Fatalf("job state = %q, want done (%+v)", final.State, final)
	}
	if len(final.Results) != len(scans) {
		t.Fatalf("job results = %d, want %d", len(final.Results), len(scans))
	}

	jobs, err := coord.ListJobs(ctx)
	if err != nil {
		t.Fatalf("ListJobs: %v", err)
	}
	if len(jobs) != 1 {
		t.Fatalf("coordinator lists %d jobs, want 1", len(jobs))
	}
	if err := coord.DeleteJob(ctx, st.ID); err != nil {
		t.Fatalf("DeleteJob: %v", err)
	}
	if _, err := coord.GetJob(ctx, st.ID); !apiclient.IsNotFound(err) {
		t.Fatalf("deleted job get error = %v, want 404", err)
	}
}

func TestCoordinatorRingEndpoint(t *testing.T) {
	shards := startShards(t, 2)
	_, coordURL := startCoordinator(t, Config{Peers: shards, Seed: 1})
	resp, err := http.Get(coordURL + "/v1/cluster/ring")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ring struct {
		Peers        []string `json:"peers"`
		VirtualNodes int      `json:"virtual_nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ring); err != nil {
		t.Fatalf("decoding ring: %v", err)
	}
	if len(ring.Peers) != 2 || ring.VirtualNodes != DefaultVirtualNodes {
		t.Fatalf("ring = %+v", ring)
	}
}

func TestSplitRows(t *testing.T) {
	cases := []struct {
		height, bands, min int
		want               int // band count
	}{
		{300, 3, 40, 3},
		{300, 3, 200, 1},  // cannot give every shard min rows
		{10, 5, 4, 2},     // fit = 2
		{0, 3, 1, 1},      // empty image never scatters
		{300, 1, 1, 1},    // one shard, one band
		{7, 3, 1, 3},      // remainder folds into the last band
		{300, 3, 100, 3},  // exactly fits
	}
	for _, tc := range cases {
		got := splitRows(tc.height, tc.bands, tc.min)
		if len(got) != tc.want {
			t.Errorf("splitRows(%d,%d,%d) = %v, want %d bands", tc.height, tc.bands, tc.min, got, tc.want)
			continue
		}
		lo := 0
		for _, rng := range got {
			if rng[0] != lo {
				t.Errorf("splitRows(%d,%d,%d) = %v: gap at %d", tc.height, tc.bands, tc.min, got, lo)
			}
			lo = rng[1]
		}
		if lo != tc.height {
			t.Errorf("splitRows(%d,%d,%d) = %v: covers %d of %d rows", tc.height, tc.bands, tc.min, got, lo, tc.height)
		}
	}
}

func TestCoordinatorRequiresPeers(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatalf("New with no peers should fail")
	}
}

// TestRebalanceEndpointMembershipChange drives the operator path the
// chaos suite exercises via internal calls: a shard dies, and one
// POST /v1/cluster/rebalance with a {"peers": [...]} body both drops
// it from the ring (dead drain skipped, not wedged) and re-homes the
// survivors' strays.
func TestRebalanceEndpointMembershipChange(t *testing.T) {
	shards, kill := startKillableShards(t, 3)
	c, coordURL := startCoordinator(t, Config{Peers: shards, Seed: 1})
	coord := apiclient.MustNew(coordURL, apiclient.Options{Seed: 1})
	ctx := context.Background()

	ids := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		meta, err := coord.PutReference(ctx, genImage(t, int64(400+i), 96, 64))
		if err != nil {
			t.Fatalf("PutReference: %v", err)
		}
		ids = append(ids, meta.ID)
	}
	before := make(map[string]string, len(ids))
	for _, id := range ids {
		before[id] = c.ring.Owner(id)
	}

	kill(2)
	body, _ := json.Marshal(map[string][]string{"peers": shards[:2]})
	resp, err := http.Post(coordURL+"/v1/cluster/rebalance", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST rebalance: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rebalance status %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Moved   int      `json:"moved"`
		Scanned int      `json:"scanned"`
		Peers   []string `json:"peers"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decoding response %s: %v", raw, err)
	}
	if len(out.Peers) != 2 {
		t.Fatalf("response peers = %v, want the 2 survivors", out.Peers)
	}
	if got := c.ring.Peers(); len(got) != 2 {
		t.Fatalf("ring peers after HTTP membership change = %v", got)
	}

	// The dead shard's span is lost (404); everything else survives.
	for _, id := range ids {
		_, err := coord.GetReference(ctx, id)
		if before[id] == shards[2] {
			if !apiclient.IsNotFound(err) {
				t.Errorf("ref %s died with its shard: err = %v, want 404", id[:12], err)
			}
		} else if err != nil {
			t.Errorf("surviving ref %s: %v", id[:12], err)
		}
	}

	// An empty body keeps the membership and just re-homes strays.
	resp, err = http.Post(coordURL+"/v1/cluster/rebalance", "application/json", nil)
	if err != nil {
		t.Fatalf("POST rebalance (empty body): %v", err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty-body rebalance status %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &out); err != nil || len(out.Peers) != 2 {
		t.Fatalf("empty-body rebalance response %s (err %v)", raw, err)
	}

	// A malformed body is an envelope error, not a panic or a move.
	resp, err = http.Post(coordURL+"/v1/cluster/rebalance", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatalf("POST rebalance (bad body): %v", err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !bytes.Contains(raw, []byte("invalid_argument")) {
		t.Fatalf("bad-body rebalance: status %d body %s, want 400 invalid_argument", resp.StatusCode, raw)
	}
}
