package cluster

// The scatter-gather correctness satellite: ImageStats merging must be
// associative and commutative, and any row-range split of a diff —
// including the degenerate single-band split and zero-row bands —
// must merge back to exactly the single-node statistics.

import (
	"math/rand"
	"testing"

	"sysrle"
	"sysrle/internal/rle"
	"sysrle/internal/workload"
)

// diffStats runs the library diff over one band and returns its stats.
func diffStats(t *testing.T, a, b *rle.Image) sysrle.ImageStats {
	t.Helper()
	_, stats, err := sysrle.DiffImage(a, b)
	if err != nil {
		t.Fatalf("DiffImage: %v", err)
	}
	return *stats
}

// corpus builds image pairs covering the shapes the oracle exercises:
// dense text-like rows, sparse rows, empty images, single-row images.
func corpus(t *testing.T) [][2]*rle.Image {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	pair := func(width, height int, density float64) [2]*rle.Image {
		a, err := workload.GenerateImage(rng, workload.PaperRow(width, density), height)
		if err != nil {
			t.Fatal(err)
		}
		b, err := workload.GenerateImage(rng, workload.PaperRow(width, density), height)
		if err != nil {
			t.Fatal(err)
		}
		return [2]*rle.Image{a, b}
	}
	empty := &rle.Image{Width: 64, Height: 3, Rows: make([]rle.Row, 3)}
	return [][2]*rle.Image{
		pair(256, 100, 0.3),
		pair(512, 37, 0.05), // sparse, odd height
		pair(64, 1, 0.5),    // single row
		{empty, empty},      // nothing differs
		pair(96, 8, 0.9),    // dense
	}
}

func TestMergeImageStatsIdentityAndZeroRange(t *testing.T) {
	var zero sysrle.ImageStats
	for _, pair := range corpus(t) {
		s := diffStats(t, pair[0], pair[1])
		if got := sysrle.MergeImageStats(zero, s); got != s {
			t.Fatalf("Merge(zero, s) = %+v, want %+v", got, s)
		}
		if got := sysrle.MergeImageStats(s, zero); got != s {
			t.Fatalf("Merge(s, zero) = %+v, want %+v", got, s)
		}
		// A zero-row band diff really is the merge identity.
		h := pair[0].Height
		zband := diffStats(t, band(pair[0], h, h), band(pair[1], h, h))
		if zband != zero {
			t.Fatalf("zero-row band stats = %+v, want zero value", zband)
		}
	}
}

func TestMergeImageStatsCommutative(t *testing.T) {
	for _, pair := range corpus(t) {
		a, b := pair[0], pair[1]
		if a.Height < 2 {
			continue
		}
		mid := a.Height / 2
		s1 := diffStats(t, band(a, 0, mid), band(b, 0, mid))
		s2 := diffStats(t, band(a, mid, a.Height), band(b, mid, a.Height))
		if sysrle.MergeImageStats(s1, s2) != sysrle.MergeImageStats(s2, s1) {
			t.Fatalf("merge not commutative: %+v vs %+v", s1, s2)
		}
	}
}

// TestMergeMatchesSingleShard is the core scatter-gather invariant:
// split → per-band diff → merge equals the unsplit diff, for every
// split arity including the single-shard degenerate case, and
// regardless of merge grouping (associativity).
func TestMergeMatchesSingleShard(t *testing.T) {
	for _, pair := range corpus(t) {
		a, b := pair[0], pair[1]
		want := diffStats(t, a, b)
		for _, bands := range []int{1, 2, 3, 7} {
			ranges := splitRows(a.Height, bands, 1)
			stats := make([]sysrle.ImageStats, len(ranges))
			for i, rng := range ranges {
				stats[i] = diffStats(t, band(a, rng[0], rng[1]), band(b, rng[0], rng[1]))
			}
			// Left fold.
			var left sysrle.ImageStats
			for _, s := range stats {
				left = sysrle.MergeImageStats(left, s)
			}
			if left != want {
				t.Fatalf("%d-band left fold = %+v, want %+v (image %dx%d)",
					len(ranges), left, want, a.Width, a.Height)
			}
			// Right fold — associativity means the grouping cannot matter.
			var right sysrle.ImageStats
			for i := len(stats) - 1; i >= 0; i-- {
				right = sysrle.MergeImageStats(stats[i], right)
			}
			if right != want {
				t.Fatalf("%d-band right fold = %+v, want %+v", len(ranges), right, want)
			}
			// Shuffled pairwise merge order.
			rng := rand.New(rand.NewSource(int64(bands)))
			perm := rng.Perm(len(stats))
			var shuffled sysrle.ImageStats
			for _, i := range perm {
				shuffled = sysrle.MergeImageStats(shuffled, stats[i])
			}
			if shuffled != want {
				t.Fatalf("%d-band shuffled merge = %+v, want %+v", len(ranges), shuffled, want)
			}
		}
	}
}
