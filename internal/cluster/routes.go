package cluster

// The coordinator's HTTP surface. It mirrors the shard v1 API so
// clients cannot tell a coordinator from a single node, plus two
// cluster-admin endpoints:
//
//	GET  /v1/cluster/ring       → membership and vnode count
//	POST /v1/cluster/rebalance  → optional {"peers":[...]} body applies
//	                              a membership change, then misplaced
//	                              references move to their ring owner;
//	                              {"moved": n, "scanned": m, "peers": [...]}
//
// Routing policy per endpoint:
//
//	/v1/diff, /v1/inspect, /v1/align with ?ref=<id>
//	    → the ring owner of the reference (its decoded cache lives
//	      there and nowhere else). An owner 404 counts as a placement
//	      miss in telemetry.
//	/v1/diff with inline uploads
//	    → split by row range across every shard when the image is tall
//	      enough (each band ≥ SplitRows rows), per-band ImageStats
//	      merged associatively; otherwise round-robin to one shard.
//	/v1/inspect, /v1/align, /v1/docclean with inline uploads
//	    → round-robin (defect grouping crosses rows, so these never
//	      split).
//	/v1/references
//	    → placed by content id: POST hashes the canonical RLEB locally
//	      and forwards to the owner; GET list scatter-gathers all
//	      shards; id-addressed calls go to the owner.
//	/v1/jobs
//	    → submission follows the reference owner (ref jobs) or
//	      round-robin (inline/docclean jobs); id-addressed reads
//	      scatter to every shard and the one that knows the id answers.
//	/v1/audit
//	    → 404: the audit chain is a per-shard artifact, query shards.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"sysrle"
	"sysrle/internal/apiclient"
	"sysrle/internal/imageio"
	"sysrle/internal/refstore"
	"sysrle/internal/rle"
)

func (c *Coordinator) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = c.reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = c.reg.WriteJSON(w)
	})
	mux.HandleFunc("POST /v1/diff", c.handleDiff)
	mux.HandleFunc("POST /v1/inspect", c.handleInspect)
	mux.HandleFunc("POST /v1/align", c.handleAlign)
	mux.HandleFunc("POST /v1/docclean", c.handleDocClean)
	mux.HandleFunc("POST /v1/references", c.handleRefPut)
	mux.HandleFunc("GET /v1/references", c.handleRefList)
	mux.HandleFunc("GET /v1/references/{id}", c.handleRefGet)
	mux.HandleFunc("GET /v1/references/{id}/content", c.handleRefContent)
	mux.HandleFunc("DELETE /v1/references/{id}", c.handleRefDelete)
	mux.HandleFunc("POST /v1/jobs", c.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", c.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleJobDelete)
	mux.HandleFunc("GET /v1/audit", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "not_found",
			"audit logs are per-shard; query the shards directly", r.Header.Get("X-Request-Id"))
	})
	mux.HandleFunc("GET /v1/cluster/ring", c.handleRing)
	mux.HandleFunc("POST /v1/cluster/rebalance", c.handleRebalance)
	return mux
}

// formImages parses the multipart form and decodes the named file
// parts; missing names simply come back absent from the map.
func (c *Coordinator) formImages(w http.ResponseWriter, r *http.Request, names ...string) (map[string]*rle.Image, bool) {
	rid := r.Header.Get("X-Request-Id")
	r.Body = http.MaxBytesReader(w, r.Body, c.cfg.MaxUploadBytes)
	if err := r.ParseMultipartForm(8 << 20); err != nil {
		status := http.StatusBadRequest
		code := "invalid_argument"
		if _, ok := err.(*http.MaxBytesError); ok {
			status, code = http.StatusRequestEntityTooLarge, "payload_too_large"
		}
		writeError(w, status, code, fmt.Sprintf("parsing multipart form: %v", err), rid)
		return nil, false
	}
	out := make(map[string]*rle.Image, len(names))
	for _, name := range names {
		fhs := r.MultipartForm.File[name]
		if len(fhs) == 0 {
			continue
		}
		f, err := fhs[0].Open()
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid_argument",
				fmt.Sprintf("opening %q upload: %v", name, err), rid)
			return nil, false
		}
		img, err := imageio.Read(f)
		f.Close()
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid_argument",
				fmt.Sprintf("decoding %q upload: %v", name, err), rid)
			return nil, false
		}
		out[name] = img
	}
	return out, true
}

// splitRows divides height rows into at most bands contiguous
// near-equal [lo, hi) ranges, each at least minRows tall (the last
// band absorbs the remainder). One band means "do not scatter".
func splitRows(height, bands, minRows int) [][2]int {
	if bands < 1 {
		bands = 1
	}
	if minRows > 0 && bands > 1 {
		if fit := height / minRows; fit < bands {
			bands = fit
		}
	}
	if bands <= 1 || height <= 0 {
		return [][2]int{{0, height}}
	}
	out := make([][2]int, 0, bands)
	per := height / bands
	lo := 0
	for i := 0; i < bands; i++ {
		hi := lo + per
		if i == bands-1 {
			hi = height
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

// band returns the sub-image covering rows [lo, hi). Rows are shared
// slices, so a band is a header-only view — no pixel copying.
func band(img *rle.Image, lo, hi int) *rle.Image {
	return &rle.Image{Width: img.Width, Height: hi - lo, Rows: img.Rows[lo:hi]}
}

func (c *Coordinator) handleDiff(w http.ResponseWriter, r *http.Request) {
	rid := r.Header.Get("X-Request-Id")
	q := r.URL.Query()
	engine := q.Get("engine")
	format := q.Get("format")
	if format == "" {
		format = "pbm"
	}
	if !validFormat(format) {
		writeError(w, http.StatusBadRequest, "invalid_argument",
			fmt.Sprintf("unknown format %q (have %v)", format, imageio.Formats()), rid)
		return
	}

	// Ref-routed: the call goes to the reference's ring owner, failing
	// over along its replica set when the owner is dead or missed.
	if refID := q.Get("ref"); refID != "" {
		images, ok := c.formImages(w, r, "b")
		if !ok {
			return
		}
		b := images["b"]
		if b == nil {
			writeError(w, http.StatusBadRequest, "invalid_argument", `no "b" upload in form`, rid)
			return
		}
		var res *apiclient.DiffResult
		peer, err := c.readOwners(refID, func(_ string, cl *apiclient.Client) error {
			got, derr := cl.Diff(r.Context(), apiclient.DiffRequest{RefID: refID, B: b, Engine: engine})
			if derr != nil {
				return derr
			}
			res = got
			return nil
		})
		if err != nil {
			if apiclient.IsNotFound(err) {
				c.routeMisses.Inc()
			}
			c.relayError(w, r, peer, err)
			return
		}
		c.routeHits.Inc()
		c.writeDiff(w, format, res.Image, res.Stats, res.Engine)
		return
	}

	images, ok := c.formImages(w, r, "a", "b")
	if !ok {
		return
	}
	a, b := images["a"], images["b"]
	if a == nil || b == nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", `form needs "a" and "b" uploads`, rid)
		return
	}
	if a.Width != b.Width || a.Height != b.Height {
		writeError(w, http.StatusUnprocessableEntity, "unprocessable",
			fmt.Sprintf("size mismatch: %dx%d vs %dx%d", a.Width, a.Height, b.Width, b.Height), rid)
		return
	}

	peers := c.ring.Peers()
	bands := [][2]int{{0, a.Height}}
	if c.cfg.SplitRows > 0 {
		bands = splitRows(a.Height, len(peers), c.cfg.SplitRows)
	}
	if len(bands) == 1 {
		peer, cl := c.nextClient()
		res, err := cl.Diff(r.Context(), apiclient.DiffRequest{A: a, B: b, Engine: engine})
		if err != nil {
			c.relayError(w, r, peer, err)
			return
		}
		c.writeDiff(w, format, res.Image, res.Stats, res.Engine)
		return
	}

	// Scatter: band i → shard i, all in flight at once; gather rows in
	// band order and fold the per-band stats with the associative
	// merge. Row difference is row-independent, so the stitched result
	// is byte-identical to a single-node diff.
	c.scatterDiffs.Inc()
	type bandResult struct {
		res  *apiclient.DiffResult
		peer string
		err  error
	}
	results := make([]bandResult, len(bands))
	var wg sync.WaitGroup
	for i, rng := range bands {
		peer := peers[i%len(peers)]
		cl := c.client(peer)
		wg.Add(1)
		go func(i int, lo, hi int) {
			defer wg.Done()
			res, err := cl.Diff(r.Context(), apiclient.DiffRequest{
				A: band(a, lo, hi), B: band(b, lo, hi), Engine: engine,
			})
			results[i] = bandResult{res, peer, err}
		}(i, rng[0], rng[1])
	}
	wg.Wait()
	stitched := &rle.Image{Width: a.Width, Height: a.Height, Rows: make([]rle.Row, 0, a.Height)}
	var stats sysrle.ImageStats
	engineName := ""
	for _, br := range results {
		if br.err != nil {
			c.relayError(w, r, br.peer, br.err)
			return
		}
		stitched.Rows = append(stitched.Rows, br.res.Image.Rows...)
		stats = sysrle.MergeImageStats(stats, br.res.Stats)
		engineName = br.res.Engine
	}
	c.writeDiff(w, format, stitched, stats, engineName)
}

// writeDiff renders a diff response exactly as a shard would: the
// image in the requested format, statistics in X-Sysrle-* headers.
func (c *Coordinator) writeDiff(w http.ResponseWriter, format string, diff *rle.Image, stats sysrle.ImageStats, engine string) {
	w.Header().Set("Content-Type", imageio.ContentType(format))
	w.Header().Set("X-Sysrle-Engine", engine)
	w.Header().Set("X-Sysrle-Rows-Differing", strconv.Itoa(stats.RowsDiffering))
	w.Header().Set("X-Sysrle-Iterations-Total", strconv.Itoa(stats.TotalIterations))
	w.Header().Set("X-Sysrle-Iterations-Max-Row", strconv.Itoa(stats.MaxRowIterations))
	w.Header().Set("X-Sysrle-Cells-Total", strconv.Itoa(stats.TotalCells))
	w.Header().Set("X-Sysrle-Cells-Max-Row", strconv.Itoa(stats.MaxRowCells))
	if stats.FaultsRecovered > 0 {
		w.Header().Set("X-Sysrle-Faults-Recovered", strconv.Itoa(stats.FaultsRecovered))
	}
	w.Header().Set("X-Sysrle-Diff-Pixels", strconv.Itoa(diff.Area()))
	_ = imageio.Write(w, format, diff)
}

func validFormat(format string) bool {
	for _, f := range imageio.Formats() {
		if f == format {
			return true
		}
	}
	return false
}

func (c *Coordinator) handleInspect(w http.ResponseWriter, r *http.Request) {
	rid := r.Header.Get("X-Request-Id")
	q := r.URL.Query()
	req := apiclient.InspectRequest{Engine: q.Get("engine"), RefID: q.Get("ref")}
	req.MinDefectArea, _ = strconv.Atoi(q.Get("min-area"))
	req.MaxAlignShift, _ = strconv.Atoi(q.Get("align"))
	images, ok := c.formImages(w, r, "ref", "scan")
	if !ok {
		return
	}
	req.Scan = images["scan"]
	if req.Scan == nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", `no "scan" upload in form`, rid)
		return
	}
	var rep *apiclient.InspectReport
	var peer string
	var err error
	if req.RefID != "" {
		peer, err = c.readOwners(req.RefID, func(_ string, cl *apiclient.Client) error {
			got, ierr := cl.Inspect(r.Context(), req)
			if ierr != nil {
				return ierr
			}
			rep = got
			return nil
		})
	} else {
		req.Ref = images["ref"]
		if req.Ref == nil {
			writeError(w, http.StatusBadRequest, "invalid_argument", `form needs a "ref" upload or ?ref=<id>`, rid)
			return
		}
		var cl *apiclient.Client
		peer, cl = c.nextClient()
		rep, err = cl.Inspect(r.Context(), req)
	}
	if err != nil {
		if req.RefID != "" && apiclient.IsNotFound(err) {
			c.routeMisses.Inc()
		}
		c.relayError(w, r, peer, err)
		return
	}
	if req.RefID != "" {
		c.routeHits.Inc()
	}
	writeJSON(w, http.StatusOK, rep)
}

func (c *Coordinator) handleAlign(w http.ResponseWriter, r *http.Request) {
	rid := r.Header.Get("X-Request-Id")
	q := r.URL.Query()
	req := apiclient.AlignRequest{RefID: q.Get("ref")}
	req.MaxShift, _ = strconv.Atoi(q.Get("max-shift"))
	images, ok := c.formImages(w, r, "ref", "scan")
	if !ok {
		return
	}
	req.Scan = images["scan"]
	if req.Scan == nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", `no "scan" upload in form`, rid)
		return
	}
	var res *apiclient.AlignResult
	var peer string
	var err error
	if req.RefID != "" {
		peer, err = c.readOwners(req.RefID, func(_ string, cl *apiclient.Client) error {
			got, aerr := cl.Align(r.Context(), req)
			if aerr != nil {
				return aerr
			}
			res = got
			return nil
		})
	} else {
		req.Ref = images["ref"]
		if req.Ref == nil {
			writeError(w, http.StatusBadRequest, "invalid_argument", `form needs a "ref" upload or ?ref=<id>`, rid)
			return
		}
		var cl *apiclient.Client
		peer, cl = c.nextClient()
		res, err = cl.Align(r.Context(), req)
	}
	if err != nil {
		if req.RefID != "" && apiclient.IsNotFound(err) {
			c.routeMisses.Inc()
		}
		c.relayError(w, r, peer, err)
		return
	}
	if req.RefID != "" {
		c.routeHits.Inc()
	}
	writeJSON(w, http.StatusOK, res)
}

func (c *Coordinator) handleDocClean(w http.ResponseWriter, r *http.Request) {
	rid := r.Header.Get("X-Request-Id")
	q := r.URL.Query()
	if q.Get("format") != "" {
		writeError(w, http.StatusBadRequest, "invalid_argument",
			"the coordinator serves docclean JSON reports only; request image output from a shard", rid)
		return
	}
	images, ok := c.formImages(w, r, "image")
	if !ok {
		return
	}
	img := images["image"]
	if img == nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", `no "image" upload in form`, rid)
		return
	}
	req := apiclient.DocCleanRequest{Image: img, KeepLines: q.Get("keep-lines") != ""}
	req.MaxSpeckleArea, _ = strconv.Atoi(q.Get("max-speckle"))
	req.MinLineLen, _ = strconv.Atoi(q.Get("min-line"))
	req.CloseGapX, _ = strconv.Atoi(q.Get("close-x"))
	req.CloseGapY, _ = strconv.Atoi(q.Get("close-y"))
	req.MinBlockArea, _ = strconv.Atoi(q.Get("min-block"))
	peer, cl := c.nextClient()
	rep, err := cl.DocClean(r.Context(), req)
	if err != nil {
		c.relayError(w, r, peer, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (c *Coordinator) handleRefPut(w http.ResponseWriter, r *http.Request) {
	rid := r.Header.Get("X-Request-Id")
	images, ok := c.formImages(w, r, "image")
	if !ok {
		return
	}
	img := images["image"]
	if img == nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", `no "image" upload in form`, rid)
		return
	}
	id, err := refstore.ContentID(img)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "unprocessable", err.Error(), rid)
		return
	}
	// Replicated write: fan out to every ring owner concurrently and
	// require all of them (quorum = all). Content addressing makes the
	// whole operation idempotent — a partial write retried by the client
	// re-registers the already-placed copies as no-ops, so there is no
	// partial-failure cleanup to do here.
	owners := c.ownerRefs(id)
	if len(owners) == 0 {
		writeError(w, http.StatusServiceUnavailable, "unavailable", "no shards in the ring", rid)
		return
	}
	type putResult struct {
		meta *apiclient.RefMeta
		err  error
	}
	results := make([]putResult, len(owners))
	var wg sync.WaitGroup
	for i, o := range owners {
		wg.Add(1)
		go func(i int, o ownerRef) {
			defer wg.Done()
			meta, perr := o.cl.PutReference(r.Context(), img)
			results[i] = putResult{meta, perr}
		}(i, o)
	}
	wg.Wait()
	for i, res := range results {
		if res.err != nil {
			c.relayError(w, r, owners[i].peer, res.err)
			return
		}
	}
	writeJSON(w, http.StatusCreated, results[0].meta)
}

func (c *Coordinator) handleRefList(w http.ResponseWriter, r *http.Request) {
	type peerRefs struct {
		refs []apiclient.RefMeta
		peer string
		err  error
	}
	peers := c.ring.Peers()
	results := make([]peerRefs, len(peers))
	var wg sync.WaitGroup
	for i, peer := range peers {
		cl := c.client(peer)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			refs, err := cl.ListReferences(r.Context())
			results[i] = peerRefs{refs, peers[i], err}
		}(i)
	}
	wg.Wait()
	// With replication every reference appears on R shards; dedupe by
	// content id so clients see each reference once.
	all := []apiclient.RefMeta{}
	seen := make(map[string]bool)
	for _, pr := range results {
		if pr.err != nil {
			c.relayError(w, r, pr.peer, pr.err)
			return
		}
		for _, ref := range pr.refs {
			if seen[ref.ID] {
				continue
			}
			seen[ref.ID] = true
			all = append(all, ref)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"references": all})
}

func (c *Coordinator) handleRefGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var meta *apiclient.RefMeta
	peer, err := c.readOwners(id, func(_ string, cl *apiclient.Client) error {
		got, gerr := cl.GetReference(r.Context(), id)
		if gerr != nil {
			return gerr
		}
		meta = got
		return nil
	})
	if err != nil {
		c.relayError(w, r, peer, err)
		return
	}
	writeJSON(w, http.StatusOK, meta)
}

func (c *Coordinator) handleRefContent(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var img *rle.Image
	peer, err := c.readOwners(id, func(_ string, cl *apiclient.Client) error {
		got, gerr := cl.ReferenceContent(r.Context(), id)
		if gerr != nil {
			return gerr
		}
		img = got
		return nil
	})
	if err != nil {
		c.relayError(w, r, peer, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_ = imageio.Write(w, "rleb", img)
}

// handleRefDelete removes the reference from every ring owner. A 404
// from an individual owner is fine (a replica may have died and been
// repaired elsewhere); only if every owner 404s does the delete itself
// report not-found.
func (c *Coordinator) handleRefDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	owners := c.ownerRefs(id)
	if len(owners) == 0 {
		writeError(w, http.StatusServiceUnavailable, "unavailable",
			"no shards in the ring", r.Header.Get("X-Request-Id"))
		return
	}
	notFound := 0
	for _, o := range owners {
		err := o.cl.DeleteReference(r.Context(), id)
		switch {
		case err == nil:
		case apiclient.IsNotFound(err):
			notFound++
		default:
			c.relayError(w, r, o.peer, err)
			return
		}
	}
	if notFound == len(owners) {
		writeError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("reference %s not found on any owner", id), r.Header.Get("X-Request-Id"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	rid := r.Header.Get("X-Request-Id")
	q := r.URL.Query()
	req := apiclient.JobRequest{Type: q.Get("type"), Engine: q.Get("engine")}
	req.MinDefectArea, _ = strconv.Atoi(q.Get("min-area"))
	req.MaxAlignShift, _ = strconv.Atoi(q.Get("align"))
	req.DocClean.KeepLines = q.Get("keep-lines") != ""
	req.DocClean.MaxSpeckleArea, _ = strconv.Atoi(q.Get("max-speckle"))
	req.DocClean.MinLineLen, _ = strconv.Atoi(q.Get("min-line"))
	req.DocClean.CloseGapX, _ = strconv.Atoi(q.Get("close-x"))
	req.DocClean.CloseGapY, _ = strconv.Atoi(q.Get("close-y"))
	req.DocClean.MinBlockArea, _ = strconv.Atoi(q.Get("min-block"))

	r.Body = http.MaxBytesReader(w, r.Body, c.cfg.MaxUploadBytes)
	if err := r.ParseMultipartForm(8 << 20); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument",
			fmt.Sprintf("parsing multipart form: %v", err), rid)
		return
	}
	req.RefID = q.Get("ref")
	if req.RefID == "" {
		if vs := r.MultipartForm.Value["ref"]; len(vs) > 0 {
			req.RefID = vs[0]
		}
	}
	for _, fh := range r.MultipartForm.File["scan"] {
		f, err := fh.Open()
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid_argument",
				fmt.Sprintf("opening scan %q: %v", fh.Filename, err), rid)
			return
		}
		img, err := imageio.Read(f)
		f.Close()
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid_argument",
				fmt.Sprintf("decoding scan %q: %v", fh.Filename, err), rid)
			return
		}
		req.Scans = append(req.Scans, img)
	}
	if fhs := r.MultipartForm.File["ref"]; len(fhs) > 0 && req.RefID == "" {
		f, err := fhs[0].Open()
		if err == nil {
			img, rerr := imageio.Read(f)
			f.Close()
			if rerr != nil {
				writeError(w, http.StatusBadRequest, "invalid_argument",
					fmt.Sprintf("decoding ref upload: %v", rerr), rid)
				return
			}
			req.Ref = img
		}
	}
	var peer string
	var cl *apiclient.Client
	if req.RefID != "" {
		peer, cl = c.ownerClient(req.RefID)
	} else {
		peer, cl = c.nextClient()
	}
	st, err := cl.SubmitJob(r.Context(), req)
	if err != nil {
		c.relayError(w, r, peer, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (c *Coordinator) handleJobList(w http.ResponseWriter, r *http.Request) {
	peers := c.ring.Peers()
	type peerJobs struct {
		jobs []apiclient.JobStatus
		peer string
		err  error
	}
	results := make([]peerJobs, len(peers))
	var wg sync.WaitGroup
	for i, peer := range peers {
		cl := c.client(peer)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jobs, err := cl.ListJobs(r.Context())
			results[i] = peerJobs{jobs, peers[i], err}
		}(i)
	}
	wg.Wait()
	all := []apiclient.JobStatus{}
	for _, pj := range results {
		if pj.err != nil {
			c.relayError(w, r, pj.peer, pj.err)
			return
		}
		all = append(all, pj.jobs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"jobs": all})
}

// scatterJob asks every shard about a job id; the shard that knows it
// answers. Job ids are shard-local, so exactly one shard should claim
// any given id.
func (c *Coordinator) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	peers := c.ring.Peers()
	var lastPeer string
	var lastErr error
	for _, peer := range peers {
		cl := c.client(peer)
		st, err := cl.GetJob(r.Context(), id)
		if err == nil {
			writeJSON(w, http.StatusOK, st)
			return
		}
		lastPeer, lastErr = peer, err
		if !apiclient.IsNotFound(err) {
			break
		}
	}
	c.relayError(w, r, lastPeer, lastErr)
}

func (c *Coordinator) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var lastPeer string
	var lastErr error
	for _, peer := range c.ring.Peers() {
		cl := c.client(peer)
		err := cl.DeleteJob(r.Context(), id)
		if err == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		lastPeer, lastErr = peer, err
		if !apiclient.IsNotFound(err) {
			break
		}
	}
	c.relayError(w, r, lastPeer, lastErr)
}

// handleReadyz aggregates per-shard readiness: probe "peer:<host>"
// for each shard (its own /readyz verdict) plus a "ring" probe with
// the membership summary. The shape matches a shard's /readyz so
// orchestrators need one parser.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	peers := c.ring.Peers()
	type probe struct {
		Name   string `json:"name"`
		OK     bool   `json:"ok"`
		Detail string `json:"detail,omitempty"`
	}
	probes := make([]probe, len(peers)+1)
	var wg sync.WaitGroup
	for i, peer := range peers {
		cl := c.client(peer)
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			p := probe{Name: "peer:" + peerLabel(peer)}
			st, err := cl.Ready(r.Context())
			switch {
			case err != nil:
				p.Detail = "unreachable"
			case !st.Ready:
				for _, sp := range st.Probes {
					if !sp.OK {
						p.Detail = sp.Name + ": " + sp.Detail
						break
					}
				}
			default:
				p.OK = true
			}
			probes[i] = p
		}(i, peer)
	}
	wg.Wait()
	ready := true
	for _, p := range probes[:len(peers)] {
		if !p.OK {
			ready = false
		}
	}
	probes[len(peers)] = probe{
		Name: "ring", OK: len(peers) > 0,
		Detail: fmt.Sprintf("peers=%d vnodes=%d", len(peers), c.ring.vnodes),
	}
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{"ready": ready, "probes": probes})
}

func (c *Coordinator) handleRing(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"peers":         c.ring.Peers(),
		"virtual_nodes": c.ring.vnodes,
		"replicas":      c.replicas,
		"suspects":      c.suspectList(),
	})
}

// handleRebalance optionally applies a membership change first: a
// JSON body {"peers": ["http://...", ...]} replaces the ring (removed
// peers drain; unreachable ones are dropped without evacuation — a
// dead shard's data died with it). An empty body keeps the current
// membership and just repairs placement. Overlapping rebalances would
// work from stale listings and double-move references, so a second
// concurrent caller gets 409 instead of queueing behind the first —
// the lock covers the membership change too, keeping change+repair
// atomic with respect to other rebalances.
func (c *Coordinator) handleRebalance(w http.ResponseWriter, r *http.Request) {
	rid := r.Header.Get("X-Request-Id")
	// Read one byte past the cap to tell "exactly 1 MiB" from
	// "truncated at 1 MiB": a truncated JSON body must be 413, not a
	// confusing parse error.
	const maxBody = 1 << 20
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument",
			fmt.Sprintf("reading body: %v", err), rid)
		return
	}
	if len(body) > maxBody {
		writeError(w, http.StatusRequestEntityTooLarge, "payload_too_large",
			fmt.Sprintf("body exceeds %d bytes", maxBody), rid)
		return
	}
	if !c.rebalanceMu.TryLock() {
		writeError(w, http.StatusConflict, "conflict",
			"a rebalance is already running", rid)
		return
	}
	defer c.rebalanceMu.Unlock()
	if len(body) > 0 {
		var req struct {
			Peers []string `json:"peers"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, "invalid_argument",
				fmt.Sprintf("parsing body: %v", err), rid)
			return
		}
		if req.Peers != nil {
			if err := c.SetPeers(req.Peers); err != nil {
				writeError(w, http.StatusBadRequest, "invalid_argument", err.Error(), rid)
				return
			}
		}
	}
	moved, scanned, err := c.rebalance(r.Context())
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "unavailable", err.Error(), rid)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"moved": moved, "scanned": scanned, "peers": c.ring.Peers(),
	})
}
