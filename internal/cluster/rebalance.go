package cluster

// Membership-change rebalancing. Consistent hashing bounds how many
// references a membership change displaces (~1/n of the keyspace per
// peer added or removed); Rebalance does the actual moving for the
// displaced minority: list every shard, find references whose ring
// owner is a different shard, copy each to its owner and delete the
// stray copy. Content addressing makes the copy idempotent — a crash
// mid-move leaves at worst a duplicate that the next rebalance clears,
// never a lost reference.

import (
	"context"
	"fmt"
	"sort"

	"sysrle/internal/apiclient"
)

// Rebalance moves misplaced references to their ring owners: strays
// on ring members (a peer was added and took over part of their span)
// and everything on draining peers (removed from the ring but still
// reachable). It returns how many references moved and how many were
// scanned. Safe to run while traffic flows: reads against a reference
// that is mid-move fall back through relayError as a 404 placement
// miss, and re-registration is idempotent.
func (c *Coordinator) Rebalance(ctx context.Context) (moved, scanned int, err error) {
	sources := make(map[string]*apiclient.Client)
	for _, peer := range c.ring.Peers() {
		sources[peer] = c.client(peer)
	}
	draining := c.drainingPeers()
	for peer, cl := range draining {
		sources[peer] = cl
	}
	peers := make([]string, 0, len(sources))
	for p := range sources {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	// Snapshot every shard's listing before moving anything, so a
	// reference relocated early is not re-scanned on its destination.
	// A draining peer that cannot be listed is a dead shard: its
	// references died with it, so there is nothing to evacuate — mark
	// it drained and move on rather than wedging the membership
	// change. A ring member that cannot be listed still aborts; its
	// span is live and skipping it could strand misplaced references.
	listings := make(map[string][]apiclient.RefMeta, len(peers))
	for _, peer := range peers {
		refs, lerr := sources[peer].ListReferences(ctx)
		if lerr != nil {
			if _, wasDraining := draining[peer]; wasDraining {
				c.log.Warn("draining peer unreachable, dropping without evacuation",
					"peer", peerLabel(peer), "err", lerr)
				c.drained(peer)
				delete(draining, peer)
				delete(sources, peer)
				continue
			}
			return 0, 0, fmt.Errorf("cluster: listing %s: %w", peerLabel(peer), lerr)
		}
		listings[peer] = refs
	}
	for _, peer := range peers {
		cl := sources[peer]
		for _, ref := range listings[peer] {
			scanned++
			owner := c.ring.Owner(ref.ID)
			if owner == peer {
				continue
			}
			img, gerr := cl.ReferenceContent(ctx, ref.ID)
			if gerr != nil {
				return moved, scanned, fmt.Errorf("cluster: fetching %s from %s: %w",
					ref.ID[:12], peerLabel(peer), gerr)
			}
			ocl := c.client(owner)
			if ocl == nil {
				return moved, scanned, fmt.Errorf("cluster: no client for owner %s", peerLabel(owner))
			}
			if _, perr := ocl.PutReference(ctx, img); perr != nil {
				return moved, scanned, fmt.Errorf("cluster: placing %s on %s: %w",
					ref.ID[:12], peerLabel(owner), perr)
			}
			// Only after the owner holds the copy is the stray removed.
			if derr := cl.DeleteReference(ctx, ref.ID); derr != nil {
				return moved, scanned, fmt.Errorf("cluster: removing stray %s from %s: %w",
					ref.ID[:12], peerLabel(peer), derr)
			}
			moved++
			c.movedRefs.Inc()
			c.log.Info("reference rebalanced", "ref", ref.ID[:12],
				"from", peerLabel(peer), "to", peerLabel(owner))
		}
		if _, wasDraining := draining[peer]; wasDraining {
			c.drained(peer)
		}
	}
	return moved, scanned, nil
}
