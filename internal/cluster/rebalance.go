package cluster

// Membership-change rebalancing and replica repair. Consistent hashing
// bounds how many references a membership change displaces (~1/n of
// the keyspace per peer added or removed); Rebalance does the actual
// moving for the displaced minority and, with a replication factor R,
// also re-copies under-replicated references after a shard dies:
// list every shard, group the listings by reference, and drive every
// reference to the invariant "present on all R ring owners and
// nowhere else". Content addressing makes every copy idempotent — a
// crash mid-move leaves at worst a duplicate that the next rebalance
// clears, never a lost reference.

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"sysrle/internal/apiclient"
	"sysrle/internal/rle"
)

// Rebalance repairs placement after a membership change: every
// reference ends on all R of its ring owners and nowhere else. Three
// kinds of work fold into one pass over a snapshot of every shard's
// listing:
//
//   - strays (held only by ring members that are not owners — a peer
//     was added and took over part of their span) are copied to the
//     missing owners, then deleted;
//   - draining peers (removed from the ring but still reachable) are
//     evacuated the same way, then marked drained;
//   - under-replicated references (fewer than R owner copies — a
//     replica died with its shard) are re-copied from any surviving
//     holder.
//
// It returns how many reference copies were created and how many
// listing entries were scanned. Safe to run while traffic flows:
// reads against a mid-move reference fail over to a surviving replica
// or fall back through relayError, and re-registration is idempotent.
// Overlapping runs are serialized; the HTTP handler rejects the
// second caller with 409 instead of queueing it.
func (c *Coordinator) Rebalance(ctx context.Context) (moved, scanned int, err error) {
	c.rebalanceMu.Lock()
	defer c.rebalanceMu.Unlock()
	return c.rebalance(ctx)
}

// rebalance is Rebalance without the serialization; callers hold
// rebalanceMu.
func (c *Coordinator) rebalance(ctx context.Context) (moved, scanned int, err error) {
	sources := make(map[string]*apiclient.Client)
	for _, peer := range c.ring.Peers() {
		sources[peer] = c.client(peer)
	}
	draining := c.drainingPeers()
	for peer, cl := range draining {
		sources[peer] = cl
	}
	peers := make([]string, 0, len(sources))
	for p := range sources {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	// Snapshot every shard's listing before moving anything, so a
	// reference relocated early is not re-scanned on its destination.
	// A draining peer that cannot be listed is a dead shard: its
	// references died with it, so there is nothing to evacuate — mark
	// it drained and move on rather than wedging the membership
	// change. A ring member that cannot be listed still aborts; its
	// span is live and skipping it could strand misplaced references.
	listings := make(map[string][]apiclient.RefMeta, len(peers))
	for _, peer := range peers {
		refs, lerr := sources[peer].ListReferences(ctx)
		if lerr != nil {
			if _, wasDraining := draining[peer]; wasDraining {
				c.log.Warn("draining peer unreachable, dropping without evacuation",
					"peer", peerLabel(peer), "err", lerr)
				c.drained(peer)
				delete(draining, peer)
				delete(sources, peer)
				continue
			}
			return 0, 0, fmt.Errorf("cluster: listing %s: %w", peerLabel(peer), lerr)
		}
		listings[peer] = refs
	}

	// Group the snapshot by reference: which peers hold each id now.
	holders := make(map[string][]string)
	for _, peer := range peers {
		for _, ref := range listings[peer] {
			scanned++
			holders[ref.ID] = append(holders[ref.ID], peer)
		}
	}
	ids := make([]string, 0, len(holders))
	for id := range holders {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	for _, id := range ids {
		owners := c.ring.Owners(id, c.replicas)
		ownerSet := make(map[string]bool, len(owners))
		for _, o := range owners {
			ownerSet[o] = true
		}
		holderSet := make(map[string]bool, len(holders[id]))
		for _, h := range holders[id] {
			holderSet[h] = true
		}
		// Copy to owners that miss the reference, fetching from any
		// holder that still answers (the first may be mid-death).
		var img *rle.Image // lazily fetched once per reference
		for _, owner := range owners {
			if holderSet[owner] {
				continue
			}
			if img == nil {
				fetched, ferr := c.fetchFromHolders(ctx, id, holders[id], sources)
				if ferr != nil {
					return moved, scanned, ferr
				}
				img = fetched
			}
			ocl := sources[owner]
			if ocl == nil {
				return moved, scanned, fmt.Errorf("cluster: no client for owner %s", peerLabel(owner))
			}
			if _, perr := ocl.PutReference(ctx, img); perr != nil {
				return moved, scanned, fmt.Errorf("cluster: placing %s on %s: %w",
					id[:12], peerLabel(owner), perr)
			}
			moved++
			c.movedRefs.Inc()
			c.log.Info("reference copied to owner", "ref", id[:12], "to", peerLabel(owner))
		}
		// Only after every owner holds a copy are strays removed.
		for _, h := range holders[id] {
			if ownerSet[h] {
				continue
			}
			if derr := sources[h].DeleteReference(ctx, id); derr != nil {
				return moved, scanned, fmt.Errorf("cluster: removing stray %s from %s: %w",
					id[:12], peerLabel(h), derr)
			}
			c.log.Info("stray reference removed", "ref", id[:12], "from", peerLabel(h))
		}
	}
	// Every listed draining peer has now been fully evacuated.
	for peer := range draining {
		c.drained(peer)
	}
	return moved, scanned, nil
}

// fetchFromHolders pulls a reference's content from the first holder
// that answers, failing over down the holder list — during repair the
// primary copy may sit on a shard that is mid-death.
func (c *Coordinator) fetchFromHolders(ctx context.Context, id string, holderPeers []string, sources map[string]*apiclient.Client) (*rle.Image, error) {
	var errs []error
	for _, h := range holderPeers {
		cl := sources[h]
		if cl == nil {
			continue
		}
		img, err := cl.ReferenceContent(ctx, id)
		if err == nil {
			return img, nil
		}
		errs = append(errs, fmt.Errorf("from %s: %w", peerLabel(h), err))
	}
	return nil, fmt.Errorf("cluster: fetching %s: %w", id[:12], errors.Join(errs...))
}
