package cluster

// Cluster chaos: the coordinator's client stack (per-call deadlines,
// capped-jitter retries, slow-shard hedging) against internal/fault's
// HTTP transport injector, and hard shard death. The correctness bar
// is the same as everywhere else in this repo — chaos may slow
// answers down, never change them.

import (
	"bytes"
	"context"
	"net/http"
	"testing"
	"time"

	"sysrle/internal/apiclient"
	"sysrle/internal/fault"
	"sysrle/internal/refstore"
	"sysrle/internal/telemetry"
)

func TestCoordinatorChaosSlowErrorPeers(t *testing.T) {
	shards := startShards(t, 3)

	// Every coordinator→shard call rolls the dice: 40% chance of a
	// stall or an injected transport error. Retries plus hedging must
	// still converge on correct answers.
	inj := fault.NewInjector(fault.Plan{
		Seed: 11, Rate: 0.4,
		Kinds:   []fault.Kind{fault.KindSlow, fault.KindError},
		SlowFor: 60 * time.Millisecond,
	}, telemetry.NewRegistry())
	_, coordURL := startCoordinator(t, Config{
		Peers:      shards,
		SplitRows:  40,
		Seed:       7,
		Retries:    5,
		HedgeDelay: 25 * time.Millisecond,
		Transport:  fault.WrapTransport(nil, inj),
	})

	a := genImage(t, 21, 256, 200)
	b := genImage(t, 22, 256, 200)
	_, _, want := postDiff(t, shards[0], a, b, "format=rleb")

	for i := 0; i < 5; i++ {
		status, _, got := postDiff(t, coordURL, a, b, "format=rleb")
		if status != http.StatusOK {
			t.Fatalf("chaos diff %d: status %d, body %s", i, status, got)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("chaos diff %d differs from single-node result", i)
		}
	}
	if inj.Total() == 0 {
		t.Fatalf("chaos plan injected nothing — the test proved nothing")
	}
	t.Logf("faults injected: %s", inj.InjectedString())
}

func TestCoordinatorChaosRefRoutedHedgedReads(t *testing.T) {
	shards := startShards(t, 3)
	inj := fault.NewInjector(fault.Plan{
		Seed: 5, Rate: 0.5,
		Kinds:   []fault.Kind{fault.KindSlow, fault.KindError},
		SlowFor: 50 * time.Millisecond,
	}, nil)
	_, coordURL := startCoordinator(t, Config{
		Peers:      shards,
		Seed:       9,
		Retries:    5,
		HedgeDelay: 20 * time.Millisecond,
		Transport:  fault.WrapTransport(nil, inj),
	})
	coord := apiclient.MustNew(coordURL, apiclient.Options{Seed: 1, Retries: -1})
	ctx := context.Background()

	ref := genImage(t, 31, 128, 96)
	meta, err := coord.PutReference(ctx, ref)
	if err != nil {
		t.Fatalf("PutReference under chaos: %v", err)
	}
	scan := genImage(t, 32, 128, 96)
	want, err := coord.Diff(ctx, apiclient.DiffRequest{RefID: meta.ID, B: scan})
	if err != nil {
		t.Fatalf("ref-routed diff under chaos: %v", err)
	}
	for i := 0; i < 8; i++ {
		got, err := coord.Diff(ctx, apiclient.DiffRequest{RefID: meta.ID, B: scan})
		if err != nil {
			t.Fatalf("hedged read %d: %v", i, err)
		}
		if got.Stats != want.Stats {
			t.Fatalf("hedged read %d stats %+v, want %+v", i, got.Stats, want.Stats)
		}
	}
	if inj.Total() == 0 {
		t.Fatalf("chaos plan injected nothing")
	}
}

// TestCoordinatorKilledShardFailsOnlyItsSpan kills one shard and
// checks the blast radius: references owned by the dead shard 503,
// references owned by survivors keep answering, and after membership
// change + rebalance the survivors own everything again.
func TestCoordinatorKilledShardFailsOnlyItsSpan(t *testing.T) {
	shards, kill := startKillableShards(t, 3)
	c, coordURL := startCoordinator(t, Config{
		Peers: shards, Seed: 3,
		PeerTimeout: 2 * time.Second,
	})
	coord := apiclient.MustNew(coordURL, apiclient.Options{Seed: 1, Retries: -1})
	ctx := context.Background()

	// Spread references until the doomed shard owns at least one and
	// the survivors own at least one each.
	victim := shards[2]
	byOwner := map[string][]string{}
	for i := 0; i < 24 && (len(byOwner[victim]) == 0 ||
		len(byOwner[shards[0]]) == 0 || len(byOwner[shards[1]]) == 0); i++ {
		img := genImage(t, int64(300+i), 96, 64)
		id, err := refstore.ContentID(img)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := coord.PutReference(ctx, img); err != nil {
			t.Fatalf("PutReference: %v", err)
		}
		owner := c.ring.Owner(id)
		byOwner[owner] = append(byOwner[owner], id)
	}
	if len(byOwner[victim]) == 0 {
		t.Fatalf("no reference landed on the victim shard; enlarge the corpus")
	}

	// Kill the victim. Its span fails with 503/unreachable…
	kill(2)
	scan := genImage(t, 400, 96, 64)
	_, err := coord.Diff(ctx, apiclient.DiffRequest{RefID: byOwner[victim][0], B: scan})
	if err == nil {
		t.Fatalf("diff against dead shard's span should fail")
	}
	if ae, ok := apiErr(err); !ok || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("dead-shard diff error = %v, want 503 unavailable", err)
	}

	// …while the survivors' spans keep answering.
	for _, surv := range shards[:2] {
		if len(byOwner[surv]) == 0 {
			continue
		}
		if _, err := coord.Diff(ctx, apiclient.DiffRequest{RefID: byOwner[surv][0], B: scan}); err != nil {
			t.Fatalf("survivor-owned ref failed while another shard is down: %v", err)
		}
	}

	// readyz reflects the dead peer.
	st, err := coord.Ready(ctx)
	if err != nil {
		t.Fatalf("Ready: %v", err)
	}
	if st.Ready {
		t.Fatalf("cluster reports ready with a dead shard")
	}

	// Membership change: drop the dead shard. Rebalance cannot reach
	// it (its references are gone with it), but the ring must stop
	// routing to it — the dead span's references 404 rather than 503,
	// and new work lands on survivors.
	if err := c.SetPeers(shards[:2]); err != nil {
		t.Fatalf("SetPeers: %v", err)
	}
	c.drained(shards[2]) // its data died with it; nothing to drain
	if _, _, err := c.Rebalance(ctx); err != nil {
		t.Fatalf("Rebalance after shard loss: %v", err)
	}
	_, err = coord.Diff(ctx, apiclient.DiffRequest{RefID: byOwner[victim][0], B: scan})
	if !apiclient.IsNotFound(err) {
		t.Fatalf("dead span after rebalance: err = %v, want 404 (ref lost with its shard)", err)
	}
	st, err = coord.Ready(ctx)
	if err != nil {
		t.Fatalf("Ready after membership change: %v", err)
	}
	if !st.Ready {
		t.Fatalf("cluster not ready after removing the dead shard: %+v", st.Probes)
	}
}
