// Package cluster scales the inspection service horizontally: a
// coordinator process places references on a ring of ordinary sysdiffd
// peers by consistent hashing (each reference's decoded cache lives on
// exactly one shard) and splits single huge images by row range across
// shards, scatter-gathering the per-band results and merging their
// ImageStats associatively. Peers are unmodified sysdiffd processes —
// the coordinator speaks to them only through the public v1 HTTP API
// via internal/apiclient, so a shard never knows it is in a cluster.
//
// The paper's systolic array scales by adding cells that each own a
// slice of the row stream; the cluster tier is the same move one level
// up — shards each own a slice of the reference space and of any large
// image's row range, and the coordinator plays the host interface,
// distributing work and folding results back together.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultVirtualNodes is how many points each peer contributes to the
// ring. More vnodes smooth the key distribution and shrink the share
// of keys that move when membership changes.
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring over peer base URLs. A key (reference
// id) is owned by the peer whose vnode is first clockwise of the key's
// hash point; adding or removing one peer moves only the key spans
// adjacent to that peer's vnodes (~1/n of the keyspace), never a full
// reshuffle. Safe for concurrent use.
type Ring struct {
	vnodes int

	mu     sync.RWMutex
	peers  []string // sorted, deduplicated
	points []point  // sorted by hash
}

type point struct {
	hash uint64
	peer string
}

// NewRing returns a ring with the given peers and vnodes per peer
// (0 means DefaultVirtualNodes).
func NewRing(peers []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{vnodes: vnodes}
	r.SetPeers(peers)
	return r
}

// hashKey is FNV-1a 64 — stable across processes and platforms, so a
// restarted coordinator reproduces the same placement.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// SetPeers replaces the membership. Placement of every key not
// adjacent to a changed peer's vnodes is unaffected (the bounded
// rebalancing property consistent hashing exists for).
func (r *Ring) SetPeers(peers []string) {
	dedup := make([]string, 0, len(peers))
	seen := make(map[string]bool, len(peers))
	for _, p := range peers {
		if p != "" && !seen[p] {
			seen[p] = true
			dedup = append(dedup, p)
		}
	}
	sort.Strings(dedup)
	points := make([]point, 0, len(dedup)*r.vnodes)
	for _, p := range dedup {
		for v := 0; v < r.vnodes; v++ {
			points = append(points, point{hashKey(fmt.Sprintf("%s#%d", p, v)), p})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		return points[i].peer < points[j].peer
	})
	r.mu.Lock()
	r.peers = dedup
	r.points = points
	r.mu.Unlock()
}

// Peers returns the current membership, sorted.
func (r *Ring) Peers() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.peers...)
}

// Len returns the number of peers.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.peers)
}

// Owner returns the peer owning the key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns the key's replica set: the first n distinct peers
// clockwise of the key's hash point, primary first. Fewer than n peers
// on the ring degrades gracefully to all of them. The walk is over the
// sorted point list — vnode hash ties were broken by peer name at sort
// time — so the set is deterministic across processes and restarts.
func (r *Ring) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	return ownersFrom(r.points, hashKey(key), n)
}

// ownersFrom walks points clockwise from hash h collecting the first n
// distinct peers. Factored off the Ring so tests can feed synthetic
// point sets (hash ties, tiny rings) directly.
func ownersFrom(points []point, h uint64, n int) []string {
	i := sort.Search(len(points), func(i int) bool { return points[i].hash >= h })
	out := make([]string, 0, n)
walk:
	for k := 0; k < len(points) && len(out) < n; k++ {
		p := points[(i+k)%len(points)].peer
		for _, o := range out {
			if o == p {
				continue walk
			}
		}
		out = append(out, p)
	}
	return out
}
