package runmorph

import (
	"math/rand"
	"testing"

	"sysrle/internal/rle"
)

// bruteMorph is the naive pixel reference: O(W·H·w·h), no interval
// algebra at all. Foreground outside the frame is background.
func bruteMorph(img *rle.Image, se SE, dilate bool) *rle.Image {
	out := rle.NewImage(img.Width, img.Height)
	for y := 0; y < img.Height; y++ {
		bits := make([]bool, img.Width)
		for x := 0; x < img.Width; x++ {
			if dilate {
				// x set iff some offset (dx,dy) of the SE has (x-dx, y-dy) set.
				for dy := -se.OY; dy <= se.H-1-se.OY && !bits[x]; dy++ {
					for dx := -se.OX; dx <= se.W-1-se.OX && !bits[x]; dx++ {
						if img.Get(x-dx, y-dy) {
							bits[x] = true
						}
					}
				}
			} else {
				all := true
				for dy := -se.OY; dy <= se.H-1-se.OY && all; dy++ {
					for dx := -se.OX; dx <= se.W-1-se.OX && all; dx++ {
						if !img.Get(x+dx, y+dy) {
							all = false
						}
					}
				}
				bits[x] = all
			}
		}
		out.Rows[y] = rle.FromBits(bits)
	}
	return out
}

func randomImage(rng *rand.Rand, w, h int, density float64) *rle.Image {
	img := rle.NewImage(w, h)
	for y := 0; y < h; y++ {
		bits := make([]bool, w)
		for x := range bits {
			bits[x] = rng.Float64() < density
		}
		img.Rows[y] = rle.FromBits(bits)
	}
	return img
}

var testSEs = []SE{
	Box(0),
	Box(1),
	Box(2),
	Rect(4, 2),
	Rect(2, 4),
	Rect(5, 1),
	Rect(1, 5),
	Rect(3, 3).At(0, 0),
	Rect(3, 3).At(2, 2),
	Rect(4, 3).At(3, 0),
	Rect(2, 2),
	Rect(7, 2).At(1, 1),
}

func TestDilateErodeAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1999))
	for trial := 0; trial < 4; trial++ {
		img := randomImage(rng, 48, 20, []float64{0.05, 0.3, 0.6, 0.9}[trial])
		for _, se := range testSEs {
			got, err := Dilate(img, se)
			if err != nil {
				t.Fatalf("Dilate %v: %v", se, err)
			}
			if want := bruteMorph(img, se, true); !got.Equal(want) {
				t.Errorf("trial %d SE %v: dilation disagrees with pixel reference", trial, se)
			}
			got, err = Erode(img, se)
			if err != nil {
				t.Fatalf("Erode %v: %v", se, err)
			}
			if want := bruteMorph(img, se, false); !got.Equal(want) {
				t.Errorf("trial %d SE %v: erosion disagrees with pixel reference", trial, se)
			}
		}
	}
}

func TestAppendContract(t *testing.T) {
	row := rle.Row{rle.Span(3, 5), rle.Span(9, 9), rle.Span(12, 20)}
	prefix := rle.Row{rle.Span(100, 101)}
	got := AppendDilateRow(prefix, row, 1, 2, 64)
	if got[0] != rle.Span(100, 101) {
		t.Fatalf("AppendDilateRow touched the prefix: %v", got)
	}
	if want := (rle.Row{rle.Span(2, 7), rle.Span(8, 11), rle.Span(11, 22)}); false {
		_ = want
	}
	// Appended suffix must be canonical and equal the allocating path.
	suffix := got[1:]
	if err := suffix.Validate(64); err != nil || !suffix.Canonical() {
		t.Errorf("appended dilation not canonical: %v (%v)", suffix, err)
	}
	if want := AppendDilateRow(nil, row, 1, 2, 64); !suffix.Equal(want) {
		t.Errorf("prefix changed the suffix: %v vs %v", suffix, want)
	}

	got = AppendErodeRow(prefix, row, 1, 2)
	if got[0] != rle.Span(100, 101) {
		t.Fatalf("AppendErodeRow touched the prefix: %v", got)
	}
	suffix = got[1:]
	if err := suffix.Validate(-1); err != nil || !suffix.Canonical() {
		t.Errorf("appended erosion not canonical: %v (%v)", suffix, err)
	}
}

// TestRowPrimitivesMergeFragments pins the distributivity trap the
// oracle once caught in the old engine: erosion must merge adjacent
// valid-but-fragmented runs before shrinking, and dilation must merge
// overlapping grown translates.
func TestRowPrimitivesMergeFragments(t *testing.T) {
	frag := rle.Row{{Start: 24, Length: 4}, {Start: 28, Length: 4}, {Start: 32, Length: 2}}
	got := AppendErodeRow(nil, frag, 2, 2)
	if want := (rle.Row{rle.Span(26, 31)}); !got.Equal(want) {
		t.Errorf("fragmented erosion = %v, want %v", got, want)
	}
	dil := AppendDilateRow(nil, frag, 2, 2, 64)
	if want := (rle.Row{rle.Span(22, 35)}); !dil.Equal(want) {
		t.Errorf("fragmented dilation = %v, want %v", dil, want)
	}
}

func TestRowPrimitiveClipping(t *testing.T) {
	row := rle.Row{rle.Span(0, 1), rle.Span(30, 31)}
	got := AppendDilateRow(nil, row, 3, 3, 32)
	if want := (rle.Row{rle.Span(0, 4), rle.Span(27, 31)}); !got.Equal(want) {
		t.Errorf("clipped dilation = %v, want %v", got, want)
	}
	// A run entirely outside after asymmetric growth is dropped, not
	// emitted empty.
	edge := rle.Row{rle.Span(0, 0)}
	if got := AppendDilateRow(nil, edge, 0, 2, 32); !got.Equal(rle.Row{rle.Span(0, 2)}) {
		t.Errorf("asymmetric edge dilation = %v", got)
	}
	if got := AppendDilateRow(nil, edge, 2, 0, -1); !got.Equal(rle.Row{rle.Span(-2, 0)}) {
		t.Errorf("unclipped dilation = %v", got)
	}
}

func TestRowPrimitivesPanicOnNegativeExtents(t *testing.T) {
	for _, f := range []func(){
		func() { AppendDilateRow(nil, rle.Row{rle.Span(0, 3)}, -1, 0, 8) },
		func() { AppendErodeRow(nil, rle.Row{rle.Span(0, 3)}, 0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("negative extent accepted")
				}
			}()
			f()
		}()
	}
}

func TestSEValidation(t *testing.T) {
	bad := []SE{
		{W: 0, H: 1},
		{W: 1, H: 0},
		{W: -3, H: 3, OX: 1, OY: 1},
		Rect(3, 3).At(3, 0),
		Rect(3, 3).At(0, -1),
	}
	for _, se := range bad {
		if se.Validate() == nil {
			t.Errorf("SE %v accepted", se)
		}
		if _, err := Dilate(rle.NewImage(8, 8), se); err == nil {
			t.Errorf("Dilate accepted %v", se)
		}
		if _, err := Erode(rle.NewImage(8, 8), se); err == nil {
			t.Errorf("Erode accepted %v", se)
		}
		if _, err := Close(rle.NewImage(8, 8), se); err == nil {
			t.Errorf("Close accepted %v", se)
		}
	}
	if err := Rect(4, 2).At(3, 1).Validate(); err != nil {
		t.Errorf("corner origin rejected: %v", err)
	}
}

func TestComposeDecompose(t *testing.T) {
	a, b := Rect(4, 2).At(0, 1), Rect(3, 5).At(2, 0)
	c := Compose(a, b)
	if c.W != 6 || c.H != 6 || c.OX != 2 || c.OY != 1 {
		t.Fatalf("Compose = %v", c)
	}
	rng := rand.New(rand.NewSource(7))
	img := randomImage(rng, 40, 18, 0.25)
	direct, err := Dilate(img, c)
	if err != nil {
		t.Fatal(err)
	}
	chained, err := DilateSeq(img, []SE{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if !direct.Equal(chained) {
		t.Error("dilation by composed SE differs from chained dilations")
	}
	eDirect, err := Erode(img, c)
	if err != nil {
		t.Fatal(err)
	}
	eChained, err := ErodeSeq(img, []SE{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if !eDirect.Equal(eChained) {
		t.Error("erosion by composed SE differs from chained erosions")
	}
	for _, se := range testSEs {
		if got := Compose(se.Decompose()[0], last(se.Decompose())); len(se.Decompose()) == 2 && got != se {
			t.Errorf("Decompose(%v) does not recompose: %v", se, got)
		}
		dec, err := DilateSeq(img, se.Decompose())
		if err != nil {
			t.Fatal(err)
		}
		dir, err := Dilate(img, se)
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Equal(dir) {
			t.Errorf("decomposed dilation differs for %v", se)
		}
	}
}

func last(ses []SE) SE { return ses[len(ses)-1] }

func TestReflect(t *testing.T) {
	se := Rect(4, 3).At(0, 2)
	r := se.Reflect()
	if r.OX != 3 || r.OY != 0 || r.W != 4 || r.H != 3 {
		t.Fatalf("Reflect = %v", r)
	}
	if se.Reflect().Reflect() != se {
		t.Error("Reflect not involutive")
	}
}

func TestDerivedOps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	img := randomImage(rng, 60, 24, 0.35)
	for _, se := range []SE{Box(1), Rect(4, 2), Rect(3, 3).At(0, 2), Rect(2, 5).At(1, 1)} {
		opened, err := Open(img, se)
		if err != nil {
			t.Fatal(err)
		}
		closed, err := Close(img, se)
		if err != nil {
			t.Fatal(err)
		}
		// Anti-extensivity / extensivity.
		for y := range img.Rows {
			if len(rle.AndNot(opened.Rows[y], img.Rows[y])) != 0 {
				t.Fatalf("%v: opening not anti-extensive at row %d", se, y)
			}
			if len(rle.AndNot(img.Rows[y], closed.Rows[y])) != 0 {
				t.Fatalf("%v: closing not extensive at row %d", se, y)
			}
		}
		// Idempotence.
		opened2, err := Open(opened, se)
		if err != nil {
			t.Fatal(err)
		}
		if !opened2.Equal(opened) {
			t.Errorf("%v: opening not idempotent", se)
		}
		closed2, err := Close(closed, se)
		if err != nil {
			t.Fatal(err)
		}
		if !closed2.Equal(closed) {
			t.Errorf("%v: closing not idempotent", se)
		}
		// Gradient = dilation minus erosion, and contains the morphological
		// boundary of the foreground.
		grad, err := Gradient(img, se)
		if err != nil {
			t.Fatal(err)
		}
		dil, _ := Dilate(img, se)
		ero, _ := Erode(img, se)
		for y := range grad.Rows {
			if !grad.Rows[y].EqualBits(rle.AndNot(dil.Rows[y], ero.Rows[y])) {
				t.Fatalf("%v: gradient row %d mismatch", se, y)
			}
		}
		// Top-hat/black-hat definitions.
		th, err := TopHat(img, se)
		if err != nil {
			t.Fatal(err)
		}
		bh, err := BlackHat(img, se)
		if err != nil {
			t.Fatal(err)
		}
		for y := range img.Rows {
			if !th.Rows[y].EqualBits(rle.AndNot(img.Rows[y], opened.Rows[y])) {
				t.Fatalf("%v: top-hat row %d mismatch", se, y)
			}
			if !bh.Rows[y].EqualBits(rle.AndNot(closed.Rows[y], img.Rows[y])) {
				t.Fatalf("%v: black-hat row %d mismatch", se, y)
			}
		}
	}
}

// TestCloseMatchesPaddedBrute pins the border convention of Close: it
// must behave as if computed on an infinitely padded canvas.
func TestCloseMatchesPaddedBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	img := randomImage(rng, 32, 14, 0.4)
	for _, se := range []SE{Box(1), Rect(4, 2), Rect(5, 3).At(4, 0)} {
		got, err := Close(img, se)
		if err != nil {
			t.Fatal(err)
		}
		// Brute reference on a canvas padded well beyond the SE.
		pad := se.W + se.H
		padded := rle.NewImage(img.Width+2*pad, img.Height+2*pad)
		rle.Paste(padded, img, pad, pad)
		dil := bruteMorph(padded, se, true)
		ero := bruteMorph(dil, se, false)
		want, err := rle.Crop(ero, pad, pad, img.Width, img.Height)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("%v: Close differs from padded brute force", se)
		}
	}
}

func TestHitOrMiss(t *testing.T) {
	// Isolated-pixel detector: centre set, 4-neighbourhood clear.
	pat, err := ParsePattern([]string{
		".0.",
		"010",
		".0.",
	}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	img := rle.NewImage(8, 5)
	img.Rows[1] = rle.Row{rle.Span(2, 2)}          // isolated
	img.Rows[3] = rle.Row{rle.Span(4, 5)}          // pair: neither isolated
	img.Rows[0] = rle.Row{rle.Span(7, 7)}          // corner, isolated
	got, err := HitOrMiss(img, pat)
	if err != nil {
		t.Fatal(err)
	}
	want := rle.NewImage(8, 5)
	want.Rows[1] = rle.Row{rle.Span(2, 2)}
	want.Rows[0] = rle.Row{rle.Span(7, 7)}
	if !got.Equal(want) {
		t.Errorf("hit-or-miss = %+v, want %+v", got.Rows, want.Rows)
	}

	// Brute check on random images: right-edge detector (fg at origin,
	// bg to its right).
	edge := Pattern{Fg: []Offset{{0, 0}}, Bg: []Offset{{1, 0}}}
	rng := rand.New(rand.NewSource(5))
	rimg := randomImage(rng, 24, 10, 0.5)
	res, err := HitOrMiss(rimg, edge)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < rimg.Height; y++ {
		for x := 0; x < rimg.Width; x++ {
			want := rimg.Get(x, y) && !rimg.Get(x+1, y)
			if res.Get(x, y) != want {
				t.Fatalf("edge HMT wrong at (%d,%d)", x, y)
			}
		}
	}

	if _, err := ParsePattern([]string{"1?0"}, 0, 0); err == nil {
		t.Error("bad pattern cell accepted")
	}
}

// TestOpReuse pins buffer hygiene: an Op reused across differently
// sized images and ops must keep producing outputs that don't alias
// its scratch.
func TestOpReuse(t *testing.T) {
	var o Op
	rng := rand.New(rand.NewSource(3))
	imgs := []*rle.Image{
		randomImage(rng, 50, 20, 0.3),
		randomImage(rng, 17, 33, 0.6),
		randomImage(rng, 50, 20, 0.1),
	}
	se := Rect(3, 4).At(2, 1)
	for _, img := range imgs {
		got, err := o.Dilate(img, se)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteMorph(img, se, true)
		snapshot := got.Clone()
		// A second operation on the same Op must not corrupt the first
		// result.
		if _, err := o.Erode(imgs[0], se); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(snapshot) || !got.Equal(want) {
			t.Error("Op reuse corrupted an earlier output")
		}
	}
}

func TestEmptyAndIdentity(t *testing.T) {
	img := rle.NewImage(16, 6)
	img.Rows[2] = rle.Row{rle.Span(4, 9)}
	id, err := Dilate(img, Box(0))
	if err != nil {
		t.Fatal(err)
	}
	if !id.Equal(img) {
		t.Error("Box(0) dilation is not the identity")
	}
	id, err = Erode(img, Box(0))
	if err != nil {
		t.Fatal(err)
	}
	if !id.Equal(img) {
		t.Error("Box(0) erosion is not the identity")
	}
	empty := rle.NewImage(0, 0)
	if _, err := Dilate(empty, Box(2)); err != nil {
		t.Errorf("empty image: %v", err)
	}
	if _, err := Close(empty, Box(2)); err != nil {
		t.Errorf("empty close: %v", err)
	}
}
