package runmorph

import (
	"fmt"

	"sysrle/internal/rle"
)

// Hit-or-miss transform on runs. A Pattern names foreground offsets
// (pixels that must be set) and background offsets (pixels that must
// be clear); the transform is the intersection of the corresponding
// translates of the image and of its complement:
//
//	HMT(A) = ⋂_{d∈Fg} (A − d)  ∩  ⋂_{d∈Bg} (Aᶜ − d)
//
// Pixels outside the frame read as background, so a background
// requirement landing off-frame is satisfied and a foreground one is
// not — consistent with the erosion border convention.

// Offset is a relative pixel position (DX right, DY down).
type Offset struct {
	DX, DY int
}

// Pattern is a hit-or-miss template: Fg offsets must hit foreground,
// Bg offsets must hit background. Offsets may be arbitrary (sparse,
// non-contiguous, origin excluded). A Pattern with empty Fg and Bg
// matches everywhere.
type Pattern struct {
	Fg, Bg []Offset
}

// ParsePattern builds a Pattern from an ASCII stencil with its origin
// at (ox, oy): '1'/'x'/'X' are foreground requirements, '0'/'o'/'O'
// background ones, anything else ('.', ' ', '-') don't-care. Rows may
// have differing lengths; missing cells are don't-care.
func ParsePattern(rows []string, ox, oy int) (Pattern, error) {
	var p Pattern
	for y, row := range rows {
		for x, c := range row {
			off := Offset{DX: x - ox, DY: y - oy}
			switch c {
			case '1', 'x', 'X':
				p.Fg = append(p.Fg, off)
			case '0', 'o', 'O':
				p.Bg = append(p.Bg, off)
			case '.', ' ', '-':
			default:
				return Pattern{}, fmt.Errorf("runmorph: pattern cell %q at (%d,%d)", c, x, y)
			}
		}
	}
	return p, nil
}

// HitOrMiss returns the hit-or-miss transform of img under pat: the
// pixels where every foreground offset lands on foreground and every
// background offset on background.
func (o *Op) HitOrMiss(img *rle.Image, pat Pattern) (*rle.Image, error) {
	out := rle.NewImage(img.Width, img.Height)
	if img.Width == 0 {
		return out, nil
	}
	full := rle.Row{rle.Span(0, img.Width-1)}
	for y := range out.Rows {
		acc := full
		for _, d := range pat.Fg {
			// Requirement: x+DX ∈ A at row y+DY. Runs only exist inside
			// the frame, so off-frame foreground requirements fail here
			// by construction.
			allowed := img.Row(y + d.DY).Shift(-d.DX)
			acc = rle.AND(acc, allowed)
			if len(acc) == 0 {
				break
			}
		}
		for _, d := range pat.Bg {
			if len(acc) == 0 {
				break
			}
			// Requirement: x+DX ∉ A at row y+DY. Complement within the
			// frame after shifting: positions whose target falls off-frame
			// have no run there and so read as background — satisfied.
			blocked := img.Row(y + d.DY).Shift(-d.DX).Clip(img.Width)
			acc = rle.AndNot(acc, blocked)
		}
		if len(acc) > 0 {
			out.Rows[y] = acc.Clip(img.Width)
		}
	}
	return out, nil
}

// HitOrMiss is the package-level convenience. See Op.HitOrMiss.
func HitOrMiss(img *rle.Image, pat Pattern) (*rle.Image, error) {
	return new(Op).HitOrMiss(img, pat)
}
