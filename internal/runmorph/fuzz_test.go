package runmorph

import (
	"testing"

	"sysrle/internal/rle"
)

// Fuzzing the 1-D interval primitives against the uncompressed bit
// reference over adversarial run rows and SE geometries. The byte
// stream decodes to (gap, length) pairs, so every input is a valid
// (possibly fragmented: zero gaps produce adjacent runs) row — the
// encoding the paper permits as input.

func decodeRow(data []byte) rle.Row {
	var row rle.Row
	pos := 0
	for i := 0; i+1 < len(data) && len(row) < 64; i += 2 {
		gap := int(data[i]) % 17   // 0 = adjacent fragment
		length := int(data[i+1])%9 + 1
		start := pos + gap
		row = append(row, rle.Run{Start: start, Length: length})
		pos = start + length
	}
	return row
}

// refBits applies the 1-D operation to the expanded bitstring.
func refBits(row rle.Row, left, right, width int, dilate bool) rle.Row {
	// Work on a domain wide enough to hold every translate.
	bits := row.Bits(width)
	out := make([]bool, width)
	for x := 0; x < width; x++ {
		if dilate {
			for dx := -left; dx <= right && !out[x]; dx++ {
				if src := x - dx; src >= 0 && src < width && bits[src] {
					out[x] = true
				}
			}
		} else {
			all := true
			for dx := -left; dx <= right && all; dx++ {
				if src := x + dx; src < 0 || src >= width || !bits[src] {
					all = false
				}
			}
			out[x] = all
		}
	}
	return rle.FromBits(out)
}

func seExtents(a, b byte) (left, right int) { return int(a) % 9, int(b) % 9 }

func FuzzUnionOfTranslates(f *testing.F) {
	f.Add([]byte{0, 3, 1, 2}, byte(1), byte(1))
	f.Add([]byte{0, 1, 0, 1, 0, 1}, byte(0), byte(4))
	f.Add([]byte{16, 8, 16, 8}, byte(8), byte(0))
	f.Add([]byte{}, byte(2), byte(2))
	f.Fuzz(func(t *testing.T, data []byte, lb, rb byte) {
		left, right := seExtents(lb, rb)
		row := decodeRow(data)
		width := 0
		if n := len(row); n > 0 {
			width = row[n-1].End() + 1
		}
		width += left + right + 1 // room for every translate
		got := AppendDilateRow(nil, row, left, right, width)
		if err := got.Validate(width); err != nil {
			t.Fatalf("invalid output: %v (%v)", err, got)
		}
		if !got.Canonical() {
			t.Fatalf("non-canonical output %v for input %v", got, row)
		}
		if want := refBits(row, left, right, width, true); !got.Equal(want) {
			t.Fatalf("dilate(%v, -%d..+%d) = %v, want %v", row, left, right, got, want)
		}
		// Append contract: a prefix survives untouched and the suffix is
		// unchanged.
		prefix := rle.Row{rle.Span(width + 10, width + 11)}
		both := AppendDilateRow(prefix, row, left, right, width)
		if both[0] != prefix[0] || !both[1:].Equal(got) {
			t.Fatalf("append contract broken: %v", both)
		}
	})
}

func FuzzErodeIntersection(f *testing.F) {
	f.Add([]byte{0, 3, 0, 3, 0, 3}, byte(2), byte(2))
	f.Add([]byte{4, 8, 0, 8, 0, 2}, byte(3), byte(1))
	f.Add([]byte{0, 1}, byte(0), byte(0))
	f.Add([]byte{}, byte(1), byte(4))
	f.Fuzz(func(t *testing.T, data []byte, lb, rb byte) {
		left, right := seExtents(lb, rb)
		row := decodeRow(data)
		width := 1
		if n := len(row); n > 0 {
			width = row[n-1].End() + 1
		}
		got := AppendErodeRow(nil, row, left, right)
		if err := got.Validate(width); err != nil {
			t.Fatalf("invalid output: %v (%v)", err, got)
		}
		if !got.Canonical() {
			t.Fatalf("non-canonical output %v for input %v", got, row)
		}
		if want := refBits(row, left, right, width, false); !got.Equal(want) {
			t.Fatalf("erode(%v, -%d..+%d) = %v, want %v", row, left, right, got, want)
		}
		prefix := rle.Row{rle.Span(width + 10, width + 11)}
		both := AppendErodeRow(prefix, row, left, right)
		if both[0] != prefix[0] || !both[1:].Equal(got) {
			t.Fatalf("append contract broken: %v", both)
		}
	})
}
