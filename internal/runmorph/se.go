// Package runmorph implements binary morphology directly on run-length
// encoded rows as interval algebra, after Breuel ("Efficient Binary and
// Run Length Morphology and its Application to Document Image
// Processing") and Ehrensperger et al. ("Fast algorithms for
// morphological operations using RLE binary images"): dilation is a
// union of translated run intervals, erosion a boundary shrink /
// interval intersection. No pixel is ever materialised — cost scales
// with the number of runs, not the number of pixels, which is the
// compressed-domain regime the source paper targets.
//
// Unlike internal/morph's original centred-box API, runmorph supports
// arbitrary rectangular structuring elements: any width×height with an
// arbitrary origin inside the rectangle, plus composition and
// horizontal/vertical decomposition of SEs, and the derived operators
// open, close, gradient, top-hat, black-hat and hit-or-miss.
// internal/morph is now a thin compatibility shim over this package.
//
// Border convention: images live on a canvas padded with background.
// Dilation is clipped to the frame; erosion near the border vanishes
// wherever the translated SE leaves the frame (the infinite-background
// semantics). Close pads the canvas by the SE extents before dilating
// so it stays extensive at the borders, then crops back.
package runmorph

import "fmt"

// SE is a rectangular structuring element: a W×H rectangle of
// foreground cells anchored at origin (OX, OY), which must lie inside
// the rectangle (0 ≤ OX < W, 0 ≤ OY < H — that keeps dilation
// extensive and erosion anti-extensive, and makes chained decomposed
// dilation equal to direct dilation even with frame clipping).
//
// The pixel offsets covered by the SE are dx ∈ [-OX, W-1-OX] and
// dy ∈ [-OY, H-1-OY]; Left/Right/Up/Down name those four extents.
type SE struct {
	W, H   int
	OX, OY int
}

// Rect returns a w×h SE with a centred origin ((w-1)/2, (h-1)/2) —
// exactly centred for odd sizes, rounded toward the top-left for even
// ones.
func Rect(w, h int) SE { return SE{W: w, H: h, OX: (w - 1) / 2, OY: (h - 1) / 2} }

// Box returns the centred square of radius r: (2r+1)×(2r+1). Box(0) is
// the identity SE.
func Box(r int) SE { return Rect(2*r+1, 2*r+1) }

// HLine returns a horizontal line SE of width w (height 1), centred.
func HLine(w int) SE { return Rect(w, 1) }

// VLine returns a vertical line SE of height h (width 1), centred.
func VLine(h int) SE { return Rect(1, h) }

// At returns a copy of the SE with its origin moved to (ox, oy).
func (se SE) At(ox, oy int) SE { se.OX, se.OY = ox, oy; return se }

// Validate rejects degenerate rectangles and origins outside them.
func (se SE) Validate() error {
	if se.W < 1 || se.H < 1 {
		return fmt.Errorf("runmorph: SE %v has empty rectangle", se)
	}
	if se.OX < 0 || se.OX >= se.W || se.OY < 0 || se.OY >= se.H {
		return fmt.Errorf("runmorph: SE %v origin outside rectangle", se)
	}
	return nil
}

// Left returns how far the SE reaches left of its origin.
func (se SE) Left() int { return se.OX }

// Right returns how far the SE reaches right of its origin.
func (se SE) Right() int { return se.W - 1 - se.OX }

// Up returns how far the SE reaches above its origin.
func (se SE) Up() int { return se.OY }

// Down returns how far the SE reaches below its origin.
func (se SE) Down() int { return se.H - 1 - se.OY }

// Reflect returns the SE reflected through its origin — the B̌ of the
// erosion/dilation duality A ⊖ B = ¬(¬A ⊕ B̌).
func (se SE) Reflect() SE {
	return SE{W: se.W, H: se.H, OX: se.W - 1 - se.OX, OY: se.H - 1 - se.OY}
}

// Compose returns the Minkowski sum of two rectangular SEs: widths and
// heights add (minus the shared origin cell), origins add. Dilating by
// Compose(a, b) equals dilating by a then by b; the oracle pins that
// identity.
func Compose(a, b SE) SE {
	return SE{W: a.W + b.W - 1, H: a.H + b.H - 1, OX: a.OX + b.OX, OY: a.OY + b.OY}
}

// Decompose factors the SE into a horizontal and a vertical line whose
// composition reproduces it: w×h = (w×1) ⊕ (1×h), origins preserved.
// One-dimensional SEs decompose into themselves.
func (se SE) Decompose() []SE {
	if se.W == 1 || se.H == 1 {
		return []SE{se}
	}
	return []SE{
		{W: se.W, H: 1, OX: se.OX, OY: 0},
		{W: 1, H: se.H, OX: 0, OY: se.OY},
	}
}

func (se SE) String() string {
	return fmt.Sprintf("%dx%d@(%d,%d)", se.W, se.H, se.OX, se.OY)
}
