package runmorph

import (
	"fmt"

	"sysrle/internal/rle"
)

// The 1-D primitives. A horizontal SE of width w and origin ox covers
// the offsets dx ∈ [-left, right] with left = ox, right = w-1-ox.
// Dilation grows every run by those extents and unions the translates;
// erosion shrinks every maximal stretch by them (a stretch shorter
// than left+right+1 vanishes). Both follow the repo-wide append
// contract: output is appended after dst's existing runs, which are
// never touched or merged with, so a caller-owned scratch row makes
// the steady state allocation-free.

// AppendDilateRow appends the dilation of row by the horizontal
// interval [-left, right] to dst, clipped to [0, width) (pass
// width < 0 to skip clipping). Overlapping and adjacent grown runs are
// merged on the fly, so the appended runs are canonical among
// themselves even when the input row is merely valid (fragmented).
// It panics if left or right is negative — validated SEs guarantee
// non-negative extents.
func AppendDilateRow(dst rle.Row, row rle.Row, left, right, width int) rle.Row {
	if left < 0 || right < 0 {
		panic(fmt.Sprintf("runmorph: negative dilation extents (-%d, +%d)", left, right))
	}
	base := len(dst)
	for _, r := range row {
		s, e := r.Start-left, r.End()+right
		if width >= 0 {
			if e >= width {
				e = width - 1
			}
			if s < 0 {
				s = 0
			}
			if s > e {
				continue // run fell entirely outside the frame
			}
		}
		if n := len(dst); n > base && s <= dst[n-1].End()+1 {
			if e > dst[n-1].End() {
				dst[n-1].Length = e - dst[n-1].Start + 1
			}
			continue
		}
		dst = append(dst, rle.Span(s, e))
	}
	return dst
}

// AppendErodeRow appends the erosion of row by the horizontal interval
// [-left, right] to dst. Erosion does not distribute over union, so
// adjacent and overlapping fragments are merged into maximal stretches
// on the fly before shrinking; a stretch survives iff it is at least
// left+right+1 pixels long. The appended runs are canonical among
// themselves and need no clipping (erosion only shrinks). Panics on
// negative extents.
func AppendErodeRow(dst rle.Row, row rle.Row, left, right int) rle.Row {
	if left < 0 || right < 0 {
		panic(fmt.Sprintf("runmorph: negative erosion extents (-%d, +%d)", left, right))
	}
	if len(row) == 0 {
		return dst
	}
	curS, curE := row[0].Start, row[0].End()
	for _, r := range row[1:] {
		if r.Start <= curE+1 { // adjacent or overlapping fragment
			if e := r.End(); e > curE {
				curE = e
			}
			continue
		}
		if s, e := curS+left, curE-right; s <= e {
			dst = append(dst, rle.Span(s, e))
		}
		curS, curE = r.Start, r.End()
	}
	if s, e := curS+left, curE-right; s <= e {
		dst = append(dst, rle.Span(s, e))
	}
	return dst
}
