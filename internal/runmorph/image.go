package runmorph

import "sysrle/internal/rle"

// Op is a reusable morphology context. It owns the horizontal-pass
// rows, the vertical sweep scratch and the window slice, so repeated
// operations on same-sized images reuse their buffers instead of
// reallocating per call. The zero value is ready to use; an Op must
// not be shared between goroutines. Output images are freshly
// allocated (arena-persisted) and do not alias the Op's scratch.
type Op struct {
	horiz   []rle.Row
	vpre    []rle.Row
	vsuf    []rle.Row
	window  []rle.Row
	scratch rle.Row
	sweep   rle.SweepScratch
}

// resize grows a row buffer to h rows, reusing per-row capacity from
// earlier calls.
func resize(buf []rle.Row, h int) []rle.Row {
	if cap(buf) < h {
		grown := make([]rle.Row, h)
		copy(grown, buf[:cap(buf)])
		return grown
	}
	return buf[:h]
}

// rows resizes the horizontal-pass buffer to h rows.
func (o *Op) rows(h int) []rle.Row {
	o.horiz = resize(o.horiz, h)
	return o.horiz
}

// Dilate returns img ⊕ se, clipped to the image frame. Separable:
// every row is dilated by the SE's horizontal extents (union of
// translates, merged on append), then each output row is the union of
// the SE-height window of horizontal results.
func (o *Op) Dilate(img *rle.Image, se SE) (*rle.Image, error) {
	if err := se.Validate(); err != nil {
		return nil, err
	}
	h := img.Height
	horiz := o.rows(h)
	for y := 0; y < h; y++ {
		horiz[y] = AppendDilateRow(horiz[y][:0], img.Rows[y], se.Left(), se.Right(), img.Width)
	}
	out := rle.NewImage(img.Width, h)
	arena := rle.NewArena(0)
	switch {
	case se.H == 1:
		for y := 0; y < h; y++ {
			out.Rows[y] = arena.Persist(horiz[y])
		}
	case se.H == 2 || h < se.H:
		// Tiny windows (or images shorter than the SE): the k-way merge
		// beats the prefix/suffix machinery's constant factor.
		for y := 0; y < h; y++ {
			lo, hi := clampWindow(y-se.Down(), y+se.Up(), h)
			o.scratch = o.unionRange(horiz, lo, hi)
			out.Rows[y] = arena.Persist(o.scratch)
		}
	default:
		// van Herk / Gil–Werman sliding-window union: rows partition
		// into blocks of H; prefix[i] unions from the block start to i,
		// suffix[i] from i to the block end. Any H-row window spans at
		// most two adjacent blocks, so each output row is one two-row
		// union — O(runs) total, independent of the SE height. That
		// independence is what keeps tall-SE page-scale dilation ahead
		// of the word-parallel bitmap baseline.
		o.vpre = resize(o.vpre, h)
		o.vsuf = resize(o.vsuf, h)
		for i := 0; i < h; i++ {
			if i%se.H == 0 {
				o.vpre[i] = rle.AppendCanonical(o.vpre[i][:0], horiz[i])
			} else {
				o.vpre[i] = rle.AppendUnion(o.vpre[i][:0], o.vpre[i-1], horiz[i])
			}
		}
		for i := h - 1; i >= 0; i-- {
			if i%se.H == se.H-1 || i == h-1 {
				o.vsuf[i] = rle.AppendCanonical(o.vsuf[i][:0], horiz[i])
			} else {
				o.vsuf[i] = rle.AppendUnion(o.vsuf[i][:0], horiz[i], o.vsuf[i+1])
			}
		}
		for y := 0; y < h; y++ {
			lo, hi := clampWindow(y-se.Down(), y+se.Up(), h)
			switch {
			case lo > hi:
				continue
			case lo/se.H != hi/se.H:
				// Window straddles two blocks: suffix of the first ∪
				// prefix of the second covers exactly [lo, hi].
				o.scratch = rle.AppendUnion(o.scratch[:0], o.vsuf[lo], o.vpre[hi])
			case hi%se.H == se.H-1 || hi == h-1:
				o.scratch = rle.AppendCanonical(o.scratch[:0], o.vsuf[lo])
			case lo%se.H == 0:
				o.scratch = rle.AppendCanonical(o.scratch[:0], o.vpre[hi])
			default:
				// A clamped border window strictly inside one block —
				// at most H-1 rows at each frame edge. Merge directly.
				o.scratch = o.unionRange(horiz, lo, hi)
			}
			out.Rows[y] = arena.Persist(o.scratch)
		}
	}
	return out, nil
}

// clampWindow clips the inclusive row window [lo, hi] to [0, h).
func clampWindow(lo, hi, h int) (int, int) {
	if lo < 0 {
		lo = 0
	}
	if hi > h-1 {
		hi = h - 1
	}
	return lo, hi
}

// unionRange unions rows[lo..hi] into o.scratch via the k-way merge.
func (o *Op) unionRange(rows []rle.Row, lo, hi int) rle.Row {
	o.window = o.window[:0]
	for yy := lo; yy <= hi; yy++ {
		if len(rows[yy]) > 0 {
			o.window = append(o.window, rows[yy])
		}
	}
	return o.sweep.AppendOR(o.scratch[:0], o.window)
}

// Erode returns img ⊖ se with infinite-background semantics: output
// pixels whose translated SE leaves the frame vanish. Separable:
// every maximal horizontal stretch shrinks by the SE's horizontal
// extents, then each output row is the intersection of the SE-height
// window of horizontal results (empty wherever the window leaves the
// frame).
func (o *Op) Erode(img *rle.Image, se SE) (*rle.Image, error) {
	if err := se.Validate(); err != nil {
		return nil, err
	}
	h := img.Height
	horiz := o.rows(h)
	for y := 0; y < h; y++ {
		horiz[y] = AppendErodeRow(horiz[y][:0], img.Rows[y], se.Left(), se.Right())
	}
	out := rle.NewImage(img.Width, h)
	arena := rle.NewArena(0)
	if se.H == 1 {
		for y := 0; y < h; y++ {
			out.Rows[y] = arena.Persist(horiz[y])
		}
		return out, nil
	}
	for y := 0; y < h; y++ {
		// Output row y requires input rows y+dy for dy ∈ [-Up, Down],
		// i.e. the window [y-Up, y+Down]; out of frame ⇒ background ⇒
		// the intersection is empty.
		lo, hi := y-se.Up(), y+se.Down()
		if lo < 0 || hi > h-1 {
			continue
		}
		o.window = o.window[:0]
		empty := false
		for yy := lo; yy <= hi; yy++ {
			if len(horiz[yy]) == 0 {
				empty = true
				break
			}
			o.window = append(o.window, horiz[yy])
		}
		if empty {
			continue
		}
		o.scratch = o.sweep.AppendAND(o.scratch[:0], o.window)
		out.Rows[y] = arena.Persist(o.scratch)
	}
	return out, nil
}

// DilateSeq chains dilations by each SE in order — with frame
// clipping this equals dilating by the composed SE (the origins-inside
// invariant makes intermediate clipping lossless; the oracle pins it).
func (o *Op) DilateSeq(img *rle.Image, ses []SE) (*rle.Image, error) {
	if len(ses) == 0 {
		return img.Clone(), nil
	}
	cur := img
	for _, se := range ses {
		next, err := o.Dilate(cur, se)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// ErodeSeq chains erosions by each SE in order: A ⊖ (B1 ⊕ B2) =
// (A ⊖ B1) ⊖ B2.
func (o *Op) ErodeSeq(img *rle.Image, ses []SE) (*rle.Image, error) {
	if len(ses) == 0 {
		return img.Clone(), nil
	}
	cur := img
	for _, se := range ses {
		next, err := o.Erode(cur, se)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// Open returns the opening (img ⊖ se) ⊕ se — erosion and dilation by
// the same SE form an adjunction, so this is anti-extensive,
// increasing and idempotent for any origin, no reflection needed.
func (o *Op) Open(img *rle.Image, se SE) (*rle.Image, error) {
	eroded, err := o.Erode(img, se)
	if err != nil {
		return nil, err
	}
	return o.Dilate(eroded, se)
}

// Close returns the closing (img ⊕ se) ⊖ se. The canvas is padded by
// the SE extents before dilating so foreground near the border closes
// exactly as it would on an infinite canvas (extensivity survives the
// frame), then cropped back.
func (o *Op) Close(img *rle.Image, se SE) (*rle.Image, error) {
	if err := se.Validate(); err != nil {
		return nil, err
	}
	padded := rle.NewImage(img.Width+se.W-1, img.Height+se.H-1)
	for y, row := range img.Rows {
		if len(row) > 0 {
			padded.Rows[y+se.Up()] = row.Shift(se.Left())
		}
	}
	dilated, err := o.Dilate(padded, se)
	if err != nil {
		return nil, err
	}
	eroded, err := o.Erode(dilated, se)
	if err != nil {
		return nil, err
	}
	return rle.Crop(eroded, se.Left(), se.Up(), img.Width, img.Height)
}

// Gradient returns the morphological gradient (img ⊕ se) \ (img ⊖ se):
// the boundary band of the foreground under the SE.
func (o *Op) Gradient(img *rle.Image, se SE) (*rle.Image, error) {
	dilated, err := o.Dilate(img, se)
	if err != nil {
		return nil, err
	}
	eroded, err := o.Erode(img, se)
	if err != nil {
		return nil, err
	}
	for y := range dilated.Rows {
		dilated.Rows[y] = rle.AndNot(dilated.Rows[y], eroded.Rows[y])
	}
	return dilated, nil
}

// TopHat returns the white top-hat img \ open(img, se): foreground
// detail too small to survive the opening (specks, thin strokes).
func (o *Op) TopHat(img *rle.Image, se SE) (*rle.Image, error) {
	opened, err := o.Open(img, se)
	if err != nil {
		return nil, err
	}
	out := rle.NewImage(img.Width, img.Height)
	for y := range img.Rows {
		out.Rows[y] = rle.AndNot(img.Rows[y], opened.Rows[y])
	}
	return out, nil
}

// BlackHat returns the black top-hat close(img, se) \ img: background
// detail too small to survive the closing (pinholes, thin gaps).
func (o *Op) BlackHat(img *rle.Image, se SE) (*rle.Image, error) {
	closed, err := o.Close(img, se)
	if err != nil {
		return nil, err
	}
	for y := range closed.Rows {
		closed.Rows[y] = rle.AndNot(closed.Rows[y], img.Rows[y])
	}
	return closed, nil
}

// Package-level conveniences over a throwaway Op.

// Dilate returns img ⊕ se. See Op.Dilate.
func Dilate(img *rle.Image, se SE) (*rle.Image, error) { return new(Op).Dilate(img, se) }

// Erode returns img ⊖ se. See Op.Erode.
func Erode(img *rle.Image, se SE) (*rle.Image, error) { return new(Op).Erode(img, se) }

// Open returns the opening of img by se. See Op.Open.
func Open(img *rle.Image, se SE) (*rle.Image, error) { return new(Op).Open(img, se) }

// Close returns the closing of img by se. See Op.Close.
func Close(img *rle.Image, se SE) (*rle.Image, error) { return new(Op).Close(img, se) }

// Gradient returns the morphological gradient of img under se.
func Gradient(img *rle.Image, se SE) (*rle.Image, error) { return new(Op).Gradient(img, se) }

// TopHat returns the white top-hat of img under se.
func TopHat(img *rle.Image, se SE) (*rle.Image, error) { return new(Op).TopHat(img, se) }

// BlackHat returns the black top-hat of img under se.
func BlackHat(img *rle.Image, se SE) (*rle.Image, error) { return new(Op).BlackHat(img, se) }

// DilateSeq chains dilations. See Op.DilateSeq.
func DilateSeq(img *rle.Image, ses []SE) (*rle.Image, error) { return new(Op).DilateSeq(img, ses) }

// ErodeSeq chains erosions. See Op.ErodeSeq.
func ErodeSeq(img *rle.Image, ses []SE) (*rle.Image, error) { return new(Op).ErodeSeq(img, ses) }
