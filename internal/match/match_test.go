package match

import (
	"math/rand"
	"testing"

	"sysrle/internal/bitmap"
	"sysrle/internal/rle"
)

// mismatchRef is a brute-force pixel comparison.
func mismatchRef(img, tpl *rle.Image, x0, y0 int) int {
	n := 0
	for ty := 0; ty < tpl.Height; ty++ {
		for tx := 0; tx < tpl.Width; tx++ {
			if tpl.Get(tx, ty) != img.Get(x0+tx, y0+ty) {
				n++
			}
		}
	}
	return n
}

func TestMismatchAtAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	for trial := 0; trial < 60; trial++ {
		img := bitmap.Random(rng, 20+rng.Intn(40), 10+rng.Intn(20), 0.4).ToRLE()
		tpl := bitmap.Random(rng, 3+rng.Intn(8), 3+rng.Intn(6), 0.4).ToRLE()
		x0, y0 := rng.Intn(img.Width+6)-3, rng.Intn(img.Height+6)-3
		got := MismatchAt(img, tpl, x0, y0, -1)
		want := mismatchRef(img, tpl, x0, y0)
		if got != want {
			t.Fatalf("MismatchAt(%d,%d) = %d, want %d", x0, y0, got, want)
		}
	}
}

func TestMismatchAtEarlyExit(t *testing.T) {
	img := rle.NewImage(10, 10) // empty
	tpl := rle.NewImage(10, 10)
	for y := range tpl.Rows {
		tpl.Rows[y] = rle.Row{{Start: 0, Length: 10}} // all set: mismatch 100
	}
	if got := MismatchAt(img, tpl, 0, 0, 15); got <= 15 {
		t.Errorf("early exit returned %d, should exceed limit", got)
	}
	if got := MismatchAt(img, tpl, 0, 0, -1); got != 100 {
		t.Errorf("exact count = %d, want 100", got)
	}
}

func TestSearchFindsPlantedTemplate(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	font := Font()
	tpl := font["8"]
	scene := rle.NewImage(60, 20)
	// Plant the glyph at two known spots.
	rle.Paste(scene, tpl, 7, 3)
	rle.Paste(scene, tpl, 40, 11)
	// Sprinkle noise away from the glyphs.
	for i := 0; i < 15; i++ {
		x, y := rng.Intn(60), rng.Intn(20)
		if (x >= 5 && x < 14 && y >= 1 && y < 12) || (x >= 38 && x < 47 && y >= 9 && y < 19) {
			continue
		}
		scene.SetRow(y, rle.OR(scene.Rows[y], rle.Row{{Start: x, Length: 1}}))
	}
	matches, err := Search(scene, tpl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("exact matches = %+v, want 2", matches)
	}
	got := map[[2]int]bool{}
	for _, m := range matches {
		if m.Mismatch != 0 {
			t.Errorf("non-zero mismatch %d", m.Mismatch)
		}
		got[[2]int{m.X, m.Y}] = true
	}
	if !got[[2]int{7, 3}] || !got[[2]int{40, 11}] {
		t.Errorf("matches at wrong positions: %+v", matches)
	}
}

func TestSearchErrorsAndBounds(t *testing.T) {
	img := rle.NewImage(10, 10)
	if _, err := Search(img, rle.NewImage(0, 4), 0); err == nil {
		t.Error("empty template accepted")
	}
	// Template bigger than the image: no placements, no error.
	big := rle.NewImage(20, 20)
	matches, err := Search(img, big, 1000)
	if err != nil || len(matches) != 0 {
		t.Errorf("oversized template: %v %v", matches, err)
	}
}

func TestBest(t *testing.T) {
	tpl := Font()["7"]
	scene := rle.NewImage(30, 12)
	rle.Paste(scene, tpl, 12, 2)
	// Corrupt one pixel so the best is 1, not 0.
	scene.SetRow(2, rle.XOR(scene.Rows[2], rle.Row{{Start: 12, Length: 1}}))
	m, ok := Best(scene, tpl)
	if !ok {
		t.Fatal("no placement found")
	}
	if m.X != 12 || m.Y != 2 || m.Mismatch != 1 {
		t.Errorf("Best = %+v, want (12,2) mismatch 1", m)
	}
	if _, ok := Best(rle.NewImage(3, 3), tpl); ok {
		t.Error("Best found placement for oversized template")
	}
}

func TestNonMaxSuppress(t *testing.T) {
	matches := []Match{
		{X: 10, Y: 10, Mismatch: 0},
		{X: 11, Y: 10, Mismatch: 2}, // overlaps the first
		{X: 30, Y: 10, Mismatch: 3}, // disjoint
		{X: 30, Y: 11, Mismatch: 4}, // overlaps the third
	}
	kept := NonMaxSuppress(matches, 5, 7)
	if len(kept) != 2 || kept[0].X != 10 || kept[1].X != 30 {
		t.Errorf("kept = %+v", kept)
	}
	if len(NonMaxSuppress(nil, 5, 7)) != 0 {
		t.Error("empty input mishandled")
	}
}

func TestClassifyCleanGlyphs(t *testing.T) {
	font := Font()
	for name, glyph := range font {
		got, score, ok := Classify(glyph, font)
		if !ok {
			t.Fatal("no classification")
		}
		if got != name || score != 0 {
			t.Errorf("Classify(%q) = %q score %d", name, got, score)
		}
	}
}

func TestClassifyNoisyGlyphs(t *testing.T) {
	rng := rand.New(rand.NewSource(709))
	font := Font()
	correct, total := 0, 0
	for name, glyph := range font {
		for trial := 0; trial < 10; trial++ {
			noisy := glyph.Clone()
			// Flip 3 random pixels.
			for i := 0; i < 3; i++ {
				x, y := rng.Intn(GlyphWidth), rng.Intn(GlyphHeight)
				noisy.SetRow(y, rle.XOR(noisy.Rows[y], rle.Row{{Start: x, Length: 1}}))
			}
			got, _, _ := Classify(noisy, font)
			total++
			if got == name {
				correct++
			}
		}
	}
	// 3 flipped pixels out of 35 should still classify correctly
	// most of the time.
	if correct*10 < total*8 {
		t.Errorf("noisy classification accuracy %d/%d below 80%%", correct, total)
	}
}

func TestClassifyEmptyTemplateSet(t *testing.T) {
	if _, _, ok := Classify(rle.NewImage(5, 7), nil); ok {
		t.Error("empty template set classified")
	}
}

func TestParseArt(t *testing.T) {
	img, err := ParseArt([]string{"#.#", ".#."})
	if err != nil {
		t.Fatal(err)
	}
	if img.Width != 3 || img.Height != 2 || img.Area() != 3 {
		t.Errorf("parsed %dx%d area %d", img.Width, img.Height, img.Area())
	}
	if _, err := ParseArt(nil); err == nil {
		t.Error("empty art accepted")
	}
	if _, err := ParseArt([]string{"##", "#"}); err == nil {
		t.Error("ragged art accepted")
	}
}

func TestFontGlyphsDistinct(t *testing.T) {
	font := Font()
	if len(font) < 10 {
		t.Fatalf("font has %d glyphs", len(font))
	}
	names := make([]string, 0, len(font))
	for n := range font {
		names = append(names, n)
	}
	for i, a := range names {
		for _, b := range names[i+1:] {
			d := 0
			for y := 0; y < GlyphHeight; y++ {
				d += rle.Hamming(font[a].Rows[y], font[b].Rows[y])
			}
			if d < 3 {
				t.Errorf("glyphs %q and %q differ by only %d pixels", a, b, d)
			}
		}
	}
}
