package match

import (
	"fmt"

	"sysrle/internal/rle"
)

// A small 5×7 bitmap font (digits and a few capitals), used by the
// character-recognition example and tests. Glyphs are defined as
// string art and compiled to RLE images at first use.

var glyphArt = map[string][]string{
	"0": {".###.", "#...#", "#..##", "#.#.#", "##..#", "#...#", ".###."},
	"1": {"..#..", ".##..", "..#..", "..#..", "..#..", "..#..", ".###."},
	"2": {".###.", "#...#", "....#", "...#.", "..#..", ".#...", "#####"},
	"3": {".###.", "#...#", "....#", "..##.", "....#", "#...#", ".###."},
	"4": {"...#.", "..##.", ".#.#.", "#..#.", "#####", "...#.", "...#."},
	"5": {"#####", "#....", "####.", "....#", "....#", "#...#", ".###."},
	"6": {".###.", "#....", "#....", "####.", "#...#", "#...#", ".###."},
	"7": {"#####", "....#", "...#.", "..#..", ".#...", ".#...", ".#..."},
	"8": {".###.", "#...#", "#...#", ".###.", "#...#", "#...#", ".###."},
	"9": {".###.", "#...#", "#...#", ".####", "....#", "....#", ".###."},
	"A": {".###.", "#...#", "#...#", "#####", "#...#", "#...#", "#...#"},
	"E": {"#####", "#....", "#....", "####.", "#....", "#....", "#####"},
	"H": {"#...#", "#...#", "#...#", "#####", "#...#", "#...#", "#...#"},
	"T": {"#####", "..#..", "..#..", "..#..", "..#..", "..#..", "..#.."},
	"X": {"#...#", "#...#", ".#.#.", "..#..", ".#.#.", "#...#", "#...#"},
}

// GlyphSize is the font's cell size.
const (
	GlyphWidth  = 5
	GlyphHeight = 7
)

// ParseArt compiles string art ('#' = foreground, anything else
// background) into an RLE image. All lines must share one width.
func ParseArt(lines []string) (*rle.Image, error) {
	if len(lines) == 0 {
		return nil, fmt.Errorf("match: empty art")
	}
	width := len(lines[0])
	img := rle.NewImage(width, len(lines))
	for y, line := range lines {
		if len(line) != width {
			return nil, fmt.Errorf("match: ragged art line %d (%d vs %d chars)", y, len(line), width)
		}
		bits := make([]bool, width)
		for x := 0; x < width; x++ {
			bits[x] = line[x] == '#'
		}
		img.Rows[y] = rle.FromBits(bits)
	}
	return img, nil
}

// Font returns the glyph templates as RLE images.
func Font() map[string]*rle.Image {
	out := make(map[string]*rle.Image, len(glyphArt))
	for name, art := range glyphArt {
		img, err := ParseArt(art)
		if err != nil {
			panic(fmt.Sprintf("match: bad built-in glyph %q: %v", name, err))
		}
		out[name] = img
	}
	return out
}
