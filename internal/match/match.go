// Package match implements binary template matching in the
// compressed domain — one of the operations the paper's introduction
// cites systolic hardware for ("binary template matching", Djunatan &
// Mengko [9]) — built on the same RLE difference primitive as the
// systolic engine: the mismatch score of a window is exactly the area
// of the image difference between template and window.
//
// Costs scale with run counts: sliding a k-run template across a
// K-run image row costs O(k+K) per offset, never O(pixels).
package match

import (
	"fmt"
	"sort"

	"sysrle/internal/rle"
)

// Match is one template placement: the window's top-left corner and
// its Hamming mismatch against the template.
type Match struct {
	X, Y     int
	Mismatch int
}

// MismatchAt returns the Hamming distance between the template and
// the image window whose top-left corner is (x0, y0). Pixels outside
// the image read as background. The limit parameter allows early
// exit: as soon as the running mismatch exceeds limit the scan stops
// and returns a value > limit (pass a negative limit for an exact
// count).
func MismatchAt(img, tpl *rle.Image, x0, y0, limit int) int {
	total := 0
	for ty := 0; ty < tpl.Height; ty++ {
		window := img.Row(y0 + ty).Shift(-x0).Clip(tpl.Width)
		total += rle.Hamming(tpl.Rows[ty], window)
		if limit >= 0 && total > limit {
			return total
		}
	}
	return total
}

// Search slides the template over every position where it fits
// entirely inside the image and returns all placements with mismatch
// ≤ maxMismatch, sorted by (mismatch, Y, X). An empty template or one
// larger than the image yields no matches.
func Search(img, tpl *rle.Image, maxMismatch int) ([]Match, error) {
	if tpl.Width <= 0 || tpl.Height <= 0 {
		return nil, fmt.Errorf("match: empty template %dx%d", tpl.Width, tpl.Height)
	}
	var out []Match
	for y := 0; y+tpl.Height <= img.Height; y++ {
		for x := 0; x+tpl.Width <= img.Width; x++ {
			m := MismatchAt(img, tpl, x, y, maxMismatch)
			if m <= maxMismatch {
				out = append(out, Match{X: x, Y: y, Mismatch: m})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Mismatch != out[j].Mismatch {
			return out[i].Mismatch < out[j].Mismatch
		}
		if out[i].Y != out[j].Y {
			return out[i].Y < out[j].Y
		}
		return out[i].X < out[j].X
	})
	return out, nil
}

// Best returns the minimum-mismatch placement (earliest in scan order
// on ties); ok is false when the template does not fit anywhere.
func Best(img, tpl *rle.Image) (Match, bool) {
	best := Match{Mismatch: -1}
	for y := 0; y+tpl.Height <= img.Height; y++ {
		for x := 0; x+tpl.Width <= img.Width; x++ {
			limit := best.Mismatch
			if limit >= 0 {
				limit-- // strict improvement required
			}
			m := MismatchAt(img, tpl, x, y, limit)
			if best.Mismatch < 0 || m < best.Mismatch {
				best = Match{X: x, Y: y, Mismatch: m}
			}
		}
	}
	return best, best.Mismatch >= 0
}

// NonMaxSuppress keeps, from a mismatch-sorted match list, only
// placements whose windows do not overlap an already kept one — the
// standard cleanup when Search fires on every offset around a true
// hit.
func NonMaxSuppress(matches []Match, tplW, tplH int) []Match {
	var kept []Match
	for _, m := range matches {
		clash := false
		for _, k := range kept {
			if m.X < k.X+tplW && k.X < m.X+tplW && m.Y < k.Y+tplH && k.Y < m.Y+tplH {
				clash = true
				break
			}
		}
		if !clash {
			kept = append(kept, m)
		}
	}
	return kept
}

// Classify picks the template with the smallest mismatch against the
// glyph image (same size comparison at offset (0,0), per character
// recognition practice). Keys are compared deterministically; ok is
// false for an empty template set.
func Classify(glyph *rle.Image, templates map[string]*rle.Image) (string, int, bool) {
	names := make([]string, 0, len(templates))
	for name := range templates {
		names = append(names, name)
	}
	sort.Strings(names)
	bestName, bestScore := "", -1
	for _, name := range names {
		m := MismatchAt(glyph, templates[name], 0, 0, -1)
		if bestScore < 0 || m < bestScore {
			bestName, bestScore = name, m
		}
	}
	return bestName, bestScore, bestScore >= 0
}
