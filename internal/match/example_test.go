package match_test

import (
	"fmt"

	"sysrle/internal/match"
	"sysrle/internal/rle"
)

// Search finds every placement of a glyph in a scene; the mismatch
// score is the RLE image difference's area.
func ExampleSearch() {
	font := match.Font()
	scene := rle.NewImage(20, 11)
	rle.Paste(scene, font["7"], 3, 2)
	matches, err := match.Search(scene, font["7"], 0)
	if err != nil {
		panic(err)
	}
	for _, m := range matches {
		fmt.Printf("exact match at (%d,%d)\n", m.X, m.Y)
	}
	// Output: exact match at (3,2)
}

// Classify names a glyph by minimum Hamming distance over the font.
func ExampleClassify() {
	font := match.Font()
	glyph := font["8"].Clone()
	// One flipped pixel.
	glyph.SetRow(0, rle.XOR(glyph.Rows[0], rle.Row{{Start: 0, Length: 1}}))
	name, score, _ := match.Classify(glyph, font)
	fmt.Printf("%s with %d differing pixel(s)\n", name, score)
	// Output: 8 with 1 differing pixel(s)
}
