package inspect

import (
	"math/rand"
	"strings"
	"testing"

	"sysrle/internal/core"
	"sysrle/internal/rle"
)

func testLayout(t *testing.T, seed int64) *Layout {
	t.Helper()
	layout, err := GenerateBoard(rand.New(rand.NewSource(seed)), DefaultBoard(400, 300))
	if err != nil {
		t.Fatal(err)
	}
	return layout
}

func TestGenerateBoard(t *testing.T) {
	layout := testLayout(t, 1)
	art := layout.Art
	if art.Width() != 400 || art.Height() != 300 {
		t.Fatalf("art %dx%d", art.Width(), art.Height())
	}
	density := float64(art.Popcount()) / float64(400*300)
	if density < 0.03 || density > 0.6 {
		t.Errorf("implausible board density %v", density)
	}
	if len(layout.Pads) == 0 {
		t.Fatal("no pads")
	}
	for _, p := range layout.Pads {
		if !art.Get(p.X, p.Y) {
			t.Fatalf("pad centre (%d,%d) not copper", p.X, p.Y)
		}
	}
	// Board art compresses well under RLE: far fewer runs than
	// pixels (the premise of the whole paper).
	img := art.ToRLE()
	if img.RunCount()*20 > 400*300 {
		t.Errorf("board art barely compresses: %d runs", img.RunCount())
	}
}

func TestGenerateBoardDeterministic(t *testing.T) {
	a := testLayout(t, 7)
	b := testLayout(t, 7)
	if !a.Art.Equal(b.Art) {
		t.Error("same seed, different board")
	}
}

func TestGenerateBoardRejectsBadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []BoardParams{
		{Width: 10, Height: 10, PadPitch: 24, PadRadius: 4, TraceWidth: 3, TraceProb: 0.5},
		{Width: 400, Height: 300, PadPitch: 24, PadRadius: 0, TraceWidth: 3, TraceProb: 0.5},
		{Width: 400, Height: 300, PadPitch: 24, PadRadius: 4, TraceWidth: 3, TraceProb: 1.5},
		{Width: 400, Height: 300, PadPitch: 24, PadRadius: 4, TraceWidth: 3, TraceProb: 0.5, ViaCount: -1},
	}
	for _, p := range bad {
		if _, err := GenerateBoard(rng, p); err == nil {
			t.Errorf("accepted %+v", p)
		}
	}
}

func TestDefectTypeStrings(t *testing.T) {
	if OpenCircuit.String() != "open" || MissingPad.String() != "missing-pad" {
		t.Error("defect names wrong")
	}
	if !strings.Contains(DefectType(99).String(), "99") {
		t.Error("unknown defect name wrong")
	}
	if !OpenCircuit.RemovesCopper() || ShortCircuit.RemovesCopper() {
		t.Error("polarity wrong")
	}
}

func TestInjectDefectsChangesBoardWithinBBoxes(t *testing.T) {
	layout := testLayout(t, 2)
	rng := rand.New(rand.NewSource(3))
	scan, injected := InjectDefects(rng, layout, 12)
	if len(injected) < 8 {
		t.Fatalf("only %d/12 defects placed", len(injected))
	}
	// Every changed pixel lies inside some injected bbox.
	for y := 0; y < scan.Height(); y++ {
		for x := 0; x < scan.Width(); x++ {
			if scan.Get(x, y) == layout.Art.Get(x, y) {
				continue
			}
			found := false
			for _, inj := range injected {
				if inj.overlaps(x, y, x, y) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("stray change at (%d,%d)", x, y)
			}
		}
	}
	// And each defect's polarity matches its type where it changed
	// pixels (spot check: at least one changed pixel per defect).
	changed := 0
	for _, inj := range injected {
		for y := inj.Y0; y <= inj.Y1; y++ {
			for x := inj.X0; x <= inj.X1; x++ {
				if scan.Get(x, y) != layout.Art.Get(x, y) {
					changed++
					y = inj.Y1 + 1
					break
				}
			}
		}
	}
	if changed < len(injected)*3/4 {
		t.Errorf("only %d/%d defects visibly changed pixels", changed, len(injected))
	}
}

func TestInjectOneEveryType(t *testing.T) {
	layout := testLayout(t, 4)
	for typ := DefectType(0); typ < numDefectTypes; typ++ {
		rng := rand.New(rand.NewSource(int64(typ) + 10))
		scan := layout.Art.Clone()
		inj, ok := InjectOne(rng, layout, scan, typ)
		if !ok {
			t.Errorf("%v: no placement found", typ)
			continue
		}
		if inj.Type != typ {
			t.Errorf("%v: recorded type %v", typ, inj.Type)
		}
		diff := 0
		removed := 0
		for y := inj.Y0; y <= inj.Y1; y++ {
			for x := inj.X0; x <= inj.X1; x++ {
				was, is := layout.Art.Get(x, y), scan.Get(x, y)
				if was != is {
					diff++
					if was && !is {
						removed++
					}
				}
			}
		}
		if diff == 0 {
			t.Errorf("%v: no pixels changed", typ)
		}
		if typ.RemovesCopper() && removed == 0 {
			t.Errorf("%v: removes copper but none removed", typ)
		}
		if !typ.RemovesCopper() && removed == diff {
			t.Errorf("%v: adds copper but only removals seen", typ)
		}
	}
}

func TestCompareCleanBoard(t *testing.T) {
	layout := testLayout(t, 5)
	ref := layout.Art.ToRLE()
	ins := &Inspector{}
	rep, err := ins.Compare(ref, layout.Art.ToRLE())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean board reported defects: %+v", rep.Defects)
	}
	if rep.DiffArea != 0 || rep.RowsDiffering != 0 {
		t.Errorf("clean board diff area %d rows %d", rep.DiffArea, rep.RowsDiffering)
	}
	if rep.RowsCompared != 300 {
		t.Errorf("rows compared %d", rep.RowsCompared)
	}
	if !strings.Contains(FormatReport(rep), "clean") {
		t.Error("report missing clean verdict")
	}
}

func TestCompareFindsAllInjectedDefects(t *testing.T) {
	layout := testLayout(t, 6)
	rng := rand.New(rand.NewSource(8))
	scan, injected := InjectDefects(rng, layout, 10)
	if len(injected) < 6 {
		t.Fatalf("only %d defects placed", len(injected))
	}
	ins := &Inspector{}
	rep, err := ins.Compare(layout.Art.ToRLE(), scan.ToRLE())
	if err != nil {
		t.Fatal(err)
	}
	for _, inj := range injected {
		found := false
		for _, d := range rep.Defects {
			if inj.overlaps(d.X0, d.Y0, d.X1, d.Y1) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("injected %v at (%d,%d)-(%d,%d) not detected",
				inj.Type, inj.X0, inj.Y0, inj.X1, inj.Y1)
		}
	}
	// Every reported defect overlaps some injected one (no false
	// positives on synthetic data).
	for _, d := range rep.Defects {
		found := false
		for _, inj := range injected {
			if inj.overlaps(d.X0, d.Y0, d.X1, d.Y1) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("false positive %+v", d)
		}
	}
	out := FormatReport(rep)
	if !strings.Contains(out, "defect(s)") {
		t.Errorf("report: %s", out)
	}
}

func TestCompareClassifiesPolarity(t *testing.T) {
	layout := testLayout(t, 9)
	// One guaranteed missing-copper defect (missing pad) and one
	// extra-copper defect (isolated blob).
	scan := layout.Art.Clone()
	rngA := rand.New(rand.NewSource(11))
	injMissing, ok := InjectOne(rngA, layout, scan, MissingPad)
	if !ok {
		t.Fatal("missing-pad placement failed")
	}
	injExtra, ok := InjectOne(rngA, layout, scan, ExtraCopper)
	if !ok {
		t.Fatal("extra-copper placement failed")
	}
	rep, err := (&Inspector{}).Compare(layout.Art.ToRLE(), scan.ToRLE())
	if err != nil {
		t.Fatal(err)
	}
	check := func(inj Injected, wantKind string) {
		for _, d := range rep.Defects {
			if inj.overlaps(d.X0, d.Y0, d.X1, d.Y1) {
				if d.Kind != wantKind {
					t.Errorf("%v classified %q, want %q", inj.Type, d.Kind, wantKind)
				}
				return
			}
		}
		t.Errorf("%v not detected", inj.Type)
	}
	check(injMissing, "missing-copper")
	check(injExtra, "extra-copper")
}

func TestCompareEngineChoiceEquivalent(t *testing.T) {
	layout := testLayout(t, 12)
	rng := rand.New(rand.NewSource(13))
	scan, _ := InjectDefects(rng, layout, 6)
	ref, scanImg := layout.Art.ToRLE(), scan.ToRLE()
	repLock, err := (&Inspector{Engine: core.Lockstep{}}).Compare(ref, scanImg)
	if err != nil {
		t.Fatal(err)
	}
	repChan, err := (&Inspector{Engine: core.Channel{}, Workers: 2}).Compare(ref, scanImg)
	if err != nil {
		t.Fatal(err)
	}
	repSeq, err := (&Inspector{Engine: core.Sequential{}}).Compare(ref, scanImg)
	if err != nil {
		t.Fatal(err)
	}
	if len(repLock.Defects) != len(repChan.Defects) || len(repLock.Defects) != len(repSeq.Defects) {
		t.Fatalf("defect counts differ: %d / %d / %d",
			len(repLock.Defects), len(repChan.Defects), len(repSeq.Defects))
	}
	for i := range repLock.Defects {
		if repLock.Defects[i] != repChan.Defects[i] {
			t.Errorf("defect %d differs between engines", i)
		}
	}
	if repLock.TotalIterations != repChan.TotalIterations {
		t.Errorf("iteration totals differ: %d vs %d", repLock.TotalIterations, repChan.TotalIterations)
	}
}

func TestCompareMinDefectArea(t *testing.T) {
	layout := testLayout(t, 14)
	scan := layout.Art.Clone()
	scan.Set(200, 150, !scan.Get(200, 150)) // single-pixel noise
	rep, err := (&Inspector{MinDefectArea: 3}).Compare(layout.Art.ToRLE(), scan.ToRLE())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Errorf("noise not suppressed: %+v", rep.Defects)
	}
	if rep.DiffArea != 1 {
		t.Errorf("diff area = %d, want 1", rep.DiffArea)
	}
}

func TestCompareSizeMismatch(t *testing.T) {
	if _, err := (&Inspector{}).Compare(rle.NewImage(4, 4), rle.NewImage(4, 5)); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestCompareIterationStats(t *testing.T) {
	layout := testLayout(t, 15)
	rng := rand.New(rand.NewSource(16))
	scan, injected := InjectDefects(rng, layout, 5)
	if len(injected) == 0 {
		t.Fatal("no defects placed")
	}
	rep, err := (&Inspector{}).Compare(layout.Art.ToRLE(), scan.ToRLE())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalIterations == 0 || rep.MaxRowIterations == 0 {
		t.Error("iteration stats empty on defective board")
	}
	if rep.MaxRowIterations > rep.TotalIterations {
		t.Error("max exceeds total")
	}
	// The paper's headline: highly similar images take few systolic
	// iterations per row even on a large board.
	if rep.MaxRowIterations > 40 {
		t.Errorf("max/row iterations %d implausibly high for localized defects", rep.MaxRowIterations)
	}
}
