package inspect

import "math"

// Shape features of connected components, computed directly from the
// run representation (first- and second-order moments come from
// closed-form sums over runs, so cost is per-run, not per-pixel).
// These are the descriptors the paper's cited feature-extraction
// literature computes for object orientation and classification.

// Features summarizes a component's geometry.
type Features struct {
	// Area is the pixel count.
	Area int
	// CX, CY is the centroid.
	CX, CY float64
	// Width and Height are the bounding-box dimensions.
	Width, Height int
	// Aspect is Width/Height (≥ 0; 0 for empty).
	Aspect float64
	// Fill is Area over bounding-box area, in (0, 1].
	Fill float64
	// Orientation is the angle (radians, in (-π/2, π/2]) of the
	// principal axis from the central second moments.
	Orientation float64
	// Elongation is the ratio of principal to secondary axis
	// lengths (≥ 1; 1 for a perfectly round blob).
	Elongation float64
}

// sumRange returns the sum of integers in [a, b].
func sumRange(a, b int) float64 {
	n := float64(b - a + 1)
	return n * float64(a+b) / 2
}

// sumSqRange returns the sum of squares of integers in [a, b], via
// the closed form Σi² = n(n+1)(2n+1)/6.
func sumSqRange(a, b int) float64 {
	sq := func(n int) float64 {
		if n < 0 {
			return 0
		}
		fn := float64(n)
		return fn * (fn + 1) * (2*fn + 1) / 6
	}
	return sq(b) - sq(a-1)
}

// ComputeFeatures derives the shape descriptors of a component.
func ComputeFeatures(c Component) Features {
	if c.Area == 0 {
		return Features{}
	}
	var sx, sy, sxx, syy, sxy float64
	for _, lr := range c.Runs {
		a, b := lr.Run.Start, lr.Run.End()
		n := float64(lr.Run.Length)
		y := float64(lr.Y)
		rowSumX := sumRange(a, b)
		sx += rowSumX
		sy += n * y
		sxx += sumSqRange(a, b)
		syy += n * y * y
		sxy += y * rowSumX
	}
	area := float64(c.Area)
	cx, cy := sx/area, sy/area
	// Central second moments.
	mxx := sxx/area - cx*cx
	myy := syy/area - cy*cy
	mxy := sxy/area - cx*cy

	f := Features{
		Area:   c.Area,
		CX:     cx,
		CY:     cy,
		Width:  c.X1 - c.X0 + 1,
		Height: c.Y1 - c.Y0 + 1,
	}
	f.Aspect = float64(f.Width) / float64(f.Height)
	f.Fill = area / float64(f.Width*f.Height)
	// Principal axis from the covariance eigen-decomposition.
	f.Orientation = 0.5 * math.Atan2(2*mxy, mxx-myy)
	tr, det := mxx+myy, mxx*myy-mxy*mxy
	disc := tr*tr/4 - det
	if disc < 0 {
		disc = 0
	}
	l1 := tr/2 + math.Sqrt(disc)
	l2 := tr/2 - math.Sqrt(disc)
	if l2 <= 1e-12 {
		l2 = 1e-12 // degenerate (1-pixel-thin) blobs
	}
	f.Elongation = math.Sqrt(l1 / l2)
	return f
}
