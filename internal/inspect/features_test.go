package inspect

import (
	"math"
	"math/rand"
	"testing"

	"sysrle/internal/bitmap"
	"sysrle/internal/rle"
)

// featuresRef computes the same descriptors pixel by pixel.
func featuresRef(c Component) (cx, cy, mxx, myy, mxy float64) {
	var sx, sy, sxx, syy, sxy float64
	n := 0.0
	for _, lr := range c.Runs {
		for x := lr.Run.Start; x <= lr.Run.End(); x++ {
			fx, fy := float64(x), float64(lr.Y)
			sx += fx
			sy += fy
			sxx += fx * fx
			syy += fy * fy
			sxy += fx * fy
			n++
		}
	}
	cx, cy = sx/n, sy/n
	return cx, cy, sxx/n - cx*cx, syy/n - cy*cy, sxy/n - cx*cy
}

func singleComponent(t *testing.T, img *rle.Image) Component {
	t.Helper()
	comps := Components(img)
	if len(comps) != 1 {
		t.Fatalf("expected one component, got %d", len(comps))
	}
	return comps[0]
}

func TestFeaturesRectangle(t *testing.T) {
	img := rle.NewImage(30, 20)
	for y := 4; y <= 9; y++ { // 12 wide × 6 tall
		img.Rows[y] = rle.Row{{Start: 5, Length: 12}}
	}
	f := ComputeFeatures(singleComponent(t, img))
	if f.Area != 72 || f.Width != 12 || f.Height != 6 {
		t.Fatalf("features = %+v", f)
	}
	if math.Abs(f.CX-10.5) > 1e-9 || math.Abs(f.CY-6.5) > 1e-9 {
		t.Errorf("centroid (%v,%v), want (10.5,6.5)", f.CX, f.CY)
	}
	if f.Fill != 1 {
		t.Errorf("Fill = %v, want 1", f.Fill)
	}
	if math.Abs(f.Aspect-2) > 1e-9 {
		t.Errorf("Aspect = %v, want 2", f.Aspect)
	}
	// Wide rectangle: principal axis horizontal.
	if math.Abs(f.Orientation) > 1e-9 {
		t.Errorf("Orientation = %v, want 0", f.Orientation)
	}
	if f.Elongation < 1.5 || f.Elongation > 2.5 {
		t.Errorf("Elongation = %v, want ≈2", f.Elongation)
	}
}

func TestFeaturesMomentsAgainstPixelReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		b := bitmap.New(40, 30)
		b.Disk(8+rng.Intn(24), 8+rng.Intn(14), 3+rng.Intn(5), true)
		b.FillRect(10+rng.Intn(10), 10+rng.Intn(10), 20+rng.Intn(15), 15+rng.Intn(10), true)
		comps := Components(b.ToRLE())
		for _, c := range comps {
			f := ComputeFeatures(c)
			cx, cy, _, _, _ := featuresRef(c)
			if math.Abs(f.CX-cx) > 1e-6 || math.Abs(f.CY-cy) > 1e-6 {
				t.Fatalf("centroid (%v,%v) vs ref (%v,%v)", f.CX, f.CY, cx, cy)
			}
		}
	}
}

func TestFeaturesOrientationDiagonal(t *testing.T) {
	// A 45° diagonal bar: orientation ≈ −π/4 in image coordinates
	// (y grows downward, so a top-left→bottom-right bar has
	// negative slope in math convention... verify magnitude).
	img := rle.NewImage(40, 40)
	for i := 0; i < 30; i++ {
		img.Rows[5+i] = rle.Row{{Start: 5 + i, Length: 3}}
	}
	f := ComputeFeatures(singleComponent(t, img))
	if math.Abs(math.Abs(f.Orientation)-math.Pi/4) > 0.1 {
		t.Errorf("Orientation = %v, want ±π/4", f.Orientation)
	}
	if f.Elongation < 5 {
		t.Errorf("Elongation = %v, want ≫1 for a thin bar", f.Elongation)
	}
}

func TestFeaturesSinglePixel(t *testing.T) {
	img := rle.NewImage(5, 5)
	img.Rows[2] = rle.Row{{Start: 3, Length: 1}}
	f := ComputeFeatures(singleComponent(t, img))
	if f.Area != 1 || f.CX != 3 || f.CY != 2 || f.Width != 1 || f.Height != 1 {
		t.Errorf("features = %+v", f)
	}
	if math.IsNaN(f.Elongation) || math.IsInf(f.Elongation, 0) {
		t.Errorf("degenerate Elongation = %v", f.Elongation)
	}
}

func TestFeaturesEmpty(t *testing.T) {
	if f := ComputeFeatures(Component{}); f != (Features{}) {
		t.Errorf("empty features = %+v", f)
	}
}

func TestFeaturesDistinguishDefectShapes(t *testing.T) {
	// A short (thin bridge) is elongated; a pinhole blob is round.
	bridge := rle.NewImage(30, 30)
	for y := 5; y <= 24; y++ {
		bridge.Rows[y] = rle.Row{{Start: 14, Length: 2}}
	}
	fBridge := ComputeFeatures(singleComponent(t, bridge))

	round := bitmap.New(30, 30)
	round.Disk(15, 15, 4, true)
	fRound := ComputeFeatures(singleComponent(t, round.ToRLE()))

	if fBridge.Elongation < 3*fRound.Elongation {
		t.Errorf("bridge elongation %v not ≫ round %v", fBridge.Elongation, fRound.Elongation)
	}
	if fRound.Elongation > 1.3 {
		t.Errorf("disk elongation %v, want ≈1", fRound.Elongation)
	}
}
