package inspect

import (
	"fmt"
	"math/rand"

	"sysrle/internal/bitmap"
)

// DefectType enumerates the classic PCB fabrication flaws the
// injector can produce (the taxonomy used by reference-based
// inspection systems).
type DefectType int

const (
	// OpenCircuit cuts a trace.
	OpenCircuit DefectType = iota
	// ShortCircuit bridges two copper features across background.
	ShortCircuit
	// MouseBite nibbles a notch out of a copper edge.
	MouseBite
	// Spur adds a protrusion onto a copper edge.
	Spur
	// Pinhole drills a small hole inside copper.
	Pinhole
	// ExtraCopper splashes an isolated blob onto background.
	ExtraCopper
	// MissingPad erases an entire pad.
	MissingPad
	numDefectTypes
)

var defectNames = [...]string{
	OpenCircuit:  "open",
	ShortCircuit: "short",
	MouseBite:    "mousebite",
	Spur:         "spur",
	Pinhole:      "pinhole",
	ExtraCopper:  "extra-copper",
	MissingPad:   "missing-pad",
}

func (d DefectType) String() string {
	if d >= 0 && int(d) < len(defectNames) {
		return defectNames[d]
	}
	return fmt.Sprintf("DefectType(%d)", int(d))
}

// Polarity reports whether the defect removes copper (true) or adds
// copper (false) relative to the reference.
func (d DefectType) RemovesCopper() bool {
	switch d {
	case OpenCircuit, MouseBite, Pinhole, MissingPad:
		return true
	}
	return false
}

// Injected records one defect's ground truth: its type and bounding
// box on the scan.
type Injected struct {
	Type           DefectType
	X0, Y0, X1, Y1 int // inclusive bbox
}

// overlaps reports bbox intersection with another box.
func (d Injected) overlaps(x0, y0, x1, y1 int) bool {
	return d.X0 <= x1 && x0 <= d.X1 && d.Y0 <= y1 && y0 <= d.Y1
}

const placementAttempts = 400

// InjectDefects clones the layout's artwork, applies count randomly
// chosen and randomly placed defects, and returns the defective scan
// plus the ground-truth list. Defects whose placement cannot be
// found (e.g. a short on a nearly empty board) are skipped, so the
// returned list may be shorter than count.
func InjectDefects(rng *rand.Rand, layout *Layout, count int) (*bitmap.Bitmap, []Injected) {
	scan := layout.Art.Clone()
	var out []Injected
	for i := 0; i < count; i++ {
		typ := DefectType(rng.Intn(int(numDefectTypes)))
		if inj, ok := applyDefect(rng, layout, scan, typ); ok {
			out = append(out, inj)
		}
	}
	return scan, out
}

// InjectOne applies a single defect of a specific type; the bool
// reports whether a placement was found.
func InjectOne(rng *rand.Rand, layout *Layout, scan *bitmap.Bitmap, typ DefectType) (Injected, bool) {
	return applyDefect(rng, layout, scan, typ)
}

func applyDefect(rng *rand.Rand, layout *Layout, scan *bitmap.Bitmap, typ DefectType) (Injected, bool) {
	w, h := scan.Width(), scan.Height()
	sample := func() (int, int) { return rng.Intn(w), rng.Intn(h) }
	fgAround := func(x, y, r int) bool {
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				if scan.Get(x+dx, y+dy) {
					return true
				}
			}
		}
		return false
	}
	allFG := func(x, y, r int) bool {
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				if !scan.Get(x+dx, y+dy) {
					return false
				}
			}
		}
		return true
	}
	box := func(x0, y0, x1, y1 int) Injected {
		return Injected{Type: typ, X0: max(0, x0), Y0: max(0, y0), X1: min(w-1, x1), Y1: min(h-1, y1)}
	}
	for attempt := 0; attempt < placementAttempts; attempt++ {
		x, y := sample()
		switch typ {
		case OpenCircuit:
			// Cut across a trace: a fully-foreground neighbourhood
			// that is not pad-sized.
			tw := layout.TraceWidth
			if !allFG(x, y, tw/2) || allFG(x, y, layout.PadRadius) {
				continue
			}
			gap := tw + 2
			scan.FillRect(x-gap/2, y-gap/2, x+gap/2, y+gap/2, false)
			return box(x-gap/2, y-gap/2, x+gap/2, y+gap/2), true
		case ShortCircuit:
			// A background pixel with copper on both sides within
			// reach: bridge horizontally or vertically.
			if scan.Get(x, y) {
				continue
			}
			if x0, x1, ok := spanToCopper(scan, x, y, true); ok {
				scan.HLine(x0, x1, y, 2, true)
				return box(x0, y-1, x1, y+1), true
			}
			if y0, y1, ok := spanToCopper(scan, x, y, false); ok {
				scan.VLine(x, y0, y1, 2, true)
				return box(x-1, y0, x+1, y1), true
			}
		case MouseBite:
			// Foreground pixel with background next to it: notch.
			if !scan.Get(x, y) || allFG(x, y, 1) {
				continue
			}
			scan.Disk(x, y, 2, false)
			return box(x-2, y-2, x+2, y+2), true
		case Spur:
			// Background pixel adjacent to foreground: protrusion.
			if scan.Get(x, y) || !fgAround(x, y, 1) {
				continue
			}
			scan.Disk(x, y, 2, true)
			return box(x-2, y-2, x+2, y+2), true
		case Pinhole:
			if !allFG(x, y, 2) {
				continue
			}
			scan.Disk(x, y, 1, false)
			return box(x-1, y-1, x+1, y+1), true
		case ExtraCopper:
			// Isolated blob: no copper within 4 pixels.
			if fgAround(x, y, 4) {
				continue
			}
			r := 2 + rng.Intn(2)
			scan.Disk(x, y, r, true)
			return box(x-r, y-r, x+r, y+r), true
		case MissingPad:
			if len(layout.Pads) == 0 {
				return Injected{}, false
			}
			p := layout.Pads[rng.Intn(len(layout.Pads))]
			r := layout.PadRadius
			if !scan.Get(p.X, p.Y) {
				continue // already erased by a previous defect
			}
			scan.Disk(p.X, p.Y, r, false)
			return box(p.X-r, p.Y-r, p.X+r, p.Y+r), true
		}
	}
	return Injected{}, false
}

// spanToCopper looks for copper within reach on both sides of a
// background pixel along one axis and returns the bridging span.
func spanToCopper(b *bitmap.Bitmap, x, y int, horizontal bool) (int, int, bool) {
	const reach = 8
	probe := func(d int) (int, bool) {
		for step := 1; step <= reach; step++ {
			if horizontal {
				if b.Get(x+d*step, y) {
					return x + d*step, true
				}
			} else {
				if b.Get(x, y+d*step) {
					return y + d*step, true
				}
			}
		}
		return 0, false
	}
	lo, okLo := probe(-1)
	hi, okHi := probe(+1)
	if okLo && okHi && hi-lo >= 3 {
		return lo, hi, true
	}
	return 0, 0, false
}
