package inspect

import "sysrle/internal/rle"

// Scan registration. A real scanner never delivers the board at
// exactly the reference position; comparing unregistered images would
// flag every trace edge as a defect. Align searches integer offsets
// for the translation that minimizes the difference area — in the
// compressed domain, using the same row-difference primitive as the
// rest of the system.

// Align returns the (dx, dy) in [-maxShift, +maxShift]² that
// minimizes the area of ref ⊕ Translate(scan, dx, dy), along with
// that minimal area. Ties break toward the smallest |dx|+|dy| (then
// scan order), so a perfectly registered pair yields (0, 0).
func Align(ref, scan *rle.Image, maxShift int) (dx, dy, area int) {
	type cand struct{ dx, dy int }
	// Visit offsets in increasing Manhattan distance so the tie
	// break falls out of visit order.
	var order []cand
	for d := 0; d <= 2*maxShift; d++ {
		for x := -maxShift; x <= maxShift; x++ {
			for y := -maxShift; y <= maxShift; y++ {
				if abs(x)+abs(y) == d {
					order = append(order, cand{x, y})
				}
			}
		}
	}
	best := cand{}
	bestArea := -1
	for _, c := range order {
		a := diffAreaShifted(ref, scan, c.dx, c.dy, bestArea)
		if bestArea < 0 || a < bestArea {
			best, bestArea = c, a
		}
	}
	return best.dx, best.dy, bestArea
}

// diffAreaShifted computes the area of ref ⊕ shift(scan) without
// materializing the shifted image (allocation-free inner loop),
// aborting early once the running total exceeds limit (limit < 0 =
// exact).
func diffAreaShifted(ref, scan *rle.Image, dx, dy, limit int) int {
	total := 0
	for y := 0; y < ref.Height; y++ {
		// ref rows are validated against ref.Width, so the window clip
		// inside XORAreaShifted never truncates the first operand; the
		// scan rows may be wider or shifted outside and are clipped.
		total += rle.XORAreaShifted(ref.Rows[y], scan.Row(y-dy), dx, ref.Width)
		if limit >= 0 && total > limit {
			return total
		}
	}
	return total
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// AlignPyramid registers scans with large displacements in
// logarithmic time: both images are OR-downsampled by powers of two
// until the shift budget is small, aligned exhaustively at the
// coarsest level, and the offset refined by a ±1-cell search at each
// finer level. Equivalent in result quality to Align for shifts the
// exhaustive search can afford, but usable for maxShift in the tens
// or hundreds of pixels.
func AlignPyramid(ref, scan *rle.Image, maxShift int) (dx, dy, area int, err error) {
	const exhaustiveBudget = 4
	// Build the pyramid: level 0 is full resolution.
	type level struct{ ref, scan *rle.Image }
	levels := []level{{ref, scan}}
	shift := maxShift
	for shift > exhaustiveBudget {
		top := levels[len(levels)-1]
		dRef, err := rle.Downsample(top.ref, 2)
		if err != nil {
			return 0, 0, 0, err
		}
		dScan, err := rle.Downsample(top.scan, 2)
		if err != nil {
			return 0, 0, 0, err
		}
		levels = append(levels, level{dRef, dScan})
		shift = (shift + 1) / 2
	}
	// Coarsest level: exhaustive.
	dx, dy, _ = Align(levels[len(levels)-1].ref, levels[len(levels)-1].scan, shift)
	// Refine downward.
	for li := len(levels) - 2; li >= 0; li-- {
		dx, dy = 2*dx, 2*dy
		lv := levels[li]
		bestA := -1
		bestDX, bestDY := dx, dy
		for ox := -1; ox <= 1; ox++ {
			for oy := -1; oy <= 1; oy++ {
				a := diffAreaShifted(lv.ref, lv.scan, dx+ox, dy+oy, bestA)
				if bestA < 0 || a < bestA ||
					(a == bestA && abs(dx+ox)+abs(dy+oy) < abs(bestDX)+abs(bestDY)) {
					bestA, bestDX, bestDY = a, dx+ox, dy+oy
				}
			}
		}
		dx, dy, area = bestDX, bestDY, bestA
	}
	return dx, dy, area, nil
}
