package inspect

import (
	"math/rand"
	"testing"

	"sysrle/internal/bitmap"
)

// classifyOn runs the full pipeline on a hand-built ref/scan pair and
// returns the single reported defect.
func classifyOn(t *testing.T, ref, scan *bitmap.Bitmap) Defect {
	t.Helper()
	rep, err := (&Inspector{}).Compare(ref.ToRLE(), scan.ToRLE())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Defects) != 1 {
		t.Fatalf("expected exactly one defect, got %+v", rep.Defects)
	}
	return rep.Defects[0]
}

func TestClassifyShort(t *testing.T) {
	// Two parallel traces; the scan bridges them.
	ref := bitmap.New(60, 30)
	ref.HLine(5, 55, 10, 3, true)
	ref.HLine(5, 55, 20, 3, true)
	scan := ref.Clone()
	scan.VLine(30, 11, 19, 2, true)
	d := classifyOn(t, ref, scan)
	if d.Type != "short" || d.Kind != "extra-copper" {
		t.Errorf("defect = %+v, want short/extra-copper", d)
	}
}

func TestClassifySpur(t *testing.T) {
	ref := bitmap.New(60, 30)
	ref.HLine(5, 55, 15, 3, true)
	scan := ref.Clone()
	scan.FillRect(30, 17, 33, 21, true) // protrusion off the trace
	d := classifyOn(t, ref, scan)
	if d.Type != "spur" {
		t.Errorf("defect = %+v, want spur", d)
	}
}

func TestClassifyExtraCopper(t *testing.T) {
	ref := bitmap.New(60, 30)
	ref.HLine(5, 55, 5, 3, true)
	scan := ref.Clone()
	scan.Disk(30, 22, 3, true) // isolated blob far from the trace
	d := classifyOn(t, ref, scan)
	if d.Type != "extra-copper" {
		t.Errorf("defect = %+v, want extra-copper", d)
	}
}

func TestClassifyOpen(t *testing.T) {
	ref := bitmap.New(60, 30)
	ref.HLine(5, 55, 15, 3, true)
	scan := ref.Clone()
	scan.FillRect(28, 13, 32, 17, false) // full cut
	d := classifyOn(t, ref, scan)
	if d.Type != "open" || d.Kind != "missing-copper" {
		t.Errorf("defect = %+v, want open/missing-copper", d)
	}
}

func TestClassifyPinhole(t *testing.T) {
	ref := bitmap.New(40, 40)
	ref.FillRect(5, 5, 34, 34, true) // copper pour
	scan := ref.Clone()
	scan.Disk(20, 20, 2, false) // hole deep inside
	d := classifyOn(t, ref, scan)
	if d.Type != "pinhole" {
		t.Errorf("defect = %+v, want pinhole", d)
	}
}

func TestClassifyMouseBite(t *testing.T) {
	ref := bitmap.New(60, 30)
	ref.HLine(5, 55, 15, 5, true)
	scan := ref.Clone()
	// Notch on the top edge: removes part of the width, trace stays
	// connected.
	scan.FillRect(29, 13, 32, 15, false)
	d := classifyOn(t, ref, scan)
	if d.Type != "mousebite" {
		t.Errorf("defect = %+v, want mousebite", d)
	}
}

func TestClassifyMissingFeature(t *testing.T) {
	ref := bitmap.New(40, 40)
	ref.Disk(20, 20, 4, true)  // lone pad
	scan := bitmap.New(40, 40) // pad gone
	d := classifyOn(t, ref, scan)
	if d.Type != "missing-feature" {
		t.Errorf("defect = %+v, want missing-feature", d)
	}
}

// TestClassifyMatchesInjector runs the random injector and checks
// that the detailed labels line up with the injected ground truth
// most of the time (the injector's geometry is ambiguous near pads
// and crossings, so this is statistical).
func TestClassifyMatchesInjector(t *testing.T) {
	expected := map[DefectType][]string{
		OpenCircuit:  {"open", "mousebite"}, // a cut beside a junction may not split locally
		ShortCircuit: {"short", "spur"},
		MouseBite:    {"mousebite", "open", "pinhole"},
		Spur:         {"spur", "short"},
		Pinhole:      {"pinhole", "mousebite"},
		ExtraCopper:  {"extra-copper", "spur"},
		MissingPad:   {"missing-feature", "open", "mousebite"},
	}
	layout := testLayout(t, 31)
	rng := rand.New(rand.NewSource(32))
	exactHits, total := 0, 0
	for typ, acceptable := range expected {
		for trial := 0; trial < 6; trial++ {
			scan := layout.Art.Clone()
			inj, ok := InjectOne(rng, layout, scan, typ)
			if !ok {
				continue
			}
			rep, err := (&Inspector{}).Compare(layout.Art.ToRLE(), scan.ToRLE())
			if err != nil {
				t.Fatal(err)
			}
			var label string
			for _, d := range rep.Defects {
				if inj.overlaps(d.X0, d.Y0, d.X1, d.Y1) {
					label = d.Type
					break
				}
			}
			if label == "" {
				t.Errorf("%v not detected", typ)
				continue
			}
			total++
			okLabel := false
			for _, a := range acceptable {
				if label == a {
					okLabel = true
					break
				}
			}
			if !okLabel {
				t.Errorf("%v labelled %q (acceptable %v)", typ, label, acceptable)
				continue
			}
			if label == acceptable[0] {
				exactHits++
			}
		}
	}
	if total == 0 {
		t.Fatal("no defects placed")
	}
	if exactHits*10 < total*5 {
		t.Errorf("primary-label accuracy %d/%d below 50%%", exactHits, total)
	}
}

func TestClassifyDetailedNearBorder(t *testing.T) {
	// A blob flush against the image border must not panic and must
	// classify sanely.
	ref := bitmap.New(30, 20)
	ref.HLine(0, 29, 1, 3, true) // trace along the top edge
	scan := ref.Clone()
	scan.FillRect(0, 0, 2, 2, false) // bite the corner
	rep, err := (&Inspector{}).Compare(ref.ToRLE(), scan.ToRLE())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Defects) != 1 || rep.Defects[0].Kind != "missing-copper" {
		t.Errorf("border defect = %+v", rep.Defects)
	}
}
