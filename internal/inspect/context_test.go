package inspect

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"sysrle/internal/core"
	"sysrle/internal/rle"
)

// slowEngine sleeps per row, then answers correctly.
type slowEngine struct{ delay time.Duration }

func (slowEngine) Name() string { return "slow" }

func (e slowEngine) XORRow(a, b rle.Row) (core.Result, error) {
	time.Sleep(e.delay)
	return core.Sequential{}.XORRow(a, b)
}

// panicEngine panics on every row.
type panicEngine struct{}

func (panicEngine) Name() string { return "panicky" }

func (panicEngine) XORRow(a, b rle.Row) (core.Result, error) { panic("injected row panic") }

func twoImages(h int) (*rle.Image, *rle.Image) {
	ref := rle.NewImage(32, h)
	scan := rle.NewImage(32, h)
	for y := 0; y < h; y++ {
		ref.Rows[y] = rle.Row{rle.Span(0, 5)}
		scan.Rows[y] = rle.Row{rle.Span(3, 8)}
	}
	return ref, scan
}

func TestCompareContextCanceled(t *testing.T) {
	ref, scan := twoImages(16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ins := &Inspector{}
	if _, err := ins.CompareContext(ctx, ref, scan); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCompareContextDeadline(t *testing.T) {
	ref, scan := twoImages(64)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	ins := &Inspector{Engine: slowEngine{delay: 2 * time.Millisecond}, Workers: 1}
	start := time.Now()
	_, err := ins.CompareContext(ctx, ref, scan)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// 64 rows × 2ms would be 128ms without the deadline; the deadline
	// must cut that far short (cooperatively, so allow a generous pad).
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("compare ran %v past a 5ms deadline", elapsed)
	}
}

// TestComparePanicEngineFailsComparison is the row-level safety net: a
// panicking engine must fail the comparison with an error, not crash
// the process (the row workers are plain goroutines — an unrecovered
// panic there would be fatal).
func TestComparePanicEngineFailsComparison(t *testing.T) {
	ref, scan := twoImages(8)
	ins := &Inspector{Engine: panicEngine{}, Workers: 2}
	_, err := ins.Compare(ref, scan)
	if err == nil {
		t.Fatal("panicking engine produced a report")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Errorf("err = %v, want a panic error", err)
	}
}

// TestCompareContextBackgroundUnchanged: the plain Compare path (no
// deadline) still works through the context plumbing.
func TestCompareContextBackgroundUnchanged(t *testing.T) {
	ref, scan := twoImages(8)
	ins := &Inspector{}
	rep, err := ins.Compare(ref, scan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsCompared != 8 || rep.DiffArea == 0 {
		t.Errorf("report %+v", rep)
	}
}
