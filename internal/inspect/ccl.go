package inspect

import (
	"sort"

	"sysrle/internal/rle"
)

// Run-based connected-component labeling: the classic two-pass
// algorithm operating directly on RLE rows (runs are the primitives,
// so cost scales with run count, not pixels). 8-connectivity, which
// is what defect blobs in a difference image call for.

// Component is one connected foreground component of an RLE image.
type Component struct {
	// Label is a dense id, 0..n-1, in scan order of the component's
	// first run.
	Label int
	// Area is the pixel count.
	Area int
	// X0, Y0, X1, Y1 is the inclusive bounding box.
	X0, Y0, X1, Y1 int
	// Runs holds the member runs as (row, run) pairs.
	Runs []LabeledRun
}

// LabeledRun ties a run to its row.
type LabeledRun struct {
	Y   int
	Run rle.Run
}

// unionFind is a standard weighted union-find with path compression.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind() *unionFind { return &unionFind{} }

func (u *unionFind) makeSet() int {
	id := len(u.parent)
	u.parent = append(u.parent, id)
	u.rank = append(u.rank, 0)
	return id
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// Components labels the image's connected components
// (8-connectivity) and returns them sorted by first appearance (top
// to bottom, left to right).
func Components(img *rle.Image) []Component {
	uf := newUnionFind()
	// ids[y][i] is the set id of run i in row y.
	ids := make([][]int, img.Height)
	for y, row := range img.Rows {
		ids[y] = make([]int, len(row))
		for i := range row {
			ids[y][i] = uf.makeSet()
		}
		if y == 0 {
			continue
		}
		prev := img.Rows[y-1]
		// Merge runs that touch a run in the previous row. With
		// 8-connectivity, run [s,e] touches previous-row run
		// [s',e'] iff s' ≤ e+1 and e' ≥ s-1. Both rows are sorted,
		// so sweep with two indices.
		j := 0
		for i, r := range row {
			for j < len(prev) && prev[j].End() < r.Start-1 {
				j++
			}
			k := j
			for k < len(prev) && prev[k].Start <= r.End()+1 {
				uf.union(ids[y][i], ids[y-1][k])
				k++
			}
		}
	}
	// Second pass: group runs by set root.
	byRoot := map[int]*Component{}
	var order []int
	for y, row := range img.Rows {
		for i, r := range row {
			root := uf.find(ids[y][i])
			c, ok := byRoot[root]
			if !ok {
				c = &Component{X0: r.Start, Y0: y, X1: r.End(), Y1: y}
				byRoot[root] = c
				order = append(order, root)
			}
			c.Area += r.Length
			if r.Start < c.X0 {
				c.X0 = r.Start
			}
			if r.End() > c.X1 {
				c.X1 = r.End()
			}
			if y < c.Y0 {
				c.Y0 = y
			}
			if y > c.Y1 {
				c.Y1 = y
			}
			c.Runs = append(c.Runs, LabeledRun{Y: y, Run: r})
		}
	}
	out := make([]Component, 0, len(order))
	for _, root := range order {
		out = append(out, *byRoot[root])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Y0 != out[j].Y0 {
			return out[i].Y0 < out[j].Y0
		}
		return out[i].X0 < out[j].X0
	})
	for i := range out {
		out[i].Label = i
	}
	return out
}
