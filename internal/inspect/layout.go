// Package inspect implements the paper's motivating application
// (§1): reference-based PCB inspection. A synthetic board generator
// stands in for scanned board imagery; a defect injector perturbs a
// copy the way fabrication flaws would; and the inspection pipeline
// compares scan against reference with the systolic RLE difference
// engine, labels the difference blobs, and classifies them.
package inspect

import (
	"fmt"
	"math/rand"

	"sysrle/internal/bitmap"
)

// BoardParams controls the synthetic PCB artwork generator.
type BoardParams struct {
	Width  int
	Height int
	// PadPitch is the pad grid spacing; PadRadius the pad size.
	PadPitch  int
	PadRadius int
	// TraceWidth is the copper trace thickness.
	TraceWidth int
	// TraceProb is the probability that two adjacent pads are
	// connected by a trace.
	TraceProb float64
	// ViaCount scatters this many small vias over the board.
	ViaCount int
}

// DefaultBoard returns plausible parameters for a board of the given
// size: a pad grid with ~50% routed adjacencies, the kind of dense,
// highly structured art whose scans compress extremely well under
// RLE.
func DefaultBoard(width, height int) BoardParams {
	return BoardParams{
		Width:      width,
		Height:     height,
		PadPitch:   24,
		PadRadius:  4,
		TraceWidth: 3,
		TraceProb:  0.5,
		ViaCount:   width * height / 12000,
	}
}

// Validate reports parameter errors.
func (p BoardParams) Validate() error {
	switch {
	case p.Width < 2*p.PadPitch || p.Height < 2*p.PadPitch:
		return fmt.Errorf("inspect: board %dx%d too small for pitch %d", p.Width, p.Height, p.PadPitch)
	case p.PadPitch < 4 || p.PadRadius < 1 || p.TraceWidth < 1:
		return fmt.Errorf("inspect: degenerate geometry %+v", p)
	case p.TraceProb < 0 || p.TraceProb > 1:
		return fmt.Errorf("inspect: trace probability %v outside [0,1]", p.TraceProb)
	case p.ViaCount < 0:
		return fmt.Errorf("inspect: negative via count")
	}
	return nil
}

// Point is a pixel coordinate.
type Point struct{ X, Y int }

// Layout is generated board artwork: the rasterized copper plus the
// pad positions (needed by the missing-pad defect).
type Layout struct {
	Art  *bitmap.Bitmap
	Pads []Point
	// TraceWidth is carried along for defect sizing.
	TraceWidth int
	// PadRadius is carried along for the missing-pad defect.
	PadRadius int
}

// GenerateBoard rasterizes a random rectilinear PCB: a grid of pads,
// traces routed between randomly chosen adjacent pads, and scattered
// vias.
func GenerateBoard(rng *rand.Rand, p BoardParams) (*Layout, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	art := bitmap.New(p.Width, p.Height)
	margin := p.PadPitch / 2
	cols := (p.Width - 2*margin) / p.PadPitch
	rows := (p.Height - 2*margin) / p.PadPitch
	if cols < 1 || rows < 1 {
		return nil, fmt.Errorf("inspect: board too small for any pads")
	}
	pads := make([]Point, 0, cols*rows)
	at := func(cx, cy int) Point {
		return Point{X: margin + cx*p.PadPitch, Y: margin + cy*p.PadPitch}
	}
	for cy := 0; cy < rows; cy++ {
		for cx := 0; cx < cols; cx++ {
			pt := at(cx, cy)
			art.Disk(pt.X, pt.Y, p.PadRadius, true)
			pads = append(pads, pt)
		}
	}
	// Route traces between horizontally and vertically adjacent pads.
	for cy := 0; cy < rows; cy++ {
		for cx := 0; cx < cols; cx++ {
			a := at(cx, cy)
			if cx+1 < cols && rng.Float64() < p.TraceProb {
				b := at(cx+1, cy)
				art.HLine(a.X, b.X, a.Y, p.TraceWidth, true)
			}
			if cy+1 < rows && rng.Float64() < p.TraceProb {
				b := at(cx, cy+1)
				art.VLine(a.X, a.Y, b.Y, p.TraceWidth, true)
			}
		}
	}
	// Vias: small free-standing disks between grid lines.
	for i := 0; i < p.ViaCount; i++ {
		x := margin + rng.Intn(p.Width-2*margin)
		y := margin + rng.Intn(p.Height-2*margin)
		art.Disk(x, y, 2, true)
	}
	return &Layout{Art: art, Pads: pads, TraceWidth: p.TraceWidth, PadRadius: p.PadRadius}, nil
}
