package inspect

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"sysrle/internal/core"
	"sysrle/internal/rle"
)

// Defect is one reported difference blob.
type Defect struct {
	// Kind is the classified polarity: "missing-copper" (present in
	// the reference, absent in the scan) or "extra-copper".
	Kind string
	// Type is the specific defect label from local connectivity
	// analysis: short, spur, extra-copper, open, pinhole, mousebite
	// or missing-feature.
	Type string
	// X0, Y0, X1, Y1 is the inclusive bounding box.
	X0, Y0, X1, Y1 int
	// Area is the differing pixel count.
	Area int
	// Shape carries the blob's moment-based descriptors (centroid,
	// elongation, fill) for downstream filtering and review UIs.
	Shape Features
}

// Report is the outcome of one board comparison.
type Report struct {
	Defects []Defect
	// RowsCompared and RowsDiffering count scanlines.
	RowsCompared  int
	RowsDiffering int
	// TotalIterations sums the engine's per-row iteration counts —
	// the systolic cost of the whole board; MaxRowIterations is the
	// critical path if each row had its own array.
	TotalIterations  int
	MaxRowIterations int
	// DiffRuns and DiffArea size the raw difference image.
	DiffRuns int
	DiffArea int
	// AlignDX, AlignDY is the registration offset applied to the
	// scan before comparison (0,0 when alignment is disabled or the
	// scan was already registered).
	AlignDX int
	AlignDY int
}

// Clean reports whether no defects were found.
func (r *Report) Clean() bool { return len(r.Defects) == 0 }

// Inspector compares scans against a reference using an RLE
// difference engine.
type Inspector struct {
	// Engine computes row differences; nil means the lockstep
	// systolic engine.
	Engine core.Engine
	// Workers bounds the row-comparison parallelism; 0 means
	// GOMAXPROCS.
	Workers int
	// MinDefectArea suppresses difference blobs smaller than this
	// many pixels (sensor noise); 0 keeps everything.
	MinDefectArea int
	// MaxAlignShift, when positive, registers the scan against the
	// reference before comparing by searching translations within
	// ±MaxAlignShift pixels (Align). The found offset is reported in
	// Report.AlignDX/AlignDY.
	MaxAlignShift int
}

// Compare diffs a scanned board against the reference and returns the
// classified defect report. Rows are distributed over a worker pool —
// the software analogue of one systolic array per scanline.
func (ins *Inspector) Compare(ref, scan *rle.Image) (*Report, error) {
	return ins.CompareContext(context.Background(), ref, scan)
}

// CompareContext is Compare with a deadline: cancellation is observed
// between rows (cooperatively — a row already inside the engine
// finishes), and the comparison fails with the context's error. A
// panicking engine fails the row, and with it the comparison, instead
// of the process.
func (ins *Inspector) CompareContext(ctx context.Context, ref, scan *rle.Image) (*Report, error) {
	if ref.Width != scan.Width || ref.Height != scan.Height {
		return nil, fmt.Errorf("inspect: size mismatch %dx%d vs %dx%d", ref.Width, ref.Height, scan.Width, scan.Height)
	}
	engine := ins.Engine
	if engine == nil {
		engine = core.Lockstep{}
	}
	alignDX, alignDY := 0, 0
	if ins.MaxAlignShift > 0 {
		var dx, dy int
		if ins.MaxAlignShift > 4 {
			// Large shift budgets use the coarse-to-fine pyramid;
			// the exhaustive search is O(shift²).
			var err error
			dx, dy, _, err = AlignPyramid(ref, scan, ins.MaxAlignShift)
			if err != nil {
				return nil, err
			}
		} else {
			dx, dy, _ = Align(ref, scan, ins.MaxAlignShift)
		}
		if dx != 0 || dy != 0 {
			scan = rle.Translate(scan, dx, dy)
		}
		alignDX, alignDY = dx, dy
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("inspect: %w", err)
	}
	workers := ins.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > ref.Height && ref.Height > 0 {
		workers = ref.Height
	}
	switch engine.(type) {
	case *core.Stream, *core.ChannelArray:
		// One machine each — sharing one across row workers would race
		// on its buffers, so these engines always run single-worker.
		workers = 1
	}

	diff := rle.NewImage(ref.Width, ref.Height)
	iterations := make([]int, ref.Height)
	rowErrs := make([]error, ref.Height)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker scratch row and arena: the engine gathers each
			// row, already canonical, into the reused scratch, and only
			// the exact-size persisted copy survives — the same
			// zero-allocation hot path as sysrle.DiffImage.
			arena := rle.NewArena(0)
			var scratch rle.Row
			for y := range next {
				if ctx.Err() != nil {
					continue // drain without computing
				}
				res, err := xorRowAppend(engine, scratch[:0], ref.Rows[y], scan.Rows[y])
				if err != nil {
					rowErrs[y] = err
					continue
				}
				scratch = res.Row
				diff.Rows[y] = arena.Persist(scratch)
				iterations[y] = res.Iterations
			}
		}()
	}
feed:
	for y := 0; y < ref.Height; y++ {
		select {
		case next <- y:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("inspect: %w", err)
	}
	for y, err := range rowErrs {
		if err != nil {
			return nil, fmt.Errorf("inspect: row %d: %w", y, err)
		}
	}

	rep := &Report{RowsCompared: ref.Height, AlignDX: alignDX, AlignDY: alignDY}
	for y, row := range diff.Rows {
		if len(row) > 0 {
			rep.RowsDiffering++
		}
		rep.DiffRuns += len(row)
		rep.DiffArea += row.Area()
		rep.TotalIterations += iterations[y]
		if iterations[y] > rep.MaxRowIterations {
			rep.MaxRowIterations = iterations[y]
		}
	}

	for _, comp := range Components(diff) {
		if comp.Area < ins.MinDefectArea {
			continue
		}
		rep.Defects = append(rep.Defects, Defect{
			Kind: classify(ref, comp),
			Type: classifyDetailed(ref, comp),
			X0:   comp.X0, Y0: comp.Y0, X1: comp.X1, Y1: comp.Y1,
			Area:  comp.Area,
			Shape: ComputeFeatures(comp),
		})
	}
	sort.Slice(rep.Defects, func(i, j int) bool {
		if rep.Defects[i].Y0 != rep.Defects[j].Y0 {
			return rep.Defects[i].Y0 < rep.Defects[j].Y0
		}
		return rep.Defects[i].X0 < rep.Defects[j].X0
	})
	return rep, nil
}

// xorRowAppend runs one engine call on the append path, converting a
// panic into an error. The row workers are plain goroutines: without
// this, one faulty engine row would crash the whole process, not just
// the comparison.
func xorRowAppend(engine core.Engine, dst, a, b rle.Row) (res core.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("engine %s panicked: %v", engine.Name(), p)
		}
	}()
	return core.XORRowAppend(engine, dst, a, b)
}

// classify decides a blob's polarity by majority vote of its pixels
// against the reference: differing pixels that are foreground in the
// reference are copper the scan lost.
func classify(ref *rle.Image, comp Component) string {
	missing := 0
	for _, lr := range comp.Runs {
		refRow := ref.Row(lr.Y)
		missing += rle.AND(refRow, rle.Row{lr.Run}).Area()
	}
	if 2*missing >= comp.Area {
		return "missing-copper"
	}
	return "extra-copper"
}

// FormatReport renders a human-readable summary.
func FormatReport(rep *Report) string {
	s := fmt.Sprintf("rows compared: %d, differing: %d; diff runs: %d, diff pixels: %d\n",
		rep.RowsCompared, rep.RowsDiffering, rep.DiffRuns, rep.DiffArea)
	s += fmt.Sprintf("systolic iterations: total %d, max/row %d\n",
		rep.TotalIterations, rep.MaxRowIterations)
	if rep.Clean() {
		return s + "board is clean\n"
	}
	s += fmt.Sprintf("%d defect(s):\n", len(rep.Defects))
	for i, d := range rep.Defects {
		s += fmt.Sprintf("  %2d. %-15s (%s) bbox=(%d,%d)-(%d,%d) area=%d elong=%.1f fill=%.2f\n",
			i+1, d.Type, d.Kind, d.X0, d.Y0, d.X1, d.Y1, d.Area, d.Shape.Elongation, d.Shape.Fill)
	}
	return s
}
