package inspect

import (
	"sysrle/internal/morph"
	"sysrle/internal/rle"
)

// Detailed defect classification. Polarity (missing vs. extra
// copper) comes from a majority vote against the reference; the
// specific label is then decided by local connectivity analysis in a
// window around the blob:
//
//	added copper   → bridges ≥2 reference components: "short"
//	               → touches exactly 1:               "spur"
//	               → touches none:                    "extra-copper"
//	removed copper → consumes a whole component:      "missing-feature"
//	               → splits a component:              "open"
//	               → strictly interior to copper:     "pinhole"
//	               → nibbles an edge:                 "mousebite"
//
// These are the defect categories reference-based PCB inspection
// systems report (the application domain of the paper's §1).

const classifyMargin = 3

// blobWindow crops the reference around the blob's bounding box
// (with margin) and renders the blob itself into the same window
// coordinates.
func blobWindow(ref *rle.Image, comp Component) (win, blob *rle.Image) {
	x0 := comp.X0 - classifyMargin
	y0 := comp.Y0 - classifyMargin
	w := comp.X1 - comp.X0 + 1 + 2*classifyMargin
	h := comp.Y1 - comp.Y0 + 1 + 2*classifyMargin
	win, err := rle.Crop(ref, x0, y0, w, h)
	if err != nil {
		panic(err) // dimensions are positive by construction
	}
	blob = rle.NewImage(w, h)
	for _, lr := range comp.Runs {
		y := lr.Y - y0
		shifted := rle.Row{lr.Run}.Shift(-x0).Clip(w)
		blob.Rows[y] = rle.OR(blob.Rows[y], shifted)
	}
	return win, blob
}

// overlapsImage reports whether component c (in window coordinates)
// shares a pixel with img.
func overlapsImage(c Component, img *rle.Image) bool {
	for _, lr := range c.Runs {
		if rle.AND(img.Row(lr.Y), rle.Row{lr.Run}).Area() > 0 {
			return true
		}
	}
	return false
}

// componentImage renders one component into an empty image of the
// given size.
func componentImage(c Component, w, h int) *rle.Image {
	img := rle.NewImage(w, h)
	for _, lr := range c.Runs {
		img.Rows[lr.Y] = rle.OR(img.Rows[lr.Y], rle.Row{lr.Run})
	}
	return img
}

// classifyDetailed returns the specific defect label for a
// difference blob.
func classifyDetailed(ref *rle.Image, comp Component) string {
	win, blob := blobWindow(ref, comp)

	// Polarity: differing pixels that are reference-foreground were
	// removed by the scan.
	missing := 0
	for y := range blob.Rows {
		missing += rle.AND(win.Rows[y], blob.Rows[y]).Area()
	}
	removed := 2*missing >= comp.Area

	grown, err := morph.Dilate(blob, morph.Box(1))
	if err != nil {
		panic(err)
	}

	if !removed {
		// Added copper: how many distinct reference components does
		// the (slightly grown) blob touch?
		touched := 0
		for _, c := range Components(win) {
			if overlapsImage(c, grown) {
				touched++
			}
		}
		switch {
		case touched >= 2:
			return "short"
		case touched == 1:
			return "spur"
		default:
			return "extra-copper"
		}
	}

	// Removed copper: inspect each reference component the blob
	// overlaps.
	consumed, split, interior := false, false, false
	overlappedAny := false
	for _, c := range Components(win) {
		if !overlapsImage(c, blob) {
			continue
		}
		overlappedAny = true
		cImg := componentImage(c, win.Width, win.Height)
		remainder := rle.NewImage(win.Width, win.Height)
		for y := range cImg.Rows {
			remainder.Rows[y] = rle.AndNot(cImg.Rows[y], blob.Rows[y])
		}
		switch pieces := len(Components(remainder)); {
		case pieces == 0:
			consumed = true
		case pieces >= 2:
			split = true
		default:
			// One piece: interior hole or edge bite? Interior iff
			// even the grown blob stays inside the component.
			inside := true
			for y := range grown.Rows {
				if rle.AndNot(grown.Rows[y], cImg.Rows[y]).Area() > 0 {
					inside = false
					break
				}
			}
			if inside {
				interior = true
			}
		}
	}
	switch {
	case !overlappedAny:
		return "missing-copper" // defensive: polarity said removed
	case consumed:
		return "missing-feature"
	case split:
		return "open"
	case interior:
		return "pinhole"
	default:
		return "mousebite"
	}
}
