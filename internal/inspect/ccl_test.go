package inspect

import (
	"math/rand"
	"testing"

	"sysrle/internal/bitmap"
	"sysrle/internal/rle"
)

// floodComponents is a pixel-level reference CCL (8-connectivity).
func floodComponents(b *bitmap.Bitmap) []Component {
	w, h := b.Width(), b.Height()
	seen := make([]bool, w*h)
	var comps []Component
	var stack []Point
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if !b.Get(x, y) || seen[y*w+x] {
				continue
			}
			comp := Component{X0: x, Y0: y, X1: x, Y1: y}
			stack = append(stack[:0], Point{x, y})
			seen[y*w+x] = true
			for len(stack) > 0 {
				p := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				comp.Area++
				if p.X < comp.X0 {
					comp.X0 = p.X
				}
				if p.X > comp.X1 {
					comp.X1 = p.X
				}
				if p.Y < comp.Y0 {
					comp.Y0 = p.Y
				}
				if p.Y > comp.Y1 {
					comp.Y1 = p.Y
				}
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						nx, ny := p.X+dx, p.Y+dy
						if nx >= 0 && ny >= 0 && nx < w && ny < h &&
							b.Get(nx, ny) && !seen[ny*w+nx] {
							seen[ny*w+nx] = true
							stack = append(stack, Point{nx, ny})
						}
					}
				}
			}
			comps = append(comps, comp)
		}
	}
	return comps
}

func componentKey(c Component) [5]int {
	return [5]int{c.X0, c.Y0, c.X1, c.Y1, c.Area}
}

func TestComponentsAgainstFloodFill(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 60; trial++ {
		w, h := 5+rng.Intn(80), 5+rng.Intn(30)
		b := bitmap.Random(rng, w, h, 0.25+rng.Float64()*0.3)
		got := Components(b.ToRLE())
		want := floodComponents(b)
		if len(got) != len(want) {
			t.Fatalf("component count %d, want %d (%dx%d)\n%s", len(got), len(want), w, h, b)
		}
		// Both are sorted by (Y0, X0) scan order of first pixel;
		// compare as multisets of (bbox, area) to be safe.
		gotKeys := map[[5]int]int{}
		for _, c := range got {
			gotKeys[componentKey(c)]++
		}
		for _, c := range want {
			if gotKeys[componentKey(c)] == 0 {
				t.Fatalf("missing component %+v", c)
			}
			gotKeys[componentKey(c)]--
		}
	}
}

func TestComponentsDiagonalConnectivity(t *testing.T) {
	img := rle.NewImage(4, 2)
	img.Rows[0] = rle.Row{{Start: 0, Length: 1}}
	img.Rows[1] = rle.Row{{Start: 1, Length: 1}} // touches only diagonally
	comps := Components(img)
	if len(comps) != 1 {
		t.Fatalf("diagonal runs split into %d components", len(comps))
	}
	if comps[0].Area != 2 {
		t.Errorf("area = %d", comps[0].Area)
	}
}

func TestComponentsUShape(t *testing.T) {
	// Two arms joined at the bottom: a single component that forces
	// label merging in the second arm.
	img := rle.NewImage(10, 4)
	img.Rows[0] = rle.Row{{Start: 0, Length: 2}, {Start: 8, Length: 2}}
	img.Rows[1] = rle.Row{{Start: 0, Length: 2}, {Start: 8, Length: 2}}
	img.Rows[2] = rle.Row{{Start: 0, Length: 2}, {Start: 8, Length: 2}}
	img.Rows[3] = rle.Row{{Start: 0, Length: 10}}
	comps := Components(img)
	if len(comps) != 1 {
		t.Fatalf("U shape split into %d components", len(comps))
	}
	c := comps[0]
	if c.Area != 22 || c.X0 != 0 || c.X1 != 9 || c.Y0 != 0 || c.Y1 != 3 {
		t.Errorf("component = %+v", c)
	}
	if len(c.Runs) != 7 {
		t.Errorf("runs = %d, want 7", len(c.Runs))
	}
}

func TestComponentsEmptyImage(t *testing.T) {
	if got := Components(rle.NewImage(10, 10)); len(got) != 0 {
		t.Errorf("empty image has %d components", len(got))
	}
}

func TestComponentsLabelsAreDenseAndSorted(t *testing.T) {
	img := rle.NewImage(20, 3)
	img.Rows[0] = rle.Row{{Start: 15, Length: 2}}
	img.Rows[1] = rle.Row{{Start: 0, Length: 2}}
	img.Rows[2] = rle.Row{{Start: 8, Length: 2}}
	comps := Components(img)
	if len(comps) != 3 {
		t.Fatalf("components = %d", len(comps))
	}
	for i, c := range comps {
		if c.Label != i {
			t.Errorf("label %d at position %d", c.Label, i)
		}
	}
	// Scan order: (15,0) then (0,1) then (8,2).
	if comps[0].Y0 != 0 || comps[1].Y0 != 1 || comps[2].Y0 != 2 {
		t.Errorf("order wrong: %+v", comps)
	}
}
