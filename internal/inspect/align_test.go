package inspect

import (
	"math/rand"
	"testing"

	"sysrle/internal/rle"
)

func TestAlignRecoversKnownShift(t *testing.T) {
	layout := testLayout(t, 51)
	ref := layout.Art.ToRLE()
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 10; trial++ {
		wantDX, wantDY := rng.Intn(7)-3, rng.Intn(7)-3
		scan := rle.Translate(ref, wantDX, wantDY)
		dx, dy, area := Align(ref, scan, 4)
		// Align reports the shift to apply to the scan, so it must
		// invert the displacement.
		if dx != -wantDX || dy != -wantDY {
			t.Fatalf("Align = (%d,%d), want (%d,%d)", dx, dy, -wantDX, -wantDY)
		}
		if area != 0 {
			// Content clipped at the borders cannot be recovered; on
			// this margin-padded board the residue must be zero.
			t.Fatalf("residual area %d at correct alignment", area)
		}
	}
}

func TestAlignPrefersSmallestOffsetOnTies(t *testing.T) {
	// An empty pair is invariant under every shift: the tie must
	// resolve to (0,0).
	img := rle.NewImage(50, 50)
	dx, dy, area := Align(img, img, 3)
	if dx != 0 || dy != 0 || area != 0 {
		t.Errorf("Align(∅,∅) = (%d,%d,%d)", dx, dy, area)
	}
}

func TestCompareWithAutoAlign(t *testing.T) {
	layout := testLayout(t, 53)
	ref := layout.Art.ToRLE()
	rng := rand.New(rand.NewSource(54))
	scanBits, injected := InjectDefects(rng, layout, 4)
	if len(injected) == 0 {
		t.Fatal("no defects")
	}
	shifted := rle.Translate(scanBits.ToRLE(), 2, -3)

	// Without alignment the offset drowns everything in false
	// positives.
	noAlign, err := (&Inspector{MinDefectArea: 2}).Compare(ref, shifted)
	if err != nil {
		t.Fatal(err)
	}
	// With alignment the report matches the registered comparison.
	aligned, err := (&Inspector{MinDefectArea: 2, MaxAlignShift: 4}).Compare(ref, shifted)
	if err != nil {
		t.Fatal(err)
	}
	if aligned.AlignDX != -2 || aligned.AlignDY != 3 {
		t.Fatalf("alignment offset (%d,%d), want (-2,3)", aligned.AlignDX, aligned.AlignDY)
	}
	if noAlign.DiffArea <= 5*aligned.DiffArea {
		t.Errorf("alignment did not help: %d vs %d diff pixels", noAlign.DiffArea, aligned.DiffArea)
	}
	// All injected defects still detected after registration. The
	// recovered offset undoes the translation, so the report is back
	// in the original (pre-shift) scan coordinates and the
	// ground-truth boxes compare directly.
	for _, inj := range injected {
		found := false
		for _, d := range aligned.Defects {
			if inj.overlaps(d.X0, d.Y0, d.X1, d.Y1) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("defect %v lost after alignment", inj.Type)
		}
	}
}

func TestCompareAlignZeroWhenRegistered(t *testing.T) {
	layout := testLayout(t, 55)
	ref := layout.Art.ToRLE()
	rep, err := (&Inspector{MaxAlignShift: 3}).Compare(ref, ref.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if rep.AlignDX != 0 || rep.AlignDY != 0 || !rep.Clean() {
		t.Errorf("registered pair: %+v", rep)
	}
}

func TestAlignPyramidLargeShift(t *testing.T) {
	layout := testLayout(t, 61)
	ref := layout.Art.ToRLE()
	for _, shift := range [][2]int{{17, -11}, {-23, 8}, {0, 0}, {30, 30}} {
		scan := rle.Translate(ref, shift[0], shift[1])
		dx, dy, area, err := AlignPyramid(ref, scan, 32)
		if err != nil {
			t.Fatal(err)
		}
		if dx != -shift[0] || dy != -shift[1] {
			t.Errorf("shift %v: recovered (%d,%d), want (%d,%d), residual %d",
				shift, dx, dy, -shift[0], -shift[1], area)
		}
	}
}

func TestAlignPyramidMatchesExhaustiveSmallShift(t *testing.T) {
	layout := testLayout(t, 62)
	ref := layout.Art.ToRLE()
	scan := rle.Translate(ref, 3, -2)
	edx, edy, earea := Align(ref, scan, 4)
	pdx, pdy, parea, err := AlignPyramid(ref, scan, 4)
	if err != nil {
		t.Fatal(err)
	}
	if edx != pdx || edy != pdy || earea != parea {
		t.Errorf("pyramid (%d,%d,%d) vs exhaustive (%d,%d,%d)", pdx, pdy, parea, edx, edy, earea)
	}
}

func TestCompareWithLargeShiftUsesPyramid(t *testing.T) {
	layout := testLayout(t, 63)
	ref := layout.Art.ToRLE()
	// Shift small enough that no copper clips off the frame (the
	// leftmost pads reach x=8); the budget of 20 still exercises the
	// pyramid path.
	shifted := rle.Translate(ref, -6, 7)
	rep, err := (&Inspector{MaxAlignShift: 20}).Compare(ref, shifted)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AlignDX != 6 || rep.AlignDY != -7 {
		t.Fatalf("recovered (%d,%d), want (6,-7)", rep.AlignDX, rep.AlignDY)
	}
	if !rep.Clean() {
		t.Errorf("registered identical boards not clean: %+v", rep.Defects)
	}
}
