package experiments

import (
	"fmt"
	"math/rand"

	"sysrle/internal/core"
	"sysrle/internal/metrics"
	"sysrle/internal/systolic"
	"sysrle/internal/workload"
)

// Array-utilization analysis. §5 explains the machine's two regimes
// through cell occupancy: "for the smaller amounts of difference
// there will be lots of empty cells left behind throughout the
// array, thus the only significant data movement will be at the end
// ... as the number of differences increases and thus the number of
// empty cells decreases, more and more data movement will be
// required". This experiment measures that directly: the fraction of
// cells still carrying a moving (RegBig) run, averaged over the run.

// UtilizationPoint is one error-percentage position.
type UtilizationPoint struct {
	ErrorPercent float64
	// MovingFrac is the mean fraction of cells holding a RegBig run
	// per iteration (data-movement intensity).
	MovingFrac metrics.Welford
	// OccupiedFrac is the mean fraction of cells holding any run at
	// termination (final packing density).
	OccupiedFrac metrics.Welford
	// Iterations echoes the Figure-5 cost for cross-reference.
	Iterations metrics.Welford
}

// Utilization sweeps error percentages and measures occupancy.
func Utilization(cfg Config, params Figure5Params) ([]UtilizationPoint, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	points := make([]UtilizationPoint, len(params.ErrorPercent))
	for i, pct := range params.ErrorPercent {
		points[i].ErrorPercent = pct
		ep := workload.CountForPixelFraction(params.Width, pct/100, 2, 6)
		for trial := 0; trial < cfg.trials(); trial++ {
			pair, err := workload.GeneratePair(rng, workload.PaperRow(params.Width, params.Density), ep)
			if err != nil {
				return nil, err
			}
			movingSum, iterations := 0, 0
			var finalCells []core.Cell
			obs := func(iter int, phase systolic.Phase, cells []core.Cell) {
				if phase != systolic.PhaseShift {
					return
				}
				iterations = iter
				moving := 0
				for _, c := range cells {
					if c.Big.Full {
						moving++
					}
				}
				movingSum += moving
				finalCells = cells // reused slice: occupancy read below is post-run
			}
			res, err := core.Lockstep{Observer: obs}.XORRow(pair.A, pair.B)
			if err != nil {
				return nil, err
			}
			cells := res.Cells
			if cells == 0 {
				cells = 1
			}
			if iterations > 0 {
				points[i].MovingFrac.Add(float64(movingSum) / float64(iterations*cells))
			} else {
				points[i].MovingFrac.Add(0)
			}
			occupied := 0
			for _, c := range finalCells {
				if c.Small.Full {
					occupied++
				}
			}
			points[i].OccupiedFrac.Add(float64(occupied) / float64(cells))
			points[i].Iterations.Add(float64(res.Iterations))
		}
	}
	return points, nil
}

// UtilizationTable renders the sweep.
func UtilizationTable(points []UtilizationPoint) *metrics.Table {
	t := metrics.NewTable(
		"Array utilization (§5 explanation): moving-run density vs. error percent",
		"err%", "moving-frac", "final-occupancy", "iterations")
	for _, p := range points {
		t.Add(
			fmt.Sprintf("%.1f", p.ErrorPercent),
			fmt.Sprintf("%.3f", p.MovingFrac.Mean()),
			fmt.Sprintf("%.3f", p.OccupiedFrac.Mean()),
			fmt.Sprintf("%.1f", p.Iterations.Mean()))
	}
	return t
}
