package experiments

import (
	"os"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Trials: 4, Seed: 42} }

func smallFig5() Figure5Params {
	return Figure5Params{Width: 2000, Density: 0.30, ErrorPercent: []float64{0, 2, 5, 15, 40, 65}}
}

func TestFigure5ShapeMatchesPaper(t *testing.T) {
	points, err := Figure5(Config{Trials: 8, Seed: 7}, smallFig5())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d", len(points))
	}
	// Zero errors: identical rows, about one iteration, zero XOR
	// runs.
	if points[0].Iterations.Mean() > 1.5 || points[0].XORRuns.Mean() != 0 {
		t.Errorf("zero-error point: %+v", points[0])
	}
	// Iterations grow with error percentage overall.
	first, last := points[1].Iterations.Mean(), points[len(points)-1].Iterations.Mean()
	if last <= first {
		t.Errorf("iterations do not grow with error%%: %v .. %v", first, last)
	}
	for _, p := range points {
		// The unproven Observation: iterations ≤ runs-in-XOR + 1 on
		// average (point means preserve the per-trial bound).
		if p.Iterations.Mean() > p.XORRuns.Mean()+1.0001 {
			t.Errorf("at %v%%: mean iterations %.2f exceed mean k3+1 %.2f",
				p.ErrorPercent, p.Iterations.Mean(), p.XORRuns.Mean()+1)
		}
	}
	// The paper's correlation claim: for medium error (≤ ~30%) the
	// iteration count tracks |k1−k2| closely. Allow slack, but they
	// must be the same order of magnitude.
	for _, p := range points[1:4] {
		ratio := p.Iterations.Mean() / (p.RunCountDiff.Mean() + 1)
		if ratio > 4 {
			t.Errorf("at %v%%: iterations %.1f not tracking |k1-k2| %.1f",
				p.ErrorPercent, p.Iterations.Mean(), p.RunCountDiff.Mean())
		}
	}
	table := Figure5Table(points)
	if !strings.Contains(table.Format(), "runs-in-XOR") {
		t.Error("table missing series header")
	}
}

func TestTable1ShapeMatchesPaper(t *testing.T) {
	params := PaperTable1()
	params.Sizes = []int{128, 512, 2048}
	rows, err := Table1(Config{Trials: 12, Seed: 11}, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	find := func(alg, errs string) Table1Row {
		for _, r := range rows {
			if strings.Contains(r.Algorithm, alg) && r.Errors == errs {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", alg, errs)
		return Table1Row{}
	}
	sysPct := find("lockstep", "3.5%")
	seqPct := find("sequential", "3.5%")
	sysFix := find("lockstep", "6 runs")
	seqFix := find("sequential", "6 runs")

	last := len(params.Sizes) - 1
	// Case A: both grow with size; systolic well below sequential.
	if sysPct.Mean[last].Mean() <= sysPct.Mean[0].Mean() {
		t.Error("systolic 3.5% does not grow with size")
	}
	if seqPct.Mean[last].Mean() <= seqPct.Mean[0].Mean() {
		t.Error("sequential 3.5% does not grow with size")
	}
	if sysPct.Mean[last].Mean() >= seqPct.Mean[last].Mean() {
		t.Error("systolic not faster than sequential at 3.5% errors")
	}
	// Case B (the headline): systolic stays roughly constant ("just
	// over 5 iterations regardless of how large the image gets"),
	// sequential keeps growing linearly.
	if growth := sysFix.Mean[last].Mean() / (sysFix.Mean[0].Mean() + 0.01); growth > 2 {
		t.Errorf("fixed-error systolic grew %.1fx across sizes", growth)
	}
	if sysFix.Mean[last].Mean() > 12 {
		t.Errorf("fixed-error systolic mean %.1f, paper reports ≈5", sysFix.Mean[last].Mean())
	}
	if seqFix.Mean[last].Mean() < 4*seqFix.Mean[0].Mean() {
		t.Errorf("fixed-error sequential not ≈linear: %.1f vs %.1f at 16x size",
			seqFix.Mean[last].Mean(), seqFix.Mean[0].Mean())
	}
	table := Table1Table(params, rows)
	out := table.Format()
	if !strings.Contains(out, "sequential") || !strings.Contains(out, "2048") {
		t.Errorf("table malformed:\n%s", out)
	}
}

func TestFigure3Trace(t *testing.T) {
	text, err := Figure3Trace()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"initial", "cell0", "terminated after 3 iterations", "(3,4)", "(30,1)"} {
		if !strings.Contains(text, want) {
			t.Errorf("trace missing %q:\n%s", want, text)
		}
	}
}

func TestAblationBusWins(t *testing.T) {
	points, err := Ablation(quickCfg(), smallFig5())
	if err != nil {
		t.Fatal(err)
	}
	var plain, busInf float64
	for _, p := range points {
		plain += p.Plain.Mean()
		busInf += p.BusUnlimited.Mean()
		if p.BusUnlimited.Mean() > p.BusSingle.Mean()+0.0001 {
			t.Errorf("at %v%%: unlimited bus slower than single-slot bus", p.ErrorPercent)
		}
	}
	if busInf >= plain {
		t.Errorf("idealized bus (%.0f total cycles) not faster than plain (%.0f)", busInf, plain)
	}
	out := AblationTable(points).Format()
	if !strings.Contains(out, "bus(inf)") {
		t.Error("ablation table malformed")
	}
}

func TestDensitySweepStable(t *testing.T) {
	// The paper: the iterations/|k1−k2| correlation "varied only
	// slightly over different densities". The normalized ratio must
	// stay near 1 across the density range.
	points, err := DensitySweep(Config{Trials: 6, Seed: 3}, 3000, 0.10,
		[]float64{0.15, 0.3, 0.5, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		r := p.Ratio.Mean()
		if r < 0.7 || r > 2.5 {
			t.Errorf("density %v: iterations/|k1-k2| = %.2f, want ≈1", p.Density, r)
		}
	}
	if !strings.Contains(DensityTable(points).Format(), "density") {
		t.Error("density table malformed")
	}
}

func TestSmallerImagesHigherVariation(t *testing.T) {
	// §5: "The pattern is similar for smaller images, but the
	// variation is higher." Coefficient of variation of the systolic
	// iteration count must shrink as the image grows (fixed 6-run
	// errors).
	params := PaperTable1()
	params.Sizes = []int{128, 2048}
	rows, err := Table1(Config{Trials: 120, Seed: 29}, params)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Errors != "6 runs" || !strings.Contains(r.Algorithm, "lockstep") {
			continue
		}
		cvSmall := r.Mean[0].Std() / r.Mean[0].Mean()
		cvLarge := r.Mean[1].Std() / r.Mean[1].Mean()
		if cvSmall <= cvLarge {
			t.Errorf("variation did not shrink with size: cv(128)=%.3f cv(2048)=%.3f", cvSmall, cvLarge)
		}
		return
	}
	t.Fatal("systolic fixed-error row missing")
}

func TestUtilizationRegimes(t *testing.T) {
	// §5: lots of empty cells at low error (little movement), dense
	// movement at high error. MovingFrac must grow monotonically-ish
	// with error percentage.
	points, err := Utilization(quickCfg(), smallFig5())
	if err != nil {
		t.Fatal(err)
	}
	// "As the number of differences increases ... the number of
	// empty cells decreases": final occupancy must grow with the
	// error percentage.
	low := points[1].OccupiedFrac.Mean()              // 2%
	high := points[len(points)-1].OccupiedFrac.Mean() // 65%
	if high <= low {
		t.Errorf("occupancy did not grow with error%%: %.3f → %.3f", low, high)
	}
	// Identical rows annihilate: nothing occupied, nothing moving.
	if points[0].OccupiedFrac.Mean() != 0 || points[0].MovingFrac.Mean() > 0.01 {
		t.Errorf("zero-error point not empty: %+v", points[0])
	}
	// Movement happens whenever there are errors.
	if points[1].MovingFrac.Mean() <= 0 {
		t.Error("no data movement despite differences")
	}
	if !strings.Contains(UtilizationTable(points).Format(), "moving-frac") {
		t.Error("utilization table malformed")
	}
}

func TestPCBSweep(t *testing.T) {
	points, err := PCBSweep(Config{Trials: 2, Seed: 77},
		[][2]int{{300, 200}}, []int{0, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	clean, dirty := points[0], points[1]
	// A clean board still costs one annihilation iteration per
	// non-empty row, but no row needs more and nothing differs.
	if clean.RowsDiffering.Mean() != 0 || clean.SystolicMax.Mean() > 1 {
		t.Errorf("clean board has diff work: %+v", clean)
	}
	if dirty.SystolicTotal.Mean() == 0 {
		t.Error("defective board has zero systolic work")
	}
	if dirty.SeqTotal.Mean() <= dirty.SystolicTotal.Mean() {
		t.Errorf("sequential (%v) not slower than systolic (%v) on similar boards",
			dirty.SeqTotal.Mean(), dirty.SystolicTotal.Mean())
	}
	if dirty.DetectedAll != dirty.Trials {
		t.Errorf("detection %d/%d", dirty.DetectedAll, dirty.Trials)
	}
	if !strings.Contains(PCBTable(points).Format(), "speedup") {
		t.Error("pcb table malformed")
	}
}

func TestFigure2Diagram(t *testing.T) {
	d := Figure2()
	for _, want := range []string{"RegSmall", "RegBig", "wired-AND", "cell 1"} {
		if !strings.Contains(d, want) {
			t.Errorf("figure 2 missing %q", want)
		}
	}
}

func TestFigure4TableCoversAllStates(t *testing.T) {
	out := Figure4Table().Format()
	for _, want := range []string{
		"State1a", "State1b", "State2a", "State2b", "State3a", "State3b",
		"State4a", "State4b", "State5a", "State5b", "State6a", "State6b",
		"State7", "State8a", "State8b", "State9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 4 table missing %s", want)
		}
	}
	// Identical runs annihilate: the State7 row's result is empty.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "State7") && !strings.Contains(line, "S=- B=-") {
			t.Errorf("State7 result wrong: %s", line)
		}
	}
}

func TestDeploymentComparison(t *testing.T) {
	points, err := Deployment(Config{Trials: 2, Seed: 5}, [][2]int{{300, 200}}, 6)
	if err != nil {
		t.Fatal(err)
	}
	p := points[0]
	// The per-row arrangement needs many small arrays; the flat
	// arrangement one much larger array but — on similar images —
	// few iterations relative to its size.
	if p.FlatCells.Mean() <= p.PerRowMaxCells.Mean() {
		t.Errorf("flat array (%v cells) not larger than row array (%v)",
			p.FlatCells.Mean(), p.PerRowMaxCells.Mean())
	}
	if p.FlatIters.Mean() >= p.FlatCells.Mean()/4 {
		t.Errorf("flat iterations %v not small relative to array %v on similar boards",
			p.FlatIters.Mean(), p.FlatCells.Mean())
	}
	if !strings.Contains(DeploymentTable(points).Format(), "flat iterations") {
		t.Error("deployment table malformed")
	}
}

func TestConfigDefaults(t *testing.T) {
	if DefaultConfig().Trials <= 0 {
		t.Error("default trials must be positive")
	}
	if (Config{Trials: -3}).trials() != 1 {
		t.Error("trials floor wrong")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	p := smallFig5()
	p.ErrorPercent = []float64{5}
	a, err := Figure5(quickCfg(), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure5(quickCfg(), p)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Iterations.Mean() != b[0].Iterations.Mean() {
		t.Error("same seed produced different sweep results")
	}
}

func TestFigure3TraceGoldenFile(t *testing.T) {
	want, err := os.ReadFile("testdata/figure3_trace.golden")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Figure3Trace()
	if err != nil {
		t.Fatal(err)
	}
	// Normalize trailing newlines (the golden file was captured from
	// CLI output, which appends one).
	if strings.TrimRight(got, "\n") != strings.TrimRight(string(want), "\n") {
		t.Errorf("trace drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestExperimentsPropagateWorkloadErrors(t *testing.T) {
	bad := Figure5Params{Width: 1000, Density: 0, ErrorPercent: []float64{5}}
	if _, err := Figure5(quickCfg(), bad); err == nil {
		t.Error("Figure5 accepted invalid density")
	}
	if _, err := Ablation(quickCfg(), bad); err == nil {
		t.Error("Ablation accepted invalid density")
	}
	if _, err := Utilization(quickCfg(), bad); err == nil {
		t.Error("Utilization accepted invalid density")
	}
	if _, err := DensitySweep(quickCfg(), 1000, 0.1, []float64{0}); err == nil {
		t.Error("DensitySweep accepted invalid density")
	}
	badT1 := PaperTable1()
	badT1.Density = -1
	if _, err := Table1(quickCfg(), badT1); err == nil {
		t.Error("Table1 accepted invalid density")
	}
}

func TestResourceTable(t *testing.T) {
	out := ResourceTable([]int{1024, 10000}, 0.30, 12).Format()
	for _, want := range []string{"1024", "10000", "20x", "pixel-PEs"} {
		if !strings.Contains(out, want) {
			t.Errorf("resource table missing %q:\n%s", want, out)
		}
	}
}
